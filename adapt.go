package remo

import (
	"fmt"
	"time"

	"remo/internal/adapt"
	"remo/internal/task"
)

// AdaptScheme names a runtime adaptation policy.
type AdaptScheme = adapt.Scheme

// Adaptation schemes for runtime task changes.
const (
	// AdaptDirectApply applies task changes with minimal topology change
	// and never re-partitions.
	AdaptDirectApply = adapt.DirectApply
	// AdaptRebuild replans from scratch on every change.
	AdaptRebuild = adapt.Rebuild
	// AdaptNoThrottle searches merge/split improvements around changed
	// trees without cost-benefit throttling.
	AdaptNoThrottle = adapt.NoThrottle
	// AdaptAdaptive is REMO's scheme: the bounded search plus
	// cost-benefit throttling.
	AdaptAdaptive = adapt.Adaptive
	// AdaptIncremental replans with the guided search scoped to the
	// change's dirty attribute neighborhood, seeded from the current
	// partition, falling back to the full search on quality regression.
	// This is the default for Monitor task mutations (see
	// WithIncrementalReplan).
	AdaptIncremental = adapt.Incremental
)

// AdaptReport summarizes one adaptation round.
type AdaptReport struct {
	// AdaptMessages counts overlay reconfiguration messages.
	AdaptMessages int
	// PlanTime is the planning cost of the round.
	PlanTime time.Duration
	// CollectedPairs is the coverage of the topology now in force.
	CollectedPairs int
	// Operations counts merge/split operations applied.
	Operations int
	// TreesKept, TreesRebuilt and TreesDropped are the round's
	// tree-level plan diff: kept trees survive with identical
	// fingerprints and need no re-announcement.
	TreesKept int
	// TreesRebuilt counts new or restructured trees (see TreesKept).
	TreesRebuilt int
	// TreesDropped counts retired attribute sets (see TreesKept).
	TreesDropped int
	// TreeReusePct is TreesKept over the new forest's trees, percent.
	TreeReusePct float64
	// Incremental reports the scoped replanner produced the plan;
	// FellBack that a scoped attempt was discarded for a full replan.
	Incremental bool
	// FellBack reports a discarded scoped attempt (see Incremental).
	FellBack bool
}

// Adaptor maintains a monitoring topology across task-set changes.
// Create one with NewAdaptor, seed it with SetTasks, then call SetTasks
// again whenever the task set changes.
type Adaptor struct {
	planner *Planner
	inner   *adapt.Adaptor
	started bool
}

// NewAdaptor wraps the planner's configuration in a runtime adaptor
// using the given scheme.
func NewAdaptor(p *Planner, scheme adapt.Scheme) *Adaptor {
	return &Adaptor{
		planner: p,
		inner:   adapt.New(scheme, p.corePlanner(), p.sys),
	}
}

// SetTasks replaces the task set and adapts the topology. The first call
// plans from scratch; later calls follow the adaptor's scheme.
func (a *Adaptor) SetTasks(tasks []Task) (AdaptReport, error) {
	mgr := task.NewManager(task.WithSystem(a.planner.sys))
	for _, t := range tasks {
		if err := mgr.Add(t); err != nil {
			return AdaptReport{}, fmt.Errorf("remo: %w", err)
		}
	}
	d := mgr.Demand()

	var rep adapt.Report
	if !a.started {
		rep = a.inner.Init(d)
		a.started = true
	} else {
		rep = a.inner.Apply(d)
	}
	return AdaptReport{
		AdaptMessages:  rep.AdaptMessages,
		PlanTime:       rep.PlanTime,
		CollectedPairs: rep.Stats.Collected,
		Operations:     rep.Operations,
		TreesKept:      len(rep.Diff.Kept),
		TreesRebuilt:   len(rep.Diff.Rebuilt),
		TreesDropped:   len(rep.Diff.Dropped),
		TreeReusePct:   rep.Diff.ReusePct(),
		Incremental:    rep.Replan.Incremental,
		FellBack:       rep.Replan.FellBack,
	}, nil
}

// Plan exposes the topology currently in force as a Plan.
func (a *Adaptor) Plan() *Plan {
	forest := a.inner.Forest()
	d := a.inner.Demand()
	return planFromForest(a.planner, forest, d)
}
