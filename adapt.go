package remo

import (
	"fmt"
	"time"

	"remo/internal/adapt"
	"remo/internal/task"
)

// AdaptScheme names a runtime adaptation policy.
type AdaptScheme = adapt.Scheme

// Adaptation schemes for runtime task changes.
const (
	// AdaptDirectApply applies task changes with minimal topology change
	// and never re-partitions.
	AdaptDirectApply = adapt.DirectApply
	// AdaptRebuild replans from scratch on every change.
	AdaptRebuild = adapt.Rebuild
	// AdaptNoThrottle searches merge/split improvements around changed
	// trees without cost-benefit throttling.
	AdaptNoThrottle = adapt.NoThrottle
	// AdaptAdaptive is REMO's scheme: the bounded search plus
	// cost-benefit throttling.
	AdaptAdaptive = adapt.Adaptive
)

// AdaptReport summarizes one adaptation round.
type AdaptReport struct {
	// AdaptMessages counts overlay reconfiguration messages.
	AdaptMessages int
	// PlanTime is the planning cost of the round.
	PlanTime time.Duration
	// CollectedPairs is the coverage of the topology now in force.
	CollectedPairs int
	// Operations counts merge/split operations applied.
	Operations int
}

// Adaptor maintains a monitoring topology across task-set changes.
// Create one with NewAdaptor, seed it with SetTasks, then call SetTasks
// again whenever the task set changes.
type Adaptor struct {
	planner *Planner
	inner   *adapt.Adaptor
	started bool
}

// NewAdaptor wraps the planner's configuration in a runtime adaptor
// using the given scheme.
func NewAdaptor(p *Planner, scheme adapt.Scheme) *Adaptor {
	return &Adaptor{
		planner: p,
		inner:   adapt.New(scheme, p.corePlanner(), p.sys),
	}
}

// SetTasks replaces the task set and adapts the topology. The first call
// plans from scratch; later calls follow the adaptor's scheme.
func (a *Adaptor) SetTasks(tasks []Task) (AdaptReport, error) {
	mgr := task.NewManager(task.WithSystem(a.planner.sys))
	for _, t := range tasks {
		if err := mgr.Add(t); err != nil {
			return AdaptReport{}, fmt.Errorf("remo: %w", err)
		}
	}
	d := mgr.Demand()

	var rep adapt.Report
	if !a.started {
		rep = a.inner.Init(d)
		a.started = true
	} else {
		rep = a.inner.Apply(d)
	}
	return AdaptReport{
		AdaptMessages:  rep.AdaptMessages,
		PlanTime:       rep.PlanTime,
		CollectedPairs: rep.Stats.Collected,
		Operations:     rep.Operations,
	}, nil
}

// Plan exposes the topology currently in force as a Plan.
func (a *Adaptor) Plan() *Plan {
	forest := a.inner.Forest()
	d := a.inner.Demand()
	return planFromForest(a.planner, forest, d)
}
