// Datacenter shows the extension features on an application
// provisioning scenario: fleet-wide hot-spot detection with in-network
// MAX aggregation, slow-changing disk metrics piggybacking at reduced
// frequency, and a mission-critical metric delivered redundantly over
// disjoint paths (SSDP).
package main

import (
	"fmt"
	"log"
	"os"

	"remo"
)

const (
	attrCPU  = remo.AttrID(1)
	attrMem  = remo.AttrID(2)
	attrNet  = remo.AttrID(3)
	attrDisk = remo.AttrID(4)
	attrSLA  = remo.AttrID(5)
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nodes := make([]remo.Node, 48)
	ids := make([]remo.NodeID, len(nodes))
	for i := range nodes {
		ids[i] = remo.NodeID(i + 1)
		nodes[i] = remo.Node{
			ID:       ids[i],
			Capacity: 90,
			Attrs:    []remo.AttrID{attrCPU, attrMem, attrNet, attrDisk, attrSLA},
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: 700,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		return err
	}

	p := remo.NewPlanner(sys,
		// Hot-spot detection needs only the fleet-wide maximum: partial
		// maxima merge at every hop, so these trees are nearly free.
		remo.WithAggregation(attrCPU, remo.AggMax, 0),
		remo.WithAggregation(attrMem, remo.AggMax, 0),
	)

	// Fleet-wide provisioning telemetry.
	p.MustAddTask(remo.Task{Name: "hotspots", Attrs: []remo.AttrID{attrCPU, attrMem}, Nodes: ids})
	p.MustAddTask(remo.Task{Name: "net", Attrs: []remo.AttrID{attrNet}, Nodes: ids})
	p.MustAddTask(remo.Task{Name: "disk", Attrs: []remo.AttrID{attrDisk}, Nodes: ids})

	// Disk utilization drifts slowly: collect it at a quarter of the
	// base rate; it piggybacks on each node's faster metrics.
	if err := p.SetFrequency(attrDisk, 0.25); err != nil {
		return err
	}

	// SLA violations must reach the collector even if a relay fails:
	// two copies over disjoint trees.
	if err := p.AddReliableTask(remo.Task{
		Name:  "sla-critical",
		Attrs: []remo.AttrID{attrSLA},
		Nodes: ids,
	}, 2); err != nil {
		return err
	}

	plan, err := p.Plan()
	if err != nil {
		return err
	}
	if err := plan.Describe(os.Stdout); err != nil {
		return err
	}

	// Normal operation.
	clean, err := plan.Deploy(remo.DeployConfig{Rounds: 40, Seed: 3})
	if err != nil {
		return err
	}
	fmt.Printf("healthy run:   %d/%d pairs covered, %.2f%% avg error\n",
		clean.CoveredPairs, clean.DemandedPairs, clean.AvgPercentError)

	// Kill one replica path's root mid-run: the SLA metric must stay
	// covered through the surviving tree.
	victim := plan.Trees()[0].Root
	faulty, err := plan.Deploy(remo.DeployConfig{
		Rounds: 40,
		Seed:   3,
		FailAt: map[remo.NodeID]int{victim: 10},
	})
	if err != nil {
		return err
	}
	fmt.Printf("with %v down:  %d/%d pairs covered, %.2f%% avg error\n",
		victim, faulty.CoveredPairs, faulty.DemandedPairs, faulty.AvgPercentError)
	return nil
}
