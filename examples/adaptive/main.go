// Adaptive demonstrates runtime topology adaptation under task churn:
// monitoring tasks are repeatedly modified (as users debug a live
// application) and the four adaptation schemes are compared on planning
// time, reconfiguration traffic and the coverage of the resulting
// topologies.
package main

import (
	"fmt"
	"log"
	"time"

	"remo"
	"remo/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := workload.System(workload.SystemConfig{
		Nodes:      40,
		Attrs:      20,
		CapacityLo: 150,
		CapacityHi: 400,
		Seed:       11,
	})
	if err != nil {
		return err
	}
	initial := workload.Tasks(sys, workload.TaskConfig{
		Count:        25,
		AttrsPerTask: 6,
		NodesPerTask: 8,
		Seed:         12,
		Prefix:       "task",
	})

	fmt.Println("6 churn batches, 5% of tasks mutated per batch:")
	fmt.Printf("%-12s %12s %14s %10s %8s\n", "scheme", "plan time", "adapt msgs", "coverage", "ops")

	for _, scheme := range []struct {
		name string
		mode remo.AdaptScheme
	}{
		{"D-A", remo.AdaptDirectApply},
		{"REBUILD", remo.AdaptRebuild},
		{"NO-THROTTLE", remo.AdaptNoThrottle},
		{"ADAPTIVE", remo.AdaptAdaptive},
	} {
		planner := remo.NewPlanner(sys)
		ad := remo.NewAdaptor(planner, scheme.mode)

		tasks := initial
		if _, err := ad.SetTasks(tasks); err != nil {
			return err
		}
		var (
			planTime  time.Duration
			adaptMsgs int
			ops       int
			collected int
		)
		for batch := 0; batch < 6; batch++ {
			tasks = workload.Churn(sys, tasks, workload.ChurnConfig{
				TaskFraction: 0.05,
				AttrFraction: 0.5,
				Seed:         int64(batch) + 100,
			})
			rep, err := ad.SetTasks(tasks)
			if err != nil {
				return err
			}
			planTime += rep.PlanTime
			adaptMsgs += rep.AdaptMessages
			ops += rep.Operations
			collected = rep.CollectedPairs
		}
		fmt.Printf("%-12s %12v %14d %9d %8d\n",
			scheme.name, planTime.Round(time.Millisecond), adaptMsgs, collected, ops)
	}
	return nil
}
