// Streamapp reproduces the paper's motivating deployment in miniature:
// a distributed stream-processing application (the System S /
// YieldMonitor stand-in from internal/streams) runs across the cluster,
// and operators' rates, buffer occupancies and CPU loads are monitored.
// The example compares the freshness of REMO's resource-aware topology
// against the singleton-set baseline on the same workload.
package main

import (
	"fmt"
	"log"

	"remo"
	"remo/internal/streams"
	"remo/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		nodeCount  = 60
		opsPerNode = 10 // 10 operators x 4 metrics = 40 attrs per node
		rounds     = 60
		taskCount  = 40
	)

	// The monitored system: each node's budget covers its own updates
	// plus limited relaying, as on the paper's BlueGene/P deployment.
	sys, err := workload.System(workload.SystemConfig{
		Nodes:           nodeCount,
		Attrs:           opsPerNode * streams.MetricsPerOp,
		CapacityLo:      250,
		CapacityHi:      600,
		CentralCapacity: 2500,
		Seed:            7,
	})
	if err != nil {
		return err
	}

	// The stream application whose state is being monitored.
	app, err := streams.NewPipelineApp(sys.NodeIDs(), opsPerNode, 7)
	if err != nil {
		return err
	}
	app.Simulate(rounds)

	// Monitoring tasks: debugging and provisioning queries over operator
	// metrics (input rate, buffer occupancy, CPU, ...).
	tasks := workload.Tasks(sys, workload.TaskConfig{
		Count:        taskCount,
		AttrsPerTask: 12,
		NodesPerTask: nodeCount / 5,
		Seed:         8,
		Prefix:       "probe",
	})

	schemes := []struct {
		name string
		opt  remo.PlannerOption
	}{
		{"REMO", remo.WithBaseline(remo.BaselineNone)},
		{"SINGLETON-SET", remo.WithBaseline(remo.BaselineSingletonSet)},
		{"ONE-SET", remo.WithBaseline(remo.BaselineOneSet)},
	}
	for _, scheme := range schemes {
		schemeName := scheme.name
		p := remo.NewPlanner(sys, scheme.opt)
		for _, t := range tasks {
			if err := p.AddTask(t); err != nil {
				return err
			}
		}
		plan, err := p.Plan()
		if err != nil {
			return err
		}
		rep, err := plan.Deploy(remo.DeployConfig{
			Rounds: rounds,
			Source: app, // ground truth comes from the stream simulation
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-16s coverage %5.1f%%  avg error %6.2f%%  staleness %.2f rounds\n",
			schemeName, plan.PercentCollected(), rep.AvgPercentError, rep.AvgStaleness)
	}
	return nil
}
