// Liveops runs a live monitoring session end to end: values stream into
// the collector's repository while standing triggers raise alerts, a
// task update arrives mid-flight and the topology adapts in place, and
// finally a relay node dies and the plan is repaired.
package main

import (
	"fmt"
	"log"

	"remo"
)

const (
	attrCPU     = remo.AttrID(1)
	attrLatency = remo.AttrID(2)
	attrErrors  = remo.AttrID(3)
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nodes := make([]remo.Node, 24)
	ids := make([]remo.NodeID, len(nodes))
	for i := range nodes {
		ids[i] = remo.NodeID(i + 1)
		nodes[i] = remo.Node{
			ID:       ids[i],
			Capacity: 110,
			Attrs:    []remo.AttrID{attrCPU, attrLatency, attrErrors},
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: 500,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		return err
	}

	p := remo.NewPlanner(sys)
	tasks := []remo.Task{
		{Name: "fleet-cpu", Attrs: []remo.AttrID{attrCPU}, Nodes: ids},
	}
	for _, t := range tasks {
		p.MustAddTask(t)
	}

	// Repository + result processor: retain history, alert on hot CPUs.
	repo := remo.NewStore(64)
	proc := remo.NewProcessor(256)
	if err := proc.AddTrigger(remo.Trigger{
		Name: "cpu-hot", Attr: attrCPU,
		Cond: remo.TriggerAbove, Threshold: 160, Cooldown: 10,
	}); err != nil {
		return err
	}

	mon, err := p.StartMonitor(remo.MonitorConfig{
		Scheme: remo.AdaptAdaptive,
		Seed:   7,
		OnValue: func(pair remo.Pair, round int, v float64) {
			repo.Observe(pair, round, v)
			proc.Observe(pair, round, v)
		},
	})
	if err != nil {
		return err
	}
	defer func() { _ = mon.Close() }()

	if err := mon.Run(20); err != nil {
		return err
	}
	fmt.Printf("phase 1 (cpu only):      %d pairs covered, %d alerts so far\n",
		mon.Report().CoveredPairs, proc.AlertCount())

	// An operator adds latency + error-rate probes for the frontend
	// half of the fleet; the topology adapts without restarting.
	tasks = append(tasks, remo.Task{
		Name:  "frontend-probes",
		Attrs: []remo.AttrID{attrLatency, attrErrors},
		Nodes: ids[:12],
	})
	rep, err := mon.SetTasks(tasks)
	if err != nil {
		return err
	}
	fmt.Printf("adaptation:              %d rewiring messages, %v planning time\n",
		rep.AdaptMessages, rep.PlanTime.Round(1e6))

	if err := mon.Run(20); err != nil {
		return err
	}
	final := mon.Report()
	fmt.Printf("phase 2 (probes added):  %d/%d pairs covered, %.1f%% avg error\n",
		final.CoveredPairs, final.DemandedPairs, final.AvgPercentError)

	// Inspect the repository: the busiest node's CPU history.
	if pairs := repo.Pairs(); len(pairs) > 0 {
		if sum, ok := repo.Summarize(pairs[0]); ok {
			fmt.Printf("repository:              %v samples for %v (mean %.1f, max %.1f)\n",
				sum.Count, pairs[0], sum.Mean, sum.Max)
		}
	}
	fmt.Printf("alerts:                  %d total", proc.AlertCount())
	if alerts := proc.Alerts(); len(alerts) > 0 {
		fmt.Printf(" (first: %s at %v, value %.1f)",
			alerts[0].Trigger, alerts[0].Pair, alerts[0].Value)
	}
	fmt.Println()

	// A relay node dies: repair the plan over the survivors.
	victim := mon.Plan().Trees()[0].Root
	repaired, rrep, err := mon.Plan().Repair([]remo.NodeID{victim})
	if err != nil {
		return err
	}
	fmt.Printf("repair after %v failed:  %d trees rebuilt, %d pairs lost, coverage now %.1f%%\n",
		victim, rrep.TreesRebuilt, rrep.PairsLost, repaired.PercentCollected())
	return nil
}
