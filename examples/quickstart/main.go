// Quickstart: plan a monitoring topology for a small cluster, inspect
// it, and run the emulated deployment.
package main

import (
	"fmt"
	"log"
	"os"

	"remo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 16-node cluster. Every node can observe three metrics: CPU (1),
	// memory (2) and request latency (3). Capacities are per-round
	// budgets in cost units under cost(msg) = C + a·x.
	const (
		cpu     = remo.AttrID(1)
		mem     = remo.AttrID(2)
		latency = remo.AttrID(3)
	)
	nodes := make([]remo.Node, 16)
	ids := make([]remo.NodeID, 16)
	for i := range nodes {
		ids[i] = remo.NodeID(i + 1)
		nodes[i] = remo.Node{
			ID:       ids[i],
			Capacity: 100,
			Attrs:    []remo.AttrID{cpu, mem, latency},
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: 400,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		return err
	}

	// Three monitoring tasks with overlapping scopes; duplicated
	// node-attribute pairs are collected once.
	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "fleet-cpu", Attrs: []remo.AttrID{cpu}, Nodes: ids})
	p.MustAddTask(remo.Task{Name: "fleet-mem", Attrs: []remo.AttrID{mem}, Nodes: ids})
	p.MustAddTask(remo.Task{Name: "frontend-health", Attrs: []remo.AttrID{cpu, latency}, Nodes: ids[:8]})

	raw, distinct := p.DedupStats()
	fmt.Printf("task manager: %d raw pairs -> %d after duplicate elimination\n", raw, distinct)

	plan, err := p.Plan()
	if err != nil {
		return err
	}
	if err := plan.Describe(os.Stdout); err != nil {
		return err
	}

	// Deploy: one goroutine per node, update messages flowing up the
	// planned trees, a central collector measuring freshness.
	rep, err := plan.Deploy(remo.DeployConfig{Rounds: 60, Seed: 42})
	if err != nil {
		return err
	}
	fmt.Printf("deployed %d rounds: %d/%d pairs covered, %.2f%% avg error, %.2f rounds avg staleness\n",
		rep.Rounds, rep.CoveredPairs, rep.DemandedPairs, rep.AvgPercentError, rep.AvgStaleness)
	fmt.Printf("traffic: %d messages, %d values delivered, %d dropped\n",
		rep.MessagesSent, rep.ValuesDelivered, rep.MessagesDropped)
	return nil
}
