package remo_test

import (
	"testing"

	"remo"
)

// TestMonitorIncrementalReplanTrace exercises the facade surface of
// incremental replanning: SetTasks on a default session goes through
// the scoped replanner, the AdaptReport and DeployReport carry the plan
// diff, and the trace records the swap tree-by-tree.
func TestMonitorIncrementalReplanTrace(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys)
	ids := allNodes(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: ids})

	rec := remo.NewTraceRecorder(4096)
	mon, err := p.StartMonitor(remo.MonitorConfig{Seed: 5, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	if err := mon.Run(3); err != nil {
		t.Fatal(err)
	}

	rep, err := mon.SetTasks([]remo.Task{
		{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: ids},
		{Name: "mem", Attrs: []remo.AttrID{2}, Nodes: ids},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Incremental {
		t.Fatalf("default session replanned non-incrementally: %+v", rep)
	}
	if rep.TreesKept+rep.TreesRebuilt == 0 {
		t.Fatalf("plan diff empty after task arrival: %+v", rep)
	}
	if rep.TreeReusePct < 0 || rep.TreeReusePct > 100 {
		t.Fatalf("TreeReusePct = %v", rep.TreeReusePct)
	}

	final := mon.Report()
	if len(final.Replans) != 1 {
		t.Fatalf("DeployReport.Replans has %d events, want 1", len(final.Replans))
	}
	ev := final.Replans[0]
	if ev.TreesKept != rep.TreesKept || ev.TreesRebuilt != rep.TreesRebuilt ||
		ev.Incremental != rep.Incremental || ev.ReusePct != rep.TreeReusePct {
		t.Fatalf("ReplanEvent %+v does not match AdaptReport %+v", ev, rep)
	}
	if ev.PlanTime < 0 {
		t.Fatalf("negative plan time %v", ev.PlanTime)
	}

	counts := rec.Counts()
	if counts[remo.TraceReplan] != 1 {
		t.Fatalf("trace has %d replan events, want 1", counts[remo.TraceReplan])
	}
	kept := counts[remo.TraceTreeKept]
	rebuilt := counts[remo.TraceTreeRebuilt]
	if kept != rep.TreesKept || rebuilt != rep.TreesRebuilt {
		t.Fatalf("trace tree events kept=%d rebuilt=%d, report kept=%d rebuilt=%d",
			kept, rebuilt, rep.TreesKept, rep.TreesRebuilt)
	}
}

// TestWithIncrementalReplanDisabled pins the opt-out: the session falls
// back to the paper's ADAPTIVE scheme and reports non-incremental
// replans.
func TestWithIncrementalReplanDisabled(t *testing.T) {
	sys := testSystem(t)
	p := remo.NewPlanner(sys, remo.WithIncrementalReplan(false))
	ids := allNodes(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: ids})

	mon, err := p.StartMonitor(remo.MonitorConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	if err := mon.Run(2); err != nil {
		t.Fatal(err)
	}
	rep, err := mon.SetTasks([]remo.Task{
		{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: ids},
		{Name: "mem", Attrs: []remo.AttrID{2}, Nodes: ids},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incremental {
		t.Fatalf("opted-out session still replanned incrementally: %+v", rep)
	}
	if rep.CollectedPairs == 0 {
		t.Fatalf("opted-out replan collected nothing: %+v", rep)
	}
}
