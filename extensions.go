package remo

import (
	"errors"
	"fmt"

	"remo/internal/cost"
	"remo/internal/freq"
	"remo/internal/partition"
	"remo/internal/predict"
	"remo/internal/reliability"
	"remo/internal/workload"
)

// RackDistance returns a distance function for System.Distance modeling
// a racked topology (the §3.3 non-uniform-network extension): nodes are
// grouped into racks of rackSize by id, same-rack sends cost intra,
// cross-rack sends cost inter. Sending a message then costs its endpoint
// cost times the distance factor; planning and validation account for
// it.
func RackDistance(rackSize int, intra, inter float64) func(a, b NodeID) float64 {
	return workload.RackDistance(rackSize, intra, inter)
}

// Topology prices overlay edges by the regions of their endpoints (the
// WAN extension of the §3.3 distance model): label nodes with
// Node.Region, then call System.ApplyTopology so planning, incremental
// replanning, capacity validation and verification all charge
// EdgeCost(srcRegion, dstRegion) times the endpoint cost per send.
// NewTopology(1, 10) prices cross-region hops at ten rack-local sends;
// per-link overrides go through Topology.SetLink.
type Topology = cost.Topology

// NewTopology returns a Topology with intra-region edges at intra and
// inter-region edges at inter (non-positive selects the defaults: 1 and
// cost.DefaultInterRegionCost).
func NewTopology(intra, inter float64) *Topology {
	return cost.NewTopology(intra, inter)
}

// RegionName labels region index i the way the synthetic workload
// generator and remo-sim do ("r0", "r1", ...).
func RegionName(i int) string { return workload.RegionName(i) }

// ReliabilityAliasBase is where replica alias attribute ids start; real
// attribute ids must stay below it.
const ReliabilityAliasBase AttrID = 1 << 20

// AddReliableTask registers a task whose values are delivered
// redundantly over disjoint paths (the paper's SSDP mode): replicas
// copies of every value travel in different collection trees. replicas
// counts total copies and must be >= 2.
func (p *Planner) AddReliableTask(t Task, replicas int) error {
	rw, err := reliability.SSDP(t, replicas, p.nextAliasBase(t, replicas))
	if err != nil {
		return fmt.Errorf("remo: %w", err)
	}
	for _, rt := range rw.Tasks {
		if err := p.mgr.Add(rt); err != nil {
			return fmt.Errorf("remo: %w", err)
		}
	}
	if p.aliases == nil {
		p.aliases = reliability.NewAliasMap()
	}
	for _, orig := range t.Attrs {
		for _, alias := range rw.Aliases.Aliases(orig) {
			p.aliases.Add(alias, orig)
		}
	}
	if p.cons == nil {
		p.cons = partition.NewConstraints()
	}
	p.cons.Merge(rw.Constraints)
	return nil
}

// nextAliasBase reserves a private alias id range for one rewrite.
func (p *Planner) nextAliasBase(t Task, replicas int) AttrID {
	if p.aliasNext == 0 {
		p.aliasNext = ReliabilityAliasBase
	}
	base := p.aliasNext
	p.aliasNext += AttrID(len(t.Attrs)*(replicas-1) + 1)
	return base
}

// AddSharedValueTask registers a DSDP (different sources, different
// paths) task: the same logical value is observable at several nodes
// (observerGroups[i] lists the observers of the i-th shared value), and
// replicas copies are collected from distinct observers over distinct
// trees. replicas must be >= 2 and no larger than the smallest group.
func (p *Planner) AddSharedValueTask(name string, attr AttrID, observerGroups [][]NodeID, replicas int) error {
	groups := make(reliability.ObserverGroups, len(observerGroups))
	for i, g := range observerGroups {
		groups[i] = append([]NodeID(nil), g...)
	}
	rw, err := reliability.DSDP(name, attr, groups, replicas,
		p.nextAliasBase(Task{Attrs: []AttrID{attr}}, replicas))
	if err != nil {
		return fmt.Errorf("remo: %w", err)
	}
	for _, rt := range rw.Tasks {
		if err := p.mgr.Add(rt); err != nil {
			return fmt.Errorf("remo: %w", err)
		}
	}
	if p.aliases == nil {
		p.aliases = reliability.NewAliasMap()
	}
	for _, alias := range rw.Aliases.Aliases(attr) {
		p.aliases.Add(alias, attr)
	}
	if p.cons == nil {
		p.cons = partition.NewConstraints()
	}
	p.cons.Merge(rw.Constraints)
	return nil
}

// AddRegionSpreadTask registers a DSDP task whose replicas additionally
// must not be colocated in one region: observer groups are reordered
// round-robin across the system's region labels before replica
// selection, so every replicated value keeps at least one live owner
// when an entire region is lost. Requires a region-labeled system and
// groups spanning >= 2 regions (reliability.ErrColocated otherwise).
func (p *Planner) AddRegionSpreadTask(name string, attr AttrID, observerGroups [][]NodeID, replicas int) error {
	groups := make(reliability.ObserverGroups, len(observerGroups))
	for i, g := range observerGroups {
		groups[i] = append([]NodeID(nil), g...)
	}
	rw, err := reliability.RegionDSDP(name, attr, groups, replicas,
		p.nextAliasBase(Task{Attrs: []AttrID{attr}}, replicas), p.sys.RegionOf)
	if err != nil {
		return fmt.Errorf("remo: %w", err)
	}
	for _, rt := range rw.Tasks {
		if err := p.mgr.Add(rt); err != nil {
			return fmt.Errorf("remo: %w", err)
		}
	}
	if p.aliases == nil {
		p.aliases = reliability.NewAliasMap()
	}
	for _, alias := range rw.Aliases.Aliases(attr) {
		p.aliases.Add(alias, attr)
	}
	if p.cons == nil {
		p.cons = partition.NewConstraints()
	}
	p.cons.Merge(rw.Constraints)
	return nil
}

// SetFrequency declares attribute a's update frequency (updates per
// collection round; only ratios matter). Slower attributes piggyback on
// their node's fastest metric, shrinking their payload weight; rates
// that piggybacking cannot approximate within 10% get their own
// collection trees.
func (p *Planner) SetFrequency(a AttrID, f float64) error {
	if p.freqSpec == nil {
		p.freqSpec = freq.NewSpec()
		p.freqSpec.Tolerance = 0.1
	}
	if err := p.freqSpec.Set(a, f); err != nil {
		return fmt.Errorf("remo: %w", err)
	}
	return nil
}

// ErrPredictionOff is returned by the SetPrediction* family when the
// planner was built without WithPrediction.
var ErrPredictionOff = errors.New("remo: prediction not armed; construct the planner with WithPrediction")

// SetPredictionBound overrides the dead-band suppression error bound
// for attribute a (relative, e.g. 0.02 = 2%). The planner must have
// been built with WithPrediction.
func (p *Planner) SetPredictionBound(a AttrID, eps float64) error {
	if p.predSpec == nil {
		return ErrPredictionOff
	}
	if err := p.predSpec.Set(a, eps); err != nil {
		return fmt.Errorf("remo: %w", err)
	}
	return nil
}

// SetPredictionModel overrides the forecasting model kind for
// attribute a (PredictEWMA or PredictHolt). The planner must have been
// built with WithPrediction.
func (p *Planner) SetPredictionModel(a AttrID, k predict.Kind) error {
	if p.predSpec == nil {
		return ErrPredictionOff
	}
	p.predSpec.SetModel(a, k)
	return nil
}

// SetPredictionSync overrides the periodic model re-sync cadence: every
// cadence rounds (staggered per node) a leaf transmits the true value
// and both replicas reset onto it, bounding how long a silently lost
// marker can keep a pair refusing imputation. The planner must have
// been built with WithPrediction.
func (p *Planner) SetPredictionSync(cadence int) error {
	if p.predSpec == nil {
		return ErrPredictionOff
	}
	if cadence < 1 {
		return fmt.Errorf("remo: prediction sync cadence must be at least 1 round (got %d)", cadence)
	}
	p.predSpec.SyncEvery = cadence
	return nil
}

// SetPredictionRate records an expected transmit rate for attribute a
// (fraction of due rounds actually sent, in (0, 1]); Plan then packs
// against rate-discounted weights and cost estimates scale payload by
// the rate (cost.Rate composes it with frequency weights). Rates feed
// planning only — a live session's suppression is driven by the error
// bounds, never by recorded rates.
func (p *Planner) SetPredictionRate(a AttrID, rate float64) error {
	if p.predSpec == nil {
		return ErrPredictionOff
	}
	p.predSpec.SetRate(a, rate)
	return nil
}

// ObservePredictionRate feeds a realized transmit rate (for example
// 1 - suppressed/observed from a session's DeployReport) back into the
// planner, padded by the spec's safety tolerance so later plans stay
// conservative.
func (p *Planner) ObservePredictionRate(a AttrID, realized float64) error {
	if p.predSpec == nil {
		return ErrPredictionOff
	}
	p.predSpec.ObserveRate(a, realized)
	return nil
}

// resolveAttr maps replica aliases back to their original attribute.
func (p *Planner) resolveAttr(a AttrID) AttrID {
	return p.aliases.Original(a)
}
