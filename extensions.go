package remo

import (
	"fmt"

	"remo/internal/freq"
	"remo/internal/partition"
	"remo/internal/reliability"
	"remo/internal/workload"
)

// RackDistance returns a distance function for System.Distance modeling
// a racked topology (the §3.3 non-uniform-network extension): nodes are
// grouped into racks of rackSize by id, same-rack sends cost intra,
// cross-rack sends cost inter. Sending a message then costs its endpoint
// cost times the distance factor; planning and validation account for
// it.
func RackDistance(rackSize int, intra, inter float64) func(a, b NodeID) float64 {
	return workload.RackDistance(rackSize, intra, inter)
}

// ReliabilityAliasBase is where replica alias attribute ids start; real
// attribute ids must stay below it.
const ReliabilityAliasBase AttrID = 1 << 20

// AddReliableTask registers a task whose values are delivered
// redundantly over disjoint paths (the paper's SSDP mode): replicas
// copies of every value travel in different collection trees. replicas
// counts total copies and must be >= 2.
func (p *Planner) AddReliableTask(t Task, replicas int) error {
	rw, err := reliability.SSDP(t, replicas, p.nextAliasBase(t, replicas))
	if err != nil {
		return fmt.Errorf("remo: %w", err)
	}
	for _, rt := range rw.Tasks {
		if err := p.mgr.Add(rt); err != nil {
			return fmt.Errorf("remo: %w", err)
		}
	}
	if p.aliases == nil {
		p.aliases = reliability.NewAliasMap()
	}
	for _, orig := range t.Attrs {
		for _, alias := range rw.Aliases.Aliases(orig) {
			p.aliases.Add(alias, orig)
		}
	}
	if p.cons == nil {
		p.cons = partition.NewConstraints()
	}
	p.cons.Merge(rw.Constraints)
	return nil
}

// nextAliasBase reserves a private alias id range for one rewrite.
func (p *Planner) nextAliasBase(t Task, replicas int) AttrID {
	if p.aliasNext == 0 {
		p.aliasNext = ReliabilityAliasBase
	}
	base := p.aliasNext
	p.aliasNext += AttrID(len(t.Attrs)*(replicas-1) + 1)
	return base
}

// AddSharedValueTask registers a DSDP (different sources, different
// paths) task: the same logical value is observable at several nodes
// (observerGroups[i] lists the observers of the i-th shared value), and
// replicas copies are collected from distinct observers over distinct
// trees. replicas must be >= 2 and no larger than the smallest group.
func (p *Planner) AddSharedValueTask(name string, attr AttrID, observerGroups [][]NodeID, replicas int) error {
	groups := make(reliability.ObserverGroups, len(observerGroups))
	for i, g := range observerGroups {
		groups[i] = append([]NodeID(nil), g...)
	}
	rw, err := reliability.DSDP(name, attr, groups, replicas,
		p.nextAliasBase(Task{Attrs: []AttrID{attr}}, replicas))
	if err != nil {
		return fmt.Errorf("remo: %w", err)
	}
	for _, rt := range rw.Tasks {
		if err := p.mgr.Add(rt); err != nil {
			return fmt.Errorf("remo: %w", err)
		}
	}
	if p.aliases == nil {
		p.aliases = reliability.NewAliasMap()
	}
	for _, alias := range rw.Aliases.Aliases(attr) {
		p.aliases.Add(alias, attr)
	}
	if p.cons == nil {
		p.cons = partition.NewConstraints()
	}
	p.cons.Merge(rw.Constraints)
	return nil
}

// SetFrequency declares attribute a's update frequency (updates per
// collection round; only ratios matter). Slower attributes piggyback on
// their node's fastest metric, shrinking their payload weight; rates
// that piggybacking cannot approximate within 10% get their own
// collection trees.
func (p *Planner) SetFrequency(a AttrID, f float64) error {
	if p.freqSpec == nil {
		p.freqSpec = freq.NewSpec()
		p.freqSpec.Tolerance = 0.1
	}
	if err := p.freqSpec.Set(a, f); err != nil {
		return fmt.Errorf("remo: %w", err)
	}
	return nil
}

// resolveAttr maps replica aliases back to their original attribute.
func (p *Planner) resolveAttr(a AttrID) AttrID {
	return p.aliases.Original(a)
}
