package remo_test

import (
	"sync"
	"testing"

	"remo"
)

// TestRepeatedFlappingRecovery crashes and recovers the same node N
// times (chaos crash windows) and requires the self-healing loop to
// track every cycle: one death declaration and one reintegration per
// window, the topology verified after every rewire, and the node ends
// the run reintegrated — present in the plan, absent from the dead set.
func TestRepeatedFlappingRecovery(t *testing.T) {
	const (
		flaps     = 3
		suspicion = 2
		rounds    = 60
	)
	flappy := remo.NodeID(5)
	windows := make([]remo.ChaosWindow, flaps)
	for i := range windows {
		// Down [10,16), [26,32), [42,48): six-round outages, ten-round
		// recoveries — both comfortably wider than the suspicion window.
		windows[i] = remo.ChaosWindow{From: 10 + 16*i, To: 16 + 16*i}
	}

	sys := bigSystem(t, 16)
	// WithVerification makes the monitor cross-check every hot-swapped
	// topology (verify.Plan after each rewire); a failure surfaces in Run.
	p := remo.NewPlanner(sys, remo.WithVerification())
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})

	// Record which rounds deliver the flappy node's values, to check
	// collection behaviorally resumes after the final reintegration.
	var obsMu sync.Mutex
	lastSeen := -1
	mon, err := p.StartMonitor(remo.MonitorConfig{
		Seed: 11,
		Chaos: &remo.ChaosConfig{
			CrashWindows: map[remo.NodeID][]remo.ChaosWindow{flappy: windows},
		},
		Failure: &remo.FailurePolicy{SuspicionRounds: suspicion},
		OnValue: func(pair remo.Pair, round int, value float64) {
			if pair.Node == flappy {
				obsMu.Lock()
				if round > lastSeen {
					lastSeen = round
				}
				obsMu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mon.Close() }()
	if err := mon.Run(rounds); err != nil {
		t.Fatal(err)
	}
	if err := mon.Verify(); err != nil {
		t.Fatal(err)
	}

	rep := mon.Report()
	if rep.FailuresDetected != flaps {
		t.Fatalf("failures = %d, want one per flap (%d): %+v",
			rep.FailuresDetected, flaps, rep.Repairs)
	}
	if rep.NodesRecovered != flaps {
		t.Fatalf("recoveries = %d, want one per flap (%d): %+v",
			rep.NodesRecovered, flaps, rep.Repairs)
	}
	// Exactly one reintegration per cycle — a flapping node must not be
	// reintegrated twice for the same recovery.
	reint := 0
	for _, ev := range rep.Repairs {
		for _, n := range ev.Recovered {
			if n == flappy {
				reint++
			}
		}
		for _, n := range ev.Failed {
			if n != flappy {
				t.Fatalf("unrelated node %v declared dead: %+v", n, ev)
			}
		}
	}
	if reint != flaps {
		t.Fatalf("node reintegrated %d times, want %d", reint, flaps)
	}
	// The run ends with the node alive and reintegrated: the dead set is
	// empty and its values flowed again after the final recovery window.
	if failed := mon.Failed(); len(failed) != 0 {
		t.Fatalf("dead set not empty at end of run: %v", failed)
	}
	obsMu.Lock()
	defer obsMu.Unlock()
	if lastSeen <= windows[flaps-1].To {
		t.Fatalf("flappy node last collected at round %d, want after its final window (ends %d)",
			lastSeen, windows[flaps-1].To)
	}
}
