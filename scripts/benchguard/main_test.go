package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
BenchmarkPlannerSequential-1   	       1	155000000000 ns/op
BenchmarkPlannerParallel-1     	       1	5700000000 ns/op
PASS
`

const plannerJSON = `[
  {
    "name": "planner",
    "tables": [
      {
        "Title": "Planner wall-clock — Fig 6a sweep",
        "Columns": ["SEQ_MS", "PAR_MS", "SPEEDUP"],
        "Rows": [
          {"X": 100, "Cells": [1000, 500, 2.0]},
          {"X": 400, "Cells": [9000, 3000, 3.0]}
        ]
      }
    ]
  }
]`

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunPassesAboveFloor(t *testing.T) {
	bench := write(t, "bench.out", benchOut)
	doc := write(t, "BENCH_planner.json", plannerJSON)
	// live 155/5.7 ≈ 27x vs floor 0.8×3.0 = 2.4x.
	if err := run([]string{bench, doc}); err != nil {
		t.Fatalf("run failed above the floor: %v", err)
	}
}

func TestRunFailsBelowFloor(t *testing.T) {
	flat := strings.ReplaceAll(benchOut, "155000000000", "5700000000") // live 1.0x
	bench := write(t, "bench.out", flat)
	doc := write(t, "BENCH_planner.json", plannerJSON)
	err := run([]string{bench, doc})
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("run below the floor returned %v, want regression error", err)
	}
}

func TestRunArgValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("run with no args succeeded")
	}
	if err := run([]string{"a"}); err == nil {
		t.Fatal("run with one arg succeeded")
	}
}

func TestParseBenchErrors(t *testing.T) {
	if _, _, err := parseBench(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("parseBench on a missing file succeeded")
	}
	empty := write(t, "empty.out", "PASS\n")
	if _, _, err := parseBench(empty); err == nil {
		t.Fatal("parseBench without planner lines succeeded")
	}
	// Only one of the two benchmarks present is still incomplete.
	half := write(t, "half.out", "BenchmarkPlannerSequential-1 1 100 ns/op\n")
	if _, _, err := parseBench(half); err == nil {
		t.Fatal("parseBench with only the sequential line succeeded")
	}
}

func TestRecordedHeadlinePicksLargestRow(t *testing.T) {
	doc := write(t, "BENCH_planner.json", plannerJSON)
	got, err := recordedHeadline(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.0 {
		t.Fatalf("headline = %v, want the n=400 row's 3.0", got)
	}
}

func TestRecordedHeadlineErrors(t *testing.T) {
	if _, err := recordedHeadline(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("recordedHeadline on a missing file succeeded")
	}
	bad := write(t, "bad.json", "{not json")
	if _, err := recordedHeadline(bad); err == nil {
		t.Fatal("recordedHeadline on malformed JSON succeeded")
	}
	noFig := write(t, "nofig.json", `[{"name":"planner","tables":[{"Title":"other","Columns":["SPEEDUP"],"Rows":[{"X":1,"Cells":[2.0]}]}]}]`)
	if _, err := recordedHeadline(noFig); err == nil {
		t.Fatal("recordedHeadline without a Fig 6a table succeeded")
	}
}

const shardJSON = `[
  {
    "name": "shard",
    "tables": [
      {
        "Title": "Sharded tier — dispatcher overhead vs single collector (Fig 6a shape)",
        "Columns": ["SINGLE_MS", "SHARD_MS", "OVERHEAD_PCT"],
        "Rows": [
          {"X": 2, "Cells": [30, 36, 20.0]},
          {"X": 4, "Cells": [30, 33, 9.5]},
          {"X": 8, "Cells": [30, 40, 33.0]}
        ]
      }
    ]
  }
]`

func TestShardGatePassesBelowCeiling(t *testing.T) {
	doc := write(t, "BENCH_shard.json", shardJSON)
	if err := run([]string{"-shard", doc}); err != nil {
		t.Fatalf("run failed below the ceiling: %v", err)
	}
}

func TestShardGateFailsAboveCeiling(t *testing.T) {
	hot := strings.ReplaceAll(shardJSON, "9.5", "15.1")
	doc := write(t, "BENCH_shard.json", hot)
	err := run([]string{"-shard", doc})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("run above the ceiling returned %v, want ceiling error", err)
	}
}

func TestShardGateInputErrors(t *testing.T) {
	if err := run([]string{"-shard", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("missing document accepted")
	}
	noRow := strings.ReplaceAll(shardJSON, `"X": 4`, `"X": 5`)
	if err := run([]string{"-shard", write(t, "norow.json", noRow)}); err == nil {
		t.Fatal("document without a 4-shard row accepted")
	}
	noCol := strings.ReplaceAll(shardJSON, "OVERHEAD_PCT", "OVERHEAD")
	if err := run([]string{"-shard", write(t, "nocol.json", noCol)}); err == nil {
		t.Fatal("document without an OVERHEAD_PCT column accepted")
	}
	if err := run([]string{"-shard", write(t, "garbage.json", "{")}); err == nil {
		t.Fatal("unparseable document accepted")
	}
}

func TestShardGateAgainstCheckedInDocument(t *testing.T) {
	// The real gate in check.sh runs against the repo's BENCH_shard.json;
	// keep the checked-in document passing.
	if err := run([]string{"-shard", "../../BENCH_shard.json"}); err != nil {
		t.Fatalf("checked-in BENCH_shard.json fails the gate: %v", err)
	}
}

const suppressJSON = `[
  {
    "name": "suppress",
    "tables": [
      {
        "Title": "Suppression — wire bytes at accuracy, ε sweep (Fig 6a shape, plateau source)",
        "Columns": ["BASE_KB", "SUPP_KB", "REDUCTION_X", "SUPP_PCT", "ERR_PCT", "BAND_MAX"],
        "Rows": [
          {"X": 0.005, "Cells": [50000, 16000, 3.1, 89.0, 1.3, 0.99]},
          {"X": 0.01, "Cells": [50000, 15500, 3.2, 89.4, 1.3, 1.0]}
        ]
      },
      {
        "Title": "Suppression — robustness at ε=1%",
        "Columns": ["REDUCTION_X", "SUPP_PCT", "IMPUTED", "MARKERS_LOST", "BAND_MAX"],
        "Rows": [
          {"X": 1, "Cells": [2.6, 81.0, 380000, 580000, 0.99]},
          {"X": 2, "Cells": [3.2, 89.0, 840000, 210000, 1.0]}
        ]
      }
    ]
  }
]`

func TestSuppressGatePasses(t *testing.T) {
	doc := write(t, "BENCH_suppress.json", suppressJSON)
	if err := run([]string{"-suppress", doc}); err != nil {
		t.Fatalf("run failed above the floor: %v", err)
	}
}

func TestSuppressGateFailsBelowReductionFloor(t *testing.T) {
	weak := strings.ReplaceAll(suppressJSON, `"Cells": [50000, 15500, 3.2, 89.4, 1.3, 1.0]`,
		`"Cells": [50000, 20000, 2.5, 80.0, 1.3, 1.0]`)
	doc := write(t, "BENCH_suppress.json", weak)
	err := run([]string{"-suppress", doc})
	if err == nil || !strings.Contains(err.Error(), "below the") {
		t.Fatalf("run below the floor returned %v, want floor error", err)
	}
}

func TestSuppressGateFailsOnBrokenBand(t *testing.T) {
	// A band breach anywhere fails — here on a robustness row.
	broken := strings.ReplaceAll(suppressJSON, `"Cells": [2.6, 81.0, 380000, 580000, 0.99]`,
		`"Cells": [2.6, 81.0, 380000, 580000, 1.5]`)
	doc := write(t, "BENCH_suppress.json", broken)
	err := run([]string{"-suppress", doc})
	if err == nil || !strings.Contains(err.Error(), "dead-band") {
		t.Fatalf("run with a broken band returned %v, want invariant error", err)
	}
}

func TestSuppressGateInputErrors(t *testing.T) {
	if err := run([]string{"-suppress", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("missing document accepted")
	}
	noRow := strings.ReplaceAll(suppressJSON, `"X": 0.01`, `"X": 0.03`)
	if err := run([]string{"-suppress", write(t, "norow.json", noRow)}); err == nil {
		t.Fatal("document without an ε=1% row accepted")
	}
	if err := run([]string{"-suppress", write(t, "garbage.json", "{")}); err == nil {
		t.Fatal("unparseable document accepted")
	}
}

func TestSuppressGateAgainstCheckedInDocument(t *testing.T) {
	// The real gate in check.sh runs against the repo's
	// BENCH_suppress.json; keep the checked-in document passing.
	if err := run([]string{"-suppress", "../../BENCH_suppress.json"}); err != nil {
		t.Fatalf("checked-in BENCH_suppress.json fails the gate: %v", err)
	}
}

const serviceJSON = `[
  {
    "name": "service",
    "tables": [
      {
        "Title": "Service front door — admission latency and round throughput under churn (memory transport)",
        "Columns": ["ADMIT_P50_MS", "ADMIT_P95_MS", "ADMIT_P99_MS", "ROUNDS_PER_S", "REQS", "OPS_OK", "ERRORS", "VERIFY_FAILS"],
        "Rows": [
          {"X": 2500, "Cells": [0.04, 0.09, 0.15, 19.5, 7000, 150, 0, 0]},
          {"X": 5000, "Cells": [0.04, 0.08, 0.12, 12.5, 12000, 290, 0, 0]},
          {"X": 10000, "Cells": [0.04, 0.08, 0.11, 11.8, 16500, 510, 0, 0]}
        ]
      }
    ]
  }
]`

func TestServiceGatePasses(t *testing.T) {
	doc := write(t, "BENCH_service.json", serviceJSON)
	if err := run([]string{"-service", doc}); err != nil {
		t.Fatalf("run failed inside the bounds: %v", err)
	}
}

func TestServiceGateFailsAboveP99Ceiling(t *testing.T) {
	slow := strings.ReplaceAll(serviceJSON, `[0.04, 0.08, 0.11, 11.8`, `[0.04, 0.08, 75.0, 11.8`)
	doc := write(t, "BENCH_service.json", slow)
	err := run([]string{"-service", doc})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("run above the p99 ceiling returned %v, want ceiling error", err)
	}
}

func TestServiceGateFailsBelowRoundsFloor(t *testing.T) {
	starved := strings.ReplaceAll(serviceJSON, `0.11, 11.8`, `0.11, 1.2`)
	doc := write(t, "BENCH_service.json", starved)
	err := run([]string{"-service", doc})
	if err == nil || !strings.Contains(err.Error(), "rounds/s") {
		t.Fatalf("run below the rounds floor returned %v, want floor error", err)
	}
}

func TestServiceGateFailsOnAnyErrorsOrVerifyFails(t *testing.T) {
	// Errors on a non-headline row still fail.
	errs := strings.ReplaceAll(serviceJSON, `12000, 290, 0, 0`, `12000, 290, 3, 0`)
	if err := run([]string{"-service", write(t, "errs.json", errs)}); err == nil ||
		!strings.Contains(err.Error(), "request errors") {
		t.Fatalf("run with request errors returned %v, want error-ledger failure", err)
	}
	vf := strings.ReplaceAll(serviceJSON, `16500, 510, 0, 0`, `16500, 510, 0, 1`)
	if err := run([]string{"-service", write(t, "vf.json", vf)}); err == nil ||
		!strings.Contains(err.Error(), "verification failures") {
		t.Fatalf("run with verify failures returned %v, want verification failure", err)
	}
}

func TestServiceGateRequiresTenThousandClients(t *testing.T) {
	small := strings.ReplaceAll(serviceJSON, `"X": 10000`, `"X": 9000`)
	err := run([]string{"-service", write(t, "small.json", small)})
	if err == nil || !strings.Contains(err.Error(), "acceptance bar") {
		t.Fatalf("run without a 10k-client row returned %v, want acceptance-bar error", err)
	}
}

func TestServiceGateInputErrors(t *testing.T) {
	if err := run([]string{"-service", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("missing document accepted")
	}
	noCol := strings.ReplaceAll(serviceJSON, "ROUNDS_PER_S", "ROUNDS")
	if err := run([]string{"-service", write(t, "nocol.json", noCol)}); err == nil {
		t.Fatal("document without a ROUNDS_PER_S column accepted")
	}
	if err := run([]string{"-service", write(t, "garbage.json", "{")}); err == nil {
		t.Fatal("unparseable document accepted")
	}
}

const regionJSON = `[
  {
    "name": "region",
    "tables": [
      {
        "Title": "WAN topology — cross-region bytes, topology-blind vs topology-aware planning (Fig 6a shape, x = regions)",
        "Columns": ["CROSS_KB_BLIND", "CROSS_KB_AWARE", "REDUCTION_X", "COV_BLIND_PCT", "COV_AWARE_PCT"],
        "Rows": [
          {"X": 2, "Cells": [4600, 1440, 3.2, 100, 100]},
          {"X": 3, "Cells": [5200, 1900, 2.7, 100, 100]},
          {"X": 6, "Cells": [5800, 2400, 2.4, 100, 100]}
        ]
      },
      {
        "Title": "WAN topology — region-loss timeline: surviving coverage through partition, detection and repair",
        "Columns": ["MIN_SURV_COV_PCT", "LOST_COV_PCT", "REPAIRS"],
        "Rows": [
          {"X": 9, "Cells": [100, 100, 0]},
          {"X": 13, "Cells": [100, 0, 1]},
          {"X": 30, "Cells": [100, 0, 1]}
        ]
      }
    ]
  }
]`

func TestRegionGatePasses(t *testing.T) {
	doc := write(t, "BENCH_region.json", regionJSON)
	if err := run([]string{"-region", doc}); err != nil {
		t.Fatalf("run failed inside the bounds: %v", err)
	}
}

func TestRegionGateFailsBelowReductionFloor(t *testing.T) {
	weak := strings.ReplaceAll(regionJSON, `[5200, 1900, 2.7, 100, 100]`, `[5200, 3000, 1.7, 100, 100]`)
	err := run([]string{"-region", write(t, "weak.json", weak)})
	if err == nil || !strings.Contains(err.Error(), "below the") {
		t.Fatalf("run below the reduction floor returned %v, want floor error", err)
	}
}

func TestRegionGateFailsOnCoverageShed(t *testing.T) {
	shed := strings.ReplaceAll(regionJSON, `[5200, 1900, 2.7, 100, 100]`, `[5200, 1900, 2.7, 100, 97]`)
	err := run([]string{"-region", write(t, "shed.json", shed)})
	if err == nil || !strings.Contains(err.Error(), "sheds") {
		t.Fatalf("run with shed coverage returned %v, want parity error", err)
	}
}

func TestRegionGateFailsOnSurvivorFloor(t *testing.T) {
	// The final timeline row (largest round) decides; earlier dips don't.
	low := strings.ReplaceAll(regionJSON, `{"X": 30, "Cells": [100, 0, 1]}`, `{"X": 30, "Cells": [70, 0, 1]}`)
	err := run([]string{"-region", write(t, "low.json", low)})
	if err == nil || !strings.Contains(err.Error(), "surviving coverage") {
		t.Fatalf("run below the survivor floor returned %v, want floor error", err)
	}
	noRepair := strings.ReplaceAll(regionJSON, `{"X": 30, "Cells": [100, 0, 1]}`, `{"X": 30, "Cells": [100, 0, 0]}`)
	err = run([]string{"-region", write(t, "norepair.json", noRepair)})
	if err == nil || !strings.Contains(err.Error(), "repairs") {
		t.Fatalf("run without repairs returned %v, want repair error", err)
	}
}

func TestRegionGateInputErrors(t *testing.T) {
	if err := run([]string{"-region", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("missing document accepted")
	}
	noRow := strings.ReplaceAll(regionJSON, `"X": 3,`, `"X": 4,`)
	if err := run([]string{"-region", write(t, "norow.json", noRow)}); err == nil {
		t.Fatal("document without a 3-region row accepted")
	}
	noCol := strings.ReplaceAll(regionJSON, "REDUCTION_X", "REDUCTION")
	if err := run([]string{"-region", write(t, "nocol.json", noCol)}); err == nil {
		t.Fatal("document without a REDUCTION_X column accepted")
	}
	noTimeline := strings.ReplaceAll(regionJSON, "region-loss timeline", "other")
	if err := run([]string{"-region", write(t, "notimeline.json", noTimeline)}); err == nil {
		t.Fatal("document without a timeline table accepted")
	}
	if err := run([]string{"-region", write(t, "garbage.json", "{")}); err == nil {
		t.Fatal("unparseable document accepted")
	}
}

func TestRegionGateAgainstCheckedInDocument(t *testing.T) {
	// The real gate in check.sh runs against the repo's
	// BENCH_region.json; keep the checked-in document passing.
	if err := run([]string{"-region", "../../BENCH_region.json"}); err != nil {
		t.Fatalf("checked-in BENCH_region.json fails the gate: %v", err)
	}
}

func TestServiceGateAgainstCheckedInDocument(t *testing.T) {
	// The real gate in check.sh runs against the repo's
	// BENCH_service.json; keep the checked-in document passing.
	if err := run([]string{"-service", "../../BENCH_service.json"}); err != nil {
		t.Fatalf("checked-in BENCH_service.json fails the gate: %v", err)
	}
}
