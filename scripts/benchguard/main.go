// Command benchguard is scripts/check.sh's planner-speedup regression
// gate. It reads the output of the one-iteration planner benchmark run
// (BenchmarkPlannerSequential and BenchmarkPlannerParallel on the
// Fig. 6a acceptance workload), computes the live sequential/parallel
// speedup, and fails when it falls below 80% of the headline recorded
// in the checked-in BENCH_planner.json (the largest-node Fig. 6a row's
// SPEEDUP column). The recorded headline was measured at a reduced
// sweep scale, so the floor is conservative: the full-scale smoke's
// memo savings grow with instance size, and dropping under the floor
// means the fast path genuinely broke, not that the machine was slow.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// runDoc mirrors cmd/remo-bench's -json document.
type runDoc struct {
	Name   string `json:"name"`
	Tables []struct {
		Title   string   `json:"Title"`
		Columns []string `json:"Columns"`
		Rows    []struct {
			X     float64   `json:"X"`
			Cells []float64 `json:"Cells"`
		} `json:"Rows"`
	} `json:"tables"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 2 && args[0] == "-shard" {
		return runShard(args[1])
	}
	if len(args) == 2 && args[0] == "-suppress" {
		return runSuppress(args[1])
	}
	if len(args) == 2 && args[0] == "-service" {
		return runService(args[1])
	}
	if len(args) == 2 && args[0] == "-region" {
		return runRegion(args[1])
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: benchguard <bench-output-file> <BENCH_planner.json> | benchguard -shard <BENCH_shard.json> | benchguard -suppress <BENCH_suppress.json> | benchguard -service <BENCH_service.json> | benchguard -region <BENCH_region.json>")
	}
	seqNS, parNS, err := parseBench(args[0])
	if err != nil {
		return err
	}
	headline, err := recordedHeadline(args[1])
	if err != nil {
		return err
	}
	live := seqNS / parNS
	floor := 0.8 * headline
	fmt.Printf("    planner speedup: live %.2fx, recorded headline %.2fx (floor %.2fx)\n",
		live, headline, floor)
	if live < floor {
		return fmt.Errorf("live planner speedup %.2fx regressed below 80%% of the recorded %.2fx headline",
			live, headline)
	}
	return nil
}

// shardOverheadCeiling is the acceptance bound on the sharded tier's
// per-round cost relative to the single collector: the 4-shard row of
// the recorded dispatcher-overhead sweep must stay at or below +15%.
const shardOverheadCeiling = 15.0

// runShard gates the recorded sharded-tier headline: the OVERHEAD_PCT
// cell of the 4-shard row in BENCH_shard.json's dispatcher-overhead
// table. Unlike the planner gate this checks the checked-in document
// itself — the sharding smoke in check.sh regenerates it at a reduced
// scale, so the recorded full-scale number is the contract.
func runShard(path string) error {
	overhead, err := recordedShardOverhead(path)
	if err != nil {
		return err
	}
	fmt.Printf("    4-shard dispatcher overhead: %+.2f%% (ceiling %+.2f%%)\n",
		overhead, shardOverheadCeiling)
	if overhead > shardOverheadCeiling {
		return fmt.Errorf("recorded 4-shard dispatcher overhead %+.2f%% exceeds the %+.2f%% ceiling",
			overhead, shardOverheadCeiling)
	}
	return nil
}

// recordedShardOverhead returns the OVERHEAD_PCT cell of the x=4 row in
// the recorded dispatcher-overhead table.
func recordedShardOverhead(path string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var docs []runDoc
	if err := json.Unmarshal(raw, &docs); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for _, doc := range docs {
		for _, t := range doc.Tables {
			if !strings.Contains(t.Title, "dispatcher overhead") {
				continue
			}
			col := -1
			for i, c := range t.Columns {
				if c == "OVERHEAD_PCT" {
					col = i
				}
			}
			if col < 0 {
				continue
			}
			for _, r := range t.Rows {
				if r.X == 4 {
					if col >= len(r.Cells) {
						return 0, fmt.Errorf("%s: 4-shard row missing OVERHEAD_PCT cell", path)
					}
					return r.Cells[col], nil
				}
			}
			return 0, fmt.Errorf("%s: dispatcher-overhead table lacks a 4-shard row", path)
		}
	}
	return 0, fmt.Errorf("%s: no dispatcher-overhead table with an OVERHEAD_PCT column", path)
}

// suppressReductionFloor is the acceptance bound on forecast-driven
// traffic suppression: the ε=1% row of the recorded bytes-at-accuracy
// sweep must reduce wire bytes by at least 3x against the identical
// suppression-off deployment.
const suppressReductionFloor = 3.0

// suppressBandCeiling bounds the recorded worst-case imputation error
// as a fraction of the dead band: imputes come from bit-identical model
// replicas, so any BAND_MAX above 1 (plus float slack) means the
// safety invariant broke, on every row of both tables.
const suppressBandCeiling = 1.000001

// runSuppress gates the recorded suppression headline (the ε=1% row's
// REDUCTION_X in BENCH_suppress.json's bytes-at-accuracy sweep) and
// the dead-band invariant on every recorded row, robustness scenarios
// included. Like the shard gate this checks the checked-in document:
// check.sh's one-iteration BenchmarkSuppress smoke re-runs the
// experiment at a reduced scale, and the recorded full-scale number is
// the contract.
func runSuppress(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var docs []runDoc
	if err := json.Unmarshal(raw, &docs); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	reduction := 0.0
	found := false
	bandRows := 0
	for _, doc := range docs {
		for _, t := range doc.Tables {
			redCol, bandCol := -1, -1
			for i, c := range t.Columns {
				switch c {
				case "REDUCTION_X":
					redCol = i
				case "BAND_MAX":
					bandCol = i
				}
			}
			if bandCol >= 0 {
				for _, r := range t.Rows {
					if bandCol >= len(r.Cells) {
						return fmt.Errorf("%s: row x=%g missing BAND_MAX cell", path, r.X)
					}
					bandRows++
					if band := r.Cells[bandCol]; band > suppressBandCeiling {
						return fmt.Errorf("recorded BAND_MAX %.6f at x=%g breaks the dead-band invariant (ceiling %.6f)",
							band, r.X, suppressBandCeiling)
					}
				}
			}
			if !strings.Contains(t.Title, "bytes at accuracy") || redCol < 0 {
				continue
			}
			for _, r := range t.Rows {
				if r.X == 0.01 {
					if redCol >= len(r.Cells) {
						return fmt.Errorf("%s: ε=1%% row missing REDUCTION_X cell", path)
					}
					reduction = r.Cells[redCol]
					found = true
				}
			}
		}
	}
	if !found {
		return fmt.Errorf("%s: no bytes-at-accuracy table with an ε=1%% REDUCTION_X row", path)
	}
	if bandRows == 0 {
		return fmt.Errorf("%s: no BAND_MAX cells to check", path)
	}
	fmt.Printf("    suppression at ε=1%%: %.2fx byte reduction (floor %.2fx), dead band held on %d rows\n",
		reduction, suppressReductionFloor, bandRows)
	if reduction < suppressReductionFloor {
		return fmt.Errorf("recorded ε=1%% byte reduction %.2fx is below the %.2fx floor",
			reduction, suppressReductionFloor)
	}
	return nil
}

// regionReductionFloor is the acceptance bound on WAN topology
// awareness: the headline 3-region row of the recorded cross-region
// byte sweep must ship at least 2x fewer inter-region bytes than the
// topology-blind plan of the identical workload.
const regionReductionFloor = 2.0

// regionParitySlackPct bounds how much collection coverage the
// topology-aware plan may give up against the blind plan: awareness
// must reroute bytes, never shed demand.
const regionParitySlackPct = 0.5

// regionSurvivorFloorPct is the coverage every surviving region must
// hold on the final row of the recorded region-loss timeline.
const regionSurvivorFloorPct = 90.0

// runRegion gates the recorded WAN-topology headline in
// BENCH_region.json: the 3-region row of the cross-region byte sweep
// keeps REDUCTION_X at or above the floor with blind/aware coverage
// parity, and the region-loss timeline's final row holds the surviving
// coverage floor with at least one automatic repair recorded. Like the
// shard, suppression and service gates this checks the checked-in
// document — check.sh's region smoke re-drives a seeded region loss at
// a reduced scale, and the recorded full-scale run is the contract.
func runRegion(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var docs []runDoc
	if err := json.Unmarshal(raw, &docs); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	bytesChecked, timelineChecked := false, false
	for _, doc := range docs {
		for _, t := range doc.Tables {
			col := make(map[string]int)
			for i, c := range t.Columns {
				col[c] = i
			}
			switch {
			case strings.Contains(t.Title, "cross-region bytes"):
				for _, name := range []string{"REDUCTION_X", "COV_BLIND_PCT", "COV_AWARE_PCT"} {
					if _, ok := col[name]; !ok {
						return fmt.Errorf("%s: cross-region table lacks a %s column", path, name)
					}
				}
				for _, r := range t.Rows {
					if r.X != 3 {
						continue
					}
					if len(r.Cells) < len(t.Columns) {
						return fmt.Errorf("%s: 3-region row is missing cells", path)
					}
					red := r.Cells[col["REDUCTION_X"]]
					blind, aware := r.Cells[col["COV_BLIND_PCT"]], r.Cells[col["COV_AWARE_PCT"]]
					fmt.Printf("    3-region WAN: %.2fx fewer cross-region bytes (floor %.2fx), coverage blind %.1f%% vs aware %.1f%%\n",
						red, regionReductionFloor, blind, aware)
					if red < regionReductionFloor {
						return fmt.Errorf("recorded 3-region byte reduction %.2fx is below the %.2fx floor",
							red, regionReductionFloor)
					}
					if blind-aware > regionParitySlackPct {
						return fmt.Errorf("topology-aware coverage %.2f%% sheds more than %.2f%% against blind %.2f%%",
							aware, regionParitySlackPct, blind)
					}
					bytesChecked = true
				}
				if !bytesChecked {
					return fmt.Errorf("%s: cross-region table lacks a 3-region row", path)
				}
			case strings.Contains(t.Title, "region-loss timeline"):
				for _, name := range []string{"MIN_SURV_COV_PCT", "REPAIRS"} {
					if _, ok := col[name]; !ok {
						return fmt.Errorf("%s: timeline table lacks a %s column", path, name)
					}
				}
				if len(t.Rows) == 0 {
					return fmt.Errorf("%s: timeline table has no rows", path)
				}
				final := t.Rows[0]
				for _, r := range t.Rows[1:] {
					if r.X > final.X {
						final = r
					}
				}
				if len(final.Cells) < len(t.Columns) {
					return fmt.Errorf("%s: final timeline row is missing cells", path)
				}
				surv := final.Cells[col["MIN_SURV_COV_PCT"]]
				repairs := final.Cells[col["REPAIRS"]]
				fmt.Printf("    region loss: surviving coverage %.1f%% at round %g (floor %.1f%%), %g repairs\n",
					surv, final.X, regionSurvivorFloorPct, repairs)
				if surv < regionSurvivorFloorPct {
					return fmt.Errorf("recorded surviving coverage %.2f%% after the region loss is below the %.1f%% floor",
						surv, regionSurvivorFloorPct)
				}
				if repairs < 1 {
					return fmt.Errorf("recorded region-loss timeline shows no automatic repairs")
				}
				timelineChecked = true
			}
		}
	}
	if !bytesChecked {
		return fmt.Errorf("%s: no cross-region byte table", path)
	}
	if !timelineChecked {
		return fmt.Errorf("%s: no region-loss timeline table", path)
	}
	return nil
}

// serviceAdmitP99Ceiling bounds the recorded headline-row admission
// p99 in milliseconds. Admissions are asynchronous 202 enqueues, so
// the recorded number sits well under a millisecond; approaching the
// ceiling means the front door started queueing behind backend work.
const serviceAdmitP99Ceiling = 50.0

// serviceRoundsFloor is the minimum collection-round throughput the
// backend must sustain under the headline client count (rounds are
// paced at 50ms, so 20/s is the ideal).
const serviceRoundsFloor = 2.0

// serviceHeadlineClients is the minimum client count the headline row
// must record: the service acceptance criterion is 10k simulated
// clients over the memory transport.
const serviceHeadlineClients = 10000.0

// runService gates the recorded service-tier sweep in
// BENCH_service.json: the largest-client row (which must reach 10k
// clients) keeps admission p99 under the ceiling and rounds/s above
// the floor, and every row records zero request errors and zero live
// verification failures. Like the shard and suppression gates this
// checks the checked-in document — check.sh's smoke re-drives the
// service at a reduced scale, and the recorded full-scale run is the
// contract.
func runService(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var docs []runDoc
	if err := json.Unmarshal(raw, &docs); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, doc := range docs {
		for _, t := range doc.Tables {
			if !strings.Contains(t.Title, "Service front door") {
				continue
			}
			col := make(map[string]int)
			for i, c := range t.Columns {
				col[c] = i
			}
			for _, name := range []string{"ADMIT_P99_MS", "ROUNDS_PER_S", "ERRORS", "VERIFY_FAILS"} {
				if _, ok := col[name]; !ok {
					return fmt.Errorf("%s: service table lacks a %s column", path, name)
				}
			}
			if len(t.Rows) == 0 {
				return fmt.Errorf("%s: service table has no rows", path)
			}
			head := t.Rows[0]
			for _, r := range t.Rows {
				if len(r.Cells) < len(t.Columns) {
					return fmt.Errorf("%s: row x=%g is missing cells", path, r.X)
				}
				if e := r.Cells[col["ERRORS"]]; e != 0 {
					return fmt.Errorf("recorded %g request errors at %g clients (must be zero)", e, r.X)
				}
				if v := r.Cells[col["VERIFY_FAILS"]]; v != 0 {
					return fmt.Errorf("recorded %g verification failures at %g clients (must be zero)", v, r.X)
				}
				if r.X > head.X {
					head = r
				}
			}
			if head.X < serviceHeadlineClients {
				return fmt.Errorf("recorded headline row has %g clients, below the %g-client acceptance bar",
					head.X, serviceHeadlineClients)
			}
			p99 := head.Cells[col["ADMIT_P99_MS"]]
			rps := head.Cells[col["ROUNDS_PER_S"]]
			fmt.Printf("    service at %g clients: admit p99 %.3fms (ceiling %.1fms), %.2f rounds/s (floor %.2f), errors and verify failures zero\n",
				head.X, p99, serviceAdmitP99Ceiling, rps, serviceRoundsFloor)
			if p99 > serviceAdmitP99Ceiling {
				return fmt.Errorf("recorded admission p99 %.3fms at %g clients exceeds the %.1fms ceiling",
					p99, head.X, serviceAdmitP99Ceiling)
			}
			if rps < serviceRoundsFloor {
				return fmt.Errorf("recorded %.2f rounds/s at %g clients is below the %.2f floor",
					rps, head.X, serviceRoundsFloor)
			}
			return nil
		}
	}
	return fmt.Errorf("%s: no service front door table", path)
}

// benchLine matches one `go test -bench` result line.
var benchLine = regexp.MustCompile(`^(BenchmarkPlanner(?:Sequential|Parallel))\S*\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// parseBench extracts the sequential and parallel ns/op from a bench
// run's captured output.
func parseBench(path string) (seqNS, parNS float64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil || v <= 0 {
			return 0, 0, fmt.Errorf("unparseable ns/op in %q", line)
		}
		if m[1] == "BenchmarkPlannerSequential" {
			seqNS = v
		} else {
			parNS = v
		}
	}
	if seqNS == 0 || parNS == 0 {
		return 0, 0, fmt.Errorf("bench output %s lacks BenchmarkPlannerSequential/Parallel results", path)
	}
	return seqNS, parNS, nil
}

// recordedHeadline returns the SPEEDUP cell of the largest-node Fig. 6a
// row in the checked-in planner benchmark document.
func recordedHeadline(path string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var docs []runDoc
	if err := json.Unmarshal(raw, &docs); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	for _, doc := range docs {
		for _, t := range doc.Tables {
			if !strings.Contains(t.Title, "Fig 6a") {
				continue
			}
			col := -1
			for i, c := range t.Columns {
				if c == "SPEEDUP" {
					col = i
				}
			}
			if col < 0 || len(t.Rows) == 0 {
				continue
			}
			best := t.Rows[0]
			for _, r := range t.Rows[1:] {
				if r.X > best.X {
					best = r
				}
			}
			if col >= len(best.Cells) {
				return 0, fmt.Errorf("%s: Fig 6a row missing SPEEDUP cell", path)
			}
			return best.Cells[col], nil
		}
	}
	return 0, fmt.Errorf("%s: no Fig 6a table with a SPEEDUP column", path)
}
