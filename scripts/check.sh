#!/usr/bin/env bash
# Tier-1+ gate for the repo: formatting, vet, build, race-enabled
# tests, and one-shot runs of the planner and runtime benchmarks so
# perf regressions that break the benchmark harness are caught before
# merge.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

echo "==> planner benchmarks (1 iteration)"
bench_out=$(mktemp)
go test -run '^$' -bench 'BenchmarkPlanner' -benchtime 1x . | tee "$bench_out"

echo "==> planner speedup regression guard (vs BENCH_planner.json headline)"
go run ./scripts/benchguard "$bench_out" BENCH_planner.json
rm -f "$bench_out"

echo "==> runtime benchmarks (1 iteration, with allocation stats)"
go test -run '^$' -bench 'BenchmarkRuntime' -benchtime 1x -benchmem .

echo "==> chaos smoke (self-healing under -race, short mode)"
go test -race -short -run 'Chaos' . ./internal/cluster ./internal/detect ./internal/chaos ./internal/transport

echo "==> verification harness (plan + repairs + results cross-checked)"
go run ./cmd/remo-sim -nodes 40 -tasks 20 -rounds 12 -chaos 0.15 -suspicion 2 -verify > /dev/null
go run ./cmd/remo-sim -nodes 30 -tasks 15 -rounds 10 -verify > /dev/null

echo "==> durability smoke (collector crash + journal resume, verified, under -race)"
go test -race -count=1 -run 'TestCollectorCrashRecoveryEndToEnd|TestColdResumeMonitor' .
journal_dir=$(mktemp -d)
go run ./cmd/remo-sim -nodes 30 -tasks 15 -rounds 24 \
    -journal "$journal_dir" -chaos-collector 8 -verify > /dev/null
rm -rf "$journal_dir"

echo "==> sharding chaos smoke (shard crash + orphan re-dispatch, verified, under -race)"
go test -race -count=1 -run 'TestShard' . ./internal/cluster ./internal/shard ./internal/verify
journal_dir=$(mktemp -d)
go run ./cmd/remo-sim -nodes 30 -tasks 15 -rounds 24 -seed 7 -shards 4 \
    -journal "$journal_dir" -chaos-shard 0 -verify > /dev/null
rm -rf "$journal_dir"

echo "==> sharded-tier overhead gate (BENCH_shard.json headline)"
go run ./scripts/benchguard -shard BENCH_shard.json

echo "==> suppression smoke (forecast suppression under loss, verified, under -race)"
go test -race -count=1 -run 'TestSuppression|TestPredict' . ./internal/cluster ./internal/predict
go run -race ./cmd/remo-sim -nodes 30 -tasks 15 -rounds 24 -seed 5 \
    -predict -chaos-drop 0.1 -verify > /dev/null

echo "==> suppression benchmark (1 iteration) + headline gate (BENCH_suppress.json)"
go test -run '^$' -bench 'BenchmarkSuppress' -benchtime 1x .
go run ./scripts/benchguard -suppress BENCH_suppress.json

echo "==> fuzz smoke (FuzzDecode, 10s)"
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime 10s ./internal/transport

echo "==> coverage gate"
# Floor set 2 points under the total measured when the gate was added
# (86.1%); raise it as coverage grows, never lower it to pass.
COVER_FLOOR=84.0
go test -count=1 -coverprofile=/tmp/remo-cover.out ./... > /dev/null
total=$(go tool cover -func=/tmp/remo-cover.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "    total coverage: ${total}% (floor ${COVER_FLOOR}%)"
awk -v t="$total" -v f="$COVER_FLOOR" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || {
    echo "coverage ${total}% fell below the ${COVER_FLOOR}% floor" >&2
    exit 1
}

echo "OK"
