#!/usr/bin/env bash
# Tier-1+ gate for the repo: vet, build, race-enabled tests, and a
# one-shot run of the planner benchmarks so perf regressions that break
# the benchmark harness are caught before merge.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

echo "==> planner benchmarks (1 iteration)"
go test -run '^$' -bench 'BenchmarkPlanner' -benchtime 1x .

echo "==> chaos smoke (self-healing under -race, short mode)"
go test -race -short -run 'Chaos' . ./internal/cluster ./internal/detect ./internal/chaos ./internal/transport

echo "OK"
