#!/usr/bin/env bash
# Tier-1+ gate for the repo: formatting, vet, build, race-enabled
# tests, and one-shot runs of the planner and runtime benchmarks so
# perf regressions that break the benchmark harness are caught before
# merge.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

echo "==> planner benchmarks (1 iteration)"
go test -run '^$' -bench 'BenchmarkPlanner' -benchtime 1x .

echo "==> runtime benchmarks (1 iteration, with allocation stats)"
go test -run '^$' -bench 'BenchmarkRuntime' -benchtime 1x -benchmem .

echo "==> chaos smoke (self-healing under -race, short mode)"
go test -race -short -run 'Chaos' . ./internal/cluster ./internal/detect ./internal/chaos ./internal/transport

echo "OK"
