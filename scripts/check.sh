#!/usr/bin/env bash
# Tier-1+ gate for the repo: formatting, vet, build, race-enabled
# tests, and one-shot runs of the planner and runtime benchmarks so
# perf regressions that break the benchmark harness are caught before
# merge.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test -race"
go test -race ./...

echo "==> planner benchmarks (1 iteration)"
bench_out=$(mktemp)
go test -run '^$' -bench 'BenchmarkPlanner' -benchtime 1x . | tee "$bench_out"

echo "==> planner speedup regression guard (vs BENCH_planner.json headline)"
go run ./scripts/benchguard "$bench_out" BENCH_planner.json
rm -f "$bench_out"

echo "==> runtime benchmarks (1 iteration, with allocation stats)"
go test -run '^$' -bench 'BenchmarkRuntime' -benchtime 1x -benchmem .

echo "==> chaos smoke (self-healing under -race, short mode)"
go test -race -short -run 'Chaos' . ./internal/cluster ./internal/detect ./internal/chaos ./internal/transport

echo "==> verification harness (plan + repairs + results cross-checked)"
go run ./cmd/remo-sim -nodes 40 -tasks 20 -rounds 12 -chaos 0.15 -suspicion 2 -verify > /dev/null
go run ./cmd/remo-sim -nodes 30 -tasks 15 -rounds 10 -verify > /dev/null

echo "==> durability smoke (collector crash + journal resume, verified, under -race)"
go test -race -count=1 -run 'TestCollectorCrashRecoveryEndToEnd|TestColdResumeMonitor' .
journal_dir=$(mktemp -d)
go run ./cmd/remo-sim -nodes 30 -tasks 15 -rounds 24 \
    -journal "$journal_dir" -chaos-collector 8 -verify > /dev/null
rm -rf "$journal_dir"

echo "==> sharding chaos smoke (shard crash + orphan re-dispatch, verified, under -race)"
go test -race -count=1 -run 'TestShard' . ./internal/cluster ./internal/shard ./internal/verify
journal_dir=$(mktemp -d)
go run ./cmd/remo-sim -nodes 30 -tasks 15 -rounds 24 -seed 7 -shards 4 \
    -journal "$journal_dir" -chaos-shard 0 -verify > /dev/null
rm -rf "$journal_dir"

echo "==> sharded-tier overhead gate (BENCH_shard.json headline)"
go run ./scripts/benchguard -shard BENCH_shard.json

echo "==> suppression smoke (forecast suppression under loss, verified, under -race)"
go test -race -count=1 -run 'TestSuppression|TestPredict' . ./internal/cluster ./internal/predict
go run -race ./cmd/remo-sim -nodes 30 -tasks 15 -rounds 24 -seed 5 \
    -predict -chaos-drop 0.1 -verify > /dev/null

echo "==> suppression benchmark (1 iteration) + headline gate (BENCH_suppress.json)"
go test -run '^$' -bench 'BenchmarkSuppress' -benchtime 1x .
go run ./scripts/benchguard -suppress BENCH_suppress.json

echo "==> region chaos smoke (region partition + re-homing, verified, under -race)"
go test -race -count=1 -run 'TestRegion' . ./internal/chaos ./internal/verify ./internal/reliability ./internal/cost
region_out=$(go run -race ./cmd/remo-sim -nodes 30 -attrs 6 -tasks 15 -rounds 24 -seed 7 \
    -regions 3 -chaos-region 1 -suspicion 2 -verify)
if ! echo "$region_out" | grep -q "repair:"; then
    echo "region-loss run produced no repair events:" >&2
    echo "$region_out" >&2
    exit 1
fi
if ! echo "$region_out" | grep -q "coverage floor 90% held"; then
    echo "region-loss run did not hold the surviving-region floor:" >&2
    echo "$region_out" >&2
    exit 1
fi

echo "==> WAN topology headline gate (BENCH_region.json)"
go run ./scripts/benchguard -region BENCH_region.json

echo "==> service e2e (admit/inspect/stream/modify/remove/drain/resume, under -race)"
go test -race -count=1 -run 'TestServiceEndToEnd' .

echo "==> service soak (60s churn + streams + collector crash, leak-checked, under -race)"
REMO_SOAK_SECONDS=60 go test -race -count=1 -run 'TestServiceSoak' .

echo "==> service smoke (remo-serve boot, seeded remo-load run, SIGTERM drain)"
go build -o /tmp/remo-serve-smoke ./cmd/remo-serve
go build -o /tmp/remo-load-smoke ./cmd/remo-load
journal_dir=$(mktemp -d)
serve_log=$(mktemp)
/tmp/remo-serve-smoke -addr 127.0.0.1:0 -journal "$journal_dir" -verify > "$serve_log" &
serve_pid=$!
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$serve_log")
    [[ -n "$base" ]] && break
    sleep 0.1
done
if [[ -z "$base" ]]; then
    echo "remo-serve did not come up:" >&2
    cat "$serve_log" >&2
    exit 1
fi
curl -fsS "$base/healthz" > /dev/null
load_out=$(/tmp/remo-load-smoke -target "$base" -clients 40 -duration 5s -seed 11 -json)
if echo "$load_out" | grep -q '"requests": 0,'; then
    echo "remo-load sent no traffic:" >&2
    echo "$load_out" >&2
    exit 1
fi
if ! echo "$load_out" | grep -q '"errors": 0,'; then
    echo "remo-load recorded request errors:" >&2
    echo "$load_out" >&2
    exit 1
fi
if ! echo "$load_out" | grep -q '"verifyFails": 0'; then
    echo "live verification failed under load:" >&2
    echo "$load_out" >&2
    exit 1
fi
kill -TERM "$serve_pid"
wait "$serve_pid"
if ! grep -q "drained: session journaled" "$serve_log"; then
    echo "remo-serve did not drain cleanly:" >&2
    cat "$serve_log" >&2
    exit 1
fi
rm -rf "$journal_dir" "$serve_log" /tmp/remo-serve-smoke /tmp/remo-load-smoke

echo "==> service headline gate (BENCH_service.json)"
go run ./scripts/benchguard -service BENCH_service.json

echo "==> fuzz smoke (FuzzDecode, 10s)"
go test -run '^$' -fuzz '^FuzzDecode$' -fuzztime 10s ./internal/transport

echo "==> coverage gate"
# Floor set 2 points under the total measured when the gate was added
# (86.1%); raise it as coverage grows, never lower it to pass.
COVER_FLOOR=84.0
go test -count=1 -coverprofile=/tmp/remo-cover.out ./... > /dev/null
total=$(go tool cover -func=/tmp/remo-cover.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "    total coverage: ${total}% (floor ${COVER_FLOOR}%)"
awk -v t="$total" -v f="$COVER_FLOOR" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || {
    echo "coverage ${total}% fell below the ${COVER_FLOOR}% floor" >&2
    exit 1
}

echo "OK"
