// Package streams is the stream-processing substrate standing in for
// IBM System S in the paper's real-system experiments (§7): a dataflow
// graph of analytic operators placed across monitoring nodes, processing
// bursty tuple streams. Each node exposes per-operator metrics — input
// rate, output rate, buffer occupancy and CPU load — matching the
// paper's YieldMonitor deployment of ~200 processes across 200 nodes
// with 30-50 monitored attributes per node.
//
// The simulation is a deterministic fluid model: per round, an operator
// drains its backlog up to its service rate; source operators ingest a
// bursty external stream. All rounds are precomputed, so value lookups
// are O(1) and safe for the emulation's concurrent node goroutines.
package streams

import (
	"errors"
	"math"

	"remo/internal/model"
)

// Metric kinds exposed per operator slot. A node hosting k operators
// observes 4k attributes; attribute ids encode (slot, metric):
// attr = slot*MetricsPerOp + metric + 1.
const (
	// MetricInRate is the operator's tuple arrival rate.
	MetricInRate = iota
	// MetricOutRate is the operator's tuple emission rate.
	MetricOutRate
	// MetricBuffer is the operator's queued backlog.
	MetricBuffer
	// MetricCPU is the operator's utilization (0..1 scaled to 0..100).
	MetricCPU
	// MetricsPerOp is the number of metrics each operator exposes.
	MetricsPerOp
)

// Operator is one analytic element of the dataflow graph.
type Operator struct {
	// Node hosts the operator; Slot is its index among the node's
	// operators.
	Node model.NodeID
	Slot int
	// ServiceRate is the tuples/round the operator can process.
	ServiceRate float64
	// Selectivity is output tuples per processed input tuple.
	Selectivity float64
	// Upstream indexes the operators feeding this one (into App.Ops);
	// empty for source operators.
	Upstream []int
}

// App is a simulated streaming application.
type App struct {
	Ops []Operator

	rounds  int
	seed    uint64
	in      [][]float64 // [round][op]
	out     [][]float64
	backlog [][]float64
	cpu     [][]float64
	// slotOf maps (node, slot) to the operator index.
	slotOf map[model.NodeID][]int
}

// ErrNoNodes is returned when building an app over no nodes.
var ErrNoNodes = errors.New("streams: no nodes")

// NewPipelineApp builds a YieldMonitor-like application: a processing
// pipeline threaded through all nodes, opsPerNode operators per node.
// The first operator of the first node ingests the external (bursty)
// test-data stream; every other operator consumes its predecessor, and
// every fourth node starts a parallel branch that rejoins two nodes
// later, mimicking the split/score/join shape of statistical yield
// analysis.
func NewPipelineApp(nodes []model.NodeID, opsPerNode int, seed uint64) (*App, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	if opsPerNode < 1 {
		opsPerNode = 1
	}
	app := &App{seed: seed, slotOf: make(map[model.NodeID][]int, len(nodes))}
	prev := -1
	var branchFrom = -1
	for ni, n := range nodes {
		slots := make([]int, opsPerNode)
		for s := 0; s < opsPerNode; s++ {
			op := Operator{
				Node:        n,
				Slot:        s,
				ServiceRate: 80 + float64(mix64(seed, uint64(ni), uint64(s))%80),
				Selectivity: 0.6 + float64(mix64(seed, uint64(s), uint64(ni))%40)/100,
			}
			idx := len(app.Ops)
			if prev >= 0 {
				op.Upstream = append(op.Upstream, prev)
			}
			// Rejoin an outstanding branch at node boundaries.
			if s == 0 && branchFrom >= 0 && ni%4 == 2 {
				op.Upstream = append(op.Upstream, branchFrom)
				branchFrom = -1
			}
			app.Ops = append(app.Ops, op)
			slots[s] = idx
			prev = idx
		}
		if ni%4 == 0 && ni > 0 {
			branchFrom = slots[opsPerNode-1]
		}
		app.slotOf[n] = slots
	}
	return app, nil
}

// Simulate precomputes rounds of dataflow dynamics. It must be called
// before Value; re-simulating with more rounds is allowed.
func (a *App) Simulate(rounds int) {
	a.rounds = rounds
	a.in = grid(rounds, len(a.Ops))
	a.out = grid(rounds, len(a.Ops))
	a.backlog = grid(rounds, len(a.Ops))
	a.cpu = grid(rounds, len(a.Ops))

	for r := 0; r < rounds; r++ {
		for i, op := range a.Ops {
			var in float64
			if len(op.Upstream) == 0 {
				in = a.sourceRate(i, r)
			} else {
				for _, u := range op.Upstream {
					in += a.out[r][u]
				}
			}
			var carried float64
			if r > 0 {
				carried = a.backlog[r-1][i]
			}
			processed := math.Min(in+carried, op.ServiceRate)
			a.in[r][i] = in
			a.backlog[r][i] = in + carried - processed
			a.out[r][i] = processed * op.Selectivity
			a.cpu[r][i] = 100 * processed / op.ServiceRate
		}
	}
}

// sourceRate is the bursty external arrival rate for source operator i.
func (a *App) sourceRate(i, round int) float64 {
	base := 60 + float64(mix64(a.seed, uint64(i), 7)%40)
	period := 16 + float64(mix64(a.seed, uint64(i), 11)%16)
	v := base * (1 + 0.4*math.Sin(2*math.Pi*float64(round)/period))
	if mix64(a.seed, uint64(i), uint64(round/6))%5 == 0 {
		v *= 1.8 // burst spell
	}
	return v
}

// AttrsPerNode returns how many attributes each node exposes.
func (a *App) AttrsPerNode(n model.NodeID) int {
	return len(a.slotOf[n]) * MetricsPerOp
}

// Attrs returns the attribute ids observable at node n (1-based,
// encoding operator slot and metric kind).
func (a *App) Attrs(n model.NodeID) []model.AttrID {
	count := a.AttrsPerNode(n)
	attrs := make([]model.AttrID, count)
	for i := range attrs {
		attrs[i] = model.AttrID(i + 1)
	}
	return attrs
}

// Value implements the cluster.ValueSource interface: it returns the
// metric encoded by attr at node n for the given round. Rounds beyond
// the simulated horizon clamp to the last round; unknown nodes or slots
// return 0.
func (a *App) Value(n model.NodeID, attr model.AttrID, round int) float64 {
	if a.rounds == 0 {
		return 0
	}
	if round >= a.rounds {
		round = a.rounds - 1
	}
	if round < 0 {
		round = 0
	}
	id := int(attr) - 1
	if id < 0 {
		return 0
	}
	slot, metric := id/MetricsPerOp, id%MetricsPerOp
	slots := a.slotOf[n]
	if slot >= len(slots) {
		return 0
	}
	op := slots[slot]
	switch metric {
	case MetricInRate:
		return a.in[round][op]
	case MetricOutRate:
		return a.out[round][op]
	case MetricBuffer:
		return a.backlog[round][op]
	default:
		return a.cpu[round][op]
	}
}

func grid(rows, cols int) [][]float64 {
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
	}
	return g
}

func mix64(vals ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vals {
		h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}
