package streams

import (
	"errors"
	"testing"

	"remo/internal/model"
)

func nodeIDs(n int) []model.NodeID {
	ids := make([]model.NodeID, n)
	for i := range ids {
		ids[i] = model.NodeID(i + 1)
	}
	return ids
}

func TestNewPipelineAppValidation(t *testing.T) {
	if _, err := NewPipelineApp(nil, 3, 1); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("error = %v, want ErrNoNodes", err)
	}
	app, err := NewPipelineApp(nodeIDs(3), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Ops) != 3 { // opsPerNode clamps to 1
		t.Fatalf("ops = %d, want 3", len(app.Ops))
	}
}

func TestPipelineShape(t *testing.T) {
	app, err := NewPipelineApp(nodeIDs(10), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Ops) != 40 {
		t.Fatalf("ops = %d, want 40", len(app.Ops))
	}
	sources := 0
	for _, op := range app.Ops {
		if len(op.Upstream) == 0 {
			sources++
		}
		for _, u := range op.Upstream {
			if u < 0 || u >= len(app.Ops) {
				t.Fatalf("upstream index %d out of range", u)
			}
		}
	}
	if sources != 1 {
		t.Fatalf("sources = %d, want 1", sources)
	}
	// The paper's deployment exposes 30-50 attributes per node; 10 ops
	// per node at 4 metrics each lands mid-range.
	big, err := NewPipelineApp(nodeIDs(5), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := big.AttrsPerNode(1); got != 40 {
		t.Fatalf("AttrsPerNode = %d, want 40", got)
	}
}

func TestSimulateDynamics(t *testing.T) {
	app, err := NewPipelineApp(nodeIDs(8), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 60
	app.Simulate(rounds)

	varies := false
	var prev float64
	for r := 0; r < rounds; r++ {
		for _, n := range nodeIDs(8) {
			for _, a := range app.Attrs(n) {
				v := app.Value(n, a, r)
				if v < 0 {
					t.Fatalf("negative metric %v at %v round %d: %v", a, n, r, v)
				}
			}
		}
		v := app.Value(1, model.AttrID(MetricInRate+1), r)
		if r > 0 && v != prev {
			varies = true
		}
		prev = v
	}
	if !varies {
		t.Fatal("source rate never varies")
	}
	// CPU metric is a utilization percentage.
	for r := 0; r < rounds; r++ {
		cpu := app.Value(3, model.AttrID(MetricCPU+1), r)
		if cpu < 0 || cpu > 100 {
			t.Fatalf("cpu = %v out of [0,100]", cpu)
		}
	}
}

func TestValueClampsAndUnknowns(t *testing.T) {
	app, err := NewPipelineApp(nodeIDs(2), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Value(1, 1, 5); got != 0 {
		t.Fatalf("Value before Simulate = %v, want 0", got)
	}
	app.Simulate(10)
	if app.Value(1, 1, 100) != app.Value(1, 1, 9) {
		t.Fatal("round clamp broken")
	}
	if app.Value(1, 1, -5) != app.Value(1, 1, 0) {
		t.Fatal("negative round clamp broken")
	}
	if app.Value(99, 1, 0) != 0 {
		t.Fatal("unknown node should read 0")
	}
	if app.Value(1, 999, 0) != 0 {
		t.Fatal("unknown slot should read 0")
	}
	if app.Value(1, 0, 0) != 0 {
		t.Fatal("attr 0 should read 0")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	build := func() *App {
		app, err := NewPipelineApp(nodeIDs(6), 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		app.Simulate(30)
		return app
	}
	a, b := build(), build()
	for r := 0; r < 30; r++ {
		for _, n := range nodeIDs(6) {
			for _, attr := range a.Attrs(n) {
				if a.Value(n, attr, r) != b.Value(n, attr, r) {
					t.Fatalf("nondeterministic at (%v, %v, %d)", n, attr, r)
				}
			}
		}
	}
}

func TestBurstsPropagateBacklog(t *testing.T) {
	app, err := NewPipelineApp(nodeIDs(4), 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	app.Simulate(80)
	// Somewhere, sometime, a buffer must build up (bursts exceed service
	// rates by design).
	for r := 0; r < 80; r++ {
		for _, n := range nodeIDs(4) {
			for slot := 0; slot < 3; slot++ {
				attr := model.AttrID(slot*MetricsPerOp + MetricBuffer + 1)
				if app.Value(n, attr, r) > 0 {
					return
				}
			}
		}
	}
	t.Fatal("no backlog ever built up under bursty input")
}
