package alloc

import (
	"testing"

	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/task"
)

// req builds a request: node 1 demands attrs 1 and 2 (participating in
// both sets), node 2 demands only attr 1, nodes 3-5 demand only attr 2.
func req(t *testing.T) Request {
	t.Helper()
	nodes := []model.Node{
		{ID: 1, Capacity: 100},
		{ID: 2, Capacity: 100},
		{ID: 3, Capacity: 100},
		{ID: 4, Capacity: 100},
		{ID: 5, Capacity: 100},
	}
	sys, err := model.NewSystem(60, cost.Default(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	d := task.NewDemand()
	d.Set(1, 1, 1)
	d.Set(1, 2, 3) // weight 3 toward set 2
	d.Set(2, 1, 1)
	for n := model.NodeID(3); n <= 5; n++ {
		d.Set(n, 2, 1)
	}
	return Request{
		Sys:    sys,
		Demand: d,
		Sets:   []model.AttrSet{model.NewAttrSet(1), model.NewAttrSet(2)},
	}
}

func TestUniformSplitsEvenly(t *testing.T) {
	r := req(t)
	seq := New(Uniform)
	avail := seq.Avail(r, 0, nil)
	if avail[1] != 50 { // node 1 participates in both trees
		t.Fatalf("avail[1] = %v, want 50", avail[1])
	}
	if avail[2] != 100 { // node 2 participates only in tree 0
		t.Fatalf("avail[2] = %v, want 100", avail[2])
	}
	if got := seq.CentralAvail(r, 0, 0); got != 30 {
		t.Fatalf("central avail = %v, want 30", got)
	}
}

func TestProportionalWeights(t *testing.T) {
	r := req(t)
	seq := New(Proportional)
	a0 := seq.Avail(r, 0, nil)
	a1 := seq.Avail(r, 1, nil)
	// Node 1: weight 1 in set 0, 3 in set 1 -> 25 / 75.
	if a0[1] != 25 || a1[1] != 75 {
		t.Fatalf("node 1 avail = %v / %v, want 25/75", a0[1], a1[1])
	}
	// Pair counts: set 0 has 2 pairs, set 1 has 4 -> central 20/40.
	if got := seq.CentralAvail(r, 0, 0); got != 20 {
		t.Fatalf("central set0 = %v, want 20", got)
	}
	if got := seq.CentralAvail(r, 1, 0); got != 40 {
		t.Fatalf("central set1 = %v, want 40", got)
	}
}

func TestOnDemandUsesRemaining(t *testing.T) {
	r := req(t)
	seq := New(OnDemand)
	used := map[model.NodeID]float64{1: 30}
	avail := seq.Avail(r, 1, used)
	if avail[1] != 70 {
		t.Fatalf("avail[1] = %v, want 70", avail[1])
	}
	if got := seq.CentralAvail(r, 1, 45); got != 15 {
		t.Fatalf("central = %v, want 15", got)
	}
	// Never negative.
	used[1] = 200
	if got := seq.Avail(r, 1, used)[1]; got != 0 {
		t.Fatalf("over-used avail = %v, want 0", got)
	}
	if got := seq.CentralAvail(r, 1, 100); got != 0 {
		t.Fatalf("over-used central = %v, want 0", got)
	}
}

func TestOrderedBuildsSmallTreesFirst(t *testing.T) {
	r := req(t)
	// Set 0 has 2 participants, set 1 has 4.
	order := New(Ordered).Order(r)
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("Ordered order = %v, want [0 1]", order)
	}
	// Swap sets: order should follow sizes, not indices.
	r.Sets = []model.AttrSet{r.Sets[1], r.Sets[0]}
	order = New(Ordered).Order(r)
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("Ordered order after swap = %v, want [1 0]", order)
	}
	// OnDemand keeps the given order.
	order = New(OnDemand).Order(r)
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("OnDemand order = %v, want [0 1]", order)
	}
}

func TestSchemeNames(t *testing.T) {
	for _, s := range Schemes() {
		if got := New(s).Scheme(); got != s {
			t.Errorf("New(%s).Scheme() = %s", s, got)
		}
	}
	if New("bogus").Scheme() != Ordered {
		t.Error("unknown scheme does not fall back to Ordered")
	}
}

func TestUniformAllocationsNeverExceedCapacity(t *testing.T) {
	r := req(t)
	for _, scheme := range []Scheme{Uniform, Proportional} {
		seq := New(scheme)
		total := make(map[model.NodeID]float64)
		for k := range r.Sets {
			for n, a := range seq.Avail(r, k, nil) {
				total[n] += a
			}
		}
		for n, sum := range total {
			if sum > r.Sys.Capacity(n)+1e-9 {
				t.Errorf("%s: node %v allocated %v > capacity %v", scheme, n, sum, r.Sys.Capacity(n))
			}
		}
	}
}
