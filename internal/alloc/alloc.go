// Package alloc implements tree-wise capacity allocation: how a node that
// participates in several monitoring trees divides its capacity budget
// among them (§5.2 of the paper).
//
// REMO constructs trees sequentially, so allocation is expressed as a
// sequencing policy: the order in which trees are built plus the capacity
// each participant may spend on the tree about to be built, given what
// previous trees already consumed.
package alloc

import (
	"sort"

	"remo/internal/model"
	"remo/internal/task"
)

// Scheme names an allocation policy.
type Scheme string

// Available schemes, in the paper's Fig. 11 terminology.
const (
	// Uniform divides a node's capacity equally among its trees.
	Uniform Scheme = "UNIFORM"
	// Proportional divides capacity proportionally to the node's local
	// value weight in each tree.
	Proportional Scheme = "PROPORTIONAL"
	// OnDemand gives the tree under construction all remaining capacity.
	OnDemand Scheme = "ON-DEMAND"
	// Ordered is OnDemand with trees constructed from smallest to
	// largest, so small, cost-efficient trees are not starved by large
	// ones built earlier.
	Ordered Scheme = "ORDERED"
)

// Request describes the allocation problem: which attribute sets get
// trees, over which demand and system.
type Request struct {
	Sys    *model.System
	Demand *task.Demand
	Sets   []model.AttrSet
	// Parts optionally overrides participant lookup (a planner-level
	// cache); nil falls back to Demand.Participants.
	Parts func(model.AttrSet) []model.NodeID
}

// participants resolves a set's participant nodes through the cache
// when present.
func (r Request) participants(set model.AttrSet) []model.NodeID {
	if r.Parts != nil {
		return r.Parts(set)
	}
	return r.Demand.Participants(set)
}

// Sequencer plans construction order and per-tree capacity budgets.
type Sequencer interface {
	// Scheme returns the policy name.
	Scheme() Scheme
	// Order returns indices into req.Sets in construction order.
	Order(req Request) []int
	// Avail returns the capacity each participant of req.Sets[k] may
	// spend on tree k, given the usage already consumed by previously
	// constructed trees. usedSoFar may be nil for the first tree.
	Avail(req Request, k int, usedSoFar map[model.NodeID]float64) map[model.NodeID]float64
	// CentralAvail returns the central collector's budget for tree k
	// given its usage so far.
	CentralAvail(req Request, k int, usedSoFar float64) float64
}

// New returns the sequencer for scheme. Unknown schemes fall back to
// Ordered, REMO's default.
func New(scheme Scheme) Sequencer {
	switch scheme {
	case Uniform:
		return uniform{}
	case Proportional:
		return proportional{}
	case OnDemand:
		return onDemand{asGiven: true}
	case Ordered:
		return onDemand{asGiven: false}
	default:
		return onDemand{asGiven: false}
	}
}

// Schemes lists all policies in presentation order.
func Schemes() []Scheme {
	return []Scheme{Uniform, Proportional, OnDemand, Ordered}
}

// treeCountOf returns, for every node, how many of the given sets it
// participates in.
func treeCountOf(req Request) map[model.NodeID]int {
	counts := make(map[model.NodeID]int)
	for _, set := range req.Sets {
		for _, n := range req.participants(set) {
			counts[n]++
		}
	}
	return counts
}

// identityOrder returns 0..len(sets)-1.
func identityOrder(req Request) []int {
	order := make([]int, len(req.Sets))
	for i := range order {
		order[i] = i
	}
	return order
}

type uniform struct{}

func (uniform) Scheme() Scheme          { return Uniform }
func (uniform) Order(req Request) []int { return identityOrder(req) }

func (uniform) Avail(req Request, k int, _ map[model.NodeID]float64) map[model.NodeID]float64 {
	counts := treeCountOf(req)
	avail := make(map[model.NodeID]float64)
	for _, n := range req.participants(req.Sets[k]) {
		c := counts[n]
		if c == 0 {
			c = 1
		}
		avail[n] = req.Sys.Capacity(n) / float64(c)
	}
	return avail
}

func (uniform) CentralAvail(req Request, _ int, _ float64) float64 {
	if len(req.Sets) == 0 {
		return req.Sys.CentralCapacity
	}
	return req.Sys.CentralCapacity / float64(len(req.Sets))
}

type proportional struct{}

func (proportional) Scheme() Scheme          { return Proportional }
func (proportional) Order(req Request) []int { return identityOrder(req) }

func (proportional) Avail(req Request, k int, _ map[model.NodeID]float64) map[model.NodeID]float64 {
	avail := make(map[model.NodeID]float64)
	for _, n := range req.participants(req.Sets[k]) {
		var total float64
		for _, set := range req.Sets {
			total += req.Demand.LocalWeight(n, set)
		}
		w := req.Demand.LocalWeight(n, req.Sets[k])
		if total <= 0 {
			avail[n] = 0
			continue
		}
		avail[n] = req.Sys.Capacity(n) * w / total
	}
	return avail
}

func (proportional) CentralAvail(req Request, k int, _ float64) float64 {
	var total, mine float64
	for i, set := range req.Sets {
		w := float64(req.Demand.PairCountIn(set))
		total += w
		if i == k {
			mine = w
		}
	}
	if total <= 0 {
		return req.Sys.CentralCapacity
	}
	return req.Sys.CentralCapacity * mine / total
}

// onDemand implements both ON-DEMAND (construction order as given) and
// ORDERED (smallest trees first).
type onDemand struct {
	asGiven bool
}

func (o onDemand) Scheme() Scheme {
	if o.asGiven {
		return OnDemand
	}
	return Ordered
}

func (o onDemand) Order(req Request) []int {
	order := identityOrder(req)
	if o.asGiven {
		return order
	}
	sizes := make([]int, len(req.Sets))
	for i, set := range req.Sets {
		sizes[i] = len(req.participants(set))
	}
	sort.SliceStable(order, func(i, j int) bool {
		return sizes[order[i]] < sizes[order[j]]
	})
	return order
}

func (onDemand) Avail(req Request, k int, usedSoFar map[model.NodeID]float64) map[model.NodeID]float64 {
	avail := make(map[model.NodeID]float64)
	for _, n := range req.participants(req.Sets[k]) {
		avail[n] = req.Sys.Capacity(n) - usedSoFar[n]
		if avail[n] < 0 {
			avail[n] = 0
		}
	}
	return avail
}

func (onDemand) CentralAvail(req Request, _ int, usedSoFar float64) float64 {
	rem := req.Sys.CentralCapacity - usedSoFar
	if rem < 0 {
		return 0
	}
	return rem
}
