package store

import (
	"errors"
	"fmt"
	"sync"

	"remo/internal/model"
)

// Condition compares an observed value against a trigger threshold.
type Condition int

// Trigger conditions.
const (
	// Above fires when value > threshold.
	Above Condition = iota + 1
	// Below fires when value < threshold.
	Below
)

// String implements fmt.Stringer.
func (c Condition) String() string {
	switch c {
	case Above:
		return ">"
	case Below:
		return "<"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// Trigger is a standing threshold watch over collected values — the
// result processor's "triggering warnings" operation from §2.2.
type Trigger struct {
	// Name identifies the trigger in alerts.
	Name string
	// Attr is the watched attribute.
	Attr model.AttrID
	// Node restricts the watch to one node; model.Central (0) watches
	// every node.
	Node model.NodeID
	// Cond and Threshold define the firing predicate.
	Cond      Condition
	Threshold float64
	// Cooldown suppresses repeat alerts from the same pair for the given
	// number of rounds (0 alerts on every matching observation).
	Cooldown int
}

// Alert records one trigger firing.
type Alert struct {
	Trigger string
	Pair    model.Pair
	Round   int
	Value   float64
}

// Errors returned by the processor.
var (
	ErrDuplicateTrigger = errors.New("store: duplicate trigger name")
	ErrBadTrigger       = errors.New("store: invalid trigger")
)

// Processor evaluates triggers over the stream of collected values. It
// is safe for concurrent use.
type Processor struct {
	mu       sync.Mutex
	triggers map[string]Trigger
	lastFire map[string]map[model.Pair]int
	alerts   []Alert
	maxKept  int
	onAlert  func(Alert)
}

// NewProcessor returns an empty result processor retaining up to
// maxAlerts alerts (default 1024 when <= 0).
func NewProcessor(maxAlerts int) *Processor {
	if maxAlerts <= 0 {
		maxAlerts = 1024
	}
	return &Processor{
		triggers: make(map[string]Trigger),
		lastFire: make(map[string]map[model.Pair]int),
		maxKept:  maxAlerts,
	}
}

// SetHandler installs a callback invoked synchronously on every alert.
func (p *Processor) SetHandler(fn func(Alert)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onAlert = fn
}

// AddTrigger registers a trigger.
func (p *Processor) AddTrigger(t Trigger) error {
	if t.Name == "" || (t.Cond != Above && t.Cond != Below) {
		return fmt.Errorf("%w: %+v", ErrBadTrigger, t)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.triggers[t.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateTrigger, t.Name)
	}
	p.triggers[t.Name] = t
	if _, restored := p.lastFire[t.Name]; !restored {
		// Keep any re-arm state restored before the trigger was re-added
		// (crash recovery re-registers triggers after RestoreCooldowns).
		p.lastFire[t.Name] = make(map[model.Pair]int)
	}
	return nil
}

// RemoveTrigger deletes a trigger by name (no-op when absent).
func (p *Processor) RemoveTrigger(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.triggers, name)
	delete(p.lastFire, name)
}

// Observe evaluates every trigger against one collected value.
func (p *Processor) Observe(pair model.Pair, round int, value float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for name, t := range p.triggers {
		if t.Attr != pair.Attr {
			continue
		}
		if t.Node != model.Central && t.Node != pair.Node {
			continue
		}
		fired := (t.Cond == Above && value > t.Threshold) ||
			(t.Cond == Below && value < t.Threshold)
		if !fired {
			continue
		}
		if t.Cooldown > 0 {
			if last, seen := p.lastFire[name][pair]; seen && round-last < t.Cooldown {
				continue
			}
		}
		p.lastFire[name][pair] = round
		alert := Alert{Trigger: name, Pair: pair, Round: round, Value: value}
		p.alerts = append(p.alerts, alert)
		if len(p.alerts) > p.maxKept {
			p.alerts = p.alerts[len(p.alerts)-p.maxKept:]
		}
		if p.onAlert != nil {
			p.onAlert(alert)
		}
	}
}

// Cooldowns snapshots the trigger re-arm state: for every trigger, the
// last round each pair fired at. The snapshot is deep-copied, so it
// stays valid as the processor keeps observing.
func (p *Processor) Cooldowns() map[string]map[model.Pair]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]map[model.Pair]int, len(p.lastFire))
	for name, pairs := range p.lastFire {
		cp := make(map[model.Pair]int, len(pairs))
		for pr, r := range pairs {
			cp[pr] = r
		}
		out[name] = cp
	}
	return out
}

// RestoreCooldowns reinstates a trigger re-arm snapshot (crash
// recovery): triggers resume suppressing repeat alerts exactly where
// the snapshot left off. Entries for unregistered triggers are kept and
// become live when the trigger is re-added.
func (p *Processor) RestoreCooldowns(state map[string]map[model.Pair]int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for name, pairs := range state {
		m, ok := p.lastFire[name]
		if !ok {
			m = make(map[model.Pair]int, len(pairs))
			p.lastFire[name] = m
		}
		for pr, r := range pairs {
			m[pr] = r
		}
	}
}

// Alerts returns the retained alerts, oldest first.
func (p *Processor) Alerts() []Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Alert(nil), p.alerts...)
}

// AlertCount returns the number of retained alerts.
func (p *Processor) AlertCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.alerts)
}
