package store

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"remo/internal/model"
)

func pair(n, a int) model.Pair {
	return model.Pair{Node: model.NodeID(n), Attr: model.AttrID(a)}
}

func TestStoreObserveAndLatest(t *testing.T) {
	s := New(8)
	p := pair(1, 1)
	if _, ok := s.Latest(p); ok {
		t.Fatal("Latest on empty store returned a sample")
	}
	s.Observe(p, 1, 10)
	s.Observe(p, 3, 30)
	got, ok := s.Latest(p)
	if !ok || got.Round != 3 || got.Value != 30 {
		t.Fatalf("Latest = %+v, %v", got, ok)
	}
}

func TestStoreOutOfOrderInsert(t *testing.T) {
	s := New(8)
	p := pair(1, 1)
	s.Observe(p, 5, 50)
	s.Observe(p, 2, 20) // late arrival via a slow path
	s.Observe(p, 7, 70)
	w := s.Window(p, 0, 10)
	if len(w) != 3 {
		t.Fatalf("Window = %+v", w)
	}
	for i := 1; i < len(w); i++ {
		if w[i].Round < w[i-1].Round {
			t.Fatalf("window unsorted: %+v", w)
		}
	}
	// Latest is still the newest round, not the last arrival.
	if got, _ := s.Latest(p); got.Round != 7 {
		t.Fatalf("Latest = %+v", got)
	}
}

func TestStoreRingEviction(t *testing.T) {
	s := New(4)
	p := pair(1, 1)
	for r := 0; r < 10; r++ {
		s.Observe(p, r, float64(r))
	}
	w := s.Window(p, 0, 100)
	if len(w) != 4 {
		t.Fatalf("retained %d, want 4", len(w))
	}
	if w[0].Round != 6 || w[3].Round != 9 {
		t.Fatalf("retained window = %+v", w)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStoreWindowBounds(t *testing.T) {
	s := New(16)
	p := pair(2, 3)
	for r := 0; r < 10; r++ {
		s.Observe(p, r, float64(r*r))
	}
	w := s.Window(p, 3, 6)
	if len(w) != 4 || w[0].Round != 3 || w[3].Round != 6 {
		t.Fatalf("Window(3,6) = %+v", w)
	}
	if got := s.Window(pair(9, 9), 0, 10); got != nil {
		t.Fatalf("Window(absent) = %+v", got)
	}
}

func TestStoreSummarize(t *testing.T) {
	s := New(16)
	p := pair(1, 2)
	for r, v := range []float64{4, 2, 6} {
		s.Observe(p, r, v)
	}
	sum, ok := s.Summarize(p)
	if !ok {
		t.Fatal("Summarize failed")
	}
	if sum.Count != 3 || sum.Min != 2 || sum.Max != 6 || sum.Mean != 4 {
		t.Fatalf("Summary = %+v", sum)
	}
	if sum.First != 0 || sum.Last != 2 {
		t.Fatalf("Summary rounds = %+v", sum)
	}
	if _, ok := s.Summarize(pair(9, 9)); ok {
		t.Fatal("Summarize(absent) succeeded")
	}
}

func TestStorePairsSorted(t *testing.T) {
	s := New(4)
	s.Observe(pair(2, 1), 0, 1)
	s.Observe(pair(1, 2), 0, 1)
	s.Observe(pair(1, 1), 0, 1)
	ps := s.Pairs()
	if len(ps) != 3 || ps[0] != pair(1, 1) || ps[2] != pair(2, 1) {
		t.Fatalf("Pairs = %v", ps)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := New(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				p := pair(rng.Intn(4)+1, rng.Intn(3)+1)
				s.Observe(p, i, rng.Float64())
				_, _ = s.Latest(p)
				_ = s.Window(p, 0, i)
			}
		}(w)
	}
	wg.Wait()
	if len(s.Pairs()) == 0 {
		t.Fatal("nothing stored")
	}
}

func TestProcessorTriggers(t *testing.T) {
	pr := NewProcessor(16)
	if err := pr.AddTrigger(Trigger{Name: "hot", Attr: 1, Cond: Above, Threshold: 90}); err != nil {
		t.Fatal(err)
	}
	if err := pr.AddTrigger(Trigger{Name: "hot", Attr: 1, Cond: Above, Threshold: 90}); !errors.Is(err, ErrDuplicateTrigger) {
		t.Fatalf("duplicate error = %v", err)
	}
	if err := pr.AddTrigger(Trigger{Name: "", Attr: 1, Cond: Above}); !errors.Is(err, ErrBadTrigger) {
		t.Fatalf("invalid trigger error = %v", err)
	}

	pr.Observe(pair(1, 1), 1, 95) // fires
	pr.Observe(pair(1, 1), 2, 85) // below threshold
	pr.Observe(pair(1, 2), 3, 99) // wrong attr
	alerts := pr.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	if alerts[0].Trigger != "hot" || alerts[0].Round != 1 || alerts[0].Value != 95 {
		t.Fatalf("alert = %+v", alerts[0])
	}
}

func TestProcessorNodeScoping(t *testing.T) {
	pr := NewProcessor(16)
	if err := pr.AddTrigger(Trigger{
		Name: "n2-low", Attr: 1, Node: 2, Cond: Below, Threshold: 5,
	}); err != nil {
		t.Fatal(err)
	}
	pr.Observe(pair(1, 1), 1, 1) // other node
	pr.Observe(pair(2, 1), 1, 1) // fires
	if got := pr.AlertCount(); got != 1 {
		t.Fatalf("alerts = %d, want 1", got)
	}
}

func TestProcessorCooldown(t *testing.T) {
	pr := NewProcessor(16)
	if err := pr.AddTrigger(Trigger{
		Name: "hot", Attr: 1, Cond: Above, Threshold: 0, Cooldown: 5,
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 12; r++ {
		pr.Observe(pair(1, 1), r, 1)
	}
	// Fires at rounds 0, 5, 10.
	if got := pr.AlertCount(); got != 3 {
		t.Fatalf("alerts = %d, want 3", got)
	}
	// Cooldown is per pair: another node fires independently.
	pr.Observe(pair(2, 1), 11, 1)
	if got := pr.AlertCount(); got != 4 {
		t.Fatalf("alerts = %d, want 4", got)
	}
}

func TestProcessorHandlerAndRemove(t *testing.T) {
	pr := NewProcessor(16)
	var handled []Alert
	pr.SetHandler(func(a Alert) { handled = append(handled, a) })
	if err := pr.AddTrigger(Trigger{Name: "t", Attr: 1, Cond: Above, Threshold: 0}); err != nil {
		t.Fatal(err)
	}
	pr.Observe(pair(1, 1), 0, 1)
	if len(handled) != 1 {
		t.Fatalf("handler calls = %d", len(handled))
	}
	pr.RemoveTrigger("t")
	pr.Observe(pair(1, 1), 1, 1)
	if len(handled) != 1 {
		t.Fatal("removed trigger still fires")
	}
}

func TestProcessorAlertCap(t *testing.T) {
	pr := NewProcessor(3)
	if err := pr.AddTrigger(Trigger{Name: "t", Attr: 1, Cond: Above, Threshold: 0}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		pr.Observe(pair(1, 1), r, 1)
	}
	alerts := pr.Alerts()
	if len(alerts) != 3 || alerts[0].Round != 7 {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestConditionString(t *testing.T) {
	if Above.String() != ">" || Below.String() != "<" {
		t.Fatal("condition strings wrong")
	}
	if Condition(9).String() == "" {
		t.Fatal("unknown condition string empty")
	}
}
