// Package store implements the data collector's repository (§2.2 of the
// paper): it retains collected attribute values as bounded per-pair time
// series and serves lookups for users and higher-level applications.
// Its companion, the result processor (processor.go), executes concrete
// monitoring operations such as threshold triggers.
package store

import (
	"sort"
	"sync"

	"remo/internal/model"
)

// Sample is one collected observation of a node-attribute pair.
type Sample struct {
	// Round is the collection round the value was observed at (the
	// producer's clock, not the arrival time).
	Round int
	// Value is the observed value.
	Value float64
}

// Store retains the most recent samples of every collected pair in
// fixed-size ring buffers. It is safe for concurrent use: the emulated
// collector appends while readers query.
type Store struct {
	mu       sync.RWMutex
	capacity int
	series   map[model.Pair]*ring
}

// DefaultCapacity is the per-series ring size used when none is given.
const DefaultCapacity = 128

// New returns a store retaining up to capacity samples per pair
// (DefaultCapacity if capacity <= 0).
func New(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		capacity: capacity,
		series:   make(map[model.Pair]*ring),
	}
}

// Observe appends a sample for pair p. Out-of-order arrivals (an older
// round than the newest retained sample) are accepted and kept sorted.
func (s *Store) Observe(p model.Pair, round int, value float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.series[p]
	if !ok {
		r = newRing(s.capacity)
		s.series[p] = r
	}
	r.push(Sample{Round: round, Value: value})
}

// Latest returns the newest sample of pair p.
func (s *Store) Latest(p model.Pair) (Sample, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.series[p]
	if !ok || r.len() == 0 {
		return Sample{}, false
	}
	return r.newest(), true
}

// Window returns the retained samples of pair p with from <= Round <=
// to, oldest first.
func (s *Store) Window(p model.Pair, from, to int) []Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.series[p]
	if !ok {
		return nil
	}
	var out []Sample
	for _, smp := range r.ascending() {
		if smp.Round >= from && smp.Round <= to {
			out = append(out, smp)
		}
	}
	return out
}

// Pairs returns every pair with at least one retained sample, sorted.
func (s *Store) Pairs() []model.Pair {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]model.Pair, 0, len(s.series))
	for p, r := range s.series {
		if r.len() > 0 {
			out = append(out, p)
		}
	}
	model.SortPairs(out)
	return out
}

// Len returns the total number of retained samples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int
	for _, r := range s.series {
		n += r.len()
	}
	return n
}

// Capacity returns the per-series retention bound.
func (s *Store) Capacity() int { return s.capacity }

// SeriesDump is one pair's retained samples, oldest first — the unit of
// the store's durable snapshot.
type SeriesDump struct {
	Pair    model.Pair
	Samples []Sample
}

// Dump snapshots every retained series in canonical pair order, oldest
// sample first. Replaying a dump through Observe on a store of the same
// capacity reproduces the retained state bit-identically (in-order
// appends land on the ring's fast path and eviction order matches).
func (s *Store) Dump() []SeriesDump {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pairs := make([]model.Pair, 0, len(s.series))
	for p, r := range s.series {
		if r.len() > 0 {
			pairs = append(pairs, p)
		}
	}
	model.SortPairs(pairs)
	out := make([]SeriesDump, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, SeriesDump{Pair: p, Samples: s.series[p].ascending()})
	}
	return out
}

// Summary aggregates a pair's retained samples.
type Summary struct {
	Count    int
	Min, Max float64
	Mean     float64
	// First and Last are the oldest and newest retained rounds.
	First, Last int
}

// Summarize computes the summary of pair p's retained samples.
func (s *Store) Summarize(p model.Pair) (Summary, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.series[p]
	if !ok || r.len() == 0 {
		return Summary{}, false
	}
	samples := r.ascending()
	sum := Summary{
		Count: len(samples),
		Min:   samples[0].Value,
		Max:   samples[0].Value,
		First: samples[0].Round,
		Last:  samples[len(samples)-1].Round,
	}
	var total float64
	for _, smp := range samples {
		total += smp.Value
		if smp.Value < sum.Min {
			sum.Min = smp.Value
		}
		if smp.Value > sum.Max {
			sum.Max = smp.Value
		}
	}
	sum.Mean = total / float64(len(samples))
	return sum, true
}

// ring is a fixed-capacity sample buffer kept sorted by round.
type ring struct {
	buf []Sample
	cap int
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]Sample, 0, capacity), cap: capacity}
}

func (r *ring) len() int { return len(r.buf) }

func (r *ring) push(s Sample) {
	// Common case: in-order append.
	if len(r.buf) == 0 || s.Round >= r.buf[len(r.buf)-1].Round {
		r.buf = append(r.buf, s)
	} else {
		// Out-of-order: insert at the sorted position.
		i := sort.Search(len(r.buf), func(i int) bool {
			return r.buf[i].Round > s.Round
		})
		r.buf = append(r.buf, Sample{})
		copy(r.buf[i+1:], r.buf[i:])
		r.buf[i] = s
	}
	if len(r.buf) > r.cap {
		// Drop the oldest; shift in place to respect the backing
		// array's capacity bound.
		copy(r.buf, r.buf[len(r.buf)-r.cap:])
		r.buf = r.buf[:r.cap]
	}
}

func (r *ring) newest() Sample { return r.buf[len(r.buf)-1] }

func (r *ring) ascending() []Sample {
	out := make([]Sample, len(r.buf))
	copy(out, r.buf)
	return out
}
