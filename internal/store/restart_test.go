package store

import (
	"reflect"
	"testing"

	"remo/internal/model"
)

// TestDumpReplayBitIdentical is the durability contract of the store:
// replaying a Dump through Observe on a fresh store of the same
// capacity reproduces the retained state exactly — ordering,
// out-of-order inserts and bounded-retention eviction included.
func TestDumpReplayBitIdentical(t *testing.T) {
	const capacity = 4
	orig := New(capacity)
	p1 := model.Pair{Node: 1, Attr: 1}
	p2 := model.Pair{Node: 2, Attr: 3}

	// In-order appends past capacity (evicts rounds 0 and 1)...
	for r := 0; r < capacity+2; r++ {
		orig.Observe(p1, r, float64(r)*1.5)
	}
	// ...and an out-of-order arrival landing mid-ring.
	orig.Observe(p2, 10, 100)
	orig.Observe(p2, 12, 120)
	orig.Observe(p2, 11, 110)

	replay := New(capacity)
	for _, sd := range orig.Dump() {
		for _, smp := range sd.Samples {
			replay.Observe(sd.Pair, smp.Round, smp.Value)
		}
	}

	if !reflect.DeepEqual(replay.Dump(), orig.Dump()) {
		t.Fatalf("replayed dump diverges:\n got %+v\nwant %+v", replay.Dump(), orig.Dump())
	}
	if replay.Len() != orig.Len() || replay.Capacity() != orig.Capacity() {
		t.Fatalf("len/cap = %d/%d, want %d/%d",
			replay.Len(), replay.Capacity(), orig.Len(), orig.Capacity())
	}
	for _, p := range []model.Pair{p1, p2} {
		gl, gok := replay.Latest(p)
		wl, wok := orig.Latest(p)
		if gok != wok || gl != wl {
			t.Fatalf("latest(%v) = %+v,%v, want %+v,%v", p, gl, gok, wl, wok)
		}
		if !reflect.DeepEqual(replay.Window(p, 0, 100), orig.Window(p, 0, 100)) {
			t.Fatalf("window(%v) diverges", p)
		}
	}
	// Eviction happened, so the contract covers the wrapped-ring case.
	if got := orig.Window(p1, 0, 1); len(got) != 0 {
		t.Fatalf("evicted rounds still present: %+v", got)
	}
}

// TestCooldownRoundTrip restores trigger re-arm state the way crash
// recovery does — RestoreCooldowns before AddTrigger — and checks the
// trigger stays armed exactly as it was: suppressed inside the
// cooldown window, firing after it.
func TestCooldownRoundTrip(t *testing.T) {
	pair := model.Pair{Node: 1, Attr: 1}
	trig := Trigger{Name: "hot", Attr: 1, Cond: Above, Threshold: 10, Cooldown: 5}

	orig := NewProcessor(0)
	if err := orig.AddTrigger(trig); err != nil {
		t.Fatal(err)
	}
	orig.Observe(pair, 7, 99) // fires; re-armed at round 12
	if orig.AlertCount() != 1 {
		t.Fatalf("alerts = %d, want 1", orig.AlertCount())
	}

	state := orig.Cooldowns()
	restored := NewProcessor(0)
	restored.RestoreCooldowns(state)
	if err := restored.AddTrigger(trig); err != nil {
		t.Fatal(err)
	}

	restored.Observe(pair, 9, 99) // inside the restored cooldown
	if restored.AlertCount() != 0 {
		t.Fatalf("restored trigger re-fired inside cooldown: %+v", restored.Alerts())
	}
	restored.Observe(pair, 12, 99) // cooldown elapsed
	if restored.AlertCount() != 1 {
		t.Fatalf("restored trigger did not re-arm: alerts = %d", restored.AlertCount())
	}

	// The snapshot is a deep copy: mutating the live processor after
	// taking it must not retroactively change the checkpointed state.
	orig.Observe(pair, 50, 99)
	if got := state["hot"][pair]; got != 7 {
		t.Fatalf("snapshot mutated: lastFire = %d, want 7", got)
	}
}
