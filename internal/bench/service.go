package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"remo"
	"remo/internal/load"
	"remo/internal/metrics"
	"remo/internal/serve"
)

// serviceColumns are the series of the service-tier sweep: admission
// latency percentiles over the front door, the collection-round
// throughput the backend sustained under that churn, total requests
// and applied operations, and the two ledgers that must stay at zero —
// request errors and live verification failures (the session runs with
// verification armed).
var serviceColumns = []string{
	"ADMIT_P50_MS", "ADMIT_P95_MS", "ADMIT_P99_MS",
	"ROUNDS_PER_S", "REQS", "OPS_OK", "ERRORS", "VERIFY_FAILS",
}

// servicePointSeconds bounds each sweep point's traffic window at
// scale 1. Long enough for thousands of clients to ramp, sync, and
// settle into think-paced churn; short enough that the three-point
// sweep stays inside a CI budget. Smaller scales shrink the window
// proportionally with a one-second floor.
const servicePointSeconds = 6

func (o Options) serviceWindow() time.Duration {
	secs := servicePointSeconds * o.scale()
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs * float64(time.Second))
}

// Service drives the remo-load harness against an in-process
// serve.Server over the memory transport (direct handler dispatch, no
// sockets), sweeping the simulated client count to 10k at scale 1.
// A fiftieth of the clients mutate tasks through the admission API —
// a steady replan load — while the rest poll delta reads. The headline
// 10k-client ADMIT_P99_MS and ROUNDS_PER_S gate in scripts/check.sh
// via benchguard -service (BENCH_service.json records a run).
func Service(o Options) []*metrics.Table {
	tbl := metrics.NewTable(
		"Service front door — admission latency and round throughput under churn (memory transport)",
		"clients", serviceColumns...)
	for _, c := range []int{2500, 5000, 10000} {
		n := o.scaleInt(c, 50)
		mustAdd(tbl, float64(n), servicePoint(o, n)...)
	}
	return []*metrics.Table{tbl}
}

// servicePoint boots one service stack and runs the harness at the
// given client count. The system is provisioned so every admission is
// feasible: the sweep measures the service tier, not planner
// infeasibility.
func servicePoint(o Options, clients int) []float64 {
	nNodes := o.scaleInt(60, 12)
	nodes := make([]remo.Node, nNodes)
	for i := range nodes {
		nodes[i] = remo.Node{
			ID:       remo.NodeID(i + 1),
			Capacity: 200,
			Attrs:    []remo.AttrID{1, 2, 3, 4},
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		// Budget: headroom over every observable pair (nodes x 4 attrs).
		CentralCapacity: 10 + float64(4*nNodes) + 50,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: service system: %v", err))
	}
	journal, err := os.MkdirTemp("", "remo-bench-service-")
	if err != nil {
		panic(fmt.Sprintf("bench: service journal: %v", err))
	}
	defer os.RemoveAll(journal)

	p := remo.NewPlanner(sys, remo.WithJournal(journal), remo.WithVerification())
	srv, err := serve.New(serve.Config{
		Planner:     p,
		Monitor:     remo.MonitorConfig{Seed: uint64(o.Seed) + 211},
		RoundEvery:  50 * time.Millisecond,
		VerifyEvery: 16,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: service boot: %v", err))
	}
	defer srv.Drain()

	// The ramp spreads connect-time full syncs over most of the window
	// and think pacing scales with it, so the point measures steady
	// think-paced churn rather than a connect stampede.
	window := o.serviceWindow()
	rep, err := load.Run(context.Background(), load.Options{
		Handler:     srv.Handler(),
		Clients:     clients,
		Duration:    window,
		Ramp:        window * 6 / 10,
		Think:       load.ThinkSpec{Dist: load.ThinkExp, Mean: window / 3},
		MutatorFrac: 0.02,
		Seed:        o.Seed + 212,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: service load: %v", err))
	}
	return []float64{
		rep.Admit.P50, rep.Admit.P95, rep.Admit.P99,
		rep.RoundsPS, float64(rep.Requests), float64(rep.OpsSucceeded),
		float64(rep.Errors), float64(rep.VerifyFails),
	}
}
