package bench

import (
	"remo/internal/agg"
	"remo/internal/core"
	"remo/internal/freq"
	"remo/internal/metrics"
	"remo/internal/model"
	"remo/internal/partition"
	"remo/internal/reliability"
	"remo/internal/task"
	"remo/internal/workload"
)

// Fig12 evaluates the extension techniques: (a) aggregation-aware and
// update-frequency-aware planning, reported as collected values
// normalized to the basic (oblivious) REMO planner; (b) the SSDP
// replication mode REMO-2 against SINGLETON-SET-2 and ONE-SET-2.
func Fig12(o Options) []*metrics.Table {
	return []*metrics.Table{fig12a(o), fig12b(o)}
}

// fig12a: tasks request MAX in-network aggregation and half of the
// attributes update at half frequency. The basic planner ignores both,
// overestimates message costs, and builds needlessly conservative
// trees; the aware planner exploits funnels and piggyback weights.
func fig12a(o Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Fig 12a — collected values normalized to basic REMO (%)",
		"tasks", "BASIC", "AGG-AWARE", "FREQ-AWARE", "BOTH")

	for _, n := range sweepInts(o, []int{40, 80, 140, 200}, 4) {
		e, err := buildEnv(o, envConfig{
			tasks: n,
			// Capacities keep the oblivious baseline at moderate
			// coverage, as in the paper's setting, so the awareness gain
			// is not inflated by starvation.
			capLo: 250, capHi: 600,
			seed: o.Seed + 120,
		})
		if err != nil {
			panic(err)
		}

		// MAX aggregation on every attribute.
		spec := agg.NewSpec()
		for _, a := range e.d.Universe().Attrs() {
			spec.SetKind(a, agg.Max)
		}
		// Half the attributes update at half rate.
		fs := freq.NewSpec()
		for i, a := range e.d.Universe().Attrs() {
			if i%2 == 0 {
				if err := fs.Set(a, 0.5); err != nil {
					panic(err)
				}
			}
		}
		weighted := fs.Apply(e.d)

		basic := float64(core.NewPlanner().Plan(e.sys, e.d).Stats.Collected)
		aggAware := float64(core.NewPlanner(core.WithSpec(spec)).Plan(e.sys, e.d).Stats.Collected)
		freqAware := float64(core.NewPlanner().Plan(e.sys, weighted).Stats.Collected)
		both := float64(core.NewPlanner(core.WithSpec(spec)).Plan(e.sys, weighted).Stats.Collected)

		if basic == 0 {
			basic = 1
		}
		mustAdd(tbl, float64(n),
			100,
			100*aggAware/basic,
			100*freqAware/basic,
			100*both/basic,
		)
	}
	return tbl
}

// fig12b: every task is rewritten for SSDP delivery with replication
// factor 2; REMO-2 plans under the anti-colocation constraints, while
// the baselines force singleton or two-set partitions.
func fig12b(o Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Fig 12b — % collected with replication factor 2",
		"tasks", "REMO-2", "SINGLETON-SET-2", "ONE-SET-2")

	for _, n := range sweepInts(o, []int{20, 40, 80, 120}, 3) {
		sys, err := workload.System(workload.SystemConfig{
			Nodes:      o.scaleInt(120, 15),
			Attrs:      o.scaleInt(50, 8),
			CapacityLo: 150,
			CapacityHi: 400,
			Seed:       o.Seed + 121,
		})
		if err != nil {
			panic(err)
		}
		attrPool := o.scaleInt(50, 8)
		tasks := workload.Tasks(sys, workload.TaskConfig{
			Count:        n,
			AttrsPerTask: 6,
			NodesPerTask: maxInt(4, len(sys.Nodes)/6),
			Seed:         o.Seed + 122,
		})

		// SSDP-rewrite every task with a private alias range.
		var rewrites []reliability.Rewrite
		mgr := task.NewManager()
		aliasBase := model.AttrID(attrPool + 1000)
		for _, t := range tasks {
			rw, err := reliability.SSDP(t, 2, aliasBase)
			if err != nil {
				panic(err)
			}
			aliasBase += model.AttrID(len(t.Attrs) + 1)
			rewrites = append(rewrites, rw)
			for _, rt := range rw.Tasks {
				if err := mgr.Add(rt); err != nil {
					panic(err)
				}
			}
		}
		cons := reliability.MergeConstraints(rewrites...)
		d := mgr.Demand()
		universe := d.Universe()

		remo2 := core.NewPlanner(core.WithConstraints(cons)).Plan(sys, d)
		sp2 := core.NewPlanner().PlanPartition(sys, d, partition.Singleton(universe))
		os2 := core.NewPlanner().PlanPartition(sys, d, oneSetTwo(universe, model.AttrID(attrPool)))

		total := d.PairCount()
		mustAdd(tbl, float64(n),
			pct(remo2.Stats.Collected, total),
			pct(sp2.Stats.Collected, total),
			pct(os2.Stats.Collected, total),
		)
	}
	return tbl
}

// oneSetTwo partitions the universe into two trees: one for original
// attributes (ids <= maxOriginal) and one for their replication aliases
// — the ONE-SET-2 baseline.
func oneSetTwo(universe model.AttrSet, maxOriginal model.AttrID) []model.AttrSet {
	var originals, aliases []model.AttrID
	for _, a := range universe.Attrs() {
		if a <= maxOriginal {
			originals = append(originals, a)
		} else {
			aliases = append(aliases, a)
		}
	}
	var sets []model.AttrSet
	if len(originals) > 0 {
		sets = append(sets, model.NewAttrSet(originals...))
	}
	if len(aliases) > 0 {
		sets = append(sets, model.NewAttrSet(aliases...))
	}
	return sets
}
