package bench

import (
	"fmt"
	"time"

	"remo/internal/core"
	"remo/internal/metrics"
)

// plannerColumns are the series of the planner wall-clock experiment:
// the sequential baseline (one worker, tree-build memo off — the
// pre-parallel planner), the parallel planner (GOMAXPROCS workers,
// memo on), the resulting speedup factor, and the fraction of tree
// constructions the memo avoided.
var plannerColumns = []string{"SEQ_MS", "PAR_MS", "SPEEDUP", "TREE_REUSE_PCT"}

// plannerPoint times both planner configurations on one environment.
// The two must produce identical plans — the parallel search adopts
// the same moves — so the point also cross-checks determinism and
// panics loudly if the plans ever diverge.
func plannerPoint(e env) []float64 {
	seq := core.NewPlanner(core.WithWorkers(1), core.WithoutTreeCache())
	par := core.NewPlanner()

	t0 := time.Now()
	rs := seq.Plan(e.sys, e.d)
	seqMS := float64(time.Since(t0).Microseconds()) / 1000

	t0 = time.Now()
	rp := par.Plan(e.sys, e.d)
	parMS := float64(time.Since(t0).Microseconds()) / 1000

	if rs.Stats.Score() != rp.Stats.Score() {
		panic(fmt.Sprintf("bench: parallel planner diverged: %+v vs %+v",
			rs.Stats.Score(), rp.Stats.Score()))
	}
	speedup := 0.0
	if parMS > 0 {
		speedup = seqMS / parMS
	}
	reusePct := 0.0
	if total := rp.TreeBuilds + rp.TreeReuses; total > 0 {
		reusePct = 100 * float64(rp.TreeReuses) / float64(total)
	}
	return []float64{seqMS, parMS, speedup, reusePct}
}

// PlannerPerf measures planner wall-clock, sequential vs parallel, on
// the Fig. 5a workload sweep (attributes per task) and the Fig. 6a
// system sweep (node count, small tasks). This is the perf trajectory
// for the planner hot path: related monitoring work treats placement
// latency as a first-class cost, and these series are what future
// optimizations are judged against (BENCH_planner.json records a run).
func PlannerPerf(o Options) []*metrics.Table {
	a := metrics.NewTable("Planner wall-clock — Fig 5a sweep (attrs per task)", "attrs_per_task", plannerColumns...)
	for _, at := range sweepInts(o, []int{10, 20, 40, 70, 100}, 2) {
		e, err := buildEnv(o, envConfig{attrsPerTask: at, seed: o.Seed + 50})
		if err != nil {
			panic(err)
		}
		mustAdd(a, float64(at), plannerPoint(e)...)
	}

	b := metrics.NewTable("Planner wall-clock — Fig 6a sweep (nodes, small tasks)", "nodes", plannerColumns...)
	for _, n := range sweepInts(o, []int{50, 100, 200, 300, 400}, 10) {
		e, err := buildEnv(o, envConfig{
			nodes:        n,
			tasks:        o.scaleInt(150, 10),
			attrsPerTask: 3,
			nodesPerTask: maxInt(2, n/10),
			seed:         o.Seed + 60,
		})
		if err != nil {
			panic(err)
		}
		mustAdd(b, float64(n), plannerPoint(e)...)
	}
	return []*metrics.Table{a, b}
}
