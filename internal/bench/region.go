package bench

import (
	"fmt"
	"sync/atomic"

	"remo"
	"remo/internal/cluster"
	"remo/internal/core"
	"remo/internal/cost"
	"remo/internal/metrics"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/transport"
)

// regionBytesColumns are the series of the WAN-pricing table: inter-
// region wire bytes shipped by the topology-blind and topology-aware
// plans of the identical workload, the resulting cross-region byte
// reduction factor, and both plans' collection coverage (which must
// stay at parity — topology awareness reroutes, it must not shed).
var regionBytesColumns = []string{
	"CROSS_KB_BLIND", "CROSS_KB_AWARE", "REDUCTION_X", "COV_BLIND_PCT", "COV_AWARE_PCT",
}

// regionLossColumns are the series of the region-loss timeline: the
// lowest surviving region's planned coverage of the base demand, the
// lost region's residual coverage, and cumulative automatic repairs.
var regionLossColumns = []string{"MIN_SURV_COV_PCT", "LOST_COV_PCT", "REPAIRS"}

// regionInterCost is the WAN multiplier every sweep point plans
// against (the default cross-region price).
const regionInterCost = cost.DefaultInterRegionCost

// regionFloorPct is the coverage floor every surviving region must hold
// after the region loss; benchguard -region enforces it on the
// timeline's final row.
const regionFloorPct = 90

// regionCountingTransport classifies every accepted Send's frame bytes
// by the regions of its endpoints. Classification only needs labels —
// it is independent of the cost model, so blind and aware plans are
// metered by the same geography.
type regionCountingTransport struct {
	transport.Transport
	regionOf     func(model.NodeID) string
	cross, intra atomic.Int64
}

func (c *regionCountingTransport) Send(msg transport.Message) error {
	sz := int64(transport.FrameSize(msg))
	if c.regionOf(msg.From) == c.regionOf(msg.To) {
		c.intra.Add(sz)
	} else {
		c.cross.Add(sz)
	}
	return c.Transport.Send(msg)
}

// regionEnv prepares the headline WAN deployment: the Fig. 6a shape
// (200 nodes, 150 dense tasks at scale 1) cut into contiguous regions
// with the collector homed in r0. Capacities are generous so both
// pricing schemes collect everything — this experiment meters where
// bytes travel, not admission.
func regionEnv(o Options, regions int, seed int64) (env, error) {
	nodes := o.scaleInt(200, 30)
	return buildEnv(o, envConfig{
		nodes:        nodes,
		attrPool:     o.scaleInt(50, 10),
		tasks:        o.scaleInt(150, 10),
		attrsPerTask: 20,
		nodesPerTask: maxInt(3, nodes/10),
		capLo:        2e4,
		capHi:        4e4,
		central:      1e8,
		regions:      regions,
		interCost:    regionInterCost,
		seed:         seed,
	})
}

// Region measures what WAN topology awareness buys on the headline
// 3-region Fig. 6a workload. Table A plans the identical demand twice —
// once topology-blind (uniform pricing), once topology-aware — and runs
// both plans over the same priced system, metering inter-region wire
// bytes as the WAN is cut into more regions. Table B drives a monitored
// session through a permanent loss of region r1 and samples the
// surviving regions' coverage before the loss, at the end of the
// suspicion window, and after detect→repair re-homes the orphaned
// trees. benchguard -region gates the headline 3-region row's
// REDUCTION_X >= 2 with coverage parity and the timeline's final
// MIN_SURV_COV_PCT >= 90 (BENCH_region.json records a run).
func Region(o Options) []*metrics.Table {
	a := metrics.NewTable(
		"WAN topology — cross-region bytes, topology-blind vs topology-aware planning (Fig 6a shape, x = regions)",
		"regions", regionBytesColumns...)
	for _, regions := range []int{2, 3, 6} {
		mustAdd(a, float64(regions), regionBytesPoint(o, regions)...)
	}
	b := regionLossTimeline(o)
	return []*metrics.Table{a, b}
}

// regionBytesPoint plans blind and aware over a WAN cut into the given
// number of regions and meters both over the real (priced) system.
func regionBytesPoint(o Options, regions int) []float64 {
	e, err := regionEnv(o, regions, o.Seed+170)
	if err != nil {
		panic(fmt.Sprintf("bench: region env: %v", err))
	}
	// The real world prices inter-region edges at the WAN multiplier.
	world := e.sys.Clone()
	world.ApplyTopology(cost.NewTopology(1, regionInterCost))

	// Blind: planned as if every edge cost 1 (the pre-WAN assumption).
	blindSys := e.sys.Clone()
	blindSys.ApplyTopology(nil)
	blind := core.NewPlanner().Plan(blindSys, e.d).Forest
	// Aware: planned against the real prices.
	aware := core.NewPlanner().Plan(world, e.d).Forest

	crossBlind, covBlind := meteredRegionRun(world, blind, e, o, 1)
	crossAware, covAware := meteredRegionRun(world, aware, e, o, 2)
	reduction := 0.0
	if crossAware > 0 {
		reduction = crossBlind / crossAware
	}
	return []float64{crossBlind / 1024, crossAware / 1024, reduction, covBlind, covAware}
}

// meteredRegionRun emulates one plan over the priced system behind a
// region-classifying transport and returns inter-region bytes plus the
// percent of demanded pairs collected.
func meteredRegionRun(sys *model.System, f *plan.Forest, e env, o Options, seedSalt uint64) (crossBytes, covPct float64) {
	ct := &regionCountingTransport{
		Transport: transport.NewMemory(sys.NodeIDs()),
		regionOf:  sys.RegionOf,
	}
	defer func() { _ = ct.Close() }()
	res, err := cluster.Run(cluster.Config{
		Sys:             sys,
		Forest:          f,
		Demand:          e.d,
		Rounds:          maxInt(o.rounds(), 60),
		EnforceCapacity: true,
		Source:          cluster.BurstyWalk{Seed: uint64(o.Seed) + seedSalt},
		Transport:       ct,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: region run: %v", err))
	}
	return float64(ct.cross.Load()), pct(res.CoveredPairs, e.d.PairCount())
}

// regionLossTimeline drives a monitored 3-region session through a
// permanent partition of region r1 and samples per-region coverage at
// the phase boundaries. Rows are indexed by round.
func regionLossTimeline(o Options) *metrics.Table {
	const (
		regions   = 3
		suspicion = 3
	)
	perRegion := o.scaleInt(12, 6)
	rounds := maxInt(o.rounds(), 24)
	lossRound := rounds / 3
	lost := remo.RegionName(1)

	nodes := make([]remo.Node, 0, regions*perRegion)
	for r := 0; r < regions; r++ {
		for i := 0; i < perRegion; i++ {
			nodes = append(nodes, remo.Node{
				ID:       remo.NodeID(r*perRegion + i + 1),
				Capacity: 600,
				Attrs:    []remo.AttrID{1, 2, 3},
				Region:   remo.RegionName(r),
			})
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: float64(len(nodes)) * 40,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: region timeline system: %v", err))
	}
	sys.CentralRegion = remo.RegionName(0)
	sys.ApplyTopology(remo.NewTopology(1, regionInterCost))

	p := remo.NewPlanner(sys)
	p.MustAddTask(remo.Task{Name: "cpu", Attrs: []remo.AttrID{1}, Nodes: sys.NodeIDs()})
	p.MustAddTask(remo.Task{Name: "mem", Attrs: []remo.AttrID{2, 3}, Nodes: sys.NodeIDs()})
	mon, err := p.StartMonitor(remo.MonitorConfig{
		Scheme: remo.AdaptAdaptive,
		Seed:   uint64(o.Seed) + 180,
		Chaos: &remo.ChaosConfig{
			RegionPartitions: map[string][]remo.ChaosWindow{
				lost: {{From: lossRound, To: rounds + 1}},
			},
		},
		Failure: &remo.FailurePolicy{SuspicionRounds: suspicion},
	})
	if err != nil {
		panic(fmt.Sprintf("bench: region timeline monitor: %v", err))
	}
	defer func() { _ = mon.Close() }()

	tbl := metrics.NewTable(
		"WAN topology — region-loss timeline: surviving coverage through partition, detection and repair",
		"round", regionLossColumns...)
	samples := []int{lossRound - 1, lossRound + suspicion, rounds}
	next := 0
	for round := 1; round <= rounds; round++ {
		if err := mon.Run(1); err != nil {
			panic(fmt.Sprintf("bench: region timeline run: %v", err))
		}
		if next < len(samples) && round == samples[next] {
			next++
			cov := mon.RegionCoverage()
			minSurv := 100.0
			for r, pctCov := range cov {
				if r != lost && pctCov < minSurv {
					minSurv = pctCov
				}
			}
			mustAdd(tbl, float64(round), minSurv, cov[lost], float64(len(mon.Report().Repairs)))
		}
	}
	// The bench is itself an acceptance check: the machine-verified
	// region floor must hold on the final state.
	if err := mon.VerifyRegionCoverage(regionFloorPct); err != nil {
		panic(fmt.Sprintf("bench: region floor violated after repair: %v", err))
	}
	if err := mon.Verify(); err != nil {
		panic(fmt.Sprintf("bench: region timeline failed verification: %v", err))
	}
	return tbl
}
