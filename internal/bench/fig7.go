package bench

import (
	"remo/internal/alloc"
	"remo/internal/metrics"
	"remo/internal/tree"
)

// treeColumns are the tree construction schemes of Fig. 7.
var treeColumns = []string{"ADAPTIVE", "STAR", "CHAIN", "MAX_AVB"}

// treePoint evaluates the tree construction schemes on one environment.
// To isolate tree construction as the variable, the attribute partition
// is planned once (with the default planner) and every scheme builds
// trees for that same partition.
func treePoint(e env) []float64 {
	sets := defaultPlanner().Plan(e.sys, e.d).Partition
	out := make([]float64, 0, len(treeColumns))
	for _, s := range []tree.Scheme{tree.Adaptive, tree.Star, tree.Chain, tree.MaxAvb} {
		p := plannerWith(s, alloc.Ordered)
		out = append(out, pctCollected(p, e, sets))
	}
	return out
}

// Fig7 compares the tree construction schemes under varying workload and
// system characteristics: (a) number of large-scale tasks (workload
// pressure), (b) attributes per task, (c) number of nodes, and (d) the
// C/a ratio. ADAPTIVE should dominate; STAR holds up under heavy
// workloads (minimal relaying), CHAIN only under light ones (its relay
// cost explodes with message size).
func Fig7(o Options) []*metrics.Table {
	a := metrics.NewTable("Fig 7a — % collected vs number of tasks", "tasks", treeColumns...)
	for _, n := range sweepInts(o, []int{20, 40, 80, 140, 200}, 4) {
		e, err := buildEnv(o, envConfig{
			tasks:        n,
			attrsPerTask: 10,
			seed:         o.Seed + 70,
		})
		if err != nil {
			panic(err)
		}
		mustAdd(a, float64(n), treePoint(e)...)
	}

	b := metrics.NewTable("Fig 7b — % collected vs attributes per task", "attrs_per_task", treeColumns...)
	for _, at := range sweepInts(o, []int{5, 10, 20, 40, 80}, 2) {
		e, err := buildEnv(o, envConfig{attrsPerTask: at, seed: o.Seed + 71})
		if err != nil {
			panic(err)
		}
		mustAdd(b, float64(at), treePoint(e)...)
	}

	c := metrics.NewTable("Fig 7c — % collected vs number of nodes", "nodes", treeColumns...)
	for _, n := range sweepInts(o, []int{50, 100, 200, 300, 400}, 10) {
		e, err := buildEnv(o, envConfig{
			nodes:        n,
			nodesPerTask: maxInt(4, n/5),
			seed:         o.Seed + 72,
		})
		if err != nil {
			panic(err)
		}
		mustAdd(c, float64(n), treePoint(e)...)
	}

	d := metrics.NewTable("Fig 7d — % collected vs C/a ratio", "C_over_a", treeColumns...)
	for _, r := range []float64{1, 2, 5, 10, 20, 50} {
		e, err := buildEnv(o, envConfig{ratio: r, seed: o.Seed + 73})
		if err != nil {
			panic(err)
		}
		mustAdd(d, r, treePoint(e)...)
	}
	return []*metrics.Table{a, b, c, d}
}
