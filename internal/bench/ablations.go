package bench

import (
	"remo/internal/core"
	"remo/internal/metrics"
)

// Ablations quantifies the planner's design choices that DESIGN.md calls
// out beyond the paper's own figures: (a) the guided-search evaluation
// budget (how much quality the candidate ranking buys per evaluation),
// (b) multi-start (seeding from both extreme partitions), and (c)
// sideways merge moves (plateau crossing).
func Ablations(o Options) []*metrics.Table {
	return []*metrics.Table{
		ablationBudget(o),
		ablationSearchFeatures(o),
	}
}

// ablationBudget sweeps the per-iteration evaluation budget.
func ablationBudget(o Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Ablation A — guided-search budget (avg over 3 workloads)",
		"eval_budget", "pct_collected", "evaluations")

	for _, budget := range []int{2, 4, 8, 16, 32, 0} {
		var pct, evals float64
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			e, err := buildEnv(o, envConfig{seed: o.Seed + int64(130+rep)})
			if err != nil {
				panic(err)
			}
			p := core.NewPlanner(core.WithEvalBudget(budget))
			res := p.Plan(e.sys, e.d)
			pct += pctOf(res, e)
			evals += float64(res.Evaluations)
		}
		x := float64(budget)
		if budget == 0 {
			x = -1 // exhaustive marker
		}
		mustAdd(tbl, x, pct/reps, evals/reps)
	}
	return tbl
}

// ablationSearchFeatures toggles multi-start and sideways moves.
func ablationSearchFeatures(o Options) *metrics.Table {
	tbl := metrics.NewTable(
		"Ablation B — search features (% collected, avg over 3 workloads)",
		"workload", "FULL", "NO-MULTISTART", "NO-SIDEWAYS", "NEITHER")

	// Three workload profiles where the features matter differently:
	// heavy overhead (merging pays), balanced, and heavy payload.
	profiles := []struct {
		name  float64 // x value: C/a ratio identifies the profile
		ratio float64
	}{
		{name: 2, ratio: 2},
		{name: 10, ratio: 10},
		{name: 50, ratio: 50},
	}
	for _, prof := range profiles {
		variants := []*core.Planner{
			core.NewPlanner(),
			core.NewPlanner(core.WithSingleStart()),
			core.NewPlanner(core.WithNoSideways()),
			core.NewPlanner(core.WithSingleStart(), core.WithNoSideways()),
		}
		cells := make([]float64, len(variants))
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			e, err := buildEnv(o, envConfig{
				ratio: prof.ratio,
				seed:  o.Seed + int64(140+rep),
			})
			if err != nil {
				panic(err)
			}
			for i, p := range variants {
				cells[i] += pctOf(p.Plan(e.sys, e.d), e) / reps
			}
		}
		mustAdd(tbl, prof.name, cells...)
	}
	return tbl
}

func pctOf(res core.Result, e env) float64 {
	return pct(res.Stats.Collected, e.d.PairCount())
}
