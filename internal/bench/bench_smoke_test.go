package bench

import (
	"testing"

	"remo/internal/metrics"
)

// smoke runs experiments at a small scale; these tests assert the
// figures' qualitative shape (who wins), not absolute numbers.
var smoke = Options{Scale: 0.15, Seed: 1, Rounds: 12}

func colMean(t *testing.T, tbl *metrics.Table, name string) float64 {
	t.Helper()
	col, ok := tbl.Column(name)
	if !ok {
		t.Fatalf("table %q lacks column %q", tbl.Title, name)
	}
	return metrics.Mean(col)
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablations", "planner", "churn", "runtime", "shard", "suppress", "service", "region"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, name := range want {
		if reg[i].Name != name {
			t.Fatalf("registry[%d] = %q, want %q", i, reg[i].Name, name)
		}
	}
	if _, ok := Lookup("fig5"); !ok {
		t.Fatal("Lookup(fig5) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
}

func TestFig2Shape(t *testing.T) {
	tables := Fig2(smoke)
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	senders, _ := tables[0].Column("cpu_pct")
	if len(senders) != 5 {
		t.Fatalf("sender rows = %d", len(senders))
	}
	// Calibration endpoints: ~6% at 16 senders, 68% at 256.
	if senders[0] < 2 || senders[0] > 10 {
		t.Errorf("16-sender CPU = %.2f%%, want ~4-6%%", senders[0])
	}
	if senders[len(senders)-1] < 60 || senders[len(senders)-1] > 75 {
		t.Errorf("256-sender CPU = %.2f%%, want ~68%%", senders[len(senders)-1])
	}
	values, _ := tables[1].Column("cpu_pct")
	if values[0] < 0.15 || values[0] > 0.25 {
		t.Errorf("1-value message = %.3f%%, want ~0.2%%", values[0])
	}
	last := values[len(values)-1]
	if last < 1.0 || last > 1.8 {
		t.Errorf("256-value message = %.3f%%, want ~1.4%%", last)
	}
	// The per-message series grows far faster than the per-value series.
	if senders[4]/senders[0] < 10 {
		t.Errorf("sender series not ~linear: %v", senders)
	}
	if last/values[0] > 10 {
		t.Errorf("value series too steep: %v", values)
	}
}

func TestFig5RemoDominates(t *testing.T) {
	for _, tbl := range Fig5(smoke) {
		remo := colMean(t, tbl, "REMO")
		sp := colMean(t, tbl, "SINGLETON-SET")
		op := colMean(t, tbl, "ONE-SET")
		if remo < sp || remo < op {
			t.Errorf("%s: REMO %.1f vs SP %.1f / OP %.1f", tbl.Title, remo, sp, op)
		}
		if remo > 100 || remo <= 0 {
			t.Errorf("%s: REMO out of range: %.1f", tbl.Title, remo)
		}
	}
}

func TestFig6RemoDominatesAndOverheadHurtsSP(t *testing.T) {
	tables := Fig6(smoke)
	for _, tbl := range tables {
		remo := colMean(t, tbl, "REMO")
		if remo < colMean(t, tbl, "SINGLETON-SET") || remo < colMean(t, tbl, "ONE-SET") {
			t.Errorf("%s: REMO not dominant", tbl.Title)
		}
	}
	// Fig 6c/d: rising C/a must hurt SINGLETON-SET more than ONE-SET.
	for _, tbl := range tables[2:] {
		sp, _ := tbl.Column("SINGLETON-SET")
		op, _ := tbl.Column("ONE-SET")
		spDrop := sp[0] - sp[len(sp)-1]
		opDrop := op[0] - op[len(op)-1]
		if spDrop < opDrop {
			t.Errorf("%s: SP drop %.1f < OP drop %.1f under rising C/a", tbl.Title, spDrop, opDrop)
		}
	}
}

func TestFig7AdaptiveDominates(t *testing.T) {
	// ADAPTIVE must clearly beat STAR and CHAIN. MAX_AVB is a strong
	// heuristic that ADAPTIVE should match: allow a small tolerance —
	// builder choice perturbs the partition search trajectory, which can
	// cost a point or two on individual panels.
	const tolerance = 2.5
	for _, tbl := range Fig7(smoke) {
		adaptive := colMean(t, tbl, "ADAPTIVE")
		for _, other := range []string{"STAR", "CHAIN", "MAX_AVB"} {
			if adaptive+tolerance < colMean(t, tbl, other) {
				t.Errorf("%s: ADAPTIVE %.1f < %s %.1f", tbl.Title, adaptive, other, colMean(t, tbl, other))
			}
		}
		if adaptive+tolerance < colMean(t, tbl, "STAR") || adaptive+tolerance < colMean(t, tbl, "CHAIN") {
			t.Errorf("%s: ADAPTIVE does not dominate the simple schemes", tbl.Title)
		}
	}
}

func TestFig8RemoLowersError(t *testing.T) {
	for _, tbl := range Fig8(smoke) {
		remo := colMean(t, tbl, "REMO")
		sp := colMean(t, tbl, "SINGLETON-SET")
		op := colMean(t, tbl, "ONE-SET")
		if remo > sp || remo > op {
			t.Errorf("%s: REMO error %.1f vs SP %.1f / OP %.1f", tbl.Title, remo, sp, op)
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	tables := Fig9(smoke)
	cpu := tables[0]
	// REBUILD must be the most expensive planner, D-A the cheapest.
	rebuild := colMean(t, cpu, "REBUILD")
	da := colMean(t, cpu, "D-A")
	adaptive := colMean(t, cpu, "ADAPTIVE")
	if rebuild < da {
		t.Errorf("REBUILD CPU %.2fms < D-A %.2fms", rebuild, da)
	}
	if rebuild < adaptive {
		t.Errorf("REBUILD CPU %.2fms < ADAPTIVE %.2fms", rebuild, adaptive)
	}
	// REBUILD generates the most adaptation traffic.
	share := tables[1]
	if colMean(t, share, "REBUILD") < colMean(t, share, "ADAPTIVE") {
		t.Error("REBUILD adaptation share below ADAPTIVE")
	}
	if colMean(t, share, "REBUILD") < colMean(t, share, "D-A") {
		t.Error("REBUILD adaptation share below D-A")
	}
	// Collected values: the searching schemes should at least match
	// D-A (100%).
	coll := tables[3]
	if colMean(t, coll, "ADAPTIVE") < 95 {
		t.Errorf("ADAPTIVE collected %.1f%% of D-A", colMean(t, coll, "ADAPTIVE"))
	}
}

func TestFig10OptimizationsFasterNotWorse(t *testing.T) {
	tables := Fig10(smoke)
	speed, quality := tables[0], tables[1]
	both, _ := speed.Column("BOTH")
	last := both[len(both)-1]
	if last < 1 {
		t.Errorf("BOTH speedup %.2fx < 1 at the largest size", last)
	}
	basic := colMean(t, quality, "BASIC")
	optimized := colMean(t, quality, "BOTH")
	if basic-optimized > 5 {
		t.Errorf("optimizations cost %.1f%% coverage (want <5%%)", basic-optimized)
	}
}

func TestFig11OrderedWins(t *testing.T) {
	for _, tbl := range Fig11(smoke) {
		ordered := colMean(t, tbl, "ORDERED")
		for _, other := range []string{"UNIFORM", "PROPORTIONAL"} {
			if ordered+1e-9 < colMean(t, tbl, other) {
				t.Errorf("%s: ORDERED %.1f < %s %.1f", tbl.Title, ordered, other, colMean(t, tbl, other))
			}
		}
	}
}

func TestAblationsRunAndRank(t *testing.T) {
	tables := Ablations(smoke)
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	// Larger budgets never evaluate fewer candidates.
	evals, _ := tables[0].Column("evaluations")
	for i := 1; i < len(evals)-1; i++ { // last row is exhaustive (-1)
		if evals[i] < evals[i-1]-1e-9 {
			t.Errorf("evaluations not monotone: %v", evals)
		}
	}
	// The full search is at least as good as the crippled variants on
	// average.
	full := colMean(t, tables[1], "FULL")
	for _, col := range []string{"NO-MULTISTART", "NO-SIDEWAYS", "NEITHER"} {
		if full+1e-9 < colMean(t, tables[1], col) {
			t.Errorf("FULL %.2f < %s %.2f", full, col, colMean(t, tables[1], col))
		}
	}
}

func TestFig12ExtensionsHelp(t *testing.T) {
	tables := Fig12(smoke)
	a, b := tables[0], tables[1]
	if colMean(t, a, "AGG-AWARE") < 100 {
		t.Errorf("AGG-AWARE %.1f%% below basic", colMean(t, a, "AGG-AWARE"))
	}
	if colMean(t, a, "BOTH") < colMean(t, a, "BASIC") {
		t.Errorf("BOTH %.1f%% below basic", colMean(t, a, "BOTH"))
	}
	remo2 := colMean(t, b, "REMO-2")
	for _, other := range []string{"SINGLETON-SET-2", "ONE-SET-2"} {
		if remo2+1e-9 < colMean(t, b, other) {
			t.Errorf("REMO-2 %.1f < %s %.1f", remo2, other, colMean(t, b, other))
		}
	}
}

func TestPlannerPerfShape(t *testing.T) {
	tables := PlannerPerf(smoke)
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tbl := range tables {
		seq, _ := tbl.Column("SEQ_MS")
		par, _ := tbl.Column("PAR_MS")
		if len(seq) == 0 || len(par) == 0 {
			t.Fatalf("%s: empty series", tbl.Title)
		}
		for i := range seq {
			if seq[i] <= 0 || par[i] <= 0 {
				t.Errorf("%s: non-positive wall-clock at row %d", tbl.Title, i)
			}
		}
		// plannerPoint panics if the two planners ever return different
		// scores, so reaching here also proves determinism on the sweep.
		reuse, _ := tbl.Column("TREE_REUSE_PCT")
		if metrics.Mean(reuse) <= 0 {
			t.Errorf("%s: tree memo never hit", tbl.Title)
		}
	}
}

func TestShardShape(t *testing.T) {
	tables := Shard(Options{Scale: 0.2, Seed: 5, Rounds: 18})
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	overhead, crash := tables[0], tables[1]
	for _, c := range shardColumns {
		if _, ok := overhead.Column(c); !ok {
			t.Fatalf("overhead table lacks column %q", c)
		}
	}
	single, _ := overhead.Column("SINGLE_MS")
	sharded, _ := overhead.Column("SHARD_MS")
	if len(single) != 3 {
		t.Fatalf("rows = %d, want shards=2,4,8", len(single))
	}
	for i := range single {
		if single[i] <= 0 || sharded[i] <= 0 {
			t.Fatalf("row %d: non-positive wall-clock single=%v sharded=%v", i, single[i], sharded[i])
		}
	}
	// Coverage parity is asserted inside shardOverheadPoint (it panics on
	// divergence); here just pin the recorded columns to each other.
	covS, _ := overhead.Column("COV_SINGLE")
	covH, _ := overhead.Column("COV_SHARD")
	for i := range covS {
		if covS[i] != covH[i] {
			t.Errorf("row %d: coverage drifted, single %.3f vs sharded %.3f", i, covS[i], covH[i])
		}
	}

	orphaned, _ := crash.Column("ORPHANED")
	redispatched, _ := crash.Column("REDISPATCHED")
	latency, _ := crash.Column("LATENCY_ROUNDS")
	for i := range orphaned {
		if orphaned[i] <= 0 {
			t.Errorf("row %d: crash orphaned no trees", i)
		}
		if redispatched[i] != orphaned[i] {
			t.Errorf("row %d: %v orphaned but %v re-dispatched", i, orphaned[i], redispatched[i])
		}
		if latency[i] <= 0 || latency[i] > 10 {
			t.Errorf("row %d: re-dispatch latency %v rounds out of (0, 10]", i, latency[i])
		}
	}
}

func TestChurnShape(t *testing.T) {
	// Churn's own smoke scale (0.12, seed 3) matches BenchmarkPlannerChurn;
	// 0.15 would roughly double the runtime for no extra coverage.
	tables := Churn(Options{Scale: 0.12, Seed: 3})
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	tbl := tables[0]
	for _, c := range churnColumns {
		if _, ok := tbl.Column(c); !ok {
			t.Fatalf("churn table lacks column %q", c)
		}
	}
	full, _ := tbl.Column("FULL_MS_MED")
	inc, _ := tbl.Column("INC_MS_MED")
	if len(full) != 3 {
		t.Fatalf("rows = %d, want k=1,2,4", len(full))
	}
	for i := range full {
		if full[i] <= 0 || inc[i] <= 0 {
			t.Fatalf("row %d: non-positive medians full=%v inc=%v", i, full[i], inc[i])
		}
	}
	// Single-task churn is the headline: observed ≥5x at this scale; 1.5
	// tolerates a contended CI box without letting a real regression by.
	speedup, _ := tbl.Column("SPEEDUP")
	if speedup[0] < 1.5 {
		t.Errorf("k=1 speedup = %.2fx, want > 1.5x", speedup[0])
	}
	for _, col := range []string{"REUSE_PCT", "FALLBACK_PCT", "PARITY_PCT"} {
		vals, _ := tbl.Column(col)
		for i, v := range vals {
			if v < 0 || v > 100 {
				t.Fatalf("%s row %d = %v out of [0,100]", col, i, v)
			}
		}
	}
}

func TestSuppressShape(t *testing.T) {
	tables := Suppress(Options{Scale: 0.15, Seed: 4, Rounds: 60})
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	sweep, robust := tables[0], tables[1]
	for _, c := range suppressColumns {
		if _, ok := sweep.Column(c); !ok {
			t.Fatalf("sweep table lacks column %q", c)
		}
	}
	reduction, _ := sweep.Column("REDUCTION_X")
	if len(reduction) != 5 {
		t.Fatalf("sweep rows = %d, want 5 bounds", len(reduction))
	}
	for i, r := range reduction {
		if r <= 1 {
			t.Errorf("row %d: suppression inflated traffic (%.2fx)", i, r)
		}
	}
	// Looser bounds buy more reduction: the series must be non-decreasing
	// (ties allowed — adjacent bounds can saturate the same plateaus).
	for i := 1; i < len(reduction); i++ {
		if reduction[i] < reduction[i-1]-0.05 {
			t.Errorf("reduction not monotone in eps: %v", reduction)
		}
	}
	band, _ := sweep.Column("BAND_MAX")
	errPct, _ := sweep.Column("ERR_PCT")
	for i := range band {
		if band[i] > 1+1e-6 {
			t.Errorf("row %d: BAND_MAX %.6f breaks the dead band", i, band[i])
		}
		if errPct[i] > 10 {
			t.Errorf("row %d: avg error %.2f%% too high under suppression", i, errPct[i])
		}
	}

	for _, c := range suppressChaosColumns {
		if _, ok := robust.Column(c); !ok {
			t.Fatalf("robustness table lacks column %q", c)
		}
	}
	rBand, _ := robust.Column("BAND_MAX")
	rRed, _ := robust.Column("REDUCTION_X")
	imputed, _ := robust.Column("IMPUTED")
	if len(rBand) != 3 {
		t.Fatalf("robustness rows = %d, want drop/crash/shard", len(rBand))
	}
	for i := range rBand {
		if rBand[i] > 1+1e-6 {
			t.Errorf("scenario %d: BAND_MAX %.6f breaks the dead band", i+1, rBand[i])
		}
		if rRed[i] <= 1 {
			t.Errorf("scenario %d: no byte reduction (%.2fx)", i+1, rRed[i])
		}
		if imputed[i] <= 0 {
			t.Errorf("scenario %d: nothing imputed", i+1)
		}
	}
	// The lossy scenario must actually lose markers — that is the
	// refuse-don't-guess path under test.
	lost, _ := robust.Column("MARKERS_LOST")
	if lost[0] <= 0 {
		t.Error("drop scenario lost no markers; chaos not exercised")
	}
}

func TestServiceShape(t *testing.T) {
	// A small sweep: the shape assertions are on the ledgers (zero
	// errors, zero verification failures) and on sane latency ordering,
	// not on absolute throughput.
	tables := Service(Options{Scale: 0.02, Seed: 6})
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	tbl := tables[0]
	for _, c := range serviceColumns {
		if _, ok := tbl.Column(c); !ok {
			t.Fatalf("service table lacks column %q", c)
		}
	}
	reqs, _ := tbl.Column("REQS")
	if len(reqs) != 3 {
		t.Fatalf("sweep rows = %d, want 3 client counts", len(reqs))
	}
	p50, _ := tbl.Column("ADMIT_P50_MS")
	p99, _ := tbl.Column("ADMIT_P99_MS")
	rounds, _ := tbl.Column("ROUNDS_PER_S")
	opsOK, _ := tbl.Column("OPS_OK")
	errs, _ := tbl.Column("ERRORS")
	vfails, _ := tbl.Column("VERIFY_FAILS")
	for i := range reqs {
		if reqs[i] <= 0 {
			t.Errorf("row %d: no traffic", i)
		}
		if opsOK[i] <= 0 {
			t.Errorf("row %d: no operations applied", i)
		}
		if p99[i] < p50[i] {
			t.Errorf("row %d: p99 %.3fms below p50 %.3fms", i, p99[i], p50[i])
		}
		if rounds[i] <= 0 {
			t.Errorf("row %d: backend rounds stalled", i)
		}
		if errs[i] != 0 {
			t.Errorf("row %d: %v request errors", i, errs[i])
		}
		if vfails[i] != 0 {
			t.Errorf("row %d: %v verification failures", i, vfails[i])
		}
	}
}

func TestRegionShape(t *testing.T) {
	// Qualitative shape only: at smoke scale the trees are too small for
	// the headline 2x reduction (irreducible cross-region payload
	// dominates), so assert awareness never loses — fewer or equal
	// cross-region bytes at coverage parity — and that the loss timeline
	// ends above the floor with at least one automatic repair.
	tables := Region(Options{Scale: 0.2, Seed: 5, Rounds: 24})
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	bytesTbl, lossTbl := tables[0], tables[1]
	for _, c := range regionBytesColumns {
		if _, ok := bytesTbl.Column(c); !ok {
			t.Fatalf("bytes table lacks column %q", c)
		}
	}
	reduction, _ := bytesTbl.Column("REDUCTION_X")
	if len(reduction) != 3 {
		t.Fatalf("rows = %d, want regions=2,3,6", len(reduction))
	}
	for i, r := range reduction {
		if r < 1 {
			t.Errorf("row %d: topology awareness increased cross-region bytes (%.3fx)", i, r)
		}
	}
	covB, _ := bytesTbl.Column("COV_BLIND_PCT")
	covA, _ := bytesTbl.Column("COV_AWARE_PCT")
	for i := range covB {
		if covA[i] < covB[i]-0.5 {
			t.Errorf("row %d: awareness shed coverage, blind %.2f vs aware %.2f", i, covB[i], covA[i])
		}
	}

	surv, _ := lossTbl.Column("MIN_SURV_COV_PCT")
	lostCov, _ := lossTbl.Column("LOST_COV_PCT")
	repairs, _ := lossTbl.Column("REPAIRS")
	if len(surv) != 3 {
		t.Fatalf("timeline rows = %d, want 3 phase samples", len(surv))
	}
	last := len(surv) - 1
	if surv[last] < regionFloorPct {
		t.Errorf("final surviving coverage %.1f%% below the %d%% floor", surv[last], regionFloorPct)
	}
	if lostCov[last] >= surv[last] {
		t.Errorf("lost region coverage %.1f%% not written off below survivors %.1f%%", lostCov[last], surv[last])
	}
	if repairs[last] < 1 {
		t.Errorf("no automatic repairs recorded by the end of the timeline")
	}
}
