package bench

import (
	"remo/internal/adapt"
	"remo/internal/core"
	"remo/internal/metrics"
	"remo/internal/model"
	"remo/internal/workload"
)

// adaptColumns are the adaptation schemes of Fig. 9.
var adaptColumns = []string{"D-A", "REBUILD", "NO-THROTTLE", "ADAPTIVE"}

// windowRounds is the measurement window: 10 value-update rounds, as in
// the paper ("task update batches within a time window of 10 value
// updates").
const windowRounds = 10

// fig9Run is what one adaptation scheme produced over a churn window.
type fig9Run struct {
	cpuMillis float64
	adaptMsgs float64
	monMsgs   float64
	collected float64
}

// Fig9 reproduces the adaptation comparison: monitoring tasks are
// mutated in batches of increasing frequency, and the four schemes are
// measured on (a) planning CPU time, (b) the share of adaptation
// messages in total traffic, (c) total message cost relative to
// DIRECT-APPLY, and (d) collected values relative to DIRECT-APPLY.
func Fig9(o Options) []*metrics.Table {
	freqs := []int{1, 2, 4, 8, 16, 32}

	a := metrics.NewTable("Fig 9a — planning CPU time (ms) vs task updates per window", "updates", adaptColumns...)
	b := metrics.NewTable("Fig 9b — adaptation share of total messages (%)", "updates", adaptColumns...)
	c := metrics.NewTable("Fig 9c — total cost relative to D-A (%)", "updates", adaptColumns...)
	d := metrics.NewTable("Fig 9d — collected values relative to D-A (%)", "updates", adaptColumns...)

	for _, f := range freqs {
		runs := make([]fig9Run, len(adaptColumns))
		for i, scheme := range adapt.Schemes() {
			runs[i] = fig9Point(o, scheme, f)
		}
		base := runs[0] // D-A

		cpu := make([]float64, len(runs))
		share := make([]float64, len(runs))
		total := make([]float64, len(runs))
		coll := make([]float64, len(runs))
		for i, r := range runs {
			cpu[i] = r.cpuMillis
			if r.adaptMsgs+r.monMsgs > 0 {
				share[i] = 100 * r.adaptMsgs / (r.adaptMsgs + r.monMsgs)
			}
			if bt := base.adaptMsgs + base.monMsgs; bt > 0 {
				total[i] = 100 * (r.adaptMsgs + r.monMsgs) / bt
			}
			if base.collected > 0 {
				coll[i] = 100 * r.collected / base.collected
			}
		}
		mustAdd(a, float64(f), cpu...)
		mustAdd(b, float64(f), share...)
		mustAdd(c, float64(f), total...)
		mustAdd(d, float64(f), coll...)
	}
	return []*metrics.Table{a, b, c, d}
}

// fig9Point runs one scheme through f churn batches in a 10-round
// window.
func fig9Point(o Options, scheme adapt.Scheme, f int) fig9Run {
	sys, tasks := fig9Env(o)
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		panic(err)
	}
	ad := adapt.New(scheme, core.NewPlanner(), sys)
	ad.Init(d)

	var run fig9Run
	roundsPerBatch := float64(windowRounds) / float64(f)
	cur := tasks
	for batch := 0; batch < f; batch++ {
		// The paper's churn: ~5% of tasks replace half their attributes.
		cur = workload.Churn(sys, cur, workload.ChurnConfig{
			TaskFraction: 0.05,
			AttrFraction: 0.5,
			Seed:         o.Seed + int64(batch)*101 + 13,
		})
		nd, err := workload.Demand(sys, cur)
		if err != nil {
			panic(err)
		}
		rep := ad.Apply(nd)
		run.cpuMillis += float64(rep.PlanTime.Microseconds()) / 1000
		run.adaptMsgs += float64(rep.AdaptMessages)
		// Monitoring traffic until the next batch: one message per tree
		// member per round.
		var members int
		for _, t := range ad.Forest().Trees {
			members += t.Size()
		}
		run.monMsgs += roundsPerBatch * float64(members)
		run.collected = float64(rep.Stats.Collected)
	}
	return run
}

// fig9Env builds the churn experiment environment once per point so all
// schemes see identical inputs.
func fig9Env(o Options) (*model.System, []model.Task) {
	sys, err := workload.System(workload.SystemConfig{
		Nodes:      o.scaleInt(120, 15),
		Attrs:      o.scaleInt(60, 8),
		CapacityLo: 150,
		CapacityHi: 400,
		Seed:       o.Seed + 90,
	})
	if err != nil {
		panic(err)
	}
	tasks := workload.Tasks(sys, workload.TaskConfig{
		Count:        o.scaleInt(80, 8),
		AttrsPerTask: 8,
		NodesPerTask: maxInt(4, len(sys.Nodes)/6),
		Seed:         o.Seed + 91,
	})
	return sys, tasks
}
