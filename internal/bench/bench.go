// Package bench is the experiment harness: it regenerates every figure
// of the paper's evaluation (§7) as a result table. Each FigN function
// runs the corresponding sweep and returns one table per panel;
// cmd/remo-bench prints them, and bench_test.go wraps them in testing.B
// benchmarks.
//
// Absolute numbers differ from the paper (the substrate is an emulation,
// not a BlueGene/P rack); the tables are meant to reproduce the figures'
// shape: which scheme wins, by roughly what factor, and where curves
// cross. EXPERIMENTS.md records the shape comparison.
package bench

import (
	"fmt"
	"sort"

	"remo/internal/alloc"
	"remo/internal/core"
	"remo/internal/cost"
	"remo/internal/metrics"
	"remo/internal/model"
	"remo/internal/task"
	"remo/internal/tree"
	"remo/internal/workload"
)

// Options tunes experiment scale.
type Options struct {
	// Scale shrinks sweeps for quick runs: 1.0 is paper scale (200
	// nodes, ~200 tasks), 0.2 a smoke test. Values <= 0 default to 1.
	Scale float64
	// Seed decorrelates repeated runs.
	Seed int64
	// Rounds overrides the emulation length for deployment experiments
	// (0 = default 30).
	Rounds int
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

// scaleInt scales n, keeping a floor of lo.
func (o Options) scaleInt(n, lo int) int {
	v := int(float64(n)*o.scale() + 0.5)
	if v < lo {
		v = lo
	}
	return v
}

func (o Options) rounds() int {
	if o.Rounds > 0 {
		return o.Rounds
	}
	return 30
}

// Experiment is a runnable figure reproduction.
type Experiment struct {
	// Name is the figure id, e.g. "fig5".
	Name string
	// Description summarizes what the figure shows.
	Description string
	// Run executes the sweep.
	Run func(Options) []*metrics.Table
}

// Registry lists all experiments in figure order.
func Registry() []Experiment {
	return []Experiment{
		{Name: "fig2", Description: "per-message overhead vs payload cost (cost-model calibration)", Run: Fig2},
		{Name: "fig5", Description: "partition schemes vs workload characteristics (% collected)", Run: Fig5},
		{Name: "fig6", Description: "partition schemes vs system characteristics (% collected)", Run: Fig6},
		{Name: "fig7", Description: "tree construction schemes (% collected)", Run: Fig7},
		{Name: "fig8", Description: "average percentage error on the emulated stream system", Run: Fig8},
		{Name: "fig9", Description: "adaptation schemes under task churn (CPU time, costs, coverage)", Run: Fig9},
		{Name: "fig10", Description: "tree-adjustment optimization speedup", Run: Fig10},
		{Name: "fig11", Description: "tree-wise capacity allocation schemes (% collected)", Run: Fig11},
		{Name: "fig12", Description: "extensions: aggregation/frequency awareness and replication", Run: Fig12},
		{Name: "ablations", Description: "ablations of the planner's search design choices", Run: Ablations},
		{Name: "planner", Description: "planner wall-clock: sequential vs parallel search (Fig 5a/6a sweeps)", Run: PlannerPerf},
		{Name: "churn", Description: "plan-update latency under task churn: incremental vs full replan", Run: Churn},
		{Name: "runtime", Description: "emulation runtime data path: worker-pool engine and batched TCP writes vs legacy", Run: RuntimePerf},
		{Name: "shard", Description: "sharded collector tier: dispatcher overhead vs single collector, orphan re-dispatch latency", Run: Shard},
		{Name: "suppress", Description: "forecast-driven traffic suppression: wire bytes vs accuracy, robustness under faults", Run: Suppress},
		{Name: "service", Description: "service front door: admission latency percentiles and rounds/s under simulated-client churn", Run: Service},
		{Name: "region", Description: "WAN topology: cross-region bytes blind vs aware, coverage floor through a region loss", Run: Region},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// env is a generated system plus workload.
type env struct {
	sys *model.System
	d   *task.Demand
}

// envConfig parameterizes experiment environments; the zero value is
// completed by defaults matching the paper's synthetic setup.
type envConfig struct {
	nodes    int
	attrPool int
	// capLo/capHi bound node capacities; chosen so monitoring load keeps
	// every scheme below 100% collection (as the paper does).
	capLo, capHi float64
	central      float64
	ratio        float64 // C/a
	tasks        int
	attrsPerTask int
	nodesPerTask int
	// regions > 1 cuts the nodes into contiguous WAN regions (collector
	// in r0) and labels them; interCost prices inter-region edges.
	regions   int
	interCost float64
	seed      int64
}

func (c envConfig) withDefaults(o Options) envConfig {
	if c.nodes == 0 {
		c.nodes = o.scaleInt(200, 20)
	}
	if c.attrPool == 0 {
		c.attrPool = o.scaleInt(100, 10)
	}
	if c.capLo == 0 {
		c.capLo = 150
	}
	if c.capHi == 0 {
		c.capHi = 400
	}
	if c.ratio == 0 {
		c.ratio = 10
	}
	if c.central == 0 {
		// The collector is provisioned for roughly one two-value root
		// message per node — far below star collection needs, and scaled
		// with the cost model so C/a sweeps stress the nodes rather than
		// the collector.
		c.central = float64(c.nodes) * (c.ratio + 2)
	}
	if c.tasks == 0 {
		c.tasks = o.scaleInt(100, 10)
	}
	if c.attrsPerTask == 0 {
		c.attrsPerTask = 20
	}
	if c.nodesPerTask == 0 {
		c.nodesPerTask = maxInt(4, c.nodes/5)
	}
	if c.seed == 0 {
		c.seed = o.Seed + 1
	}
	return c
}

// buildEnv generates the system and deduplicated demand for a config.
func buildEnv(o Options, c envConfig) (env, error) {
	c = c.withDefaults(o)
	costModel := cost.Model{PerMessage: c.ratio, PerValue: 1}
	sys, err := workload.System(workload.SystemConfig{
		Nodes:           c.nodes,
		Attrs:           c.attrPool,
		CapacityLo:      c.capLo,
		CapacityHi:      c.capHi,
		CentralCapacity: c.central,
		Cost:            costModel,
		Regions:         c.regions,
		InterRegionCost: c.interCost,
		Seed:            c.seed,
	})
	if err != nil {
		return env{}, err
	}
	tasks := workload.Tasks(sys, workload.TaskConfig{
		Count:        c.tasks,
		AttrsPerTask: minInt(c.attrsPerTask, c.attrPool),
		NodesPerTask: minInt(c.nodesPerTask, c.nodes),
		Seed:         c.seed + 7,
	})
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		return env{}, err
	}
	return env{sys: sys, d: d}, nil
}

// pctCollected evaluates a fixed-partition plan and returns the percent
// of demanded node-attribute pairs it collects.
func pctCollected(p *core.Planner, e env, sets []model.AttrSet) float64 {
	res := p.PlanPartition(e.sys, e.d, sets)
	return pct(res.Stats.Collected, e.d.PairCount())
}

// pctPlanned runs the full REMO planner and returns its percent
// collected.
func pctPlanned(p *core.Planner, e env) float64 {
	res := p.Plan(e.sys, e.d)
	return pct(res.Stats.Collected, e.d.PairCount())
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// defaultPlanner is REMO's standard configuration.
func defaultPlanner() *core.Planner {
	return core.NewPlanner()
}

// plannerWith returns a planner using the given tree scheme and
// allocation policy.
func plannerWith(ts tree.Scheme, as alloc.Scheme) *core.Planner {
	return core.NewPlanner(
		core.WithBuilder(tree.New(ts)),
		core.WithAlloc(alloc.New(as)),
	)
}

// sweepInts builds a scaled integer sweep.
func sweepInts(o Options, base []int, lo int) []int {
	out := make([]int, 0, len(base))
	seen := make(map[int]struct{})
	for _, b := range base {
		v := o.scaleInt(b, lo)
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mustAdd appends a row, panicking on programmer error (mismatched
// columns cannot happen at runtime with correct experiment code).
func mustAdd(t *metrics.Table, x float64, cells ...float64) {
	if err := t.Add(x, cells...); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
}
