package bench

import (
	"remo/internal/metrics"
	"remo/internal/partition"
)

// partitionColumns are the attribute-set partition schemes compared in
// Figs. 5 and 6.
var partitionColumns = []string{"REMO", "SINGLETON-SET", "ONE-SET"}

// partitionPoint evaluates the three partition schemes on one
// environment and returns their percent-collected values.
func partitionPoint(e env) []float64 {
	p := defaultPlanner()
	universe := e.d.Universe()
	return []float64{
		pctPlanned(p, e),
		pctCollected(p, e, partition.Singleton(universe)),
		pctCollected(p, e, partition.OneSet(universe)),
	}
}

// Fig5 compares partition schemes under varying workload
// characteristics: (a) attributes per task, (b) nodes per task under a
// heavy 100-attribute workload, (c) number of small-scale tasks, and
// (d) number of large-scale tasks. REMO should dominate everywhere;
// ONE-SET is competitive for small attribute sets, SINGLETON-SET under
// extreme per-task load.
func Fig5(o Options) []*metrics.Table {
	a := metrics.NewTable("Fig 5a — % collected vs attributes per task", "attrs_per_task", partitionColumns...)
	for _, at := range sweepInts(o, []int{10, 20, 40, 70, 100}, 2) {
		e, err := buildEnv(o, envConfig{attrsPerTask: at, seed: o.Seed + 50})
		if err != nil {
			panic(err)
		}
		mustAdd(a, float64(at), partitionPoint(e)...)
	}

	b := metrics.NewTable("Fig 5b — % collected vs nodes per task (attrs/task = 100)", "nodes_per_task", partitionColumns...)
	for _, nt := range sweepInts(o, []int{20, 40, 80, 120, 160, 200}, 2) {
		e, err := buildEnv(o, envConfig{
			attrsPerTask: 100,
			nodesPerTask: nt,
			seed:         o.Seed + 51,
		})
		if err != nil {
			panic(err)
		}
		mustAdd(b, float64(nt), partitionPoint(e)...)
	}

	c := metrics.NewTable("Fig 5c — % collected vs number of small-scale tasks", "tasks", partitionColumns...)
	for _, n := range sweepInts(o, []int{50, 100, 200, 350, 500}, 5) {
		e, err := buildEnv(o, envConfig{
			tasks:        n,
			attrsPerTask: 3,
			nodesPerTask: maxInt(2, o.scaleInt(200, 20)/10),
			seed:         o.Seed + 52,
		})
		if err != nil {
			panic(err)
		}
		mustAdd(c, float64(n), partitionPoint(e)...)
	}

	d := metrics.NewTable("Fig 5d — % collected vs number of large-scale tasks", "tasks", partitionColumns...)
	for _, n := range sweepInts(o, []int{10, 20, 40, 70, 100}, 2) {
		e, err := buildEnv(o, envConfig{
			tasks:        n,
			attrsPerTask: 25,
			nodesPerTask: maxInt(4, o.scaleInt(200, 20)/2),
			seed:         o.Seed + 53,
		})
		if err != nil {
			panic(err)
		}
		mustAdd(d, float64(n), partitionPoint(e)...)
	}
	return []*metrics.Table{a, b, c, d}
}

// Fig6 compares partition schemes under varying system characteristics:
// (a) number of nodes with small tasks, (b) with large tasks, and (c,d)
// the per-message overhead ratio C/a under small and large tasks.
// Rising C/a hits SINGLETON-SET hardest (one tree, and hence one
// message, per attribute) while ONE-SET degrades gracefully.
func Fig6(o Options) []*metrics.Table {
	nodeSweep := sweepInts(o, []int{50, 100, 200, 300, 400}, 10)

	a := metrics.NewTable("Fig 6a — % collected vs nodes (small tasks)", "nodes", partitionColumns...)
	for _, n := range nodeSweep {
		e, err := buildEnv(o, envConfig{
			nodes:        n,
			tasks:        o.scaleInt(150, 10),
			attrsPerTask: 3,
			nodesPerTask: maxInt(2, n/10),
			seed:         o.Seed + 60,
		})
		if err != nil {
			panic(err)
		}
		mustAdd(a, float64(n), partitionPoint(e)...)
	}

	b := metrics.NewTable("Fig 6b — % collected vs nodes (large tasks)", "nodes", partitionColumns...)
	for _, n := range nodeSweep {
		e, err := buildEnv(o, envConfig{
			nodes:        n,
			tasks:        o.scaleInt(40, 4),
			attrsPerTask: 25,
			nodesPerTask: maxInt(4, n/2),
			seed:         o.Seed + 61,
		})
		if err != nil {
			panic(err)
		}
		mustAdd(b, float64(n), partitionPoint(e)...)
	}

	ratios := []float64{1, 2, 5, 10, 20, 50}
	c := metrics.NewTable("Fig 6c — % collected vs C/a ratio (small tasks)", "C_over_a", partitionColumns...)
	for _, r := range ratios {
		e, err := buildEnv(o, envConfig{
			ratio:        r,
			tasks:        o.scaleInt(150, 10),
			attrsPerTask: 3,
			nodesPerTask: maxInt(2, o.scaleInt(200, 20)/10),
			seed:         o.Seed + 62,
		})
		if err != nil {
			panic(err)
		}
		mustAdd(c, r, partitionPoint(e)...)
	}

	d := metrics.NewTable("Fig 6d — % collected vs C/a ratio (large tasks)", "C_over_a", partitionColumns...)
	for _, r := range ratios {
		e, err := buildEnv(o, envConfig{
			ratio:        r,
			tasks:        o.scaleInt(40, 4),
			attrsPerTask: 25,
			nodesPerTask: maxInt(4, o.scaleInt(200, 20)/2),
			seed:         o.Seed + 63,
		})
		if err != nil {
			panic(err)
		}
		mustAdd(d, r, partitionPoint(e)...)
	}
	return []*metrics.Table{a, b, c, d}
}
