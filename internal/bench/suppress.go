package bench

import (
	"fmt"
	"sync/atomic"

	"remo/internal/chaos"
	"remo/internal/cluster"
	"remo/internal/core"
	"remo/internal/metrics"
	"remo/internal/predict"
	"remo/internal/transport"
)

// suppressColumns are the series of the bytes-at-accuracy sweep: wire
// bytes for the baseline (suppression off) and suppressing runs of the
// identical plan, the resulting byte reduction factor, the share of
// eligible observations elided, the collector's average percentage
// error against ground truth, and the worst imputation error as a
// fraction of the dead band (must stay <= 1: imputes come from
// bit-identical replicas).
var suppressColumns = []string{
	"BASE_KB", "SUPP_KB", "REDUCTION_X", "SUPP_PCT", "ERR_PCT", "BAND_MAX",
}

// suppressChaosColumns are the series of the robustness table: each row
// reruns the ε=1% point under one fault schedule and reports the same
// reduction plus the marker-loss ledger. BAND_MAX must hold on every
// row — lost markers make the collector refuse imputation, never guess.
var suppressChaosColumns = []string{
	"REDUCTION_X", "SUPP_PCT", "IMPUTED", "MARKERS_LOST", "BAND_MAX",
}

// suppressEps is the headline error bound: the ε=1% row's REDUCTION_X
// gates in scripts/check.sh via benchguard -suppress.
const suppressEps = 0.01

// countingTransport wraps a transport and sums the encoded frame size
// of every accepted Send — the wire-byte meter for the sweep. Sends
// arrive concurrently from the round engine's worker pool.
type countingTransport struct {
	transport.Transport
	bytes atomic.Int64
}

func (c *countingTransport) Send(msg transport.Message) error {
	c.bytes.Add(int64(transport.FrameSize(msg)))
	return c.Transport.Send(msg)
}

// suppressEnv prepares the Fig. 6a-shaped deployment (200 nodes, 150
// tasks at scale 1) over the plateau-utilization source — the workload
// class dead-band suppression targets. Two deviations from the
// partition experiments' env: tasks are dense (20 attrs each) so frames
// carry real payloads rather than being header-dominated, and
// capacities are generous so every demanded pair is collected — this
// experiment meters bytes and accuracy, not admission. Suppression
// needs a few sync cycles to pay off, so the emulation runs at least
// 120 rounds.
func suppressEnv(o Options, seed int64) (cluster.Config, error) {
	nodes := o.scaleInt(200, 20)
	e, err := buildEnv(o, envConfig{
		nodes:        nodes,
		attrPool:     o.scaleInt(50, 10),
		tasks:        o.scaleInt(150, 10),
		attrsPerTask: 20,
		nodesPerTask: maxInt(2, nodes/10),
		capLo:        2e4,
		capHi:        4e4,
		central:      1e8,
		seed:         seed,
	})
	if err != nil {
		return cluster.Config{}, err
	}
	res := core.NewPlanner().Plan(e.sys, e.d)
	return cluster.Config{
		Sys:             e.sys,
		Forest:          res.Forest,
		Demand:          e.d,
		Rounds:          maxInt(o.rounds(), 120),
		EnforceCapacity: true,
		Source:          cluster.UtilWalk{Seed: uint64(seed)},
	}, nil
}

// mustSpec builds a suppression spec with the given default bound.
func mustSpec(eps float64) *predict.Spec {
	s, err := predict.NewSpec(eps)
	if err != nil {
		panic(fmt.Sprintf("bench: suppress spec: %v", err))
	}
	// Deviation-triggered re-syncs re-lock the replicas on every plateau
	// shift, so the periodic cadence is only the lost-marker staleness
	// backstop; doubling the library default halves its byte overhead.
	s.SyncEvery = 2 * predict.DefaultSyncEvery
	return s
}

// countedRun executes one emulation over a byte-counting memory
// transport and enforces the suppression invariants on the result.
func countedRun(cfg cluster.Config) (bytes float64, res cluster.Result) {
	ct := &countingTransport{Transport: transport.NewMemory(cfg.Sys.NodeIDs())}
	defer func() { _ = ct.Close() }()
	cfg.Transport = ct
	res, err := cluster.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: suppress run: %v", err))
	}
	checkSuppressInvariants(res)
	return float64(ct.bytes.Load()), res
}

// checkSuppressInvariants panics on any violation of the suppression
// ledger's conservation laws or the dead-band guarantee — the safety
// half of what this experiment measures.
func checkSuppressInvariants(res cluster.Result) {
	if res.ValuesSuppressed > res.ValuesObserved {
		panic(fmt.Sprintf("bench: suppressed %d > observed %d",
			res.ValuesSuppressed, res.ValuesObserved))
	}
	if res.ValuesImputed+res.MarkersLost > res.ValuesSuppressed {
		panic(fmt.Sprintf("bench: imputed %d + lost %d > suppressed %d",
			res.ValuesImputed, res.MarkersLost, res.ValuesSuppressed))
	}
	if res.ImputeBandMax > 1+1e-6 {
		panic(fmt.Sprintf("bench: imputation broke the dead band: ratio %.6f > 1",
			res.ImputeBandMax))
	}
}

// suppCells derives the shared reduction/ratio cells from a baseline
// byte count and a suppressing run.
func suppCells(baseBytes, suppBytes float64, res cluster.Result) (reduction, suppPct float64) {
	if suppBytes > 0 {
		reduction = baseBytes / suppBytes
	}
	if res.ValuesObserved > 0 {
		suppPct = 100 * float64(res.ValuesSuppressed) / float64(res.ValuesObserved)
	}
	return reduction, suppPct
}

// Suppress measures forecast-driven traffic suppression on the Fig. 6a
// deployment: the ε sweep reruns the identical plan with suppression
// off and on, metering wire bytes through the transport, and the
// robustness table re-measures the ε=1% point under message loss, a
// collector crash/resume, and a 4-shard collection tier. The headline
// REDUCTION_X at ε=1% gates in scripts/check.sh via benchguard
// -suppress, which also requires BAND_MAX <= 1 on every recorded row
// (BENCH_suppress.json records a run).
func Suppress(o Options) []*metrics.Table {
	cfg, err := suppressEnv(o, o.Seed+130)
	if err != nil {
		panic(err)
	}
	baseBytes, baseRes := countedRun(cfg)

	a := metrics.NewTable(
		"Suppression — wire bytes at accuracy, ε sweep (Fig 6a shape, plateau source)",
		"eps", suppressColumns...)
	for _, eps := range []float64{0.002, 0.005, 0.01, 0.02, 0.05} {
		supp := cfg
		supp.Predict = mustSpec(eps)
		suppBytes, res := countedRun(supp)
		if res.CoveredPairs != baseRes.CoveredPairs {
			panic(fmt.Sprintf("bench: suppression changed coverage at eps=%g: %d vs %d pairs",
				eps, res.CoveredPairs, baseRes.CoveredPairs))
		}
		reduction, suppPct := suppCells(baseBytes, suppBytes, res)
		mustAdd(a, eps, baseBytes/1024, suppBytes/1024, reduction, suppPct,
			res.AvgPercentError, res.ImputeBandMax)
	}

	b := metrics.NewTable(
		"Suppression — robustness at ε=1%: (1) 5% drop + delay, (2) collector crash/resume, (3) 4-shard tier",
		"scenario", suppressChaosColumns...)
	mustAdd(b, 1, suppressChaosPoint(o)...)
	mustAdd(b, 2, suppressCrashPoint(o)...)
	mustAdd(b, 3, suppressShardPoint(o)...)
	return []*metrics.Table{a, b}
}

// suppressChaosPoint re-measures the ε=1% point under probabilistic
// message loss and delay: dropped frames kill their markers, so this
// row exercises the refuse-don't-guess path (MarkersLost > 0) while the
// band invariant must keep holding.
func suppressChaosPoint(o Options) []float64 {
	cfg, err := suppressEnv(o, o.Seed+140)
	if err != nil {
		panic(err)
	}
	cfg.Chaos = &chaos.Config{DropProb: 0.05, DelayProb: 0.05, MaxDelayRounds: 2, Seed: 21}

	baseBytes, _ := countedRun(cfg)
	supp := cfg
	supp.Predict = mustSpec(suppressEps)
	suppBytes, res := countedRun(supp)
	reduction, suppPct := suppCells(baseBytes, suppBytes, res)
	return []float64{reduction, suppPct,
		float64(res.ValuesImputed), float64(res.MarkersLost), res.ImputeBandMax}
}

// suppressCrashRun executes the crash/resume schedule once: the
// collector dies a third of the way in, stays down for 10 rounds, and
// is resumed from its checkpointed model snapshots (epoch-fenced, with
// leaf-side buffering) for the remainder.
func suppressCrashRun(cfg cluster.Config) (bytes float64, res cluster.Result) {
	crashAt := cfg.Rounds / 3
	cfg.Chaos = &chaos.Config{CollectorCrashAt: crashAt, Seed: 23}
	cfg.FenceEpochs = true
	cfg.LeafBuffer = 8
	ct := &countingTransport{Transport: transport.NewMemory(cfg.Sys.NodeIDs())}
	defer func() { _ = ct.Close() }()
	cfg.Transport = ct

	m, err := cluster.NewMachine(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: suppress crash machine: %v", err))
	}
	defer func() { _ = m.Close() }()
	down := crashAt + 10
	if err := m.StepN(down); err != nil {
		panic(fmt.Sprintf("bench: suppress crash run: %v", err))
	}
	m.ResumeCollector(cluster.ResumeState{Models: m.PredictSnapshots()})
	if err := m.StepN(cfg.Rounds - down); err != nil {
		panic(fmt.Sprintf("bench: suppress resume run: %v", err))
	}
	res = m.Result()
	checkSuppressInvariants(res)
	return float64(ct.bytes.Load()), res
}

// suppressCrashPoint re-measures the ε=1% point across a collector
// crash and resume; the resumed collector's replicas come back gated,
// so imputation pauses until the next sync instead of drifting.
func suppressCrashPoint(o Options) []float64 {
	cfg, err := suppressEnv(o, o.Seed+150)
	if err != nil {
		panic(err)
	}
	baseBytes, _ := suppressCrashRun(cfg)
	supp := cfg
	supp.Predict = mustSpec(suppressEps)
	suppBytes, res := suppressCrashRun(supp)
	if res.ValuesImputed == 0 {
		panic("bench: suppression never imputed across the collector crash")
	}
	reduction, suppPct := suppCells(baseBytes, suppBytes, res)
	return []float64{reduction, suppPct,
		float64(res.ValuesImputed), float64(res.MarkersLost), res.ImputeBandMax}
}

// suppressShardPoint re-measures the ε=1% point on a 4-shard collection
// tier: per-shard collectors keep their own replica halves, and the
// band invariant must survive the partition.
func suppressShardPoint(o Options) []float64 {
	cfg, err := suppressEnv(o, o.Seed+160)
	if err != nil {
		panic(err)
	}
	cfg.Shards = 4

	baseBytes, _ := countedRun(cfg)
	supp := cfg
	supp.Predict = mustSpec(suppressEps)
	suppBytes, res := countedRun(supp)
	if res.ValuesSuppressed == 0 {
		panic("bench: suppression never engaged on the sharded tier")
	}
	reduction, suppPct := suppCells(baseBytes, suppBytes, res)
	return []float64{reduction, suppPct,
		float64(res.ValuesImputed), float64(res.MarkersLost), res.ImputeBandMax}
}
