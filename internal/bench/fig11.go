package bench

import (
	"remo/internal/alloc"
	"remo/internal/metrics"
	"remo/internal/tree"
)

// allocColumns are the tree-wise capacity allocation schemes of Fig. 11.
var allocColumns = []string{"UNIFORM", "PROPORTIONAL", "ON-DEMAND", "ORDERED"}

// allocPoint evaluates all allocation schemes on one environment.
func allocPoint(e env) []float64 {
	out := make([]float64, 0, len(allocColumns))
	for _, s := range alloc.Schemes() {
		p := plannerWith(tree.Adaptive, s)
		out = append(out, pctPlanned(p, e))
	}
	return out
}

// Fig11 compares the capacity allocation schemes inside the full
// planner: (a) sweeping the node count, (b) sweeping the task count.
// ON-DEMAND and ORDERED should dominate, with ORDERED pulling ahead as
// tree-size disparity grows (small trees built first are not starved).
func Fig11(o Options) []*metrics.Table {
	a := metrics.NewTable("Fig 11a — % collected vs nodes", "nodes", allocColumns...)
	for _, n := range sweepInts(o, []int{50, 100, 200, 300, 400}, 10) {
		e, err := buildEnv(o, envConfig{
			nodes:        n,
			nodesPerTask: maxInt(4, n/5),
			seed:         o.Seed + 110,
		})
		if err != nil {
			panic(err)
		}
		mustAdd(a, float64(n), allocPoint(e)...)
	}

	b := metrics.NewTable("Fig 11b — % collected vs tasks", "tasks", allocColumns...)
	for _, n := range sweepInts(o, []int{25, 50, 100, 150, 200}, 4) {
		e, err := buildEnv(o, envConfig{tasks: n, seed: o.Seed + 111})
		if err != nil {
			panic(err)
		}
		mustAdd(b, float64(n), allocPoint(e)...)
	}
	return []*metrics.Table{a, b}
}
