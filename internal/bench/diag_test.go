package bench

import (
	"fmt"
	"os"
	"testing"
	"time"

	"remo/internal/core"
	"remo/internal/model"
	"remo/internal/workload"
)

func TestChurnDiag(t *testing.T) {
	if os.Getenv("CHURN_DIAG") == "" {
		t.Skip("set CHURN_DIAG=1 to run the full-scale churn diagnostic")
	}
	o := Options{Scale: 1, Seed: 1}
	sys, base, pool := churnEnv(o)
	d, err := workload.Demand(sys, base)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r := core.NewReplanner(core.NewPlanner(), sys, d)
	fmt.Printf("seed plan: %v\n", time.Since(start))
	cur := base
	k := 1
	for u := 0; u < churnUpdates; u++ {
		if u%2 == 0 {
			cur = append(cur, pool[u*k/2:u*k/2+k]...)
		} else {
			cur = append([]model.Task(nil), cur[k:]...)
		}
		nd, err := workload.Demand(sys, cur)
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		_, st := r.Update(nd)
		fmt.Printf("u=%d inc=%v fell=%v dirty=%d/%d evals=%d builds=%d reuses=%d t=%v\n",
			u, st.Incremental, st.FellBack, st.DirtySets, st.TotalSets,
			st.Evaluations, st.TreeBuilds, st.TreeReuses, time.Since(t0))
	}
}
