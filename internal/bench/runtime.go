package bench

import (
	"fmt"
	"runtime"
	"time"

	"remo/internal/chaos"
	"remo/internal/cluster"
	"remo/internal/core"
	"remo/internal/metrics"
	"remo/internal/model"
	"remo/internal/transport"
)

// runtimeColumns are the series of the runtime data-path experiment:
// wall-clock per run for the legacy goroutine-per-node engine (BASE)
// and the worker-pool fast path (FAST), the resulting speedup, the fast
// path's delivery throughput, and its heap allocation rate.
var runtimeColumns = []string{
	"BASE_MS", "FAST_MS", "SPEEDUP", "ROUNDS_PER_S", "VALUES_PER_S", "MALLOCS_PER_ROUND",
}

// runtimeEnv prepares a planned Fig. 6a-style deployment for the
// runtime experiment.
func runtimeEnv(o Options, nodes int, seed int64) (cluster.Config, error) {
	e, err := buildEnv(o, envConfig{
		nodes:        nodes,
		tasks:        o.scaleInt(150, 10),
		attrsPerTask: 3,
		nodesPerTask: maxInt(2, nodes/10),
		seed:         seed,
	})
	if err != nil {
		return cluster.Config{}, err
	}
	res := core.NewPlanner().Plan(e.sys, e.d)
	return cluster.Config{
		Sys:             e.sys,
		Forest:          res.Forest,
		Demand:          e.d,
		Rounds:          maxInt(o.rounds(), 50),
		EnforceCapacity: true,
	}, nil
}

// runtimeChaos is the fault schedule for the chaos rows: probabilistic
// loss and delay plus one mid-run crash, enough to exercise the delay
// sink and the failure paths without drowning the signal.
func runtimeChaos() *chaos.Config {
	return &chaos.Config{
		CrashAt:   map[model.NodeID]int{3: 10},
		DropProb:  0.02,
		DelayProb: 0.05, MaxDelayRounds: 2,
		Seed: 77,
	}
}

// timedRun executes one emulation and reports wall-clock, the result,
// and the heap allocation count attributable to the run.
func timedRun(cfg cluster.Config) (ms float64, mallocs uint64, res cluster.Result, err error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	res, err = cluster.Run(cfg)
	ms = float64(time.Since(t0).Microseconds()) / 1000
	runtime.ReadMemStats(&after)
	mallocs = after.Mallocs - before.Mallocs
	return ms, mallocs, res, err
}

// runtimePoint times the legacy and fast engines on one configuration
// and cross-checks they produced bit-identical results, panicking
// loudly on divergence — the equivalence guarantee is part of what this
// experiment measures.
func runtimePoint(cfg cluster.Config) []float64 {
	base := cfg
	base.Workers = -1
	baseMS, _, baseRes, err := timedRun(base)
	if err != nil {
		panic(fmt.Sprintf("bench: runtime base run: %v", err))
	}

	fast := cfg
	fast.Workers = 0
	fastMS, mallocs, fastRes, err := timedRun(fast)
	if err != nil {
		panic(fmt.Sprintf("bench: runtime fast run: %v", err))
	}

	if baseRes.ValuesDelivered != fastRes.ValuesDelivered ||
		baseRes.MessagesSent != fastRes.MessagesSent ||
		baseRes.MessagesDropped != fastRes.MessagesDropped ||
		baseRes.CoveredPairs != fastRes.CoveredPairs ||
		baseRes.AvgPercentError != fastRes.AvgPercentError {
		panic(fmt.Sprintf("bench: fast engine diverged from base:\nbase %+v\nfast %+v",
			baseRes, fastRes))
	}

	speedup := 0.0
	if fastMS > 0 {
		speedup = baseMS / fastMS
	}
	roundsPerS := 0.0
	valuesPerS := 0.0
	mallocsPerRound := 0.0
	if fastMS > 0 && cfg.Rounds > 0 {
		roundsPerS = float64(cfg.Rounds) / (fastMS / 1000)
		valuesPerS = float64(fastRes.ValuesDelivered) / (fastMS / 1000)
		mallocsPerRound = float64(mallocs) / float64(cfg.Rounds)
	}
	return []float64{baseMS, fastMS, speedup, roundsPerS, valuesPerS, mallocsPerRound}
}

// runtimeTCPPoint compares the direct (unbatched) and batched TCP write
// paths on one configuration, cross-checking bit-identical delivery.
func runtimeTCPPoint(cfg cluster.Config) []float64 {
	run := func(batch int) (float64, cluster.Result) {
		tr, err := transport.NewTCPWithOptions(cfg.Sys.NodeIDs(), transport.TCPOptions{BatchBytes: batch})
		if err != nil {
			panic(fmt.Sprintf("bench: runtime TCP transport: %v", err))
		}
		defer func() { _ = tr.Close() }()
		c := cfg
		c.Transport = tr
		t0 := time.Now()
		res, err := cluster.Run(c)
		if err != nil {
			panic(fmt.Sprintf("bench: runtime TCP run: %v", err))
		}
		return float64(time.Since(t0).Microseconds()) / 1000, res
	}

	directMS, directRes := run(-1)
	batchMS, batchRes := run(0)
	if directRes.ValuesDelivered != batchRes.ValuesDelivered ||
		directRes.MessagesSent != batchRes.MessagesSent ||
		directRes.MessagesDropped != batchRes.MessagesDropped {
		panic(fmt.Sprintf("bench: batched TCP diverged from direct:\ndirect %+v\nbatched %+v",
			directRes, batchRes))
	}

	speedup := 0.0
	if batchMS > 0 {
		speedup = directMS / batchMS
	}
	roundsPerS := 0.0
	valuesPerS := 0.0
	if batchMS > 0 && cfg.Rounds > 0 {
		roundsPerS = float64(cfg.Rounds) / (batchMS / 1000)
		valuesPerS = float64(batchRes.ValuesDelivered) / (batchMS / 1000)
	}
	return []float64{directMS, batchMS, speedup, roundsPerS, valuesPerS}
}

// RuntimePerf measures the emulation runtime's data path: the
// worker-pool round engine against the legacy goroutine-per-node
// engine over the memory transport (Fig. 6a node sweep, with and
// without chaos), and the batched against the direct TCP write path at
// a socket-friendly scale. Every point cross-checks that the fast
// paths deliver bit-identical results — the speedups are free of
// semantic drift by construction (BENCH_runtime.json records a run).
func RuntimePerf(o Options) []*metrics.Table {
	memCols := append([]string(nil), runtimeColumns...)
	a := metrics.NewTable("Runtime data path — memory transport (Fig 6a shape)", "nodes", memCols...)
	for _, n := range sweepInts(o, []int{50, 100, 200}, 10) {
		cfg, err := runtimeEnv(o, n, o.Seed+70)
		if err != nil {
			panic(err)
		}
		mustAdd(a, float64(n), runtimePoint(cfg)...)
	}

	b := metrics.NewTable("Runtime data path — memory transport under chaos", "nodes", memCols...)
	for _, n := range sweepInts(o, []int{50, 100}, 10) {
		cfg, err := runtimeEnv(o, n, o.Seed+80)
		if err != nil {
			panic(err)
		}
		cfg.Chaos = runtimeChaos()
		mustAdd(b, float64(n), runtimePoint(cfg)...)
	}

	c := metrics.NewTable("Runtime data path — TCP loopback, direct vs batched writes", "nodes",
		"DIRECT_MS", "BATCH_MS", "SPEEDUP", "ROUNDS_PER_S", "VALUES_PER_S")
	for _, n := range sweepInts(o, []int{25, 50}, 10) {
		cfg, err := runtimeEnv(o, n, o.Seed+90)
		if err != nil {
			panic(err)
		}
		cfg.Rounds = minInt(cfg.Rounds, 30)
		mustAdd(c, float64(n), runtimeTCPPoint(cfg)...)
	}
	return []*metrics.Table{a, b, c}
}
