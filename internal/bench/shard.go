package bench

import (
	"fmt"
	"time"

	"remo/internal/chaos"
	"remo/internal/cluster"
	"remo/internal/metrics"
)

// shardColumns are the series of the dispatcher-overhead table: median
// wall-clock per run for the single-collector baseline and the sharded
// tier on the identical plan, the sharded tier's relative per-round
// overhead, and the two coverage figures (which must agree — sharding
// partitions collection, it does not change what gets collected).
var shardColumns = []string{
	"SINGLE_MS", "SHARD_MS", "OVERHEAD_PCT", "COV_SINGLE", "COV_SHARD",
}

// shardCrashColumns are the series of the orphan re-dispatch table:
// trees orphaned by the crash, trees the dispatcher re-homed, and the
// worst-case latency in rounds from the crash to the last re-dispatch
// decision (suspicion window included).
var shardCrashColumns = []string{"ORPHANED", "REDISPATCHED", "LATENCY_ROUNDS"}

// shardRuns is how many timed repetitions each overhead point medians
// over; the emulation is deterministic, so the spread is scheduler
// noise only.
const shardRuns = 3

// Shard measures the sharded collection tier against the
// single-collector baseline on the Fig. 6a-shaped deployment: the
// dispatcher-overhead sweep varies the shard count on a healthy tier,
// and the re-dispatch table crashes one shard mid-run and reports how
// fast its orphaned trees were re-homed. The headline OVERHEAD_PCT at
// x=4 gates in scripts/check.sh via benchguard -shard
// (BENCH_shard.json records a run).
func Shard(o Options) []*metrics.Table {
	a := metrics.NewTable(
		"Sharded tier — dispatcher overhead vs single collector (Fig 6a shape)",
		"shards", shardColumns...)
	for _, n := range []int{2, 4, 8} {
		mustAdd(a, float64(n), shardOverheadPoint(o, n)...)
	}

	b := metrics.NewTable(
		"Sharded tier — orphan re-dispatch latency after one shard crash",
		"shards", shardCrashColumns...)
	for _, n := range []int{2, 4, 8} {
		mustAdd(b, float64(n), shardCrashPoint(o, n)...)
	}
	return []*metrics.Table{a, b}
}

// timedSteps constructs the machine outside the timed region and
// clocks the round loop only: the gate is on per-round dispatcher
// overhead, and tier setup is a one-time charge a long-lived session
// amortizes away.
func timedSteps(cfg cluster.Config) (ms float64, res cluster.Result) {
	m, err := cluster.NewMachine(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: shard machine: %v", err))
	}
	t0 := time.Now()
	if err := m.StepN(cfg.Rounds); err != nil {
		panic(fmt.Sprintf("bench: shard run: %v", err))
	}
	ms = float64(time.Since(t0).Microseconds()) / 1000
	return ms, m.Result()
}

// shardOverheadPoint times the same planned deployment with a single
// collector and with n shards, cross-checking that coverage is
// identical: the dispatcher and the per-shard partial merge are pure
// overhead, so any coverage drift is a correctness bug, not a
// measurement.
func shardOverheadPoint(o Options, n int) []float64 {
	cfg, err := runtimeEnv(o, o.scaleInt(100, 20), o.Seed+110)
	if err != nil {
		panic(err)
	}

	var singleMS, shardMS []float64
	var singleRes, shardRes cluster.Result
	for i := 0; i < shardRuns; i++ {
		ms, res := timedSteps(cfg)
		singleMS = append(singleMS, ms)
		singleRes = res

		sharded := cfg
		sharded.Shards = n
		ms, res = timedSteps(sharded)
		shardMS = append(shardMS, ms)
		shardRes = res
	}

	if singleRes.CoveredPairs != shardRes.CoveredPairs ||
		singleRes.ValuesDelivered != shardRes.ValuesDelivered {
		panic(fmt.Sprintf("bench: %d-shard tier diverged from single collector:\nsingle %+v\nsharded %+v",
			n, singleRes, shardRes))
	}

	sm, hm := median(singleMS), median(shardMS)
	overhead := 0.0
	if sm > 0 {
		overhead = 100 * (hm - sm) / sm
	}
	return []float64{sm, hm, overhead,
		singleRes.PercentCollected, shardRes.PercentCollected}
}

// shardCrashPoint crashes shard 0 (always populated: the LPT balance
// books the heaviest tree there) a third of the way through an n-shard
// run and reports the orphan ledger plus the rounds from the crash to
// the last re-dispatch decision.
func shardCrashPoint(o Options, n int) []float64 {
	cfg, err := runtimeEnv(o, o.scaleInt(100, 20), o.Seed+120)
	if err != nil {
		panic(err)
	}
	crashAt := cfg.Rounds / 3
	cfg.Shards = n
	cfg.Chaos = &chaos.Config{ShardCrashAt: map[int]int{0: crashAt}, Seed: 7}

	m, err := cluster.NewMachine(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: shard crash machine: %v", err))
	}
	if err := m.StepN(cfg.Rounds); err != nil {
		panic(fmt.Sprintf("bench: shard crash run: %v", err))
	}

	res := m.Result()
	latency := 0.0
	for _, mv := range m.ShardMoves() {
		if d := float64(mv.Round - crashAt); d > latency {
			latency = d
		}
	}
	if res.OrphanedTrees == 0 {
		panic(fmt.Sprintf("bench: crashing shard 0 of %d orphaned no trees", n))
	}
	return []float64{float64(res.OrphanedTrees), float64(res.TreesRedispatched), latency}
}
