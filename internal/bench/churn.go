package bench

import (
	"sort"
	"time"

	"remo/internal/core"
	"remo/internal/cost"
	"remo/internal/metrics"
	"remo/internal/model"
	"remo/internal/workload"
)

// churnColumns are the series of the incremental-replanning experiment:
// median full-replan and incremental plan-update latencies, the
// resulting speedup, the tree-reuse share of each swap, the fraction of
// updates that escalated to a full search, and the fraction whose
// incremental result collected exactly as many pairs as a from-scratch
// replan.
var churnColumns = []string{"FULL_MS_MED", "INC_MS_MED", "SPEEDUP", "REUSE_PCT", "FALLBACK_PCT", "PARITY_PCT"}

// churnUpdates is how many task-mutation events each point measures.
const churnUpdates = 8

// Churn measures plan-update latency under task churn at the Fig. 6a
// acceptance scale (400 nodes, 150 small tasks): a Replanner absorbing
// alternating task arrivals and removals against a from-scratch replan
// of the same mutated demand. The sweep varies how many tasks each
// update batch adds or removes — the batch-size axis is the task
// arrival rate per plan update.
func Churn(o Options) []*metrics.Table {
	t := metrics.NewTable(
		"Churn — plan-update latency, incremental vs full replan (Fig 6a scale)",
		"tasks_per_update", churnColumns...)
	for _, k := range []int{1, 2, 4} {
		mustAdd(t, float64(k), churnPoint(o, k)...)
	}
	return []*metrics.Table{t}
}

// churnEnv builds the Fig. 6a-shaped system, the initial task set, and a
// pool of pre-generated arrival tasks so every batch size sees the same
// mutation stream.
func churnEnv(o Options) (*model.System, []model.Task, []model.Task) {
	nodes := o.scaleInt(400, 20)
	sys, err := workload.System(workload.SystemConfig{
		Nodes:           nodes,
		Attrs:           o.scaleInt(100, 10),
		CapacityLo:      150,
		CapacityHi:      400,
		CentralCapacity: float64(nodes) * 12,
		Cost:            cost.Model{PerMessage: 10, PerValue: 1},
		Seed:            o.Seed + 70,
	})
	if err != nil {
		panic(err)
	}
	mk := func(count int, seed int64) []model.Task {
		return workload.Tasks(sys, workload.TaskConfig{
			Count:        count,
			AttrsPerTask: 3,
			NodesPerTask: maxInt(2, nodes/10),
			Seed:         seed,
		})
	}
	base := mk(o.scaleInt(150, 10), o.Seed+71)
	pool := mk(churnUpdates*4, o.Seed+72)
	for i := range pool {
		pool[i].Name = "arrival-" + pool[i].Name
	}
	return sys, base, pool
}

// churnPoint runs one batch size through churnUpdates mutation events:
// even events add k tasks from the pool, odd events remove the k oldest
// tasks. Each event is planned twice — incrementally by the maintained
// Replanner and from scratch by an independent planner — and the two
// results are compared for pair-count parity.
func churnPoint(o Options, k int) []float64 {
	sys, cur, pool := churnEnv(o)
	d, err := workload.Demand(sys, cur)
	if err != nil {
		panic(err)
	}
	r := core.NewReplanner(core.NewPlanner(), sys, d)
	full := core.NewPlanner()

	var fullMS, incMS []float64
	var reuseSum float64
	fallbacks, parity := 0, 0
	for u := 0; u < churnUpdates; u++ {
		if u%2 == 0 {
			cur = append(cur, pool[u*k/2:u*k/2+k]...)
		} else {
			cur = append([]model.Task(nil), cur[k:]...)
		}
		nd, err := workload.Demand(sys, cur)
		if err != nil {
			panic(err)
		}

		t0 := time.Now()
		fres := full.Plan(sys, nd)
		fullMS = append(fullMS, float64(time.Since(t0).Microseconds())/1000)

		t0 = time.Now()
		ires, st := r.Update(nd)
		incMS = append(incMS, float64(time.Since(t0).Microseconds())/1000)

		reuseSum += st.Diff.ReusePct()
		if !st.Incremental {
			fallbacks++
		}
		if ires.Stats.Collected == fres.Stats.Collected {
			parity++
		}
	}

	fm, im := median(fullMS), median(incMS)
	speedup := 0.0
	if im > 0 {
		speedup = fm / im
	}
	n := float64(churnUpdates)
	return []float64{fm, im, speedup, reuseSum / n, 100 * float64(fallbacks) / n, 100 * float64(parity) / n}
}

// median returns the middle of a sample (mean of the central pair for
// even lengths).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
