package bench

import (
	"remo/internal/cluster"
	"remo/internal/core"
	"remo/internal/metrics"
	"remo/internal/partition"
	"remo/internal/plan"
	"remo/internal/streams"
	"remo/internal/workload"
)

// Fig8 reproduces the real-system experiment: the YieldMonitor-like
// stream application (here the internal/streams substrate) deployed
// across the cluster, monitored under each partition scheme, measuring
// the average percentage error of collected attribute values — the
// paper's headline 30-50% error reduction for REMO. Panel (a) sweeps
// the node count, panel (b) the number of monitoring tasks.
func Fig8(o Options) []*metrics.Table {
	a := metrics.NewTable("Fig 8a — avg percentage error vs nodes", "nodes", partitionColumns...)
	for _, n := range sweepInts(o, []int{50, 100, 150, 200}, 10) {
		cells, err := fig8Point(o, n, o.scaleInt(200, 10), o.Seed+80)
		if err != nil {
			panic(err)
		}
		mustAdd(a, float64(n), cells...)
	}

	b := metrics.NewTable("Fig 8b — avg percentage error vs tasks", "tasks", partitionColumns...)
	for _, tasks := range sweepInts(o, []int{50, 100, 200, 300}, 5) {
		cells, err := fig8Point(o, o.scaleInt(200, 10), tasks, o.Seed+81)
		if err != nil {
			panic(err)
		}
		mustAdd(b, float64(tasks), cells...)
	}
	return []*metrics.Table{a, b}
}

// fig8Point deploys the stream substrate on n nodes with the given task
// count and returns the percentage error under REMO, SINGLETON-SET and
// ONE-SET plans.
func fig8Point(o Options, n, tasks int, seed int64) ([]float64, error) {
	// Stream application: 10 operators per node -> 40 metrics per node,
	// matching the paper's 30-50 monitored attributes per node.
	// Capacities are set so the schemes land in the 40-90% coverage
	// band: errors then reflect scheme quality (staleness + what each
	// scheme fails to deliver) rather than saturating near 100%.
	const opsPerNode = 10
	sys, err := workload.System(workload.SystemConfig{
		Nodes:           n,
		Attrs:           opsPerNode * streams.MetricsPerOp,
		CapacityLo:      300,
		CapacityHi:      700,
		CentralCapacity: float64(n) * 30,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	app, err := streams.NewPipelineApp(sys.NodeIDs(), opsPerNode, uint64(seed))
	if err != nil {
		return nil, err
	}
	rounds := o.rounds()
	app.Simulate(rounds)

	taskList := workload.Tasks(sys, workload.TaskConfig{
		Count:        tasks,
		AttrsPerTask: 12,
		NodesPerTask: maxInt(4, n/5),
		Seed:         seed + 3,
	})
	d, err := workload.Demand(sys, taskList)
	if err != nil {
		return nil, err
	}

	p := core.NewPlanner()
	universe := d.Universe()
	plans := []*plan.Forest{
		p.Plan(sys, d).Forest,
		p.PlanPartition(sys, d, partition.Singleton(universe)).Forest,
		p.PlanPartition(sys, d, partition.OneSet(universe)).Forest,
	}
	out := make([]float64, 0, len(plans))
	for _, forest := range plans {
		res, err := cluster.Run(cluster.Config{
			Sys:             sys,
			Forest:          forest,
			Demand:          d,
			Source:          app,
			Rounds:          rounds,
			EnforceCapacity: true,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res.AvgPercentError)
	}
	return out, nil
}
