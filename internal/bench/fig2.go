package bench

import (
	"remo/internal/cost"
	"remo/internal/metrics"
)

// fig2Model is the cost model calibrated against the paper's BlueGene/P
// measurements: receiving one single-value message costs 0.2% CPU and
// one 256-value message 1.4%, so (C + 256a)/(C + a) = 7, i.e. C = 41.5a.
var fig2Model = cost.Model{PerMessage: 41.5, PerValue: 1}

// Fig2 regenerates the cost-model motivation: root CPU load versus the
// number of single-value messages received (star fan-in 16..256), and
// the cost of one message versus the number of values it carries
// (1..256). The first series grows steeply (per-message overhead paid
// per sender), the second only mildly (payload cost is cheap) — the
// asymmetry that motivates cost(msg) = C + a·x.
func Fig2(o Options) []*metrics.Table {
	_ = o // the calibration sweep is scale-independent

	// Panel 1: the star root receives one single-value message per
	// sender per round. Scaled so 256 senders consume 68% CPU, matching
	// the paper's measurement.
	senders := metrics.NewTable(
		"Fig 2 (left) — root CPU% vs number of senders (1 value/message)",
		"senders", "cpu_pct",
	)
	unit := 68.0 / (256 * fig2Model.Message(1))
	for _, n := range []int{16, 32, 64, 128, 256} {
		mustAdd(senders, float64(n), float64(n)*fig2Model.Message(1)*unit)
	}

	// Panel 2: one message carrying x values. Scaled so a single-value
	// message costs 0.2% CPU; 256 values must land near 1.4%.
	values := metrics.NewTable(
		"Fig 2 (right) — cost of one message vs values per message",
		"values", "cpu_pct",
	)
	vUnit := 0.2 / fig2Model.Message(1)
	for _, x := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		mustAdd(values, float64(x), fig2Model.Message(x)*vUnit)
	}
	return []*metrics.Table{senders, values}
}
