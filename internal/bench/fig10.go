package bench

import (
	"time"

	"remo/internal/metrics"
	"remo/internal/model"
	"remo/internal/task"
	"remo/internal/tree"
	"remo/internal/workload"
)

// fig10Variants are the adjusting-procedure variants of Fig. 10; BASIC
// is the §3.2 algorithm (per-node reattaching, whole-tree search).
var fig10Variants = []struct {
	name string
	opts tree.Opts
}{
	{name: "BASIC", opts: tree.Opts{}},
	{name: "BRANCH", opts: tree.Opts{BranchReattach: true}},
	{name: "SUBTREE", opts: tree.Opts{SubtreeOnly: true}},
	{name: "BOTH", opts: tree.Opts{BranchReattach: true, SubtreeOnly: true}},
}

// Fig10 measures the speedup of the optimized tree-adjusting procedures
// (branch-based reattaching, subtree-only searching) over the basic
// algorithm while constructing one large, congested collection tree, and
// the coverage penalty the optimizations introduce (the paper reports up
// to ~11x speedup at <2% quality loss).
func Fig10(o Options) []*metrics.Table {
	speed := metrics.NewTable("Fig 10a — tree-construction speedup over BASIC", "nodes",
		"BRANCH", "SUBTREE", "BOTH")
	quality := metrics.NewTable("Fig 10b — % collected per variant", "nodes",
		"BASIC", "BRANCH", "SUBTREE", "BOTH")

	for _, n := range sweepInts(o, []int{50, 100, 200, 400}, 10) {
		ctx := fig10Context(o, n)
		times := make([]float64, len(fig10Variants))
		pcts := make([]float64, len(fig10Variants))
		for i, v := range fig10Variants {
			builder := tree.NewAdaptive(v.opts)
			// Repeat to stabilize the timing of small instances.
			const reps = 3
			start := time.Now()
			var r tree.Result
			for rep := 0; rep < reps; rep++ {
				r = builder.Build(ctx)
			}
			times[i] = float64(time.Since(start).Nanoseconds()) / reps
			pcts[i] = pct(r.Tree.Size(), len(ctx.Nodes))
		}
		mustAdd(speed, float64(n), times[0]/times[1], times[0]/times[2], times[0]/times[3])
		mustAdd(quality, float64(n), pcts...)
	}
	return []*metrics.Table{speed, quality}
}

// fig10Context builds a deliberately congested single-tree instance: all
// nodes carry several attributes and capacities are tight, so the
// construction procedure saturates repeatedly and the adjusting
// procedure dominates runtime.
func fig10Context(o Options, n int) tree.Context {
	sys, err := workload.System(workload.SystemConfig{
		Nodes:      n,
		Attrs:      5,
		CapacityLo: 60,
		CapacityHi: 90,
		// An ample collector keeps the bottleneck at the nodes.
		CentralCapacity: 1e9,
		Seed:            o.Seed + 100,
	})
	if err != nil {
		panic(err)
	}
	d := task.NewDemand()
	avail := make(map[model.NodeID]float64, n)
	attrs := []model.AttrID{1, 2, 3, 4, 5}
	for _, id := range sys.NodeIDs() {
		for _, a := range attrs {
			d.Set(id, a, 1)
		}
		avail[id] = sys.Capacity(id)
	}
	set := model.NewAttrSet(attrs...)
	return tree.Context{
		Sys:          sys,
		Demand:       d,
		Attrs:        set,
		Nodes:        d.Participants(set),
		Avail:        avail,
		CentralAvail: sys.CentralCapacity,
	}
}
