// Package profiling wires the standard runtime/pprof profilers into
// the command-line tools: a CPU profile collected over the process
// lifetime and a heap profile snapshot taken at shutdown. Both are
// plain pprof files, viewable with `go tool pprof`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the given output paths (empty = disabled)
// and returns a stop function that finalizes the profiles. The stop
// function must run before the process exits for the profiles to be
// complete.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("create mem profile: %w", err)
			}
			defer func() { _ = f.Close() }()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
