package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("disabled profiling errored: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("disabled stop errored: %v", err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	// Burn a little CPU so the profile has something to sample.
	sum := 0
	for i := 0; i < 1_000_000; i++ {
		sum += i * i
	}
	_ = sum
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s missing: %v", path, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

func TestStartMemOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if st, err := os.Stat(mem); err != nil || st.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}

func TestStartBadCPUPath(t *testing.T) {
	_, err := Start(filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof"), "")
	if err == nil {
		t.Fatal("unwritable cpu path did not error")
	}
}

func TestStopBadMemPath(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "no-such-dir", "mem.pprof"))
	if err != nil {
		t.Fatalf("start should defer mem-path errors to stop: %v", err)
	}
	if err := stop(); err == nil {
		t.Fatal("unwritable mem path did not error at stop")
	}
}
