package load

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"remo"
	"remo/internal/serve"
)

// TestParseThink pins the flag syntax for all three shapes and the
// rejection of malformed specs.
func TestParseThink(t *testing.T) {
	good := []struct {
		in   string
		want ThinkSpec
	}{
		{"fixed:100ms", ThinkSpec{Dist: ThinkFixed, Mean: 100 * time.Millisecond}},
		{"exp:200ms", ThinkSpec{Dist: ThinkExp, Mean: 200 * time.Millisecond}},
		{"uniform:50ms-200ms", ThinkSpec{Dist: ThinkUniform, Lo: 50 * time.Millisecond, Hi: 200 * time.Millisecond}},
	}
	for _, tc := range good {
		got, err := ParseThink(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseThink(%q) = %+v, %v; want %+v", tc.in, got, err, tc.want)
		}
		if got.String() == "" {
			t.Fatalf("ParseThink(%q).String() empty", tc.in)
		}
	}
	for _, bad := range []string{"", "exp", "exp:xyz", "uniform:50ms", "uniform:200ms-50ms", "pareto:1s", "fixed:-1s"} {
		if _, err := ParseThink(bad); err == nil {
			t.Fatalf("ParseThink(%q) accepted", bad)
		}
	}
}

// TestThinkSample pins sampling bounds for each shape.
func TestThinkSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fixed := ThinkSpec{Dist: ThinkFixed, Mean: 7 * time.Millisecond}
	for i := 0; i < 10; i++ {
		if d := fixed.Sample(rng); d != 7*time.Millisecond {
			t.Fatalf("fixed sample = %v", d)
		}
	}
	uni := ThinkSpec{Dist: ThinkUniform, Lo: 10 * time.Millisecond, Hi: 20 * time.Millisecond}
	for i := 0; i < 100; i++ {
		if d := uni.Sample(rng); d < uni.Lo || d >= uni.Hi {
			t.Fatalf("uniform sample %v outside [%v,%v)", d, uni.Lo, uni.Hi)
		}
	}
	exp := ThinkSpec{Dist: ThinkExp, Mean: 5 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		if d := exp.Sample(rng); d < 0 || d > 50*time.Millisecond {
			t.Fatalf("exp sample %v outside [0, 10×mean]", d)
		}
	}
}

// TestSummarize pins the percentile picker on a known ladder.
func TestSummarize(t *testing.T) {
	if s := summarize(nil); s.Count != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	lat := make([]float64, 100)
	for i := range lat {
		lat[i] = float64(i + 1) // 1..100 ms
	}
	s := summarize(lat)
	if s.Count != 100 || s.P50 != 50 || s.P95 != 95 || s.P99 != 99 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
}

// TestErrorClass pins the taxonomy bucketing.
func TestErrorClass(t *testing.T) {
	if got := errorClass(422, []byte(`{"error":{"code":"infeasible","message":"x"}}`)); got != "infeasible" {
		t.Fatalf("errorClass = %q", got)
	}
	if got := errorClass(500, []byte("oops")); got != "status_500" {
		t.Fatalf("errorClass = %q", got)
	}
}

// TestRunAgainstServe drives a short run over the memory transport
// against a real serve.Server and expects traffic, latencies, and
// rounds progress with a clean taxonomy.
func TestRunAgainstServe(t *testing.T) {
	nodes := make([]remo.Node, 12)
	for i := range nodes {
		nodes[i] = remo.Node{
			ID:       remo.NodeID(i + 1),
			Capacity: 120,
			Attrs:    []remo.AttrID{1, 2, 3, 4},
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: 600,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := remo.NewPlanner(sys, remo.WithJournal(t.TempDir()))
	srv, err := serve.New(serve.Config{
		Planner:    p,
		Monitor:    remo.MonitorConfig{Seed: 3},
		RoundEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()

	rep, err := Run(context.Background(), Options{
		Handler:     srv.Handler(),
		Clients:     20,
		Duration:    500 * time.Millisecond,
		Ramp:        50 * time.Millisecond,
		Think:       ThinkSpec{Dist: ThinkExp, Mean: 20 * time.Millisecond},
		MutatorFrac: 0.3,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 50 {
		t.Fatalf("requests = %d, want a real workload", rep.Requests)
	}
	if rep.Errors > 0 {
		t.Fatalf("errors = %d, taxonomy %v", rep.Errors, rep.Taxonomy)
	}
	if rep.Sync.Count != 20 {
		t.Fatalf("sync count = %d, want one per client", rep.Sync.Count)
	}
	if rep.Admit.Count == 0 || rep.Read.Count == 0 {
		t.Fatalf("latency classes empty: %+v", rep)
	}
	if rep.RoundsRun <= 0 || rep.RoundsPS <= 0 {
		t.Fatalf("rounds did not advance: %+v", rep)
	}
	if rep.OpsSucceeded == 0 {
		t.Fatalf("no operations applied: %+v", rep)
	}
	if rep.VerifyFails != 0 {
		t.Fatalf("verification failures: %d", rep.VerifyFails)
	}
}
