package load

// Think-time distributions, locust-style: each simulated client waits
// a sampled interval between requests. Three shapes — fixed, uniform,
// exponential — parsed from a compact flag syntax.

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Distribution shapes.
const (
	ThinkFixed   = "fixed"
	ThinkUniform = "uniform"
	ThinkExp     = "exp"
)

// ThinkSpec is a think-time distribution.
type ThinkSpec struct {
	// Dist is the shape: ThinkFixed, ThinkUniform, or ThinkExp.
	Dist string
	// Mean is the expectation (fixed and exp).
	Mean time.Duration
	// Lo and Hi bound the uniform shape.
	Lo, Hi time.Duration
}

// ParseThink parses "fixed:100ms", "uniform:50ms-200ms", or
// "exp:200ms".
func ParseThink(s string) (ThinkSpec, error) {
	dist, arg, ok := strings.Cut(s, ":")
	if !ok {
		return ThinkSpec{}, fmt.Errorf("load: think %q: want dist:duration", s)
	}
	switch dist {
	case ThinkFixed, ThinkExp:
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return ThinkSpec{}, fmt.Errorf("load: think %q: bad duration %q", s, arg)
		}
		return ThinkSpec{Dist: dist, Mean: d}, nil
	case ThinkUniform:
		loStr, hiStr, ok := strings.Cut(arg, "-")
		if !ok {
			return ThinkSpec{}, fmt.Errorf("load: think %q: uniform wants lo-hi", s)
		}
		lo, err1 := time.ParseDuration(loStr)
		hi, err2 := time.ParseDuration(hiStr)
		if err1 != nil || err2 != nil || lo < 0 || hi < lo {
			return ThinkSpec{}, fmt.Errorf("load: think %q: bad uniform range", s)
		}
		return ThinkSpec{Dist: ThinkUniform, Lo: lo, Hi: hi}, nil
	default:
		return ThinkSpec{}, fmt.Errorf("load: think %q: unknown distribution %q", s, dist)
	}
}

// Sample draws one think interval. Exponential tails are capped at
// 10× the mean so a single unlucky draw cannot idle a client for the
// whole run.
func (ts ThinkSpec) Sample(rng *rand.Rand) time.Duration {
	switch ts.Dist {
	case ThinkUniform:
		if ts.Hi <= ts.Lo {
			return ts.Lo
		}
		return ts.Lo + time.Duration(rng.Int63n(int64(ts.Hi-ts.Lo)))
	case ThinkExp:
		d := time.Duration(rng.ExpFloat64() * float64(ts.Mean))
		if cap := 10 * ts.Mean; d > cap {
			d = cap
		}
		return d
	default: // fixed
		return ts.Mean
	}
}

// String renders the spec back in the flag syntax.
func (ts ThinkSpec) String() string {
	if ts.Dist == ThinkUniform {
		return fmt.Sprintf("%s:%v-%v", ts.Dist, ts.Lo, ts.Hi)
	}
	return fmt.Sprintf("%s:%v", ts.Dist, ts.Mean)
}
