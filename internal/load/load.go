// Package load is the traffic harness for the service front door: a Go
// locust-equivalent that spawns N simulated clients against a
// remo-serve instance. Each client performs a connect-time full-state
// sync (GET /v1/state) and then loops on think-time-paced work —
// mutator clients cycle task add/modify/remove admissions, reader
// clients poll delta reads (GET /v1/latest) — while the harness
// records latency percentiles per request class, an error taxonomy,
// and the server's achieved rounds/s.
package load

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Options parameterizes a run.
type Options struct {
	// BaseURL is the remo-serve endpoint (ignored when Handler is set).
	BaseURL string
	// Handler, when set, dispatches requests in-process without sockets —
	// the memory transport for very large client counts.
	Handler http.Handler
	// Client overrides the shared HTTP client (default: pooled).
	Client *http.Client
	// Clients is the number of simulated clients (default 10).
	Clients int
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// Ramp staggers client start over this window so connect-time syncs
	// do not stampede (default Duration/4 capped at 2s).
	Ramp time.Duration
	// Think is the inter-request think-time distribution (default
	// exp:500ms).
	Think ThinkSpec
	// MutatorFrac is the fraction of clients that mutate tasks; the rest
	// read deltas (default 0.2).
	MutatorFrac float64
	// Seed decorrelates client randomness.
	Seed int64
	// TaskAttrs and TaskNodes size each mutator's task (defaults 1 and
	// 2). The pools come from GET /v1/system.
	TaskAttrs, TaskNodes int
}

// Summary is a latency distribution in milliseconds.
type Summary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50Ms"`
	P95   float64 `json:"p95Ms"`
	P99   float64 `json:"p99Ms"`
	Max   float64 `json:"maxMs"`
}

// Report is the harness's result.
type Report struct {
	Clients   int              `json:"clients"`
	Duration  time.Duration    `json:"duration"`
	Requests  int64            `json:"requests"`
	Errors    int64            `json:"errors"`
	Taxonomy  map[string]int64 `json:"taxonomy"`
	Admit     Summary          `json:"admit"`
	Sync      Summary          `json:"sync"`
	Read      Summary          `json:"read"`
	RoundsRun int64            `json:"roundsRun"`
	RoundsPS  float64          `json:"roundsPerSec"`
	// Operation outcomes scraped from the server's /metrics at the end.
	OpsSucceeded int64 `json:"opsSucceeded"`
	OpsFailed    int64 `json:"opsFailed"`
	OpsRejected  int64 `json:"opsRejected"`
	VerifyFails  int64 `json:"verifyFails"`
}

// clientStats is one client's private tally, merged after the run.
type clientStats struct {
	requests int64
	errors   int64
	taxonomy map[string]int64
	admit    []float64
	sync     []float64
	read     []float64
}

// handlerTransport dispatches requests straight into an http.Handler —
// no sockets, no ports: the harness's memory transport.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// Run drives the workload until the duration elapses or ctx is
// cancelled, then merges per-client stats and scrapes final server
// counters.
func Run(ctx context.Context, o Options) (Report, error) {
	if o.Clients <= 0 {
		o.Clients = 10
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Ramp == 0 {
		o.Ramp = o.Duration / 4
		if o.Ramp > 2*time.Second {
			o.Ramp = 2 * time.Second
		}
	}
	if o.Think.Dist == "" {
		o.Think = ThinkSpec{Dist: ThinkExp, Mean: 500 * time.Millisecond}
	}
	if o.MutatorFrac == 0 {
		o.MutatorFrac = 0.2
	}
	if o.TaskAttrs <= 0 {
		o.TaskAttrs = 1
	}
	if o.TaskNodes <= 0 {
		o.TaskNodes = 2
	}
	client := o.Client
	if client == nil {
		if o.Handler != nil {
			o.BaseURL = "http://remo-serve.local"
			client = &http.Client{Transport: handlerTransport{o.Handler}}
		} else {
			tr := &http.Transport{
				MaxIdleConns:        512,
				MaxIdleConnsPerHost: 512,
				MaxConnsPerHost:     4096,
			}
			client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
		}
	}
	base := strings.TrimRight(o.BaseURL, "/")

	// The node and attribute pools come from the server itself.
	pools, err := fetchSystem(ctx, client, base)
	if err != nil {
		return Report{}, fmt.Errorf("load: fetch system: %w", err)
	}
	startRounds, _ := scrapeCounter(ctx, client, base, "remo_rounds_total")

	runCtx, cancel := context.WithTimeout(ctx, o.Duration)
	defer cancel()
	start := time.Now()
	stats := make([]*clientStats, o.Clients)
	var wg sync.WaitGroup
	for i := 0; i < o.Clients; i++ {
		st := &clientStats{taxonomy: make(map[string]int64)}
		stats[i] = st
		wg.Add(1)
		go func(i int, st *clientStats) {
			defer wg.Done()
			c := simClient{
				id:      i,
				base:    base,
				client:  client,
				rng:     rand.New(rand.NewSource(o.Seed + int64(i)*7919)),
				think:   o.Think,
				mutator: float64(i) < o.MutatorFrac*float64(o.Clients),
				pools:   pools,
				attrs:   o.TaskAttrs,
				nodes:   o.TaskNodes,
				st:      st,
			}
			c.run(runCtx, time.Duration(float64(o.Ramp)*float64(i)/float64(o.Clients)))
		}(i, st)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{Clients: o.Clients, Duration: elapsed, Taxonomy: make(map[string]int64)}
	var admit, syncL, read []float64
	for _, st := range stats {
		rep.Requests += st.requests
		rep.Errors += st.errors
		for k, v := range st.taxonomy {
			rep.Taxonomy[k] += v
		}
		admit = append(admit, st.admit...)
		syncL = append(syncL, st.sync...)
		read = append(read, st.read...)
	}
	rep.Admit = summarize(admit)
	rep.Sync = summarize(syncL)
	rep.Read = summarize(read)

	endRounds, err := scrapeCounter(ctx, client, base, "remo_rounds_total")
	if err == nil {
		rep.RoundsRun = endRounds - startRounds
		rep.RoundsPS = float64(rep.RoundsRun) / elapsed.Seconds()
	}
	rep.OpsSucceeded, _ = scrapeCounter(ctx, client, base, "remo_ops_succeeded_total")
	rep.OpsFailed, _ = scrapeCounter(ctx, client, base, "remo_ops_failed_total")
	rep.OpsRejected, _ = scrapeCounter(ctx, client, base, "remo_ops_rejected_total")
	rep.VerifyFails, _ = scrapeCounter(ctx, client, base, "remo_verify_failures_total")
	return rep, nil
}

// pools are the server's node and attribute ID pools.
type pools struct {
	nodes []int
	attrs []int
}

func fetchSystem(ctx context.Context, c *http.Client, base string) (pools, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/system", nil)
	if err != nil {
		return pools{}, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return pools{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return pools{}, fmt.Errorf("GET /v1/system: status %d", resp.StatusCode)
	}
	var body struct {
		Nodes []struct {
			ID    int   `json:"id"`
			Attrs []int `json:"attrs"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return pools{}, err
	}
	var p pools
	seen := make(map[int]bool)
	for _, n := range body.Nodes {
		p.nodes = append(p.nodes, n.ID)
		for _, a := range n.Attrs {
			if !seen[a] {
				seen[a] = true
				p.attrs = append(p.attrs, a)
			}
		}
	}
	if len(p.nodes) == 0 || len(p.attrs) == 0 {
		return pools{}, errors.New("empty system")
	}
	sort.Ints(p.attrs)
	return p, nil
}

// scrapeCounter reads one counter from /metrics.
func scrapeCounter(ctx context.Context, c *http.Client, base, name string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			return 0, err
		}
		return int64(v), nil
	}
	return 0, fmt.Errorf("metric %s not exposed", name)
}

// simClient is one simulated client.
type simClient struct {
	id      int
	base    string
	client  *http.Client
	rng     *rand.Rand
	think   ThinkSpec
	mutator bool
	pools   pools
	attrs   int
	nodes   int
	st      *clientStats

	gen     int
	created bool
	// since is the last server round this client has seen; delta reads
	// ask only for values at or after it.
	since int
}

// run is the client loop: ramp delay, connect-time full sync, then
// think-paced work until the context ends.
func (c *simClient) run(ctx context.Context, rampDelay time.Duration) {
	if !sleepCtx(ctx, rampDelay) {
		return
	}
	c.fullSync(ctx)
	for {
		if !sleepCtx(ctx, c.think.Sample(c.rng)) {
			return
		}
		if c.mutator {
			c.mutate(ctx)
		} else {
			c.readDelta(ctx)
		}
	}
}

// sleepCtx sleeps unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		select {
		case <-ctx.Done():
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// taskName is this client's unique task identity for the current
// generation.
func (c *simClient) taskName() string { return fmt.Sprintf("load-c%d-g%d", c.id, c.gen) }

// taskBody samples a task payload from the pools.
func (c *simClient) taskBody(name string) string {
	attrs := make([]string, 0, c.attrs)
	for _, idx := range c.rng.Perm(len(c.pools.attrs))[:min(c.attrs, len(c.pools.attrs))] {
		attrs = append(attrs, strconv.Itoa(c.pools.attrs[idx]))
	}
	nodes := make([]string, 0, c.nodes)
	for _, idx := range c.rng.Perm(len(c.pools.nodes))[:min(c.nodes, len(c.pools.nodes))] {
		nodes = append(nodes, strconv.Itoa(c.pools.nodes[idx]))
	}
	return fmt.Sprintf(`{"name":%q,"attrs":[%s],"nodes":[%s]}`,
		name, strings.Join(attrs, ","), strings.Join(nodes, ","))
}

// mutate cycles the admission API: create the generation's task, then
// modify it, and occasionally retire it to start a new generation.
func (c *simClient) mutate(ctx context.Context) {
	name := c.taskName()
	switch {
	case !c.created:
		if _, ok := c.request(ctx, http.MethodPost, "/v1/tasks", c.taskBody(name), &c.st.admit); ok {
			c.created = true
		}
	case c.rng.Float64() < 0.25:
		if _, ok := c.request(ctx, http.MethodDelete, "/v1/tasks/"+name, "", &c.st.admit); ok {
			c.created = false
			c.gen++
		}
	default:
		c.request(ctx, http.MethodPut, "/v1/tasks/"+name, c.taskBody(name), &c.st.admit)
	}
}

// readDelta polls values newer than the last round this client saw.
func (c *simClient) readDelta(ctx context.Context) {
	path := "/v1/latest?since=" + strconv.Itoa(c.since)
	if body, ok := c.request(ctx, http.MethodGet, path, "", &c.st.read); ok {
		c.advance(body)
	}
}

// fullSync is the connect-time state download; it seeds the delta
// cursor from the reported round.
func (c *simClient) fullSync(ctx context.Context) {
	if body, ok := c.request(ctx, http.MethodGet, "/v1/state", "", &c.st.sync); ok {
		c.advance(body)
	}
}

// advance moves the delta cursor past the server round a response
// reported: rounds publish atomically, so everything at that round has
// been seen.
func (c *simClient) advance(body []byte) {
	var rd struct {
		Round int `json:"round"`
	}
	if err := json.Unmarshal(body, &rd); err == nil && rd.Round >= c.since {
		c.since = rd.Round + 1
	}
}

// request issues one HTTP call, records its latency in lat, and files
// failures in the taxonomy. Returns the response body and true on 2xx.
func (c *simClient) request(ctx context.Context, method, path, body string, lat *[]float64) ([]byte, bool) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		c.st.errors++
		c.st.taxonomy["request_build"]++
		return nil, false
	}
	start := time.Now()
	resp, err := c.client.Do(req)
	elapsed := time.Since(start)
	c.st.requests++
	if err != nil {
		if ctx.Err() != nil {
			// Run-end cancellation is not a server error.
			c.st.requests--
			return nil, false
		}
		c.st.errors++
		c.st.taxonomy["transport"]++
		return nil, false
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	*lat = append(*lat, float64(elapsed.Microseconds())/1000)
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return data, true
	}
	c.st.errors++
	c.st.taxonomy[errorClass(resp.StatusCode, data)]++
	return data, false
}

// errorClass buckets a failure for the taxonomy: the envelope's code
// when present, the bare status otherwise.
func errorClass(status int, body []byte) string {
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		return env.Error.Code
	}
	return "status_" + strconv.Itoa(status)
}

// summarize computes percentiles over latencies in milliseconds.
func summarize(lat []float64) Summary {
	if len(lat) == 0 {
		return Summary{}
	}
	sort.Float64s(lat)
	pick := func(q float64) float64 {
		idx := int(q*float64(len(lat))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return lat[idx]
	}
	return Summary{
		Count: len(lat),
		P50:   pick(0.50),
		P95:   pick(0.95),
		P99:   pick(0.99),
		Max:   lat[len(lat)-1],
	}
}
