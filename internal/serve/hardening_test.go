package serve

// API hardening: the wire contract for every rejection path is pinned
// by golden files (regenerate with -update). The error envelope —
// {"error":{"code","message"}} — must stay byte-stable: clients key
// off it.

import (
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares a response body against its golden file.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if string(want) != string(got) {
		t.Fatalf("wire contract drifted for %s:\n got: %s\nwant: %s", name, got, want)
	}
}

// TestHardeningEnvelopes drives every rejection path and pins the
// envelope. The server's central capacity is 30 (budget 20), so the
// 48-pair task is infeasible by construction.
func TestHardeningEnvelopes(t *testing.T) {
	_, ts := testServer(t, 30)
	base := ts.URL

	// Seed one valid task so duplicate/unknown cases have a target.
	id := admitTask(t, base, "cpu", []int{1}, []int{1, 2})
	waitOp(t, base, id)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{
			name: "malformed_json", method: http.MethodPost, path: "/v1/tasks",
			body:   `{"name": "x", "attrs": [1,`,
			status: http.StatusBadRequest, code: codeBadRequest,
		},
		{
			name: "invalid_task_empty", method: http.MethodPost, path: "/v1/tasks",
			body:   `{"name":"empty","attrs":[],"nodes":[1]}`,
			status: http.StatusUnprocessableEntity, code: codeInvalidTask,
		},
		{
			name: "invalid_task_nameless", method: http.MethodPost, path: "/v1/tasks",
			body:   `{"attrs":[1],"nodes":[1]}`,
			status: http.StatusUnprocessableEntity, code: codeInvalidTask,
		},
		{
			name: "invalid_task_central", method: http.MethodPost, path: "/v1/tasks",
			body:   `{"name":"central","attrs":[1],"nodes":[0]}`,
			status: http.StatusUnprocessableEntity, code: codeInvalidTask,
		},
		{
			name: "unknown_node", method: http.MethodPost, path: "/v1/tasks",
			body:   `{"name":"ghost","attrs":[1],"nodes":[99]}`,
			status: http.StatusUnprocessableEntity, code: codeUnknownNode,
		},
		{
			name: "unknown_attr", method: http.MethodPost, path: "/v1/tasks",
			body:   `{"name":"ghost","attrs":[77],"nodes":[1]}`,
			status: http.StatusUnprocessableEntity, code: codeUnknownAttr,
		},
		{
			name: "duplicate_task", method: http.MethodPost, path: "/v1/tasks",
			body:   `{"name":"cpu","attrs":[1],"nodes":[1]}`,
			status: http.StatusConflict, code: codeDuplicateTask,
		},
		{
			name: "unknown_task_modify", method: http.MethodPut, path: "/v1/tasks/nope",
			body:   `{"attrs":[1],"nodes":[1]}`,
			status: http.StatusNotFound, code: codeUnknownTask,
		},
		{
			name: "unknown_task_remove", method: http.MethodDelete, path: "/v1/tasks/nope",
			status: http.StatusNotFound, code: codeUnknownTask,
		},
		{
			name: "name_mismatch", method: http.MethodPut, path: "/v1/tasks/cpu",
			body:   `{"name":"other","attrs":[1],"nodes":[1]}`,
			status: http.StatusBadRequest, code: codeBadRequest,
		},
		{
			name: "infeasible", method: http.MethodPost, path: "/v1/tasks",
			body:   `{"name":"big","attrs":[1,2,3,4],"nodes":[1,2,3,4,5,6,7,8,9,10,11,12]}`,
			status: http.StatusUnprocessableEntity, code: codeInfeasible,
		},
		{
			name: "body_too_large", method: http.MethodPost, path: "/v1/tasks",
			body:   `{"name":"huge","attrs":[1],"nodes":[` + strings.Repeat("1,", 1024) + `1]}`,
			status: http.StatusRequestEntityTooLarge, code: codeBodyTooLarge,
		},
		{
			name: "not_found_endpoint", method: http.MethodGet, path: "/v1/nope",
			status: http.StatusNotFound, code: codeNotFound,
		},
		{
			name: "operation_not_found", method: http.MethodGet, path: "/v1/operations/op-999999",
			status: http.StatusNotFound, code: codeNotFound,
		},
		{
			name: "bad_trigger_cond", method: http.MethodPost, path: "/v1/triggers",
			body:   `{"name":"t","attr":1,"cond":"sideways","threshold":1}`,
			status: http.StatusUnprocessableEntity, code: codeBadTrigger,
		},
		{
			name: "bad_series_params", method: http.MethodGet, path: "/v1/series?node=x",
			status: http.StatusBadRequest, code: codeBadRequest,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, tc.method, base+tc.path, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d, want %d: %s", status, tc.status, body)
			}
			if !strings.Contains(string(body), `"code": "`+tc.code+`"`) {
				t.Fatalf("missing code %q: %s", tc.code, body)
			}
			checkGolden(t, tc.name, body)
		})
	}
}

// TestDuplicateTriggerEnvelope needs its own flow (create then
// re-create) so it lives outside the table.
func TestDuplicateTriggerEnvelope(t *testing.T) {
	_, ts := testServer(t, 30)
	base := ts.URL
	body := `{"name":"dup","attr":1,"cond":"above","threshold":5}`
	if code, resp := do(t, http.MethodPost, base+"/v1/triggers", body); code != http.StatusCreated {
		t.Fatalf("first create: %d %s", code, resp)
	}
	code, resp := do(t, http.MethodPost, base+"/v1/triggers", body)
	if code != http.StatusConflict {
		t.Fatalf("duplicate create: %d %s", code, resp)
	}
	checkGolden(t, "duplicate_trigger", resp)
}

// TestDrainingEnvelope pins the 503 envelope a draining server
// answers mutations with.
func TestDrainingEnvelope(t *testing.T) {
	s, ts := testServer(t, 30)
	s.Drain()
	code, resp := do(t, http.MethodPost, ts.URL+"/v1/tasks", `{"name":"x","attrs":[1],"nodes":[1]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining admission: %d %s", code, resp)
	}
	checkGolden(t, "draining", resp)
}
