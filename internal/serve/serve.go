// Package serve is the service front door: a long-running HTTP/JSON
// tier wrapping a remo.Planner/Monitor pair. It follows a strict
// frontend/backend split — admission handlers validate synchronously,
// mutate the desired task set, and enqueue an asynchronous operation;
// a single backend goroutine owns the Monitor, materializes the
// desired state between collection rounds (driving the incremental
// replanner), runs rounds on a pacing clock, and journals a final
// checkpoint on drain. Callers poll operation status; store values and
// trigger firings stream over SSE.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"remo"
	"remo/internal/metrics"
	"remo/internal/model"
)

// Config parameterizes a Server.
type Config struct {
	// Planner owns the system model and planning configuration. The
	// desired task set starts from the planner's current tasks.
	Planner *remo.Planner
	// Monitor configures the session. A journal directory is required
	// (directly or via the planner's WithJournal): a service that cannot
	// checkpoint cannot drain gracefully.
	Monitor remo.MonitorConfig
	// RoundEvery paces collection rounds (default 50ms).
	RoundEvery time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// OpRetention bounds retained operation-status records (default
	// 65536; terminal records beyond it are evicted oldest-first).
	OpRetention int
	// StreamBuffer is the per-subscriber event buffer (default 256);
	// events beyond a slow subscriber's buffer are dropped and counted.
	StreamBuffer int
	// VerifyEvery cross-checks the live session every n rounds when the
	// planner has verification armed (default 32; <0 disables).
	VerifyEvery int
	// MaxBatch bounds how many queued operations one round applies
	// (default 1024).
	MaxBatch int
}

// Server is one service instance. Create with New, mount Handler on an
// http.Server, and Drain on shutdown.
type Server struct {
	cfg     Config
	planner *remo.Planner
	mon     *remo.Monitor
	proc    *remo.Processor
	obs     observes
	// attrs is the set of attributes observed anywhere in the system.
	attrs map[model.AttrID]bool

	mu sync.Mutex
	// desired is the intended task set: updated synchronously by
	// admission, materialized asynchronously by the backend.
	desired map[string]remo.Task
	// pairRefs/pairCount track distinct observable pairs across the
	// desired set for O(task) admission-budget checks.
	pairRefs  map[model.Pair]int
	pairCount int
	draining  bool
	triggers  map[string]remo.Trigger

	ops    *opRegistry
	queue  chan *operation
	broker *broker

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	drain  sync.Once

	reg *metrics.Registry
	ins instruments
}

// instruments is the server's metric set (see newInstruments for the
// exposition names).
type instruments struct {
	rounds          *metrics.Counter
	opsEnqueued     *metrics.Counter
	opsSucceeded    *metrics.Counter
	opsFailed       *metrics.Counter
	opsRejected     *metrics.Counter
	admission       *metrics.Histogram
	replans         *metrics.Counter
	replansInc      *metrics.Counter
	replansFellBack *metrics.Counter
	treesKept       *metrics.Counter
	treesRebuilt    *metrics.Counter
	streamEvents    *metrics.Counter
	streamDropped   *metrics.Counter
	streamSubs      *metrics.Gauge
	draining        *metrics.Gauge
	resumes         *metrics.Counter
	verifyFailures  *metrics.Counter
	httpRequests    *metrics.Counter
	httpErrors      *metrics.Counter
	roundErrors     *metrics.Counter
}

func newInstruments(reg *metrics.Registry) instruments {
	return instruments{
		rounds:          reg.Counter("remo_rounds_total", "collection rounds executed"),
		opsEnqueued:     reg.Counter("remo_ops_enqueued_total", "admitted operations"),
		opsSucceeded:    reg.Counter("remo_ops_succeeded_total", "operations applied"),
		opsFailed:       reg.Counter("remo_ops_failed_total", "operations that failed to apply"),
		opsRejected:     reg.Counter("remo_ops_rejected_total", "admissions rejected at validation"),
		admission:       reg.Histogram("remo_admission_seconds", "admission handling latency", nil),
		replans:         reg.Counter("remo_replans_total", "plan swaps driven by task mutations"),
		replansInc:      reg.Counter("remo_replans_incremental_total", "plan swaps served by the scoped replanner"),
		replansFellBack: reg.Counter("remo_replans_fallback_total", "scoped replans discarded for a full replan"),
		treesKept:       reg.Counter("remo_trees_kept_total", "trees kept across replans"),
		treesRebuilt:    reg.Counter("remo_trees_rebuilt_total", "trees rebuilt across replans"),
		streamEvents:    reg.Counter("remo_stream_events_total", "events published to stream subscribers"),
		streamDropped:   reg.Counter("remo_stream_dropped_total", "events dropped on slow subscribers"),
		streamSubs:      reg.Gauge("remo_stream_subscribers", "live stream subscribers"),
		draining:        reg.Gauge("remo_draining", "1 while the server drains"),
		resumes:         reg.Counter("remo_collector_resumes_total", "collector auto-resumes from the journal"),
		verifyFailures:  reg.Counter("remo_verify_failures_total", "live verification failures"),
		httpRequests:    reg.Counter("remo_http_requests_total", "HTTP requests served"),
		httpErrors:      reg.Counter("remo_http_errors_total", "HTTP responses with error status"),
		roundErrors:     reg.Counter("remo_round_errors_total", "collection rounds that returned an error"),
	}
}

// observes answers "does node n observe attribute a" in O(1).
type observes map[model.NodeID]map[model.AttrID]bool

func observesIndex(sys *remo.System) observes {
	idx := make(observes, len(sys.Nodes))
	for _, n := range sys.Nodes {
		set := make(map[model.AttrID]bool, len(n.Attrs))
		for _, a := range n.Attrs {
			set[a] = true
		}
		idx[n.ID] = set
	}
	return idx
}

// attrIndex is the set of attributes observed by at least one node.
func attrIndex(sys *remo.System) map[model.AttrID]bool {
	set := make(map[model.AttrID]bool)
	for _, n := range sys.Nodes {
		for _, a := range n.Attrs {
			set[a] = true
		}
	}
	return set
}

// New boots the monitor session and the backend goroutine. The caller
// must Drain (or Close) the returned server.
func New(cfg Config) (*Server, error) {
	if cfg.Planner == nil {
		return nil, errors.New("serve: Config.Planner is required")
	}
	if cfg.RoundEvery <= 0 {
		cfg.RoundEvery = 50 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.OpRetention <= 0 {
		cfg.OpRetention = 65536
	}
	if cfg.StreamBuffer <= 0 {
		cfg.StreamBuffer = 256
	}
	if cfg.VerifyEvery == 0 {
		cfg.VerifyEvery = 32
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}

	reg := metrics.NewRegistry()
	ins := newInstruments(reg)
	s := &Server{
		cfg:      cfg,
		planner:  cfg.Planner,
		obs:      observesIndex(cfg.Planner.System()),
		attrs:    attrIndex(cfg.Planner.System()),
		desired:  make(map[string]remo.Task),
		pairRefs: make(map[model.Pair]int),
		triggers: make(map[string]remo.Trigger),
		ops:      newOpRegistry(cfg.OpRetention),
		queue:    make(chan *operation, cfg.MaxBatch),
		done:     make(chan struct{}),
		reg:      reg,
		ins:      ins,
	}
	s.broker = newBroker(cfg.StreamBuffer, ins.streamEvents, ins.streamDropped, ins.streamSubs)

	// The monitor always journals: the planner seeds the directory via
	// WithJournal unless the config overrides it.
	mcfg := cfg.Monitor
	s.proc = mcfg.Processor
	if s.proc == nil {
		s.proc = remo.NewProcessor(0)
		mcfg.Processor = s.proc
	}
	s.proc.SetHandler(func(a remo.Alert) { s.broker.publish("alert", alertWire(a)) })
	user := mcfg.OnValue
	mcfg.OnValue = func(pair remo.Pair, round int, value float64) {
		s.broker.publish("value", valueWire{
			Node: int(pair.Node), Attr: int(pair.Attr), Round: round, Value: value,
		})
		if user != nil {
			user(pair, round, value)
		}
	}

	// Seed the desired set (and its pair accounting) from the planner.
	for _, t := range cfg.Planner.Tasks() {
		s.desired[t.Name] = t.Clone()
		for _, pr := range t.Pairs() {
			if !s.obs[pr.Node][pr.Attr] {
				continue
			}
			if s.pairRefs[pr]++; s.pairRefs[pr] == 1 {
				s.pairCount++
			}
		}
	}

	mon, err := cfg.Planner.StartMonitor(mcfg)
	if err != nil {
		return nil, fmt.Errorf("serve: start monitor: %w", err)
	}
	if mon.JournalDir() == "" {
		_ = mon.Close()
		return nil, errors.New("serve: a journal directory is required (MonitorConfig.Journal or WithJournal)")
	}
	s.mon = mon

	// Region-labeled systems expose per-region coverage as a labeled
	// gauge family, refreshed from the live session at scrape time.
	if len(cfg.Planner.System().Regions()) > 1 {
		reg.LabeledGaugeFunc("remo_region_coverage",
			"per-region coverage percent of demanded pairs", "region",
			func() map[string]float64 { return mon.RegionCoverage() })
	}

	s.ctx, s.cancel = context.WithCancel(context.Background())
	go s.backend()
	return s, nil
}

// Monitor exposes the owned session (tests and the resume flow).
func (s *Server) Monitor() *remo.Monitor { return s.mon }

// Registry exposes the metric registry (tests).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Draining reports whether the server has begun draining.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// backend is the single goroutine that owns the Monitor: it
// materializes queued mutations between rounds, runs rounds on the
// pacing clock, auto-resumes a crashed collector from the journal, and
// publishes round events.
func (s *Server) backend() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.RoundEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.ctx.Done():
			s.finalDrain()
			return
		case <-ticker.C:
		}
		s.applyBatch(s.drainQueue())
		s.runRound()
	}
}

// drainQueue collects queued operations without blocking, up to the
// batch bound.
func (s *Server) drainQueue() []*operation {
	var batch []*operation
	for len(batch) < s.cfg.MaxBatch {
		select {
		case op := <-s.queue:
			batch = append(batch, op)
		default:
			return batch
		}
	}
	return batch
}

// applyBatch materializes the desired task set with one coalesced
// SetTasks covering every operation in the batch.
func (s *Server) applyBatch(batch []*operation) {
	if len(batch) == 0 {
		return
	}
	s.mu.Lock()
	tasks := make([]remo.Task, 0, len(s.desired))
	for _, t := range s.desired {
		tasks = append(tasks, t)
	}
	s.mu.Unlock()
	for _, op := range batch {
		s.ops.setStatus(op, OpApplying, nil, ReplanSummary{})
	}
	rep, err := s.mon.SetTasks(tasks)
	round := s.mon.Round()
	if err != nil {
		s.ins.opsFailed.Add(int64(len(batch)))
		for _, op := range batch {
			s.ops.setStatus(op, OpFailed, err, ReplanSummary{Round: round})
		}
		return
	}
	s.ins.replans.Inc()
	if rep.Incremental {
		s.ins.replansInc.Inc()
	}
	if rep.FellBack {
		s.ins.replansFellBack.Inc()
	}
	s.ins.treesKept.Add(int64(rep.TreesKept))
	s.ins.treesRebuilt.Add(int64(rep.TreesRebuilt))
	s.ins.opsSucceeded.Add(int64(len(batch)))
	sum := ReplanSummary{
		Round:        round,
		TreesKept:    rep.TreesKept,
		TreesRebuilt: rep.TreesRebuilt,
		TreesDropped: rep.TreesDropped,
		ReusePct:     rep.TreeReusePct,
		Incremental:  rep.Incremental,
		FellBack:     rep.FellBack,
	}
	for _, op := range batch {
		s.ops.setStatus(op, OpSucceeded, nil, sum)
	}
}

// runRound executes one collection round, self-heals a crashed
// collector from the journal, and publishes the round event.
func (s *Server) runRound() {
	if err := s.mon.Run(1); err != nil {
		s.ins.roundErrors.Inc()
		return
	}
	s.ins.rounds.Inc()
	round := s.mon.Round() - 1
	if s.mon.CollectorDown() {
		// A chaos (or real) collector outage latches until an explicit
		// resume; the service owns the session, so it restarts the
		// collector from its own journal.
		if _, err := s.mon.Resume(s.mon.JournalDir()); err == nil {
			s.ins.resumes.Inc()
		}
	}
	if n := s.cfg.VerifyEvery; n > 0 && round > 0 && round%n == 0 {
		if err := s.mon.Verify(); err != nil {
			s.ins.verifyFailures.Inc()
		}
	}
	s.broker.publish("round", roundWire{Round: round, Fingerprint: s.mon.Fingerprint()})
}

// finalDrain applies every remaining queued operation, seals the final
// checkpoint, and closes the session and the stream broker. Backend
// goroutine only.
func (s *Server) finalDrain() {
	for {
		batch := s.drainQueue()
		if len(batch) == 0 {
			break
		}
		s.applyBatch(batch)
	}
	if s.planner != nil && s.mon != nil {
		if err := s.mon.Verify(); err != nil {
			s.ins.verifyFailures.Inc()
		}
	}
	_ = s.mon.Checkpoint()
	_ = s.mon.Close()
	s.broker.close()
}

// Drain gracefully shuts the server down: new mutations are rejected,
// queued operations are applied, a final checkpoint is sealed, and
// stream subscribers are disconnected. It blocks until the backend has
// exited and is safe to call more than once.
func (s *Server) Drain() {
	s.drain.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.ins.draining.Set(1)
		s.cancel()
	})
	<-s.done
}

// Close is Drain (lifecycle convenience for defer).
func (s *Server) Close() error {
	s.Drain()
	return nil
}
