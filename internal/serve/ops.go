package serve

// The asynchronous operation state machine: admission enqueues, the
// backend applies, clients poll. Records are retained after reaching a
// terminal state so pollers never lose a 202's outcome, bounded by the
// configured retention (evicted oldest-first).

import (
	"fmt"
	"sync"
	"time"
)

// OpStatus is an operation's lifecycle state.
type OpStatus string

// Operation states: queued → applying → succeeded | failed.
const (
	OpQueued    OpStatus = "queued"
	OpApplying  OpStatus = "applying"
	OpSucceeded OpStatus = "succeeded"
	OpFailed    OpStatus = "failed"
)

// Terminal reports whether the status is final.
func (s OpStatus) Terminal() bool { return s == OpSucceeded || s == OpFailed }

// ReplanSummary is the plan diff the operation's apply produced.
type ReplanSummary struct {
	Round        int     `json:"round"`
	TreesKept    int     `json:"treesKept"`
	TreesRebuilt int     `json:"treesRebuilt"`
	TreesDropped int     `json:"treesDropped"`
	ReusePct     float64 `json:"reusePct"`
	Incremental  bool    `json:"incremental"`
	FellBack     bool    `json:"fellBack"`
}

// operation is one admitted mutation.
type operation struct {
	ID       string
	Kind     string // "add" | "modify" | "remove"
	TaskName string
	Created  time.Time

	mu      sync.Mutex
	status  OpStatus
	err     error
	replan  ReplanSummary
	applied time.Time
	done    chan struct{}
}

// OpView is an operation's wire representation.
type OpView struct {
	ID      string        `json:"id"`
	Kind    string        `json:"kind"`
	Task    string        `json:"task"`
	Status  OpStatus      `json:"status"`
	Error   string        `json:"error,omitempty"`
	Replan  ReplanSummary `json:"replan"`
	AgeMS   int64         `json:"ageMs"`
	ApplyMS int64         `json:"applyMs,omitempty"`
}

func (o *operation) view(now time.Time) OpView {
	o.mu.Lock()
	defer o.mu.Unlock()
	v := OpView{
		ID:     o.ID,
		Kind:   o.Kind,
		Task:   o.TaskName,
		Status: o.status,
		Replan: o.replan,
		AgeMS:  now.Sub(o.Created).Milliseconds(),
	}
	if o.err != nil {
		v.Error = o.err.Error()
	}
	if !o.applied.IsZero() {
		v.ApplyMS = o.applied.Sub(o.Created).Milliseconds()
	}
	return v
}

// Done returns a channel closed when the operation reaches a terminal
// state (tests and in-process callers; HTTP clients poll).
func (o *operation) Done() <-chan struct{} { return o.done }

// opRegistry retains operation records for status polling.
type opRegistry struct {
	mu     sync.Mutex
	seq    int
	byID   map[string]*operation
	order  []string
	retain int
}

func newOpRegistry(retain int) *opRegistry {
	return &opRegistry{byID: make(map[string]*operation), retain: retain}
}

// create registers a queued operation and returns it.
func (r *opRegistry) create(kind, taskName string) *operation {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	op := &operation{
		ID:       fmt.Sprintf("op-%d", r.seq),
		Kind:     kind,
		TaskName: taskName,
		Created:  time.Now(),
		status:   OpQueued,
		done:     make(chan struct{}),
	}
	r.byID[op.ID] = op
	r.order = append(r.order, op.ID)
	for len(r.order) > r.retain {
		evict := r.order[0]
		r.order = r.order[1:]
		delete(r.byID, evict)
	}
	return op
}

// setStatus advances an operation's state.
func (r *opRegistry) setStatus(op *operation, st OpStatus, err error, sum ReplanSummary) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if op.status.Terminal() {
		return
	}
	op.status = st
	op.err = err
	if st.Terminal() {
		op.replan = sum
		op.applied = time.Now()
		close(op.done)
	}
}

// get returns an operation by ID.
func (r *opRegistry) get(id string) (*operation, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op, ok := r.byID[id]
	return op, ok
}

// recent returns up to n retained operations, newest first.
func (r *opRegistry) recent(n int) []*operation {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.order) {
		n = len(r.order)
	}
	out := make([]*operation, 0, n)
	for i := len(r.order) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, r.byID[r.order[i]])
	}
	return out
}

// len returns the number of retained records.
func (r *opRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}
