package serve

// The stream broker fans collected values, alerts, and round markers
// out to SSE subscribers. Publishing never blocks the backend: a slow
// subscriber's overflow is dropped and counted, not buffered without
// bound.

import (
	"encoding/json"
	"sync"

	"remo/internal/metrics"
)

// event is one pre-marshaled stream event.
type event struct {
	Kind string
	Data []byte
}

// subscriber is one stream consumer.
type subscriber struct {
	ch    chan event
	kinds map[string]bool // empty = all kinds
}

// broker is the publish/subscribe hub.
type broker struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
	buffer int

	events  *metrics.Counter
	dropped *metrics.Counter
	gauge   *metrics.Gauge
}

func newBroker(buffer int, events, dropped *metrics.Counter, gauge *metrics.Gauge) *broker {
	return &broker{
		subs:    make(map[*subscriber]struct{}),
		buffer:  buffer,
		events:  events,
		dropped: dropped,
		gauge:   gauge,
	}
}

// publish marshals the payload once and offers it to every interested
// subscriber without blocking.
func (b *broker) publish(kind string, payload any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || len(b.subs) == 0 {
		return
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	ev := event{Kind: kind, Data: data}
	for sub := range b.subs {
		if len(sub.kinds) > 0 && !sub.kinds[kind] {
			continue
		}
		select {
		case sub.ch <- ev:
			b.events.Inc()
		default:
			b.dropped.Inc()
		}
	}
}

// subscribe registers a consumer for the given kinds (nil = all). It
// returns nil when the broker is closed.
func (b *broker) subscribe(kinds []string) *subscriber {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	sub := &subscriber{ch: make(chan event, b.buffer), kinds: make(map[string]bool, len(kinds))}
	for _, k := range kinds {
		if k != "" {
			sub.kinds[k] = true
		}
	}
	b.subs[sub] = struct{}{}
	b.gauge.Set(float64(len(b.subs)))
	return sub
}

// unsubscribe detaches a consumer; its channel is closed so a reader
// blocked on it wakes.
func (b *broker) unsubscribe(sub *subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[sub]; !ok {
		return
	}
	delete(b.subs, sub)
	close(sub.ch)
	b.gauge.Set(float64(len(b.subs)))
}

// close disconnects every subscriber and refuses new ones (drain).
func (b *broker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		delete(b.subs, sub)
		close(sub.ch)
	}
	b.gauge.Set(0)
}
