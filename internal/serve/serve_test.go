package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"remo"
	"remo/internal/metrics"
)

// testServer boots a Server over a 12-node system (central capacity
// 600 → admission budget 590) with fast rounds, plus its httptest
// frontend.
func testServer(t *testing.T, central float64, opts ...remo.PlannerOption) (*Server, *httptest.Server) {
	t.Helper()
	nodes := make([]remo.Node, 12)
	for i := range nodes {
		nodes[i] = remo.Node{
			ID:       remo.NodeID(i + 1),
			Capacity: 120,
			Attrs:    []remo.AttrID{1, 2, 3, 4},
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: central,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts = append(opts, remo.WithJournal(t.TempDir()))
	p := remo.NewPlanner(sys, opts...)
	s, err := New(Config{
		Planner:      p,
		Monitor:      remo.MonitorConfig{Seed: 42},
		RoundEvery:   2 * time.Millisecond,
		MaxBodyBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

// do issues a request and returns status and body.
func do(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// waitOp polls an operation until it is terminal.
func waitOp(t *testing.T, base, id string) OpView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body := do(t, http.MethodGet, base+"/v1/operations/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("op poll status %d: %s", code, body)
		}
		var out struct {
			Operation OpView `json:"operation"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Operation.Status.Terminal() {
			return out.Operation
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("operation %s never reached a terminal state", id)
	return OpView{}
}

// admitTask posts a task and returns the operation id from the 202.
func admitTask(t *testing.T, base, name string, attrs, nodes []int) string {
	t.Helper()
	payload, _ := json.Marshal(taskWire{Name: name, Attrs: attrs, Nodes: nodes})
	code, body := do(t, http.MethodPost, base+"/v1/tasks", string(payload))
	if code != http.StatusAccepted {
		t.Fatalf("admit %q: status %d: %s", name, code, body)
	}
	var out struct {
		Operation OpView `json:"operation"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Operation.ID
}

// TestAdmissionLifecycle drives add → applied → visible in plan →
// modify (replan diff) → remove through the HTTP front door.
func TestAdmissionLifecycle(t *testing.T) {
	_, ts := testServer(t, 600)
	base := ts.URL

	id := admitTask(t, base, "cpu", []int{1}, []int{1, 2, 3, 4})
	op := waitOp(t, base, id)
	if op.Status != OpSucceeded {
		t.Fatalf("add op = %+v", op)
	}

	// The plan in force covers the admitted pairs.
	code, body := do(t, http.MethodGet, base+"/v1/plan", "")
	if code != http.StatusOK {
		t.Fatalf("plan status %d", code)
	}
	var plan struct {
		DemandedPairs  int `json:"demandedPairs"`
		CollectedPairs int `json:"collectedPairs"`
	}
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.DemandedPairs != 4 || plan.CollectedPairs != 4 {
		t.Fatalf("plan = %+v, want 4/4 pairs", plan)
	}

	// Modify widens the task; the op carries the replan diff.
	payload, _ := json.Marshal(taskWire{Name: "cpu", Attrs: []int{1, 2}, Nodes: []int{1, 2, 3, 4}})
	code, body = do(t, http.MethodPut, base+"/v1/tasks/cpu", string(payload))
	if code != http.StatusAccepted {
		t.Fatalf("modify status %d: %s", code, body)
	}
	var out struct {
		Operation OpView `json:"operation"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	op = waitOp(t, base, out.Operation.ID)
	if op.Status != OpSucceeded {
		t.Fatalf("modify op = %+v", op)
	}

	// Remove empties the desired set again.
	code, body = do(t, http.MethodDelete, base+"/v1/tasks/cpu", "")
	if code != http.StatusAccepted {
		t.Fatalf("remove status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if op = waitOp(t, base, out.Operation.ID); op.Status != OpSucceeded {
		t.Fatalf("remove op = %+v", op)
	}
	code, body = do(t, http.MethodGet, base+"/v1/tasks", "")
	if code != http.StatusOK || !strings.Contains(string(body), `"tasks": []`) {
		t.Fatalf("task list after remove: %d %s", code, body)
	}
}

// TestValuesFlowAndState pins the read paths: /v1/state full sync,
// /v1/latest delta reads, and /v1/series windows carry collected
// values.
func TestValuesFlowAndState(t *testing.T) {
	_, ts := testServer(t, 600)
	base := ts.URL
	id := admitTask(t, base, "cpu", []int{1}, []int{1, 2, 3})
	waitOp(t, base, id)

	// Wait for values to land in the repository.
	deadline := time.Now().Add(10 * time.Second)
	var state struct {
		Round  int         `json:"round"`
		Values []valueWire `json:"values"`
	}
	for time.Now().Before(deadline) {
		_, body := do(t, http.MethodGet, base+"/v1/state", "")
		if err := json.Unmarshal(body, &state); err != nil {
			t.Fatal(err)
		}
		if len(state.Values) >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(state.Values) < 3 {
		t.Fatalf("full sync returned %d values, want >= 3", len(state.Values))
	}

	_, body := do(t, http.MethodGet, base+"/v1/latest?since=0", "")
	var latest struct {
		Values []valueWire `json:"values"`
	}
	if err := json.Unmarshal(body, &latest); err != nil {
		t.Fatal(err)
	}
	if len(latest.Values) < 3 {
		t.Fatalf("latest returned %d values", len(latest.Values))
	}

	v := latest.Values[0]
	_, body = do(t, http.MethodGet,
		fmt.Sprintf("%s/v1/series?node=%d&attr=%d", base, v.Node, v.Attr), "")
	var series struct {
		Samples []valueWire `json:"samples"`
	}
	if err := json.Unmarshal(body, &series); err != nil {
		t.Fatal(err)
	}
	if len(series.Samples) == 0 {
		t.Fatal("series returned no samples")
	}
}

// TestStreamDeliversEvents subscribes over SSE and expects round and
// value events.
func TestStreamDeliversEvents(t *testing.T) {
	_, ts := testServer(t, 600)
	base := ts.URL
	id := admitTask(t, base, "cpu", []int{1}, []int{1, 2})
	waitOp(t, base, id)

	resp, err := http.Get(base + "/v1/stream?kinds=round,value")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	buf := make([]byte, 8192)
	var seen strings.Builder
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		n, err := resp.Body.Read(buf)
		seen.Write(buf[:n])
		if strings.Contains(seen.String(), "event: round") &&
			strings.Contains(seen.String(), "event: value") {
			return
		}
		if err != nil {
			break
		}
	}
	t.Fatalf("stream never delivered round+value events: %q", seen.String())
}

// TestTriggersAndAlerts installs an always-firing trigger and expects
// alerts to accumulate.
func TestTriggersAndAlerts(t *testing.T) {
	_, ts := testServer(t, 600)
	base := ts.URL
	id := admitTask(t, base, "cpu", []int{1}, []int{1, 2})
	waitOp(t, base, id)

	code, body := do(t, http.MethodPost, base+"/v1/triggers",
		`{"name":"hot","attr":1,"cond":"above","threshold":-1e9}`)
	if code != http.StatusCreated {
		t.Fatalf("trigger create: %d %s", code, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, body = do(t, http.MethodGet, base+"/v1/alerts", "")
		var out struct {
			Alerts []alertJSON `json:"alerts"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Alerts) > 0 {
			// Cleanup path: delete the trigger.
			code, _ = do(t, http.MethodDelete, base+"/v1/triggers/hot", "")
			if code != http.StatusOK {
				t.Fatalf("trigger delete: %d", code)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("trigger never fired")
}

// TestMetricsExposition pins the /metrics surface: rounds advance and
// the admission counters move.
func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t, 600)
	base := ts.URL
	id := admitTask(t, base, "cpu", []int{1}, []int{1})
	waitOp(t, base, id)
	time.Sleep(20 * time.Millisecond)

	_, body := do(t, http.MethodGet, base+"/metrics", "")
	out := string(body)
	for _, want := range []string{
		"# TYPE remo_rounds_total counter",
		"remo_ops_enqueued_total 1",
		"remo_ops_succeeded_total 1",
		"# TYPE remo_admission_seconds histogram",
		"remo_replans_total 1",
		"remo_tasks 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

// regionTestServer boots a Server over a 12-node, 3-region system
// (4 nodes per region, collector in r0, WAN-priced inter-region edges).
func regionTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	nodes := make([]remo.Node, 12)
	for i := range nodes {
		nodes[i] = remo.Node{
			ID:       remo.NodeID(i + 1),
			Capacity: 120,
			Attrs:    []remo.AttrID{1, 2, 3, 4},
			Region:   remo.RegionName(i / 4),
		}
	}
	sys, err := remo.NewSystem(remo.SystemSpec{
		CentralCapacity: 600,
		Cost:            remo.CostModel{PerMessage: 10, PerValue: 1},
		Nodes:           nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.CentralRegion = remo.RegionName(0)
	sys.ApplyTopology(remo.NewTopology(1, 0))
	p := remo.NewPlanner(sys, remo.WithJournal(t.TempDir()))
	s, err := New(Config{
		Planner:      p,
		Monitor:      remo.MonitorConfig{Seed: 42},
		RoundEvery:   2 * time.Millisecond,
		MaxBodyBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

// TestRegionSurface pins the WAN view of the wire contract: /v1/system
// carries node region labels, /v1/state carries per-region coverage,
// and /metrics exposes the remo_region_coverage family (pinned by a
// golden file once every region converges to full coverage).
func TestRegionSurface(t *testing.T) {
	_, ts := regionTestServer(t)
	base := ts.URL
	// One task per region so every region demands pairs.
	for r := 0; r < 3; r++ {
		id := admitTask(t, base, fmt.Sprintf("task-r%d", r), []int{1, 2}, []int{4*r + 1, 4*r + 2})
		waitOp(t, base, id)
	}

	_, body := do(t, http.MethodGet, base+"/v1/system", "")
	var sysOut struct {
		Nodes []struct {
			ID     int    `json:"id"`
			Region string `json:"region"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(body, &sysOut); err != nil {
		t.Fatal(err)
	}
	for _, n := range sysOut.Nodes {
		if want := remo.RegionName((n.ID - 1) / 4); n.Region != want {
			t.Fatalf("node %d region = %q, want %q", n.ID, n.Region, want)
		}
	}

	// Coverage needs a completed round; poll until every region reads
	// 100% in /v1/state, then pin the /metrics family with the golden.
	type regionJSON struct {
		Name     string  `json:"name"`
		Nodes    int     `json:"nodes"`
		Coverage float64 `json:"coverage"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body = do(t, http.MethodGet, base+"/v1/state", "")
		var state struct {
			Regions []regionJSON `json:"regions"`
		}
		if err := json.Unmarshal(body, &state); err != nil {
			t.Fatal(err)
		}
		full := len(state.Regions) == 3
		for _, reg := range state.Regions {
			if reg.Nodes != 4 || reg.Coverage < 100 {
				full = false
			}
		}
		if full {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("regions never converged to full coverage: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, body = do(t, http.MethodGet, base+"/metrics", "")
	var family []string
	for _, line := range strings.Split(string(body), "\n") {
		if strings.Contains(line, "remo_region_coverage") {
			family = append(family, line)
		}
	}
	checkGolden(t, "region_metrics", []byte(strings.Join(family, "\n")+"\n"))
}

// TestDrainRejectsAndResumes pins drain semantics: mutations are
// rejected with the draining envelope, the journal is sealed, and a
// cold ResumeMonitor accepts it.
func TestDrainRejectsAndResumes(t *testing.T) {
	s, ts := testServer(t, 600)
	base := ts.URL
	id := admitTask(t, base, "cpu", []int{1}, []int{1, 2, 3, 4})
	waitOp(t, base, id)
	fp := s.Monitor().Fingerprint()
	dir := s.Monitor().JournalDir()
	s.Drain()

	code, body := do(t, http.MethodPost, base+"/v1/tasks",
		`{"name":"late","attrs":[1],"nodes":[1]}`)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), codeDraining) {
		t.Fatalf("post-drain admission: %d %s", code, body)
	}
	code, _ = do(t, http.MethodGet, base+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz after drain: %d", code)
	}

	mon, rep, err := s.planner.ResumeMonitor(dir, remo.MonitorConfig{Seed: 42})
	if err != nil {
		t.Fatalf("resume after drain: %v", err)
	}
	defer mon.Close()
	if !rep.PlanMatched || mon.Fingerprint() != fp {
		t.Fatalf("resume lost plan identity: %+v", rep)
	}
	if rep.RecoveredSamples == 0 {
		t.Fatal("drained journal held no samples")
	}
}

// TestOpRetentionEviction pins the retention bound: old terminal
// records are evicted oldest-first.
func TestOpRetentionEviction(t *testing.T) {
	r := newOpRegistry(3)
	var ids []string
	for i := 0; i < 5; i++ {
		op := r.create("add", fmt.Sprintf("t%d", i))
		ids = append(ids, op.ID)
	}
	if r.len() != 3 {
		t.Fatalf("retained %d, want 3", r.len())
	}
	if _, ok := r.get(ids[0]); ok {
		t.Fatal("oldest record not evicted")
	}
	if _, ok := r.get(ids[4]); !ok {
		t.Fatal("newest record evicted")
	}
	if got := len(r.recent(10)); got != 3 {
		t.Fatalf("recent returned %d, want 3", got)
	}
}

// TestBrokerDropsOnSlowSubscriber pins the non-blocking publish: a
// full subscriber buffer drops, never blocks.
func TestBrokerDropsOnSlowSubscriber(t *testing.T) {
	reg := metrics.NewRegistry()
	events := reg.Counter("e_total", "e")
	dropped := reg.Counter("d_total", "d")
	gauge := reg.Gauge("g", "g")
	b := newBroker(2, events, dropped, gauge)
	sub := b.subscribe(nil)
	for i := 0; i < 5; i++ {
		b.publish("round", roundWire{Round: i})
	}
	if got := events.Value(); got != 2 {
		t.Fatalf("delivered = %d, want 2 (buffer)", got)
	}
	if got := dropped.Value(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	b.unsubscribe(sub)
	b.close()
	if b.subscribe(nil) != nil {
		t.Fatal("subscribe after close succeeded")
	}
}
