package serve

// The HTTP frontend: synchronous validation, asynchronous application.
// Every mutation handler validates against the desired task set, checks
// the admission budget, mutates the desired state, and answers 202 with
// an operation to poll. Reads serve from the Monitor's repository and
// plan. Errors share one envelope: {"error":{"code","message"}}.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"remo"
	"remo/internal/model"
	"remo/internal/store"
)

// apiError is an error envelope before serialization.
type apiError struct {
	Status  int
	Code    string
	Message string
}

// Error codes of the wire contract (pinned by the golden files).
const (
	codeBadRequest       = "bad_request"
	codeInvalidTask      = "invalid_task"
	codeUnknownNode      = "unknown_node"
	codeUnknownAttr      = "unknown_attr"
	codeDuplicateTask    = "duplicate_task"
	codeUnknownTask      = "unknown_task"
	codeInfeasible       = "infeasible"
	codeBodyTooLarge     = "body_too_large"
	codeNotFound         = "not_found"
	codeDraining         = "draining"
	codeOverloaded       = "overloaded"
	codeBadTrigger       = "bad_trigger"
	codeDuplicateTrigger = "duplicate_trigger"
)

func errDraining() *apiError {
	return &apiError{http.StatusServiceUnavailable, codeDraining, "server is draining"}
}

// writeJSON answers with a JSON body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr answers with the error envelope.
func writeErr(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.Status, map[string]any{
		"error": map[string]string{"code": e.Code, "message": e.Message},
	})
}

// Wire types. IDs travel as plain ints.
type taskWire struct {
	Name  string `json:"name"`
	Attrs []int  `json:"attrs"`
	Nodes []int  `json:"nodes"`
}

func (tw taskWire) task() remo.Task {
	t := remo.Task{Name: tw.Name}
	for _, a := range tw.Attrs {
		t.Attrs = append(t.Attrs, remo.AttrID(a))
	}
	for _, n := range tw.Nodes {
		t.Nodes = append(t.Nodes, remo.NodeID(n))
	}
	return t
}

func wireTask(t remo.Task) taskWire {
	tw := taskWire{Name: t.Name, Attrs: []int{}, Nodes: []int{}}
	for _, a := range t.Attrs {
		tw.Attrs = append(tw.Attrs, int(a))
	}
	for _, n := range t.Nodes {
		tw.Nodes = append(tw.Nodes, int(n))
	}
	return tw
}

type valueWire struct {
	Node  int     `json:"node"`
	Attr  int     `json:"attr"`
	Round int     `json:"round"`
	Value float64 `json:"value"`
}

type roundWire struct {
	Round       int    `json:"round"`
	Fingerprint uint64 `json:"fingerprint"`
}

type alertJSON struct {
	Trigger string  `json:"trigger"`
	Node    int     `json:"node"`
	Attr    int     `json:"attr"`
	Round   int     `json:"round"`
	Value   float64 `json:"value"`
}

func alertWire(a remo.Alert) alertJSON {
	return alertJSON{
		Trigger: a.Trigger,
		Node:    int(a.Pair.Node),
		Attr:    int(a.Pair.Attr),
		Round:   a.Round,
		Value:   a.Value,
	}
}

type triggerWire struct {
	Name      string  `json:"name"`
	Attr      int     `json:"attr"`
	Node      int     `json:"node"`
	Cond      string  `json:"cond"`
	Threshold float64 `json:"threshold"`
	Cooldown  int     `json:"cooldown"`
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/system", s.handleSystem)
	mux.HandleFunc("GET /v1/tasks", s.handleTaskList)
	mux.HandleFunc("POST /v1/tasks", s.handleTaskCreate)
	mux.HandleFunc("GET /v1/tasks/{name}", s.handleTaskGet)
	mux.HandleFunc("PUT /v1/tasks/{name}", s.handleTaskUpdate)
	mux.HandleFunc("DELETE /v1/tasks/{name}", s.handleTaskDelete)
	mux.HandleFunc("GET /v1/operations", s.handleOpList)
	mux.HandleFunc("GET /v1/operations/{id}", s.handleOpGet)
	mux.HandleFunc("GET /v1/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/report", s.handleReport)
	mux.HandleFunc("GET /v1/state", s.handleState)
	mux.HandleFunc("GET /v1/series", s.handleSeries)
	mux.HandleFunc("GET /v1/latest", s.handleLatest)
	mux.HandleFunc("GET /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/triggers", s.handleTriggerList)
	mux.HandleFunc("POST /v1/triggers", s.handleTriggerCreate)
	mux.HandleFunc("DELETE /v1/triggers/{name}", s.handleTriggerDelete)
	mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, &apiError{http.StatusNotFound, codeNotFound, "no such endpoint: " + r.URL.Path})
	})
	return s.instrument(mux)
}

// statusWriter captures the response status for the request counters
// while passing Flush through for streaming handlers.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument counts requests and error responses.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.ins.httpRequests.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		if sw.status >= 400 {
			s.ins.httpErrors.Inc()
		}
	})
}

// decodeBody parses a bounded JSON request body.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) *apiError {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &apiError{http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)}
		}
		return &apiError{http.StatusBadRequest, codeBadRequest, "malformed JSON: " + err.Error()}
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"round":    s.mon.Round(),
		"draining": s.Draining(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Report-derived gauges refresh at scrape time (registration is
	// idempotent, so re-fetching the instruments is cheap).
	rep := s.mon.Report()
	set := func(name, help string, v float64) { s.reg.Gauge(name, help).Set(v) }
	set("remo_report_rounds", "rounds observed by the collector", float64(rep.Rounds))
	set("remo_report_percent_collected", "coverage percent", rep.PercentCollected)
	set("remo_report_avg_percent_error", "average percent error of delivered values", rep.AvgPercentError)
	set("remo_report_messages_sent", "overlay messages sent", float64(rep.MessagesSent))
	set("remo_report_values_delivered", "values delivered to the collector", float64(rep.ValuesDelivered))
	set("remo_report_values_suppressed", "values suppressed by forecasting", float64(rep.ValuesSuppressed))
	set("remo_report_failures_detected", "node failures declared", float64(rep.FailuresDetected))
	set("remo_report_repairs", "self-healing repairs applied", float64(len(rep.Repairs)))
	set("remo_report_collector_restarts", "collector resumes", float64(rep.CollectorRestarts))
	s.mu.Lock()
	set("remo_tasks", "tasks in the desired set", float64(len(s.desired)))
	set("remo_pairs", "distinct observable pairs demanded", float64(s.pairCount))
	s.mu.Unlock()
	set("remo_ops_retained", "operation-status records retained", float64(s.ops.len()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.Fprint(w)
}

func (s *Server) handleSystem(w http.ResponseWriter, r *http.Request) {
	sys := s.planner.System()
	type nodeWire struct {
		ID       int     `json:"id"`
		Capacity float64 `json:"capacity"`
		Attrs    []int   `json:"attrs"`
		Region   string  `json:"region,omitempty"`
	}
	nodes := make([]nodeWire, 0, len(sys.Nodes))
	for _, n := range sys.Nodes {
		nw := nodeWire{ID: int(n.ID), Capacity: n.Capacity, Attrs: []int{}, Region: n.Region}
		for _, a := range n.Attrs {
			nw.Attrs = append(nw.Attrs, int(a))
		}
		nodes = append(nodes, nw)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{
		"centralCapacity": sys.CentralCapacity,
		"cost":            map[string]float64{"perMessage": sys.Cost.PerMessage, "perValue": sys.Cost.PerValue},
		"admissionBudget": s.planner.AdmissionBudget(),
		"nodes":           nodes,
	})
}

// refTaskLocked counts the task's observable pairs into the admission
// refcounts. unrefTaskLocked is its exact inverse; the two are always
// called symmetrically so duplicate pairs inside a task stay
// consistent.
func (s *Server) refTaskLocked(t remo.Task) {
	for _, pr := range t.Pairs() {
		if !s.obs[pr.Node][pr.Attr] {
			continue
		}
		if s.pairRefs[pr]++; s.pairRefs[pr] == 1 {
			s.pairCount++
		}
	}
}

func (s *Server) unrefTaskLocked(t remo.Task) {
	for _, pr := range t.Pairs() {
		if !s.obs[pr.Node][pr.Attr] {
			continue
		}
		if s.pairRefs[pr]--; s.pairRefs[pr] == 0 {
			s.pairCount--
			delete(s.pairRefs, pr)
		}
	}
}

// validateTaskLocked enforces the strict wire contract: the task
// manager silently drops unobservable pairs, the service rejects them.
func (s *Server) validateTaskLocked(t remo.Task) *apiError {
	if err := t.Validate(); err != nil {
		return &apiError{http.StatusUnprocessableEntity, codeInvalidTask, err.Error()}
	}
	for _, n := range t.Nodes {
		if _, ok := s.obs[n]; !ok {
			return &apiError{http.StatusUnprocessableEntity, codeUnknownNode,
				fmt.Sprintf("node %d is not part of the system", n)}
		}
	}
	for _, a := range t.Attrs {
		if !s.attrs[a] {
			return &apiError{http.StatusUnprocessableEntity, codeUnknownAttr,
				fmt.Sprintf("attribute %d is not observed by any node", a)}
		}
	}
	return nil
}

// admit validates a mutation, applies it to the desired set, and
// enqueues the operation — the synchronous half of the state machine.
// t is nil for removals.
func (s *Server) admit(kind, name string, t *remo.Task) (*operation, *apiError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining()
	}
	prev, exists := s.desired[name]
	switch kind {
	case "add":
		if exists {
			return nil, &apiError{http.StatusConflict, codeDuplicateTask,
				fmt.Sprintf("task %q already exists", name)}
		}
	case "modify", "remove":
		if !exists {
			return nil, &apiError{http.StatusNotFound, codeUnknownTask,
				fmt.Sprintf("task %q does not exist", name)}
		}
	}
	if t != nil {
		if aerr := s.validateTaskLocked(*t); aerr != nil {
			return nil, aerr
		}
	}

	// Apply to the refcounts, check the budget, roll back on rejection.
	if exists {
		s.unrefTaskLocked(prev)
	}
	if t != nil {
		s.refTaskLocked(*t)
	}
	if err := s.planner.CheckAdmission(s.pairCount); err != nil {
		if t != nil {
			s.unrefTaskLocked(*t)
		}
		if exists {
			s.refTaskLocked(prev)
		}
		return nil, &apiError{http.StatusUnprocessableEntity, codeInfeasible, err.Error()}
	}
	if t != nil {
		s.desired[name] = t.Clone()
	} else {
		delete(s.desired, name)
	}

	op := s.ops.create(kind, name)
	select {
	case s.queue <- op:
	default:
		// Queue full: undo the desired mutation so state and record agree.
		if t != nil {
			s.unrefTaskLocked(*t)
			delete(s.desired, name)
		}
		if exists {
			s.refTaskLocked(prev)
			s.desired[name] = prev
		}
		s.ops.setStatus(op, OpFailed, errors.New("admission queue full"), ReplanSummary{})
		return nil, &apiError{http.StatusServiceUnavailable, codeOverloaded, "admission queue full"}
	}
	return op, nil
}

// respondAdmission is the shared tail of the three mutation handlers.
func (s *Server) respondAdmission(w http.ResponseWriter, start time.Time, op *operation, aerr *apiError) {
	s.ins.admission.Observe(time.Since(start).Seconds())
	if aerr != nil {
		s.ins.opsRejected.Inc()
		writeErr(w, aerr)
		return
	}
	s.ins.opsEnqueued.Inc()
	writeJSON(w, http.StatusAccepted, map[string]any{"operation": op.view(time.Now())})
}

func (s *Server) handleTaskCreate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var tw taskWire
	if aerr := s.decodeBody(w, r, &tw); aerr != nil {
		s.ins.opsRejected.Inc()
		writeErr(w, aerr)
		return
	}
	t := tw.task()
	op, aerr := s.admit("add", t.Name, &t)
	s.respondAdmission(w, start, op, aerr)
}

func (s *Server) handleTaskUpdate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	name := r.PathValue("name")
	var tw taskWire
	if aerr := s.decodeBody(w, r, &tw); aerr != nil {
		s.ins.opsRejected.Inc()
		writeErr(w, aerr)
		return
	}
	if tw.Name == "" {
		tw.Name = name
	}
	if tw.Name != name {
		s.ins.opsRejected.Inc()
		writeErr(w, &apiError{http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("body task name %q does not match path %q", tw.Name, name)})
		return
	}
	t := tw.task()
	op, aerr := s.admit("modify", name, &t)
	s.respondAdmission(w, start, op, aerr)
}

func (s *Server) handleTaskDelete(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	op, aerr := s.admit("remove", r.PathValue("name"), nil)
	s.respondAdmission(w, start, op, aerr)
}

func (s *Server) handleTaskList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]taskWire, 0, len(s.desired))
	for _, t := range s.desired {
		out = append(out, wireTask(t))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"tasks": out})
}

func (s *Server) handleTaskGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	t, ok := s.desired[name]
	s.mu.Unlock()
	if !ok {
		writeErr(w, &apiError{http.StatusNotFound, codeUnknownTask,
			fmt.Sprintf("task %q does not exist", name)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"task": wireTask(t)})
}

func (s *Server) handleOpGet(w http.ResponseWriter, r *http.Request) {
	op, ok := s.ops.get(r.PathValue("id"))
	if !ok {
		writeErr(w, &apiError{http.StatusNotFound, codeNotFound,
			fmt.Sprintf("operation %q not retained", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"operation": op.view(time.Now())})
}

func (s *Server) handleOpList(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if q := r.URL.Query().Get("limit"); q != "" {
		if n, err := strconv.Atoi(q); err == nil && n > 0 {
			limit = n
		}
	}
	ops := s.ops.recent(limit)
	now := time.Now()
	out := make([]OpView, 0, len(ops))
	for _, op := range ops {
		out = append(out, op.view(now))
	}
	writeJSON(w, http.StatusOK, map[string]any{"operations": out})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	plan := s.mon.Plan()
	type treeWire struct {
		Root   int   `json:"root"`
		Size   int   `json:"size"`
		Height int   `json:"height"`
		Attrs  []int `json:"attrs"`
	}
	trees := make([]treeWire, 0)
	for _, ti := range plan.Trees() {
		tw := treeWire{Root: int(ti.Root), Size: ti.Size, Height: ti.Height, Attrs: []int{}}
		for _, a := range ti.Attrs {
			tw.Attrs = append(tw.Attrs, int(a))
		}
		trees = append(trees, tw)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"fingerprint":      s.mon.Fingerprint(),
		"round":            s.mon.Round(),
		"demandedPairs":    plan.DemandedPairs(),
		"collectedPairs":   plan.CollectedPairs(),
		"percentCollected": plan.PercentCollected(),
		"totalCost":        plan.TotalCost(),
		"centralUsage":     plan.CentralUsage(),
		"trees":            trees,
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep := s.mon.Report()
	writeJSON(w, http.StatusOK, map[string]any{
		"rounds":            rep.Rounds,
		"demandedPairs":     rep.DemandedPairs,
		"coveredPairs":      rep.CoveredPairs,
		"percentCollected":  rep.PercentCollected,
		"avgPercentError":   rep.AvgPercentError,
		"avgStaleness":      rep.AvgStaleness,
		"messagesSent":      rep.MessagesSent,
		"messagesDropped":   rep.MessagesDropped,
		"valuesDelivered":   rep.ValuesDelivered,
		"valuesObserved":    rep.ValuesObserved,
		"valuesSuppressed":  rep.ValuesSuppressed,
		"failuresDetected":  rep.FailuresDetected,
		"nodesRecovered":    rep.NodesRecovered,
		"repairs":           len(rep.Repairs),
		"replans":           len(rep.Replans),
		"collectorRestarts": rep.CollectorRestarts,
		"shards":            rep.Shards,
	})
}

// handleState is the connect-time full sync: desired tasks, the plan in
// force, and the latest value of every collected pair.
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	tasks := make([]taskWire, 0, len(s.desired))
	for _, t := range s.desired {
		tasks = append(tasks, wireTask(t))
	}
	s.mu.Unlock()
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Name < tasks[j].Name })
	repo := s.mon.Store()
	values := make([]valueWire, 0)
	if repo != nil {
		for _, pr := range repo.Pairs() {
			if smp, ok := repo.Latest(pr); ok {
				values = append(values, valueWire{
					Node: int(pr.Node), Attr: int(pr.Attr), Round: smp.Round, Value: smp.Value,
				})
			}
		}
	}
	resp := map[string]any{
		"round":       s.mon.Round(),
		"fingerprint": s.mon.Fingerprint(),
		"tasks":       tasks,
		"values":      values,
	}
	// Region-labeled systems carry the WAN view: each region's label,
	// monitoring-node count, and live coverage percentage.
	sys := s.planner.System()
	if names := sys.Regions(); len(names) > 1 {
		type regionWire struct {
			Name     string  `json:"name"`
			Nodes    int     `json:"nodes"`
			Coverage float64 `json:"coverage"`
		}
		cov := s.mon.RegionCoverage()
		byRegion := sys.RegionNodes()
		regions := make([]regionWire, 0, len(names))
		for _, name := range names {
			regions = append(regions, regionWire{
				Name: name, Nodes: len(byRegion[name]), Coverage: cov[name],
			})
		}
		resp["regions"] = regions
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, key string, def int) (int, error) {
	q := r.URL.Query().Get(key)
	if q == "" {
		return def, nil
	}
	return strconv.Atoi(q)
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	node, err1 := queryInt(r, "node", -1)
	attr, err2 := queryInt(r, "attr", -1)
	from, err3 := queryInt(r, "from", 0)
	to, err4 := queryInt(r, "to", int(^uint(0)>>1))
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || node < 0 || attr < 0 {
		writeErr(w, &apiError{http.StatusBadRequest, codeBadRequest,
			"series requires integer node= and attr= (from=/to= optional)"})
		return
	}
	repo := s.mon.Store()
	pr := model.Pair{Node: model.NodeID(node), Attr: model.AttrID(attr)}
	samples := make([]valueWire, 0)
	if repo != nil {
		for _, smp := range repo.Window(pr, from, to) {
			samples = append(samples, valueWire{Node: node, Attr: attr, Round: smp.Round, Value: smp.Value})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"samples": samples})
}

// handleLatest is the delta read: every pair's newest sample at or
// after ?since= (default: everything).
func (s *Server) handleLatest(w http.ResponseWriter, r *http.Request) {
	since, err := queryInt(r, "since", 0)
	if err != nil {
		writeErr(w, &apiError{http.StatusBadRequest, codeBadRequest, "since= must be an integer"})
		return
	}
	repo := s.mon.Store()
	values := make([]valueWire, 0)
	if repo != nil {
		for _, pr := range repo.Pairs() {
			if smp, ok := repo.Latest(pr); ok && smp.Round >= since {
				values = append(values, valueWire{
					Node: int(pr.Node), Attr: int(pr.Attr), Round: smp.Round, Value: smp.Value,
				})
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"round": s.mon.Round(), "values": values})
}

// handleStream serves SSE: value, alert, and round events, filterable
// with ?kinds=value,alert,round.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var kinds []string
	if q := r.URL.Query().Get("kinds"); q != "" {
		kinds = strings.Split(q, ",")
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &apiError{http.StatusInternalServerError, codeBadRequest, "streaming unsupported"})
		return
	}
	sub := s.broker.subscribe(kinds)
	if sub == nil {
		writeErr(w, errDraining())
		return
	}
	defer s.broker.unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": stream open\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-sub.ch:
			if !open {
				return // broker closed: drain
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, ev.Data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleTriggerCreate(w http.ResponseWriter, r *http.Request) {
	var tw triggerWire
	if aerr := s.decodeBody(w, r, &tw); aerr != nil {
		writeErr(w, aerr)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		writeErr(w, errDraining())
		return
	}
	var cond remo.TriggerCondition
	switch tw.Cond {
	case "above":
		cond = remo.TriggerAbove
	case "below":
		cond = remo.TriggerBelow
	default:
		writeErr(w, &apiError{http.StatusUnprocessableEntity, codeBadTrigger,
			fmt.Sprintf("cond must be \"above\" or \"below\", got %q", tw.Cond)})
		return
	}
	trg := remo.Trigger{
		Name:      tw.Name,
		Attr:      remo.AttrID(tw.Attr),
		Node:      remo.NodeID(tw.Node),
		Cond:      cond,
		Threshold: tw.Threshold,
		Cooldown:  tw.Cooldown,
	}
	if err := s.proc.AddTrigger(trg); err != nil {
		if errors.Is(err, store.ErrDuplicateTrigger) {
			writeErr(w, &apiError{http.StatusConflict, codeDuplicateTrigger, err.Error()})
			return
		}
		writeErr(w, &apiError{http.StatusUnprocessableEntity, codeBadTrigger, err.Error()})
		return
	}
	s.triggers[tw.Name] = trg
	writeJSON(w, http.StatusCreated, map[string]any{"trigger": tw})
}

func (s *Server) handleTriggerDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		writeErr(w, errDraining())
		return
	}
	if _, ok := s.triggers[name]; !ok {
		writeErr(w, &apiError{http.StatusNotFound, codeNotFound,
			fmt.Sprintf("trigger %q does not exist", name)})
		return
	}
	delete(s.triggers, name)
	s.proc.RemoveTrigger(name)
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

func (s *Server) handleTriggerList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]triggerWire, 0, len(s.triggers))
	for _, trg := range s.triggers {
		cond := "above"
		if trg.Cond == remo.TriggerBelow {
			cond = "below"
		}
		out = append(out, triggerWire{
			Name: trg.Name, Attr: int(trg.Attr), Node: int(trg.Node),
			Cond: cond, Threshold: trg.Threshold, Cooldown: trg.Cooldown,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"triggers": out})
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	alerts := s.proc.Alerts()
	out := make([]alertJSON, 0, len(alerts))
	for _, a := range alerts {
		out = append(out, alertWire(a))
	}
	writeJSON(w, http.StatusOK, map[string]any{"alerts": out})
}
