package chaos

import (
	"testing"

	"remo/internal/cost"
	"remo/internal/model"
)

// regionCfg labels nodes 1-2 as r0, 3-4 as r1, 5-6 as r2 with the
// collector in r0.
func regionCfg() *Config {
	return &Config{
		Regions: map[model.NodeID]string{
			1: "r0", 2: "r0", 3: "r1", 4: "r1", 5: "r2", 6: "r2",
		},
		CentralRegion: "r0",
	}
}

func TestRegionPartitionDrop(t *testing.T) {
	c := regionCfg()
	c.RegionPartitions = map[string][]Window{"r1": {{From: 5, To: 10}}}
	if !c.Enabled() {
		t.Fatal("region partition should enable chaos")
	}
	cases := []struct {
		name     string
		from, to model.NodeID
		round    int
		drop     bool
	}{
		{"cross into partitioned region", 1, 3, 5, true},
		{"cross out of partitioned region", 3, 1, 7, true},
		{"heartbeat to central", 4, model.Central, 9, true},
		{"inside partitioned region", 3, 4, 7, false},
		{"unaffected regions", 1, 5, 7, false},
		{"before window", 1, 3, 4, false},
		{"after window", 1, 3, 10, false},
	}
	for _, tc := range cases {
		if got := c.Drop(tc.from, tc.to, tc.round, 0); got != tc.drop {
			t.Errorf("%s: Drop(%v->%v, round %d) = %v, want %v",
				tc.name, tc.from, tc.to, tc.round, got, tc.drop)
		}
	}
}

func TestLinkFlapDrop(t *testing.T) {
	c := regionCfg()
	// Key deliberately built in reversed order: NormLink must make
	// orientation irrelevant.
	c.LinkFlaps = map[RegionLink][]Window{NormLink("r1", "r0"): {{From: 3, To: 6}}}
	if !c.Enabled() {
		t.Fatal("link flap should enable chaos")
	}
	if !c.Drop(1, 3, 4, 0) || !c.Drop(3, 1, 4, 0) {
		t.Fatal("flapped link should drop both directions")
	}
	if !c.Drop(3, model.Central, 4, 0) {
		t.Fatal("flap must also cut r1's path to the r0 collector")
	}
	if c.Drop(1, 5, 4, 0) {
		t.Fatal("other links must survive a flap")
	}
	if c.Drop(3, 4, 4, 0) {
		t.Fatal("intra-region traffic must survive a flap")
	}
	if c.Drop(1, 3, 6, 0) {
		t.Fatal("link must recover when the window closes")
	}
}

func TestRegionScheduleNilSafe(t *testing.T) {
	var c *Config
	if c.RegionOf(1) != "" || c.RegionPartitioned("r0", 1) || c.LinkFlapped("a", "b", 1) {
		t.Fatal("nil config must inject nothing")
	}
	if c.Drop(1, 2, 0, 0) {
		t.Fatal("nil config must not drop")
	}
}

func TestLabelRegions(t *testing.T) {
	sys, err := model.NewSystem(100, cost.Default(), []model.Node{
		{ID: 1, Capacity: 10, Region: "east"},
		{ID: 2, Capacity: 10, Region: "west"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.CentralRegion = "east"
	c := &Config{}
	c.LabelRegions(sys)
	if c.RegionOf(2) != "west" || c.RegionOf(model.Central) != "east" {
		t.Fatalf("labels not copied: %+v central=%q", c.Regions, c.CentralRegion)
	}
}

func TestRollingUpgrade(t *testing.T) {
	members := []model.NodeID{5, 1, 3, 2, 4} // unsorted on purpose
	ws := RollingUpgrade(members, 0.4, 10, 3)
	if len(ws) != len(members) {
		t.Fatalf("schedule covers %d nodes, want %d", len(ws), len(members))
	}
	c := &Config{CrashWindows: ws}
	// Every member goes down exactly once, and never more than
	// ceil(0.4*5)=2 at a time.
	downRounds := make(map[model.NodeID]int)
	for round := 0; round < 30; round++ {
		down := 0
		for _, n := range members {
			if c.Crashed(n, round) {
				down++
				downRounds[n]++
			}
		}
		if down > 2 {
			t.Fatalf("round %d has %d nodes down, want <= 2", round, down)
		}
	}
	for _, n := range members {
		if downRounds[n] != 3 {
			t.Fatalf("node %v down for %d rounds, want 3", n, downRounds[n])
		}
	}
	// Waves are consecutive and non-overlapping: ids 1,2 then 3,4 then 5.
	if ws[1][0] != (Window{From: 10, To: 13}) || ws[3][0] != (Window{From: 13, To: 16}) ||
		ws[5][0] != (Window{From: 16, To: 19}) {
		t.Fatalf("unexpected wave layout: %v", ws)
	}
	// Deterministic: same inputs, same schedule.
	again := RollingUpgrade(members, 0.4, 10, 3)
	for n, w := range ws {
		if len(again[n]) != 1 || again[n][0] != w[0] {
			t.Fatalf("nondeterministic schedule for %v: %v vs %v", n, w, again[n])
		}
	}
	// Degenerate inputs yield no schedule.
	if RollingUpgrade(nil, 0.5, 1, 1) != nil || RollingUpgrade(members, 0, 1, 1) != nil ||
		RollingUpgrade(members, 0.5, 1, 0) != nil {
		t.Fatal("degenerate inputs should return nil")
	}
}

// TestRegionScheduleDeterministic extends the replay promise to the
// region-scoped rules: pure window membership, identical on every
// evaluation, independent of probabilistic seeds.
func TestRegionScheduleDeterministic(t *testing.T) {
	mk := func(seed uint64) *Config {
		c := regionCfg()
		c.Seed = seed
		c.RegionPartitions = map[string][]Window{"r2": {{From: 2, To: 4}}}
		c.LinkFlaps = map[RegionLink][]Window{NormLink("r0", "r1"): {{From: 6, To: 8}}}
		return c
	}
	if scheduleHash(mk(1)) != scheduleHash(mk(1)) {
		t.Fatal("identical region configs produced different schedules")
	}
	// Region windows are seed-independent by design.
	if scheduleHash(mk(1)) != scheduleHash(mk(2)) {
		t.Fatal("region windows must not depend on the probabilistic seed")
	}
}
