package chaos

import (
	"hash/fnv"
	"testing"

	"remo/internal/model"
)

// scheduleHash folds every drop/delay decision over a fixed grid of
// (link, round, seq) coordinates into one digest — a compact identity
// for the whole injection schedule of a config.
func scheduleHash(c *Config) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 8)
	put := func(v uint64) {
		buf = buf[:0]
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(v>>(8*i)))
		}
		_, _ = h.Write(buf)
	}
	for from := model.NodeID(1); from <= 8; from++ {
		for to := model.NodeID(0); to <= 8; to++ {
			for round := 0; round < 16; round++ {
				for seq := 0; seq < 4; seq++ {
					if c.Drop(from, to, round, seq) {
						put(1)
					} else {
						put(0)
					}
					put(uint64(c.Delay(from, to, round, seq)))
				}
			}
		}
	}
	return h.Sum64()
}

// TestScheduleDeterministic proves the chaos package's replay promise
// at the decision level: the same config produces the identical
// drop/delay schedule every time, and different seeds produce different
// schedules.
func TestScheduleDeterministic(t *testing.T) {
	mk := func(seed uint64) *Config {
		return &Config{DropProb: 0.2, DelayProb: 0.15, MaxDelayRounds: 3, Seed: seed}
	}
	if scheduleHash(mk(1)) != scheduleHash(mk(1)) {
		t.Fatal("identical configs produced different schedules")
	}
	if scheduleHash(mk(1)) == scheduleHash(mk(2)) {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestScheduleGolden locks the splitmix64-derived schedule itself: any
// change to the mixing constants or the hash-to-decision mapping breaks
// replayability of recorded chaos runs, so it must fail this test and
// be made deliberately.
func TestScheduleGolden(t *testing.T) {
	const want = 0x6263cbd60105a1a7 // recorded at the schedule's introduction
	got := scheduleHash(&Config{DropProb: 0.2, DelayProb: 0.15, MaxDelayRounds: 3, Seed: 99})
	if got != want {
		t.Fatalf("chaos schedule changed: hash %#016x, recorded %#016x — "+
			"this breaks replay of recorded runs; update the golden only on purpose", got, want)
	}
}
