package chaos

import (
	"testing"

	"remo/internal/model"
)

func TestChaosNilConfigIsInert(t *testing.T) {
	var c *Config
	if c.Enabled() {
		t.Fatal("nil config enabled")
	}
	if c.Crashed(1, 5) || c.JustCrashed(1, 5) {
		t.Fatal("nil config crashed a node")
	}
	if c.Drop(1, 2, 3, 4) {
		t.Fatal("nil config dropped a message")
	}
	if c.Delay(1, 2, 3, 4) != 0 {
		t.Fatal("nil config delayed a message")
	}
}

func TestChaosCrashRecoverSchedule(t *testing.T) {
	c := &Config{
		CrashAt:   map[model.NodeID]int{1: 5, 2: 3},
		RecoverAt: map[model.NodeID]int{1: 8, 2: 2}, // node 2's recovery precedes its crash: ignored
	}
	if c.Crashed(1, 4) {
		t.Fatal("node 1 down before its crash round")
	}
	for r := 5; r < 8; r++ {
		if !c.Crashed(1, r) {
			t.Fatalf("node 1 up at round %d", r)
		}
	}
	if c.Crashed(1, 8) {
		t.Fatal("node 1 down after recovery")
	}
	if !c.JustCrashed(1, 5) || c.JustCrashed(1, 6) {
		t.Fatal("JustCrashed edge wrong")
	}
	if !c.Crashed(2, 10) {
		t.Fatal("node 2's bogus recovery (before crash) honored")
	}
	if c.Crashed(3, 0) {
		t.Fatal("unscheduled node crashed")
	}
}

func TestChaosDropEveryLegacyParity(t *testing.T) {
	// The legacy emulation dropped when (sent+round) % DropEvery == 0.
	c := &Config{DropEvery: 3}
	for round := 0; round < 6; round++ {
		for seq := 1; seq < 7; seq++ {
			want := (seq+round)%3 == 0
			if got := c.Drop(1, 2, round, seq); got != want {
				t.Fatalf("Drop(round=%d, seq=%d) = %v, want %v", round, seq, got, want)
			}
		}
	}
}

func TestChaosDropProbDeterministicAndCalibrated(t *testing.T) {
	c := &Config{DropProb: 0.2, Seed: 7}
	dropped := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		first := c.Drop(1, 2, i, 1)
		if second := c.Drop(1, 2, i, 1); second != first {
			t.Fatal("drop decision not deterministic")
		}
		if first {
			dropped++
		}
	}
	rate := float64(dropped) / trials
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("empirical drop rate %.3f, want ~0.2", rate)
	}
}

func TestChaosLinkDropOverride(t *testing.T) {
	c := &Config{
		DropProb:     0,
		LinkDropProb: map[Link]float64{{From: 1, To: 2}: 1},
	}
	if !c.Drop(1, 2, 0, 1) {
		t.Fatal("fully lossy link delivered")
	}
	if c.Drop(2, 1, 0, 1) {
		t.Fatal("reverse link inherited the override")
	}
}

func TestChaosDelayBounds(t *testing.T) {
	c := &Config{DelayProb: 1, MaxDelayRounds: 3, Seed: 11}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		d := c.Delay(1, 2, i, 1)
		if d < 1 || d > 3 {
			t.Fatalf("delay %d out of [1,3]", d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatalf("delay never varied: %v", seen)
	}
	one := &Config{DelayProb: 1}
	if d := one.Delay(1, 2, 0, 1); d != 1 {
		t.Fatalf("default delay = %d, want 1", d)
	}
}
