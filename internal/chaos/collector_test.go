package chaos

import (
	"testing"

	"remo/internal/model"
)

func TestCollectorCrashAtFiresOnEdge(t *testing.T) {
	c := &Config{CollectorCrashAt: 7}
	for round := 0; round < 20; round++ {
		want := round == 7
		if got := c.CollectorCrash(round); got != want {
			t.Fatalf("round %d: crash = %v, want %v", round, got, want)
		}
	}
	var nilCfg *Config
	if nilCfg.CollectorCrash(7) {
		t.Fatal("nil config crashed the collector")
	}
	if (&Config{}).CollectorCrash(0) {
		t.Fatal("zero config crashed the collector at round 0")
	}
}

func TestCollectorCrashProbDeterministic(t *testing.T) {
	a := &Config{CollectorCrashProb: 0.2, Seed: 42}
	b := &Config{CollectorCrashProb: 0.2, Seed: 42}
	other := &Config{CollectorCrashProb: 0.2, Seed: 43}

	fired, differs := 0, false
	for round := 0; round < 200; round++ {
		av, bv := a.CollectorCrash(round), b.CollectorCrash(round)
		if av != bv {
			t.Fatalf("round %d: same seed disagrees (%v vs %v)", round, av, bv)
		}
		if av {
			fired++
		}
		if av != other.CollectorCrash(round) {
			differs = true
		}
	}
	// ~20% of 200 rounds should fire; accept a generous band.
	if fired < 10 || fired > 90 {
		t.Fatalf("prob 0.2 fired %d/200 rounds", fired)
	}
	if !differs {
		t.Fatal("different seeds produced identical crash schedules")
	}
}

func TestCrashWindowsFlapSchedule(t *testing.T) {
	n := model.NodeID(3)
	c := &Config{CrashWindows: map[model.NodeID][]Window{
		n: {{From: 5, To: 8}, {From: 12, To: 14}},
	}}
	downs := map[int]bool{5: true, 6: true, 7: true, 12: true, 13: true}
	for round := 0; round < 20; round++ {
		if got := c.Crashed(n, round); got != downs[round] {
			t.Fatalf("round %d: crashed = %v, want %v", round, got, downs[round])
		}
	}
	if c.Crashed(model.NodeID(4), 6) {
		t.Fatal("window crashed an unscheduled node")
	}
	if !c.Enabled() {
		t.Fatal("windows alone do not enable the config")
	}
}

func TestCrashWindowsComposeWithCrashAt(t *testing.T) {
	n := model.NodeID(1)
	c := &Config{
		CrashAt:      map[model.NodeID]int{n: 10},
		RecoverAt:    map[model.NodeID]int{n: 12},
		CrashWindows: map[model.NodeID][]Window{n: {{From: 2, To: 4}}},
	}
	// Down when either schedule says so: window [2,4) and CrashAt 10
	// until RecoverAt 12.
	for round, want := range map[int]bool{
		1: false, 2: true, 3: true, 4: false,
		9: false, 10: true, 11: true, 12: false,
	} {
		if got := c.Crashed(n, round); got != want {
			t.Fatalf("round %d: crashed = %v, want %v", round, got, want)
		}
	}
}

func TestShardCrashAtFiresOnEdge(t *testing.T) {
	cfg := &Config{ShardCrashAt: map[int]int{1: 5, 3: 9}}
	if !cfg.Enabled() {
		t.Fatal("shard schedule should enable chaos")
	}
	for r := 0; r < 12; r++ {
		want1 := r == 5
		want3 := r == 9
		if got := cfg.ShardCrash(1, r); got != want1 {
			t.Fatalf("ShardCrash(1, %d) = %v, want %v", r, got, want1)
		}
		if got := cfg.ShardCrash(3, r); got != want3 {
			t.Fatalf("ShardCrash(3, %d) = %v, want %v", r, got, want3)
		}
		if cfg.ShardCrash(0, r) || cfg.ShardCrash(2, r) {
			t.Fatalf("unscheduled shard crashed at round %d", r)
		}
	}
	var nilCfg *Config
	if nilCfg.ShardCrash(1, 5) || nilCfg.ShardWindowDown(1, 5) {
		t.Fatal("nil config must inject nothing")
	}
}

func TestShardWindowsFlapSchedule(t *testing.T) {
	cfg := &Config{ShardWindows: map[int][]Window{
		2: {{From: 4, To: 6}, {From: 10, To: 11}},
	}}
	if !cfg.Enabled() {
		t.Fatal("shard windows should enable chaos")
	}
	down := map[int]bool{4: true, 5: true, 10: true}
	for r := 0; r < 14; r++ {
		if got := cfg.ShardWindowDown(2, r); got != down[r] {
			t.Fatalf("ShardWindowDown(2, %d) = %v, want %v", r, got, down[r])
		}
		if cfg.ShardWindowDown(0, r) {
			t.Fatalf("unscheduled shard down at round %d", r)
		}
	}
}
