// Package chaos unifies fault injection for the emulated deployment:
// crash/recover schedules, deterministic and probabilistic message loss,
// and message delay. One Config drives every transport because injection
// happens in the emulation layer, before messages reach the wire — the
// same schedule reproduces identically over the memory and TCP overlays.
//
// All probabilistic decisions are pure functions of (Seed, link, round,
// sequence), so chaos runs are replayable: the same configuration always
// kills the same messages in the same rounds.
package chaos

import "remo/internal/model"

// Link identifies a directed overlay link.
type Link struct {
	From, To model.NodeID
}

// Window is one half-open round interval [From, To) during which a node
// is down. Windows model repeated crash/recover cycles (flapping) that
// the single CrashAt/RecoverAt pair cannot express.
type Window struct {
	From, To int
}

// Config schedules fault injection for one emulated session. The zero
// value (and a nil *Config) injects nothing; every method is nil-safe.
type Config struct {
	// CrashAt kills node n at the start of round CrashAt[n]: it stops
	// sending (data and heartbeats), discards received messages, and
	// loses its relay state.
	CrashAt map[model.NodeID]int
	// RecoverAt revives node n at the start of round RecoverAt[n]
	// (ignored unless it is after the node's crash round). Without an
	// entry, a crashed node stays down forever.
	RecoverAt map[model.NodeID]int
	// CrashWindows schedules repeated crash/recover cycles: node n is
	// down during every listed [From, To) window. Windows compose with
	// CrashAt/RecoverAt (a node is down when either schedule says so).
	CrashWindows map[model.NodeID][]Window
	// CollectorCrashAt kills the central collector at the start of the
	// given round (0 = never). The collector stays down until the
	// session restarts it (Monitor.Resume); leaves keep running and
	// buffer or shed their outgoing values in the meantime.
	CollectorCrashAt int
	// CollectorCrashProb crashes the collector in any given round with
	// this probability in [0,1), decided by the same splitmix64 hash as
	// message loss — deterministic in Seed. The first round whose hash
	// fires is the crash round.
	CollectorCrashProb float64
	// ShardCrashAt kills collector shard s at the start of round
	// ShardCrashAt[s] (sharded sessions only). Like CollectorCrashAt the
	// crash latches: the shard stays down until the session explicitly
	// resumes it from its journal, so shard-crash schedules require a
	// durable session. Ignored when the session runs a single collector.
	ShardCrashAt map[int]int
	// ShardWindows schedules repeated shard crash/recover cycles: shard
	// s is down during every listed [From, To) window and cold-resumes
	// (views wiped, journal not consulted) when a window closes — the
	// flapping schedule that exercises re-dispatch and rebalance without
	// requiring per-shard journals.
	ShardWindows map[int][]Window
	// Regions labels nodes with their WAN region for the region-scoped
	// schedules (RegionPartitions, LinkFlaps). Populate it from a
	// labeled system with LabelRegions; unlabeled nodes share the empty
	// default region.
	Regions map[model.NodeID]string
	// CentralRegion is the region hosting the collector tier (central
	// node and shards). Empty means the default region.
	CentralRegion string
	// RegionPartitions cuts an entire region off from the rest of the
	// overlay during each listed [From, To) window: every message with
	// exactly one endpoint inside the partitioned region is dropped,
	// including heartbeats — the failure detector sees the whole region
	// go dark at once. Intra-region traffic survives.
	RegionPartitions map[string][]Window
	// LinkFlaps takes one named inter-region link down during each
	// listed [From, To) window: messages whose endpoint regions match
	// the link (in either direction) are dropped. Key links through
	// NormLink.
	LinkFlaps map[RegionLink][]Window
	// DropEvery drops every k-th message per sender (0 disables) — the
	// legacy deterministic loss model, kept for reproducibility of older
	// experiments.
	DropEvery int
	// DropProb drops each message with this probability in [0,1).
	DropProb float64
	// LinkDropProb overrides DropProb on specific directed links,
	// modeling individually lossy paths.
	LinkDropProb map[Link]float64
	// DelayProb delays each surviving message with this probability in
	// [0,1); delayed messages arrive DelayRounds (default 1) collection
	// rounds late instead of being lost.
	DelayProb float64
	// MaxDelayRounds bounds the injected delay; delays are uniform in
	// [1, MaxDelayRounds] (default 1, i.e. always one round).
	MaxDelayRounds int
	// Seed decorrelates the probabilistic decisions between runs.
	Seed uint64
}

// Enabled reports whether the config injects any fault at all.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return len(c.CrashAt) > 0 || len(c.CrashWindows) > 0 || c.DropEvery > 0 ||
		c.DropProb > 0 || len(c.LinkDropProb) > 0 || c.DelayProb > 0 ||
		c.CollectorCrashAt > 0 || c.CollectorCrashProb > 0 ||
		len(c.ShardCrashAt) > 0 || len(c.ShardWindows) > 0 ||
		len(c.RegionPartitions) > 0 || len(c.LinkFlaps) > 0
}

// CollectorCrash reports whether the collector crashes at the start of
// the given round: either the deterministic CollectorCrashAt round, or
// the first round whose seeded hash clears CollectorCrashProb. The
// emulation machine latches the first firing; a restarted collector is
// only re-crashed by the probabilistic schedule.
func (c *Config) CollectorCrash(round int) bool {
	if c == nil {
		return false
	}
	if c.CollectorCrashAt > 0 && round == c.CollectorCrashAt {
		return true
	}
	if c.CollectorCrashProb <= 0 {
		return false
	}
	return unit(c.Seed, 0xC011, uint64(round)) < c.CollectorCrashProb
}

// ShardCrash reports whether collector shard s crashes at the start of
// the given round per the latched ShardCrashAt schedule. The emulation
// machine latches the firing; only an explicit per-shard resume brings
// the shard back.
func (c *Config) ShardCrash(s, round int) bool {
	if c == nil {
		return false
	}
	at, ok := c.ShardCrashAt[s]
	return ok && at > 0 && round == at
}

// ShardWindowDown reports whether shard s is inside one of its flap
// windows during the given round.
func (c *Config) ShardWindowDown(s, round int) bool {
	if c == nil {
		return false
	}
	for _, w := range c.ShardWindows[s] {
		if round >= w.From && round < w.To {
			return true
		}
	}
	return false
}

// Crashed reports whether node n is down during the given round per the
// crash/recover schedule (CrashAt/RecoverAt or any crash window).
func (c *Config) Crashed(n model.NodeID, round int) bool {
	if c == nil {
		return false
	}
	for _, w := range c.CrashWindows[n] {
		if round >= w.From && round < w.To {
			return true
		}
	}
	if len(c.CrashAt) == 0 {
		return false
	}
	at, ok := c.CrashAt[n]
	if !ok || round < at {
		return false
	}
	if rec, ok := c.RecoverAt[n]; ok && rec > at && round >= rec {
		return false
	}
	return true
}

// JustCrashed reports whether round is the first round node n is down —
// the edge the emulation traces as a NodeDead event.
func (c *Config) JustCrashed(n model.NodeID, round int) bool {
	return c.Crashed(n, round) && !c.Crashed(n, round-1)
}

// Drop decides whether the seq-th message from 'from' in the given round
// is lost on the wire. seq is the sender's running message counter; the
// legacy DropEvery rule is (seq+round) % DropEvery == 0, preserved
// bit-for-bit from the pre-chaos emulation.
func (c *Config) Drop(from, to model.NodeID, round, seq int) bool {
	if c == nil {
		return false
	}
	if c.DropEvery > 0 && (seq+round)%c.DropEvery == 0 {
		return true
	}
	if c.regionCut(from, to, round) {
		return true
	}
	p := c.DropProb
	if lp, ok := c.LinkDropProb[Link{From: from, To: to}]; ok {
		p = lp
	}
	if p <= 0 {
		return false
	}
	return unit(c.Seed, 0xD709, uint64(from), uint64(to), uint64(round), uint64(seq)) < p
}

// Delay returns how many rounds late the seq-th message from 'from'
// should arrive (0 = on time).
func (c *Config) Delay(from, to model.NodeID, round, seq int) int {
	if c == nil || c.DelayProb <= 0 {
		return 0
	}
	if unit(c.Seed, 0xDE1A, uint64(from), uint64(to), uint64(round), uint64(seq)) >= c.DelayProb {
		return 0
	}
	max := c.MaxDelayRounds
	if max <= 1 {
		return 1
	}
	return 1 + int(mix(c.Seed, 0xDE1B, uint64(from), uint64(to), uint64(round), uint64(seq))%uint64(max))
}

// unit hashes the inputs to a float in [0, 1).
func unit(vals ...uint64) float64 {
	return float64(mix(vals...)>>11) / float64(1<<53)
}

// mix is a splitmix64-style hash combining the inputs.
func mix(vals ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vals {
		h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
	}
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}
