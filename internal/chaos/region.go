package chaos

import (
	"math"

	"remo/internal/model"
)

// RegionLink identifies an undirected inter-region link by its region
// labels. Construct keys through NormLink so the orientation never
// matters.
type RegionLink struct {
	A, B string
}

// NormLink normalizes an undirected region pair into a RegionLink key.
func NormLink(a, b string) RegionLink {
	if b < a {
		a, b = b, a
	}
	return RegionLink{A: a, B: b}
}

// LabelRegions copies a system's region labels (node regions plus the
// collector tier's region) into the config so the region-scoped
// schedules know which links cross which domains.
func (c *Config) LabelRegions(sys *model.System) {
	if c == nil || sys == nil {
		return
	}
	if c.Regions == nil {
		c.Regions = make(map[model.NodeID]string, len(sys.Nodes))
	}
	for _, n := range sys.Nodes {
		c.Regions[n.ID] = n.Region
	}
	c.CentralRegion = sys.CentralRegion
}

// RegionOf returns the configured region of an endpoint: the collector
// tier's CentralRegion for the central id, the node's label otherwise
// (unlabeled nodes share the empty default region).
func (c *Config) RegionOf(n model.NodeID) string {
	if c == nil {
		return ""
	}
	if n.IsCentral() {
		return c.CentralRegion
	}
	return c.Regions[n]
}

// RegionPartitioned reports whether region r is cut off from the rest of
// the overlay during the given round.
func (c *Config) RegionPartitioned(r string, round int) bool {
	if c == nil {
		return false
	}
	for _, w := range c.RegionPartitions[r] {
		if round >= w.From && round < w.To {
			return true
		}
	}
	return false
}

// LinkFlapped reports whether the undirected inter-region link between
// ra and rb is down during the given round. Same-region traffic never
// crosses a link and is never flapped.
func (c *Config) LinkFlapped(ra, rb string, round int) bool {
	if c == nil || ra == rb {
		return false
	}
	for _, w := range c.LinkFlaps[NormLink(ra, rb)] {
		if round >= w.From && round < w.To {
			return true
		}
	}
	return false
}

// regionCut applies the region-scoped drop rules to one concrete
// message: traffic inside a region always survives; traffic crossing a
// region boundary dies when either endpoint's region is partitioned or
// when the specific inter-region link is flapped down. Pure window
// membership — no hashing — so the schedule replays identically over
// the memory and TCP overlays.
func (c *Config) regionCut(from, to model.NodeID, round int) bool {
	if len(c.RegionPartitions) == 0 && len(c.LinkFlaps) == 0 {
		return false
	}
	rf, rt := c.RegionOf(from), c.RegionOf(to)
	if rf == rt {
		return false
	}
	if c.RegionPartitioned(rf, round) || c.RegionPartitioned(rt, round) {
		return true
	}
	return c.LinkFlapped(rf, rt, round)
}

// RollingUpgrade builds a CrashWindows schedule that takes the given
// fraction of members down at a time in consecutive non-overlapping
// waves: wave w covers rounds [start + w·waveRounds, start +
// (w+1)·waveRounds). Members are sorted by id and chunked
// deterministically, so the same inputs always produce the same
// schedule. Returns nil when the inputs cannot form a wave.
func RollingUpgrade(members []model.NodeID, fraction float64, start, waveRounds int) map[model.NodeID][]Window {
	if len(members) == 0 || fraction <= 0 || waveRounds <= 0 {
		return nil
	}
	if fraction > 1 {
		fraction = 1
	}
	ids := append([]model.NodeID(nil), members...)
	model.SortNodes(ids)
	waves := int(math.Ceil(1/fraction - 1e-9))
	if waves < 1 {
		waves = 1
	}
	perWave := (len(ids) + waves - 1) / waves
	out := make(map[model.NodeID][]Window, len(ids))
	for i, n := range ids {
		w := i / perWave
		from := start + w*waveRounds
		out[n] = append(out[n], Window{From: from, To: from + waveRounds})
	}
	return out
}
