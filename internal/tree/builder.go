// Package tree implements REMO's resource-constrained collection tree
// construction schemes.
//
// Given a set of participant nodes, each with a (weighted) number of
// local values to report and an available capacity for this tree, a
// builder produces a collection tree that includes as many nodes as
// possible without violating any node's capacity, under the cost model
// cost(msg) = C + a·x.
//
// Four schemes are provided, matching §3.2 and §7 of the paper:
//
//   - STAR: grows breadth-first (bushy trees, minimal relay cost, heavy
//     per-message overhead at low-level nodes).
//   - CHAIN: grows depth-first (balanced load, maximal relay cost).
//   - MAX_AVB: attaches to the node with the most available capacity
//     (the TMON heuristic, Kashyap et al.).
//   - ADAPTIVE: REMO's construct/adjust iteration that starts STAR-like
//     and relieves congested nodes by moving branches deeper, trading
//     relay cost for per-message overhead.
package tree

import (
	"math"

	"remo/internal/agg"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
)

// Scheme names a tree construction algorithm.
type Scheme string

// Available schemes.
const (
	Star     Scheme = "STAR"
	Chain    Scheme = "CHAIN"
	MaxAvb   Scheme = "MAX_AVB"
	Adaptive Scheme = "ADAPTIVE"
)

// Context carries everything a builder needs to construct one tree.
type Context struct {
	// Sys provides the cost model (capacities are superseded by Avail,
	// which reflects the planner's per-tree allocation decision).
	Sys *model.System
	// Demand is the deduplicated monitoring workload.
	Demand *task.Demand
	// Spec is the in-network aggregation specification (nil = holistic).
	Spec *agg.Spec
	// Attrs is the attribute set the tree delivers.
	Attrs model.AttrSet
	// Nodes are the participants to place (nodes demanding at least one
	// attribute of Attrs).
	Nodes []model.NodeID
	// Avail is the capacity each participant may spend on this tree.
	Avail map[model.NodeID]float64
	// CentralAvail is the central collector's remaining capacity.
	CentralAvail float64
	// LocalWeights optionally pre-computes each participant's total
	// local demand weight for Attrs (a planner-level cache; builders
	// fall back to querying Demand).
	LocalWeights map[model.NodeID]float64
}

// Result is the outcome of one tree construction.
type Result struct {
	// Tree is the constructed collection tree (possibly empty).
	Tree *plan.Tree
	// Used is each placed node's capacity consumption in this tree.
	Used map[model.NodeID]float64
	// CentralUsed is the receive cost charged to the central collector.
	CentralUsed float64
	// Excluded are participants that could not be placed without
	// violating a capacity constraint.
	Excluded []model.NodeID
}

// Fingerprint returns a 64-bit digest of the whole build outcome: the
// constructed tree's structure plus every capacity charge (per-node
// usage quantized to 1e-9 cost units, the central charge, and the
// excluded set). Two builds with equal fingerprints are
// interchangeable, which is what the planner's cross-evaluation
// tree-build memo relies on and what determinism tests assert without
// comparing trees edge by edge.
func (r Result) Fingerprint() uint64 {
	const prime64 = 1099511628211
	var h uint64 = 14695981039346656037
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	if r.Tree != nil {
		mix(r.Tree.Fingerprint())
	}
	ids := make([]model.NodeID, 0, len(r.Used))
	for n := range r.Used {
		ids = append(ids, n)
	}
	model.SortNodes(ids)
	for _, n := range ids {
		mix(uint64(n))
		mix(uint64(int64(math.Round(r.Used[n] * 1e9))))
	}
	mix(uint64(int64(math.Round(r.CentralUsed * 1e9))))
	for _, n := range r.Excluded {
		mix(uint64(n))
	}
	return h
}

// Builder constructs one collection tree.
type Builder interface {
	// Scheme returns the builder's scheme name.
	Scheme() Scheme
	// Build constructs a tree for ctx.
	Build(ctx Context) Result
}

// New returns the builder for scheme. ADAPTIVE uses the optimized
// adjusting procedure (branch-based reattaching + subtree-only searching);
// use NewAdaptive for explicit control. Unknown schemes fall back to
// ADAPTIVE.
func New(scheme Scheme) Builder {
	switch scheme {
	case Star:
		return simpleBuilder{scheme: Star, pick: pickLowestHeight}
	case Chain:
		return simpleBuilder{scheme: Chain, pick: pickHighestHeight}
	case MaxAvb:
		return simpleBuilder{scheme: MaxAvb, pick: pickMaxAvailable}
	case Adaptive:
		return NewAdaptive(Opts{BranchReattach: true, SubtreeOnly: true})
	default:
		return NewAdaptive(Opts{BranchReattach: true, SubtreeOnly: true})
	}
}

// Schemes lists all scheme names in presentation order.
func Schemes() []Scheme {
	return []Scheme{Star, Chain, MaxAvb, Adaptive}
}
