package tree

import (
	"math/rand"
	"testing"

	"remo/internal/agg"
	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/task"
)

// TestRandomizedInvariantsWithFunnels fuzzes all builders over random
// systems, demands AND aggregation specs, cross-checking the builders'
// incremental bookkeeping against a full recomputation.
func TestRandomizedInvariantsWithFunnels(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := []agg.Kind{agg.Holistic, agg.Sum, agg.Max, agg.TopK, agg.Count}
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(16)
		attrs := []model.AttrID{1, 2, 3, 4}
		spec := agg.NewSpec()
		for _, a := range attrs {
			kind := kinds[rng.Intn(len(kinds))]
			if kind == agg.TopK {
				spec.SetTopK(a, 1+rng.Intn(4))
			} else {
				spec.SetKind(a, kind)
			}
		}

		nodes := make([]model.Node, n)
		d := task.NewDemand()
		avail := make(map[model.NodeID]float64, n)
		for i := range nodes {
			id := model.NodeID(i + 1)
			capacity := 20 + rng.Float64()*70
			nodes[i] = model.Node{ID: id, Capacity: capacity, Attrs: attrs}
			avail[id] = capacity
			for _, a := range attrs {
				if rng.Intn(3) > 0 {
					// Mixed integral and piggyback weights.
					w := 1.0
					if rng.Intn(4) == 0 {
						w = 0.5
					}
					d.Set(id, a, w)
				}
			}
			if d.AttrsOf(id).Empty() {
				d.Set(id, attrs[0], 1)
			}
		}
		sys, err := model.NewSystem(300+rng.Float64()*700,
			cost.Model{PerMessage: 2 + rng.Float64()*30, PerValue: 1}, nodes)
		if err != nil {
			t.Fatal(err)
		}
		set := model.NewAttrSet(attrs...)
		ctx := Context{
			Sys:          sys,
			Demand:       d,
			Spec:         spec,
			Attrs:        set,
			Nodes:        d.Participants(set),
			Avail:        avail,
			CentralAvail: sys.CentralCapacity,
		}
		for _, s := range Schemes() {
			r := New(s).Build(ctx)
			checkResult(t, ctx, r)
		}
		// Both adjusting-variant extremes must also hold the invariants.
		for _, opts := range []Opts{{}, {BranchReattach: true, SubtreeOnly: true}} {
			r := NewAdaptive(opts).Build(ctx)
			checkResult(t, ctx, r)
		}
	}
}

// TestAdaptiveNeverBelowStar checks a dominance property on shared
// instances: the construct/adjust iteration starts from STAR's strategy,
// so it must never place fewer nodes than STAR.
func TestAdaptiveNeverBelowStar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(25)
		capacity := 25 + rng.Float64()*60
		central := 300 + rng.Float64()*700
		ctx, _, _ := env(t, n, capacity, central)
		star := New(Star).Build(ctx)
		ctx2, _, _ := env(t, n, capacity, central)
		adaptive := New(Adaptive).Build(ctx2)
		if adaptive.Tree.Size() < star.Tree.Size() {
			t.Fatalf("trial %d (n=%d cap=%.1f): ADAPTIVE %d < STAR %d",
				trial, n, capacity, adaptive.Tree.Size(), star.Tree.Size())
		}
	}
}
