package tree

import (
	"math/rand"
	"testing"

	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
	"remo/internal/workload"
)

// distEnv builds the standard single-attribute environment with a
// distance function installed.
func distEnv(t *testing.T, n int, capacity float64, dist func(a, b model.NodeID) float64) Context {
	t.Helper()
	nodes := make([]model.Node, n)
	for i := range nodes {
		nodes[i] = model.Node{ID: model.NodeID(i + 1), Capacity: capacity, Attrs: []model.AttrID{1}}
	}
	sys, err := model.NewSystem(1e6, cost.Model{PerMessage: 10, PerValue: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	sys.Distance = dist
	d := task.NewDemand()
	avail := make(map[model.NodeID]float64, n)
	for _, id := range sys.NodeIDs() {
		d.Set(id, 1, 1)
		avail[id] = capacity
	}
	return Context{
		Sys:          sys,
		Demand:       d,
		Attrs:        model.NewAttrSet(1),
		Nodes:        sys.NodeIDs(),
		Avail:        avail,
		CentralAvail: 1e6,
	}
}

func TestDistanceScaledChainCosts(t *testing.T) {
	// Uniform distance factor 2: every send cost doubles, receive costs
	// are unchanged. A chain 1<-2 (C=10, a=1): n2's send = 2·11 = 22,
	// n1 receives 11 and sends 2·12 = 24, so usage(n1) = 35.
	ctx := distEnv(t, 2, 100, func(a, b model.NodeID) float64 { return 2 })
	r := New(Chain).Build(ctx)
	checkResult(t, ctx, r)
	if r.Tree.Size() != 2 {
		t.Fatalf("placed %d, want 2", r.Tree.Size())
	}
	st := plan.ComputeTreeStats(r.Tree, ctx.Demand, ctx.Sys, nil)
	if st.Usage[2] != 22 {
		t.Fatalf("usage(n2) = %v, want 22", st.Usage[2])
	}
	if st.Usage[1] != 35 {
		t.Fatalf("usage(n1) = %v, want 35", st.Usage[1])
	}
	// The collector still pays the endpoint cost.
	if st.RootSend != 12 {
		t.Fatalf("RootSend = %v, want 12", st.RootSend)
	}
}

func TestDistanceLimitsFarAttachments(t *testing.T) {
	// Two racks of 3; cross-rack factor 10. A node with capacity 115
	// can afford an intra-rack chain hop (send 11) but a cross-rack send
	// costs 110 <= 115 while relaying anything on top bursts it.
	dist := workload.RackDistance(3, 1, 10)
	ctx := distEnv(t, 6, 115, dist)
	r := New(Adaptive).Build(ctx)
	checkResult(t, ctx, r)
	// Whatever shape results, cross-rack members must not relay big
	// payloads: validation via checkResult is the core guarantee; also
	// ensure at least the first rack is fully placed.
	placed := 0
	for _, n := range []model.NodeID{1, 2, 3} {
		if r.Tree.Contains(n) {
			placed++
		}
	}
	if placed < 3 {
		t.Fatalf("first rack placed %d of 3", placed)
	}
}

func TestDistanceFuzzAllBuilders(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(14)
		factor := 1 + rng.Float64()*4
		rackSize := 1 + rng.Intn(4)
		dist := workload.RackDistance(rackSize, 1, factor)
		capacity := 40 + rng.Float64()*120
		ctx := distEnv(t, n, capacity, dist)
		for _, s := range Schemes() {
			r := New(s).Build(ctx)
			checkResult(t, ctx, r)
		}
	}
}

func TestNilAndBadDistanceDefaults(t *testing.T) {
	ctx := distEnv(t, 3, 100, nil)
	if got := ctx.Sys.Dist(1, 2); got != 1 {
		t.Fatalf("nil distance Dist = %v", got)
	}
	ctx2 := distEnv(t, 3, 100, func(a, b model.NodeID) float64 { return -5 })
	if got := ctx2.Sys.Dist(1, 2); got != 1 {
		t.Fatalf("negative distance Dist = %v, want clamp to 1", got)
	}
}
