package tree

import (
	"sort"

	"remo/internal/agg"
	"remo/internal/model"
	"remo/internal/plan"
)

// capEps absorbs floating-point accumulation error in capacity checks.
const capEps = 1e-9

// state is the mutable bookkeeping of one tree under construction. It
// tracks, per member, the weighted incoming and outgoing value counts per
// attribute dimension, the message cost u_i, and the node's total usage
// (send + receive) in this tree. All mutations keep the bookkeeping
// consistent incrementally, so feasibility checks are O(depth·dims).
//
// When no attribute of the tree uses a non-holistic funnel, the state
// collapses all attributes into a single dimension (out == in always
// holds for holistic collection, so only totals matter).
type state struct {
	ctx   Context
	tree  *plan.Tree
	attrs []model.AttrID // vector mode: one dimension per attribute
	// scalar is true when all attributes are holistic and a single
	// dimension suffices.
	scalar bool

	in  map[model.NodeID][]float64
	out map[model.NodeID][]float64
	// recv is the endpoint cost C + a·y of a member's message (what its
	// parent pays to receive it); u is the member's send cost — the
	// endpoint cost scaled by the distance factor to its parent.
	recv  map[model.NodeID]float64
	u     map[model.NodeID]float64
	usage map[model.NodeID]float64 // send + receive per member

	centralUsage float64

	// localW caches per-node local demand totals (scalar mode's hot
	// path); scratch is a reusable chain-change buffer.
	localW  map[model.NodeID]float64
	scratch []chainChange
}

func newState(ctx Context) *state {
	s := &state{
		ctx:    ctx,
		tree:   plan.NewTree(ctx.Attrs),
		in:     make(map[model.NodeID][]float64),
		out:    make(map[model.NodeID][]float64),
		recv:   make(map[model.NodeID]float64),
		u:      make(map[model.NodeID]float64),
		usage:  make(map[model.NodeID]float64),
		localW: make(map[model.NodeID]float64),
	}
	s.scalar = true
	for _, a := range ctx.Attrs.Attrs() {
		if ctx.Spec.KindOf(a) != agg.Holistic {
			s.scalar = false
			break
		}
	}
	if !s.scalar {
		s.attrs = ctx.Attrs.Attrs()
	}
	return s
}

// dims returns the number of tracked value dimensions.
func (s *state) dims() int {
	if s.scalar {
		return 1
	}
	return len(s.attrs)
}

// localVec returns node n's local demand vector for this tree.
func (s *state) localVec(n model.NodeID) []float64 {
	if s.scalar {
		return []float64{s.localWeight(n)}
	}
	v := make([]float64, len(s.attrs))
	for i, a := range s.attrs {
		v[i] = s.ctx.Demand.Weight(n, a)
	}
	return v
}

// localWeight returns (and caches) node n's total local demand weight.
func (s *state) localWeight(n model.NodeID) float64 {
	if s.ctx.LocalWeights != nil {
		return s.ctx.LocalWeights[n]
	}
	if w, ok := s.localW[n]; ok {
		return w
	}
	w := s.ctx.Demand.LocalWeight(n, s.ctx.Attrs)
	s.localW[n] = w
	return w
}

// funnel applies the per-attribute funnels to an incoming vector.
func (s *state) funnel(in []float64) []float64 {
	out := make([]float64, len(in))
	if s.scalar {
		copy(out, in)
		if out[0] < 0 {
			out[0] = 0
		}
		return out
	}
	for i, a := range s.attrs {
		out[i] = s.ctx.Spec.Out(a, in[i])
	}
	return out
}

func vecSum(v []float64) float64 {
	var sum float64
	for _, x := range v {
		sum += x
	}
	return sum
}

func vecAdd(dst, delta []float64) {
	for i := range dst {
		dst[i] += delta[i]
	}
}

func vecZero(v []float64) bool {
	for _, x := range v {
		if x > capEps || x < -capEps {
			return false
		}
	}
	return true
}

// msgCost returns C + a·y for a weighted value total y.
func (s *state) msgCost(y float64) float64 {
	return s.ctx.Sys.Cost.PerMessage + s.ctx.Sys.Cost.PerValue*y
}

func (s *state) avail(n model.NodeID) float64 {
	return s.ctx.Avail[n]
}

// totalUsage sums the tree's capacity consumption over all members and
// the collector — the quantity the adjusting procedure's relay-for-
// overhead trade must not inflate unprofitably.
func (s *state) totalUsage() float64 {
	var sum float64
	for _, u := range s.usage {
		sum += u
	}
	return sum + s.centralUsage
}

// chainChange is one recorded mutation along an ancestor chain. In
// scalar (all-holistic) mode dOut is nil and dOutS carries the constant
// out-delta instead.
type chainChange struct {
	node  model.NodeID
	dOut  []float64
	dOutS float64
	// payloadDelta is the endpoint-cost change of the node's message
	// (what its parent's receive cost changes by); sendDelta is the
	// distance-scaled change of the node's own send cost.
	payloadDelta float64
	sendDelta    float64
	usageDelta   float64
}

// chainDeltas computes the bookkeeping changes along the ancestor chain
// starting at parent p when a child message changes: childU is the delta
// in the receive cost at p (a full ±(C+a·y) for a new/removed child, or
// ±a·Δy for a growing/shrinking existing child), and deltaOut is the
// change in the child's outgoing value vector. It reports whether all
// affected nodes (and the central collector) stay within capacity;
// charges (positive deltas) are checked, refunds always fit.
func (s *state) chainDeltas(p model.NodeID, deltaOut []float64, childU float64) (bool, []chainChange, float64) {
	if s.scalar {
		return s.chainDeltasScalar(p, deltaOut[0], childU)
	}
	var changes []chainChange
	recvDelta := childU
	delta := deltaOut
	cur := p
	for !cur.IsCentral() {
		newIn := make([]float64, s.dims())
		copy(newIn, s.in[cur])
		vecAdd(newIn, delta)
		newOut := s.funnel(newIn)
		dOut := make([]float64, s.dims())
		for i := range dOut {
			dOut[i] = newOut[i] - s.out[cur][i]
		}
		parent, _ := s.tree.Parent(cur)
		payloadDelta := s.ctx.Sys.Cost.PerValue * vecSum(dOut)
		sendDelta := payloadDelta * s.ctx.Sys.Dist(cur, parent)
		usageDelta := recvDelta + sendDelta
		if usageDelta > capEps && s.usage[cur]+usageDelta > s.avail(cur)+capEps {
			return false, nil, 0
		}
		changes = append(changes, chainChange{
			node:         cur,
			dOut:         dOut,
			payloadDelta: payloadDelta,
			sendDelta:    sendDelta,
			usageDelta:   usageDelta,
		})
		if vecZero(dOut) {
			// A saturated funnel absorbed the change: nothing propagates
			// further up the chain.
			return true, changes, 0
		}
		recvDelta = payloadDelta
		delta = dOut
		cur = parent
	}
	// The central collector pays the root's receive delta.
	if recvDelta > capEps && s.centralUsage+recvDelta > s.ctx.CentralAvail+capEps {
		return false, nil, 0
	}
	return true, changes, recvDelta
}

// chainDeltasScalar is the allocation-free fast path for all-holistic
// trees: the funnel is the identity, so the out-delta is the same
// constant at every node on the chain.
func (s *state) chainDeltasScalar(p model.NodeID, delta, childU float64) (bool, []chainChange, float64) {
	changes := s.scratch[:0]
	recvDelta := childU
	payloadDelta := s.ctx.Sys.Cost.PerValue * delta
	cur := p
	for !cur.IsCentral() {
		parent, _ := s.tree.Parent(cur)
		sendDelta := payloadDelta * s.ctx.Sys.Dist(cur, parent)
		usageDelta := recvDelta + sendDelta
		if usageDelta > capEps && s.usage[cur]+usageDelta > s.avail(cur)+capEps {
			return false, nil, 0
		}
		changes = append(changes, chainChange{
			node:         cur,
			dOutS:        delta,
			payloadDelta: payloadDelta,
			sendDelta:    sendDelta,
			usageDelta:   usageDelta,
		})
		recvDelta = payloadDelta
		cur = parent
	}
	if recvDelta > capEps && s.centralUsage+recvDelta > s.ctx.CentralAvail+capEps {
		return false, nil, 0
	}
	s.scratch = changes[:0]
	return true, changes, recvDelta
}

// applyChain applies previously computed chain changes. The delta vectors
// recorded per node are the node's own out-delta; its in-delta is the
// previous node's out-delta (or attachDelta for the first node).
func (s *state) applyChain(changes []chainChange, firstInDelta []float64, centralDelta float64) {
	if s.scalar {
		// Identity funnel: every node's in- and out-delta equal the
		// first in-delta.
		delta := firstInDelta[0]
		for _, c := range changes {
			s.in[c.node][0] += delta
			s.out[c.node][0] += c.dOutS
			s.recv[c.node] += c.payloadDelta
			s.u[c.node] += c.sendDelta
			s.usage[c.node] += c.usageDelta
		}
		s.centralUsage += centralDelta
		return
	}
	inDelta := firstInDelta
	for _, c := range changes {
		vecAdd(s.in[c.node], inDelta)
		vecAdd(s.out[c.node], c.dOut)
		s.recv[c.node] += c.payloadDelta
		s.u[c.node] += c.sendDelta
		s.usage[c.node] += c.usageDelta
		inDelta = c.dOut
	}
	s.centralUsage += centralDelta
}

// canAttach reports whether node n can be attached under parent p (p may
// be model.Central only when the tree is empty).
func (s *state) canAttach(n, p model.NodeID) bool {
	lv := s.localVec(n)
	lout := s.funnel(lv)
	endpoint := s.msgCost(vecSum(lout))
	un := endpoint * s.ctx.Sys.Dist(n, p)
	if un > s.avail(n)+capEps {
		return false
	}
	if p.IsCentral() {
		return s.tree.Empty() && s.centralUsage+endpoint <= s.ctx.CentralAvail+capEps
	}
	ok, _, _ := s.chainDeltas(p, lout, endpoint)
	return ok
}

// attach adds node n under parent p, updating all bookkeeping. It
// reports false (with no side effects) if the attachment is infeasible.
func (s *state) attach(n, p model.NodeID) bool {
	lv := s.localVec(n)
	lout := s.funnel(lv)
	endpoint := s.msgCost(vecSum(lout))
	un := endpoint * s.ctx.Sys.Dist(n, p)
	if un > s.avail(n)+capEps {
		return false
	}
	if p.IsCentral() {
		if !s.tree.Empty() || s.centralUsage+endpoint > s.ctx.CentralAvail+capEps {
			return false
		}
		if err := s.tree.AddNode(n, p); err != nil {
			return false
		}
		s.in[n] = lv
		s.out[n] = lout
		s.recv[n] = endpoint
		s.u[n] = un
		s.usage[n] += un
		s.centralUsage += endpoint
		return true
	}
	ok, changes, centralDelta := s.chainDeltas(p, lout, endpoint)
	if !ok {
		return false
	}
	if err := s.tree.AddNode(n, p); err != nil {
		return false
	}
	s.in[n] = lv
	s.out[n] = lout
	s.recv[n] = endpoint
	s.u[n] = un
	s.usage[n] += un
	s.applyChain(changes, lout, centralDelta)
	return true
}

// branch captures a detached subtree so it can be reattached or restored.
type branch struct {
	root model.NodeID
	// nodes in breadth-first order (root first).
	nodes []model.NodeID
	// parentOf preserves the internal structure.
	parentOf map[model.NodeID]model.NodeID
	// oldParent is where the branch was attached.
	oldParent model.NodeID
}

// detachBranch removes the subtree rooted at b, keeping the branch
// members' internal bookkeeping intact so the branch can be reattached
// whole. The ancestor chain is refunded.
func (s *state) detachBranch(b model.NodeID) branch {
	oldParent, _ := s.tree.Parent(b)
	sub := s.tree.Subtree(b)
	parentOf := make(map[model.NodeID]model.NodeID, len(sub))
	for _, n := range sub {
		p, _ := s.tree.Parent(n)
		parentOf[n] = p
	}

	negOut := make([]float64, s.dims())
	for i, x := range s.out[b] {
		negOut[i] = -x
	}
	if !oldParent.IsCentral() {
		ok, changes, centralDelta := s.chainDeltas(oldParent, negOut, -s.recv[b])
		if ok { // refunds always succeed
			s.applyChain(changes, negOut, centralDelta)
		}
	} else {
		s.centralUsage -= s.recv[b]
	}
	// The branch root's send cost is parent-dependent: refund it now and
	// recharge at the new attachment point.
	s.usage[b] -= s.u[b]
	s.u[b] = 0
	_, _ = s.tree.RemoveSubtree(b)
	return branch{root: b, nodes: sub, parentOf: parentOf, oldParent: oldParent}
}

// attachBranch reattaches a previously detached branch whole under
// newParent, refusing attachments whose total added capacity consumption
// exceeds maxAdd (pass a negative maxAdd for no bound). It reports false
// (restoring nothing) when infeasible; the caller is responsible for
// restoring the branch elsewhere.
func (s *state) attachBranch(br branch, newParent model.NodeID, maxAdd float64) bool {
	if newParent.IsCentral() {
		return false
	}
	if !s.tree.Contains(newParent) {
		return false
	}
	// The root's distance-scaled send cost at the new position must fit
	// its own budget.
	newU := s.recv[br.root] * s.ctx.Sys.Dist(br.root, newParent)
	if s.usage[br.root]+newU > s.avail(br.root)+capEps {
		return false
	}
	ok, changes, centralDelta := s.chainDeltas(newParent, s.out[br.root], s.recv[br.root])
	if !ok {
		return false
	}
	if maxAdd >= 0 {
		totalAdd := newU + centralDelta
		for _, c := range changes {
			totalAdd += c.usageDelta
		}
		if totalAdd > maxAdd+capEps {
			return false
		}
	}
	// Rebuild the branch structure.
	if err := s.tree.AddNode(br.root, newParent); err != nil {
		return false
	}
	for _, n := range br.nodes[1:] {
		if err := s.tree.AddNode(n, br.parentOf[n]); err != nil {
			// Structure was captured from a valid tree; failure here is a
			// programming error, surface it by undoing the root.
			_, _ = s.tree.RemoveSubtree(br.root)
			return false
		}
	}
	s.u[br.root] = newU
	s.usage[br.root] += newU
	s.applyChain(changes, s.out[br.root], centralDelta)
	return true
}

// restoreBranch puts a detached branch back where it was.
func (s *state) restoreBranch(br branch) bool {
	if br.oldParent.IsCentral() {
		if !s.tree.Empty() {
			return false
		}
		if err := s.tree.AddNode(br.root, model.Central); err != nil {
			return false
		}
		for _, n := range br.nodes[1:] {
			_ = s.tree.AddNode(n, br.parentOf[n])
		}
		newU := s.recv[br.root] * s.ctx.Sys.Dist(br.root, model.Central)
		s.u[br.root] = newU
		s.usage[br.root] += newU
		s.centralUsage += s.recv[br.root]
		return true
	}
	return s.attachBranch(branch{
		root:     br.root,
		nodes:    br.nodes,
		parentOf: br.parentOf,
	}, br.oldParent, -1)
}

// dropBranchBookkeeping erases the per-node bookkeeping of a detached
// branch, for node-based reattaching where each node is re-added fresh.
func (s *state) dropBranchBookkeeping(br branch) {
	for _, n := range br.nodes {
		delete(s.in, n)
		delete(s.out, n)
		delete(s.recv, n)
		delete(s.u, n)
		delete(s.usage, n)
	}
}

// memberKey is a precomputed sort key, avoiding map lookups inside sort
// comparators (the construction procedure's hottest path).
type memberKey struct {
	n        model.NodeID
	depth    int
	headroom float64
}

// membersByDepth returns current members ordered by (depth asc, available
// headroom desc, id asc) — the attachment preference of the construction
// procedure.
func (s *state) membersByDepth() []model.NodeID {
	members := s.tree.Members()
	keys := make([]memberKey, len(members))
	depth := make(map[model.NodeID]int, len(members))
	for i, n := range members {
		p, _ := s.tree.Parent(n)
		d := depth[p] + 1
		depth[n] = d
		keys[i] = memberKey{n: n, depth: d, headroom: s.avail(n) - s.usage[n]}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		if a.headroom != b.headroom {
			return a.headroom > b.headroom
		}
		return a.n < b.n
	})
	for i, k := range keys {
		members[i] = k.n
	}
	return members
}

// byEdgeCost reorders candidate parents by the distance factor of the
// would-be edge from n, cheapest first, preserving the scheme's own
// preference order among equal-cost candidates. On a system without a
// distance function the order is untouched, so uniform-priced builds are
// bit-identical to the distance-oblivious algorithm.
func (s *state) byEdgeCost(n model.NodeID, members []model.NodeID) []model.NodeID {
	if s.ctx.Sys.Distance == nil || len(members) < 2 {
		return members
	}
	d := make([]float64, len(members))
	uniform := true
	for i, p := range members {
		d[i] = s.ctx.Sys.Dist(n, p)
		if d[i] != d[0] {
			uniform = false
		}
	}
	if uniform {
		return members
	}
	idx := make([]int, len(members))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return d[idx[i]] < d[idx[j]] })
	out := make([]model.NodeID, len(members))
	for i, k := range idx {
		out[i] = members[k]
	}
	return out
}

// result converts the final state into a Result.
func (s *state) result(excluded []model.NodeID) Result {
	used := make(map[model.NodeID]float64, len(s.usage))
	for n, u := range s.usage {
		if s.tree.Contains(n) {
			used[n] = u
		}
	}
	model.SortNodes(excluded)
	return Result{
		Tree:        s.tree,
		Used:        used,
		CentralUsed: s.centralUsage,
		Excluded:    excluded,
	}
}
