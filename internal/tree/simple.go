package tree

import (
	"sort"

	"remo/internal/model"
)

// pickFunc orders candidate parents for attaching node n; the first
// feasible candidate wins. Every scheme defers to byEdgeCost first, so
// on a distance-priced system (racks, WAN regions) cheap edges beat the
// scheme's shape preference and trees cluster by locality.
type pickFunc func(s *state, n model.NodeID) []model.NodeID

// pickLowestHeight prefers parents close to the root (STAR: bushy trees).
func pickLowestHeight(s *state, n model.NodeID) []model.NodeID {
	return s.byEdgeCost(n, s.membersByDepth())
}

// pickHighestHeight prefers the deepest parents (CHAIN: long trees).
func pickHighestHeight(s *state, n model.NodeID) []model.NodeID {
	members := s.membersByDepth()
	for i, j := 0, len(members)-1; i < j; i, j = i+1, j-1 {
		members[i], members[j] = members[j], members[i]
	}
	return s.byEdgeCost(n, members)
}

// pickMaxAvailable prefers the parent with the most remaining headroom
// (the TMON MAX_AVB heuristic).
func pickMaxAvailable(s *state, n model.NodeID) []model.NodeID {
	members := s.tree.Members()
	keys := make([]memberKey, len(members))
	for i, m := range members {
		keys[i] = memberKey{n: m, headroom: s.avail(m) - s.usage[m]}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.headroom != b.headroom {
			return a.headroom > b.headroom
		}
		return a.n < b.n
	})
	for i, k := range keys {
		members[i] = k.n
	}
	return s.byEdgeCost(n, members)
}

// simpleBuilder adds nodes in order of decreasing available capacity,
// attaching each to the first feasible parent in the scheme's preference
// order. No adjustment is performed once the tree saturates.
type simpleBuilder struct {
	scheme Scheme
	pick   pickFunc
}

var _ Builder = simpleBuilder{}

// Scheme implements Builder.
func (b simpleBuilder) Scheme() Scheme { return b.scheme }

// Build implements Builder.
func (b simpleBuilder) Build(ctx Context) Result {
	s := newState(ctx)
	var excluded []model.NodeID
	for _, n := range orderByAvail(ctx) {
		if !attachBest(s, n, b.pick) {
			excluded = append(excluded, n)
		}
	}
	return s.result(excluded)
}

// orderByAvail returns the participants in decreasing order of available
// capacity (ties by id), the insertion order shared by all schemes. On a
// distance-priced system the cheapest-to-collector candidate is promoted
// to the front: the first insertion becomes the tree root, and the
// root→collector edge carries the whole tree's aggregate every round, so
// the root should sit as close to the collector as the candidate set
// allows.
func orderByAvail(ctx Context) []model.NodeID {
	nodes := append([]model.NodeID(nil), ctx.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		ai, aj := ctx.Avail[nodes[i]], ctx.Avail[nodes[j]]
		if ai != aj {
			return ai > aj
		}
		return nodes[i] < nodes[j]
	})
	if ctx.Sys.Distance != nil && len(nodes) > 1 {
		best := 0
		for i := 1; i < len(nodes); i++ {
			if ctx.Sys.Dist(nodes[i], model.Central) < ctx.Sys.Dist(nodes[best], model.Central) {
				best = i
			}
		}
		if best != 0 {
			root := nodes[best]
			copy(nodes[1:best+1], nodes[:best])
			nodes[0] = root
		}
	}
	return nodes
}

// attachBest attaches n to the first feasible parent in pick's order, or
// as root if the tree is empty.
func attachBest(s *state, n model.NodeID, pick pickFunc) bool {
	if s.tree.Empty() {
		return s.attach(n, model.Central)
	}
	for _, p := range pick(s, n) {
		if s.attach(n, p) {
			return true
		}
	}
	return false
}
