package tree

import (
	"sort"

	"remo/internal/model"
)

// pickFunc orders candidate parents for the next attachment; the first
// feasible candidate wins.
type pickFunc func(s *state) []model.NodeID

// pickLowestHeight prefers parents close to the root (STAR: bushy trees).
func pickLowestHeight(s *state) []model.NodeID {
	return s.membersByDepth()
}

// pickHighestHeight prefers the deepest parents (CHAIN: long trees).
func pickHighestHeight(s *state) []model.NodeID {
	members := s.membersByDepth()
	for i, j := 0, len(members)-1; i < j; i, j = i+1, j-1 {
		members[i], members[j] = members[j], members[i]
	}
	return members
}

// pickMaxAvailable prefers the parent with the most remaining headroom
// (the TMON MAX_AVB heuristic).
func pickMaxAvailable(s *state) []model.NodeID {
	members := s.tree.Members()
	keys := make([]memberKey, len(members))
	for i, n := range members {
		keys[i] = memberKey{n: n, headroom: s.avail(n) - s.usage[n]}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.headroom != b.headroom {
			return a.headroom > b.headroom
		}
		return a.n < b.n
	})
	for i, k := range keys {
		members[i] = k.n
	}
	return members
}

// simpleBuilder adds nodes in order of decreasing available capacity,
// attaching each to the first feasible parent in the scheme's preference
// order. No adjustment is performed once the tree saturates.
type simpleBuilder struct {
	scheme Scheme
	pick   pickFunc
}

var _ Builder = simpleBuilder{}

// Scheme implements Builder.
func (b simpleBuilder) Scheme() Scheme { return b.scheme }

// Build implements Builder.
func (b simpleBuilder) Build(ctx Context) Result {
	s := newState(ctx)
	var excluded []model.NodeID
	for _, n := range orderByAvail(ctx) {
		if !attachBest(s, n, b.pick) {
			excluded = append(excluded, n)
		}
	}
	return s.result(excluded)
}

// orderByAvail returns the participants in decreasing order of available
// capacity (ties by id), the insertion order shared by all schemes.
func orderByAvail(ctx Context) []model.NodeID {
	nodes := append([]model.NodeID(nil), ctx.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		ai, aj := ctx.Avail[nodes[i]], ctx.Avail[nodes[j]]
		if ai != aj {
			return ai > aj
		}
		return nodes[i] < nodes[j]
	})
	return nodes
}

// attachBest attaches n to the first feasible parent in pick's order, or
// as root if the tree is empty.
func attachBest(s *state, n model.NodeID, pick pickFunc) bool {
	if s.tree.Empty() {
		return s.attach(n, model.Central)
	}
	for _, p := range pick(s) {
		if s.attach(n, p) {
			return true
		}
	}
	return false
}
