package tree

import (
	"sort"

	"remo/internal/model"
)

// Opts selects the adjusting-procedure variant of the ADAPTIVE builder.
// The zero value is the basic algorithm of §3.2 (node-based reattaching,
// whole-tree search); enabling both flags yields the optimized algorithm
// of §5.1 (up to ~11x faster in the paper, <2% quality penalty).
type Opts struct {
	// BranchReattach moves a pruned branch as a whole instead of
	// breaking it into nodes and reattaching them one at a time.
	BranchReattach bool
	// SubtreeOnly restricts the reattachment search to the congested
	// node's subtree, which by Theorem 1 is sufficient whenever the
	// failed node's resource demand is no larger than the pruned
	// branch's.
	SubtreeOnly bool
}

// adaptiveBuilder is REMO's tree construction algorithm: a STAR-style
// construction procedure iterated with an adjusting procedure that
// relieves congested nodes by pruning their lightest branch and moving it
// deeper, trading relay cost for per-message overhead.
type adaptiveBuilder struct {
	opts Opts
}

// NewAdaptive returns the ADAPTIVE builder with the given adjusting
// options.
func NewAdaptive(opts Opts) Builder {
	return adaptiveBuilder{opts: opts}
}

var _ Builder = adaptiveBuilder{}

// Scheme implements Builder.
func (b adaptiveBuilder) Scheme() Scheme { return Adaptive }

// Build implements Builder.
func (b adaptiveBuilder) Build(ctx Context) Result {
	s := newState(ctx)
	var excluded []model.NodeID
	// The adjusting budget bounds total tree surgery per build; it is a
	// termination safeguard, sized generously relative to the paper's
	// constructing-adjusting iteration.
	budget := 12*len(ctx.Nodes) + 16

	for _, n := range orderByAvail(ctx) {
		if attachBest(s, n, pickLowestHeight) {
			continue
		}
		attached := false
		for budget > 0 {
			budget--
			if !b.adjust(s, n) {
				break
			}
			if attachBest(s, n, pickLowestHeight) {
				attached = true
				break
			}
		}
		if !attached {
			excluded = append(excluded, n)
		}
	}
	return s.result(excluded)
}

// adjust performs one adjusting step: find a congested node, prune its
// lightest branch and reattach the branch (or its nodes) deeper. failed
// is the node the construction procedure could not attach; its demand
// decides whether subtree-only searching is safe (Theorem 1). adjust
// reports whether it changed the tree.
func (b adaptiveBuilder) adjust(s *state, failed model.NodeID) bool {
	failedOut := s.funnel(s.localVec(failed))
	failedU := s.msgCost(vecSum(failedOut))

	for _, dc := range s.membersByDepth() {
		children := s.tree.Children(dc)
		if len(children) < 2 {
			// Pruning an only child cannot reduce the node's degree
			// without emptying its subtree.
			continue
		}
		br, ok := b.lightestBranch(s, dc)
		if !ok {
			continue
		}
		// Theorem 1 applies only when the failed node demands no more
		// than the pruned branch; otherwise search the whole tree.
		subtreeOnly := b.opts.SubtreeOnly && failedU <= s.u[br]+capEps
		if b.moveBranch(s, dc, br, subtreeOnly, failedU) {
			return true
		}
	}
	return false
}

// lightestBranch returns dc's child with the smallest message cost.
func (b adaptiveBuilder) lightestBranch(s *state, dc model.NodeID) (model.NodeID, bool) {
	children := s.tree.Children(dc)
	if len(children) == 0 {
		return 0, false
	}
	best := children[0]
	for _, c := range children[1:] {
		if s.u[c] < s.u[best] || (s.u[c] == s.u[best] && c < best) {
			best = c
		}
	}
	return best, true
}

// moveBranch prunes the branch rooted at br from dc and reattaches it
// within the search scope. It restores the branch and reports false if no
// reattachment is feasible.
//
// A move trades relay cost for per-message overhead: pushing the branch
// deeper makes every node on the new path relay the branch's payload.
// The trade is only worthwhile if it pays for itself — the extra total
// capacity spent must not exceed the message cost of the node the move
// is trying to accommodate (moveBudget); otherwise the relay bloat
// starves other trees of the plan (§3.2's "minimize the total resource
// consumption ... if it is possible to accommodate more nodes by doing
// so").
func (b adaptiveBuilder) moveBranch(s *state, dc, brRoot model.NodeID, subtreeOnly bool, moveBudget float64) bool {
	scope := b.scope(s, dc, brRoot, subtreeOnly)
	if len(scope) == 0 {
		return false
	}
	origTotal := s.totalUsage()
	br := s.detachBranch(brRoot)

	if b.opts.BranchReattach {
		// The attachment may add at most what the detach refunded plus
		// the move budget, keeping total usage within origTotal+budget.
		maxAdd := origTotal + moveBudget - s.totalUsage()
		for _, p := range scope {
			if s.attachBranch(br, p, maxAdd) {
				return true
			}
		}
		if !s.restoreBranch(br) {
			// Restoration cannot fail: the capacity just refunded covers
			// exactly the restored charges. Guard anyway.
			s.dropBranchBookkeeping(br)
		}
		return false
	}

	// Node-based reattaching: re-add the branch's nodes one at a time
	// anywhere in the scope (later nodes may also attach under earlier
	// reattached ones).
	saved := branchSnapshot(s, br)
	s.dropBranchBookkeeping(br)
	var added []model.NodeID
	ok := true
	for _, n := range br.nodes {
		if !b.reattachNode(s, n, dc) {
			ok = false
			break
		}
		added = append(added, n)
	}
	if ok && s.totalUsage()-origTotal > moveBudget+capEps {
		ok = false
	}
	if ok {
		return true
	}
	// Rollback: remove re-added nodes (reverse order keeps children
	// before parents), then restore the original branch.
	for i := len(added) - 1; i >= 0; i-- {
		rb := s.detachBranch(added[i])
		s.dropBranchBookkeeping(rb)
	}
	restoreSnapshot(s, br, saved)
	return false
}

// scope returns candidate parents for the pruned branch ordered by depth
// (deepest last attachments happen near the top first), excluding the
// congested node itself and the branch.
func (b adaptiveBuilder) scope(s *state, dc, brRoot model.NodeID, subtreeOnly bool) []model.NodeID {
	inBranch := make(map[model.NodeID]struct{})
	for _, n := range s.tree.Subtree(brRoot) {
		inBranch[n] = struct{}{}
	}
	var candidates []model.NodeID
	if subtreeOnly {
		candidates = s.tree.Subtree(dc)
	} else {
		candidates = s.tree.Members()
	}
	out := candidates[:0]
	for _, n := range candidates {
		if n == dc {
			continue
		}
		if _, in := inBranch[n]; in {
			continue
		}
		out = append(out, n)
	}
	// Prefer parents with the most headroom; attaching the branch to a
	// roomy node keeps future attachments possible.
	keys := make([]memberKey, len(out))
	for i, n := range out {
		keys[i] = memberKey{n: n, headroom: s.avail(n) - s.usage[n]}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.headroom != b.headroom {
			return a.headroom > b.headroom
		}
		return a.n < b.n
	})
	for i, k := range keys {
		out[i] = k.n
	}
	return out
}

// reattachNode re-adds one node of a broken-up branch, preferring
// low-height parents but never the congested node dc.
func (b adaptiveBuilder) reattachNode(s *state, n, dc model.NodeID) bool {
	for _, p := range s.membersByDepth() {
		if p == dc {
			continue
		}
		if s.attach(n, p) {
			return true
		}
	}
	return false
}

// nodeBook is saved bookkeeping for rollback of node-based reattaching.
type nodeBook struct {
	in, out []float64
	recv    float64
	u       float64
	usage   float64
}

func branchSnapshot(s *state, br branch) map[model.NodeID]nodeBook {
	snap := make(map[model.NodeID]nodeBook, len(br.nodes))
	for _, n := range br.nodes {
		snap[n] = nodeBook{
			in:    append([]float64(nil), s.in[n]...),
			out:   append([]float64(nil), s.out[n]...),
			recv:  s.recv[n],
			u:     s.u[n],
			usage: s.usage[n],
		}
	}
	return snap
}

func restoreSnapshot(s *state, br branch, snap map[model.NodeID]nodeBook) {
	for _, n := range br.nodes {
		bk := snap[n]
		s.in[n] = bk.in
		s.out[n] = bk.out
		s.recv[n] = bk.recv
		s.u[n] = bk.u
		s.usage[n] = bk.usage
	}
	// Match the detached convention — the root's send cost is recharged
	// by restoreBranch at the attachment point.
	s.usage[br.root] -= s.u[br.root]
	s.u[br.root] = 0
	// Rebuild structure and recharge the ancestor chain.
	restored := s.restoreBranch(br)
	if !restored {
		s.dropBranchBookkeeping(br)
	}
}
