package tree

import (
	"math/rand"
	"testing"

	"remo/internal/agg"
	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
)

// env builds a uniform test system: n nodes of the given capacity, every
// node demanding attribute 1 with weight 1, C=10 a=1.
func env(t *testing.T, n int, capacity, centralCap float64) (Context, *model.System, *task.Demand) {
	t.Helper()
	nodes := make([]model.Node, n)
	for i := range nodes {
		nodes[i] = model.Node{ID: model.NodeID(i + 1), Capacity: capacity, Attrs: []model.AttrID{1}}
	}
	sys, err := model.NewSystem(centralCap, cost.Model{PerMessage: 10, PerValue: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	d := task.NewDemand()
	avail := make(map[model.NodeID]float64, n)
	for _, id := range sys.NodeIDs() {
		d.Set(id, 1, 1)
		avail[id] = capacity
	}
	ctx := Context{
		Sys:          sys,
		Demand:       d,
		Attrs:        model.NewAttrSet(1),
		Nodes:        sys.NodeIDs(),
		Avail:        avail,
		CentralAvail: centralCap,
	}
	return ctx, sys, d
}

// checkResult verifies the structural and capacity invariants every
// builder must uphold.
func checkResult(t *testing.T, ctx Context, r Result) {
	t.Helper()
	if err := r.Tree.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	// Placed + excluded = participants, no overlap.
	seen := make(map[model.NodeID]bool)
	for _, n := range r.Tree.Members() {
		seen[n] = true
	}
	for _, n := range r.Excluded {
		if seen[n] {
			t.Fatalf("node %v both placed and excluded", n)
		}
		seen[n] = true
	}
	if len(seen) != len(ctx.Nodes) {
		t.Fatalf("placed+excluded = %d, participants = %d", len(seen), len(ctx.Nodes))
	}
	// Recomputed usage within per-tree budgets.
	st := plan.ComputeTreeStats(r.Tree, ctx.Demand, ctx.Sys, ctx.Spec)
	const eps = 1e-6
	for n, u := range st.Usage {
		if u > ctx.Avail[n]+eps {
			t.Fatalf("node %v usage %.3f exceeds avail %.3f", n, u, ctx.Avail[n])
		}
		if diff := u - r.Used[n]; diff > eps || diff < -eps {
			t.Fatalf("node %v bookkeeping drift: incremental %.3f, recomputed %.3f", n, r.Used[n], u)
		}
	}
	if st.RootSend > ctx.CentralAvail+eps {
		t.Fatalf("central usage %.3f exceeds avail %.3f", st.RootSend, ctx.CentralAvail)
	}
	if diff := st.RootSend - r.CentralUsed; diff > eps || diff < -eps {
		t.Fatalf("central bookkeeping drift: %.3f vs %.3f", r.CentralUsed, st.RootSend)
	}
}

func TestStarShape(t *testing.T) {
	ctx, _, _ := env(t, 5, 1e6, 1e6)
	r := New(Star).Build(ctx)
	checkResult(t, ctx, r)
	if r.Tree.Size() != 5 {
		t.Fatalf("placed %d, want 5", r.Tree.Size())
	}
	// With unlimited capacity STAR is a pure star: height 2 at most
	// (root + direct children).
	if h := r.Tree.Height(); h > 2 {
		t.Fatalf("STAR height = %d, want <= 2", h)
	}
	if got := len(r.Tree.Children(r.Tree.Root())); got != 4 {
		t.Fatalf("root children = %d, want 4", got)
	}
}

func TestChainShape(t *testing.T) {
	ctx, _, _ := env(t, 5, 1e6, 1e6)
	r := New(Chain).Build(ctx)
	checkResult(t, ctx, r)
	if r.Tree.Size() != 5 {
		t.Fatalf("placed %d, want 5", r.Tree.Size())
	}
	if h := r.Tree.Height(); h != 5 {
		t.Fatalf("CHAIN height = %d, want 5", h)
	}
}

// TestSchemesUnderPressure reproduces the hand-computed scenario: 6 nodes,
// capacity 35, C=10 a=1. STAR saturates after 3 nodes (root relay cost),
// CHAIN fits all 6, and ADAPTIVE recovers chain-like capacity from its
// STAR start.
func TestSchemesUnderPressure(t *testing.T) {
	const capacity = 35
	build := func(s Scheme) Result {
		ctx, _, _ := env(t, 6, capacity, 1e6)
		r := New(s).Build(ctx)
		checkResult(t, ctx, r)
		return r
	}
	star := build(Star)
	if star.Tree.Size() != 3 {
		t.Errorf("STAR placed %d, want 3", star.Tree.Size())
	}
	chain := build(Chain)
	if chain.Tree.Size() != 6 {
		t.Errorf("CHAIN placed %d, want 6", chain.Tree.Size())
	}
	adaptive := build(Adaptive)
	if adaptive.Tree.Size() < 5 {
		t.Errorf("ADAPTIVE placed %d, want >= 5", adaptive.Tree.Size())
	}
	if adaptive.Tree.Size() < star.Tree.Size() {
		t.Errorf("ADAPTIVE (%d) worse than STAR (%d)", adaptive.Tree.Size(), star.Tree.Size())
	}
}

// TestChainRelayCostExceedsStar verifies the relay-cost tradeoff of
// §2.4: for the same membership, CHAIN's total capacity consumption is
// strictly higher than STAR's (every hop re-relays the payload), which is
// what starves co-hosted trees in multi-task plans.
func TestChainRelayCostExceedsStar(t *testing.T) {
	ctx, sys, d := env(t, 6, 1e6, 1e6)
	star := New(Star).Build(ctx)
	checkResult(t, ctx, star)
	ctx2, _, _ := env(t, 6, 1e6, 1e6)
	chain := New(Chain).Build(ctx2)
	checkResult(t, ctx2, chain)
	if star.Tree.Size() != 6 || chain.Tree.Size() != 6 {
		t.Fatalf("sizes: star=%d chain=%d, want 6/6", star.Tree.Size(), chain.Tree.Size())
	}
	starTotal := plan.ComputeTreeStats(star.Tree, d, sys, nil).TotalUsage()
	chainTotal := plan.ComputeTreeStats(chain.Tree, d, sys, nil).TotalUsage()
	if chainTotal <= starTotal {
		t.Fatalf("chain total usage %.1f should exceed star %.1f", chainTotal, starTotal)
	}
}

func TestCentralCapacityLimitsRoot(t *testing.T) {
	// Central can only afford the root message of a tree with <= 2
	// values (C + 2a = 12).
	ctx, _, _ := env(t, 4, 1e6, 12)
	r := New(Adaptive).Build(ctx)
	checkResult(t, ctx, r)
	if r.Tree.Size() > 2 {
		t.Fatalf("placed %d, central capacity should cap at 2", r.Tree.Size())
	}
}

func TestNodeTooSmallForOwnMessage(t *testing.T) {
	// Capacity below C+a: the node cannot even send its own update.
	ctx, _, _ := env(t, 3, 10.5, 1e6)
	r := New(Adaptive).Build(ctx)
	checkResult(t, ctx, r)
	if r.Tree.Size() != 0 || len(r.Excluded) != 3 {
		t.Fatalf("size=%d excluded=%d, want 0/3", r.Tree.Size(), len(r.Excluded))
	}
}

func TestSumAggregationEnablesDeepTrees(t *testing.T) {
	// With SUM aggregation every message carries one value, so even tiny
	// capacities host long chains.
	spec := agg.NewSpec()
	spec.SetKind(1, agg.Sum)
	ctx, _, _ := env(t, 10, 23, 1e6) // fits u=11 send + 11 receive + slack
	ctx.Spec = spec
	r := New(Adaptive).Build(ctx)
	checkResult(t, ctx, r)
	holCtx, _, _ := env(t, 10, 23, 1e6)
	hol := New(Adaptive).Build(holCtx)
	checkResult(t, holCtx, hol)
	if r.Tree.Size() <= hol.Tree.Size() {
		t.Fatalf("SUM (%d placed) should beat holistic (%d placed) at capacity 23",
			r.Tree.Size(), hol.Tree.Size())
	}
}

func TestAdaptiveVariantsAllValid(t *testing.T) {
	variants := []Opts{
		{},
		{BranchReattach: true},
		{SubtreeOnly: true},
		{BranchReattach: true, SubtreeOnly: true},
	}
	for _, opts := range variants {
		ctx, _, _ := env(t, 12, 40, 1e6)
		r := NewAdaptive(opts).Build(ctx)
		checkResult(t, ctx, r)
		if r.Tree.Size() < 3 {
			t.Errorf("opts %+v placed only %d nodes", opts, r.Tree.Size())
		}
	}
}

func TestBuildersAreDeterministic(t *testing.T) {
	for _, s := range Schemes() {
		ctx1, _, _ := env(t, 15, 45, 1e6)
		ctx2, _, _ := env(t, 15, 45, 1e6)
		r1 := New(s).Build(ctx1)
		r2 := New(s).Build(ctx2)
		e1 := r1.Tree.Edges()
		e2 := r2.Tree.Edges()
		if len(e1) != len(e2) {
			t.Fatalf("%s nondeterministic sizes: %d vs %d", s, len(e1), len(e2))
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("%s nondeterministic edge %d: %v vs %v", s, i, e1[i], e2[i])
			}
		}
	}
}

// TestRandomizedInvariants fuzzes all builders over random systems and
// demands, checking the structural and capacity invariants hold.
func TestRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(20)
		nodes := make([]model.Node, n)
		d := task.NewDemand()
		avail := make(map[model.NodeID]float64, n)
		attrs := []model.AttrID{1, 2, 3}
		for i := range nodes {
			id := model.NodeID(i + 1)
			capacity := 15 + rng.Float64()*80
			nodes[i] = model.Node{ID: id, Capacity: capacity, Attrs: attrs}
			avail[id] = capacity
			for _, a := range attrs {
				if rng.Intn(2) == 0 {
					d.Set(id, a, 1)
				}
			}
		}
		sys, err := model.NewSystem(200+rng.Float64()*800, cost.Model{PerMessage: 5 + rng.Float64()*15, PerValue: 1}, nodes)
		if err != nil {
			t.Fatal(err)
		}
		set := model.NewAttrSet(attrs...)
		ctx := Context{
			Sys:          sys,
			Demand:       d,
			Attrs:        set,
			Nodes:        d.Participants(set),
			Avail:        avail,
			CentralAvail: sys.CentralCapacity,
		}
		for _, s := range Schemes() {
			r := New(s).Build(ctx)
			checkResult(t, ctx, r)
		}
	}
}

// TestResultFingerprint pins the build-result digest the planner's
// tree memo and the determinism tests rely on: identical builds agree,
// and any change to structure or charges disagrees.
func TestResultFingerprint(t *testing.T) {
	for _, s := range Schemes() {
		ctx1, _, _ := env(t, 12, 45, 1e6)
		ctx2, _, _ := env(t, 12, 45, 1e6)
		r1 := New(s).Build(ctx1)
		r2 := New(s).Build(ctx2)
		if r1.Fingerprint() != r2.Fingerprint() {
			t.Fatalf("%s: identical builds fingerprint differently", s)
		}
		// A tighter capacity produces a different build outcome (fewer
		// placed nodes or different charges) and must not collide.
		ctx3, _, _ := env(t, 12, 25, 1e6)
		r3 := New(s).Build(ctx3)
		if r3.Fingerprint() == r1.Fingerprint() {
			t.Fatalf("%s: different builds share a fingerprint", s)
		}
	}
}
