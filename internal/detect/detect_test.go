package detect

import (
	"testing"

	"remo/internal/model"
)

func beatAll(d *Detector, nodes []model.NodeID, round int) {
	for _, n := range nodes {
		d.Beat(n, round)
	}
}

func TestChaosDetectorDeclaresSilentNode(t *testing.T) {
	nodes := []model.NodeID{1, 2, 3}
	d := New(Config{SuspicionRounds: 3})
	d.Watch(nodes, 0)

	// Everyone beats for five rounds, then node 2 goes silent.
	for r := 0; r < 5; r++ {
		beatAll(d, nodes, r)
		if v := d.Advance(r); len(v) != 0 {
			t.Fatalf("round %d: spurious verdicts %+v", r, v)
		}
	}
	for r := 5; r < 20; r++ {
		d.Beat(1, r)
		d.Beat(3, r)
		verdicts := d.Advance(r)
		// Last beat at round 4, suspicion 3: declared when r-4 >= 3.
		if r < 7 {
			if len(verdicts) != 0 {
				t.Fatalf("round %d: premature verdicts %+v", r, verdicts)
			}
			continue
		}
		if r == 7 {
			if len(verdicts) != 1 || verdicts[0].Node != 2 || verdicts[0].Recovered {
				t.Fatalf("round 7 verdicts = %+v", verdicts)
			}
			if verdicts[0].LastHeard != 4 || verdicts[0].DeclaredAt != 7 {
				t.Fatalf("verdict detail = %+v", verdicts[0])
			}
		} else if len(verdicts) != 0 {
			t.Fatalf("round %d: node redeclared: %+v", r, verdicts)
		}
	}
	if d.Alive(2) || !d.Alive(1) {
		t.Fatal("liveness view wrong after declaration")
	}
	if dead := d.Dead(); len(dead) != 1 || dead[0] != 2 {
		t.Fatalf("Dead() = %v", dead)
	}
}

func TestChaosDetectorGraceWindow(t *testing.T) {
	d := New(Config{SuspicionRounds: 2})
	d.Watch([]model.NodeID{1}, 0)
	// Never heard from: watchFrom 0 means declaration at round 1 (rounds
	// 0 and 1 missed).
	if v := d.Advance(0); len(v) != 0 {
		t.Fatalf("declared during grace: %+v", v)
	}
	v := d.Advance(1)
	if len(v) != 1 || v[0].Node != 1 || v[0].LastHeard != -1 {
		t.Fatalf("verdicts = %+v", v)
	}

	// A node added mid-session gets the same grace from its entry round.
	d2 := New(Config{SuspicionRounds: 2})
	d2.Watch([]model.NodeID{1}, 0)
	for r := 0; r < 5; r++ {
		d2.Beat(1, r)
		_ = d2.Advance(r)
	}
	d2.Watch([]model.NodeID{1, 9}, 5)
	d2.Beat(1, 5)
	if v := d2.Advance(5); len(v) != 0 {
		t.Fatalf("new node declared immediately: %+v", v)
	}
}

func TestChaosDetectorStaleEvidenceDoesNotResurrect(t *testing.T) {
	d := New(Config{SuspicionRounds: 2})
	d.Watch([]model.NodeID{1}, 0)
	d.Beat(1, 3)
	if v := d.Advance(6); len(v) != 1 {
		t.Fatalf("verdicts = %+v", v)
	}
	// Relayed values from before the crash must not resurrect the node.
	d.Beat(1, 4)
	if v := d.Advance(7); len(v) != 0 {
		t.Fatalf("stale beat resurrected: %+v", v)
	}
	if d.Alive(1) {
		t.Fatal("node alive after stale beat")
	}
}

func TestChaosDetectorRecovery(t *testing.T) {
	d := New(Config{SuspicionRounds: 2})
	d.Watch([]model.NodeID{1}, 0)
	d.Beat(1, 0)
	if v := d.Advance(3); len(v) != 1 || v[0].Recovered {
		t.Fatalf("verdicts = %+v", v)
	}
	// Fresh evidence (newer than the declaration round) resurrects.
	d.Beat(1, 4)
	v := d.Advance(4)
	if len(v) != 1 || !v[0].Recovered || v[0].Node != 1 || v[0].DeclaredAt != 4 {
		t.Fatalf("recovery verdicts = %+v", v)
	}
	if !d.Alive(1) {
		t.Fatal("node still dead after recovery")
	}
	// And the clock restarts: silent again → re-declared.
	if v := d.Advance(6); len(v) != 1 || v[0].Recovered {
		t.Fatalf("re-declaration verdicts = %+v", v)
	}
}

func TestChaosDetectorWatchRetargetKeepsHistory(t *testing.T) {
	d := New(Config{SuspicionRounds: 3})
	d.Watch([]model.NodeID{1, 2}, 0)
	d.Beat(1, 0)
	d.Beat(2, 0)
	_ = d.Advance(0)
	// Retargeting (topology swap) must not reset node 2's silence clock.
	d.Watch([]model.NodeID{1, 2}, 2)
	d.Beat(1, 1)
	d.Beat(1, 2)
	d.Beat(1, 3)
	v := d.Advance(3)
	if len(v) != 1 || v[0].Node != 2 {
		t.Fatalf("verdicts after retarget = %+v", v)
	}
}

func TestChaosDetectorDefaultWindow(t *testing.T) {
	d := New(Config{})
	if d.Suspicion() != DefaultSuspicionRounds {
		t.Fatalf("default suspicion = %d", d.Suspicion())
	}
}
