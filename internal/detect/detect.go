// Package detect implements the collector-side failure detector of the
// self-healing runtime: per-node liveness is tracked from every piece of
// evidence the collector sees — attribute values carried up the trees
// and lightweight per-round heartbeats — and a node silent for more than
// a configurable suspicion window is declared dead. Declared-dead nodes
// that speak again are resurrected, so crash/recover schedules close the
// loop end to end.
//
// The detector is deliberately conservative: it never declares a node
// dead while any evidence from the suspicion window exists, so transient
// message loss within the window produces no false positives.
package detect

import (
	"sort"

	"remo/internal/model"
)

// DefaultSuspicionRounds is the suspicion window used when Config leaves
// it zero: a node must miss this many consecutive rounds to be declared
// dead.
const DefaultSuspicionRounds = 3

// Config parameterizes a Detector.
type Config struct {
	// SuspicionRounds is how many consecutive rounds a watched node may
	// stay silent before it is declared dead (default
	// DefaultSuspicionRounds). Larger windows tolerate lossier links at
	// the price of detection latency.
	SuspicionRounds int
}

// Verdict is one liveness decision.
type Verdict struct {
	// Node is the subject of the verdict.
	Node model.NodeID
	// LastHeard is the newest round the node was provably alive, or -1
	// if it was never heard from.
	LastHeard int
	// DeclaredAt is the round the verdict was reached.
	DeclaredAt int
	// Recovered marks a resurrection: a declared-dead node produced
	// fresh evidence of life.
	Recovered bool
}

// Detector tracks per-node liveness. It is not safe for concurrent use;
// the emulation machine feeds it from its coordinator goroutine only.
type Detector struct {
	suspicion int
	// lastBeat is the newest round each node was provably alive.
	lastBeat map[model.NodeID]int
	// watchFrom grants newly watched nodes a grace window anchored at
	// the round they entered the watch set.
	watchFrom map[model.NodeID]int
	watched   map[model.NodeID]struct{}
	watchList []model.NodeID
	// dead maps declared-dead nodes to their declaration round.
	dead map[model.NodeID]int
	// resurrected queues recovery verdicts until the next Advance.
	resurrected []Verdict
}

// New returns a detector with an empty watch set.
func New(cfg Config) *Detector {
	s := cfg.SuspicionRounds
	if s <= 0 {
		s = DefaultSuspicionRounds
	}
	return &Detector{
		suspicion: s,
		lastBeat:  make(map[model.NodeID]int),
		watchFrom: make(map[model.NodeID]int),
		watched:   make(map[model.NodeID]struct{}),
		dead:      make(map[model.NodeID]int),
	}
}

// Suspicion returns the configured suspicion window in rounds.
func (d *Detector) Suspicion() int { return d.suspicion }

// Watch replaces the watch set. Nodes entering the set for the first
// time get a grace window anchored at the given round; nodes already
// known keep their history, so re-targeting after a topology swap does
// not reset suspicion clocks.
func (d *Detector) Watch(nodes []model.NodeID, round int) {
	d.watched = make(map[model.NodeID]struct{}, len(nodes))
	d.watchList = append(d.watchList[:0], nodes...)
	sort.Slice(d.watchList, func(i, j int) bool { return d.watchList[i] < d.watchList[j] })
	for _, n := range d.watchList {
		d.watched[n] = struct{}{}
		if _, known := d.watchFrom[n]; !known {
			d.watchFrom[n] = round
		}
	}
}

// Beat records evidence that node n was alive at the given round. Fresh
// evidence from a declared-dead node (newer than its declaration)
// queues a recovery verdict for the next Advance.
func (d *Detector) Beat(n model.NodeID, round int) {
	if last, ok := d.lastBeat[n]; !ok || round > last {
		d.lastBeat[n] = round
	}
	if declaredAt, isDead := d.dead[n]; isDead && round > declaredAt {
		delete(d.dead, n)
		d.resurrected = append(d.resurrected, Verdict{
			Node: n, LastHeard: d.lastBeat[n], Recovered: true,
		})
	}
}

// Advance evaluates the watch set at the end of the given round and
// returns the verdicts reached: recoveries queued since the last call,
// then nodes newly declared dead, both in NodeID order.
func (d *Detector) Advance(round int) []Verdict {
	var out []Verdict
	if len(d.resurrected) > 0 {
		out = append(out, d.resurrected...)
		d.resurrected = nil
		sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
		for i := range out {
			out[i].DeclaredAt = round
		}
	}
	for _, n := range d.watchList {
		if _, isDead := d.dead[n]; isDead {
			continue
		}
		lastHeard, heard := d.lastBeat[n]
		effective := d.watchFrom[n] - 1
		if heard && lastHeard > effective {
			effective = lastHeard
		}
		if round-effective < d.suspicion {
			continue
		}
		d.dead[n] = round
		if !heard {
			lastHeard = -1
		}
		out = append(out, Verdict{Node: n, LastHeard: lastHeard, DeclaredAt: round})
	}
	return out
}

// DeadAt snapshots the declared-dead set with each node's declaration
// round — the detector state a durable session journals and restores.
func (d *Detector) DeadAt() map[model.NodeID]int {
	out := make(map[model.NodeID]int, len(d.dead))
	for n, at := range d.dead {
		out[n] = at
	}
	return out
}

// MarkDead restores a declared-dead node (crash recovery): the node
// stays excluded until evidence of life newer than declaredAt arrives.
// Restoring with declaredAt = -1 lets any fresh beat resurrect it —
// the right anchor when the recovered session restarts its round clock.
func (d *Detector) MarkDead(n model.NodeID, declaredAt int) {
	d.dead[n] = declaredAt
}

// Dead lists the currently declared-dead nodes in NodeID order.
func (d *Detector) Dead() []model.NodeID {
	out := make([]model.NodeID, 0, len(d.dead))
	for n := range d.dead {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Alive reports whether node n is not currently declared dead.
func (d *Detector) Alive(n model.NodeID) bool {
	_, isDead := d.dead[n]
	return !isDead
}
