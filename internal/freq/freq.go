// Package freq implements heterogeneous update frequency support (§6.3):
// planning for monitoring tasks whose attributes are collected at
// different rates.
//
// REMO handles mixed rates by piggybacking: a node's slower metrics ride
// in the update messages of its fastest metric, so the node still sends
// one message per round but the slower values appear only in a fraction
// of those messages. Cost-wise, a metric updated at frequency f on a node
// whose fastest metric updates at f_max contributes weight f/f_max to the
// node's message payload.
//
// Piggybacking can only realize rates that divide the fastest rate
// evenly; metrics whose requested rate cannot be approximated within
// tolerance are pinned to their own collection trees, matching the
// paper's fallback of building individual trees for them.
package freq

import (
	"errors"
	"fmt"
	"math"

	"remo/internal/model"
	"remo/internal/partition"
	"remo/internal/task"
)

// ErrBadFrequency is returned for non-positive frequencies.
var ErrBadFrequency = errors.New("freq: frequency must be positive")

// Spec assigns update frequencies to attributes. Frequencies are in
// updates per unit time; only ratios matter. Attributes without an entry
// use DefaultFreq.
type Spec struct {
	// DefaultFreq applies to attributes without an explicit entry.
	DefaultFreq float64
	// Tolerance is the maximum relative error between a requested rate
	// and its best piggyback approximation before the attribute is
	// pinned to its own tree. Zero means any approximation is accepted.
	Tolerance float64

	freqs map[model.AttrID]float64
}

// NewSpec returns a spec where every attribute updates at rate 1 by
// default.
func NewSpec() *Spec {
	return &Spec{
		DefaultFreq: 1,
		freqs:       make(map[model.AttrID]float64),
	}
}

// Set assigns frequency f to attribute a.
func (s *Spec) Set(a model.AttrID, f float64) error {
	if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Errorf("%w: %v", ErrBadFrequency, f)
	}
	s.freqs[a] = f
	return nil
}

// Of returns the frequency of attribute a.
func (s *Spec) Of(a model.AttrID) float64 {
	if f, ok := s.freqs[a]; ok {
		return f
	}
	if s.DefaultFreq > 0 {
		return s.DefaultFreq
	}
	return 1
}

// Weight returns the payload weight of pair (n, a) in demand d: the
// attribute's frequency divided by the node's fastest demanded
// frequency.
func (s *Spec) Weight(d *task.Demand, n model.NodeID, a model.AttrID) float64 {
	fmax := s.maxFreqOf(d, n)
	if fmax <= 0 {
		return 1
	}
	return s.Of(a) / fmax
}

func (s *Spec) maxFreqOf(d *task.Demand, n model.NodeID) float64 {
	var fmax float64
	for _, a := range d.AttrsOf(n).Attrs() {
		if f := s.Of(a); f > fmax {
			fmax = f
		}
	}
	return fmax
}

// Apply returns a copy of the demand with piggyback weights: each pair's
// weight is scaled by freq/freq_max of its node. The input demand's
// weights are treated as multipliers (normally 1).
func (s *Spec) Apply(d *task.Demand) *task.Demand {
	out := task.NewDemand()
	for _, n := range d.Nodes() {
		fmax := s.maxFreqOf(d, n)
		for _, a := range d.AttrsOf(n).Attrs() {
			w := d.Weight(n, a)
			if fmax > 0 {
				w *= s.Of(a) / fmax
			}
			out.Set(n, a, w)
		}
	}
	return out
}

// Unsatisfied returns the attributes whose requested rate cannot be
// realized by piggybacking within the spec's tolerance anywhere they are
// demanded: the fastest co-located rate must be an integer multiple of
// the attribute's rate (a metric at rate 1/22 under a 1/5 leader can only
// fire every 4th or 5th message, i.e. at 1/20 or 1/25).
func (s *Spec) Unsatisfied(d *task.Demand) []model.AttrID {
	bad := make(map[model.AttrID]struct{})
	for _, n := range d.Nodes() {
		fmax := s.maxFreqOf(d, n)
		if fmax <= 0 {
			continue
		}
		for _, a := range d.AttrsOf(n).Attrs() {
			f := s.Of(a)
			if f >= fmax {
				continue
			}
			// Best piggyback approximations fire every floor(fmax/f) or
			// ceil(fmax/f) messages.
			ratio := fmax / f
			lo := math.Floor(ratio)
			hi := math.Ceil(ratio)
			errLo := math.Abs(fmax/lo-f) / f
			errHi := math.Abs(fmax/hi-f) / f
			if math.Min(errLo, errHi) > s.Tolerance {
				bad[a] = struct{}{}
			}
		}
	}
	var out []model.AttrID
	for a := range bad {
		out = append(out, a)
	}
	model.SortAttrs(out)
	return out
}

// Constraints returns partition constraints pinning every unsatisfied
// attribute to its own tree, to be passed to the planner.
func (s *Spec) Constraints(d *task.Demand) *partition.Constraints {
	bad := s.Unsatisfied(d)
	if len(bad) == 0 {
		return nil
	}
	cons := partition.NewConstraints()
	for _, a := range bad {
		cons.Pin(a)
	}
	return cons
}
