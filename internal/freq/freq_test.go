package freq

import (
	"errors"
	"math"
	"testing"

	"remo/internal/model"
	"remo/internal/task"
)

func TestSpecSetValidation(t *testing.T) {
	s := NewSpec()
	if err := s.Set(1, 0); !errors.Is(err, ErrBadFrequency) {
		t.Fatalf("Set(0) error = %v", err)
	}
	if err := s.Set(1, -1); !errors.Is(err, ErrBadFrequency) {
		t.Fatalf("Set(-1) error = %v", err)
	}
	if err := s.Set(1, math.NaN()); !errors.Is(err, ErrBadFrequency) {
		t.Fatalf("Set(NaN) error = %v", err)
	}
	if err := s.Set(1, 2); err != nil {
		t.Fatal(err)
	}
	if s.Of(1) != 2 || s.Of(2) != 1 {
		t.Fatalf("Of = %v, %v", s.Of(1), s.Of(2))
	}
}

func TestApplyPiggybackWeights(t *testing.T) {
	// Node 1 collects attr 1 at rate 4 and attr 2 at rate 1: attr 2
	// piggybacks at weight 1/4. Node 2 collects only attr 2, so attr 2
	// is its fastest metric and keeps weight 1.
	s := NewSpec()
	if err := s.Set(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(2, 1); err != nil {
		t.Fatal(err)
	}
	d := task.NewDemand()
	d.Set(1, 1, 1)
	d.Set(1, 2, 1)
	d.Set(2, 2, 1)

	w := s.Apply(d)
	if got := w.Weight(1, 1); got != 1 {
		t.Fatalf("weight(1,1) = %v, want 1", got)
	}
	if got := w.Weight(1, 2); got != 0.25 {
		t.Fatalf("weight(1,2) = %v, want 0.25", got)
	}
	if got := w.Weight(2, 2); got != 1 {
		t.Fatalf("weight(2,2) = %v, want 1", got)
	}
	// Input untouched.
	if d.Weight(1, 2) != 1 {
		t.Fatal("Apply mutated its input")
	}
}

func TestWeightHelper(t *testing.T) {
	s := NewSpec()
	if err := s.Set(1, 10); err != nil {
		t.Fatal(err)
	}
	d := task.NewDemand()
	d.Set(1, 1, 1)
	d.Set(1, 2, 1)
	if got := s.Weight(d, 1, 2); got != 0.1 {
		t.Fatalf("Weight = %v, want 0.1", got)
	}
}

func TestUnsatisfiedDetectsNonDivisors(t *testing.T) {
	// The paper's example: fastest 1/5, requested 1/22. Best piggyback
	// approximations are 1/20 or 1/25 — ~9-12%% error.
	s := NewSpec()
	if err := s.Set(1, 1.0/5); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(2, 1.0/22); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(3, 1.0/25); err != nil { // exact divisor
		t.Fatal(err)
	}
	d := task.NewDemand()
	d.Set(1, 1, 1)
	d.Set(1, 2, 1)
	d.Set(1, 3, 1)

	strict := *s
	strict.Tolerance = 0.05
	bad := strict.Unsatisfied(d)
	if len(bad) != 1 || bad[0] != 2 {
		t.Fatalf("Unsatisfied = %v, want [2]", bad)
	}

	loose := *s
	loose.Tolerance = 0.15
	if got := loose.Unsatisfied(d); len(got) != 0 {
		t.Fatalf("tolerant Unsatisfied = %v, want none", got)
	}
}

func TestConstraintsPinUnsatisfied(t *testing.T) {
	s := NewSpec()
	s.Tolerance = 0.05
	if err := s.Set(1, 1.0/5); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(2, 1.0/22); err != nil {
		t.Fatal(err)
	}
	d := task.NewDemand()
	d.Set(1, 1, 1)
	d.Set(1, 2, 1)

	cons := s.Constraints(d)
	if cons == nil {
		t.Fatal("Constraints = nil, want pin for attr 2")
	}
	if !cons.AllowSet(model.NewAttrSet(2)) {
		t.Fatal("pinned attr rejected as singleton")
	}
	if cons.AllowSet(model.NewAttrSet(1, 2)) {
		t.Fatal("pinned attr allowed to share a set")
	}

	// All-satisfiable demand yields no constraints.
	ok := task.NewDemand()
	ok.Set(1, 1, 1)
	if got := s.Constraints(ok); got != nil {
		t.Fatalf("Constraints = %v, want nil", got)
	}
}

func TestApplyLowersPlannedCost(t *testing.T) {
	// Weighted demand should report lower local weight than unweighted.
	s := NewSpec()
	if err := s.Set(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(2, 1); err != nil {
		t.Fatal(err)
	}
	d := task.NewDemand()
	d.Set(1, 1, 1)
	d.Set(1, 2, 1)
	set := model.NewAttrSet(1, 2)
	w := s.Apply(d)
	if w.LocalWeight(1, set) >= d.LocalWeight(1, set) {
		t.Fatalf("weighted %v >= unweighted %v",
			w.LocalWeight(1, set), d.LocalWeight(1, set))
	}
}
