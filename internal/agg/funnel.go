// Package agg implements in-network aggregation support: funnel functions
// that model how aggregation shrinks message payloads during delivery, and
// runtime aggregators that combine actual values inside the emulated
// cluster.
//
// A funnel function fnl_i^m(g_m, n_m) returns the number of outgoing
// values at a node for metric m, given the aggregation type g_m and the
// number of incoming values n_m (the node's own values plus values
// received from its children). Holistic collection forwards everything
// (out = in); SUM collapses any number of partial values into one; TOP-k
// forwards at most k.
package agg

import (
	"fmt"
	"sort"
)

// Kind enumerates the supported aggregation types.
type Kind int

// Supported aggregation kinds.
const (
	// Holistic forwards every individual value (no aggregation).
	Holistic Kind = iota + 1
	// Sum collapses incoming values into a single partial sum.
	Sum
	// Max collapses incoming values into a single partial maximum.
	Max
	// Min collapses incoming values into a single partial minimum.
	Min
	// Count collapses incoming values into a single partial count.
	Count
	// TopK forwards the k largest values.
	TopK
	// Distinct forwards distinct values; its result size is data
	// dependent, so REMO uses the holistic funnel as an upper bound when
	// planning (per §6.1 of the paper).
	Distinct
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Holistic:
		return "HOLISTIC"
	case Sum:
		return "SUM"
	case Max:
		return "MAX"
	case Min:
		return "MIN"
	case Count:
		return "COUNT"
	case TopK:
		return "TOPK"
	case Distinct:
		return "DISTINCT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Funnel models the payload reduction of one aggregation type. Inputs and
// outputs are weighted value counts: the frequency extension scales a
// value's contribution below 1 when it piggybacks at a reduced rate.
type Funnel interface {
	// Out returns the outgoing weighted value count for an incoming
	// weighted value count.
	Out(in float64) float64
	// Kind returns the aggregation type this funnel models.
	Kind() Kind
}

// funnelFunc adapts a function to the Funnel interface.
type funnelFunc struct {
	kind Kind
	fn   func(float64) float64
}

func (f funnelFunc) Out(in float64) float64 { return f.fn(in) }
func (f funnelFunc) Kind() Kind             { return f.kind }

// NewFunnel returns the funnel for kind. For TopK, k is the result bound;
// it is ignored for other kinds. Unknown kinds fall back to holistic.
func NewFunnel(kind Kind, k int) Funnel {
	switch kind {
	case Sum, Max, Min, Count:
		return funnelFunc{kind: kind, fn: func(in float64) float64 {
			return clamp(in, 1)
		}}
	case TopK:
		bound := float64(k)
		if k <= 0 {
			bound = 1
		}
		return funnelFunc{kind: kind, fn: func(in float64) float64 {
			return clamp(in, bound)
		}}
	case Holistic, Distinct:
		return funnelFunc{kind: kind, fn: func(in float64) float64 {
			if in < 0 {
				return 0
			}
			return in
		}}
	default:
		return funnelFunc{kind: Holistic, fn: func(in float64) float64 {
			if in < 0 {
				return 0
			}
			return in
		}}
	}
}

func clamp(in, bound float64) float64 {
	if in <= 0 {
		return 0
	}
	if in > bound {
		return bound
	}
	return in
}

// Combine applies the aggregation of kind to concrete values at a relay
// hop, returning the values to forward. k bounds TopK results.
func Combine(kind Kind, k int, values []float64) []float64 {
	if len(values) == 0 {
		return nil
	}
	switch kind {
	case Sum:
		var s float64
		for _, v := range values {
			s += v
		}
		return []float64{s}
	case Max:
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return []float64{m}
	case Min:
		m := values[0]
		for _, v := range values[1:] {
			if v < m {
				m = v
			}
		}
		return []float64{m}
	case Count:
		return []float64{float64(len(values))}
	case TopK:
		if k <= 0 {
			k = 1
		}
		cp := append([]float64(nil), values...)
		sort.Sort(sort.Reverse(sort.Float64Slice(cp)))
		if len(cp) > k {
			cp = cp[:k]
		}
		return cp
	case Distinct:
		seen := make(map[float64]struct{}, len(values))
		var out []float64
		for _, v := range values {
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				out = append(out, v)
			}
		}
		return out
	default: // Holistic
		return append([]float64(nil), values...)
	}
}
