package agg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFunnelOut(t *testing.T) {
	tests := []struct {
		kind Kind
		k    int
		in   float64
		want float64
	}{
		{Holistic, 0, 7, 7},
		{Holistic, 0, 0, 0},
		{Holistic, 0, -3, 0},
		{Sum, 0, 7, 1},
		{Sum, 0, 0.4, 0.4}, // partial-weight values never inflate
		{Sum, 0, 0, 0},
		{Max, 0, 12, 1},
		{Min, 0, 3, 1},
		{Count, 0, 9, 1},
		{TopK, 10, 25, 10},
		{TopK, 10, 4, 4},
		{TopK, 0, 25, 1}, // k defaults to 1
		{Distinct, 0, 8, 8},
	}
	for _, tt := range tests {
		f := NewFunnel(tt.kind, tt.k)
		if got := f.Out(tt.in); got != tt.want {
			t.Errorf("%v(k=%d).Out(%v) = %v, want %v", tt.kind, tt.k, tt.in, got, tt.want)
		}
		if f.Kind() != tt.kind {
			t.Errorf("Kind() = %v, want %v", f.Kind(), tt.kind)
		}
	}
}

func TestFunnelNeverAmplifies(t *testing.T) {
	// Property: no funnel emits more than it receives (aggregation only
	// shrinks payloads), and outputs are never negative.
	kinds := []Kind{Holistic, Sum, Max, Min, Count, TopK, Distinct}
	f := func(in float64, kindIdx uint8, k uint8) bool {
		in = math.Mod(math.Abs(in), 1e6)
		fn := NewFunnel(kinds[int(kindIdx)%len(kinds)], int(k%16))
		out := fn.Out(in)
		return out >= 0 && out <= in+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCombine(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5}
	tests := []struct {
		kind Kind
		k    int
		want []float64
	}{
		{Sum, 0, []float64{14}},
		{Max, 0, []float64{5}},
		{Min, 0, []float64{1}},
		{Count, 0, []float64{5}},
		{TopK, 2, []float64{5, 4}},
		{Distinct, 0, []float64{3, 1, 4, 5}},
		{Holistic, 0, []float64{3, 1, 4, 1, 5}},
	}
	for _, tt := range tests {
		got := Combine(tt.kind, tt.k, vals)
		if len(got) != len(tt.want) {
			t.Errorf("%v: Combine = %v, want %v", tt.kind, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("%v: Combine = %v, want %v", tt.kind, got, tt.want)
				break
			}
		}
	}
	if got := Combine(Sum, 0, nil); got != nil {
		t.Errorf("Combine(empty) = %v, want nil", got)
	}
}

func TestCombineDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	_ = Combine(TopK, 2, vals)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("input mutated: %v", vals)
	}
}

func TestSpecDefaults(t *testing.T) {
	var s *Spec // nil spec: everything holistic
	if s.KindOf(1) != Holistic {
		t.Fatal("nil spec kind != Holistic")
	}
	if s.Out(1, 5) != 5 {
		t.Fatal("nil spec funnel not identity")
	}
	if s.K(1) != 1 {
		t.Fatal("nil spec K != 1")
	}
}

func TestSpecAssignments(t *testing.T) {
	s := NewSpec()
	s.SetKind(1, Sum)
	s.SetTopK(2, 5)
	if s.KindOf(1) != Sum || s.KindOf(2) != TopK || s.KindOf(3) != Holistic {
		t.Fatalf("kinds = %v %v %v", s.KindOf(1), s.KindOf(2), s.KindOf(3))
	}
	if s.K(2) != 5 {
		t.Fatalf("K(2) = %d", s.K(2))
	}
	if got := s.Out(2, 9); got != 5 {
		t.Fatalf("Out(topk attr, 9) = %v, want 5", got)
	}
	// Distinct plans with the holistic upper bound.
	s.SetKind(3, Distinct)
	if got := s.Out(3, 9); got != 9 {
		t.Fatalf("Out(distinct attr, 9) = %v, want 9 (upper bound)", got)
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{Holistic, Sum, Max, Min, Count, TopK, Distinct} {
		if k.String() == "" || k.String()[0] == 'K' {
			t.Errorf("Kind(%d).String() = %q", int(k), k.String())
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}
