package agg

import (
	"remo/internal/model"
)

// Spec maps attributes to their aggregation. Attributes without an entry
// use holistic collection. The zero value (nil-map spec) is valid and
// means "everything holistic".
type Spec struct {
	kinds map[model.AttrID]Kind
	topK  map[model.AttrID]int
}

// NewSpec returns an empty specification (all attributes holistic).
func NewSpec() *Spec {
	return &Spec{
		kinds: make(map[model.AttrID]Kind),
		topK:  make(map[model.AttrID]int),
	}
}

// SetKind assigns aggregation kind to attribute a.
func (s *Spec) SetKind(a model.AttrID, kind Kind) {
	s.kinds[a] = kind
}

// SetTopK assigns TOP-k aggregation with the given k to attribute a.
func (s *Spec) SetTopK(a model.AttrID, k int) {
	s.kinds[a] = TopK
	s.topK[a] = k
}

// KindOf returns the aggregation kind of attribute a (Holistic when
// unset). A nil Spec is valid and returns Holistic for every attribute.
func (s *Spec) KindOf(a model.AttrID) Kind {
	if s == nil {
		return Holistic
	}
	if k, ok := s.kinds[a]; ok {
		return k
	}
	return Holistic
}

// K returns the TOP-k bound of attribute a (1 when unset).
func (s *Spec) K(a model.AttrID) int {
	if s == nil {
		return 1
	}
	if k, ok := s.topK[a]; ok && k > 0 {
		return k
	}
	return 1
}

// FunnelOf returns the planning funnel for attribute a. The Distinct kind
// intentionally maps to the holistic funnel: its result size is data
// dependent, so REMO plans with the conservative upper bound.
func (s *Spec) FunnelOf(a model.AttrID) Funnel {
	return NewFunnel(s.KindOf(a), s.K(a))
}

// Out applies attribute a's funnel to a weighted incoming value count.
func (s *Spec) Out(a model.AttrID, in float64) float64 {
	return s.FunnelOf(a).Out(in)
}
