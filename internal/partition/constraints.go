package partition

import (
	"remo/internal/model"
)

// Constraints restricts which attribute sets a partition may contain.
// REMO's extensions express their requirements this way: the reliability
// rewriting (§6.2) forbids an attribute and its replication aliases from
// sharing a tree (so replicas travel different paths), and the
// heterogeneous-frequency support (§6.3) pins attributes whose exact rate
// cannot piggyback to their own singleton trees.
//
// The zero value allows everything. Constraints are satisfied by every
// singleton partition, so the search's starting point is always feasible.
type Constraints struct {
	conflicts map[model.AttrID]map[model.AttrID]struct{}
	pinned    map[model.AttrID]struct{}
}

// NewConstraints returns an empty constraint set.
func NewConstraints() *Constraints {
	return &Constraints{
		conflicts: make(map[model.AttrID]map[model.AttrID]struct{}),
		pinned:    make(map[model.AttrID]struct{}),
	}
}

// Forbid records that a and b must never share an attribute set.
func (c *Constraints) Forbid(a, b model.AttrID) {
	if a == b {
		return
	}
	if c.conflicts[a] == nil {
		c.conflicts[a] = make(map[model.AttrID]struct{})
	}
	if c.conflicts[b] == nil {
		c.conflicts[b] = make(map[model.AttrID]struct{})
	}
	c.conflicts[a][b] = struct{}{}
	c.conflicts[b][a] = struct{}{}
}

// Pin records that a must always be alone in its set.
func (c *Constraints) Pin(a model.AttrID) {
	c.pinned[a] = struct{}{}
}

// AllowSet reports whether the attribute set satisfies the constraints.
// A nil receiver allows everything.
func (c *Constraints) AllowSet(s model.AttrSet) bool {
	if c == nil || s.Len() < 2 {
		return true
	}
	attrs := s.Attrs()
	for _, a := range attrs {
		if _, pin := c.pinned[a]; pin {
			return false
		}
	}
	for i, a := range attrs {
		peers := c.conflicts[a]
		if peers == nil {
			continue
		}
		for _, b := range attrs[i+1:] {
			if _, bad := peers[b]; bad {
				return false
			}
		}
	}
	return true
}

// AllowOp reports whether applying op to sets keeps the partition
// feasible. Splits are always allowed; merges are allowed when the union
// satisfies the constraints.
func (c *Constraints) AllowOp(sets []model.AttrSet, op Op) bool {
	if c == nil || op.Kind != MergeOp {
		return true
	}
	return c.AllowSet(sets[op.I].Union(sets[op.J]))
}

// Conflicts enumerates the forbidden pairs in canonical (low, high)
// order, sorted.
func (c *Constraints) Conflicts() [][2]model.AttrID {
	if c == nil {
		return nil
	}
	var out [][2]model.AttrID
	for a, peers := range c.conflicts {
		for b := range peers {
			if a < b {
				out = append(out, [2]model.AttrID{a, b})
			}
		}
	}
	sortPairs(out)
	return out
}

// Pins returns the pinned attributes, ascending.
func (c *Constraints) Pins() []model.AttrID {
	if c == nil {
		return nil
	}
	out := make([]model.AttrID, 0, len(c.pinned))
	for a := range c.pinned {
		out = append(out, a)
	}
	model.SortAttrs(out)
	return out
}

// Merge folds other's conflicts and pins into c.
func (c *Constraints) Merge(other *Constraints) {
	if other == nil {
		return
	}
	for _, p := range other.Conflicts() {
		c.Forbid(p[0], p[1])
	}
	for _, a := range other.Pins() {
		c.Pin(a)
	}
}

func sortPairs(pairs [][2]model.AttrID) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && less(pairs[j], pairs[j-1]); j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

func less(a, b [2]model.AttrID) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// FirstFitAllowed returns a coarse partition of universe that satisfies
// the constraints: attributes are placed first-fit into the first bin
// whose union stays allowed (pinned attributes get their own bins). With
// nil constraints this is the one-set partition. It serves as the
// constraint-respecting analog of ONE-SET when seeding the planner's
// multi-start search.
func FirstFitAllowed(universe model.AttrSet, c *Constraints) []model.AttrSet {
	if universe.Empty() {
		return nil
	}
	if c == nil {
		return OneSet(universe)
	}
	var bins []model.AttrSet
	for _, a := range universe.Attrs() {
		placed := false
		single := model.NewAttrSet(a)
		for i, bin := range bins {
			if u := bin.Union(single); c.AllowSet(u) {
				bins[i] = u
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, single)
		}
	}
	return bins
}

// AllowPartition reports whether every set satisfies the constraints.
func (c *Constraints) AllowPartition(sets []model.AttrSet) bool {
	if c == nil {
		return true
	}
	for _, s := range sets {
		if !c.AllowSet(s) {
			return false
		}
	}
	return true
}
