package partition

import (
	"testing"

	"remo/internal/model"
)

func TestConstraintsNilAllowsEverything(t *testing.T) {
	var c *Constraints
	if !c.AllowSet(model.NewAttrSet(1, 2, 3)) {
		t.Fatal("nil constraints rejected a set")
	}
	if !c.AllowOp(nil, Op{Kind: MergeOp}) {
		t.Fatal("nil constraints rejected an op")
	}
	if !c.AllowPartition(nil) {
		t.Fatal("nil constraints rejected a partition")
	}
	if c.Conflicts() != nil || c.Pins() != nil {
		t.Fatal("nil constraints returned contents")
	}
}

func TestConstraintsForbid(t *testing.T) {
	c := NewConstraints()
	c.Forbid(1, 2)
	c.Forbid(2, 2) // self-conflicts ignored
	if c.AllowSet(model.NewAttrSet(1, 2)) {
		t.Fatal("conflicting pair allowed")
	}
	if c.AllowSet(model.NewAttrSet(1, 2, 3)) {
		t.Fatal("superset of conflicting pair allowed")
	}
	if !c.AllowSet(model.NewAttrSet(1, 3)) {
		t.Fatal("innocent pair rejected")
	}
	if !c.AllowSet(model.NewAttrSet(2)) {
		t.Fatal("singleton rejected")
	}
	pairs := c.Conflicts()
	if len(pairs) != 1 || pairs[0] != [2]model.AttrID{1, 2} {
		t.Fatalf("Conflicts = %v", pairs)
	}
}

func TestConstraintsPin(t *testing.T) {
	c := NewConstraints()
	c.Pin(5)
	if c.AllowSet(model.NewAttrSet(5, 6)) {
		t.Fatal("pinned attr allowed with company")
	}
	if !c.AllowSet(model.NewAttrSet(5)) {
		t.Fatal("pinned singleton rejected")
	}
	if got := c.Pins(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Pins = %v", got)
	}
}

func TestConstraintsAllowOp(t *testing.T) {
	c := NewConstraints()
	c.Forbid(1, 2)
	sets := []model.AttrSet{model.NewAttrSet(1), model.NewAttrSet(2), model.NewAttrSet(3)}
	if c.AllowOp(sets, Op{Kind: MergeOp, I: 0, J: 1}) {
		t.Fatal("forbidden merge allowed")
	}
	if !c.AllowOp(sets, Op{Kind: MergeOp, I: 0, J: 2}) {
		t.Fatal("legal merge rejected")
	}
	if !c.AllowOp(sets, Op{Kind: SplitOp, I: 0, Attr: 1}) {
		t.Fatal("split rejected")
	}
}

func TestConstraintsMerge(t *testing.T) {
	a := NewConstraints()
	a.Forbid(1, 2)
	a.Pin(9)
	b := NewConstraints()
	b.Forbid(3, 4)

	b.Merge(a)
	b.Merge(nil)
	if b.AllowSet(model.NewAttrSet(1, 2)) || b.AllowSet(model.NewAttrSet(3, 4)) {
		t.Fatal("merge lost conflicts")
	}
	if b.AllowSet(model.NewAttrSet(9, 1)) {
		t.Fatal("merge lost pins")
	}
}

func TestConstraintsAllowPartition(t *testing.T) {
	c := NewConstraints()
	c.Forbid(1, 2)
	ok := []model.AttrSet{model.NewAttrSet(1), model.NewAttrSet(2, 3)}
	if !c.AllowPartition(ok) {
		t.Fatal("legal partition rejected")
	}
	bad := []model.AttrSet{model.NewAttrSet(1, 2), model.NewAttrSet(3)}
	if c.AllowPartition(bad) {
		t.Fatal("illegal partition allowed")
	}
}

func TestFirstFitAllowed(t *testing.T) {
	u := model.NewAttrSet(1, 2, 3, 4)
	// No constraints: the coarsest allowed partition is one-set.
	if got := FirstFitAllowed(u, nil); len(got) != 1 || !got[0].Equal(u) {
		t.Fatalf("FirstFitAllowed(nil) = %v", got)
	}
	if got := FirstFitAllowed(model.AttrSet{}, nil); got != nil {
		t.Fatalf("FirstFitAllowed(empty) = %v", got)
	}
	// 1 conflicts with 2: two bins; pins force singletons.
	c := NewConstraints()
	c.Forbid(1, 2)
	got := FirstFitAllowed(u, c)
	if !c.AllowPartition(got) {
		t.Fatalf("first-fit violates constraints: %v", got)
	}
	if err := Validate(got, u); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("bins = %v, want 2", got)
	}
	c.Pin(3)
	got = FirstFitAllowed(u, c)
	if !c.AllowPartition(got) {
		t.Fatalf("pinned first-fit violates constraints: %v", got)
	}
	// Attr 3 must be alone.
	for _, s := range got {
		if s.Contains(3) && s.Len() != 1 {
			t.Fatalf("pinned attr shares a bin: %v", got)
		}
	}
}

func TestConflictsSorted(t *testing.T) {
	c := NewConstraints()
	c.Forbid(5, 2)
	c.Forbid(1, 9)
	c.Forbid(1, 3)
	pairs := c.Conflicts()
	want := [][2]model.AttrID{{1, 3}, {1, 9}, {2, 5}}
	if len(pairs) != len(want) {
		t.Fatalf("Conflicts = %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("Conflicts = %v, want %v", pairs, want)
		}
	}
}

func TestOpString(t *testing.T) {
	if got := (Op{Kind: MergeOp, I: 1, J: 2}).String(); got != "merge(1,2)" {
		t.Fatalf("String = %q", got)
	}
	if got := (Op{Kind: SplitOp, I: 0, Attr: 7}).String(); got != "split(0,a7)" {
		t.Fatalf("String = %q", got)
	}
}
