package partition

import (
	"math/rand"
	"testing"

	"remo/internal/model"
	"remo/internal/task"
)

func TestSingletonAndOneSet(t *testing.T) {
	u := model.NewAttrSet(1, 2, 3)
	sp := Singleton(u)
	if len(sp) != 3 {
		t.Fatalf("Singleton len = %d, want 3", len(sp))
	}
	for _, s := range sp {
		if s.Len() != 1 {
			t.Fatalf("Singleton set %v not singleton", s)
		}
	}
	op := OneSet(u)
	if len(op) != 1 || !op[0].Equal(u) {
		t.Fatalf("OneSet = %v", op)
	}
	if OneSet(model.AttrSet{}) != nil {
		t.Fatal("OneSet(empty) != nil")
	}
	if err := Validate(sp, u); err != nil {
		t.Fatal(err)
	}
	if err := Validate(op, u); err != nil {
		t.Fatal(err)
	}
}

func TestApplyMerge(t *testing.T) {
	sets := []model.AttrSet{
		model.NewAttrSet(1),
		model.NewAttrSet(2),
		model.NewAttrSet(3),
	}
	out := Apply(sets, Op{Kind: MergeOp, I: 0, J: 2})
	if len(out) != 2 {
		t.Fatalf("merged partition = %v", out)
	}
	if !out[0].Equal(model.NewAttrSet(1, 3)) || !out[1].Equal(model.NewAttrSet(2)) {
		t.Fatalf("merged partition = %v", out)
	}
	// Input unchanged.
	if sets[0].Len() != 1 {
		t.Fatal("Apply mutated input")
	}
}

func TestApplySplit(t *testing.T) {
	sets := []model.AttrSet{model.NewAttrSet(1, 2, 3)}
	out := Apply(sets, Op{Kind: SplitOp, I: 0, Attr: 2})
	if len(out) != 2 {
		t.Fatalf("split partition = %v", out)
	}
	if !out[0].Equal(model.NewAttrSet(1, 3)) || !out[1].Equal(model.NewAttrSet(2)) {
		t.Fatalf("split partition = %v", out)
	}
	// Splitting a singleton's only attribute just re-creates it.
	single := []model.AttrSet{model.NewAttrSet(7)}
	out2 := Apply(single, Op{Kind: SplitOp, I: 0, Attr: 7})
	if len(out2) != 1 || !out2[0].Equal(model.NewAttrSet(7)) {
		t.Fatalf("split singleton = %v", out2)
	}
}

func TestNeighborsCount(t *testing.T) {
	// 3 sets: C(3,2)=3 merges. Splits: only multi-attr sets contribute.
	sets := []model.AttrSet{
		model.NewAttrSet(1, 2),
		model.NewAttrSet(3),
		model.NewAttrSet(4),
	}
	ops := Neighbors(sets)
	var merges, splits int
	for _, op := range ops {
		switch op.Kind {
		case MergeOp:
			merges++
		case SplitOp:
			splits++
		}
	}
	if merges != 3 || splits != 2 {
		t.Fatalf("merges=%d splits=%d, want 3/2", merges, splits)
	}
}

func TestApplyPreservesUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		nAttrs := 2 + rng.Intn(8)
		attrs := make([]model.AttrID, nAttrs)
		for i := range attrs {
			attrs[i] = model.AttrID(i + 1)
		}
		universe := model.NewAttrSet(attrs...)
		sets := Singleton(universe)
		// Random walk through the neighborhood.
		for step := 0; step < 10; step++ {
			ops := Neighbors(sets)
			if len(ops) == 0 {
				break
			}
			sets = Apply(sets, ops[rng.Intn(len(ops))])
			if err := Validate(sets, universe); err != nil {
				t.Fatalf("trial %d step %d: %v (sets=%v)", trial, step, err, sets)
			}
		}
	}
}

func TestRankPrefersOverlappingMerges(t *testing.T) {
	d := task.NewDemand()
	// Attrs 1 and 2 share nodes 1-5; attr 3 lives on disjoint nodes.
	for n := model.NodeID(1); n <= 5; n++ {
		d.Set(n, 1, 1)
		d.Set(n, 2, 1)
	}
	for n := model.NodeID(6); n <= 8; n++ {
		d.Set(n, 3, 1)
	}
	sets := Singleton(d.Universe())
	cands := Rank(sets, GainContext{Demand: d, PerMessage: 10, PerValue: 1})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	top := cands[0]
	if top.Op.Kind != MergeOp {
		t.Fatalf("top candidate = %v, want a merge", top.Op)
	}
	// The best merge must unite the overlapping attrs 1 and 2 (sets are
	// index-ordered: 0->attr1, 1->attr2, 2->attr3).
	if !(top.Op.I == 0 && top.Op.J == 1) {
		t.Fatalf("top merge = %v, want merge(0,1)", top.Op)
	}
	if top.Gain != 50 { // C * 5 overlapping nodes
		t.Fatalf("top gain = %v, want 50", top.Gain)
	}
}

func TestRankRewardsSplitsOfCongestedTrees(t *testing.T) {
	d := task.NewDemand()
	for n := model.NodeID(1); n <= 4; n++ {
		d.Set(n, 1, 1)
		d.Set(n, 2, 1)
	}
	sets := []model.AttrSet{model.NewAttrSet(1, 2)}
	// The single tree misses many pairs: splits should rank above no-op.
	congested := Rank(sets, GainContext{Demand: d, PerMessage: 1, PerValue: 1, Missed: []int{6}})
	if len(congested) == 0 || congested[0].Op.Kind != SplitOp {
		t.Fatalf("top candidate = %+v, want a split", congested)
	}
	if congested[0].Gain <= 0 {
		t.Fatalf("split gain = %v, want > 0", congested[0].Gain)
	}
	// Without misses the same split has negative estimated gain.
	healthy := Rank(sets, GainContext{Demand: d, PerMessage: 1, PerValue: 1})
	for _, c := range healthy {
		if c.Op.Kind == SplitOp && c.Gain > 0 {
			t.Fatalf("healthy split gain = %v, want <= 0", c.Gain)
		}
	}
}

func TestValidateRejectsBadPartitions(t *testing.T) {
	u := model.NewAttrSet(1, 2)
	overlap := []model.AttrSet{model.NewAttrSet(1, 2), model.NewAttrSet(2)}
	if err := Validate(overlap, u); err == nil {
		t.Fatal("overlap validated")
	}
	incomplete := []model.AttrSet{model.NewAttrSet(1)}
	if err := Validate(incomplete, u); err == nil {
		t.Fatal("incomplete partition validated")
	}
	empty := []model.AttrSet{model.NewAttrSet(1, 2), {}}
	if err := Validate(empty, u); err == nil {
		t.Fatal("empty set validated")
	}
}

func TestUniverse(t *testing.T) {
	sets := []model.AttrSet{model.NewAttrSet(1), model.NewAttrSet(2, 3)}
	if got := Universe(sets); !got.Equal(model.NewAttrSet(1, 2, 3)) {
		t.Fatalf("Universe = %v", got)
	}
}

func TestRankAssignsStableIndices(t *testing.T) {
	d := task.NewDemand()
	for n := 1; n <= 6; n++ {
		d.Set(model.NodeID(n), 1, 1)
		if n%2 == 0 {
			d.Set(model.NodeID(n), 2, 1)
		}
		if n%3 == 0 {
			d.Set(model.NodeID(n), 3, 1)
		}
	}
	sets := Singleton(d.Universe())
	cands := Rank(sets, GainContext{Demand: d, PerMessage: 5, PerValue: 1})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i, c := range cands {
		if c.Index != i {
			t.Fatalf("candidate %d has Index %d", i, c.Index)
		}
	}
	// Indices survive filtering: dropping candidates keeps the
	// survivors' rank identity intact (the planner filters by
	// constraints before evaluating).
	var merges []Candidate
	for _, c := range cands {
		if c.Op.Kind == MergeOp {
			merges = append(merges, c)
		}
	}
	last := -1
	for _, c := range merges {
		if c.Index <= last {
			t.Fatalf("filtered indices out of order: %d after %d", c.Index, last)
		}
		last = c.Index
	}
}
