package partition

import (
	"reflect"
	"testing"

	"remo/internal/model"
)

func TestNeighborsScopedRestrictsToDirty(t *testing.T) {
	sets := []model.AttrSet{
		model.NewAttrSet(1, 2),
		model.NewAttrSet(3),
		model.NewAttrSet(4, 5),
	}
	dirty := func(i int) bool { return i == 0 }
	ops := NeighborsScoped(sets, dirty)
	for _, op := range ops {
		switch op.Kind {
		case MergeOp:
			if !dirty(op.I) && !dirty(op.J) {
				t.Fatalf("merge %v has no dirty side", op)
			}
		case SplitOp:
			if !dirty(op.I) {
				t.Fatalf("split %v of a clean set", op)
			}
		}
	}
	// Exactly: merges (0,1) and (0,2), splits of set 0's two attrs. The
	// clean pair (1,2) and the clean non-singleton split of set 2 are
	// excluded.
	var merges, splits int
	for _, op := range ops {
		if op.Kind == MergeOp {
			merges++
		} else {
			splits++
		}
	}
	if merges != 2 || splits != 2 {
		t.Fatalf("scoped ops = %d merges %d splits, want 2 and 2 (%v)", merges, splits, ops)
	}
}

// TestNeighborsScopedAllDirtyMatchesUnscoped pins the scoping contract:
// with every set dirty, the scoped generator is exactly the full one.
func TestNeighborsScopedAllDirtyMatchesUnscoped(t *testing.T) {
	sets := []model.AttrSet{
		model.NewAttrSet(1, 2),
		model.NewAttrSet(3),
		model.NewAttrSet(4, 5, 6),
	}
	all := NeighborsScoped(sets, func(int) bool { return true })
	if !reflect.DeepEqual(all, Neighbors(sets)) {
		t.Fatalf("all-dirty scoped ops diverge from Neighbors:\n%v\nvs\n%v", all, Neighbors(sets))
	}
	if got := NeighborsScoped(sets, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("no-dirty scoped ops = %v, want none", got)
	}
}
