// Package partition implements attribute-set partitioning: the baseline
// singleton-set (SP) and one-set (OP) schemes, the merge and split
// operations that define REMO's search neighborhood, and the gain
// estimation that guides the local search (§3.1 of the paper).
package partition

import (
	"fmt"
	"sort"

	"remo/internal/model"
	"remo/internal/task"
)

// Singleton returns the singleton-set partition: one set, and hence one
// collection tree, per attribute (the PIER approach).
func Singleton(universe model.AttrSet) []model.AttrSet {
	attrs := universe.Attrs()
	sets := make([]model.AttrSet, len(attrs))
	for i, a := range attrs {
		sets[i] = model.NewAttrSet(a)
	}
	return sets
}

// OneSet returns the one-set partition: a single tree delivering every
// attribute.
func OneSet(universe model.AttrSet) []model.AttrSet {
	if universe.Empty() {
		return nil
	}
	return []model.AttrSet{universe}
}

// OpKind distinguishes merge and split operations.
type OpKind int

// Operation kinds.
const (
	// MergeOp replaces sets I and J with their union (A_i ⋈ A_j).
	MergeOp OpKind = iota + 1
	// SplitOp removes Attr from set I into a new singleton set
	// (A_i ▷ α).
	SplitOp
)

// Op is one neighborhood move on a partition.
type Op struct {
	Kind OpKind
	// I and J index the partition's sets; J is unused for splits.
	I, J int
	// Attr is the attribute split out; unused for merges.
	Attr model.AttrID
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if o.Kind == MergeOp {
		return fmt.Sprintf("merge(%d,%d)", o.I, o.J)
	}
	return fmt.Sprintf("split(%d,%v)", o.I, o.Attr)
}

// Apply returns the neighboring partition produced by op. The input is
// not modified. Sets keep stable positions where possible: a merge
// writes the union at min(I,J) and drops the other; a split shrinks set I
// in place and appends the new singleton.
func Apply(sets []model.AttrSet, op Op) []model.AttrSet {
	out := make([]model.AttrSet, 0, len(sets)+1)
	switch op.Kind {
	case MergeOp:
		lo, hi := op.I, op.J
		if lo > hi {
			lo, hi = hi, lo
		}
		for i, s := range sets {
			switch i {
			case lo:
				out = append(out, sets[lo].Union(sets[hi]))
			case hi:
				// dropped
			default:
				out = append(out, s)
			}
		}
	case SplitOp:
		for i, s := range sets {
			if i == op.I {
				rem := s.Remove(op.Attr)
				if !rem.Empty() {
					out = append(out, rem)
				}
			} else {
				out = append(out, s)
			}
		}
		out = append(out, model.NewAttrSet(op.Attr))
	}
	return out
}

// Neighbors enumerates every one-step move from the partition: all set
// pair merges and all single-attribute splits of non-singleton sets.
func Neighbors(sets []model.AttrSet) []Op {
	return NeighborsScoped(sets, func(int) bool { return true })
}

// NeighborsScoped enumerates the one-step moves that touch a dirty
// neighborhood: merges where at least one side is dirty, and splits of
// dirty non-singleton sets. dirty reports whether set i belongs to the
// neighborhood. With d dirty sets out of k this is O(d·k) moves instead
// of Neighbors' O(k²) — the structural basis of incremental replanning.
func NeighborsScoped(sets []model.AttrSet, dirty func(int) bool) []Op {
	var ops []Op
	for i := 0; i < len(sets); i++ {
		di := dirty(i)
		for j := i + 1; j < len(sets); j++ {
			if di || dirty(j) {
				ops = append(ops, Op{Kind: MergeOp, I: i, J: j})
			}
		}
	}
	for i, s := range sets {
		if s.Len() < 2 || !dirty(i) {
			continue
		}
		for _, a := range s.Attrs() {
			ops = append(ops, Op{Kind: SplitOp, I: i, Attr: a})
		}
	}
	return ops
}

// Candidate pairs a move with its estimated gain.
type Candidate struct {
	Op Op
	// Gain estimates the total capacity-usage reduction (in cost units)
	// of applying the move; larger is more promising.
	Gain float64
	// Index is the candidate's stable rank position (0 = most
	// promising), assigned by Rank after sorting. It survives later
	// filtering (e.g. constraint checks), so concurrent evaluators can
	// report results against a stable identity and the planner can
	// adopt the best-ranked acceptable candidate deterministically.
	Index int
}

// GainContext supplies the state the estimator needs: the demand, the
// cost model's parameters and, when available, the number of pairs each
// current tree failed to collect (index-aligned with the partition).
type GainContext struct {
	Demand *task.Demand
	// PerMessage and PerValue are the cost model parameters C and a.
	PerMessage float64
	PerValue   float64
	// Missed[i] is the number of demanded pairs tree i could not collect
	// in the current plan (nil when unknown).
	Missed []int
	// MissedAt overrides Missed with a lazy lookup — the scoped search
	// uses it so only the dirty sets' miss counts are ever computed.
	MissedAt func(i int) int
	// Parts optionally overrides participant lookup (a planner-level
	// cache); nil falls back to Demand.Participants.
	Parts func(model.AttrSet) []model.NodeID
}

// participants resolves a set's participants through the cache when
// present.
func (ctx GainContext) participants(set model.AttrSet) []model.NodeID {
	if ctx.Parts != nil {
		return ctx.Parts(set)
	}
	return ctx.Demand.Participants(set)
}

// Rank estimates the gain of every neighborhood move and returns the
// candidates sorted by decreasing gain. This is the guided part of
// REMO's guided local search: only the most promising candidates are
// worth the expensive resource-aware evaluation.
//
// The estimator follows the paper's rationale (the appendix with the
// exact formula is not publicly available): a merge saves one message —
// the per-message overhead C — per node that participates in both trees;
// a split relieves a tree that misses pairs (each missed pair is
// evidence of congestion the split can spread over two trees), at the
// price of an extra message per node left in both resulting trees. The
// resource-aware evaluation decides acceptance; the estimate only orders
// candidates.
func Rank(sets []model.AttrSet, ctx GainContext) []Candidate {
	return rankOps(sets, ctx, Neighbors(sets))
}

// RankScoped ranks only the moves touching the dirty neighborhood (see
// NeighborsScoped), with the same estimator and ordering as Rank.
func RankScoped(sets []model.AttrSet, ctx GainContext, dirty func(int) bool) []Candidate {
	return rankOps(sets, ctx, NeighborsScoped(sets, dirty))
}

// rankOps estimates gains for the given moves and sorts them.
func rankOps(sets []model.AttrSet, ctx GainContext, ops []Op) []Candidate {
	parts := make([][]model.NodeID, len(sets))
	for i, s := range sets {
		parts[i] = ctx.participants(s)
	}
	missed := func(i int) float64 {
		if ctx.MissedAt != nil {
			return float64(ctx.MissedAt(i))
		}
		if ctx.Missed == nil || i >= len(ctx.Missed) {
			return 0
		}
		return float64(ctx.Missed[i])
	}

	cands := make([]Candidate, 0, len(ops))
	for _, op := range ops {
		var gain float64
		switch op.Kind {
		case MergeOp:
			// Each node in both trees sends one message instead of two:
			// the merge reduces capacity usage by C per overlap node.
			overlap := float64(countOverlap(parts[op.I], parts[op.J]))
			gain = ctx.PerMessage * overlap
		case SplitOp:
			rest := sets[op.I].Remove(op.Attr)
			attrNodes := ctx.participants(model.NewAttrSet(op.Attr))
			restNodes := ctx.participants(rest)
			overlap := float64(countOverlap(attrNodes, restNodes))
			gain = ctx.PerValue*missed(op.I) - ctx.PerMessage*overlap
		}
		cands = append(cands, Candidate{Op: op, Gain: gain})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].Gain > cands[j].Gain
	})
	for i := range cands {
		cands[i].Index = i
	}
	return cands
}

// countOverlap counts common ids between two ascending id slices.
func countOverlap(a, b []model.NodeID) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// Universe returns the union of all sets in the partition.
func Universe(sets []model.AttrSet) model.AttrSet {
	var u model.AttrSet
	for _, s := range sets {
		u = u.Union(s)
	}
	return u
}

// Validate checks that sets form a partition of universe: non-empty,
// pairwise disjoint, covering exactly the universe.
func Validate(sets []model.AttrSet, universe model.AttrSet) error {
	var union model.AttrSet
	total := 0
	for i, s := range sets {
		if s.Empty() {
			return fmt.Errorf("partition: set %d is empty", i)
		}
		total += s.Len()
		union = union.Union(s)
	}
	if total != union.Len() {
		return fmt.Errorf("partition: sets overlap (%d attrs in sets, %d distinct)", total, union.Len())
	}
	if !union.Equal(universe) {
		return fmt.Errorf("partition: union %v != universe %v", union, universe)
	}
	return nil
}
