// Package reliability implements REMO's reliability enhancements (§6.2):
// delivering critical metrics redundantly over disjoint overlay paths by
// rewriting monitoring tasks, so the planner itself needs no changes.
//
// Two modes are supported:
//
//   - SSDP (same source, different paths): each replica collects the same
//     attribute from the same nodes under an alias attribute id, and
//     partition constraints keep an attribute and its aliases in
//     different trees, yielding disjoint delivery paths.
//   - DSDP (different sources, different paths): when several nodes
//     observe the same value (e.g. hosts sharing a storage device), each
//     replica collects from a distinct observer set, again in distinct
//     trees.
package reliability

import (
	"errors"
	"fmt"

	"remo/internal/model"
	"remo/internal/partition"
)

// Errors returned by the rewriters.
var (
	ErrBadReplicas = errors.New("reliability: replicas must be >= 2")
	ErrSmallGroups = errors.New("reliability: observer groups cannot supply the requested replicas")
)

// AliasMap records which alias attribute ids stand for which original
// attribute, so collectors can fold replica deliveries back together.
type AliasMap struct {
	toOriginal map[model.AttrID]model.AttrID
	aliases    map[model.AttrID][]model.AttrID
}

// NewAliasMap returns an empty alias map.
func NewAliasMap() *AliasMap {
	return &AliasMap{
		toOriginal: make(map[model.AttrID]model.AttrID),
		aliases:    make(map[model.AttrID][]model.AttrID),
	}
}

// Add registers alias as a stand-in for original.
func (m *AliasMap) Add(alias, original model.AttrID) {
	m.toOriginal[alias] = original
	m.aliases[original] = append(m.aliases[original], alias)
}

// Original resolves an attribute id to its original: aliases map to their
// source, every other id maps to itself.
func (m *AliasMap) Original(a model.AttrID) model.AttrID {
	if m == nil {
		return a
	}
	if orig, ok := m.toOriginal[a]; ok {
		return orig
	}
	return a
}

// Aliases returns the aliases registered for original (not including the
// original itself). The returned slice must not be modified.
func (m *AliasMap) Aliases(original model.AttrID) []model.AttrID {
	if m == nil {
		return nil
	}
	return m.aliases[original]
}

// Len returns the number of registered aliases.
func (m *AliasMap) Len() int {
	if m == nil {
		return 0
	}
	return len(m.toOriginal)
}

// Rewrite is the output of a reliability rewriting: the tasks to submit
// in place of the original, the alias bookkeeping, and the partition
// constraints that force replicas onto different paths.
type Rewrite struct {
	Tasks       []model.Task
	Aliases     *AliasMap
	Constraints *partition.Constraints
}

// SSDP rewrites task t for same-source-different-paths delivery with the
// given replication factor (total copies, >= 2). Alias attribute ids are
// drawn sequentially starting at aliasBase, which must not collide with
// real attribute ids.
func SSDP(t model.Task, replicas int, aliasBase model.AttrID) (Rewrite, error) {
	if replicas < 2 {
		return Rewrite{}, fmt.Errorf("%w: %d", ErrBadReplicas, replicas)
	}
	if err := t.Validate(); err != nil {
		return Rewrite{}, err
	}

	rw := Rewrite{
		Aliases:     NewAliasMap(),
		Constraints: partition.NewConstraints(),
	}
	rw.Tasks = append(rw.Tasks, t.Clone())
	next := aliasBase
	aliasSets := make([][]model.AttrID, len(t.Attrs))
	for i, orig := range t.Attrs {
		aliasSets[i] = []model.AttrID{orig}
	}
	for r := 1; r < replicas; r++ {
		replica := model.Task{
			Name:  fmt.Sprintf("%s#ssdp%d", t.Name, r),
			Nodes: append([]model.NodeID(nil), t.Nodes...),
		}
		for i, orig := range t.Attrs {
			alias := next
			next++
			rw.Aliases.Add(alias, orig)
			replica.Attrs = append(replica.Attrs, alias)
			aliasSets[i] = append(aliasSets[i], alias)
		}
		rw.Tasks = append(rw.Tasks, replica)
	}
	// An attribute and all of its aliases must travel distinct trees.
	for _, group := range aliasSets {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				rw.Constraints.Forbid(group[i], group[j])
			}
		}
	}
	return rw, nil
}

// ObserverGroups lists, for one logically shared value, the node groups
// that each observe it (N(v_1), ..., N(v_n) in the paper's notation).
type ObserverGroups [][]model.NodeID

// DSDP rewrites a shared-value monitoring request into replicas tasks,
// each collecting attribute attr from a distinct set of observers (one
// drawn from each group), delivered over distinct trees. The replication
// factor is capped by the smallest group size; requesting more returns
// ErrSmallGroups.
func DSDP(name string, attr model.AttrID, groups ObserverGroups, replicas int, aliasBase model.AttrID) (Rewrite, error) {
	if replicas < 2 {
		return Rewrite{}, fmt.Errorf("%w: %d", ErrBadReplicas, replicas)
	}
	if len(groups) == 0 {
		return Rewrite{}, fmt.Errorf("%w: no observer groups", ErrSmallGroups)
	}
	for _, g := range groups {
		if len(g) < replicas {
			return Rewrite{}, fmt.Errorf("%w: group size %d < replicas %d",
				ErrSmallGroups, len(g), replicas)
		}
	}

	rw := Rewrite{
		Aliases:     NewAliasMap(),
		Constraints: partition.NewConstraints(),
	}
	ids := []model.AttrID{attr}
	next := aliasBase
	for r := 0; r < replicas; r++ {
		id := attr
		if r > 0 {
			id = next
			next++
			rw.Aliases.Add(id, attr)
			ids = append(ids, id)
		}
		task := model.Task{
			Name:  fmt.Sprintf("%s#dsdp%d", name, r),
			Attrs: []model.AttrID{id},
		}
		// The r-th replica takes the r-th observer of every group, so
		// replicas read from disjoint node sets.
		for _, g := range groups {
			task.Nodes = append(task.Nodes, g[r])
		}
		rw.Tasks = append(rw.Tasks, task)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			rw.Constraints.Forbid(ids[i], ids[j])
		}
	}
	return rw, nil
}

// MergeConstraints folds several rewrites' constraints into one
// constraint set for the planner.
func MergeConstraints(rewrites ...Rewrite) *partition.Constraints {
	out := partition.NewConstraints()
	for _, rw := range rewrites {
		out.Merge(rw.Constraints)
	}
	return out
}
