package reliability

import (
	"errors"
	"fmt"
	"sort"

	"remo/internal/model"
)

// ErrColocated marks an observer group whose members all sit in one
// region: region-spread replication cannot survive that region's loss.
var ErrColocated = errors.New("reliability: observer group colocated in a single region")

// SpreadRegions counts the distinct regions the given nodes span.
func SpreadRegions(nodes []model.NodeID, regionOf func(model.NodeID) string) int {
	if regionOf == nil {
		return 1
	}
	seen := make(map[string]struct{}, len(nodes))
	for _, n := range nodes {
		seen[regionOf(n)] = struct{}{}
	}
	return len(seen)
}

// RegionDSDP is the region-aware form of DSDP: it reorders every
// observer group round-robin across regions before handing it to DSDP,
// so the r-th replica's observers — and therefore the replica trees —
// draw from as many distinct regions as the groups allow. The result is
// the anti-colocation guarantee for critical attributes: no single
// region holds every owner of a replicated value, so one region's loss
// leaves at least one replica path alive. A group whose members all
// share one region cannot be spread and returns ErrColocated.
func RegionDSDP(name string, attr model.AttrID, groups ObserverGroups, replicas int, aliasBase model.AttrID, regionOf func(model.NodeID) string) (Rewrite, error) {
	if regionOf == nil {
		return Rewrite{}, fmt.Errorf("%w: no region labeling", ErrColocated)
	}
	spread := make(ObserverGroups, len(groups))
	for i, g := range groups {
		sg, err := regionSpreadOrder(g, regionOf)
		if err != nil {
			return Rewrite{}, fmt.Errorf("group %d: %w", i, err)
		}
		spread[i] = sg
	}
	return DSDP(name, attr, spread, replicas, aliasBase)
}

// regionSpreadOrder reorders one observer group so that consecutive
// elements rotate through the group's regions: regions sorted by label,
// nodes sorted by id within each region, then taken round-robin. The
// ordering is a pure function of the inputs, keeping rewrites
// deterministic.
func regionSpreadOrder(g []model.NodeID, regionOf func(model.NodeID) string) ([]model.NodeID, error) {
	byRegion := make(map[string][]model.NodeID)
	for _, n := range g {
		r := regionOf(n)
		byRegion[r] = append(byRegion[r], n)
	}
	if len(byRegion) < 2 {
		return nil, fmt.Errorf("%w: %d observers all in one region", ErrColocated, len(g))
	}
	regions := make([]string, 0, len(byRegion))
	for r := range byRegion {
		regions = append(regions, r)
		model.SortNodes(byRegion[r])
	}
	sort.Strings(regions)
	out := make([]model.NodeID, 0, len(g))
	for k := 0; len(out) < len(g); k++ {
		for _, r := range regions {
			if k < len(byRegion[r]) {
				out = append(out, byRegion[r][k])
			}
		}
	}
	return out, nil
}
