package reliability

import (
	"errors"
	"testing"

	"remo/internal/model"
)

func TestSSDPRewrite(t *testing.T) {
	orig := model.Task{Name: "critical", Attrs: []model.AttrID{1, 2}, Nodes: []model.NodeID{1, 2, 3}}
	rw, err := SSDP(orig, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(rw.Tasks))
	}
	replica := rw.Tasks[1]
	if len(replica.Attrs) != 2 || len(replica.Nodes) != 3 {
		t.Fatalf("replica = %+v", replica)
	}
	// Aliases resolve to their originals.
	for i, alias := range replica.Attrs {
		if got := rw.Aliases.Original(alias); got != orig.Attrs[i] {
			t.Fatalf("Original(%v) = %v, want %v", alias, got, orig.Attrs[i])
		}
	}
	if rw.Aliases.Len() != 2 {
		t.Fatalf("alias count = %d, want 2", rw.Aliases.Len())
	}
	// Original and alias must not share a tree.
	if rw.Constraints.AllowSet(model.NewAttrSet(1, replica.Attrs[0])) {
		t.Fatal("alias allowed in the same set as its original")
	}
	// Unrelated attrs may share trees (the efficiency win of REMO-k over
	// SINGLETON-SET-k).
	if !rw.Constraints.AllowSet(model.NewAttrSet(1, 2)) {
		t.Fatal("unrelated originals forbidden from sharing a set")
	}
	if !rw.Constraints.AllowSet(model.NewAttrSet(replica.Attrs[0], 2)) {
		t.Fatal("alias of attr 1 forbidden from sharing with attr 2")
	}
}

func TestSSDPThreeReplicas(t *testing.T) {
	orig := model.Task{Name: "t", Attrs: []model.AttrID{1}, Nodes: []model.NodeID{1}}
	rw, err := SSDP(orig, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Tasks) != 3 {
		t.Fatalf("tasks = %d, want 3", len(rw.Tasks))
	}
	aliases := rw.Aliases.Aliases(1)
	if len(aliases) != 2 {
		t.Fatalf("aliases = %v, want 2", aliases)
	}
	// All three copies pairwise conflict.
	ids := append([]model.AttrID{1}, aliases...)
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if rw.Constraints.AllowSet(model.NewAttrSet(ids[i], ids[j])) {
				t.Fatalf("copies %v and %v may share a set", ids[i], ids[j])
			}
		}
	}
}

func TestSSDPRejectsBadInput(t *testing.T) {
	good := model.Task{Name: "t", Attrs: []model.AttrID{1}, Nodes: []model.NodeID{1}}
	if _, err := SSDP(good, 1, 1000); !errors.Is(err, ErrBadReplicas) {
		t.Fatalf("replicas=1 error = %v", err)
	}
	if _, err := SSDP(model.Task{Name: "t"}, 2, 1000); err == nil {
		t.Fatal("invalid task accepted")
	}
}

func TestDSDPRewrite(t *testing.T) {
	groups := ObserverGroups{
		{1, 2, 3}, // observers of value v1
		{4, 5, 6}, // observers of value v2
	}
	rw, err := DSDP("storage", 7, groups, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Tasks) != 2 {
		t.Fatalf("tasks = %d, want 2", len(rw.Tasks))
	}
	// Replicas draw disjoint observers.
	seen := make(map[model.NodeID]int)
	for _, task := range rw.Tasks {
		if len(task.Nodes) != 2 {
			t.Fatalf("task observers = %v, want one per group", task.Nodes)
		}
		for _, n := range task.Nodes {
			seen[n]++
		}
	}
	for n, c := range seen {
		if c > 1 {
			t.Fatalf("observer %v reused across replicas", n)
		}
	}
	// First replica keeps the original attribute id; the second uses an
	// alias conflicting with it.
	alias := rw.Tasks[1].Attrs[0]
	if rw.Aliases.Original(alias) != 7 {
		t.Fatalf("alias original = %v, want 7", rw.Aliases.Original(alias))
	}
	if rw.Constraints.AllowSet(model.NewAttrSet(7, alias)) {
		t.Fatal("replica attrs may share a set")
	}
}

func TestDSDPRejectsSmallGroups(t *testing.T) {
	groups := ObserverGroups{{1}}
	if _, err := DSDP("x", 1, groups, 2, 100); !errors.Is(err, ErrSmallGroups) {
		t.Fatalf("error = %v, want ErrSmallGroups", err)
	}
	if _, err := DSDP("x", 1, nil, 2, 100); !errors.Is(err, ErrSmallGroups) {
		t.Fatalf("empty groups error = %v", err)
	}
	if _, err := DSDP("x", 1, groups, 1, 100); !errors.Is(err, ErrBadReplicas) {
		t.Fatalf("replicas=1 error = %v", err)
	}
}

func TestAliasMapNilSafe(t *testing.T) {
	var m *AliasMap
	if m.Original(5) != 5 {
		t.Fatal("nil map Original broken")
	}
	if m.Aliases(5) != nil || m.Len() != 0 {
		t.Fatal("nil map accessors broken")
	}
}

func TestMergeConstraints(t *testing.T) {
	t1 := model.Task{Name: "a", Attrs: []model.AttrID{1}, Nodes: []model.NodeID{1}}
	t2 := model.Task{Name: "b", Attrs: []model.AttrID{2}, Nodes: []model.NodeID{1}}
	rw1, err := SSDP(t1, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rw2, err := SSDP(t2, 2, 1100)
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeConstraints(rw1, rw2)
	a1 := rw1.Aliases.Aliases(1)[0]
	a2 := rw2.Aliases.Aliases(2)[0]
	if merged.AllowSet(model.NewAttrSet(1, a1)) {
		t.Fatal("merged constraints lost rw1 conflict")
	}
	if merged.AllowSet(model.NewAttrSet(2, a2)) {
		t.Fatal("merged constraints lost rw2 conflict")
	}
	if !merged.AllowSet(model.NewAttrSet(1, 2)) {
		t.Fatal("merged constraints over-restrict")
	}
}
