package reliability

import (
	"errors"
	"reflect"
	"testing"

	"remo/internal/model"
)

// threeRegions labels nodes 1-3 r0, 4-6 r1, 7-9 r2.
func threeRegions(n model.NodeID) string {
	switch {
	case n <= 3:
		return "r0"
	case n <= 6:
		return "r1"
	default:
		return "r2"
	}
}

func TestSpreadRegions(t *testing.T) {
	if got := SpreadRegions([]model.NodeID{1, 2, 4, 7}, threeRegions); got != 3 {
		t.Fatalf("SpreadRegions = %d, want 3", got)
	}
	if got := SpreadRegions([]model.NodeID{1, 2}, threeRegions); got != 1 {
		t.Fatalf("SpreadRegions = %d, want 1", got)
	}
	if got := SpreadRegions([]model.NodeID{1, 7}, nil); got != 1 {
		t.Fatalf("SpreadRegions with nil labeling = %d, want 1", got)
	}
}

func TestRegionDSDPSpreadsReplicas(t *testing.T) {
	groups := ObserverGroups{
		{1, 4, 7, 2}, // r0, r1, r2, r0
		{5, 2, 8, 6}, // r1, r0, r2, r1
	}
	rw, err := RegionDSDP("crit", 9, groups, 2, 1000, threeRegions)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Tasks) != 2 {
		t.Fatalf("got %d tasks, want 2", len(rw.Tasks))
	}
	// Replica r takes the r-th element of every spread group; the spread
	// ordering must hand consecutive replicas observers from distinct
	// regions.
	for g := range groups {
		r0 := threeRegions(rw.Tasks[0].Nodes[g])
		r1 := threeRegions(rw.Tasks[1].Nodes[g])
		if r0 == r1 {
			t.Fatalf("group %d: replicas colocated in %q (nodes %v, %v)",
				g, r0, rw.Tasks[0].Nodes[g], rw.Tasks[1].Nodes[g])
		}
	}
	// Round-robin over sorted regions with sorted nodes is fully
	// deterministic.
	again, err := RegionDSDP("crit", 9, groups, 2, 1000, threeRegions)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rw.Tasks {
		if !reflect.DeepEqual(rw.Tasks[i].Nodes, again.Tasks[i].Nodes) {
			t.Fatalf("nondeterministic rewrite: %v vs %v", rw.Tasks[i].Nodes, again.Tasks[i].Nodes)
		}
	}
	// Replicas still travel distinct trees: the alias constraint carries
	// over from DSDP.
	if rw.Aliases.Len() != 1 {
		t.Fatalf("alias count = %d, want 1", rw.Aliases.Len())
	}
}

func TestRegionDSDPColocatedGroup(t *testing.T) {
	_, err := RegionDSDP("crit", 9, ObserverGroups{{1, 2, 3}}, 2, 1000, threeRegions)
	if !errors.Is(err, ErrColocated) {
		t.Fatalf("colocated group accepted: %v", err)
	}
	_, err = RegionDSDP("crit", 9, ObserverGroups{{1, 4}}, 2, 1000, nil)
	if !errors.Is(err, ErrColocated) {
		t.Fatalf("nil labeling accepted: %v", err)
	}
}

func TestRegionDSDPKeepsDSDPValidation(t *testing.T) {
	_, err := RegionDSDP("crit", 9, ObserverGroups{{1, 4}}, 1, 1000, threeRegions)
	if !errors.Is(err, ErrBadReplicas) {
		t.Fatalf("replicas=1 accepted: %v", err)
	}
	_, err = RegionDSDP("crit", 9, ObserverGroups{{1, 4}}, 3, 1000, threeRegions)
	if !errors.Is(err, ErrSmallGroups) {
		t.Fatalf("undersized group accepted: %v", err)
	}
}
