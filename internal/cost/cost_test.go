package cost

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidates(t *testing.T) {
	tests := []struct {
		name    string
		c, a    float64
		wantErr bool
	}{
		{name: "valid", c: 10, a: 1},
		{name: "zero per-message", c: 0, a: 1, wantErr: true},
		{name: "zero per-value", c: 10, a: 0, wantErr: true},
		{name: "negative", c: -1, a: 1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.c, tt.a)
			if gotErr := err != nil; gotErr != tt.wantErr {
				t.Fatalf("New(%v, %v) error = %v, wantErr %v", tt.c, tt.a, err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrInvalidModel) {
				t.Fatalf("error %v does not wrap ErrInvalidModel", err)
			}
		})
	}
}

func TestMessageCost(t *testing.T) {
	m := Model{PerMessage: 10, PerValue: 2}
	tests := []struct {
		values int
		want   float64
	}{
		{values: 0, want: 10},
		{values: 1, want: 12},
		{values: 256, want: 522},
		{values: -5, want: 10}, // negative clamps to empty message
	}
	for _, tt := range tests {
		if got := m.Message(tt.values); got != tt.want {
			t.Errorf("Message(%d) = %v, want %v", tt.values, got, tt.want)
		}
	}
}

func TestRatio(t *testing.T) {
	m := Model{PerMessage: 20, PerValue: 2}
	if got := m.Ratio(); got != 10 {
		t.Fatalf("Ratio() = %v, want 10", got)
	}
	m2 := m.WithRatio(5)
	if m2.PerMessage != 10 || m2.PerValue != 2 {
		t.Fatalf("WithRatio(5) = %+v, want C=10 a=2", m2)
	}
}

func TestLedgerChargeRefund(t *testing.T) {
	l := NewLedger()
	l.SetBudget(1, 100)

	if err := l.Charge(1, 60); err != nil {
		t.Fatalf("first charge: %v", err)
	}
	if err := l.Charge(1, 50); err == nil {
		t.Fatal("overcommit charge succeeded, want error")
	} else {
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("error %v is not *OverloadError", err)
		}
		if oe.Entity != 1 || oe.Requested != 50 {
			t.Fatalf("OverloadError = %+v", oe)
		}
	}
	if got := l.Used(1); got != 60 {
		t.Fatalf("failed charge mutated usage: %v", got)
	}
	l.Refund(1, 60)
	if got := l.Used(1); got != 0 {
		t.Fatalf("after refund Used = %v, want 0", got)
	}
}

func TestLedgerForceAndOverloaded(t *testing.T) {
	l := NewLedger()
	l.SetBudget(1, 10)
	l.SetBudget(2, 10)
	l.Force(1, 15)
	over := l.Overloaded()
	if len(over) != 1 || over[0] != 1 {
		t.Fatalf("Overloaded() = %v, want [1]", over)
	}
	if got := l.Available(1); got != -5 {
		t.Fatalf("Available(1) = %v, want -5", got)
	}
}

func TestLedgerCloneIsDeep(t *testing.T) {
	l := NewLedger()
	l.SetBudget(1, 10)
	_ = l.Charge(1, 4)
	c := l.Clone()
	_ = c.Charge(1, 4)
	if l.Used(1) != 4 {
		t.Fatalf("clone charge leaked into original: %v", l.Used(1))
	}
	if c.Used(1) != 8 {
		t.Fatalf("clone Used = %v, want 8", c.Used(1))
	}
}

func TestLedgerReset(t *testing.T) {
	l := NewLedger()
	l.SetBudget(7, 3)
	_ = l.Charge(7, 2)
	l.Reset()
	if l.Used(7) != 0 || l.Budget(7) != 3 {
		t.Fatalf("Reset lost state: used=%v budget=%v", l.Used(7), l.Budget(7))
	}
}

func TestLedgerChargeRefundRoundTrip(t *testing.T) {
	// Property: any sequence of successful charges followed by matching
	// refunds restores availability.
	f := func(amounts []float64) bool {
		l := NewLedger()
		l.SetBudget(0, 1e12)
		var charged []float64
		for _, a := range amounts {
			a = math.Mod(math.Abs(a), 1e6)
			if math.IsNaN(a) {
				continue
			}
			if err := l.Charge(0, a); err == nil {
				charged = append(charged, a)
			}
		}
		for _, a := range charged {
			l.Refund(0, a)
		}
		return math.Abs(l.Used(0)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalUsedAndEntities(t *testing.T) {
	l := NewLedger()
	l.SetBudget(3, 10)
	l.SetBudget(1, 10)
	_ = l.Charge(3, 2.5)
	_ = l.Charge(1, 1.5)
	if got := l.TotalUsed(); got != 4 {
		t.Fatalf("TotalUsed = %v, want 4", got)
	}
	ents := l.Entities()
	if len(ents) != 2 || ents[0] != 1 || ents[1] != 3 {
		t.Fatalf("Entities = %v, want [1 3]", ents)
	}
}

func TestRate(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{name: "empty is full rate", in: nil, want: 1},
		{name: "single", in: []float64{0.5}, want: 0.5},
		{name: "product", in: []float64{0.5, 0.2}, want: 0.1},
		{name: "NaN ignored", in: []float64{math.NaN(), 0.25}, want: 0.25},
		{name: "all NaN is full rate", in: []float64{math.NaN(), math.NaN()}, want: 1},
		{name: "clamped above", in: []float64{3, 0.5}, want: 1},
		{name: "clamped below", in: []float64{-0.5, 0.5}, want: 0},
		{name: "zero annihilates", in: []float64{0, 0.9}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Rate(tt.in...); math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Rate(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestRateAlwaysInUnitInterval(t *testing.T) {
	f := func(ms []float64) bool {
		r := Rate(ms...)
		return r >= 0 && r <= 1 && !math.IsNaN(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveBounds(t *testing.T) {
	m := Default()
	if got := m.Effective(16, 0); got != m.PerMessage {
		t.Fatalf("Effective at rate 0 = %v, want PerMessage %v", got, m.PerMessage)
	}
	if got := m.Effective(16, 1); got != m.Message(16) {
		t.Fatalf("Effective at rate 1 = %v, want Message %v", got, m.Message(16))
	}
	if got := m.Effective(16, 2); got != m.Message(16) {
		t.Fatalf("Effective clamps rate above 1: got %v, want %v", got, m.Message(16))
	}
	lo, hi := m.Effective(16, 0.2), m.Effective(16, 0.7)
	if !(lo < hi) {
		t.Fatalf("Effective not monotone in rate: %v !< %v", lo, hi)
	}
}

// TestLedgerComposedRateNeverUndercounts is the frequency x prediction
// composition property. The two traffic-reduction axes are hierarchical:
// the frequency spec decides which rounds a slot is due, and dead-band
// suppression then elides a fraction of those due transmissions. The
// planner's per-slot estimate uses the product of the measured per-axis
// rates (Rate(w, r) with w = due/rounds, r = sent/due); the property is
// that a ledger whose budget is set from those estimates admits every
// realized per-round charge — composing multiplicatively never
// undercounts the realized traffic.
func TestLedgerComposedRateNeverUndercounts(t *testing.T) {
	m := Default()
	f := func(seed uint32, nSlots8 uint8, rounds8 uint8) bool {
		nSlots := 1 + int(nSlots8%8)
		rounds := 1 + int(rounds8%64)
		rng := seed
		next := func(mod uint32) uint32 {
			rng = rng*1664525 + 1013904223
			return (rng >> 8) % mod
		}
		periods := make([]int, nSlots)
		suppress := make([][]bool, nSlots) // per due occurrence
		for i := range periods {
			periods[i] = 1 + int(next(5))
		}
		// Realized schedule: slot i is due when round%period == 0, and a
		// pseudo-random subset of due rounds is suppressed.
		sent := make([]int, nSlots)
		due := make([]int, nSlots)
		perRound := make([]int, rounds) // values on the wire each round
		for i := 0; i < nSlots; i++ {
			for r := 0; r < rounds; r++ {
				if r%periods[i] != 0 {
					continue
				}
				due[i]++
				if next(4) == 0 { // ~25% suppressed
					suppress[i] = append(suppress[i], true)
					continue
				}
				sent[i]++
				perRound[r]++
			}
		}
		// Planner estimate from measured per-axis rates.
		budget := float64(rounds) * m.PerMessage
		for i := 0; i < nSlots; i++ {
			w := float64(due[i]) / float64(rounds)
			r := 1.0
			if due[i] > 0 {
				r = float64(sent[i]) / float64(due[i])
			}
			budget += float64(rounds) * m.Values(1) * Rate(w, r)
		}
		l := NewLedger()
		l.SetBudget(0, budget)
		for r := 0; r < rounds; r++ {
			if err := l.Charge(0, m.Message(perRound[r])); err != nil {
				t.Logf("round %d rejected: %v (budget %v used %v)", r, err, budget, l.Used(0))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
