package cost

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidates(t *testing.T) {
	tests := []struct {
		name    string
		c, a    float64
		wantErr bool
	}{
		{name: "valid", c: 10, a: 1},
		{name: "zero per-message", c: 0, a: 1, wantErr: true},
		{name: "zero per-value", c: 10, a: 0, wantErr: true},
		{name: "negative", c: -1, a: 1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.c, tt.a)
			if gotErr := err != nil; gotErr != tt.wantErr {
				t.Fatalf("New(%v, %v) error = %v, wantErr %v", tt.c, tt.a, err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrInvalidModel) {
				t.Fatalf("error %v does not wrap ErrInvalidModel", err)
			}
		})
	}
}

func TestMessageCost(t *testing.T) {
	m := Model{PerMessage: 10, PerValue: 2}
	tests := []struct {
		values int
		want   float64
	}{
		{values: 0, want: 10},
		{values: 1, want: 12},
		{values: 256, want: 522},
		{values: -5, want: 10}, // negative clamps to empty message
	}
	for _, tt := range tests {
		if got := m.Message(tt.values); got != tt.want {
			t.Errorf("Message(%d) = %v, want %v", tt.values, got, tt.want)
		}
	}
}

func TestRatio(t *testing.T) {
	m := Model{PerMessage: 20, PerValue: 2}
	if got := m.Ratio(); got != 10 {
		t.Fatalf("Ratio() = %v, want 10", got)
	}
	m2 := m.WithRatio(5)
	if m2.PerMessage != 10 || m2.PerValue != 2 {
		t.Fatalf("WithRatio(5) = %+v, want C=10 a=2", m2)
	}
}

func TestLedgerChargeRefund(t *testing.T) {
	l := NewLedger()
	l.SetBudget(1, 100)

	if err := l.Charge(1, 60); err != nil {
		t.Fatalf("first charge: %v", err)
	}
	if err := l.Charge(1, 50); err == nil {
		t.Fatal("overcommit charge succeeded, want error")
	} else {
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("error %v is not *OverloadError", err)
		}
		if oe.Entity != 1 || oe.Requested != 50 {
			t.Fatalf("OverloadError = %+v", oe)
		}
	}
	if got := l.Used(1); got != 60 {
		t.Fatalf("failed charge mutated usage: %v", got)
	}
	l.Refund(1, 60)
	if got := l.Used(1); got != 0 {
		t.Fatalf("after refund Used = %v, want 0", got)
	}
}

func TestLedgerForceAndOverloaded(t *testing.T) {
	l := NewLedger()
	l.SetBudget(1, 10)
	l.SetBudget(2, 10)
	l.Force(1, 15)
	over := l.Overloaded()
	if len(over) != 1 || over[0] != 1 {
		t.Fatalf("Overloaded() = %v, want [1]", over)
	}
	if got := l.Available(1); got != -5 {
		t.Fatalf("Available(1) = %v, want -5", got)
	}
}

func TestLedgerCloneIsDeep(t *testing.T) {
	l := NewLedger()
	l.SetBudget(1, 10)
	_ = l.Charge(1, 4)
	c := l.Clone()
	_ = c.Charge(1, 4)
	if l.Used(1) != 4 {
		t.Fatalf("clone charge leaked into original: %v", l.Used(1))
	}
	if c.Used(1) != 8 {
		t.Fatalf("clone Used = %v, want 8", c.Used(1))
	}
}

func TestLedgerReset(t *testing.T) {
	l := NewLedger()
	l.SetBudget(7, 3)
	_ = l.Charge(7, 2)
	l.Reset()
	if l.Used(7) != 0 || l.Budget(7) != 3 {
		t.Fatalf("Reset lost state: used=%v budget=%v", l.Used(7), l.Budget(7))
	}
}

func TestLedgerChargeRefundRoundTrip(t *testing.T) {
	// Property: any sequence of successful charges followed by matching
	// refunds restores availability.
	f := func(amounts []float64) bool {
		l := NewLedger()
		l.SetBudget(0, 1e12)
		var charged []float64
		for _, a := range amounts {
			a = math.Mod(math.Abs(a), 1e6)
			if math.IsNaN(a) {
				continue
			}
			if err := l.Charge(0, a); err == nil {
				charged = append(charged, a)
			}
		}
		for _, a := range charged {
			l.Refund(0, a)
		}
		return math.Abs(l.Used(0)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalUsedAndEntities(t *testing.T) {
	l := NewLedger()
	l.SetBudget(3, 10)
	l.SetBudget(1, 10)
	_ = l.Charge(3, 2.5)
	_ = l.Charge(1, 1.5)
	if got := l.TotalUsed(); got != 4 {
		t.Fatalf("TotalUsed = %v, want 4", got)
	}
	ents := l.Entities()
	if len(ents) != 2 || ents[0] != 1 || ents[1] != 3 {
		t.Fatalf("Entities = %v, want [1 3]", ents)
	}
}
