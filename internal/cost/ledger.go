package cost

import (
	"fmt"
	"sort"
)

// Ledger tracks per-entity capacity usage against per-entity budgets. The
// planner uses one ledger per candidate plan to account for every node's
// send and receive costs; the emulated cluster uses a ledger per collection
// round to enforce capacity at runtime.
//
// Ledger is not safe for concurrent use; each goroutine should own its own
// ledger.
type Ledger struct {
	budget map[int]float64
	used   map[int]float64
}

// NewLedger returns an empty ledger with no budgets registered.
func NewLedger() *Ledger {
	return &Ledger{
		budget: make(map[int]float64),
		used:   make(map[int]float64),
	}
}

// SetBudget registers (or replaces) the capacity budget of entity id.
func (l *Ledger) SetBudget(id int, capacity float64) {
	l.budget[id] = capacity
}

// Budget returns the registered budget of entity id, or 0 if none.
func (l *Ledger) Budget(id int) float64 {
	return l.budget[id]
}

// Used returns the capacity consumed so far by entity id.
func (l *Ledger) Used(id int) float64 {
	return l.used[id]
}

// Available returns the remaining capacity of entity id. It can be
// negative if Force was used to overcommit.
func (l *Ledger) Available(id int) float64 {
	return l.budget[id] - l.used[id]
}

// CanCharge reports whether amount more capacity units fit within the
// budget of entity id.
func (l *Ledger) CanCharge(id int, amount float64) bool {
	return l.used[id]+amount <= l.budget[id]+epsilon
}

// Charge consumes amount capacity units from entity id, failing without
// side effects if the budget would be exceeded.
func (l *Ledger) Charge(id int, amount float64) error {
	if !l.CanCharge(id, amount) {
		return &OverloadError{
			Entity:    id,
			Requested: amount,
			Used:      l.used[id],
			Budget:    l.budget[id],
		}
	}
	l.used[id] += amount
	return nil
}

// Force consumes amount capacity units from entity id even if that
// overcommits the budget. Used when mirroring decisions already validated
// elsewhere.
func (l *Ledger) Force(id int, amount float64) {
	l.used[id] += amount
}

// Refund returns amount capacity units to entity id.
func (l *Ledger) Refund(id int, amount float64) {
	l.used[id] -= amount
	if l.used[id] < 0 && l.used[id] > -epsilon {
		l.used[id] = 0
	}
}

// Reset clears all usage, keeping budgets.
func (l *Ledger) Reset() {
	for k := range l.used {
		delete(l.used, k)
	}
}

// TotalUsed returns the sum of usage across all entities.
func (l *Ledger) TotalUsed() float64 {
	var sum float64
	for _, u := range l.used {
		sum += u
	}
	return sum
}

// Entities returns the ids with a registered budget in ascending order.
func (l *Ledger) Entities() []int {
	ids := make([]int, 0, len(l.budget))
	for id := range l.budget {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Overloaded returns the ids whose usage exceeds their budget (beyond the
// floating-point tolerance), in ascending order.
func (l *Ledger) Overloaded() []int {
	var ids []int
	for id, u := range l.used {
		if u > l.budget[id]+epsilon {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// Clone returns a deep copy of the ledger.
func (l *Ledger) Clone() *Ledger {
	c := &Ledger{
		budget: make(map[int]float64, len(l.budget)),
		used:   make(map[int]float64, len(l.used)),
	}
	for k, v := range l.budget {
		c.budget[k] = v
	}
	for k, v := range l.used {
		c.used[k] = v
	}
	return c
}

// epsilon absorbs floating-point accumulation error in capacity
// comparisons.
const epsilon = 1e-9

// OverloadError reports a rejected charge.
type OverloadError struct {
	Entity    int
	Requested float64
	Used      float64
	Budget    float64
}

// Error implements the error interface.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("cost: entity %d overloaded: used %.3f + requested %.3f > budget %.3f",
		e.Entity, e.Used, e.Requested, e.Budget)
}
