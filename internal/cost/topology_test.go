package cost

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestTopologyEdgeCostDefaults(t *testing.T) {
	var nilTopo *Topology
	if got := nilTopo.EdgeCost("a", "b"); got != 1 {
		t.Fatalf("nil topology EdgeCost = %v, want 1", got)
	}
	topo := NewTopology(0, 0)
	if got := topo.EdgeCost("a", "a"); got != 1 {
		t.Fatalf("zero-value intra EdgeCost = %v, want 1", got)
	}
	if got := topo.EdgeCost("a", "b"); got != DefaultInterRegionCost {
		t.Fatalf("zero-value inter EdgeCost = %v, want %v", got, DefaultInterRegionCost)
	}
}

func TestTopologyEdgeCostExplicit(t *testing.T) {
	topo := NewTopology(2, 7)
	if got := topo.EdgeCost("a", "a"); got != 2 {
		t.Fatalf("intra EdgeCost = %v, want 2", got)
	}
	if got := topo.EdgeCost("a", "b"); got != 7 {
		t.Fatalf("inter EdgeCost = %v, want 7", got)
	}
}

func TestTopologyLinkOverride(t *testing.T) {
	topo := NewTopology(1, 10)
	topo.SetLink("b", "a", 3) // reversed order: key is undirected
	if got := topo.EdgeCost("a", "b"); got != 3 {
		t.Fatalf("overridden EdgeCost(a,b) = %v, want 3", got)
	}
	if got := topo.EdgeCost("b", "a"); got != 3 {
		t.Fatalf("overridden EdgeCost(b,a) = %v, want 3", got)
	}
	if got := topo.EdgeCost("a", "c"); got != 10 {
		t.Fatalf("unrelated EdgeCost = %v, want 10", got)
	}
	// Same-region override shadows Intra for that region only.
	topo.SetLink("c", "c", 5)
	if got := topo.EdgeCost("c", "c"); got != 5 {
		t.Fatalf("self-link EdgeCost = %v, want 5", got)
	}
	if got := topo.EdgeCost("a", "a"); got != 1 {
		t.Fatalf("other intra EdgeCost = %v, want 1", got)
	}
	// Non-positive overrides and nil receivers are ignored safely.
	topo.SetLink("a", "b", 0)
	if got := topo.EdgeCost("a", "b"); got != 3 {
		t.Fatalf("EdgeCost after zero SetLink = %v, want 3", got)
	}
	var nilTopo *Topology
	nilTopo.SetLink("a", "b", 2) // must not panic
}

func TestTopologyValidate(t *testing.T) {
	var nilTopo *Topology
	if err := nilTopo.Validate(); err != nil {
		t.Fatalf("nil topology Validate: %v", err)
	}
	if err := NewTopology(1, 10).Validate(); err != nil {
		t.Fatalf("valid topology Validate: %v", err)
	}
	err := NewTopology(-1, 10).Validate()
	if !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("negative intra Validate = %v, want ErrInvalidModel", err)
	}
	err = NewTopology(1, -2).Validate()
	if !errors.Is(err, ErrInvalidModel) {
		t.Fatalf("negative inter Validate = %v, want ErrInvalidModel", err)
	}
}

func TestTopologyClone(t *testing.T) {
	var nilTopo *Topology
	if nilTopo.Clone() != nil {
		t.Fatal("nil Clone should stay nil")
	}
	topo := NewTopology(1, 10)
	topo.SetLink("a", "b", 3)
	c := topo.Clone()
	c.SetLink("a", "b", 4)
	if got := topo.EdgeCost("a", "b"); got != 3 {
		t.Fatalf("original EdgeCost after clone mutation = %v, want 3", got)
	}
	if got := c.EdgeCost("a", "b"); got != 4 {
		t.Fatalf("clone EdgeCost = %v, want 4", got)
	}
}

// TestLedgerTopologyPricedRateNeverUndercounts is the WAN composition
// property, mirroring TestLedgerComposedRateNeverUndercounts: edge-cost
// multipliers compose with the frequency x prediction rate product by
// plain multiplication, and a ledger whose budget is set from the
// topology-priced per-slot estimates admits every realized
// topology-priced charge. Edge pricing is undirected, so the estimate
// prices (src, dst) while the realized charges price (dst, src) —
// catching any asymmetry between the planner's estimate path and the
// verifier's re-pricing path, link overrides included.
func TestLedgerTopologyPricedRateNeverUndercounts(t *testing.T) {
	m := Default()
	regions := []string{"r0", "r1", "r2"}
	f := func(seed uint32, nSlots8, rounds8 uint8, intra16, inter16, link16 uint16) bool {
		nSlots := 1 + int(nSlots8%8)
		rounds := 1 + int(rounds8%64)
		topo := NewTopology(1+float64(intra16%4), 1+float64(inter16%32))
		topo.SetLink("r1", "r2", 1+float64(link16%16))
		rng := seed
		next := func(mod uint32) uint32 {
			rng = rng*1664525 + 1013904223
			return (rng >> 8) % mod
		}
		type slot struct {
			src, dst string
			period   int
			values   int
		}
		slots := make([]slot, nSlots)
		for i := range slots {
			slots[i] = slot{
				src:    regions[next(3)],
				dst:    regions[next(3)],
				period: 1 + int(next(5)),
				values: 1 + int(next(4)),
			}
		}
		// Realized schedule: slot i is due when round%period == 0, a
		// pseudo-random subset of due rounds is suppressed, and each sent
		// occurrence is one message over the slot's edge.
		sent := make([]int, nSlots)
		due := make([]int, nSlots)
		l := NewLedger()
		var charges []float64
		for i, s := range slots {
			for r := 0; r < rounds; r++ {
				if r%s.period != 0 {
					continue
				}
				due[i]++
				if next(4) == 0 { // ~25% suppressed
					continue
				}
				sent[i]++
				charges = append(charges, topo.EdgeCost(s.dst, s.src)*m.Message(s.values))
			}
		}
		// Planner estimate: per-slot effective cost at the composed rate,
		// priced over the forward edge.
		budget := 0.0
		for i, s := range slots {
			w := float64(due[i]) / float64(rounds)
			r := 1.0
			if due[i] > 0 {
				r = float64(sent[i]) / float64(due[i])
			}
			budget += float64(rounds) * topo.EdgeCost(s.src, s.dst) * m.Effective(s.values, Rate(w, r))
		}
		l.SetBudget(0, budget)
		for i, c := range charges {
			if err := l.Charge(0, c); err != nil {
				t.Logf("charge %d rejected: %v (budget %v used %v)", i, err, budget, l.Used(0))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
