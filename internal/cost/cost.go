// Package cost implements the REMO message cost model.
//
// REMO models the resource consumed by transmitting a monitoring message
// carrying x attribute values as
//
//	cost(x) = C + a·x
//
// where C is a fixed per-message processing overhead (connection handling,
// protocol headers, interrupt/syscall cost) and a is the per-value payload
// cost. The paper's Fig. 2 motivates this model: on a BlueGene/P node the
// root of a star overlay spends ~6% CPU receiving 16 single-value messages
// and ~68% receiving 256, while growing a single message from 1 to 256
// values only raises its cost from 0.2% to 1.4%.
package cost

import (
	"errors"
	"fmt"
)

// Model holds the parameters of the per-message cost model.
//
// The zero value is invalid; use New or populate both fields. All costs are
// expressed in abstract capacity units; only ratios matter to the planner.
type Model struct {
	// PerMessage is C, the fixed cost of sending or receiving one message
	// regardless of its payload.
	PerMessage float64
	// PerValue is a, the incremental cost of each attribute value carried
	// in a message.
	PerValue float64
}

// ErrInvalidModel is returned when a cost model has non-positive
// parameters.
var ErrInvalidModel = errors.New("cost: model parameters must be positive")

// New returns a validated cost model with per-message overhead c and
// per-value cost a.
func New(c, a float64) (Model, error) {
	m := Model{PerMessage: c, PerValue: a}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}

// Default returns the cost model used throughout the paper's synthetic
// experiments: a per-message overhead significantly larger than the
// per-value cost (C/a = 10).
func Default() Model {
	return Model{PerMessage: 10, PerValue: 1}
}

// Validate reports whether the model parameters are usable.
func (m Model) Validate() error {
	if m.PerMessage <= 0 || m.PerValue <= 0 {
		return fmt.Errorf("%w: C=%v a=%v", ErrInvalidModel, m.PerMessage, m.PerValue)
	}
	return nil
}

// Message returns the cost C + a·x of one message carrying values attribute
// values. A message always costs at least C, even when empty (for example
// a heartbeat or an aggregation message whose funnel emitted zero values).
func (m Model) Message(values int) float64 {
	if values < 0 {
		values = 0
	}
	return m.PerMessage + m.PerValue*float64(values)
}

// Values returns the payload cost a·x without the per-message overhead.
// It is the marginal cost of growing an existing message by x values.
func (m Model) Values(x int) float64 {
	if x < 0 {
		x = 0
	}
	return m.PerValue * float64(x)
}

// Ratio returns C/a, the paper's knob for how dominant the per-message
// overhead is relative to payload cost (swept in Figs. 6c and 6d).
func (m Model) Ratio() float64 {
	return m.PerMessage / m.PerValue
}

// WithRatio returns a copy of the model whose per-message overhead is set
// so that C/a equals ratio, keeping PerValue unchanged.
func (m Model) WithRatio(ratio float64) Model {
	return Model{PerMessage: ratio * m.PerValue, PerValue: m.PerValue}
}

// Rate composes per-axis effective-rate multipliers — the frequency
// spec's piggyback weight, the prediction spec's transmit-rate estimate
// — into one effective payload rate, clamped to [0, 1]. Axes compose
// multiplicatively: a value reported every other round (0.5) that is
// additionally suppressed 80% of the time (0.2) loads the wire at rate
// 0.1. NaN multipliers are ignored (treated as 1).
func Rate(multipliers ...float64) float64 {
	r := 1.0
	for _, m := range multipliers {
		if m != m { // NaN
			continue
		}
		r *= m
	}
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// Effective returns the expected per-round cost of a message whose
// payload of values slots is transmitted at effective rate r: the
// per-message overhead C is always paid (the frame still flows,
// carrying markers), while the payload cost scales with the fraction
// of slots actually on the wire. r is clamped to [0, 1].
func (m Model) Effective(values int, r float64) float64 {
	return m.PerMessage + m.Values(values)*Rate(r)
}
