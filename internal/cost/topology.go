package cost

import "fmt"

// DefaultInterRegionCost is the WAN edge-cost multiplier applied between
// distinct regions when a Topology leaves Inter unset. The order of
// magnitude matches the planner's C/a default: one cross-region hop
// costs as much as ten rack-local ones, enough that the guided search
// keeps collection trees region-local whenever capacity allows.
const DefaultInterRegionCost = 10.0

// Topology prices overlay edges by the regions of their endpoints,
// extending the per-message model cost(msg) = C + a·x with a per-edge
// multiplier: sending over edge (src, dst) costs EdgeCost(src, dst)
// times the endpoint cost. It composes with Model.Message/Effective
// exactly like the distance factors of §3.3 — callers multiply — so the
// planner's guided search, the incremental replanner and the verifier
// all charge the real WAN price through the existing Distance hook.
//
// Regions are plain strings because the cost package sits below the
// model package; model.System.ApplyTopology adapts node ids to region
// names. A nil *Topology prices every edge at 1; every method is
// nil-safe.
type Topology struct {
	// Intra is the multiplier for edges within one region (default 1).
	Intra float64
	// Inter is the multiplier for edges between distinct regions
	// (default DefaultInterRegionCost).
	Inter float64
	// links overrides Inter for specific region pairs, keyed undirected.
	links map[[2]string]float64
}

// NewTopology returns a topology with intra-region edges at intra and
// inter-region edges at inter (non-positive values select the
// defaults).
func NewTopology(intra, inter float64) *Topology {
	return &Topology{Intra: intra, Inter: inter}
}

// SetLink overrides the multiplier for the undirected region pair
// (a, b); non-positive multipliers are ignored. Overriding a == b sets
// a region's internal price, shadowing Intra for that region.
func (t *Topology) SetLink(a, b string, mult float64) {
	if t == nil || mult <= 0 {
		return
	}
	if t.links == nil {
		t.links = make(map[[2]string]float64)
	}
	t.links[linkKey(a, b)] = mult
}

// EdgeCost returns the multiplier for an edge between regions src and
// dst: the pair's SetLink override when present, Intra for same-region
// edges, Inter otherwise. A nil topology prices everything at 1.
func (t *Topology) EdgeCost(src, dst string) float64 {
	if t == nil {
		return 1
	}
	if m, ok := t.links[linkKey(src, dst)]; ok {
		return m
	}
	if src == dst {
		if t.Intra > 0 {
			return t.Intra
		}
		return 1
	}
	if t.Inter > 0 {
		return t.Inter
	}
	return DefaultInterRegionCost
}

// Validate rejects negative base multipliers (zero means "default").
func (t *Topology) Validate() error {
	if t == nil {
		return nil
	}
	if t.Intra < 0 || t.Inter < 0 {
		return fmt.Errorf("%w: topology intra=%v inter=%v", ErrInvalidModel, t.Intra, t.Inter)
	}
	return nil
}

// Clone returns a deep copy (nil stays nil).
func (t *Topology) Clone() *Topology {
	if t == nil {
		return nil
	}
	c := &Topology{Intra: t.Intra, Inter: t.Inter}
	if len(t.links) > 0 {
		c.links = make(map[[2]string]float64, len(t.links))
		for k, v := range t.links {
			c.links[k] = v
		}
	}
	return c
}

// linkKey normalizes an undirected region pair.
func linkKey(a, b string) [2]string {
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}
