package core

import (
	"testing"

	"remo/internal/model"
	"remo/internal/task"
	"remo/internal/tree"
	"remo/internal/workload"
)

// richPlanEnv builds a capacity-generous environment where full
// coverage is reachable, so incremental updates match full replans
// exactly and the assertions below are equalities.
func richPlanEnv(t *testing.T, seed int64) (*model.System, []model.Task) {
	t.Helper()
	sys, err := workload.System(workload.SystemConfig{
		Nodes: 16, Attrs: 8,
		CapacityLo: 800, CapacityHi: 1200,
		CentralCapacity: 4000,
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	tasks := workload.Tasks(sys, workload.TaskConfig{
		Count: 8, AttrsPerTask: 2, NodesPerTask: 6, Seed: seed + 1,
	})
	return sys, tasks
}

func TestTreeMemoCapEvicts(t *testing.T) {
	d := task.NewDemand()
	d.Set(1, 1, 1)
	c := newEvalCache(d, 2)
	for i := 1; i <= 4; i++ {
		key := treeKey{attrs: string(rune('a' + i)), hash: uint64(i)}
		c.storeTree(key, model.NewAttrSet(model.AttrID(i)), tree.Result{})
	}
	if got := c.memoLen(); got > 2 {
		t.Fatalf("memo holds %d entries past cap 2", got)
	}
	if c.evicted() == 0 {
		t.Fatal("no capacity evictions recorded")
	}
}

// TestTreeMemoSecondChance pins the clock sweep: a recently hit entry
// survives one eviction round, an untouched one does not.
func TestTreeMemoSecondChance(t *testing.T) {
	d := task.NewDemand()
	d.Set(1, 1, 1)
	c := newEvalCache(d, 2)
	hot := treeKey{attrs: "hot", hash: 1}
	cold := treeKey{attrs: "cold", hash: 2}
	c.storeTree(hot, model.NewAttrSet(1), tree.Result{})
	c.storeTree(cold, model.NewAttrSet(2), tree.Result{})
	if _, ok := c.lookupTree(hot); !ok { // sets hot's reference bit
		t.Fatal("hot entry missing before eviction")
	}
	c.storeTree(treeKey{attrs: "new", hash: 3}, model.NewAttrSet(3), tree.Result{})
	if _, ok := c.lookupTree(hot); !ok {
		t.Fatal("referenced entry was evicted before the unreferenced one")
	}
	if _, ok := c.lookupTree(cold); ok {
		t.Fatal("unreferenced entry survived over the referenced one")
	}
}

func TestCacheInvalidateByNeighborhood(t *testing.T) {
	d := task.NewDemand()
	d.Set(1, 1, 1)
	d.Set(2, 2, 1)
	c := newEvalCache(d, 0)
	c.storeTree(treeKey{attrs: "1", hash: 1}, model.NewAttrSet(1), tree.Result{})
	c.storeTree(treeKey{attrs: "2", hash: 2}, model.NewAttrSet(2), tree.Result{})
	_ = c.participantsOf(model.NewAttrSet(1))
	_ = c.participantsOf(model.NewAttrSet(2))

	c.invalidate(model.NewAttrSet(1))
	if _, ok := c.lookupTree(treeKey{attrs: "1", hash: 1}); ok {
		t.Fatal("intersecting tree survived invalidation")
	}
	if _, ok := c.lookupTree(treeKey{attrs: "2", hash: 2}); !ok {
		t.Fatal("disjoint tree was invalidated")
	}
	c.mu.RLock()
	_, gone := c.participants[model.NewAttrSet(1).Key()]
	_, kept := c.participants[model.NewAttrSet(2).Key()]
	c.mu.RUnlock()
	if gone || !kept {
		t.Fatalf("participants after invalidate: dirty present=%v clean present=%v", gone, kept)
	}
}

// TestUnboundedMemoNeverEvicts pins WithTreeMemoCap(-1).
func TestUnboundedMemoNeverEvicts(t *testing.T) {
	d := task.NewDemand()
	d.Set(1, 1, 1)
	c := newEvalCache(d, -1)
	for i := 1; i <= 2*defaultTreeMemoCap/64; i++ {
		c.storeTree(treeKey{hash: uint64(i)}, model.NewAttrSet(1), tree.Result{})
	}
	if c.evicted() != 0 {
		t.Fatal("unbounded cache evicted")
	}
}

func TestReplannerNoChangeIsFree(t *testing.T) {
	sys, tasks := richPlanEnv(t, 21)
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplanner(NewPlanner(), sys, d)
	before := r.Current()
	res, st := r.Update(d.Clone())
	if !st.Incremental || st.FellBack || st.Evaluations != 0 {
		t.Fatalf("no-op update stats = %+v", st)
	}
	if res.Forest.Fingerprint() != before.Forest.Fingerprint() {
		t.Fatal("no-op update changed the forest")
	}
	if len(st.Diff.Rebuilt)+len(st.Diff.Dropped) != 0 {
		t.Fatalf("no-op diff = %+v", st.Diff)
	}
}

func TestReplannerDirtyLimitEscalates(t *testing.T) {
	sys, tasks := richPlanEnv(t, 22)
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplanner(NewPlanner(), sys, d, WithReplanDirtyLimit(-1))
	extra := workload.Tasks(sys, workload.TaskConfig{
		Count: 1, AttrsPerTask: 1, NodesPerTask: 2, Seed: 99, Prefix: "extra",
	})
	nd, err := workload.Demand(sys, append(tasks, extra...))
	if err != nil {
		t.Fatal(err)
	}
	res, st := r.Update(nd)
	if st.Incremental || st.FellBack {
		t.Fatalf("negative dirty limit did not escalate upfront: %+v", st)
	}
	want := NewPlanner().Plan(sys, nd)
	if res.Stats.Collected != want.Stats.Collected {
		t.Fatalf("escalated replan collected %d, full plan %d", res.Stats.Collected, want.Stats.Collected)
	}
}

func TestReplannerIncrementalMatchesFull(t *testing.T) {
	sys, tasks := richPlanEnv(t, 23)
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplanner(NewPlanner(), sys, d)
	// Remove one task, then add one: both directions must stay at parity
	// with a from-scratch replan on this capacity-rich instance.
	steps := [][]model.Task{
		tasks[1:],
		append(append([]model.Task(nil), tasks[1:]...), workload.Tasks(sys, workload.TaskConfig{
			Count: 1, AttrsPerTask: 2, NodesPerTask: 4, Seed: 77, Prefix: "new",
		})...),
	}
	for i, cur := range steps {
		nd, err := workload.Demand(sys, cur)
		if err != nil {
			t.Fatal(err)
		}
		res, st := r.Update(nd)
		want := NewPlanner().Plan(sys, nd)
		if res.Stats.Collected != want.Stats.Collected {
			t.Fatalf("step %d: incremental %d pairs vs full %d (stats %+v)",
				i, res.Stats.Collected, want.Stats.Collected, st)
		}
		if st.TotalSets == 0 || st.DirtySets > st.TotalSets {
			t.Fatalf("step %d: implausible neighborhood %d/%d", i, st.DirtySets, st.TotalSets)
		}
		if r.LastStats().Diff.ReusePct() != st.Diff.ReusePct() {
			t.Fatalf("step %d: LastStats out of sync", i)
		}
	}
}

func TestReplannerResetAdoptsExternalForest(t *testing.T) {
	sys, tasks := richPlanEnv(t, 24)
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanner()
	r := NewReplanner(p, sys, d)
	ext := p.Plan(sys, d)
	r.Reset(d, ext.Forest)
	if r.Current().Forest.Fingerprint() != ext.Forest.Fingerprint() {
		t.Fatal("Reset did not adopt the external forest")
	}
	// Updates keep working from the reset state.
	nd, err := workload.Demand(sys, tasks[1:])
	if err != nil {
		t.Fatal(err)
	}
	res, _ := r.Update(nd)
	want := NewPlanner().Plan(sys, nd)
	if res.Stats.Collected != want.Stats.Collected {
		t.Fatalf("post-Reset update collected %d, full plan %d", res.Stats.Collected, want.Stats.Collected)
	}
}

// TestReplannerFromSeedIsDeterministic pins the cold-resume contract:
// seeding from a journaled partition re-derives the same forest
// fingerprint as the session that wrote it.
func TestReplannerFromSeedIsDeterministic(t *testing.T) {
	sys, tasks := richPlanEnv(t, 25)
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanner()
	orig := p.Plan(sys, d)
	re := p.PlanPartition(sys, d, orig.Partition)
	if re.Forest.Fingerprint() != orig.Forest.Fingerprint() {
		t.Fatal("re-evaluating the journaled partition changed the forest")
	}
	r := NewReplannerFrom(p, sys, d, re)
	if r.Current().Forest.Fingerprint() != orig.Forest.Fingerprint() {
		t.Fatal("NewReplannerFrom did not adopt the seed plan")
	}
}

// TestReplannerForcedFallback pins the post-search fallback path: a
// negative tolerance turns any scoped result into a regression, so the
// update discards it and adopts the full search's plan.
func TestReplannerForcedFallback(t *testing.T) {
	sys, tasks := richPlanEnv(t, 26)
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		t.Fatal(err)
	}
	// The dirty limit is lifted so the scoped search always runs — this
	// instance's partition can collapse to one set, which the default
	// limit would escalate before ever reaching the fallback check.
	r := NewReplanner(NewPlanner(), sys, d, WithReplanFallback(-1), WithReplanDirtyLimit(1))
	nd, err := workload.Demand(sys, tasks[1:])
	if err != nil {
		t.Fatal(err)
	}
	res, st := r.Update(nd)
	if st.Incremental || !st.FellBack {
		t.Fatalf("negative tolerance did not force a fallback: %+v", st)
	}
	want := NewPlanner().Plan(sys, nd)
	if res.Stats.Collected != want.Stats.Collected {
		t.Fatalf("fallback replan collected %d, full plan %d", res.Stats.Collected, want.Stats.Collected)
	}
}

// TestReplannerDemandDrained pins the update to an empty demand: every
// set drops out of the reshaped partition and the diff retires the
// whole forest.
func TestReplannerDemandDrained(t *testing.T) {
	sys, tasks := richPlanEnv(t, 27)
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplanner(NewPlanner(), sys, d)
	trees := len(r.Current().Forest.Trees)
	res, st := r.Update(task.NewDemand())
	if !st.Incremental || st.TotalSets != 0 {
		t.Fatalf("drained update stats = %+v", st)
	}
	if res.Stats.Collected != 0 || len(res.Forest.Trees) != 0 {
		t.Fatalf("drained plan still collects: %+v", res.Stats)
	}
	if len(st.Diff.Dropped) != trees {
		t.Fatalf("diff dropped %d of %d trees", len(st.Diff.Dropped), trees)
	}
}

// TestReplannerCongestedRecruitment drives a removal through a
// capacity-starved instance, where clean-but-congested sets compete for
// the freed nodes and the gain-ranked budget admits at most a handful.
func TestReplannerCongestedRecruitment(t *testing.T) {
	sys, err := workload.System(workload.SystemConfig{
		Nodes: 24, Attrs: 12,
		CapacityLo: 60, CapacityHi: 120,
		CentralCapacity: 300,
		Seed:            41,
	})
	if err != nil {
		t.Fatal(err)
	}
	tasks := workload.Tasks(sys, workload.TaskConfig{
		Count: 16, AttrsPerTask: 2, NodesPerTask: 8, Seed: 42,
	})
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplanner(NewPlanner(), sys, d)
	nd, err := workload.Demand(sys, tasks[1:])
	if err != nil {
		t.Fatal(err)
	}
	res, st := r.Update(nd)
	if st.TotalSets == 0 || st.DirtySets == 0 {
		t.Fatalf("removal update marked nothing dirty: %+v", st)
	}
	if res.Stats.Collected > nd.PairCount() {
		t.Fatalf("collected %d of %d demanded pairs", res.Stats.Collected, nd.PairCount())
	}
	// Whatever path the guards picked, the maintained state must track
	// the adopted plan.
	if r.Current().Forest.Fingerprint() != res.Forest.Fingerprint() {
		t.Fatal("Current out of sync with the adopted plan")
	}
}
