package core

import (
	"math"
	"sync"
	"sync/atomic"

	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
	"remo/internal/tree"
)

// evalCache memoizes work shared across the many candidate evaluations
// of one search. The guided search changes only one or two sets per
// move, so three kinds of state recur verbatim between evaluations:
//
//   - participant lists of unchanged attribute sets,
//   - local-weight maps of unchanged attribute sets,
//   - whole constructed trees, whenever a set's participants AND its
//     capacity budget are unchanged (the common case under ORDERED
//     allocation: trees built before the first changed set see the
//     exact same avail map and are bit-identical rebuilds).
//
// The cache is shared by the concurrent candidate evaluators of one
// search, so every map is guarded: participants/weights by mu, the
// tree memo by treeMu. Cached trees are never aliased by callers — a
// clone is stored on insert and a clone is handed out on every hit —
// so a forest returned to (and possibly mutated by) adaptation or
// repair code cannot corrupt the memo.
//
// The tree memo is bounded: long-lived churn sessions replan against
// the same cache, so it uses clock (second-chance) eviction once it
// reaches memoCap entries. Incremental replanning additionally retires
// entries by attribute neighborhood (invalidate) and repoints the cache
// at mutated demands (rebind).
type evalCache struct {
	d *task.Demand

	mu           sync.RWMutex
	participants map[string][]model.NodeID
	weights      map[string]map[model.NodeID]float64
	// keySets maps a participants/weights key back to its attribute set
	// so invalidate can match entries against a dirty neighborhood.
	keySets map[string]model.AttrSet

	treeMu sync.RWMutex
	trees  map[treeKey]*cachedBuild
	// memoCap bounds len(trees); 0 means unbounded. ring and hand are
	// the clock sweep over insertion slots: ring holds one key per slot
	// (possibly stale after invalidation), hand is the next sweep
	// position.
	memoCap int
	ring    []treeKey
	hand    int
	// evictions counts capacity evictions (telemetry, guarded by treeMu).
	evictions int64

	// builds and reuses count tree constructions vs memo hits (search
	// telemetry, surfaced as Result.TreeBuilds / Result.TreeReuses).
	builds, reuses atomic.Int64
}

// defaultTreeMemoCap bounds the tree memo when the planner does not
// set an explicit cap. At ~1-2 KiB per cached build this keeps a
// long-lived replanner under a few MiB.
const defaultTreeMemoCap = 4096

func newEvalCache(d *task.Demand, memoCap int) *evalCache {
	if memoCap == 0 {
		memoCap = defaultTreeMemoCap
	}
	if memoCap < 0 {
		memoCap = 0 // unbounded
	}
	return &evalCache{
		d:            d,
		participants: make(map[string][]model.NodeID),
		weights:      make(map[string]map[model.NodeID]float64),
		keySets:      make(map[string]model.AttrSet),
		trees:        make(map[treeKey]*cachedBuild),
		memoCap:      memoCap,
	}
}

func (c *evalCache) participantsOf(set model.AttrSet) []model.NodeID {
	key := set.Key()
	c.mu.RLock()
	parts, ok := c.participants[key]
	c.mu.RUnlock()
	if ok {
		return parts
	}
	parts = c.d.Participants(set)
	c.mu.Lock()
	if prev, ok := c.participants[key]; ok {
		parts = prev // keep the first insert so callers share one slice
	} else {
		c.participants[key] = parts
		c.keySets[key] = set
	}
	c.mu.Unlock()
	return parts
}

func (c *evalCache) weightsOf(set model.AttrSet) map[model.NodeID]float64 {
	key := set.Key()
	c.mu.RLock()
	w, ok := c.weights[key]
	c.mu.RUnlock()
	if ok {
		return w
	}
	parts := c.participantsOf(set)
	w = make(map[model.NodeID]float64, len(parts))
	for _, n := range parts {
		w[n] = c.d.LocalWeight(n, set)
	}
	c.mu.Lock()
	if prev, ok := c.weights[key]; ok {
		w = prev
	} else {
		c.weights[key] = w
	}
	c.mu.Unlock()
	return w
}

// treeKey identifies one tree-construction problem: the attribute set
// plus a fingerprint of the per-participant capacity budgets and the
// collector budget. Everything else a builder sees (system, demand,
// spec, builder options) is fixed for the cache's lifetime.
type treeKey struct {
	attrs string
	hash  uint64
}

// cachedBuild is one memoized construction result. tree is a private
// clone; used and centralUsed are the build's capacity charges, read
// (never written) by evaluate. attrs is the delivered attribute set
// (for neighborhood invalidation); ref is the clock sweep's
// second-chance reference bit, set on every hit.
type cachedBuild struct {
	tree        *plan.Tree
	used        map[model.NodeID]float64
	centralUsed float64
	attrs       model.AttrSet
	ref         atomic.Bool
}

// FNV-1a constants for the budget fingerprint.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// quantBudget quantizes a capacity budget to 1e-9 cost units, folding
// float noise far below every tolerance the planner uses (builders use
// capEps, validation 1e-6) without ever conflating genuinely different
// budgets.
func quantBudget(v float64) uint64 {
	return uint64(int64(math.Round(v * 1e9)))
}

// buildTreeKey fingerprints a construction problem. nodes must be the
// set's participants in their canonical (ascending) order so the hash
// is deterministic.
func buildTreeKey(attrs model.AttrSet, nodes []model.NodeID, avail map[model.NodeID]float64, centralAvail float64) treeKey {
	h := uint64(fnvOffset64)
	h = fnvMix(h, uint64(len(nodes)))
	for _, n := range nodes {
		h = fnvMix(h, uint64(n))
		h = fnvMix(h, quantBudget(avail[n]))
	}
	h = fnvMix(h, quantBudget(centralAvail))
	return treeKey{attrs: attrs.Key(), hash: h}
}

// lookupTree returns the memoized build for key, if any, marking the
// entry recently used for the clock sweep.
func (c *evalCache) lookupTree(key treeKey) (*cachedBuild, bool) {
	c.treeMu.RLock()
	cb, ok := c.trees[key]
	c.treeMu.RUnlock()
	if ok {
		cb.ref.Store(true)
		c.reuses.Add(1)
	}
	return cb, ok
}

// storeTree memoizes a build result under key. The tree is cloned on
// insert (copy-on-insert) so the caller's tree — which joins a forest
// the planner hands to callers — never aliases cache state. At memoCap
// the insert reclaims a slot via the clock sweep instead of growing.
func (c *evalCache) storeTree(key treeKey, attrs model.AttrSet, r tree.Result) {
	c.builds.Add(1)
	cb := &cachedBuild{used: r.Used, centralUsed: r.CentralUsed, attrs: attrs}
	if r.Tree != nil {
		cb.tree = r.Tree.Clone()
	}
	c.treeMu.Lock()
	if _, dup := c.trees[key]; !dup {
		if c.memoCap > 0 {
			if len(c.ring) >= c.memoCap {
				c.ring[c.reclaimSlot()] = key
			} else {
				c.ring = append(c.ring, key)
			}
		}
		c.trees[key] = cb
	}
	c.treeMu.Unlock()
}

// reclaimSlot runs the clock (second-chance) sweep and returns a free
// ring slot, evicting at most one live entry. Slots whose key was
// already dropped by invalidate are reclaimed without eviction; live
// entries get a second chance through their ref bit, so the sweep
// terminates within two passes. Caller holds treeMu.
func (c *evalCache) reclaimSlot() int {
	for {
		slot := c.hand
		c.hand = (c.hand + 1) % len(c.ring)
		key := c.ring[slot]
		cb, live := c.trees[key]
		if !live {
			return slot
		}
		if cb.ref.CompareAndSwap(true, false) {
			continue
		}
		delete(c.trees, key)
		c.evictions++
		return slot
	}
}

// invalidate drops every cached artifact whose attribute set intersects
// the dirty neighborhood: memoized tree builds plus the participant and
// weight entries of intersecting sets. Incremental replanning calls
// this between updates (no evaluators run concurrently), after which
// the surviving entries are exactly the ones the mutated demand leaves
// unchanged.
func (c *evalCache) invalidate(dirty model.AttrSet) {
	if dirty.Empty() {
		return
	}
	c.treeMu.Lock()
	for key, cb := range c.trees {
		if cb.attrs.IntersectsAny(dirty) {
			delete(c.trees, key)
		}
	}
	c.treeMu.Unlock()
	c.mu.Lock()
	for key, set := range c.keySets {
		if set.IntersectsAny(dirty) {
			delete(c.participants, key)
			delete(c.weights, key)
			delete(c.keySets, key)
		}
	}
	c.mu.Unlock()
}

// rebind points the cache at a mutated demand. The caller must have
// invalidated every attribute the mutation touches first; entries for
// untouched sets are identical under the new demand by construction.
func (c *evalCache) rebind(d *task.Demand) { c.d = d }

// memoLen reports the live tree-memo size (tests and telemetry).
func (c *evalCache) memoLen() int {
	c.treeMu.RLock()
	defer c.treeMu.RUnlock()
	return len(c.trees)
}

// evicted reports capacity evictions so far (tests and telemetry).
func (c *evalCache) evicted() int64 {
	c.treeMu.RLock()
	defer c.treeMu.RUnlock()
	return c.evictions
}
