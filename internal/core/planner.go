// Package core implements REMO's monitoring topology planner: the
// resource-aware multi-task optimization framework of §3.
//
// The planner is a guided local search over attribute-set partitions.
// Starting from the singleton-set partition (independently constructed
// per-attribute trees), each iteration enumerates the partition's
// neighborhood (one merge or one split away), ranks the candidates by
// estimated capacity-usage gain, and evaluates only the most promising
// ones with the expensive resource-aware procedure — constructing
// capacity-constrained collection trees and counting how many
// node-attribute pairs they deliver. The first candidate that improves
// the plan is adopted; the search stops when no evaluated candidate
// improves it.
package core

import (
	"remo/internal/agg"
	"remo/internal/alloc"
	"remo/internal/model"
	"remo/internal/partition"
	"remo/internal/plan"
	"remo/internal/task"
	"remo/internal/tree"
)

// Config parameterizes a Planner.
type Config struct {
	// Builder constructs individual trees (default: ADAPTIVE with the
	// optimized adjusting procedure).
	Builder tree.Builder
	// Alloc divides node capacity among trees (default: ORDERED).
	Alloc alloc.Sequencer
	// Spec is the in-network aggregation specification (nil = holistic).
	Spec *agg.Spec
	// Constraints restricts which attribute sets may form (nil = none).
	// Used by the reliability and frequency extensions.
	Constraints *partition.Constraints
	// EvalBudget bounds how many ranked candidates are evaluated per
	// search iteration; 0 evaluates the entire neighborhood (the
	// unguided ablation). Default 8.
	EvalBudget int
	// MaxIters bounds search iterations. Default 128.
	MaxIters int
	// SingleStart disables the one-set-seeded second search (ablation).
	SingleStart bool
	// NoSideways disables score-neutral merge moves (ablation).
	NoSideways bool
}

// Option mutates a Config.
type Option func(*Config)

// WithBuilder selects the tree construction scheme.
func WithBuilder(b tree.Builder) Option { return func(c *Config) { c.Builder = b } }

// WithAlloc selects the capacity allocation policy.
func WithAlloc(a alloc.Sequencer) Option { return func(c *Config) { c.Alloc = a } }

// WithSpec sets the in-network aggregation specification.
func WithSpec(s *agg.Spec) Option { return func(c *Config) { c.Spec = s } }

// WithConstraints restricts which attribute sets may form.
func WithConstraints(c *partition.Constraints) Option {
	return func(cfg *Config) { cfg.Constraints = c }
}

// WithEvalBudget bounds per-iteration candidate evaluations (0 = all).
func WithEvalBudget(k int) Option { return func(c *Config) { c.EvalBudget = k } }

// WithMaxIters bounds search iterations.
func WithMaxIters(n int) Option { return func(c *Config) { c.MaxIters = n } }

// WithSingleStart disables the multi-start search (ablation knob).
func WithSingleStart() Option { return func(c *Config) { c.SingleStart = true } }

// WithNoSideways disables plateau-crossing merge moves (ablation knob).
func WithNoSideways() Option { return func(c *Config) { c.NoSideways = true } }

// Planner plans monitoring topologies.
type Planner struct {
	cfg Config
}

// NewPlanner returns a planner with the given options applied over
// REMO's defaults.
func NewPlanner(opts ...Option) *Planner {
	cfg := Config{
		Builder:    tree.New(tree.Adaptive),
		Alloc:      alloc.New(alloc.Ordered),
		EvalBudget: 16,
		MaxIters:   128,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Builder == nil {
		cfg.Builder = tree.New(tree.Adaptive)
	}
	if cfg.Alloc == nil {
		cfg.Alloc = alloc.New(alloc.Ordered)
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 128
	}
	return &Planner{cfg: cfg}
}

// Result is a finished plan plus search telemetry.
type Result struct {
	// Forest is the planned monitoring topology.
	Forest *plan.Forest
	// Stats is the forest's evaluated resource profile.
	Stats plan.Stats
	// Partition is the attribute-set partition behind the forest.
	Partition []model.AttrSet
	// Iterations is the number of accepted search moves.
	Iterations int
	// Evaluations counts resource-aware evaluations performed.
	Evaluations int
}

// Plan runs the full REMO planning algorithm for demand d on system sys.
//
// The local search runs twice — once from the singleton-set partition
// (the paper's starting point of independently constructed trees) and
// once from the one-set partition — and the better plan wins. The two
// extremes bracket the search space (§3.1), so multi-start guarantees
// the planner never loses to either baseline scheme even when the
// guided neighborhood ranking misses a crossing move.
func (p *Planner) Plan(sys *model.System, d *task.Demand) Result {
	universe := d.Universe()
	if universe.Empty() {
		return p.PlanFrom(sys, d, nil)
	}
	if p.cfg.SingleStart {
		return p.PlanFrom(sys, d, partition.Singleton(universe))
	}
	fromSP := p.PlanFrom(sys, d, partition.Singleton(universe))
	fromOP := p.PlanFrom(sys, d, partition.FirstFitAllowed(universe, p.cfg.Constraints))
	fromOP.Evaluations += fromSP.Evaluations
	fromOP.Iterations += fromSP.Iterations
	if fromSP.Stats.Score().Better(fromOP.Stats.Score()) {
		fromSP.Evaluations = fromOP.Evaluations
		fromSP.Iterations = fromOP.Iterations
		return fromSP
	}
	return fromOP
}

// PlanFrom runs the guided local search starting from the given
// partition (used by the adaptation planner to resume from the current
// topology).
//
// The search is first-improvement over the ranked candidate list. When
// no evaluated candidate improves the plan, the search may still take a
// score-neutral merge ("sideways" move): merging trees strictly shrinks
// the partition, so sideways merges cannot cycle, and they let the
// search cross the plateaus that arise when several merges are needed
// before capacity freed at the collector pays off. The best plan seen is
// always returned.
func (p *Planner) PlanFrom(sys *model.System, d *task.Demand, sets []model.AttrSet) Result {
	cache := newEvalCache(d)
	res := Result{Partition: sets}
	res.Forest, res.Stats = p.evaluate(sys, d, sets, cache)
	res.Evaluations = 1

	cur := res
	best := res.Stats.Score()
	sidewaysLeft := len(sets)
	if p.cfg.NoSideways {
		sidewaysLeft = 0
	}

	for iter := 0; iter < p.cfg.MaxIters; iter++ {
		gctx := p.gainContext(sys, d, cur)
		gctx.Parts = cache.participantsOf
		cands := partition.Rank(cur.Partition, gctx)
		if p.cfg.Constraints != nil {
			allowed := cands[:0]
			for _, c := range cands {
				if p.cfg.Constraints.AllowOp(cur.Partition, c.Op) {
					allowed = append(allowed, c)
				}
			}
			cands = allowed
		}
		if p.cfg.EvalBudget > 0 && len(cands) > p.cfg.EvalBudget {
			cands = cands[:p.cfg.EvalBudget]
		}

		improved := false
		sidewaysTaken := false
		curScore := cur.Stats.Score()
		for _, c := range cands {
			sets := partition.Apply(cur.Partition, c.Op)
			forest, stats := p.evaluate(sys, d, sets, cache)
			res.Evaluations++
			sc := stats.Score()
			if sc.Better(curScore) {
				cur = Result{Partition: sets, Forest: forest, Stats: stats}
				res.Iterations++
				improved = true
				break
			}
			if !improved && !sidewaysTaken && sidewaysLeft > 0 &&
				c.Op.Kind == partition.MergeOp && !curScore.Better(sc) {
				cur = Result{Partition: sets, Forest: forest, Stats: stats}
				sidewaysTaken = true
				sidewaysLeft--
				break
			}
		}
		if cur.Stats.Score().Better(best) {
			best = cur.Stats.Score()
			res.Partition, res.Forest, res.Stats = cur.Partition, cur.Forest, cur.Stats
		}
		if !improved && !sidewaysTaken {
			break
		}
	}
	return res
}

// PlanPartition evaluates a fixed partition without searching — the SP
// and OP baselines use this.
func (p *Planner) PlanPartition(sys *model.System, d *task.Demand, sets []model.AttrSet) Result {
	forest, stats := p.Evaluate(sys, d, sets)
	return Result{
		Forest:      forest,
		Stats:       stats,
		Partition:   sets,
		Evaluations: 1,
	}
}

// evalCache memoizes per-attribute-set demand lookups across the many
// candidate evaluations of one search: the guided search changes only
// one or two sets per move, so participant lists and local weights of
// the remaining sets recur verbatim.
type evalCache struct {
	d            *task.Demand
	participants map[string][]model.NodeID
	weights      map[string]map[model.NodeID]float64
}

func newEvalCache(d *task.Demand) *evalCache {
	return &evalCache{
		d:            d,
		participants: make(map[string][]model.NodeID),
		weights:      make(map[string]map[model.NodeID]float64),
	}
}

func (c *evalCache) participantsOf(set model.AttrSet) []model.NodeID {
	key := set.Key()
	if parts, ok := c.participants[key]; ok {
		return parts
	}
	parts := c.d.Participants(set)
	c.participants[key] = parts
	return parts
}

func (c *evalCache) weightsOf(set model.AttrSet) map[model.NodeID]float64 {
	key := set.Key()
	if w, ok := c.weights[key]; ok {
		return w
	}
	parts := c.participantsOf(set)
	w := make(map[model.NodeID]float64, len(parts))
	for _, n := range parts {
		w[n] = c.d.LocalWeight(n, set)
	}
	c.weights[key] = w
	return w
}

// Evaluate performs the resource-aware evaluation of a partition: order
// the trees per the allocation policy, construct each under its capacity
// budget, and compute the resulting forest's profile.
func (p *Planner) Evaluate(sys *model.System, d *task.Demand, sets []model.AttrSet) (*plan.Forest, plan.Stats) {
	return p.evaluate(sys, d, sets, newEvalCache(d))
}

func (p *Planner) evaluate(sys *model.System, d *task.Demand, sets []model.AttrSet, cache *evalCache) (*plan.Forest, plan.Stats) {
	req := alloc.Request{Sys: sys, Demand: d, Sets: sets, Parts: cache.participantsOf}
	order := p.cfg.Alloc.Order(req)

	built := make([]*plan.Tree, len(sets))
	used := make(map[model.NodeID]float64)
	var centralUsed float64
	for _, k := range order {
		avail := p.cfg.Alloc.Avail(req, k, used)
		ctx := tree.Context{
			Sys:          sys,
			Demand:       d,
			Spec:         p.cfg.Spec,
			Attrs:        sets[k],
			Nodes:        cache.participantsOf(sets[k]),
			Avail:        avail,
			CentralAvail: p.cfg.Alloc.CentralAvail(req, k, centralUsed),
			LocalWeights: cache.weightsOf(sets[k]),
		}
		r := p.cfg.Builder.Build(ctx)
		built[k] = r.Tree
		for n, u := range r.Used {
			used[n] += u
		}
		centralUsed += r.CentralUsed
	}

	forest := plan.NewForest()
	for _, t := range built {
		if t != nil && !t.Empty() {
			forest.Add(t)
		}
	}
	return forest, forest.ComputeStats(d, sys, p.cfg.Spec)
}

// gainContext assembles the estimator inputs from the last evaluation.
func (p *Planner) gainContext(sys *model.System, d *task.Demand, res Result) partition.GainContext {
	missed := make([]int, len(res.Partition))
	for i, set := range res.Partition {
		demanded := d.PairCountIn(set)
		collected := 0
		for _, t := range res.Forest.Trees {
			if t.Attrs.Equal(set) {
				for _, n := range t.Members() {
					collected += len(d.LocalAttrs(n, set))
				}
				break
			}
		}
		missed[i] = demanded - collected
	}
	return partition.GainContext{
		Demand:     d,
		PerMessage: sys.Cost.PerMessage,
		PerValue:   sys.Cost.PerValue,
		Missed:     missed,
	}
}

// Spec exposes the planner's aggregation spec (used by deployment).
func (p *Planner) Spec() *agg.Spec { return p.cfg.Spec }

// Builder exposes the planner's tree builder (used by adaptation).
func (p *Planner) Builder() tree.Builder { return p.cfg.Builder }

// Alloc exposes the planner's allocation policy (used by adaptation).
func (p *Planner) Alloc() alloc.Sequencer { return p.cfg.Alloc }

// Constraints exposes the planner's partition constraints (used by
// adaptation).
func (p *Planner) Constraints() *partition.Constraints { return p.cfg.Constraints }
