// Package core implements REMO's monitoring topology planner: the
// resource-aware multi-task optimization framework of §3.
//
// The planner is a guided local search over attribute-set partitions.
// Starting from the singleton-set partition (independently constructed
// per-attribute trees), each iteration enumerates the partition's
// neighborhood (one merge or one split away), ranks the candidates by
// estimated capacity-usage gain, and evaluates only the most promising
// ones with the expensive resource-aware procedure — constructing
// capacity-constrained collection trees and counting how many
// node-attribute pairs they deliver. The best-ranked candidate that
// improves the plan is adopted; the search stops when no evaluated
// candidate improves it.
//
// Evaluations are independent, so each iteration's ranked candidates
// are evaluated concurrently on a bounded worker pool and the two
// search starts (singleton-seeded and one-set-seeded) run in parallel.
// The adopted move is still the best-ranked acceptable candidate —
// exactly the move the sequential first-improvement scan would take —
// so plans are identical at any worker count.
package core

import (
	"runtime"
	"sync"

	"remo/internal/agg"
	"remo/internal/alloc"
	"remo/internal/model"
	"remo/internal/partition"
	"remo/internal/plan"
	"remo/internal/task"
	"remo/internal/tree"
)

// Config parameterizes a Planner.
type Config struct {
	// Builder constructs individual trees (default: ADAPTIVE with the
	// optimized adjusting procedure).
	Builder tree.Builder
	// Alloc divides node capacity among trees (default: ORDERED).
	Alloc alloc.Sequencer
	// Spec is the in-network aggregation specification (nil = holistic).
	Spec *agg.Spec
	// Constraints restricts which attribute sets may form (nil = none).
	// Used by the reliability and frequency extensions.
	Constraints *partition.Constraints
	// EvalBudget bounds how many ranked candidates are evaluated per
	// search iteration; 0 evaluates the entire neighborhood (the
	// unguided ablation). Default 8.
	EvalBudget int
	// MaxIters bounds search iterations. Default 128.
	MaxIters int
	// Workers bounds the concurrent candidate evaluators and enables
	// the parallel multi-start: 0 (the default) uses GOMAXPROCS, 1
	// forces the fully sequential search. Any value yields the same
	// plan; only wall-clock and the Evaluations count (a parallel
	// iteration launches its whole candidate batch) differ.
	Workers int
	// NoTreeCache disables the cross-evaluation tree-build memo
	// (ablation knob; also the pre-memo baseline for benchmarks).
	NoTreeCache bool
	// TreeMemoCap bounds the tree-build memo's entry count; 0 uses the
	// default cap, negative values disable the bound. Entries beyond the
	// cap are evicted clock-wise (second chance), which matters for
	// long-lived incremental replanners that keep one cache across many
	// replans.
	TreeMemoCap int
	// SingleStart disables the one-set-seeded second search (ablation).
	SingleStart bool
	// NoSideways disables score-neutral merge moves (ablation).
	NoSideways bool
}

// Option mutates a Config.
type Option func(*Config)

// WithBuilder selects the tree construction scheme.
func WithBuilder(b tree.Builder) Option { return func(c *Config) { c.Builder = b } }

// WithAlloc selects the capacity allocation policy.
func WithAlloc(a alloc.Sequencer) Option { return func(c *Config) { c.Alloc = a } }

// WithSpec sets the in-network aggregation specification.
func WithSpec(s *agg.Spec) Option { return func(c *Config) { c.Spec = s } }

// WithConstraints restricts which attribute sets may form.
func WithConstraints(c *partition.Constraints) Option {
	return func(cfg *Config) { cfg.Constraints = c }
}

// WithEvalBudget bounds per-iteration candidate evaluations (0 = all).
func WithEvalBudget(k int) Option { return func(c *Config) { c.EvalBudget = k } }

// WithMaxIters bounds search iterations.
func WithMaxIters(n int) Option { return func(c *Config) { c.MaxIters = n } }

// WithWorkers pins the evaluation worker count (0 = GOMAXPROCS,
// 1 = sequential). Plans are identical at any setting.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithoutTreeCache disables the cross-evaluation tree-build memo
// (ablation knob).
func WithoutTreeCache() Option { return func(c *Config) { c.NoTreeCache = true } }

// WithTreeMemoCap bounds the tree-build memo (0 = default cap,
// negative = unbounded).
func WithTreeMemoCap(n int) Option { return func(c *Config) { c.TreeMemoCap = n } }

// WithSingleStart disables the multi-start search (ablation knob).
func WithSingleStart() Option { return func(c *Config) { c.SingleStart = true } }

// WithNoSideways disables plateau-crossing merge moves (ablation knob).
func WithNoSideways() Option { return func(c *Config) { c.NoSideways = true } }

// Planner plans monitoring topologies.
type Planner struct {
	cfg Config
}

// NewPlanner returns a planner with the given options applied over
// REMO's defaults.
func NewPlanner(opts ...Option) *Planner {
	cfg := Config{
		Builder:    tree.New(tree.Adaptive),
		Alloc:      alloc.New(alloc.Ordered),
		EvalBudget: 16,
		MaxIters:   128,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Builder == nil {
		cfg.Builder = tree.New(tree.Adaptive)
	}
	if cfg.Alloc == nil {
		cfg.Alloc = alloc.New(alloc.Ordered)
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 128
	}
	return &Planner{cfg: cfg}
}

// workers resolves the configured worker count.
func (p *Planner) workers() int {
	if p.cfg.Workers > 0 {
		return p.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is a finished plan plus search telemetry.
type Result struct {
	// Forest is the planned monitoring topology.
	Forest *plan.Forest
	// Stats is the forest's evaluated resource profile.
	Stats plan.Stats
	// Partition is the attribute-set partition behind the forest.
	Partition []model.AttrSet
	// Iterations is the number of accepted search moves.
	Iterations int
	// Evaluations counts resource-aware evaluations launched. A
	// parallel iteration evaluates its whole candidate batch, so this
	// may exceed the sequential count (which stops at the adopted
	// candidate); the chosen moves — and hence the plan — are the same.
	Evaluations int
	// TreeBuilds and TreeReuses count collection-tree constructions
	// performed vs avoided by the cross-evaluation tree-build memo.
	TreeBuilds int
	// TreeReuses counts memo hits (see TreeBuilds).
	TreeReuses int
}

// Plan runs the full REMO planning algorithm for demand d on system sys.
//
// The local search runs twice — once from the singleton-set partition
// (the paper's starting point of independently constructed trees) and
// once from the one-set partition — and the better plan wins. The two
// extremes bracket the search space (§3.1), so multi-start guarantees
// the planner never loses to either baseline scheme even when the
// guided neighborhood ranking misses a crossing move. With more than
// one worker the two starts run in parallel goroutines (each with its
// own evaluation cache), which changes nothing about either search.
func (p *Planner) Plan(sys *model.System, d *task.Demand) Result {
	universe := d.Universe()
	if universe.Empty() {
		return p.PlanFrom(sys, d, nil)
	}
	if p.cfg.SingleStart {
		return p.PlanFrom(sys, d, partition.Singleton(universe))
	}
	var fromSP, fromOP Result
	if p.workers() > 1 {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			fromSP = p.PlanFrom(sys, d, partition.Singleton(universe))
		}()
		go func() {
			defer wg.Done()
			fromOP = p.PlanFrom(sys, d, partition.FirstFitAllowed(universe, p.cfg.Constraints))
		}()
		wg.Wait()
	} else {
		fromSP = p.PlanFrom(sys, d, partition.Singleton(universe))
		fromOP = p.PlanFrom(sys, d, partition.FirstFitAllowed(universe, p.cfg.Constraints))
	}
	fromOP.Evaluations += fromSP.Evaluations
	fromOP.Iterations += fromSP.Iterations
	fromOP.TreeBuilds += fromSP.TreeBuilds
	fromOP.TreeReuses += fromSP.TreeReuses
	if fromSP.Stats.Score().Better(fromOP.Stats.Score()) {
		fromSP.Evaluations = fromOP.Evaluations
		fromSP.Iterations = fromOP.Iterations
		fromSP.TreeBuilds = fromOP.TreeBuilds
		fromSP.TreeReuses = fromOP.TreeReuses
		return fromSP
	}
	return fromOP
}

// candEval is one candidate's evaluation outcome, filled by the worker
// pool slot that owns the candidate's rank position.
type candEval struct {
	sets   []model.AttrSet
	forest *plan.Forest
	stats  plan.Stats
}

// PlanFrom runs the guided local search starting from the given
// partition (used by the adaptation planner to resume from the current
// topology).
//
// The search is first-improvement over the ranked candidate list. When
// no evaluated candidate improves the plan, the search may still take a
// score-neutral merge ("sideways" move): merging trees strictly shrinks
// the partition, so sideways merges cannot cycle, and they let the
// search cross the plateaus that arise when several merges are needed
// before capacity freed at the collector pays off. The best plan seen is
// always returned.
//
// With more than one worker each iteration evaluates its whole ranked
// candidate batch concurrently, then scans the results in rank order
// with the exact acceptance logic of the sequential loop — so the
// adopted move, and therefore the final plan, is identical to the
// sequential search's.
func (p *Planner) PlanFrom(sys *model.System, d *task.Demand, sets []model.AttrSet) Result {
	return p.search(sys, d, sets, p.newCache(d), nil)
}

// newCache builds an evaluation cache honoring the configured memo cap.
func (p *Planner) newCache(d *task.Demand) *evalCache {
	return newEvalCache(d, p.cfg.TreeMemoCap)
}

// searchScope restricts the guided search to a dirty neighborhood: only
// moves touching a dirty set are ranked, and the sets an adopted move
// produces become dirty in turn, so improvements can propagate outward
// from the original neighborhood without reopening the whole partition.
type searchScope struct {
	dirty map[string]struct{}
}

// dirtyAt adapts the scope to RankScoped's index-based predicate.
func (s *searchScope) dirtyAt(sets []model.AttrSet) func(int) bool {
	return func(i int) bool {
		_, ok := s.dirty[sets[i].Key()]
		return ok
	}
}

// absorb marks the sets an adopted move created as dirty.
func (s *searchScope) absorb(before, after []model.AttrSet) {
	prev := make(map[string]struct{}, len(before))
	for _, set := range before {
		prev[set.Key()] = struct{}{}
	}
	for _, set := range after {
		if _, old := prev[set.Key()]; !old {
			s.dirty[set.Key()] = struct{}{}
		}
	}
}

// search runs the guided local search from the given partition using
// the given (possibly pre-warmed) cache. A nil scope searches the full
// neighborhood (PlanFrom); a non-nil scope restricts candidate
// generation to the dirty sets (incremental replanning).
func (p *Planner) search(sys *model.System, d *task.Demand, sets []model.AttrSet, cache *evalCache, scope *searchScope) Result {
	res := Result{Partition: sets}
	res.Forest, res.Stats = p.evaluate(sys, d, sets, cache)
	res.Evaluations = 1

	cur := res
	best := res.Stats.Score()
	sidewaysLeft := len(sets)
	if scope != nil {
		sidewaysLeft = len(scope.dirty)
	}
	if p.cfg.NoSideways {
		sidewaysLeft = 0
	}
	workers := p.workers()

	for iter := 0; iter < p.cfg.MaxIters; iter++ {
		var gctx partition.GainContext
		if scope != nil {
			gctx = p.lazyGainContext(sys, d, cur)
		} else {
			gctx = p.gainContext(sys, d, cur)
		}
		gctx.Parts = cache.participantsOf
		var cands []partition.Candidate
		if scope != nil {
			cands = partition.RankScoped(cur.Partition, gctx, scope.dirtyAt(cur.Partition))
		} else {
			cands = partition.Rank(cur.Partition, gctx)
		}
		if p.cfg.Constraints != nil {
			allowed := cands[:0]
			for _, c := range cands {
				if p.cfg.Constraints.AllowOp(cur.Partition, c.Op) {
					allowed = append(allowed, c)
				}
			}
			cands = allowed
		}
		if p.cfg.EvalBudget > 0 && len(cands) > p.cfg.EvalBudget {
			cands = cands[:p.cfg.EvalBudget]
		}

		improved := false
		sidewaysTaken := false
		curScore := cur.Stats.Score()

		adopt := func(c partition.Candidate, e candEval) (accepted bool) {
			sc := e.stats.Score()
			if sc.Better(curScore) {
				if scope != nil {
					scope.absorb(cur.Partition, e.sets)
				}
				cur = Result{Partition: e.sets, Forest: e.forest, Stats: e.stats}
				res.Iterations++
				improved = true
				return true
			}
			if !sidewaysTaken && sidewaysLeft > 0 &&
				c.Op.Kind == partition.MergeOp && !curScore.Better(sc) {
				if scope != nil {
					scope.absorb(cur.Partition, e.sets)
				}
				cur = Result{Partition: e.sets, Forest: e.forest, Stats: e.stats}
				sidewaysTaken = true
				sidewaysLeft--
				return true
			}
			return false
		}

		if workers > 1 && len(cands) > 1 {
			// Evaluate the whole batch concurrently, then scan results in
			// rank order: the first acceptable candidate is the same one
			// the lazy sequential scan would have stopped at.
			outs := make([]candEval, len(cands))
			base := cur.Partition
			runIndexed(workers, len(cands), func(i int) {
				sets := partition.Apply(base, cands[i].Op)
				forest, stats := p.evaluate(sys, d, sets, cache)
				outs[i] = candEval{sets: sets, forest: forest, stats: stats}
			})
			res.Evaluations += len(cands)
			for i, c := range cands {
				if adopt(c, outs[i]) {
					break
				}
			}
		} else {
			for _, c := range cands {
				sets := partition.Apply(cur.Partition, c.Op)
				forest, stats := p.evaluate(sys, d, sets, cache)
				res.Evaluations++
				if adopt(c, candEval{sets: sets, forest: forest, stats: stats}) {
					break
				}
			}
		}
		if cur.Stats.Score().Better(best) {
			best = cur.Stats.Score()
			res.Partition, res.Forest, res.Stats = cur.Partition, cur.Forest, cur.Stats
		}
		if !improved && !sidewaysTaken {
			break
		}
	}
	res.TreeBuilds = int(cache.builds.Load())
	res.TreeReuses = int(cache.reuses.Load())
	return res
}

// PlanPartition evaluates a fixed partition without searching — the SP
// and OP baselines use this.
func (p *Planner) PlanPartition(sys *model.System, d *task.Demand, sets []model.AttrSet) Result {
	forest, stats := p.Evaluate(sys, d, sets)
	return Result{
		Forest:      forest,
		Stats:       stats,
		Partition:   sets,
		Evaluations: 1,
	}
}

// Evaluate performs the resource-aware evaluation of a partition: order
// the trees per the allocation policy, construct each under its capacity
// budget, and compute the resulting forest's profile.
func (p *Planner) Evaluate(sys *model.System, d *task.Demand, sets []model.AttrSet) (*plan.Forest, plan.Stats) {
	return p.evaluate(sys, d, sets, p.newCache(d))
}

func (p *Planner) evaluate(sys *model.System, d *task.Demand, sets []model.AttrSet, cache *evalCache) (*plan.Forest, plan.Stats) {
	req := alloc.Request{Sys: sys, Demand: d, Sets: sets, Parts: cache.participantsOf}
	order := p.cfg.Alloc.Order(req)

	built := make([]*plan.Tree, len(sets))
	used := make(map[model.NodeID]float64)
	var centralUsed float64
	for _, k := range order {
		avail := p.cfg.Alloc.Avail(req, k, used)
		centralAvail := p.cfg.Alloc.CentralAvail(req, k, centralUsed)
		nodes := cache.participantsOf(sets[k])

		var key treeKey
		memo := !p.cfg.NoTreeCache
		if memo {
			key = buildTreeKey(sets[k], nodes, avail, centralAvail)
			if cb, ok := cache.lookupTree(key); ok {
				if cb.tree != nil {
					built[k] = cb.tree.Clone()
				}
				for n, u := range cb.used {
					used[n] += u
				}
				centralUsed += cb.centralUsed
				continue
			}
		}
		r := p.cfg.Builder.Build(tree.Context{
			Sys:          sys,
			Demand:       d,
			Spec:         p.cfg.Spec,
			Attrs:        sets[k],
			Nodes:        nodes,
			Avail:        avail,
			CentralAvail: centralAvail,
			LocalWeights: cache.weightsOf(sets[k]),
		})
		built[k] = r.Tree
		for n, u := range r.Used {
			used[n] += u
		}
		centralUsed += r.CentralUsed
		if memo {
			cache.storeTree(key, sets[k], r)
		} else {
			cache.builds.Add(1)
		}
	}

	forest := plan.NewForest()
	for _, t := range built {
		if t != nil && !t.Empty() {
			forest.Add(t)
		}
	}
	return forest, forest.ComputeStats(d, sys, p.cfg.Spec)
}

// gainContext assembles the estimator inputs from the last evaluation.
// Trees are indexed by attribute-set key once, so the scan is
// O(sets + trees·members) rather than the quadratic
// O(sets·trees·members) of a per-set linear search.
func (p *Planner) gainContext(sys *model.System, d *task.Demand, res Result) partition.GainContext {
	byKey := make(map[string]*plan.Tree, len(res.Forest.Trees))
	for _, t := range res.Forest.Trees {
		byKey[t.Attrs.Key()] = t
	}
	missed := make([]int, len(res.Partition))
	for i, set := range res.Partition {
		demanded := d.PairCountIn(set)
		collected := 0
		if t := byKey[set.Key()]; t != nil {
			for _, n := range t.Members() {
				collected += len(d.LocalAttrs(n, set))
			}
		}
		missed[i] = demanded - collected
	}
	return partition.GainContext{
		Demand:     d,
		PerMessage: sys.Cost.PerMessage,
		PerValue:   sys.Cost.PerValue,
		Missed:     missed,
	}
}

// lazyGainContext defers the per-set miss counts to first use. The
// scoped search ranks only moves touching the dirty neighborhood, and
// miss counts feed split gains alone, so under a small neighborhood
// almost none of the partition's PairCountIn sweeps ever run.
func (p *Planner) lazyGainContext(sys *model.System, d *task.Demand, res Result) partition.GainContext {
	byKey := make(map[string]*plan.Tree, len(res.Forest.Trees))
	for _, t := range res.Forest.Trees {
		byKey[t.Attrs.Key()] = t
	}
	memo := make(map[int]int)
	return partition.GainContext{
		Demand:     d,
		PerMessage: sys.Cost.PerMessage,
		PerValue:   sys.Cost.PerValue,
		MissedAt: func(i int) int {
			if v, ok := memo[i]; ok {
				return v
			}
			set := res.Partition[i]
			collected := 0
			if t := byKey[set.Key()]; t != nil {
				for _, n := range t.Members() {
					collected += len(d.LocalAttrs(n, set))
				}
			}
			v := d.PairCountIn(set) - collected
			memo[i] = v
			return v
		},
	}
}

// Spec exposes the planner's aggregation spec (used by deployment).
func (p *Planner) Spec() *agg.Spec { return p.cfg.Spec }

// Builder exposes the planner's tree builder (used by adaptation).
func (p *Planner) Builder() tree.Builder { return p.cfg.Builder }

// Alloc exposes the planner's allocation policy (used by adaptation).
func (p *Planner) Alloc() alloc.Sequencer { return p.cfg.Alloc }

// Constraints exposes the planner's partition constraints (used by
// adaptation).
func (p *Planner) Constraints() *partition.Constraints { return p.cfg.Constraints }
