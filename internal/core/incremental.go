package core

import (
	"sort"

	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
)

// ReplanStats is one incremental update's telemetry.
type ReplanStats struct {
	// Incremental reports that the adopted plan came out of the scoped
	// neighborhood search; false means the update ran the full guided
	// search (because the neighborhood grew too large, or the scoped
	// result regressed and fell back).
	Incremental bool
	// FellBack reports that a scoped search ran but its result was
	// discarded for a full replan (coverage regressed past the
	// configured tolerance).
	FellBack bool
	// DirtySets and TotalSets size the dirty neighborhood against the
	// reshaped partition the scoped search started from.
	DirtySets int
	// TotalSets is the reshaped partition's set count (see DirtySets).
	TotalSets int
	// Diff relates the adopted forest to the previous one tree-by-tree.
	Diff plan.Diff
	// Evaluations, TreeBuilds and TreeReuses aggregate the update's
	// search telemetry (full-replan work included when falling back).
	Evaluations int
	// TreeBuilds counts tree constructions this update performed.
	TreeBuilds int
	// TreeReuses counts tree-build memo hits this update scored.
	TreeReuses int
}

// ReplanOption tunes a Replanner.
type ReplanOption func(*Replanner)

// WithReplanFallback sets the coverage tolerance of the post-search
// fallback check: the scoped result is discarded for a full replan when
// its coverage fraction drops more than tol below what the previous
// forest still collects under the new demand (the same demand on both
// sides — mutations change the denominator, so the old plan's recorded
// coverage is not a comparable baseline). The default tolerates a 1%
// drop: the sequential capacity allocation reorders under any demand
// change, shuffling tree budgets enough to move coverage a fraction of
// a percent either way — falling back on that noise pays the full
// search for nothing. Pass 0 to fall back on any regression.
func WithReplanFallback(tol float64) ReplanOption {
	return func(r *Replanner) { r.fallbackTol = tol }
}

// defaultFallbackTol absorbs allocation-order noise (see
// WithReplanFallback).
const defaultFallbackTol = 0.01

// WithReplanDirtyLimit sets the upfront escalation threshold: when the
// dirty neighborhood exceeds this fraction of the partition the update
// skips the scoped search and replans fully (a change touching most of
// the partition gains nothing from scoping). Default 0.5.
func WithReplanDirtyLimit(frac float64) ReplanOption {
	return func(r *Replanner) { r.dirtyLimit = frac }
}

// Replanner maintains a plan across task churn, replanning
// incrementally on each demand mutation.
//
// An update diffs the new demand against the previous one, reshapes the
// current partition around the affected attributes (mutated sets shrink
// to the surviving universe, new attributes join as singletons), marks
// the dirty neighborhood — reshaped sets, sets intersecting the
// affected attributes, and congested sets whose coverage the freed or
// claimed capacity could move — and seeds the guided search from the
// reshaped partition with candidate generation restricted to that
// neighborhood. Tree builds for untouched sets come out of the
// persistent memo byte-for-byte, so an update's cost scales with the
// neighborhood, not the partition.
//
// Two guards bound the quality loss: updates whose neighborhood exceeds
// dirtyLimit of the partition escalate to the full guided search
// upfront, and a scoped result whose coverage fraction regresses more
// than fallbackTol below the previous plan's is discarded for a full
// replan.
//
// A Replanner is not safe for concurrent use.
type Replanner struct {
	p     *Planner
	sys   *model.System
	d     *task.Demand
	cur   Result
	cache *evalCache

	fallbackTol float64
	dirtyLimit  float64
	last        ReplanStats
}

// NewReplanner plans d from scratch and returns a replanner maintaining
// the result across updates.
func NewReplanner(p *Planner, sys *model.System, d *task.Demand, opts ...ReplanOption) *Replanner {
	r := newReplanner(p, sys, opts)
	r.seed(d, p.Plan(sys, d))
	return r
}

// NewReplannerFrom returns a replanner seeded with a known plan for d —
// cold resume uses this to continue from a journaled partition's
// deterministic re-evaluation instead of searching.
func NewReplannerFrom(p *Planner, sys *model.System, d *task.Demand, res Result, opts ...ReplanOption) *Replanner {
	r := newReplanner(p, sys, opts)
	r.seed(d, res)
	return r
}

func newReplanner(p *Planner, sys *model.System, opts []ReplanOption) *Replanner {
	r := &Replanner{p: p, sys: sys, dirtyLimit: 0.5, fallbackTol: defaultFallbackTol}
	for _, o := range opts {
		o(r)
	}
	return r
}

// seed installs a known-good plan as the replanner's current state.
func (r *Replanner) seed(d *task.Demand, res Result) {
	r.d = d.Clone()
	r.cur = res
	r.cache = r.p.newCache(r.d)
}

// Current returns the maintained plan.
func (r *Replanner) Current() Result { return r.cur }

// LastStats returns the most recent update's telemetry.
func (r *Replanner) LastStats() ReplanStats { return r.last }

// Reset replaces the maintained plan with an externally produced one
// (e.g. after failure repair rewired trees behind the replanner's back)
// and drops the memo, whose entries no longer describe the live forest.
func (r *Replanner) Reset(d *task.Demand, forest *plan.Forest) {
	r.seed(d, Result{
		Forest:    forest,
		Stats:     forest.ComputeStats(d, r.sys, r.p.cfg.Spec),
		Partition: forest.Partition(),
	})
}

// Update replans for the mutated demand and returns the adopted plan
// plus the update's telemetry. The returned Result's telemetry counters
// cover this update only.
func (r *Replanner) Update(newD *task.Demand) (Result, ReplanStats) {
	change := task.Diff(r.d, newD)
	prev := r.cur
	if change.AffectedAttrs.Empty() {
		r.last = ReplanStats{
			Incremental: true,
			TotalSets:   len(prev.Partition),
			Diff:        plan.DiffForests(prev.Forest, prev.Forest),
		}
		return prev, r.last
	}

	// Fallback baseline: what the stale forest would still collect if
	// left in place under the mutated demand. Both sides of the check
	// are then fractions of the same pair count.
	stale := prev.Forest.ComputeStats(newD, r.sys, r.p.cfg.Spec)
	prevCov := coverageFrac(stale.Collected, newD.PairCount())

	// Retire every cached artifact the mutation touches, then repoint
	// the cache: surviving entries are exactly the ones the new demand
	// leaves byte-identical.
	r.cache.invalidate(change.AffectedAttrs)
	r.cache.rebind(newD)

	sets, dirty := r.reshape(newD, change, prev)

	builds0, reuses0 := r.cache.builds.Load(), r.cache.reuses.Load()
	stats := ReplanStats{DirtySets: len(dirty), TotalSets: len(sets)}

	var res Result
	if float64(len(dirty)) > r.dirtyLimit*float64(len(sets)) {
		// The change touches most of the partition — scoping would
		// explore nearly the full neighborhood anyway, minus the
		// moves that could help. Replan fully.
		res = r.p.Plan(r.sys, newD)
		stats.Evaluations = res.Evaluations
	} else {
		scope := &searchScope{dirty: dirty}
		inc := r.p.search(r.sys, newD, sets, r.cache, scope)
		stats.Evaluations = inc.Evaluations
		incCov := coverageFrac(inc.Stats.Collected, newD.PairCount())
		if incCov+1e-12 < prevCov-r.fallbackTol {
			// The scoped search lost coverage the old plan had: the
			// neighborhood was too tight for this mutation. Discard it
			// and pay for the full search.
			stats.FellBack = true
			res = r.p.Plan(r.sys, newD)
			stats.Evaluations += res.Evaluations
		} else {
			stats.Incremental = true
			res = inc
		}
	}
	// The persistent memo's counters cover scoped work; full replans
	// count their own builds internally, so take the max of both views.
	stats.TreeBuilds = int(r.cache.builds.Load() - builds0)
	stats.TreeReuses = int(r.cache.reuses.Load() - reuses0)
	if !stats.Incremental {
		stats.TreeBuilds += res.TreeBuilds
		stats.TreeReuses += res.TreeReuses
	}
	stats.Diff = plan.DiffForests(prev.Forest, res.Forest)

	r.d = newD.Clone()
	r.cache.rebind(r.d)
	r.cur = res
	r.last = stats
	return res, stats
}

// reshape adapts the previous partition to the mutated demand and marks
// the dirty neighborhood. Sets keep their attributes where possible:
// each previous set is intersected with the new universe (dropped
// entirely when empty) and newly demanded attributes join as
// singletons. Dirty are the reshaped or new sets, every set
// intersecting the affected attributes, and a bounded, gain-ranked
// handful of congested sets that could recruit a node the mutation
// freed capacity on: removals shrink demanded load only at the removed
// pairs' nodes, so a tree missing pairs can only gain from the mutation
// by placing one of those specific nodes — congested sets with no
// demand at a freed node see an unchanged feasible region and stay
// clean, and those past the budget wait for a future pass.
func (r *Replanner) reshape(newD *task.Demand, change task.Change, prev Result) ([]model.AttrSet, map[string]struct{}) {
	affected := change.AffectedAttrs
	universe := newD.Universe()
	dirty := make(map[string]struct{})
	var sets []model.AttrSet
	var covered model.AttrSet
	for _, s := range prev.Partition {
		kept := s.Intersect(universe)
		if kept.Empty() {
			continue
		}
		if kept.Len() != s.Len() || kept.IntersectsAny(affected) {
			dirty[kept.Key()] = struct{}{}
		}
		sets = append(sets, kept)
		covered = covered.Union(kept)
	}
	for _, a := range universe.Attrs() {
		if !covered.Contains(a) {
			s := model.NewAttrSet(a)
			sets = append(sets, s)
			dirty[s.Key()] = struct{}{}
		}
	}

	freed := make(map[model.NodeID]struct{})
	for _, p := range change.Removed {
		freed[p.Node] = struct{}{}
	}
	if len(freed) == 0 {
		return sets, dirty
	}
	byKey := make(map[string]*plan.Tree, len(prev.Forest.Trees))
	for _, t := range prev.Forest.Trees {
		byKey[t.Attrs.Key()] = t
	}
	// Congested sets that could recruit a freed node are opportunistic
	// additions: ranked by recruitable pair gain and admitted only up to
	// a small budget, clamped so opportunism never trips the escalation
	// gate. At scale a removal frees capacity on many nodes and almost
	// every set is congested; chasing them all is a full replan in
	// disguise, so the rest stay clean and wait for a future pass.
	type candidate struct {
		key  string
		gain int
	}
	var cands []candidate
	for _, s := range sets {
		key := s.Key()
		if _, isDirty := dirty[key]; isDirty {
			continue
		}
		t := byKey[key]
		if t == nil {
			dirty[key] = struct{}{}
			continue
		}
		members := make(map[model.NodeID]struct{}, len(t.Members()))
		collected := 0
		for _, n := range t.Members() {
			members[n] = struct{}{}
			collected += len(newD.LocalAttrs(n, s))
		}
		if newD.PairCountIn(s) <= collected {
			continue // not congested: nothing left to gain
		}
		gain := 0
		for n := range freed {
			if _, in := members[n]; !in {
				gain += len(newD.LocalAttrs(n, s))
			}
		}
		if gain > 0 {
			cands = append(cands, candidate{key: key, gain: gain})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		return cands[i].key < cands[j].key
	})
	budget := maxCongestedDirty
	if gate := int(r.dirtyLimit*float64(len(sets))) - len(dirty); gate < budget {
		budget = gate
	}
	for _, c := range cands {
		if budget <= 0 {
			break
		}
		dirty[c.key] = struct{}{}
		budget--
	}
	return sets, dirty
}

// maxCongestedDirty bounds the opportunistic congested-set additions to
// the dirty neighborhood per update.
const maxCongestedDirty = 4

// coverageFrac is the collected fraction of demanded pairs (1 when
// nothing is demanded).
func coverageFrac(collected, demanded int) float64 {
	if demanded == 0 {
		return 1
	}
	return float64(collected) / float64(demanded)
}
