package core

import (
	"fmt"
	"sync"
	"testing"

	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/task"
	"remo/internal/tree"
	"remo/internal/workload"
)

// planEnv generates one seeded workload through the same generators the
// figure experiments use. large toggles between the small-scale and
// large-scale task generator.
func planEnv(t testing.TB, seed int64, large bool) (*model.System, *task.Demand) {
	t.Helper()
	sys, err := workload.System(workload.SystemConfig{
		Nodes:      22,
		Attrs:      7,
		CapacityLo: 100,
		CapacityHi: 300,
		Cost:       cost.Model{PerMessage: 10, PerValue: 1},
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tasks []model.Task
	if large {
		tasks = workload.LargeTasks(sys, 4, seed+7)
	} else {
		tasks = workload.SmallTasks(sys, 14, seed+7)
	}
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		t.Fatal(err)
	}
	return sys, d
}

// samePlan fails the test unless a and b are the same plan: equal
// score, equal partition, and edge-identical forests.
func samePlan(t *testing.T, label string, a, b Result) {
	t.Helper()
	if a.Stats.Score() != b.Stats.Score() {
		t.Fatalf("%s: scores differ: %+v vs %+v", label, a.Stats.Score(), b.Stats.Score())
	}
	if len(a.Partition) != len(b.Partition) {
		t.Fatalf("%s: partition sizes differ: %d vs %d", label, len(a.Partition), len(b.Partition))
	}
	for i := range a.Partition {
		if !a.Partition[i].Equal(b.Partition[i]) {
			t.Fatalf("%s: partition set %d differs: %v vs %v",
				label, i, a.Partition[i], b.Partition[i])
		}
	}
	ea, eb := a.Forest.Edges(), b.Forest.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("%s: edge counts differ: %d vs %d", label, len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("%s: edge %d differs: %v vs %v", label, i, ea[i], eb[i])
		}
	}
}

// TestParallelPlannerDeterministic proves the tentpole claim: the
// parallel planner (8 workers, batch evaluation, parallel multi-start)
// returns the exact plan of the sequential planner on 20 seeded random
// workloads from both workload generators.
func TestParallelPlannerDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		for _, large := range []bool{false, true} {
			label := fmt.Sprintf("seed=%d large=%v", seed, large)
			sys, d := planEnv(t, seed, large)
			seq := NewPlanner(WithWorkers(1)).Plan(sys, d)
			par := NewPlanner(WithWorkers(8)).Plan(sys, d)
			samePlan(t, label, seq, par)
			if err := par.Forest.Validate(d, sys, nil); err != nil {
				t.Fatalf("%s: parallel plan invalid: %v", label, err)
			}
		}
	}
}

// TestTreeCacheTransparent proves the tree-build memo changes nothing
// but work: with and without the memo the sequential planner returns
// the same plan, and on a non-trivial workload the memo actually hits.
func TestTreeCacheTransparent(t *testing.T) {
	sys, d := planEnv(t, 3, false)
	cached := NewPlanner(WithWorkers(1)).Plan(sys, d)
	uncached := NewPlanner(WithWorkers(1), WithoutTreeCache()).Plan(sys, d)
	samePlan(t, "memo on/off", cached, uncached)
	if cached.TreeReuses == 0 {
		t.Fatal("tree-build memo never hit on a multi-iteration search")
	}
	if cached.TreeBuilds >= uncached.TreeBuilds {
		t.Fatalf("memo did not reduce builds: %d cached vs %d uncached",
			cached.TreeBuilds, uncached.TreeBuilds)
	}
	if uncached.TreeReuses != 0 {
		t.Fatalf("disabled memo reported %d reuses", uncached.TreeReuses)
	}
}

// TestParallelEvaluationsCountBatches documents the telemetry contract:
// a parallel iteration launches its whole candidate batch, so the
// parallel Evaluations count is >= the sequential count, never smaller.
func TestParallelEvaluationsCountBatches(t *testing.T) {
	sys, d := planEnv(t, 5, false)
	seq := NewPlanner(WithWorkers(1)).Plan(sys, d)
	par := NewPlanner(WithWorkers(8)).Plan(sys, d)
	if par.Evaluations < seq.Evaluations {
		t.Fatalf("parallel launched fewer evaluations (%d) than sequential (%d)",
			par.Evaluations, seq.Evaluations)
	}
}

// TestEvalCacheConcurrentHammer drives every cache surface from many
// goroutines at once; run under -race it proves the cache is safe for
// the concurrent evaluators (the scripts/check.sh gate runs it so).
func TestEvalCacheConcurrentHammer(t *testing.T) {
	sys, d := planEnv(t, 7, false)
	cache := newEvalCache(d, 0)
	universe := d.Universe().Attrs()
	builder := tree.New(tree.Star)

	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Rotate through overlapping attr sets so goroutines
				// collide on the same keys.
				a := universe[(g+i)%len(universe)]
				b := universe[(g+i+1)%len(universe)]
				set := model.NewAttrSet(a, b)
				parts := cache.participantsOf(set)
				weights := cache.weightsOf(set)
				if len(weights) != len(parts) {
					t.Errorf("weights/participants out of sync: %d vs %d",
						len(weights), len(parts))
					return
				}
				avail := make(map[model.NodeID]float64, len(parts))
				for _, n := range parts {
					avail[n] = sys.Capacity(n)
				}
				key := buildTreeKey(set, parts, avail, sys.CentralCapacity)
				if cb, ok := cache.lookupTree(key); ok {
					if cb.tree == nil {
						t.Error("cached build lost its tree")
						return
					}
					_ = cb.tree.Clone()
					continue
				}
				r := builder.Build(tree.Context{
					Sys:          sys,
					Demand:       d,
					Attrs:        set,
					Nodes:        parts,
					Avail:        avail,
					CentralAvail: sys.CentralCapacity,
					LocalWeights: weights,
				})
				cache.storeTree(key, set, r)
			}
		}(g)
	}
	wg.Wait()

	if cache.builds.Load() == 0 {
		t.Fatal("hammer built no trees")
	}
}

// TestPlannerConcurrentUse runs several full parallel plans over the
// same shared system and demand at once — the facade allows concurrent
// Plan calls, and under -race this proves the planner never mutates
// shared inputs.
func TestPlannerConcurrentUse(t *testing.T) {
	sys, d := planEnv(t, 11, true)
	want := NewPlanner().Plan(sys, d)
	const planners = 4
	results := make([]Result, planners)
	var wg sync.WaitGroup
	wg.Add(planners)
	for i := 0; i < planners; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = NewPlanner().Plan(sys, d)
		}(i)
	}
	wg.Wait()
	for i := range results {
		samePlan(t, fmt.Sprintf("concurrent plan %d", i), want, results[i])
	}
}

// TestWorkersOptionDefaults pins the worker-resolution contract.
func TestWorkersOptionDefaults(t *testing.T) {
	if w := NewPlanner().workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := NewPlanner(WithWorkers(1)).workers(); w != 1 {
		t.Fatalf("WithWorkers(1) resolved to %d", w)
	}
	if w := NewPlanner(WithWorkers(6)).workers(); w != 6 {
		t.Fatalf("WithWorkers(6) resolved to %d", w)
	}
}
