package core

import (
	"math/rand"
	"testing"

	"remo/internal/alloc"
	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/partition"
	"remo/internal/task"
	"remo/internal/tree"
)

// randomEnv builds a system of n nodes (capacity range [lo, hi]) and a
// demand where each node reports a random subset of nAttrs attributes.
func randomEnv(t *testing.T, rng *rand.Rand, n, nAttrs int, lo, hi, centralCap float64) (*model.System, *task.Demand) {
	t.Helper()
	attrs := make([]model.AttrID, nAttrs)
	for i := range attrs {
		attrs[i] = model.AttrID(i + 1)
	}
	nodes := make([]model.Node, n)
	d := task.NewDemand()
	for i := range nodes {
		id := model.NodeID(i + 1)
		nodes[i] = model.Node{ID: id, Capacity: lo + rng.Float64()*(hi-lo), Attrs: attrs}
		picked := false
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				d.Set(id, a, 1)
				picked = true
			}
		}
		if !picked {
			d.Set(id, attrs[rng.Intn(len(attrs))], 1)
		}
	}
	sys, err := model.NewSystem(centralCap, cost.Model{PerMessage: 10, PerValue: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return sys, d
}

func TestPlanValidAndAtLeastBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		sys, d := randomEnv(t, rng, 20, 4, 30, 90, 400)
		p := NewPlanner()
		res := p.Plan(sys, d)
		if err := res.Forest.Validate(d, sys, nil); err != nil {
			t.Fatalf("trial %d: invalid plan: %v", trial, err)
		}
		if err := partition.Validate(res.Partition, d.Universe()); err != nil {
			t.Fatalf("trial %d: invalid partition: %v", trial, err)
		}

		sp := p.PlanPartition(sys, d, partition.Singleton(d.Universe()))
		op := p.PlanPartition(sys, d, partition.OneSet(d.Universe()))
		if res.Stats.Collected < sp.Stats.Collected {
			t.Errorf("trial %d: REMO %d < SP %d", trial, res.Stats.Collected, sp.Stats.Collected)
		}
		if res.Stats.Collected < op.Stats.Collected {
			t.Errorf("trial %d: REMO %d < OP %d", trial, res.Stats.Collected, op.Stats.Collected)
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(9))
	rng2 := rand.New(rand.NewSource(9))
	sys1, d1 := randomEnv(t, rng1, 15, 3, 30, 90, 300)
	sys2, d2 := randomEnv(t, rng2, 15, 3, 30, 90, 300)
	r1 := NewPlanner().Plan(sys1, d1)
	r2 := NewPlanner().Plan(sys2, d2)
	if r1.Stats.Collected != r2.Stats.Collected || r1.Evaluations != r2.Evaluations {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d",
			r1.Stats.Collected, r1.Evaluations, r2.Stats.Collected, r2.Evaluations)
	}
	e1, e2 := r1.Forest.Edges(), r2.Forest.Edges()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestPlanMergesSharedAttributes(t *testing.T) {
	// All nodes report both attrs; abundant capacity. Merging both attrs
	// into one tree saves a full message per node, so REMO should not
	// stay at the singleton partition.
	nodes := make([]model.Node, 10)
	d := task.NewDemand()
	for i := range nodes {
		id := model.NodeID(i + 1)
		nodes[i] = model.Node{ID: id, Capacity: 1e6, Attrs: []model.AttrID{1, 2}}
		d.Set(id, 1, 1)
		d.Set(id, 2, 1)
	}
	sys, err := model.NewSystem(1e6, cost.Model{PerMessage: 10, PerValue: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	res := NewPlanner().Plan(sys, d)
	if len(res.Partition) != 1 {
		t.Fatalf("partition = %v, want single merged set", res.Partition)
	}
	if res.Stats.Collected != 20 {
		t.Fatalf("Collected = %d, want 20", res.Stats.Collected)
	}
}

func TestPlanEmptyDemand(t *testing.T) {
	sys, err := model.NewSystem(100, cost.Default(), []model.Node{{ID: 1, Capacity: 10}})
	if err != nil {
		t.Fatal(err)
	}
	res := NewPlanner().Plan(sys, task.NewDemand())
	if len(res.Forest.Trees) != 0 || res.Stats.Collected != 0 {
		t.Fatalf("empty demand produced %+v", res.Stats)
	}
}

func TestPlannerOptionFallbacks(t *testing.T) {
	p := NewPlanner(WithBuilder(nil), WithAlloc(nil), WithMaxIters(-1))
	if p.Builder() == nil || p.Alloc() == nil {
		t.Fatal("nil options not defaulted")
	}
	if p.cfg.MaxIters <= 0 {
		t.Fatal("MaxIters not defaulted")
	}
}

func TestGuidedSearchMatchesEvalBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys, d := randomEnv(t, rng, 18, 4, 25, 60, 300)
	guided := NewPlanner(WithEvalBudget(4)).Plan(sys, d)
	exhaustive := NewPlanner(WithEvalBudget(0)).Plan(sys, d)
	// Exhaustive search evaluates at least as many candidates and cannot
	// collect fewer pairs than... actually both are first-improvement
	// searches, so only sanity-check the relationship loosely:
	if guided.Evaluations > exhaustive.Evaluations*4+8 {
		t.Fatalf("guided evaluated %d, exhaustive %d", guided.Evaluations, exhaustive.Evaluations)
	}
	if guided.Stats.Collected <= 0 || exhaustive.Stats.Collected <= 0 {
		t.Fatal("searches collected nothing")
	}
}

func TestPlannerWorksWithAllBuildersAndAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sys, d := randomEnv(t, rng, 16, 3, 30, 70, 300)
	for _, scheme := range tree.Schemes() {
		for _, as := range alloc.Schemes() {
			p := NewPlanner(WithBuilder(tree.New(scheme)), WithAlloc(alloc.New(as)))
			res := p.Plan(sys, d)
			if err := res.Forest.Validate(d, sys, nil); err != nil {
				t.Errorf("%s/%s: invalid plan: %v", scheme, as, err)
			}
		}
	}
}
