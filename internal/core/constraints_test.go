package core

import (
	"math/rand"
	"testing"

	"remo/internal/partition"
)

// TestPlanRespectsConstraints fuzzes constrained planning: the output
// partition must always satisfy the conflict and pin constraints.
func TestPlanRespectsConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		sys, d := randomEnv(t, rng, 15, 6, 40, 90, 400)
		attrs := d.Universe().Attrs()
		if len(attrs) < 4 {
			continue
		}
		cons := partition.NewConstraints()
		cons.Forbid(attrs[0], attrs[1])
		cons.Forbid(attrs[1], attrs[2])
		cons.Pin(attrs[3])

		p := NewPlanner(WithConstraints(cons))
		res := p.Plan(sys, d)
		if !cons.AllowPartition(res.Partition) {
			t.Fatalf("trial %d: partition %v violates constraints", trial, res.Partition)
		}
		if err := res.Forest.Validate(d, sys, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := partition.Validate(res.Partition, d.Universe()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestAblationOptionsStillValid checks the ablation knobs produce valid
// (if weaker) plans.
func TestAblationOptionsStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	sys, d := randomEnv(t, rng, 18, 4, 30, 80, 350)

	full := NewPlanner().Plan(sys, d)
	for _, p := range []*Planner{
		NewPlanner(WithSingleStart()),
		NewPlanner(WithNoSideways()),
		NewPlanner(WithSingleStart(), WithNoSideways()),
	} {
		res := p.Plan(sys, d)
		if err := res.Forest.Validate(d, sys, nil); err != nil {
			t.Fatal(err)
		}
		if res.Stats.Collected > full.Stats.Collected {
			// Crippled searches may tie but must not beat the full one
			// on the same instance (they explore strict subsets).
			t.Fatalf("ablated search collected %d > full %d",
				res.Stats.Collected, full.Stats.Collected)
		}
	}
}
