package core

import "sync"

// runIndexed is the planner's bounded worker pool: it executes fn(i)
// for every i in [0, n) on at most `workers` goroutines and returns
// once all calls have completed. Each index runs exactly once; with
// workers <= 1 (or a single item) it degenerates to an inline loop,
// which is the planner's sequential mode.
//
// The pool is deliberately structureless — indices are handed out
// through a channel, so slow evaluations do not stall the queue behind
// them — and writes are raced-free by construction: every worker
// touches only the slots its indices own.
func runIndexed(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
