// Package shard implements the collector-tier dispatcher: trees are
// assigned to collector shards by attribute-set key, spread with a
// balance heuristic weighted by per-tree pair load, and re-homed when a
// shard dies. The shape follows the production pattern of a
// leader-elected dispatcher over sharded runners (a cluster agent
// dispatching check configs): one deterministic leaseholder makes all
// placement decisions, shard death is detected through the same
// suspicion machinery that watches monitoring nodes, and orphaned trees
// are re-dispatched to the surviving shards.
//
// Everything in this package is deterministic: balance ties break on
// the lowest shard index and the lexicographically first tree key, so
// the same inputs always produce the same tree→shard map — which is
// what lets a cold resume rebuild the identical assignment from a
// journal.
package shard

import "sort"

// Load is one tree's placement weight: the attribute-set key that
// identifies the tree and the per-round cost its root message charges
// the owning shard (from the cost ledger's C + a·x model over the
// tree's demanded pairs).
type Load struct {
	Key  string
	Cost float64
}

// Move records one tree re-homed from one shard to another — an orphan
// re-dispatch after a shard death, or a rebalance onto a recovered
// shard.
type Move struct {
	Key      string
	From, To int
	// Round is the dispatch round the move was decided in.
	Round int
}

// Balance spreads trees over the live shards with a longest-processing-
// time greedy: heaviest tree first onto the currently least-loaded
// shard. Ties break deterministically — equal costs by key, equal shard
// loads by lowest shard index — so the assignment is a pure function of
// its inputs. Returns nil when no shard is live.
func Balance(loads []Load, live []int) map[string]int {
	if len(live) == 0 {
		return nil
	}
	order := append([]Load(nil), loads...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Cost != order[j].Cost {
			return order[i].Cost > order[j].Cost
		}
		return order[i].Key < order[j].Key
	})
	shards := append([]int(nil), live...)
	sort.Ints(shards)
	totals := make(map[int]float64, len(shards))
	assign := make(map[string]int, len(order))
	for _, l := range order {
		best := shards[0]
		for _, s := range shards[1:] {
			if totals[s] < totals[best] {
				best = s
			}
		}
		assign[l.Key] = best
		totals[best] += l.Cost
	}
	return assign
}

// sortedKeys returns the map's keys in lexicographic order.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
