package shard

import (
	"fmt"
	"reflect"
	"testing"
)

func loadsN(n int) []Load {
	out := make([]Load, n)
	for i := range out {
		out[i] = Load{Key: fmt.Sprintf("t%02d", i), Cost: float64(1 + i%5)}
	}
	return out
}

func TestBalanceDeterministicAndComplete(t *testing.T) {
	loads := loadsN(12)
	live := []int{0, 1, 2, 3}
	a := Balance(loads, live)
	b := Balance(loads, live)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("balance not deterministic: %v vs %v", a, b)
	}
	if len(a) != len(loads) {
		t.Fatalf("balance placed %d of %d keys", len(a), len(loads))
	}
	perShard := map[int]int{}
	for k, s := range a {
		if s < 0 || s > 3 {
			t.Fatalf("key %q placed on invalid shard %d", k, s)
		}
		perShard[s]++
	}
	for _, s := range live {
		if perShard[s] == 0 {
			t.Fatalf("shard %d got no trees: %v", s, a)
		}
	}
}

func TestBalanceSpreadsLoad(t *testing.T) {
	loads := loadsN(20)
	assign := Balance(loads, []int{0, 1})
	cost := map[string]float64{}
	total := 0.0
	for _, l := range loads {
		cost[l.Key] = l.Cost
		total += l.Cost
	}
	perShard := map[int]float64{}
	for k, s := range assign {
		perShard[s] += cost[k]
	}
	// LPT on items of cost <= 5 and total 60 must land well within
	// 2x of the perfect split.
	for s, l := range perShard {
		if l > total/2+5 {
			t.Fatalf("shard %d overloaded: %.1f of %.1f", s, l, total)
		}
	}
}

func TestBalanceNoLiveShards(t *testing.T) {
	if got := Balance(loadsN(3), nil); got != nil {
		t.Fatalf("expected nil assignment with no live shards, got %v", got)
	}
}

// run drives the dispatcher through rounds [from, to), beating every
// shard in up each round before Advance, and returns the last Actions.
func run(d *Dispatcher, from, to int, up ...int) Actions {
	var last Actions
	for r := from; r < to; r++ {
		for _, s := range up {
			d.Beat(s, r)
		}
		last = d.Advance(r)
	}
	return last
}

func TestDispatcherDeathOrphansAndRedispatches(t *testing.T) {
	d := New(Config{Shards: 3, Suspicion: 3})
	loads := loadsN(9)
	init := d.Init(loads, nil)
	victimKeys := 0
	for _, s := range init {
		if s == 2 {
			victimKeys++
		}
	}
	if victimKeys == 0 {
		t.Fatalf("workload too small: shard 2 owns nothing (%v)", init)
	}

	run(d, 0, 5, 0, 1, 2)
	// Shard 2 goes silent from round 5; suspicion 3 declares it at
	// round 7 (rounds 5,6,7 silent).
	var death Actions
	for r := 5; r <= 7; r++ {
		d.Beat(0, r)
		d.Beat(1, r)
		death = d.Advance(r)
		if len(death.Dead) > 0 {
			if r != 7 {
				t.Fatalf("shard declared dead at round %d, want 7", r)
			}
			break
		}
	}
	if !reflect.DeepEqual(death.Dead, []int{2}) {
		t.Fatalf("dead = %v, want [2]", death.Dead)
	}
	if len(death.Orphaned) != victimKeys {
		t.Fatalf("orphaned %d keys, want %d", len(death.Orphaned), victimKeys)
	}
	// Leader 0 is alive, so every orphan re-homes the same round.
	if len(death.Moves) != victimKeys {
		t.Fatalf("moves = %v, want %d re-dispatches", death.Moves, victimKeys)
	}
	for _, m := range death.Moves {
		if m.From != 2 {
			t.Fatalf("move %v does not come from the dead shard", m)
		}
		if m.To != 0 && m.To != 1 {
			t.Fatalf("move %v targets a dead shard", m)
		}
	}
	if got := d.Pending(); len(got) != 0 {
		t.Fatalf("pending after re-dispatch = %v, want empty", got)
	}
	if d.Orphaned() != victimKeys {
		t.Fatalf("Orphaned() = %d, want %d", d.Orphaned(), victimKeys)
	}
	assign := d.Assignment()
	if len(assign) != len(loads) {
		t.Fatalf("assignment lost keys: %v", assign)
	}
	for k, s := range assign {
		if s == 2 {
			t.Fatalf("key %q still on dead shard", k)
		}
	}
}

func TestDispatcherLeaderDeathStallsUntilLeaseExpiry(t *testing.T) {
	d := New(Config{Shards: 3, Suspicion: 3, LeaseRounds: 4})
	d.Init(loadsN(9), nil)
	run(d, 0, 5, 0, 1, 2)
	// Leader (shard 0) goes silent from round 5. Its last renewal was
	// round 4, so the lease holds through round 7; declaration lands at
	// round 7 but election must wait for round 8.
	sawElection := -1
	for r := 5; r <= 10; r++ {
		d.Beat(1, r)
		d.Beat(2, r)
		acts := d.Advance(r)
		if len(acts.Dead) > 0 && !reflect.DeepEqual(acts.Dead, []int{0}) {
			t.Fatalf("round %d dead = %v, want [0]", r, acts.Dead)
		}
		if len(acts.Orphaned) > 0 && len(acts.Moves) > 0 {
			t.Fatalf("round %d re-dispatched while leaderless: %v", r, acts.Moves)
		}
		if acts.LeaderChanged {
			sawElection = r
			if acts.Leader != 1 {
				t.Fatalf("elected shard %d, want lowest live shard 1", acts.Leader)
			}
			if len(acts.Moves) == 0 {
				t.Fatalf("new leader issued no re-dispatch at round %d", r)
			}
			break
		}
	}
	if sawElection != 8 {
		t.Fatalf("election at round %d, want 8 (lease expiry)", sawElection)
	}
	if d.Elections() != 1 {
		t.Fatalf("Elections() = %d, want 1", d.Elections())
	}
	if len(d.Pending()) != 0 {
		t.Fatalf("pending after election = %v, want empty", d.Pending())
	}
}

func TestDispatcherFlapRebalances(t *testing.T) {
	d := New(Config{Shards: 3, Suspicion: 2})
	loads := loadsN(12)
	d.Init(loads, nil)
	run(d, 0, 4, 0, 1, 2)
	// Kill shard 1, wait for re-dispatch, then bring it back.
	for r := 4; r < 8; r++ {
		d.Beat(0, r)
		d.Beat(2, r)
		d.Advance(r)
	}
	for k, s := range d.Assignment() {
		if s == 1 {
			t.Fatalf("key %q still on dead shard 1", k)
		}
	}
	var back Actions
	for r := 8; r < 12; r++ {
		back = run(d, r, r+1, 0, 1, 2)
		if len(back.Recovered) > 0 {
			break
		}
	}
	if !reflect.DeepEqual(back.Recovered, []int{1}) {
		t.Fatalf("recovered = %v, want [1]", back.Recovered)
	}
	if len(back.Moves) == 0 {
		t.Fatal("recovery produced no rebalance moves")
	}
	perShard := map[int]int{}
	for _, s := range d.Assignment() {
		perShard[s]++
	}
	if perShard[1] == 0 {
		t.Fatalf("recovered shard got no trees back: %v", perShard)
	}
	if len(d.Assignment()) != len(loads) {
		t.Fatalf("assignment lost keys after flap: %v", d.Assignment())
	}
}

func TestDispatcherRetargetSticky(t *testing.T) {
	d := New(Config{Shards: 3})
	loads := loadsN(9)
	before := map[string]int{}
	for k, s := range d.Init(loads, nil) {
		before[k] = s
	}
	next := append(append([]Load(nil), loads[:8]...), Load{Key: "zz-new", Cost: 2})
	after := d.Retarget(next, 1)
	for _, l := range next[:8] {
		if after[l.Key] != before[l.Key] {
			t.Fatalf("persisting key %q moved %d -> %d", l.Key, before[l.Key], after[l.Key])
		}
	}
	if _, dropped := after[loads[8].Key]; dropped {
		t.Fatalf("dropped key %q still assigned", loads[8].Key)
	}
	if s, ok := after["zz-new"]; !ok || s < 0 || s > 2 {
		t.Fatalf("new key placed on %d, ok=%v", s, ok)
	}
}

func TestDispatcherSeedAdoption(t *testing.T) {
	loads := loadsN(6)
	seed := map[string]int{}
	for i, l := range loads {
		seed[l.Key] = (i + 1) % 3 // deliberately not what Balance picks
	}
	d := New(Config{Shards: 3})
	if got := d.Init(loads, seed); !reflect.DeepEqual(got, seed) {
		t.Fatalf("valid seed not adopted: got %v want %v", got, seed)
	}

	// A seed missing a key, or naming an out-of-range shard, is rejected.
	missing := map[string]int{loads[0].Key: 0}
	d2 := New(Config{Shards: 3})
	if got := d2.Init(loads, missing); reflect.DeepEqual(got, missing) {
		t.Fatal("partial seed adopted")
	} else if len(got) != len(loads) {
		t.Fatalf("fallback balance incomplete: %v", got)
	}
	bad := map[string]int{}
	for _, l := range loads {
		bad[l.Key] = 7
	}
	d3 := New(Config{Shards: 3})
	got := d3.Init(loads, bad)
	for k, s := range got {
		if s < 0 || s > 2 {
			t.Fatalf("out-of-range seed leaked: %q -> %d", k, s)
		}
	}
}
