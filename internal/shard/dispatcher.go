package shard

import (
	"sort"

	"remo/internal/detect"
	"remo/internal/model"
)

// DefaultLeaseRounds is the dispatcher lease length when Config leaves
// it zero: a leaseholder's placement authority survives this many
// rounds past its last renewal, so a new leader cannot be elected (and
// no conflicting re-dispatch issued) until the old lease has provably
// expired.
const DefaultLeaseRounds = 4

// Config parameterizes a Dispatcher.
type Config struct {
	// Shards is the number of collector shards (must be >= 1).
	Shards int
	// Suspicion is how many consecutive silent rounds a shard tolerates
	// before it is declared dead (default detect.DefaultSuspicionRounds).
	Suspicion int
	// LeaseRounds is the leadership lease length in rounds (default
	// DefaultLeaseRounds).
	LeaseRounds int
}

// Actions is what one dispatch round decided: shards newly declared
// dead or recovered, trees newly orphaned, and the moves (orphan
// re-dispatches plus rebalances) applied this round.
type Actions struct {
	// Dead and Recovered list the shards whose liveness verdict flipped
	// this round, ascending.
	Dead, Recovered []int
	// Orphaned lists tree keys that lost their owner this round, sorted.
	Orphaned []string
	// Moves lists the re-homings decided this round, in apply order.
	Moves []Move
	// Leader is the leaseholder after this round's election step.
	Leader int
	// LeaderChanged reports that a new leader was elected this round.
	LeaderChanged bool
}

// Dispatcher owns the tree→shard map. It detects shard death through
// the same suspicion machinery that watches monitoring nodes (shards
// heartbeat once per round they are up), runs a deterministic
// lease-based leader election among the shard candidates, and re-homes
// orphaned trees onto the surviving shards. It is not safe for
// concurrent use; the emulation machine drives it from its coordinator
// goroutine only.
type Dispatcher struct {
	cfg Config
	det *detect.Detector

	// assign maps each placed tree key to its owning shard.
	assign map[string]int
	// load is each tree's placement cost, for balance decisions.
	load map[string]float64
	// pending maps orphaned keys to the dead shard they came from,
	// awaiting a leaseholder to re-dispatch them.
	pending map[string]int

	leader     int
	leaseUntil int
	// leaderBeat is the last round the current leaseholder itself
	// heartbeat — a lease renews only on evidence, not on the absence of
	// a death verdict, so a silent leader's authority expires on
	// schedule even before the suspicion window declares it dead.
	leaderBeat int
	elections  int
	moves      []Move
	orphaned   int
}

// New returns a dispatcher over cfg.Shards candidates, all initially
// live, with shard 0 holding the initial lease.
func New(cfg Config) *Dispatcher {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.LeaseRounds <= 0 {
		cfg.LeaseRounds = DefaultLeaseRounds
	}
	d := &Dispatcher{
		cfg:     cfg,
		det:     detect.New(detect.Config{SuspicionRounds: cfg.Suspicion}),
		assign:  make(map[string]int),
		load:    make(map[string]float64),
		pending: make(map[string]int),
		leader:  0,
	}
	watch := make([]model.NodeID, cfg.Shards)
	for s := range watch {
		watch[s] = model.NodeID(s)
	}
	d.det.Watch(watch, 0)
	d.leaseUntil = cfg.LeaseRounds
	d.leaderBeat = -1
	return d
}

// Init places the initial forest. When seed names a live shard for
// every key it is adopted verbatim — the journal-recovery path, where
// the dispatcher must rebuild the identical pre-crash tree→shard map —
// otherwise the balance heuristic places from scratch. Returns the
// assignment (shared map; callers must not mutate it).
func (d *Dispatcher) Init(loads []Load, seed map[string]int) map[string]int {
	d.load = make(map[string]float64, len(loads))
	for _, l := range loads {
		d.load[l.Key] = l.Cost
	}
	if d.seedValid(loads, seed) {
		d.assign = make(map[string]int, len(seed))
		for k, s := range seed {
			if _, placed := d.load[k]; placed {
				d.assign[k] = s
			}
		}
		return d.assign
	}
	d.assign = Balance(loads, d.liveShards())
	return d.assign
}

// seedValid reports whether seed covers every tree with an in-range
// shard.
func (d *Dispatcher) seedValid(loads []Load, seed map[string]int) bool {
	if len(seed) == 0 {
		return false
	}
	for _, l := range loads {
		s, ok := seed[l.Key]
		if !ok || s < 0 || s >= d.cfg.Shards {
			return false
		}
	}
	return true
}

// Beat records that shard s was up during the given round.
func (d *Dispatcher) Beat(s, round int) {
	if s < 0 || s >= d.cfg.Shards {
		return
	}
	if s == d.leader && round > d.leaderBeat {
		d.leaderBeat = round
	}
	d.det.Beat(model.NodeID(s), round)
}

// Alive reports whether shard s is not currently declared dead.
func (d *Dispatcher) Alive(s int) bool {
	return d.det.Alive(model.NodeID(s))
}

// Leader returns the current leaseholder.
func (d *Dispatcher) Leader() int { return d.leader }

// Elections counts leader changes since construction.
func (d *Dispatcher) Elections() int { return d.elections }

// Orphaned counts trees that lost their owner to a shard death,
// cumulatively (a tree orphaned twice by a flapping sequence counts
// twice).
func (d *Dispatcher) Orphaned() int { return d.orphaned }

// Moves returns every re-homing decided so far, in apply order.
func (d *Dispatcher) Moves() []Move { return append([]Move(nil), d.moves...) }

// Assignment snapshots the current tree→shard map.
func (d *Dispatcher) Assignment() map[string]int {
	out := make(map[string]int, len(d.assign))
	for k, s := range d.assign {
		out[k] = s
	}
	return out
}

// Pending lists the orphaned keys awaiting re-dispatch, sorted.
func (d *Dispatcher) Pending() []string { return sortedKeys(d.pending) }

// Orphans snapshots the orphaned keys awaiting re-dispatch with the
// dead shard each came from.
func (d *Dispatcher) Orphans() map[string]int {
	out := make(map[string]int, len(d.pending))
	for k, s := range d.pending {
		out[k] = s
	}
	return out
}

// liveShards lists the shards not declared dead, ascending.
func (d *Dispatcher) liveShards() []int {
	out := make([]int, 0, d.cfg.Shards)
	for s := 0; s < d.cfg.Shards; s++ {
		if d.det.Alive(model.NodeID(s)) {
			out = append(out, s)
		}
	}
	return out
}

// totals sums the placement cost currently assigned to each shard.
func (d *Dispatcher) totals() map[int]float64 {
	out := make(map[int]float64, d.cfg.Shards)
	for k, s := range d.assign {
		out[s] += d.load[k]
	}
	return out
}

// Retarget re-places the map after a plan install: keys that persist
// keep their owner when it is live (sticky placement — a replan must
// not shuffle healthy shards), new keys go to the least-loaded live
// shards, dropped keys leave the map and the orphan queue.
func (d *Dispatcher) Retarget(loads []Load, round int) map[string]int {
	newLoad := make(map[string]float64, len(loads))
	for _, l := range loads {
		newLoad[l.Key] = l.Cost
	}
	for k := range d.assign {
		if _, still := newLoad[k]; !still {
			delete(d.assign, k)
		}
	}
	for k := range d.pending {
		if _, still := newLoad[k]; !still {
			delete(d.pending, k)
		}
	}
	d.load = newLoad

	live := d.liveShards()
	if len(live) == 0 {
		return d.assign
	}
	totals := d.totals()
	var fresh []Load
	for _, l := range loads {
		if _, placed := d.assign[l.Key]; placed {
			continue
		}
		if _, orphan := d.pending[l.Key]; orphan {
			continue
		}
		fresh = append(fresh, l)
	}
	sort.Slice(fresh, func(i, j int) bool {
		if fresh[i].Cost != fresh[j].Cost {
			return fresh[i].Cost > fresh[j].Cost
		}
		return fresh[i].Key < fresh[j].Key
	})
	for _, l := range fresh {
		best := live[0]
		for _, s := range live[1:] {
			if totals[s] < totals[best] {
				best = s
			}
		}
		d.assign[l.Key] = best
		totals[best] += l.Cost
	}
	return d.assign
}

// Advance runs one dispatch round: liveness verdicts first (deaths
// orphan their trees, recoveries rejoin the candidate set), then the
// election step (a dead leader is replaced only once its lease has
// expired), then — when a live leaseholder holds authority — orphan
// re-dispatch and rebalancing onto recovered shards.
func (d *Dispatcher) Advance(round int) Actions {
	var acts Actions
	for _, v := range d.det.Advance(round) {
		s := int(v.Node)
		if v.Recovered {
			acts.Recovered = append(acts.Recovered, s)
			continue
		}
		acts.Dead = append(acts.Dead, s)
		for _, k := range sortedKeys(d.assign) {
			if d.assign[k] != s {
				continue
			}
			delete(d.assign, k)
			d.pending[k] = s
			d.orphaned++
			acts.Orphaned = append(acts.Orphaned, k)
		}
	}
	sort.Ints(acts.Dead)
	sort.Ints(acts.Recovered)
	sort.Strings(acts.Orphaned)

	if d.det.Alive(model.NodeID(d.leader)) && d.leaderBeat == round {
		d.leaseUntil = round + d.cfg.LeaseRounds
	} else if !d.det.Alive(model.NodeID(d.leader)) && round >= d.leaseUntil {
		if live := d.liveShards(); len(live) > 0 {
			d.leader = live[0]
			d.leaseUntil = round + d.cfg.LeaseRounds
			d.leaderBeat = round
			d.elections++
			acts.LeaderChanged = true
		}
	}
	acts.Leader = d.leader

	if d.det.Alive(model.NodeID(d.leader)) {
		acts.Moves = append(acts.Moves, d.redispatch(round)...)
		acts.Moves = append(acts.Moves, d.rebalance(round, acts.Recovered)...)
		d.moves = append(d.moves, acts.Moves...)
	}
	return acts
}

// redispatch re-homes every pending orphan onto the least-loaded live
// shard, heaviest orphan first.
func (d *Dispatcher) redispatch(round int) []Move {
	if len(d.pending) == 0 {
		return nil
	}
	live := d.liveShards()
	if len(live) == 0 {
		return nil
	}
	keys := sortedKeys(d.pending)
	sort.SliceStable(keys, func(i, j int) bool {
		return d.load[keys[i]] > d.load[keys[j]]
	})
	totals := d.totals()
	moves := make([]Move, 0, len(keys))
	for _, k := range keys {
		best := live[0]
		for _, s := range live[1:] {
			if totals[s] < totals[best] {
				best = s
			}
		}
		moves = append(moves, Move{Key: k, From: d.pending[k], To: best, Round: round})
		d.assign[k] = best
		totals[best] += d.load[k]
		delete(d.pending, k)
	}
	return moves
}

// rebalance shifts trees from the most-loaded shards onto newly
// recovered ones while each move strictly improves the spread — the
// deterministic greedy that reconverges a flapped shard back to a
// balanced share of the forest.
func (d *Dispatcher) rebalance(round int, recovered []int) []Move {
	var moves []Move
	for _, s := range recovered {
		if !d.det.Alive(model.NodeID(s)) {
			continue
		}
		totals := d.totals()
		for {
			donor, donorLoad := -1, 0.0
			for c, l := range totals {
				if c == s || !d.det.Alive(model.NodeID(c)) {
					continue
				}
				if donor < 0 || l > donorLoad || (l == donorLoad && c < donor) {
					donor, donorLoad = c, l
				}
			}
			if donor < 0 {
				break
			}
			// Heaviest donor key, ties to the first key.
			key, keyCost := "", 0.0
			for _, k := range sortedKeys(d.assign) {
				if d.assign[k] != donor {
					continue
				}
				if key == "" || d.load[k] > keyCost {
					key, keyCost = k, d.load[k]
				}
			}
			if key == "" || totals[s]+keyCost >= donorLoad {
				break // no move improves the balance
			}
			moves = append(moves, Move{Key: key, From: donor, To: s, Round: round})
			d.assign[key] = s
			totals[s] += keyCost
			totals[donor] -= keyCost
		}
	}
	return moves
}
