package cluster

import (
	"fmt"

	"remo/internal/agg"
	"remo/internal/model"
	"remo/internal/shard"
	"remo/internal/task"
	"remo/internal/trace"
	"remo/internal/transport"
)

// shardTier is the sharded collection tier: cfg.Shards collector shards
// each own a disjoint subset of the forest's trees (placed and re-homed
// by the shard dispatcher), plus one residual collector — root-owned,
// never crashed — for demanded pairs whose attribute no tree collects.
// The tier merges the per-shard partial results into the single Result
// the store and triggers consume, with a per-shard staleness watermark
// so a dead shard degrades coverage accounting instead of blocking the
// round.
type shardTier struct {
	n    int
	disp *shard.Dispatcher

	// colls[s] is shard s's collector; cfgs[s] its scoped config (the
	// machine config with Demand narrowed to the shard's trees).
	colls []*collector
	cfgs  []Config
	resid *collector

	// owner maps every forest tree to the shard accountable for it:
	// the dispatcher's assignment, plus orphans still booked to the dead
	// shard they came from until a leaseholder re-homes them.
	owner map[string]int
	// pairOwner routes alias-folded demanded pairs to their collector
	// (-1 = residual); it is how the machine and monitor decide which
	// shard a delivered value (and its journal entry) belongs to.
	pairOwner map[model.Pair]int

	down      []bool
	latched   []bool
	watermark []int

	// errSeries is the merged per-round error series across all shards
	// and the residual collector.
	errSeries []float64
	// batches reuses per-shard routing buffers across rounds.
	batches [][]transport.Message
	// redispatched counts orphan re-homings (rebalance moves excluded).
	redispatched int
}

// initShardTier builds the sharded collection tier during NewMachine.
// Must run after cfg defaults are resolved and before any collector is
// created: the scoped configs share the machine's per-key epoch and
// down-key maps by reference.
func (m *Machine) initShardTier() {
	n := m.cfg.Shards
	suspicion := 0
	if m.cfg.Detect != nil {
		suspicion = m.cfg.Detect.SuspicionRounds
	}
	t := &shardTier{
		n:         n,
		disp:      shard.New(shard.Config{Shards: n, Suspicion: suspicion, LeaseRounds: m.cfg.ShardLease}),
		down:      make([]bool, n),
		latched:   make([]bool, n),
		watermark: make([]int, n),
		batches:   make([][]transport.Message, n),
	}
	for s := range t.watermark {
		t.watermark[s] = -1
	}
	m.cfg.keyEpochs = make(map[string]uint32)
	m.cfg.downKeys = make(map[string]bool)
	m.tier = t

	t.disp.Init(shardLoads(m.cfg), m.cfg.SeedAssignment)
	t.owner = t.ownerMap()
	for k := range t.owner {
		m.cfg.keyEpochs[k] = m.cfg.epoch
		m.cfg.downKeys[k] = false
	}
	m.rebuildShardDemands()
}

// shardLoads computes each tree's placement weight from the cost
// ledger's model: the per-round cost of the tree's root message,
// carrying one value per demanded pair in the tree's attribute set.
func shardLoads(cfg Config) []shard.Load {
	out := make([]shard.Load, 0, len(cfg.Forest.Trees))
	for _, t := range cfg.Forest.Trees {
		pairs := cfg.Demand.PairCountIn(t.Attrs)
		out = append(out, shard.Load{Key: t.Attrs.Key(), Cost: cfg.Sys.Cost.Message(pairs)})
	}
	return out
}

// ownerMap folds the dispatcher's assignment and its orphan queue into
// one total tree→shard accountability map.
func (t *shardTier) ownerMap() map[string]int {
	out := t.disp.Assignment()
	for k, s := range t.disp.Orphans() {
		out[k] = s
	}
	return out
}

// rebuildShardDemands re-derives every shard's scoped demand from the
// installed demand and the current tree→shard map, then retargets the
// collectors. Each alias-folded pair is demanded by exactly one
// collector (first-owner-wins across alias replicas; aggregated
// attributes pin all their participants to one shard), which keeps the
// merged DemandedPairs equal to the single-collector count.
func (m *Machine) rebuildShardDemands() {
	t := m.tier
	demands := make([]*task.Demand, t.n)
	for s := range demands {
		demands[s] = task.NewDemand()
	}
	resid := task.NewDemand()
	t.pairOwner = make(map[model.Pair]int)
	attrOwner := make(map[model.AttrID]int)
	// treeShard caches the raw attribute → owning-shard resolution:
	// TreeFor scans the forest, and every node demanding the same
	// attribute resolves to the same tree.
	treeShard := make(map[model.AttrID]int)
	for _, p := range m.cfg.Demand.Pairs() {
		orig := m.cfg.Resolve(p.Attr)
		fold := model.Pair{Node: p.Node, Attr: orig}
		owner, decided := t.pairOwner[fold]
		if !decided {
			if ao, pinned := attrOwner[orig]; pinned {
				owner = ao
			} else {
				owner, decided = treeShard[p.Attr]
				if !decided {
					owner = -1
					if tr := m.cfg.Forest.TreeFor(p.Attr); tr != nil {
						if s, ok := t.owner[tr.Attrs.Key()]; ok {
							owner = s
						}
					}
					treeShard[p.Attr] = owner
				}
				if m.cfg.Spec.KindOf(orig) != agg.Holistic {
					// Aggregated attribute: every participant pair must land
					// in the same collector so the aggregate is demanded (and
					// scored against ground truth) exactly once.
					attrOwner[orig] = owner
				}
			}
			t.pairOwner[fold] = owner
		}
		w := m.cfg.Demand.Weight(p.Node, p.Attr)
		if owner < 0 {
			resid.Set(p.Node, p.Attr, w)
		} else {
			demands[owner].Set(p.Node, p.Attr, w)
		}
	}

	if t.cfgs == nil {
		t.cfgs = make([]Config, t.n)
	}
	for s := 0; s < t.n; s++ {
		cfg := m.cfg
		cfg.Demand = demands[s]
		t.cfgs[s] = cfg
		if s < len(t.colls) {
			t.colls[s].retarget(cfg)
		} else {
			t.colls = append(t.colls, newCollector(cfg))
		}
	}
	residCfg := m.cfg
	residCfg.Demand = resid
	if t.resid == nil {
		t.resid = newCollector(residCfg)
	} else {
		t.resid.retarget(residCfg)
	}
}

// recomputeDownKeys refreshes the tree→down map leaves consult when
// deciding to buffer: a tree is down while its accountable shard is
// down (including orphans still booked to a dead shard).
func (m *Machine) recomputeDownKeys() {
	t := m.tier
	for k := range m.cfg.downKeys {
		if _, ok := t.owner[k]; !ok {
			delete(m.cfg.downKeys, k)
		}
	}
	for k, s := range t.owner {
		m.cfg.downKeys[k] = t.down[s]
	}
}

// stepShardChaos applies the shard crash/flap schedules at the start of
// a round: ShardCrashAt latches an outage that only an explicit
// ResumeShard clears, ShardWindows flap shards down for their windows
// and cold-resume them (views wiped, journal not consulted) when a
// window closes.
func (m *Machine) stepShardChaos(round int) {
	t := m.tier
	for s := 0; s < t.n; s++ {
		windowDown := m.cfg.Chaos.ShardWindowDown(s, round)
		if !t.down[s] && (m.cfg.Chaos.ShardCrash(s, round) || windowDown) {
			t.down[s] = true
			if m.cfg.Chaos.ShardCrash(s, round) {
				t.latched[s] = true
			}
			m.recomputeDownKeys()
			if m.cfg.Trace != nil {
				m.cfg.Trace.Record(trace.Event{Round: round, Kind: trace.ShardDead, Node: model.NodeID(s)})
			}
			continue
		}
		if t.down[s] && !t.latched[s] && !windowDown {
			m.resumeShardAt(s, ResumeState{}, round)
		}
	}
}

// shardAbsorb routes the round's central mailbox to the owning shard
// collectors. Frames for a down shard's trees are lost (leaves with a
// LeafBuffer park them instead of sending); frames for trees no shard
// owns fall through to the residual collector.
func (m *Machine) shardAbsorb(msgs []transport.Message, round int) {
	t := m.tier
	for s := range t.batches {
		t.batches[s] = t.batches[s][:0]
	}
	var residBatch []transport.Message
	for _, msg := range msgs {
		if s, ok := t.owner[msg.TreeKey]; ok {
			if t.down[s] {
				m.extraDrops++
				m.extraMarkersLost += len(msg.Suppressed)
				continue
			}
			t.batches[s] = append(t.batches[s], msg)
			continue
		}
		residBatch = append(residBatch, msg)
	}
	for s, c := range t.colls {
		if !t.down[s] && len(t.batches[s]) > 0 {
			c.absorb(t.batches[s], round)
		}
	}
	t.resid.absorb(residBatch, round)
}

// shardScore scores every collector for the round — down shards score
// too, accruing the frozen-view error a crashed collector earns — and
// appends the merged entry to the session-wide error series. Live
// shards advance their staleness watermark.
func (m *Machine) shardScore(round int) {
	t := m.tier
	var errSum float64
	var cnt int
	for s, c := range t.colls {
		e, n := c.score(round)
		errSum += e
		cnt += n
		if !t.down[s] {
			t.watermark[s] = round
		}
	}
	e, n := t.resid.score(round)
	errSum += e
	cnt += n
	if cnt > 0 {
		t.errSeries = append(t.errSeries, 100*errSum/float64(cnt))
	} else {
		t.errSeries = append(t.errSeries, 0)
	}
}

// shardDispatch runs the dispatcher's round: live shards heartbeat,
// deaths orphan their trees, and a live leaseholder re-homes orphans
// and rebalances onto recovered shards. Assignment changes re-scope the
// shard demands and open a new epoch for every moved tree, fencing
// frames composed for the old owner.
func (m *Machine) shardDispatch(round int) {
	t := m.tier
	for s := 0; s < t.n; s++ {
		if !t.down[s] {
			t.disp.Beat(s, round)
		}
	}
	acts := t.disp.Advance(round)
	if m.cfg.Trace != nil {
		movedFrom := make(map[string]int, len(acts.Moves))
		for _, mv := range acts.Moves {
			movedFrom[mv.Key] = mv.From
		}
		orphanSrc := t.disp.Orphans()
		for _, k := range acts.Orphaned {
			src, ok := orphanSrc[k]
			if !ok {
				src = movedFrom[k]
			}
			m.cfg.Trace.Record(trace.Event{Round: round, Kind: trace.Orphan, Node: model.NodeID(src), TreeKey: k})
		}
		if acts.LeaderChanged {
			m.cfg.Trace.Record(trace.Event{Round: round, Kind: trace.Leader, Node: model.NodeID(acts.Leader)})
		}
	}
	if len(acts.Orphaned) == 0 && len(acts.Moves) == 0 && len(acts.Dead) == 0 && len(acts.Recovered) == 0 {
		return
	}
	for _, mv := range acts.Moves {
		if !t.disp.Alive(mv.From) {
			// Moves out of a dead shard are orphan re-dispatches; moves
			// between live shards are rebalances.
			t.redispatched++
		}
		if m.cfg.Trace != nil {
			m.cfg.Trace.Record(trace.Event{
				Round: round, Kind: trace.Redispatch,
				Node: model.NodeID(mv.From), Peer: model.NodeID(mv.To), TreeKey: mv.Key,
			})
		}
	}
	t.owner = t.ownerMap()
	if len(acts.Moves) > 0 {
		// Every moved tree opens a new epoch: frames composed for the old
		// owner (or buffered during the outage and not yet re-stamped)
		// cannot leak into the new owner's views.
		m.cfg.epoch++
		for _, mv := range acts.Moves {
			m.cfg.keyEpochs[mv.Key] = m.cfg.epoch
		}
	}
	m.recomputeDownKeys()
	m.rebuildShardDemands()
}

// resumeShardAt is the shared resume path: the shard rejoins with wiped
// views (re-seeded from rs.Repo when a journal recovery supplies one),
// its trees open a fresh epoch so pre-outage frames fence, and the
// dispatcher sees its next heartbeat.
func (m *Machine) resumeShardAt(s int, rs ResumeState, round int) {
	t := m.tier
	if rs.Epoch > m.cfg.epoch {
		m.cfg.epoch = rs.Epoch
	}
	m.cfg.epoch++
	t.down[s] = false
	t.latched[s] = false
	for k, o := range t.owner {
		if o == s {
			m.cfg.keyEpochs[k] = m.cfg.epoch
		}
	}
	m.recomputeDownKeys()
	t.cfgs[s].epoch = m.cfg.epoch
	t.colls[s].recover(t.cfgs[s], rs.Repo, round)
	t.colls[s].restoreModels(rs.Models)
	if m.cfg.Trace != nil {
		m.cfg.Trace.Record(trace.Event{Round: round, Kind: trace.ShardResume, Node: model.NodeID(s)})
	}
}

// ResumeShard restarts a crashed collector shard from journaled state,
// the per-shard analogue of ResumeCollector: views are wiped and
// re-seeded from the recovered repository, and the shard's trees open
// an epoch past everything the dead shard could have been sent. The
// dispatcher notices the shard's heartbeat next round and rebalances
// trees back onto it. Before the first round has run the shard need not
// be down — a cold process restart seeds every shard's views from its
// journal this way.
func (m *Machine) ResumeShard(s int, rs ResumeState) error {
	if m.tier == nil {
		return fmt.Errorf("cluster: ResumeShard on a single-collector session")
	}
	if s < 0 || s >= m.tier.n {
		return fmt.Errorf("cluster: ResumeShard: shard %d out of [0,%d)", s, m.tier.n)
	}
	if !m.tier.down[s] && m.round > 0 {
		return fmt.Errorf("cluster: ResumeShard: shard %d is not down", s)
	}
	m.resumeShardAt(s, rs, m.round)
	return nil
}

// merged folds the per-shard partials (and the residual collector) into
// the single session Result.
func (t *shardTier) merged() Result {
	all := make([]*collector, 0, t.n+1)
	all = append(all, t.colls...)
	all = append(all, t.resid)
	var res Result
	var errSum, staleSum float64
	var errCount, staleCount, delivered, expected int
	for _, c := range all {
		res.DemandedPairs += len(c.holisticPairs) + len(c.aggAttrs)
		res.CoveredPairs += c.covered()
		res.ValuesDelivered += c.valuesDelivered
		res.MessagesDropped += c.centralDrops
		res.StaleEpochFrames += c.staleFrames
		res.ValuesImputed += c.valuesImputed
		res.ModelSyncs += c.modelSyncs
		res.MarkersLost += c.markersLost
		if c.imputeBandMax > res.ImputeBandMax {
			res.ImputeBandMax = c.imputeBandMax
		}
		delivered += c.deliveredEffective()
		expected += c.expected
		errSum += c.errSum
		errCount += c.errCount
		staleSum += c.staleSum
		staleCount += c.staleCount
	}
	if expected > 0 {
		res.PercentCollected = 100 * float64(delivered) / float64(expected)
		if res.PercentCollected > 100 {
			res.PercentCollected = 100
		}
	}
	if errCount > 0 {
		res.AvgPercentError = 100 * errSum / float64(errCount)
	}
	if staleCount > 0 {
		res.AvgStaleness = staleSum / float64(staleCount)
	}
	res.ErrorSeries = append([]float64(nil), t.errSeries...)
	res.Shards = t.n
	for _, d := range t.down {
		if d {
			res.ShardsDown++
		}
	}
	res.OrphanedTrees = t.disp.Orphaned()
	res.TreesRedispatched = t.redispatched
	res.LeaderElections = t.disp.Elections()
	res.ShardWatermarks = append([]int(nil), t.watermark...)
	return res
}

// ShardCount returns the number of collector shards (0 for a
// single-collector session).
func (m *Machine) ShardCount() int {
	if m.tier == nil {
		return 0
	}
	return m.tier.n
}

// ShardAssignment snapshots the tree→shard accountability map (orphans
// included, booked to the dead shard they came from). Nil for
// single-collector sessions.
func (m *Machine) ShardAssignment() map[string]int {
	if m.tier == nil {
		return nil
	}
	out := make(map[string]int, len(m.tier.owner))
	for k, s := range m.tier.owner {
		out[k] = s
	}
	return out
}

// ShardDown reports whether shard s is currently down.
func (m *Machine) ShardDown(s int) bool {
	return m.tier != nil && s >= 0 && s < m.tier.n && m.tier.down[s]
}

// ShardsDownList lists the currently down shards, ascending.
func (m *Machine) ShardsDownList() []int {
	if m.tier == nil {
		return nil
	}
	var out []int
	for s, d := range m.tier.down {
		if d {
			out = append(out, s)
		}
	}
	return out
}

// PendingOrphans lists tree keys awaiting re-dispatch, sorted.
func (m *Machine) PendingOrphans() []string {
	if m.tier == nil {
		return nil
	}
	return m.tier.disp.Pending()
}

// ShardMoves returns every re-homing the dispatcher decided so far.
func (m *Machine) ShardMoves() []shard.Move {
	if m.tier == nil {
		return nil
	}
	return m.tier.disp.Moves()
}

// ShardLeader returns the dispatcher's current leaseholder (-1 for
// single-collector sessions).
func (m *Machine) ShardLeader() int {
	if m.tier == nil {
		return -1
	}
	return m.tier.disp.Leader()
}

// ShardOf returns the shard collecting the given alias-folded pair
// (-1 = the residual collector, or a single-collector session).
func (m *Machine) ShardOf(p model.Pair) int {
	if m.tier == nil {
		return -1
	}
	if s, ok := m.tier.pairOwner[p]; ok {
		return s
	}
	return -1
}

// ShardResults returns the per-shard partial results, one per shard
// plus the residual collector's partial last — the union verify checks
// against the merged Result. Nil for single-collector sessions.
func (m *Machine) ShardResults() []Result {
	if m.tier == nil {
		return nil
	}
	out := make([]Result, 0, m.tier.n+1)
	for _, c := range m.tier.colls {
		out = append(out, c.result())
	}
	out = append(out, m.tier.resid.result())
	return out
}
