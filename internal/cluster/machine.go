package cluster

import (
	"fmt"
	"sync"

	"remo/internal/chaos"
	"remo/internal/detect"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/predict"
	"remo/internal/store"
	"remo/internal/task"
	"remo/internal/trace"
	"remo/internal/transport"
)

// delayedMsg is a chaos-delayed message waiting for its due round.
type delayedMsg struct {
	due int
	msg transport.Message
}

// Machine is a steppable emulated deployment: the paper's system in
// motion. Unlike Run, which executes a fixed number of rounds against a
// fixed topology, a Machine runs round by round and accepts topology
// swaps between rounds — the runtime half of REMO's adaptive planning
// (§4): the planner produces new forests as tasks change, and the
// machine rewires the overlay while values keep flowing.
//
// When cfg.Detect is set the machine also runs the failure-detection
// half of the self-healing loop: every live node emits a cost-exempt
// heartbeat per round, the collector feeds all evidence of life to a
// detect.Detector, and verdicts (deaths and recoveries) accumulate for
// the monitor to consume via TakeVerdicts.
type Machine struct {
	cfg    Config
	tr     transport.Transport
	ownTr  bool
	states []*nodeState
	// coll is the single central collector; nil when the session runs a
	// sharded collection tier instead.
	coll *collector
	// tier is the sharded collection tier (cfg.Shards > 1); nil for the
	// classic single-collector deployment.
	tier *shardTier
	// eng is the persistent worker pool driving the round phases; nil
	// selects the legacy goroutine-per-node engine (cfg.Workers < 0).
	eng    *engine
	round  int
	closed bool
	// extraSent/extraDrops preserve traffic counters of nodes dropped by
	// a topology swap (and count delayed messages lost at injection);
	// the remaining extras preserve the fencing and buffering counters
	// of such nodes the same way.
	extraSent, extraDrops                            int
	extraStale, extraBuffered, extraShed, extraRedel int
	// Suppression counters of pruned nodes, plus markers lost outside
	// any node (collector-down discards, failed delayed injections).
	extraObserved, extraSuppressed, extraMarkersLost int

	// collectorDown is latched when the chaos schedule crashes the
	// central collector; cleared by ResumeCollector.
	collectorDown bool

	// det is the failure detector (nil when detection is off).
	det *detect.Detector
	// beatNodes is every system node, cached for heartbeat emission —
	// including nodes pruned out of the forest, so recoveries are seen.
	beatNodes []model.NodeID
	// beatBuf backs each round's heartbeat payloads, one slot per node,
	// rewritten every round: beats are absorbed at the round barrier, so
	// the next round's overwrite never races a live message.
	beatBuf []transport.Beat
	// verdicts accumulates detector output between TakeVerdicts calls.
	verdicts []detect.Verdict

	// delayMu guards delayed, which node goroutines append to via the
	// config's delaySink during the send phase.
	delayMu sync.Mutex
	delayed []delayedMsg
}

// NewMachine validates the configuration and prepares a deployment at
// round 0. Rounds in cfg is ignored for stepping but bounds the
// delivered-observation bitmaps; it defaults to a generous horizon.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Sys == nil || cfg.Forest == nil || cfg.Demand == nil {
		return nil, ErrNoForest
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1 << 16
	}
	if cfg.Source == nil {
		cfg.Source = BurstyWalk{}
	}
	if cfg.Resolve == nil {
		cfg.Resolve = func(a model.AttrID) model.AttrID { return a }
	}
	cfg.Chaos = normalizeChaos(cfg)
	// The session starts at epoch 1 so a zero-valued frame (or one from
	// a pre-epoch wire peer) is always older than any installed plan.
	cfg.epoch = 1
	m := &Machine{cfg: cfg, tr: cfg.Transport}
	m.cfg.delaySink = func(due int, msg transport.Message) {
		// Delayed messages outlive the round barrier, so they cannot
		// borrow the sender's reused compose buffer — clone the payload.
		msg.Values = append([]transport.Value(nil), msg.Values...)
		if len(msg.Suppressed) > 0 {
			msg.Suppressed = append([]transport.Supp(nil), msg.Suppressed...)
		}
		if len(msg.Syncs) > 0 {
			msg.Syncs = append([]transport.Supp(nil), msg.Syncs...)
		}
		m.delayMu.Lock()
		m.delayed = append(m.delayed, delayedMsg{due: due, msg: msg})
		m.delayMu.Unlock()
	}
	if cfg.Workers >= 0 {
		m.eng = newEngine(resolveWorkers(cfg.Workers))
	}
	if m.tr == nil {
		m.tr = transport.NewMemory(cfg.Sys.NodeIDs())
		m.ownTr = true
	}
	m.states = buildStates(m.cfg)
	if cfg.Shards > 1 {
		m.initShardTier()
	} else {
		m.coll = newCollector(m.cfg)
	}
	if cfg.Detect != nil {
		m.det = detect.New(*cfg.Detect)
		m.beatNodes = cfg.Sys.NodeIDs()
		m.det.Watch(m.watchSet(), 0)
	}
	return m, nil
}

// normalizeChaos folds the legacy FailAt/DropEvery knobs into one chaos
// config so the emulation phases consult a single fault schedule.
func normalizeChaos(cfg Config) *chaos.Config {
	c := cfg.Chaos
	if len(cfg.FailAt) == 0 && cfg.DropEvery == 0 {
		return c
	}
	merged := chaos.Config{}
	if c != nil {
		merged = *c
	}
	if cfg.DropEvery > 0 && merged.DropEvery == 0 {
		merged.DropEvery = cfg.DropEvery
	}
	if len(cfg.FailAt) > 0 {
		crash := make(map[model.NodeID]int, len(cfg.FailAt)+len(merged.CrashAt))
		for n, r := range merged.CrashAt {
			crash[n] = r
		}
		for n, r := range cfg.FailAt {
			if _, dup := crash[n]; !dup {
				crash[n] = r
			}
		}
		merged.CrashAt = crash
	}
	return &merged
}

// watchSet is the failure detector's subject list: every node with
// demanded pairs or a place in the forest.
func (m *Machine) watchSet() []model.NodeID {
	seen := make(map[model.NodeID]struct{})
	for _, p := range m.cfg.Demand.Pairs() {
		seen[p.Node] = struct{}{}
	}
	for _, t := range m.cfg.Forest.Trees {
		for _, n := range t.Members() {
			seen[n] = struct{}{}
		}
	}
	out := make([]model.NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	return out
}

// Round returns the next round to execute.
func (m *Machine) Round() int { return m.round }

// Step executes one collection round.
func (m *Machine) Step() error {
	if m.closed {
		return fmt.Errorf("cluster: machine closed")
	}
	round := m.round
	m.round++

	if m.tier != nil {
		// Sharded tier: shard-level crash/flap schedules replace the
		// whole-collector ones (CollectorCrashAt/Prob are ignored — the
		// root aggregation tier itself never dies in this model).
		m.stepShardChaos(round)
	} else if !m.collectorDown && m.cfg.Chaos.CollectorCrash(round) {
		// Latch the outage: the collector stays down until the session
		// restarts it via ResumeCollector (Monitor.Resume).
		m.collectorDown = true
		m.cfg.collectorDown = true
		if m.cfg.Trace != nil {
			m.cfg.Trace.Record(trace.Event{Round: round, Kind: trace.CollectorDead, Node: model.Central})
		}
	}

	if m.eng != nil {
		m.eng.forEach(m.states, func(st *nodeState) { st.receivePhase(m.cfg, m.tr, round) })
		m.eng.forEach(m.states, func(st *nodeState) { st.sendPhase(m.cfg, m.tr, round) })
	} else {
		// Legacy engine: one goroutine per node per phase.
		var wg sync.WaitGroup
		for _, st := range m.states {
			wg.Add(1)
			go func(st *nodeState) {
				defer wg.Done()
				st.receivePhase(m.cfg, m.tr, round)
			}(st)
		}
		wg.Wait()
		for _, st := range m.states {
			wg.Add(1)
			go func(st *nodeState) {
				defer wg.Done()
				st.sendPhase(m.cfg, m.tr, round)
			}(st)
		}
		wg.Wait()
	}
	m.injectDelayed(round)
	m.emitBeats(round)
	if err := m.tr.Flush(); err != nil {
		return fmt.Errorf("cluster: round %d: %w", round, err)
	}
	msgs := m.tr.Drain(model.Central)
	if m.tier != nil {
		// Root aggregation tier: node-level failure detection is hosted
		// here (it never dies with a shard), frames route to their owning
		// shard's collector, and the dispatcher closes the round.
		if m.det != nil {
			msgs = m.feedDetector(msgs, round)
		}
		m.shardAbsorb(msgs, round)
		m.shardScore(round)
		if m.det != nil {
			m.advanceDetector(round)
		}
		m.shardDispatch(round)
		return nil
	}
	if m.collectorDown {
		// The dead collector hears nothing: whatever reached its mailbox
		// (delayed injections, unbuffered root sends) is lost, and the
		// failure detector — a collector-side component — is frozen with
		// it. Scoring still runs: ground truth keeps moving while the
		// views stand still, which is exactly the error a crashed
		// collector accrues.
		m.extraDrops += len(msgs)
		for _, msg := range msgs {
			m.extraMarkersLost += len(msg.Suppressed)
		}
		m.coll.score(round)
		return nil
	}
	if m.det != nil {
		msgs = m.feedDetector(msgs, round)
	}
	m.coll.absorb(msgs, round)
	m.coll.score(round)
	if m.det != nil {
		m.advanceDetector(round)
	}
	return nil
}

// injectDelayed releases chaos-delayed messages whose due round arrived.
// Injection happens after the send phase and before Flush, so a message
// delayed d rounds arrives exactly d rounds late on both node-to-node
// links (drained next round) and root-to-central links (drained this
// round).
func (m *Machine) injectDelayed(round int) {
	m.delayMu.Lock()
	var due []transport.Message
	keep := m.delayed[:0]
	for _, d := range m.delayed {
		if d.due <= round {
			due = append(due, d.msg)
		} else {
			keep = append(keep, d)
		}
	}
	m.delayed = keep
	m.delayMu.Unlock()
	for _, msg := range due {
		if err := m.tr.Send(msg); err != nil {
			m.extraDrops++
			m.extraMarkersLost += len(msg.Suppressed)
		}
	}
}

// emitBeats sends one cost-exempt heartbeat per live system node
// straight to the collector. Beats bypass the trees, so an interior-node
// crash cannot silence a live subtree; they also come from nodes pruned
// out of the forest, so a recovered node is noticed. Chaos link loss
// applies: a beat can be dropped like any message, which the suspicion
// window absorbs.
func (m *Machine) emitBeats(round int) {
	if m.det == nil || m.collectorDown {
		return
	}
	if len(m.beatBuf) < len(m.beatNodes) {
		m.beatBuf = make([]transport.Beat, len(m.beatNodes))
	}
	for i, n := range m.beatNodes {
		if m.cfg.Chaos.Crashed(n, round) {
			continue
		}
		if m.cfg.Chaos.Drop(n, model.Central, round, int(n)) {
			continue
		}
		m.beatBuf[i] = transport.Beat{Node: n, Round: round}
		err := m.tr.Send(transport.Message{
			From:  n,
			To:    model.Central,
			Epoch: m.cfg.epoch,
			Beats: m.beatBuf[i : i+1 : i+1],
		})
		if err != nil {
			m.extraDrops++
		}
	}
}

// feedDetector routes evidence of life to the failure detector and
// filters heartbeat-only messages out of the collector's inbox so they
// stay exempt from the capacity cost model.
func (m *Machine) feedDetector(msgs []transport.Message, round int) []transport.Message {
	kept := msgs[:0]
	for _, msg := range msgs {
		for _, b := range msg.Beats {
			m.det.Beat(b.Node, b.Round)
		}
		for _, v := range msg.Values {
			m.det.Beat(v.Node, v.Round)
		}
		for _, e := range msg.Suppressed {
			// A suppression marker is evidence of life: only the origin
			// node's live leaf could have generated it this round.
			m.det.Beat(e.Node, e.Round)
		}
		if len(msg.Values) > 0 || len(msg.Beats) == 0 {
			kept = append(kept, msg)
		}
	}
	_ = round
	return kept
}

// advanceDetector collects the round's verdicts, traces them and queues
// them for TakeVerdicts.
func (m *Machine) advanceDetector(round int) {
	vs := m.det.Advance(round)
	if len(vs) == 0 {
		return
	}
	m.verdicts = append(m.verdicts, vs...)
	if m.cfg.Trace == nil {
		return
	}
	for _, v := range vs {
		kind := trace.Detect
		if v.Recovered {
			kind = trace.NodeRecover
		}
		m.cfg.Trace.Record(trace.Event{Round: round, Kind: kind, Node: v.Node})
	}
}

// TakeVerdicts returns the failure-detector verdicts accumulated since
// the last call, oldest first, and clears the queue. It returns nil when
// detection is off or nothing happened.
func (m *Machine) TakeVerdicts() []detect.Verdict {
	out := m.verdicts
	m.verdicts = nil
	return out
}

// Detector exposes the failure detector (nil when detection is off) for
// callers that need liveness reads, e.g. Alive checks during repair.
func (m *Machine) Detector() *detect.Detector { return m.det }

// StepN executes n rounds.
func (m *Machine) StepN(n int) error {
	for i := 0; i < n; i++ {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Install swaps in a new topology and demand between rounds, modeling
// the overlay reconfiguration the adaptation planner ordered. Nodes
// keep the relay buffers of trees they remain members of; buffers of
// reshaped trees are dropped (their in-flight values are lost, which is
// the transient cost of adaptation). The collector keeps its stale
// views — exactly what a real collector would do — but re-targets its
// coverage accounting to the new demand.
func (m *Machine) Install(forest *plan.Forest, d *task.Demand) {
	m.InstallDiff(forest, d)
}

// InstallDiff is Install returning the tree-level plan diff against the
// outgoing topology. Trees kept byte-for-byte (identical fingerprint)
// keep their members' relay state across the swap and need no
// re-announcement; only rebuilt trees cost reconfiguration. Per-tree
// outcomes are recorded on the trace when one is attached.
func (m *Machine) InstallDiff(forest *plan.Forest, d *task.Demand) plan.Diff {
	diff := plan.DiffForests(m.cfg.Forest, forest)
	m.cfg.Forest = forest
	m.cfg.Demand = d
	// Every install opens a new plan epoch; with FenceEpochs on, frames
	// still in flight for the previous topology are rejected on arrival.
	m.cfg.epoch++
	m.rebuildStates()
	if m.tier != nil {
		// Re-place the new forest: persisting trees stick to their live
		// owners, fresh trees spread onto the least-loaded shards, retired
		// trees leave the map. Install semantics match the single path:
		// every tree opens the new epoch, so the whole in-flight tail of
		// the swap is fenced.
		m.tier.disp.Retarget(shardLoads(m.cfg), m.round)
		m.tier.owner = m.tier.ownerMap()
		for k := range m.cfg.keyEpochs {
			if _, ok := m.tier.owner[k]; !ok {
				delete(m.cfg.keyEpochs, k)
			}
		}
		for k := range m.tier.owner {
			m.cfg.keyEpochs[k] = m.cfg.epoch
		}
		m.recomputeDownKeys()
		m.rebuildShardDemands()
	} else {
		m.coll.retarget(m.cfg)
	}
	if m.det != nil {
		m.det.Watch(m.watchSet(), m.round)
	}
	if m.cfg.Trace != nil {
		for _, k := range diff.Kept {
			m.cfg.Trace.Record(trace.Event{Round: m.round, Kind: trace.TreeKept, Node: model.Central, TreeKey: k})
		}
		for _, k := range diff.Rebuilt {
			m.cfg.Trace.Record(trace.Event{Round: m.round, Kind: trace.TreeRebuilt, Node: model.Central, TreeKey: k})
		}
		for _, k := range diff.Dropped {
			m.cfg.Trace.Record(trace.Event{Round: m.round, Kind: trace.TreeDropped, Node: model.Central, TreeKey: k})
		}
	}
	return diff
}

// rebuildStates re-derives per-node state from the current config,
// carrying counters, surviving relay buffers and outgoing buffers over
// from the previous topology.
func (m *Machine) rebuildStates() {
	old := make(map[model.NodeID]*nodeState, len(m.states))
	for _, st := range m.states {
		old[st.id] = st
	}
	m.states = buildStates(m.cfg)

	// Preserve traffic counters and surviving relay buffers.
	for _, st := range m.states {
		prev, ok := old[st.id]
		if !ok {
			continue
		}
		st.sent = prev.sent
		st.drops = prev.drops
		st.stale = prev.stale
		st.buffered = prev.buffered
		st.shed = prev.shed
		st.redelivered = prev.redelivered
		st.outbox = prev.outbox
		st.observed = prev.observed
		st.suppressed = prev.suppressed
		st.markersLost = prev.markersLost
		// Model replicas survive the swap, but every plan install opens a
		// new epoch at the collector — force a sync so both ends re-lock
		// under the new plan before any further imputation.
		st.pred = prev.pred
		for _, lp := range st.pred {
			lp.needSync = true
		}
		for _, mb := range st.memberships {
			if buf, has := prev.relay[mb.key]; has {
				st.relay[mb.key] = buf
			}
			if buf, has := prev.relaySupp[mb.key]; has {
				if st.relaySupp == nil {
					st.relaySupp = make(map[string][]transport.Supp)
				}
				st.relaySupp[mb.key] = buf
			}
			if buf, has := prev.relaySync[mb.key]; has {
				if st.relaySync == nil {
					st.relaySync = make(map[string][]transport.Supp)
				}
				st.relaySync[mb.key] = buf
			}
		}
		// Markers buffered for trees this node no longer relays die with
		// the swap, like the relay values themselves.
		for k, buf := range prev.relaySupp {
			if _, kept := st.relaySupp[k]; !kept {
				st.markersLost += len(buf)
			}
		}
		delete(old, st.id)
	}
	for _, gone := range old {
		m.extraSent += gone.sent
		m.extraDrops += gone.drops
		m.extraStale += gone.stale
		m.extraBuffered += gone.buffered
		m.extraRedel += gone.redelivered
		// A node pruned from the plan takes its parked frames with it.
		m.extraShed += gone.shed + len(gone.outbox)
		m.extraObserved += gone.observed
		m.extraSuppressed += gone.suppressed
		m.extraMarkersLost += gone.markersLost
		for _, buf := range gone.relaySupp {
			m.extraMarkersLost += len(buf)
		}
	}
}

// Result summarizes everything observed so far.
func (m *Machine) Result() Result {
	var res Result
	if m.tier != nil {
		res = m.tier.merged()
	} else {
		res = m.coll.result()
		res.StaleEpochFrames = m.coll.staleFrames
	}
	res.Rounds = m.round
	res.MessagesSent += m.extraSent
	res.MessagesDropped += m.extraDrops
	res.StaleEpochFrames += m.extraStale
	res.FramesBuffered = m.extraBuffered
	res.FramesShed = m.extraShed
	res.FramesRedelivered = m.extraRedel
	res.ValuesObserved += m.extraObserved
	res.ValuesSuppressed += m.extraSuppressed
	res.MarkersLost += m.extraMarkersLost
	for _, st := range m.states {
		res.MessagesSent += st.sent
		res.MessagesDropped += st.drops
		res.StaleEpochFrames += st.stale
		res.FramesBuffered += st.buffered
		res.FramesShed += st.shed
		res.FramesRedelivered += st.redelivered
		res.ValuesObserved += st.observed
		res.ValuesSuppressed += st.suppressed
		res.MarkersLost += st.markersLost
	}
	return res
}

// PredictSnapshots captures every materialized collector-side model
// replica for journal checkpoints (nil when prediction is off or no
// replica exists yet). Sharded tiers merge across all shard collectors
// — pair ownership is disjoint, so the union is well-defined.
func (m *Machine) PredictSnapshots() map[model.Pair]predict.Snapshot {
	if m.tier != nil {
		var out map[model.Pair]predict.Snapshot
		for _, c := range m.tier.colls {
			out = c.predSnapshots(out)
		}
		return m.tier.resid.predSnapshots(out)
	}
	if m.coll == nil {
		return nil
	}
	return m.coll.predSnapshots(nil)
}

// Epoch returns the current plan epoch (1 at session start, bumped on
// every Install and on collector resume).
func (m *Machine) Epoch() uint32 { return m.cfg.epoch }

// CollectorDown reports whether the central collector is currently
// crashed per the chaos schedule.
func (m *Machine) CollectorDown() bool { return m.collectorDown }

// BufferedFrames returns the number of frames currently parked in node
// outgoing buffers across the deployment.
func (m *Machine) BufferedFrames() int {
	n := 0
	for _, st := range m.states {
		n += len(st.outbox)
	}
	return n
}

// ResumeState carries the durable collector state recovered from a
// journal into a running (or freshly built) machine.
type ResumeState struct {
	// Epoch is the recovered session's last installed plan epoch. The
	// machine adopts max(current, Epoch)+1, so every frame composed
	// before the crash — whatever epoch it carried — is older than the
	// resumed session's and gets fenced.
	Epoch uint32
	// Repo seeds the recovered collector's views with the newest
	// journaled sample of every demanded pair (nil skips seeding).
	Repo *store.Store
	// Dead restores the failure detector's declared-dead set as
	// node → declaration round. Use -1 for declaration rounds when the
	// resumed session restarts its round clock at zero.
	Dead map[model.NodeID]int
	// Models restores the checkpointed model replicas. On an in-process
	// resume they are installed gated (imputation refused until the next
	// sync — the leaves advanced their replicas during the outage); a
	// cold resume instead seeds both ends live via Config.SeedModels.
	Models map[model.Pair]predict.Snapshot
}

// ResumeCollector restarts a crashed central collector from journaled
// state: the in-memory views are wiped and re-seeded from the recovered
// repository (a restarted process knows only what it persisted), the
// plan epoch advances past everything the dead collector could have
// been sent, and the failure detector restarts with the recovered
// dead set and a fresh grace window. Node-side state — relay buffers,
// outgoing buffers, traffic counters — is untouched: the leaves never
// died.
func (m *Machine) ResumeCollector(rs ResumeState) {
	if m.tier != nil {
		// Sharded sessions resume shard by shard (ResumeShard); the root
		// aggregation tier never dies.
		return
	}
	if rs.Epoch > m.cfg.epoch {
		m.cfg.epoch = rs.Epoch
	}
	m.cfg.epoch++
	m.collectorDown = false
	m.cfg.collectorDown = false
	m.coll.recover(m.cfg, rs.Repo, m.round)
	if m.round == 0 && len(m.cfg.SeedModels) > 0 {
		// Cold resume: recover wiped the replicas newCollector seeded;
		// re-arm them live — the leaves restart from the same snapshots.
		m.coll.seedModels(m.cfg.SeedModels)
	} else {
		m.coll.restoreModels(rs.Models)
	}
	if m.cfg.Detect != nil {
		m.det = detect.New(*m.cfg.Detect)
		for n, at := range rs.Dead {
			m.det.MarkDead(n, at)
		}
		m.beatNodes = m.cfg.Sys.NodeIDs()
		m.det.Watch(m.watchSet(), m.round)
		m.verdicts = nil
	}
	if m.cfg.Trace != nil {
		m.cfg.Trace.Record(trace.Event{Round: m.round, Kind: trace.CollectorResume, Node: model.Central})
	}
}

// Close releases the machine's transport (when it owns it).
func (m *Machine) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	if m.eng != nil {
		m.eng.close()
	}
	if m.ownTr {
		return m.tr.Close()
	}
	return nil
}
