package cluster

import (
	"fmt"
	"sync"

	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
	"remo/internal/transport"
)

// Machine is a steppable emulated deployment: the paper's system in
// motion. Unlike Run, which executes a fixed number of rounds against a
// fixed topology, a Machine runs round by round and accepts topology
// swaps between rounds — the runtime half of REMO's adaptive planning
// (§4): the planner produces new forests as tasks change, and the
// machine rewires the overlay while values keep flowing.
type Machine struct {
	cfg    Config
	tr     transport.Transport
	ownTr  bool
	states []*nodeState
	coll   *collector
	round  int
	closed bool
	// extraSent/extraDrops preserve traffic counters of nodes dropped by
	// a topology swap.
	extraSent, extraDrops int
}

// NewMachine validates the configuration and prepares a deployment at
// round 0. Rounds in cfg is ignored for stepping but bounds the
// delivered-observation bitmaps; it defaults to a generous horizon.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Sys == nil || cfg.Forest == nil || cfg.Demand == nil {
		return nil, ErrNoForest
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1 << 16
	}
	if cfg.Source == nil {
		cfg.Source = BurstyWalk{}
	}
	if cfg.Resolve == nil {
		cfg.Resolve = func(a model.AttrID) model.AttrID { return a }
	}
	m := &Machine{cfg: cfg, tr: cfg.Transport}
	if m.tr == nil {
		m.tr = transport.NewMemory(cfg.Sys.NodeIDs())
		m.ownTr = true
	}
	m.states = buildStates(m.cfg)
	m.coll = newCollector(m.cfg)
	return m, nil
}

// Round returns the next round to execute.
func (m *Machine) Round() int { return m.round }

// Step executes one collection round.
func (m *Machine) Step() error {
	if m.closed {
		return fmt.Errorf("cluster: machine closed")
	}
	round := m.round
	m.round++

	var wg sync.WaitGroup
	for _, st := range m.states {
		wg.Add(1)
		go func(st *nodeState) {
			defer wg.Done()
			st.receivePhase(m.cfg, m.tr, round)
		}(st)
	}
	wg.Wait()
	for _, st := range m.states {
		wg.Add(1)
		go func(st *nodeState) {
			defer wg.Done()
			st.sendPhase(m.cfg, m.tr, round)
		}(st)
	}
	wg.Wait()
	if err := m.tr.Flush(); err != nil {
		return fmt.Errorf("cluster: round %d: %w", round, err)
	}
	m.coll.absorb(m.tr.Drain(model.Central), round)
	m.coll.score(round)
	return nil
}

// StepN executes n rounds.
func (m *Machine) StepN(n int) error {
	for i := 0; i < n; i++ {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Install swaps in a new topology and demand between rounds, modeling
// the overlay reconfiguration the adaptation planner ordered. Nodes
// keep the relay buffers of trees they remain members of; buffers of
// reshaped trees are dropped (their in-flight values are lost, which is
// the transient cost of adaptation). The collector keeps its stale
// views — exactly what a real collector would do — but re-targets its
// coverage accounting to the new demand.
func (m *Machine) Install(forest *plan.Forest, d *task.Demand) {
	old := make(map[model.NodeID]*nodeState, len(m.states))
	for _, st := range m.states {
		old[st.id] = st
	}
	m.cfg.Forest = forest
	m.cfg.Demand = d
	m.states = buildStates(m.cfg)

	// Preserve traffic counters and surviving relay buffers.
	for _, st := range m.states {
		prev, ok := old[st.id]
		if !ok {
			continue
		}
		st.sent = prev.sent
		st.drops = prev.drops
		for _, mb := range st.memberships {
			if buf, has := prev.relay[mb.key]; has {
				st.relay[mb.key] = buf
			}
		}
		delete(old, st.id)
	}
	for _, gone := range old {
		m.extraSent += gone.sent
		m.extraDrops += gone.drops
	}

	m.coll.retarget(m.cfg)
}

// Result summarizes everything observed so far.
func (m *Machine) Result() Result {
	res := m.coll.result()
	res.Rounds = m.round
	res.MessagesSent += m.extraSent
	res.MessagesDropped += m.extraDrops
	for _, st := range m.states {
		res.MessagesSent += st.sent
		res.MessagesDropped += st.drops
	}
	return res
}

// Close releases the machine's transport (when it owns it).
func (m *Machine) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	if m.ownTr {
		return m.tr.Close()
	}
	return nil
}
