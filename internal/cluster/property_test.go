package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"testing"

	"remo/internal/chaos"
	"remo/internal/core"
	"remo/internal/model"
	"remo/internal/trace"
	"remo/internal/transport"
	"remo/internal/workload"
)

// generatedConfig realizes one property-generated workload plus a
// seed-derived chaos schedule as a cluster config.
func generatedConfig(tb testing.TB, seed int64) (Config, workload.Instance) {
	tb.Helper()
	in, err := workload.Generate(workload.DefaultBounds(), seed)
	if err != nil {
		tb.Fatal(err)
	}
	d, err := in.Demand()
	if err != nil {
		tb.Fatal(err)
	}
	res := core.NewPlanner().Plan(in.Sys, d)

	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	rounds := 8 + rng.Intn(8)
	cc := &chaos.Config{
		DropProb:       rng.Float64() * 0.2,
		DelayProb:      rng.Float64() * 0.2,
		MaxDelayRounds: 1 + rng.Intn(3),
		Seed:           uint64(seed) * 2654435761,
		CrashAt:        map[model.NodeID]int{},
		RecoverAt:      map[model.NodeID]int{},
	}
	var placed []model.NodeID
	for n := range res.Stats.Usage {
		placed = append(placed, n)
	}
	sort.Slice(placed, func(i, j int) bool { return placed[i] < placed[j] })
	rng.Shuffle(len(placed), func(i, j int) { placed[i], placed[j] = placed[j], placed[i] })
	for i := 0; i < len(placed) && i < 2; i++ {
		at := 2 + rng.Intn(rounds-2)
		cc.CrashAt[placed[i]] = at
		if rng.Intn(2) == 0 {
			cc.RecoverAt[placed[i]] = at + 1 + rng.Intn(3)
		}
	}
	return Config{
		Sys: in.Sys, Forest: res.Forest, Demand: d,
		Rounds: rounds, EnforceCapacity: true,
		Source: BurstyWalk{Seed: uint64(seed)},
		Chaos:  cc,
	}, in
}

// TestEngineEquivalenceGenerated re-proves the legacy/worker-pool
// engine equivalence under the property generator instead of the fixed
// seed list in equivalence_test.go: any generated workload with any
// seed-derived chaos schedule must produce bit-identical results.
func TestEngineEquivalenceGenerated(t *testing.T) {
	const instances = 12
	for seed := int64(9000); seed < 9000+instances; seed++ {
		base, in := generatedConfig(t, seed)
		if len(base.Forest.Trees) == 0 {
			continue
		}
		legacy := base
		legacy.Workers = -1
		want, err := Run(legacy)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		for _, workers := range []int{0, 2} {
			fast := base
			fast.Workers = workers
			got, err := Run(fast)
			if err != nil {
				t.Fatalf("%v: %v", in, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: workers=%d diverged from legacy engine:\ngot  %+v\nwant %+v",
					in, workers, got, want)
			}
		}
	}
}

// chaosSchedule runs a config and returns its chaos injection events
// (drops and delays) in canonical order, independent of the engine's
// internal scheduling.
func chaosSchedule(tb testing.TB, cfg Config) []trace.Event {
	tb.Helper()
	rec := trace.NewRecorder(1 << 20)
	rec.Keep(trace.SendDrop, trace.Delayed)
	cfg.Trace = rec
	if _, err := Run(cfg); err != nil {
		tb.Fatal(err)
	}
	evs := rec.Events()
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.TreeKey < b.TreeKey
	})
	return evs
}

// TestChaosDeterminismAcrossTransports proves the chaos package's core
// promise end to end: because every drop/delay decision is a pure
// function of (seed, link, round, sequence), an identical seeded
// schedule injects the identical faults whether messages ride the
// in-process memory transport or real TCP sockets.
func TestChaosDeterminismAcrossTransports(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	for _, seed := range []int64{9100, 9101, 9102} {
		base, in := generatedConfig(t, seed)
		if len(base.Forest.Trees) == 0 || !base.Chaos.Enabled() {
			continue
		}
		mem := chaosSchedule(t, base)

		tr, err := transport.NewTCP(base.Sys.NodeIDs())
		if err != nil {
			t.Fatal(err)
		}
		tcpCfg := base
		tcpCfg.Transport = tr
		tcp := chaosSchedule(t, tcpCfg)
		_ = tr.Close()

		if !reflect.DeepEqual(mem, tcp) {
			t.Fatalf("%v: chaos schedule diverged between transports: %d memory events vs %d TCP events",
				in, len(mem), len(tcp))
		}
		if len(mem) == 0 {
			t.Logf("%v: chaos enabled but injected nothing this run", in)
		}
	}
}

// captureTransport wraps the memory transport and keeps the wire
// encoding of every message sent through it — a source of organically
// shaped frames (multi-tree payloads, heartbeats, chaos survivors) for
// the codec fuzz corpus.
type captureTransport struct {
	inner  transport.Transport
	mu     sync.Mutex
	frames [][]byte
}

func (c *captureTransport) Send(msg transport.Message) error {
	if frame, err := transport.Encode(msg); err == nil {
		c.mu.Lock()
		c.frames = append(c.frames, frame)
		c.mu.Unlock()
	}
	return c.inner.Send(msg)
}

func (c *captureTransport) Drain(n model.NodeID) []transport.Message { return c.inner.Drain(n) }
func (c *captureTransport) Flush() error                             { return c.inner.Flush() }
func (c *captureTransport) Close() error                             { return c.inner.Close() }

// TestGenerateFuzzCorpus regenerates the checked-in FuzzDecode seed
// corpus from a live chaos run. It is a generator, not a test: set
// REMO_GEN_CORPUS=1 to rewrite internal/transport/testdata/fuzz/FuzzDecode.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("REMO_GEN_CORPUS") == "" {
		t.Skip("set REMO_GEN_CORPUS=1 to regenerate the fuzz corpus")
	}
	cfg, _ := generatedConfig(t, 9200)
	cap := &captureTransport{inner: transport.NewMemory(cfg.Sys.NodeIDs())}
	cfg.Transport = cap
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	// Deduplicate and keep a spread of frame shapes, preferring larger
	// (multi-value) frames that the hand-written seeds lack.
	seen := make(map[string]struct{})
	var unique [][]byte
	for _, f := range cap.frames {
		if _, dup := seen[string(f)]; dup {
			continue
		}
		seen[string(f)] = struct{}{}
		unique = append(unique, f)
	}
	sort.Slice(unique, func(i, j int) bool { return len(unique[i]) > len(unique[j]) })
	const keep = 16
	if len(unique) > keep {
		step := len(unique) / keep
		var spread [][]byte
		for i := 0; i < len(unique) && len(spread) < keep; i += step {
			spread = append(spread, unique[i])
		}
		unique = spread
	}

	dir := filepath.Join("..", "transport", "testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, f := range unique {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(f)) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("chaos-%03d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d corpus frames to %s (from %d captured messages)", len(unique), dir, len(cap.frames))
}
