package cluster

import (
	"math"

	"remo/internal/agg"
	"remo/internal/model"
	"remo/internal/store"
	"remo/internal/trace"
	"remo/internal/transport"
)

// collector implements the central data collector: it absorbs root
// messages, maintains the freshest known view of every demanded pair,
// and scores coverage, staleness and percentage error each round.
//
// Demanded holistic pairs live in dense parallel arrays indexed by
// slot, so the per-round scoring loop and the per-value absorb path
// touch at most one map (the pair-to-slot index) instead of three.
// Pairs outside the current demand — stale views kept across a
// retarget, and deliveries for pairs the demand no longer names — spill
// into overflow maps so adaptation semantics are unchanged.
type collector struct {
	cfg Config

	// holisticPairs are the demanded pairs collected holistically, in
	// canonical order; periods, views, viewSet and bits are parallel to
	// it. views[i] is meaningful only when viewSet[i]; bits[i] is the
	// lazily allocated delivered-round bitmap.
	holisticPairs []model.Pair
	periods       []int
	views         []transport.Value
	viewSet       []bool
	bits          [][]uint64
	slotOf        map[model.Pair]int

	// Overflow state for pairs without a slot.
	extraView map[model.Pair]transport.Value
	extraBits map[model.Pair][]uint64

	// aggView holds the freshest delivered aggregate per aggregated
	// attribute.
	aggView map[model.AttrID]transport.Value
	// aggAttrs are attributes collected via in-network aggregation; each
	// counts as one logical observation target.
	aggAttrs        []model.AttrID
	aggParticipants map[model.AttrID][]model.NodeID

	delivered int
	expected  int

	errSum     float64
	errCount   int
	staleSum   float64
	staleCount int
	// errSeries accumulates per-round average error.
	errSeries []float64

	valuesDelivered int
	centralDrops    int
	// staleFrames counts frames rejected by epoch fencing at the
	// collector — pre-crash or pre-swap traffic a resumed session must
	// not absorb.
	staleFrames int
}

func newCollector(cfg Config) *collector {
	c := &collector{
		aggView:   make(map[model.AttrID]transport.Value),
		extraView: make(map[model.Pair]transport.Value),
		extraBits: make(map[model.Pair][]uint64),
	}
	c.retarget(cfg)
	return c
}

// retarget rebuilds the collector's demanded-pair accounting for a new
// configuration (topology adaptation), keeping its views and error
// accumulators. Views and delivery bitmaps of pairs leaving the demand
// are parked in the overflow maps; pairs rejoining pick them back up —
// exactly what a real collector's retained state would do.
func (c *collector) retarget(cfg Config) {
	for i, p := range c.holisticPairs {
		if c.viewSet[i] {
			c.extraView[p] = c.views[i]
		}
		if c.bits[i] != nil {
			c.extraBits[p] = c.bits[i]
		}
	}
	c.cfg = cfg
	c.aggAttrs = nil
	c.aggParticipants = make(map[model.AttrID][]model.NodeID)

	periodOf := make(map[model.Pair]int)
	pairs := c.holisticPairs[:0]
	seenAgg := make(map[model.AttrID]struct{})
	for _, p := range cfg.Demand.Pairs() {
		orig := cfg.Resolve(p.Attr)
		if cfg.Spec.KindOf(orig) != agg.Holistic {
			c.aggParticipants[orig] = append(c.aggParticipants[orig], p.Node)
			if _, dup := seenAgg[orig]; !dup {
				seenAgg[orig] = struct{}{}
				c.aggAttrs = append(c.aggAttrs, orig)
			}
			continue
		}
		fold := model.Pair{Node: p.Node, Attr: orig}
		period := weightPeriod(cfg.Demand.Weight(p.Node, p.Attr))
		if prev, dup := periodOf[fold]; dup {
			// Replicated pair: keep the fastest period.
			if period < prev {
				periodOf[fold] = period
			}
			continue
		}
		periodOf[fold] = period
		pairs = append(pairs, fold)
	}
	model.SortPairs(pairs)
	model.SortAttrs(c.aggAttrs)

	n := len(pairs)
	c.holisticPairs = pairs
	c.periods = make([]int, n)
	c.views = make([]transport.Value, n)
	c.viewSet = make([]bool, n)
	c.bits = make([][]uint64, n)
	c.slotOf = make(map[model.Pair]int, n)
	for i, p := range pairs {
		c.slotOf[p] = i
		c.periods[i] = periodOf[p]
		if v, ok := c.extraView[p]; ok {
			c.views[i] = v
			c.viewSet[i] = true
			delete(c.extraView, p)
		}
		if b, ok := c.extraBits[p]; ok {
			c.bits[i] = b
			delete(c.extraBits, p)
		}
	}
}

// recover rebuilds the collector after a crash: every in-memory view is
// wiped — a restarted collector knows only what its journal preserved —
// and the demanded slots are re-seeded from the recovered repository's
// newest samples. The scoring accumulators survive: they are the
// session's measurement harness, not collector state, and keeping them
// preserves the one-entry-per-round error series the verifier checks.
// Aggregate views are not re-seeded (the repository stores them under
// the aggregating node's identity); they refresh on the next delivery.
func (c *collector) recover(cfg Config, repo *store.Store, round int) {
	c.holisticPairs = nil
	c.periods, c.views, c.viewSet, c.bits = nil, nil, nil, nil
	c.slotOf = nil
	c.extraView = make(map[model.Pair]transport.Value)
	c.extraBits = make(map[model.Pair][]uint64)
	c.aggView = make(map[model.AttrID]transport.Value)
	c.retarget(cfg)
	if repo == nil {
		return
	}
	for i, p := range c.holisticPairs {
		smp, ok := repo.Latest(p)
		if !ok {
			continue
		}
		// Clamp the seeded view's round below the current one so the
		// staleness accounting never sees a view from the future (cold
		// resumes restart the round clock at zero).
		r := smp.Round
		if r >= round {
			r = round - 1
		}
		c.views[i] = transport.Value{Node: p.Node, Attr: p.Attr, Round: r, Value: smp.Value}
		c.viewSet[i] = true
	}
}

// lookupView returns the freshest delivered view of a pair, demanded or
// not.
func (c *collector) lookupView(p model.Pair) (transport.Value, bool) {
	if slot, ok := c.slotOf[p]; ok {
		return c.views[slot], c.viewSet[slot]
	}
	v, ok := c.extraView[p]
	return v, ok
}

// absorb ingests the central mailbox for one round.
func (c *collector) absorb(msgs []transport.Message, round int) {
	budget := c.cfg.Sys.CentralCapacity
	for _, msg := range msgs {
		if c.cfg.FenceEpochs && msg.Epoch < c.cfg.epochFor(msg.TreeKey) {
			c.staleFrames++
			continue
		}
		cost := c.cfg.Sys.Cost.Message(len(msg.Values))
		if c.cfg.EnforceCapacity && cost > budget {
			c.centralDrops++
			continue
		}
		budget -= cost
		if c.cfg.Trace != nil {
			c.cfg.Trace.Record(trace.Event{
				Round: round, Kind: trace.Deliver, Node: model.Central,
				Peer: msg.From, TreeKey: msg.TreeKey, Values: len(msg.Values),
			})
		}
		for _, v := range msg.Values {
			c.valuesDelivered++
			orig := c.cfg.Resolve(v.Attr)
			if c.cfg.Observer != nil {
				c.cfg.Observer(model.Pair{Node: v.Node, Attr: orig}, v.Round, v.Value)
			}
			if c.cfg.Spec.KindOf(orig) != agg.Holistic {
				if cur, ok := c.aggView[orig]; !ok || v.Round >= cur.Round {
					c.aggView[orig] = v
				}
				continue
			}
			pair := model.Pair{Node: v.Node, Attr: orig}
			if slot, ok := c.slotOf[pair]; ok {
				if !c.viewSet[slot] || v.Round >= c.views[slot].Round {
					c.views[slot] = v
					c.viewSet[slot] = true
				}
				c.markSlot(slot, v.Round)
			} else {
				if cur, ok := c.extraView[pair]; !ok || v.Round >= cur.Round {
					c.extraView[pair] = v
				}
				c.markExtra(pair, v.Round)
			}
		}
	}
	_ = round
}

// markSlot records delivery of a demanded (pair, round) observation.
func (c *collector) markSlot(slot, round int) {
	if round < 0 || round >= c.cfg.Rounds {
		return
	}
	bits := c.bits[slot]
	if bits == nil {
		bits = make([]uint64, (c.cfg.Rounds+63)/64)
		c.bits[slot] = bits
	}
	word, bit := round/64, uint(round%64)
	if bits[word]&(1<<bit) == 0 {
		bits[word] |= 1 << bit
		c.delivered++
	}
}

// markExtra records delivery for a pair outside the current demand (it
// may have been demanded before a retarget, or become demanded later).
func (c *collector) markExtra(p model.Pair, round int) {
	if round < 0 || round >= c.cfg.Rounds {
		return
	}
	bits := c.extraBits[p]
	if bits == nil {
		bits = make([]uint64, (c.cfg.Rounds+63)/64)
		c.extraBits[p] = bits
	}
	word, bit := round/64, uint(round%64)
	if bits[word]&(1<<bit) == 0 {
		bits[word] |= 1 << bit
		c.delivered++
	}
}

// score accumulates the per-round error and staleness metrics after
// round's messages were absorbed. It returns this round's error-sum and
// pair-count deltas so a sharded session can merge per-shard rounds into
// one session-wide error series.
func (c *collector) score(round int) (dErr float64, dCnt int) {
	roundErrBase, roundCountBase := c.errSum, c.errCount
	for i, p := range c.holisticPairs {
		if round%c.periods[i] == 0 {
			c.expected++
		}
		truth := c.cfg.Source.Value(p.Node, p.Attr, round)
		c.errCount++
		if !c.viewSet[i] {
			c.errSum += 1
			continue
		}
		v := c.views[i]
		c.errSum += relErr(v.Value, truth)
		c.staleSum += float64(round - v.Round)
		c.staleCount++
	}
	for _, a := range c.aggAttrs {
		c.expected++
		c.errCount++
		truth := c.aggTruth(a, round)
		v, ok := c.aggView[a]
		if !ok {
			c.errSum += 1
			continue
		}
		c.errSum += relErr(v.Value, truth)
		c.staleSum += float64(round - v.Round)
		c.staleCount++
	}
	dErr, dCnt = c.errSum-roundErrBase, c.errCount-roundCountBase
	if dCnt > 0 {
		c.errSeries = append(c.errSeries, 100*dErr/float64(dCnt))
	} else {
		c.errSeries = append(c.errSeries, 0)
	}
	return dErr, dCnt
}

// aggTruth computes the ground-truth aggregate of attribute a over its
// participants at the given round.
func (c *collector) aggTruth(a model.AttrID, round int) float64 {
	parts := c.aggParticipants[a]
	raw := make([]float64, len(parts))
	for i, n := range parts {
		raw[i] = c.cfg.Source.Value(n, a, round)
	}
	combined := agg.Combine(c.cfg.Spec.KindOf(a), c.cfg.Spec.K(a), raw)
	if len(combined) == 0 {
		return 0
	}
	return combined[0]
}

// relErr is the relative error capped at 100%.
func relErr(observed, truth float64) float64 {
	denom := math.Abs(truth)
	if denom < 1e-9 {
		denom = 1e-9
	}
	e := math.Abs(observed-truth) / denom
	if e > 1 {
		e = 1
	}
	return e
}

// deliveredEffective is the delivered-observation count used for the
// collection-rate metric. Aggregated attributes count one delivery per
// refreshed round; folding them into the delivered counter via their
// views' ages is overkill — coverage and error already capture them, so
// an aggregate view refreshed to round r approximates r+1 observations.
func (c *collector) deliveredEffective() int {
	d := c.delivered
	for _, a := range c.aggAttrs {
		if v, ok := c.aggView[a]; ok {
			d += v.Round + 1
		}
	}
	return d
}

// covered counts demanded pairs (and aggregated attributes) with at
// least one delivered view.
func (c *collector) covered() int {
	n := 0
	for _, set := range c.viewSet {
		if set {
			n++
		}
	}
	for _, a := range c.aggAttrs {
		if _, ok := c.aggView[a]; ok {
			n++
		}
	}
	return n
}

// result finalizes the measurements.
func (c *collector) result() Result {
	res := Result{
		Rounds:          c.cfg.Rounds,
		DemandedPairs:   len(c.holisticPairs) + len(c.aggAttrs),
		ValuesDelivered: c.valuesDelivered,
		MessagesDropped: c.centralDrops,
	}
	res.CoveredPairs = c.covered()
	delivered := c.deliveredEffective()
	if c.expected > 0 {
		res.PercentCollected = 100 * float64(delivered) / float64(c.expected)
		if res.PercentCollected > 100 {
			res.PercentCollected = 100
		}
	}
	if c.errCount > 0 {
		res.AvgPercentError = 100 * c.errSum / float64(c.errCount)
	}
	if c.staleCount > 0 {
		res.AvgStaleness = c.staleSum / float64(c.staleCount)
	}
	res.ErrorSeries = append([]float64(nil), c.errSeries...)
	return res
}
