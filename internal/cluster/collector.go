package cluster

import (
	"math"

	"remo/internal/agg"
	"remo/internal/model"
	"remo/internal/trace"
	"remo/internal/transport"
)

// collector implements the central data collector: it absorbs root
// messages, maintains the freshest known view of every demanded pair,
// and scores coverage, staleness and percentage error each round.
type collector struct {
	cfg Config

	// view holds the freshest delivered value per (alias-folded) pair.
	view map[model.Pair]transport.Value
	// aggView holds the freshest delivered aggregate per aggregated
	// attribute.
	aggView map[model.AttrID]transport.Value

	// holisticPairs are the demanded pairs collected holistically.
	holisticPairs []model.Pair
	pairPeriod    map[model.Pair]int
	// aggAttrs are attributes collected via in-network aggregation; each
	// counts as one logical observation target.
	aggAttrs        []model.AttrID
	aggParticipants map[model.AttrID][]model.NodeID

	// deliveredBits marks which (pair, round) observations arrived.
	deliveredBits map[model.Pair][]uint64
	delivered     int
	expected      int

	errSum     float64
	errCount   int
	staleSum   float64
	staleCount int
	// errSeries accumulates per-round average error.
	errSeries []float64

	valuesDelivered int
	centralDrops    int
}

func newCollector(cfg Config) *collector {
	c := &collector{
		view:          make(map[model.Pair]transport.Value),
		aggView:       make(map[model.AttrID]transport.Value),
		deliveredBits: make(map[model.Pair][]uint64),
	}
	c.retarget(cfg)
	return c
}

// retarget rebuilds the collector's demanded-pair accounting for a new
// configuration (topology adaptation), keeping its views and error
// accumulators.
func (c *collector) retarget(cfg Config) {
	c.cfg = cfg
	c.holisticPairs = nil
	c.aggAttrs = nil
	c.pairPeriod = make(map[model.Pair]int)
	c.aggParticipants = make(map[model.AttrID][]model.NodeID)

	seenPair := make(map[model.Pair]struct{})
	seenAgg := make(map[model.AttrID]struct{})
	for _, p := range cfg.Demand.Pairs() {
		orig := cfg.Resolve(p.Attr)
		if cfg.Spec.KindOf(orig) != agg.Holistic {
			c.aggParticipants[orig] = append(c.aggParticipants[orig], p.Node)
			if _, dup := seenAgg[orig]; !dup {
				seenAgg[orig] = struct{}{}
				c.aggAttrs = append(c.aggAttrs, orig)
			}
			continue
		}
		fold := model.Pair{Node: p.Node, Attr: orig}
		period := weightPeriod(cfg.Demand.Weight(p.Node, p.Attr))
		if _, dup := seenPair[fold]; dup {
			// Replicated pair: keep the fastest period.
			if period < c.pairPeriod[fold] {
				c.pairPeriod[fold] = period
			}
			continue
		}
		seenPair[fold] = struct{}{}
		c.holisticPairs = append(c.holisticPairs, fold)
		c.pairPeriod[fold] = period
	}
	model.SortPairs(c.holisticPairs)
	model.SortAttrs(c.aggAttrs)
}

// absorb ingests the central mailbox for one round.
func (c *collector) absorb(msgs []transport.Message, round int) {
	budget := c.cfg.Sys.CentralCapacity
	for _, msg := range msgs {
		cost := c.cfg.Sys.Cost.Message(len(msg.Values))
		if c.cfg.EnforceCapacity && cost > budget {
			c.centralDrops++
			continue
		}
		budget -= cost
		if c.cfg.Trace != nil {
			c.cfg.Trace.Record(trace.Event{
				Round: round, Kind: trace.Deliver, Node: model.Central,
				Peer: msg.From, TreeKey: msg.TreeKey, Values: len(msg.Values),
			})
		}
		for _, v := range msg.Values {
			c.valuesDelivered++
			orig := c.cfg.Resolve(v.Attr)
			if c.cfg.Observer != nil {
				c.cfg.Observer(model.Pair{Node: v.Node, Attr: orig}, v.Round, v.Value)
			}
			if c.cfg.Spec.KindOf(orig) != agg.Holistic {
				if cur, ok := c.aggView[orig]; !ok || v.Round >= cur.Round {
					c.aggView[orig] = v
				}
				continue
			}
			pair := model.Pair{Node: v.Node, Attr: orig}
			if cur, ok := c.view[pair]; !ok || v.Round >= cur.Round {
				c.view[pair] = v
			}
			c.markDelivered(pair, v.Round)
		}
	}
	_ = round
}

func (c *collector) markDelivered(p model.Pair, round int) {
	if round < 0 || round >= c.cfg.Rounds {
		return
	}
	bits := c.deliveredBits[p]
	if bits == nil {
		bits = make([]uint64, (c.cfg.Rounds+63)/64)
		c.deliveredBits[p] = bits
	}
	word, bit := round/64, uint(round%64)
	if bits[word]&(1<<bit) == 0 {
		bits[word] |= 1 << bit
		c.delivered++
	}
}

// score accumulates the per-round error and staleness metrics after
// round's messages were absorbed.
func (c *collector) score(round int) {
	roundErrBase, roundCountBase := c.errSum, c.errCount
	for _, p := range c.holisticPairs {
		if round%c.pairPeriod[p] == 0 {
			c.expected++
		}
		truth := c.cfg.Source.Value(p.Node, p.Attr, round)
		v, ok := c.view[p]
		c.errCount++
		if !ok {
			c.errSum += 1
			continue
		}
		c.errSum += relErr(v.Value, truth)
		c.staleSum += float64(round - v.Round)
		c.staleCount++
	}
	for _, a := range c.aggAttrs {
		c.expected++
		c.errCount++
		truth := c.aggTruth(a, round)
		v, ok := c.aggView[a]
		if !ok {
			c.errSum += 1
			continue
		}
		c.errSum += relErr(v.Value, truth)
		c.staleSum += float64(round - v.Round)
		c.staleCount++
	}
	if dc := c.errCount - roundCountBase; dc > 0 {
		c.errSeries = append(c.errSeries, 100*(c.errSum-roundErrBase)/float64(dc))
	} else {
		c.errSeries = append(c.errSeries, 0)
	}
}

// aggTruth computes the ground-truth aggregate of attribute a over its
// participants at the given round.
func (c *collector) aggTruth(a model.AttrID, round int) float64 {
	parts := c.aggParticipants[a]
	raw := make([]float64, len(parts))
	for i, n := range parts {
		raw[i] = c.cfg.Source.Value(n, a, round)
	}
	combined := agg.Combine(c.cfg.Spec.KindOf(a), c.cfg.Spec.K(a), raw)
	if len(combined) == 0 {
		return 0
	}
	return combined[0]
}

// relErr is the relative error capped at 100%.
func relErr(observed, truth float64) float64 {
	denom := math.Abs(truth)
	if denom < 1e-9 {
		denom = 1e-9
	}
	e := math.Abs(observed-truth) / denom
	if e > 1 {
		e = 1
	}
	return e
}

// result finalizes the measurements.
func (c *collector) result() Result {
	res := Result{
		Rounds:          c.cfg.Rounds,
		DemandedPairs:   len(c.holisticPairs) + len(c.aggAttrs),
		ValuesDelivered: c.valuesDelivered,
		MessagesDropped: c.centralDrops,
	}
	for _, p := range c.holisticPairs {
		if _, ok := c.view[p]; ok {
			res.CoveredPairs++
		}
	}
	for _, a := range c.aggAttrs {
		if _, ok := c.aggView[a]; ok {
			res.CoveredPairs++
		}
	}
	// Aggregated attributes count one delivery per refreshed round; fold
	// them into the delivered counter via their views' ages is overkill —
	// coverage and error already capture them, so the delivery rate is
	// computed over holistic expectations plus aggregate rounds.
	delivered := c.delivered
	for _, a := range c.aggAttrs {
		if v, ok := c.aggView[a]; ok {
			// Approximate: an aggregate view refreshed to round r has
			// delivered r+1 observations.
			delivered += v.Round + 1
		}
	}
	if c.expected > 0 {
		res.PercentCollected = 100 * float64(delivered) / float64(c.expected)
		if res.PercentCollected > 100 {
			res.PercentCollected = 100
		}
	}
	if c.errCount > 0 {
		res.AvgPercentError = 100 * c.errSum / float64(c.errCount)
	}
	if c.staleCount > 0 {
		res.AvgStaleness = c.staleSum / float64(c.staleCount)
	}
	res.ErrorSeries = append([]float64(nil), c.errSeries...)
	return res
}
