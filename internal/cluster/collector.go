package cluster

import (
	"math"

	"remo/internal/agg"
	"remo/internal/model"
	"remo/internal/predict"
	"remo/internal/store"
	"remo/internal/trace"
	"remo/internal/transport"
)

// collector implements the central data collector: it absorbs root
// messages, maintains the freshest known view of every demanded pair,
// and scores coverage, staleness and percentage error each round.
//
// Demanded holistic pairs live in dense parallel arrays indexed by
// slot, so the per-round scoring loop and the per-value absorb path
// touch at most one map (the pair-to-slot index) instead of three.
// Pairs outside the current demand — stale views kept across a
// retarget, and deliveries for pairs the demand no longer names — spill
// into overflow maps so adaptation semantics are unchanged.
type collector struct {
	cfg Config

	// holisticPairs are the demanded pairs collected holistically, in
	// canonical order; periods, views, viewSet and bits are parallel to
	// it. views[i] is meaningful only when viewSet[i]; bits[i] is the
	// lazily allocated delivered-round bitmap.
	holisticPairs []model.Pair
	periods       []int
	views         []transport.Value
	viewSet       []bool
	bits          [][]uint64
	slotOf        map[model.Pair]int

	// Suppression replica state, parallel to holisticPairs (allocated
	// only when cfg.Predict is set). preds[i] is created by the slot's
	// first sync marker (or seeded on a cold resume); predLive[i] gates
	// imputation — it drops on any detected gap in the slot's update
	// stream and is revived only by a sync; predLast[i] is the origin
	// round of the slot's last replica advance.
	preds    []predict.Model
	predLive []bool
	predLast []int

	// Overflow state for pairs without a slot.
	extraView map[model.Pair]transport.Value
	extraBits map[model.Pair][]uint64

	// aggView holds the freshest delivered aggregate per aggregated
	// attribute.
	aggView map[model.AttrID]transport.Value
	// aggAttrs are attributes collected via in-network aggregation; each
	// counts as one logical observation target.
	aggAttrs        []model.AttrID
	aggParticipants map[model.AttrID][]model.NodeID

	delivered int
	expected  int

	errSum     float64
	errCount   int
	staleSum   float64
	staleCount int
	// errSeries accumulates per-round average error.
	errSeries []float64

	valuesDelivered int
	centralDrops    int
	// staleFrames counts frames rejected by epoch fencing at the
	// collector — pre-crash or pre-swap traffic a resumed session must
	// not absorb.
	staleFrames int

	// Suppression accounting (see the Result fields of the same names).
	valuesImputed int
	modelSyncs    int
	markersLost   int
	imputeBandMax float64
}

func newCollector(cfg Config) *collector {
	c := &collector{
		aggView:   make(map[model.AttrID]transport.Value),
		extraView: make(map[model.Pair]transport.Value),
		extraBits: make(map[model.Pair][]uint64),
	}
	c.retarget(cfg)
	c.seedModels(cfg.SeedModels)
	return c
}

// seedModels arms demanded slots with cold-resume replicas: the leaves
// were seeded from the same snapshots (Config.SeedModels), so both
// ends are in lockstep from round zero and imputation can start
// immediately. predLast is backdated one period so the first due round
// passes the gap check.
func (c *collector) seedModels(models map[model.Pair]predict.Snapshot) {
	if c.preds == nil || len(models) == 0 {
		return
	}
	for p, sn := range models {
		slot, ok := c.slotOf[p]
		if !ok {
			continue
		}
		c.preds[slot] = predict.FromSnapshot(sn)
		c.predLive[slot] = true
		c.predLast[slot] = -c.periods[slot]
	}
}

// restoreModels installs checkpointed replicas after an in-process
// crash recovery — gated, not live: the leaves kept advancing their
// replicas with predictions while the collector was down, so the
// checkpoint cannot be assumed current. Imputation stays refused until
// each slot's next sync re-locks it; the restore is defense in depth
// (warm state survives for diagnostics and future relaxations).
func (c *collector) restoreModels(models map[model.Pair]predict.Snapshot) {
	if c.preds == nil || len(models) == 0 {
		return
	}
	for p, sn := range models {
		slot, ok := c.slotOf[p]
		if !ok {
			continue
		}
		c.preds[slot] = predict.FromSnapshot(sn)
		c.predLive[slot] = false
	}
}

// predSnapshots appends every materialized replica's snapshot to the
// given map (allocating it on first use) for journal checkpoints.
func (c *collector) predSnapshots(into map[model.Pair]predict.Snapshot) map[model.Pair]predict.Snapshot {
	for i, p := range c.holisticPairs {
		if i < len(c.preds) && c.preds[i] != nil {
			if into == nil {
				into = make(map[model.Pair]predict.Snapshot)
			}
			into[p] = c.preds[i].Snapshot()
		}
	}
	return into
}

// retarget rebuilds the collector's demanded-pair accounting for a new
// configuration (topology adaptation), keeping its views and error
// accumulators. Views and delivery bitmaps of pairs leaving the demand
// are parked in the overflow maps; pairs rejoining pick them back up —
// exactly what a real collector's retained state would do.
func (c *collector) retarget(cfg Config) {
	for i, p := range c.holisticPairs {
		if c.viewSet[i] {
			c.extraView[p] = c.views[i]
		}
		if c.bits[i] != nil {
			c.extraBits[p] = c.bits[i]
		}
	}
	c.cfg = cfg
	c.aggAttrs = nil
	c.aggParticipants = make(map[model.AttrID][]model.NodeID)

	periodOf := make(map[model.Pair]int)
	pairs := c.holisticPairs[:0]
	seenAgg := make(map[model.AttrID]struct{})
	for _, p := range cfg.Demand.Pairs() {
		orig := cfg.Resolve(p.Attr)
		if cfg.Spec.KindOf(orig) != agg.Holistic {
			c.aggParticipants[orig] = append(c.aggParticipants[orig], p.Node)
			if _, dup := seenAgg[orig]; !dup {
				seenAgg[orig] = struct{}{}
				c.aggAttrs = append(c.aggAttrs, orig)
			}
			continue
		}
		fold := model.Pair{Node: p.Node, Attr: orig}
		period := weightPeriod(cfg.Demand.Weight(p.Node, p.Attr))
		if prev, dup := periodOf[fold]; dup {
			// Replicated pair: keep the fastest period.
			if period < prev {
				periodOf[fold] = period
			}
			continue
		}
		periodOf[fold] = period
		pairs = append(pairs, fold)
	}
	model.SortPairs(pairs)
	model.SortAttrs(c.aggAttrs)

	n := len(pairs)
	c.holisticPairs = pairs
	c.periods = make([]int, n)
	c.views = make([]transport.Value, n)
	c.viewSet = make([]bool, n)
	c.bits = make([][]uint64, n)
	c.slotOf = make(map[model.Pair]int, n)
	if cfg.Predict != nil {
		// Replicas do not survive a retarget: slots may have moved and the
		// leaves force a sync on every plan swap anyway, so the worst case
		// is one refusal window (≤ SyncEvery rounds) after a shard
		// re-dispatch, where leaves are not rebuilt.
		c.preds = make([]predict.Model, n)
		c.predLive = make([]bool, n)
		c.predLast = make([]int, n)
	} else {
		c.preds, c.predLive, c.predLast = nil, nil, nil
	}
	for i, p := range pairs {
		c.slotOf[p] = i
		c.periods[i] = periodOf[p]
		if v, ok := c.extraView[p]; ok {
			c.views[i] = v
			c.viewSet[i] = true
			delete(c.extraView, p)
		}
		if b, ok := c.extraBits[p]; ok {
			c.bits[i] = b
			delete(c.extraBits, p)
		}
	}
}

// recover rebuilds the collector after a crash: every in-memory view is
// wiped — a restarted collector knows only what its journal preserved —
// and the demanded slots are re-seeded from the recovered repository's
// newest samples. The scoring accumulators survive: they are the
// session's measurement harness, not collector state, and keeping them
// preserves the one-entry-per-round error series the verifier checks.
// Aggregate views are not re-seeded (the repository stores them under
// the aggregating node's identity); they refresh on the next delivery.
func (c *collector) recover(cfg Config, repo *store.Store, round int) {
	c.holisticPairs = nil
	c.periods, c.views, c.viewSet, c.bits = nil, nil, nil, nil
	c.slotOf = nil
	c.extraView = make(map[model.Pair]transport.Value)
	c.extraBits = make(map[model.Pair][]uint64)
	c.aggView = make(map[model.AttrID]transport.Value)
	c.retarget(cfg)
	if repo == nil {
		return
	}
	for i, p := range c.holisticPairs {
		smp, ok := repo.Latest(p)
		if !ok {
			continue
		}
		// Clamp the seeded view's round below the current one so the
		// staleness accounting never sees a view from the future (cold
		// resumes restart the round clock at zero).
		r := smp.Round
		if r >= round {
			r = round - 1
		}
		c.views[i] = transport.Value{Node: p.Node, Attr: p.Attr, Round: r, Value: smp.Value}
		c.viewSet[i] = true
	}
}

// lookupView returns the freshest delivered view of a pair, demanded or
// not.
func (c *collector) lookupView(p model.Pair) (transport.Value, bool) {
	if slot, ok := c.slotOf[p]; ok {
		return c.views[slot], c.viewSet[slot]
	}
	v, ok := c.extraView[p]
	return v, ok
}

// absorb ingests the central mailbox for one round.
func (c *collector) absorb(msgs []transport.Message, round int) {
	budget := c.cfg.Sys.CentralCapacity
	for _, msg := range msgs {
		if c.cfg.FenceEpochs && msg.Epoch < c.cfg.epochFor(msg.TreeKey) {
			c.staleFrames++
			c.markersLost += len(msg.Suppressed)
			continue
		}
		cost := c.cfg.Sys.Cost.Message(len(msg.Values))
		if c.cfg.EnforceCapacity && cost > budget {
			c.centralDrops++
			c.markersLost += len(msg.Suppressed)
			continue
		}
		budget -= cost
		if c.cfg.Trace != nil {
			c.cfg.Trace.Record(trace.Event{
				Round: round, Kind: trace.Deliver, Node: model.Central,
				Peer: msg.From, TreeKey: msg.TreeKey, Values: len(msg.Values),
			})
		}
		for _, v := range msg.Values {
			c.valuesDelivered++
			orig := c.cfg.Resolve(v.Attr)
			if c.cfg.Observer != nil {
				c.cfg.Observer(model.Pair{Node: v.Node, Attr: orig}, v.Round, v.Value)
			}
			if c.cfg.Spec.KindOf(orig) != agg.Holistic {
				if cur, ok := c.aggView[orig]; !ok || v.Round >= cur.Round {
					c.aggView[orig] = v
				}
				continue
			}
			pair := model.Pair{Node: v.Node, Attr: orig}
			if slot, ok := c.slotOf[pair]; ok {
				if !c.viewSet[slot] || v.Round >= c.views[slot].Round {
					c.views[slot] = v
					c.viewSet[slot] = true
				}
				c.markSlot(slot, v.Round)
				if c.preds != nil {
					c.advanceReplica(slot, v, isSynced(msg.Syncs, v))
				}
			} else {
				if cur, ok := c.extraView[pair]; !ok || v.Round >= cur.Round {
					c.extraView[pair] = v
				}
				c.markExtra(pair, v.Round)
			}
		}
		for _, sp := range msg.Suppressed {
			c.impute(sp, round)
		}
	}
	_ = round
}

// isSynced reports whether the value carries a sync marker — the leaf
// reset its replica and re-seeded it from exactly this value. Frames
// carry at most a handful of sync entries, so a linear scan beats a
// lookup structure.
func isSynced(syncs []transport.Supp, v transport.Value) bool {
	for _, sy := range syncs {
		if sy.Node == v.Node && sy.Attr == v.Attr && sy.Round == v.Round {
			return true
		}
	}
	return false
}

// advanceReplica applies one transmitted value to a slot's replica,
// mirroring the leaf's bookkeeping. A sync resets and re-seeds the
// replica (creating it on first contact) and revives imputation; a
// plain value advances the replica only when it is the next expected
// update — any gap means frames were lost and the leaf's replica moved
// without us, so imputation is refused until the next sync.
func (c *collector) advanceReplica(slot int, v transport.Value, synced bool) {
	if synced {
		m := c.preds[slot]
		if m == nil {
			m = c.cfg.Predict.New(c.holisticPairs[slot].Attr)
			c.preds[slot] = m
		}
		m.Reset()
		m.Observe(v.Value)
		c.predLive[slot] = true
		c.predLast[slot] = v.Round
		c.modelSyncs++
		return
	}
	m := c.preds[slot]
	if m == nil || !c.predLive[slot] {
		return
	}
	switch {
	case v.Round == c.predLast[slot]+c.periods[slot]:
		m.Observe(v.Value)
		c.predLast[slot] = v.Round
	case v.Round > c.predLast[slot]:
		c.predLive[slot] = false
	}
	// v.Round <= predLast: late duplicate — the replica already moved
	// past it; ignore.
}

// impute reconstructs one suppressed slot from the collector's replica
// and stores it as a delivered view. Refusals (no live lockstep
// replica, or the marker is not the next expected update) count the
// marker lost — the protocol never imputes a value it cannot bound.
func (c *collector) impute(sp transport.Supp, round int) {
	orig := c.cfg.Resolve(sp.Attr)
	pair := model.Pair{Node: sp.Node, Attr: orig}
	slot, ok := c.slotOf[pair]
	if !ok || c.preds == nil {
		c.markersLost++
		return
	}
	m := c.preds[slot]
	if m == nil || !c.predLive[slot] || !m.Ready() {
		c.markersLost++
		return
	}
	if sp.Round != c.predLast[slot]+c.periods[slot] {
		if sp.Round > c.predLast[slot] {
			// Gap: updates between predLast and this marker were lost, so
			// the leaf's replica advanced without us.
			c.predLive[slot] = false
		}
		c.markersLost++
		return
	}
	imputed := m.Predict()
	m.Observe(imputed)
	c.predLast[slot] = sp.Round
	c.valuesImputed++
	// Track the realized band ratio against ground truth: bit-identical
	// replicas make imputed == the leaf's prediction, which the leaf
	// verified within band, so the ratio stays ≤ 1.
	truth := c.cfg.Source.Value(pair.Node, pair.Attr, sp.Round)
	band := c.cfg.Predict.Band(pair.Attr, truth)
	if ratio := math.Abs(imputed-truth) / band; ratio > c.imputeBandMax {
		c.imputeBandMax = ratio
	}
	if c.cfg.Observer != nil {
		c.cfg.Observer(pair, sp.Round, imputed)
	}
	if !c.viewSet[slot] || sp.Round >= c.views[slot].Round {
		c.views[slot] = transport.Value{Node: pair.Node, Attr: pair.Attr, Round: sp.Round, Value: imputed}
		c.viewSet[slot] = true
	}
	c.markSlot(slot, sp.Round)
	_ = round
}

// markSlot records delivery of a demanded (pair, round) observation.
func (c *collector) markSlot(slot, round int) {
	if round < 0 || round >= c.cfg.Rounds {
		return
	}
	bits := c.bits[slot]
	if bits == nil {
		bits = make([]uint64, (c.cfg.Rounds+63)/64)
		c.bits[slot] = bits
	}
	word, bit := round/64, uint(round%64)
	if bits[word]&(1<<bit) == 0 {
		bits[word] |= 1 << bit
		c.delivered++
	}
}

// markExtra records delivery for a pair outside the current demand (it
// may have been demanded before a retarget, or become demanded later).
func (c *collector) markExtra(p model.Pair, round int) {
	if round < 0 || round >= c.cfg.Rounds {
		return
	}
	bits := c.extraBits[p]
	if bits == nil {
		bits = make([]uint64, (c.cfg.Rounds+63)/64)
		c.extraBits[p] = bits
	}
	word, bit := round/64, uint(round%64)
	if bits[word]&(1<<bit) == 0 {
		bits[word] |= 1 << bit
		c.delivered++
	}
}

// score accumulates the per-round error and staleness metrics after
// round's messages were absorbed. It returns this round's error-sum and
// pair-count deltas so a sharded session can merge per-shard rounds into
// one session-wide error series.
func (c *collector) score(round int) (dErr float64, dCnt int) {
	roundErrBase, roundCountBase := c.errSum, c.errCount
	for i, p := range c.holisticPairs {
		if round%c.periods[i] == 0 {
			c.expected++
		}
		truth := c.cfg.Source.Value(p.Node, p.Attr, round)
		c.errCount++
		if !c.viewSet[i] {
			c.errSum += 1
			continue
		}
		v := c.views[i]
		c.errSum += relErr(v.Value, truth)
		c.staleSum += float64(round - v.Round)
		c.staleCount++
	}
	for _, a := range c.aggAttrs {
		c.expected++
		c.errCount++
		truth := c.aggTruth(a, round)
		v, ok := c.aggView[a]
		if !ok {
			c.errSum += 1
			continue
		}
		c.errSum += relErr(v.Value, truth)
		c.staleSum += float64(round - v.Round)
		c.staleCount++
	}
	dErr, dCnt = c.errSum-roundErrBase, c.errCount-roundCountBase
	if dCnt > 0 {
		c.errSeries = append(c.errSeries, 100*dErr/float64(dCnt))
	} else {
		c.errSeries = append(c.errSeries, 0)
	}
	return dErr, dCnt
}

// aggTruth computes the ground-truth aggregate of attribute a over its
// participants at the given round.
func (c *collector) aggTruth(a model.AttrID, round int) float64 {
	parts := c.aggParticipants[a]
	raw := make([]float64, len(parts))
	for i, n := range parts {
		raw[i] = c.cfg.Source.Value(n, a, round)
	}
	combined := agg.Combine(c.cfg.Spec.KindOf(a), c.cfg.Spec.K(a), raw)
	if len(combined) == 0 {
		return 0
	}
	return combined[0]
}

// relErr is the relative error capped at 100%.
func relErr(observed, truth float64) float64 {
	denom := math.Abs(truth)
	if denom < 1e-9 {
		denom = 1e-9
	}
	e := math.Abs(observed-truth) / denom
	if e > 1 {
		e = 1
	}
	return e
}

// deliveredEffective is the delivered-observation count used for the
// collection-rate metric. Aggregated attributes count one delivery per
// refreshed round; folding them into the delivered counter via their
// views' ages is overkill — coverage and error already capture them, so
// an aggregate view refreshed to round r approximates r+1 observations.
func (c *collector) deliveredEffective() int {
	d := c.delivered
	for _, a := range c.aggAttrs {
		if v, ok := c.aggView[a]; ok {
			d += v.Round + 1
		}
	}
	return d
}

// covered counts demanded pairs (and aggregated attributes) with at
// least one delivered view.
func (c *collector) covered() int {
	n := 0
	for _, set := range c.viewSet {
		if set {
			n++
		}
	}
	for _, a := range c.aggAttrs {
		if _, ok := c.aggView[a]; ok {
			n++
		}
	}
	return n
}

// result finalizes the measurements.
func (c *collector) result() Result {
	res := Result{
		Rounds:          c.cfg.Rounds,
		DemandedPairs:   len(c.holisticPairs) + len(c.aggAttrs),
		ValuesDelivered: c.valuesDelivered,
		MessagesDropped: c.centralDrops,
		ValuesImputed:   c.valuesImputed,
		ModelSyncs:      c.modelSyncs,
		MarkersLost:     c.markersLost,
		ImputeBandMax:   c.imputeBandMax,
	}
	res.CoveredPairs = c.covered()
	delivered := c.deliveredEffective()
	if c.expected > 0 {
		res.PercentCollected = 100 * float64(delivered) / float64(c.expected)
		if res.PercentCollected > 100 {
			res.PercentCollected = 100
		}
	}
	if c.errCount > 0 {
		res.AvgPercentError = 100 * c.errSum / float64(c.errCount)
	}
	if c.staleCount > 0 {
		res.AvgStaleness = c.staleSum / float64(c.staleCount)
	}
	res.ErrorSeries = append([]float64(nil), c.errSeries...)
	return res
}
