//go:build !race

package cluster

import (
	"testing"

	"remo/internal/core"
	"remo/internal/cost"
	"remo/internal/workload"
)

// fig6aCfg builds a Fig. 6a-shaped workload (capacities 150-400, cost
// 10 + 1/value, 150 tasks of 3 attrs) scaled to the given node count.
func fig6aCfg(tb testing.TB, nodes int) Config {
	tb.Helper()
	sys, err := workload.System(workload.SystemConfig{
		Nodes: nodes, Attrs: 100, CapacityLo: 150, CapacityHi: 400,
		CentralCapacity: float64(nodes) * 12,
		Cost:            cost.Model{PerMessage: 10, PerValue: 1},
		Seed:            9,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tasks := workload.Tasks(sys, workload.TaskConfig{
		Count: 150, AttrsPerTask: 3, NodesPerTask: nodes / 10, Seed: 16,
	})
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		tb.Fatal(err)
	}
	res := core.NewPlanner().Plan(sys, d)
	return Config{Sys: sys, Forest: res.Forest, Demand: d, Rounds: 100, EnforceCapacity: true}
}

// TestAllocsStepBudget pins the round engine's steady-state allocation
// behavior: after warm-up (compose buffers, relay maps, mailboxes and
// the collector's dense arrays are all sized), a full collection round
// at Fig. 6 shape stays within a small constant allocation budget —
// independent of node count, message volume, or values in flight.
// Excluded from race builds because the race runtime instruments
// allocations.
func TestAllocsStepBudget(t *testing.T) {
	cfg := fig6aCfg(t, 50)
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	// Warm up: buffers grow to their steady-state sizes within a few
	// rounds (tree height bounds how long values accumulate).
	if err := m.StepN(10); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	})
	// Measured steady state is ~2 allocs/round (the two phase-dispatch
	// closures); 8 leaves headroom for amortized map/slice growth.
	if allocs > 8 {
		t.Fatalf("Machine.Step allocates %.1f/round steady-state, budget 8", allocs)
	}
}
