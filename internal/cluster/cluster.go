// Package cluster emulates a REMO deployment: one goroutine per
// monitoring node, periodic update messages flowing up the planned
// monitoring trees over a pluggable transport, per-round capacity
// enforcement, and a central collector measuring coverage, staleness and
// percentage error against ground truth.
//
// The emulation follows the paper's delivery model: each collection
// round every tree member sends exactly one update message to its parent
// carrying its locally observed values plus the values it received from
// its children in the previous round. Values therefore reach the central
// node after one round per hop — deep trees deliver stale values, which
// is the latency component of Fig. 8's percentage error. Nodes whose
// capacity budget cannot cover a message's cost drop it, which is the
// loss component.
package cluster

import (
	"cmp"
	"errors"
	"slices"
	"strings"

	"remo/internal/agg"
	"remo/internal/chaos"
	"remo/internal/detect"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/predict"
	"remo/internal/task"
	"remo/internal/trace"
	"remo/internal/transport"
)

// Config describes one emulated deployment.
type Config struct {
	// Sys supplies capacities and the cost model.
	Sys *model.System
	// Forest is the monitoring topology to deploy.
	Forest *plan.Forest
	// Demand is the monitoring workload (defines local values per node).
	Demand *task.Demand
	// Spec enables in-network aggregation for selected attributes (nil =
	// holistic).
	Spec *agg.Spec
	// Source produces ground-truth values. Defaults to BurstyWalk{}.
	Source ValueSource
	// Transport defaults to an in-process memory transport.
	Transport transport.Transport
	// Rounds is the number of collection rounds to run (must be > 0).
	Rounds int
	// Workers sizes the round engine's worker pool: 0 uses one worker
	// per available CPU, positive values are used as given, and -1
	// selects the legacy goroutine-per-node engine (useful as an
	// equivalence baseline; it allocates 2n goroutines per round).
	Workers int
	// Resolve maps alias attributes (reliability replicas) to their
	// originals; nil means identity.
	Resolve func(model.AttrID) model.AttrID
	// EnforceCapacity applies per-round capacity budgets; disable to
	// measure pure latency effects.
	EnforceCapacity bool
	// FailAt kills node n at the start of round FailAt[n]: it stops
	// sending and silently discards received messages from then on.
	// Legacy knob — folded into Chaos.CrashAt by NewMachine.
	FailAt map[model.NodeID]int
	// DropEvery drops every k-th message on the wire (0 disables),
	// modeling lossy links deterministically. Legacy knob — folded into
	// Chaos.DropEvery by NewMachine.
	DropEvery int
	// Chaos schedules fault injection (crashes, recoveries, message loss
	// and delay). Nil injects nothing beyond the legacy knobs above.
	Chaos *chaos.Config
	// Detect, when set, arms the collector-side failure detector: nodes
	// emit cost-exempt per-round heartbeats and the machine declares
	// silent nodes dead after the suspicion window.
	Detect *detect.Config
	// Observer, when set, receives every value the collector accepts
	// (alias-resolved), in canonical per-round order. It is called from
	// the coordinator goroutine only.
	Observer func(pair model.Pair, round int, value float64)
	// Trace, when set, records structured emulation events.
	Trace *trace.Recorder
	// FenceEpochs arms epoch fencing: every frame carries the epoch of
	// the plan it was composed under, and frames from older epochs are
	// rejected (counted in Result.StaleEpochFrames). A collector
	// restarted after a crash bumps the epoch, so pre-crash in-flight
	// frames cannot corrupt its recovered views. Off by default because
	// fencing also discards the one-round in-flight tail of every
	// topology swap, changing legacy session results.
	FenceEpochs bool
	// LeafBuffer bounds the per-node outgoing frame buffer (0 disables
	// buffering). When the collector is down — or a transport send fails
	// — nodes park up to this many frames instead of dropping them, shed
	// the oldest frame on overflow, and redeliver oldest-first once the
	// destination is reachable again.
	LeafBuffer int
	// Shards splits the collection tier across this many collector
	// shards (<= 1 keeps the single central collector). Each tree is
	// owned by exactly one shard, placed by the internal/shard
	// dispatcher; a root aggregation tier merges the per-shard partials
	// into the single Result. Sharded sessions ignore the
	// CollectorCrashAt/CollectorCrashProb chaos schedules — shard-level
	// outages use ShardCrashAt/ShardWindows instead.
	Shards int
	// ShardLease is the dispatcher's leadership lease length in rounds
	// (0 uses the shard package default).
	ShardLease int
	// SeedAssignment, when it names a valid shard for every tree in the
	// forest, is adopted verbatim as the initial tree→shard map — the
	// journal-recovery path that must rebuild the identical pre-crash
	// assignment. Otherwise the dispatcher places from scratch.
	SeedAssignment map[string]int
	// Predict arms forecast-driven traffic suppression: every leaf and
	// its collector keep bit-identical model replicas per (node,
	// attribute) pair, values within the spec's dead band are withheld
	// from the wire (a ~3-byte marker rides instead), and the collector
	// imputes them from its replica. Aliased and aggregated attributes
	// are exempt. Nil disables suppression (the default) and leaves the
	// session's traffic byte-identical to pre-suppression builds.
	Predict *predict.Spec
	// SeedModels seeds both ends' model replicas on a cold resume
	// (Monitor.ResumeMonitor): leaf and collector restart from the same
	// checkpointed snapshot, so they are in lockstep from round zero and
	// suppression resumes without waiting for the first periodic sync.
	SeedModels map[model.Pair]predict.Snapshot

	// delaySink receives chaos-delayed messages with their due round; set
	// by the machine so sendPhase can hand messages back for later
	// injection.
	delaySink func(due int, msg transport.Message)
	// epoch is the running plan epoch, stamped on every frame; bumped by
	// the machine on every Install and on collector resume.
	epoch uint32
	// keyEpochs, set only in sharded sessions, carries the per-tree plan
	// epoch: a shard resume or an orphan re-dispatch advances only the
	// affected trees' epochs, so fencing is scoped to the trees that
	// actually moved. Nil falls back to the session-wide epoch.
	keyEpochs map[string]uint32
	// collectorDown is latched by the machine while the central collector
	// is crashed, steering root nodes into their outgoing buffers.
	collectorDown bool
	// downKeys, set only in sharded sessions, marks the trees whose
	// owning shard is currently down (or which await re-dispatch), so
	// their root nodes buffer instead of feeding a dead shard. Nil falls
	// back to collectorDown.
	downKeys map[string]bool
}

// epochFor returns the plan epoch frames of the given tree must carry:
// the tree's own epoch in sharded sessions, the session-wide epoch
// otherwise.
func (c *Config) epochFor(key string) uint32 {
	if c.keyEpochs != nil {
		if e, ok := c.keyEpochs[key]; ok {
			return e
		}
	}
	return c.epoch
}

// keyDown reports whether frames for the given tree currently have no
// live collector behind them.
func (c *Config) keyDown(key string) bool {
	if c.downKeys != nil {
		return c.downKeys[key]
	}
	return c.collectorDown
}

// Result aggregates what the collector observed.
type Result struct {
	// Rounds actually run.
	Rounds int
	// DemandedPairs is the number of distinct node-attribute pairs to
	// collect (aliases folded onto their originals).
	DemandedPairs int
	// CoveredPairs is how many demanded pairs were delivered at least
	// once.
	CoveredPairs int
	// PercentCollected is delivered (pair, round) observations over
	// demanded ones, in percent. Piggybacked low-rate pairs count only
	// the rounds they are due.
	PercentCollected float64
	// AvgPercentError is the mean relative error between the collector's
	// view and ground truth over all demanded pairs and rounds, in
	// percent. Never-delivered pairs count as 100% error.
	AvgPercentError float64
	// AvgStaleness is the mean age (in rounds) of delivered views.
	AvgStaleness float64
	// MessagesSent counts update messages accepted by the transport.
	MessagesSent int
	// MessagesDropped counts messages lost to capacity, failures or link
	// drops.
	MessagesDropped int
	// ValuesDelivered counts attribute values received by the collector.
	ValuesDelivered int
	// ValuesObserved counts leaf observations of suppression-eligible
	// slots (prediction armed, holistic, unaliased). Zero when
	// Config.Predict is nil.
	ValuesObserved int
	// ValuesSuppressed counts observations withheld from the wire
	// because the shared forecast was within the attribute's dead band.
	// ValuesSuppressed <= ValuesObserved.
	ValuesSuppressed int
	// ValuesImputed counts suppressed slots the collector reconstructed
	// from its model replica.
	ValuesImputed int
	// ModelSyncs counts forced ground-truth re-syncs the collector
	// absorbed (both replicas reset and re-seed from the carried value).
	ModelSyncs int
	// MarkersLost counts suppression markers that died before
	// imputation: frames dropped on the wire or by budgets, fencing,
	// outage buffering (markers are stripped when a frame is parked),
	// and collector-side refusals when its replica cannot guarantee the
	// dead band. ValuesImputed + MarkersLost <= ValuesSuppressed.
	MarkersLost int
	// ImputeBandMax is the maximum |imputed − truth| / band ratio over
	// all imputations; <= 1 whenever the replicas stayed in lockstep,
	// which the sync/gap protocol guarantees. Zero when nothing was
	// imputed.
	ImputeBandMax float64
	// ErrorSeries is the average percentage error per round (warm-up
	// curves, convergence analysis).
	ErrorSeries []float64
	// StaleEpochFrames counts frames rejected by epoch fencing — values
	// composed under a plan epoch older than the receiver's.
	StaleEpochFrames int
	// FramesBuffered counts frames parked in node outgoing buffers
	// (collector outages and transport failures).
	FramesBuffered int
	// FramesShed counts buffered frames dropped oldest-first on buffer
	// overflow, plus buffers lost to node crashes and topology swaps.
	FramesShed int
	// FramesRedelivered counts buffered frames delivered after the fact.
	// FramesBuffered = FramesRedelivered + FramesShed + frames still
	// buffered when the session ended.
	FramesRedelivered int
	// Shards is the number of collector shards the session ran (0 or 1
	// for the classic single-collector tier). The fields below are zero
	// for single-collector sessions.
	Shards int
	// ShardsDown counts shards down when the session ended.
	ShardsDown int
	// OrphanedTrees counts trees that lost their owning shard to a shard
	// death, cumulatively across the session.
	OrphanedTrees int
	// TreesRedispatched counts orphaned trees re-homed onto surviving
	// shards. It trails OrphanedTrees only while orphans await a live
	// leaseholder.
	TreesRedispatched int
	// LeaderElections counts dispatcher leader changes.
	LeaderElections int
	// ShardWatermarks records, per shard, the last round the shard was
	// live and processed its trees (-1 = never). A lagging watermark is
	// how a dead shard degrades coverage accounting instead of blocking
	// the round.
	ShardWatermarks []int
}

// Errors returned by Run.
var (
	ErrNoRounds = errors.New("cluster: Rounds must be positive")
	ErrNoForest = errors.New("cluster: nil forest or system")
)

// membership is one node's role in one tree.
type membership struct {
	key    string
	tree   *plan.Tree
	parent model.NodeID
	local  []model.AttrID // attrs this node contributes to the tree
	period map[model.AttrID]int
	// compose is the reused backing array for this membership's outgoing
	// message. The round barrier makes reuse safe: a message composed in
	// round r is consumed (relayed or absorbed) before round r+1's send
	// phase rewrites the buffer. Chaos-delayed messages outlive the
	// round, so the machine's delay sink clones them.
	compose []transport.Value
	// composeSupp/composeSync are the reused suppression-marker sections
	// of the outgoing message (relayed markers plus this node's own),
	// under the same reuse discipline as compose.
	composeSupp []transport.Supp
	composeSync []transport.Supp
}

// leafPred is one leaf-side model replica. needSync forces the next
// due transmission to carry the ground truth with a reset marker —
// set when the replica is created, when the plan swaps, and when a
// frame carrying this attribute's markers is lost locally.
type leafPred struct {
	m        predict.Model
	needSync bool
}

// pendingFrame is one outgoing message parked in a node's buffer while
// its destination is unreachable. The payload is cloned off the
// membership's reused compose buffer because it outlives the round.
type pendingFrame struct {
	to     model.NodeID
	key    string
	round  int
	values []transport.Value
}

// nodeState is the per-node runtime state, owned by its goroutine.
type nodeState struct {
	id          model.NodeID
	capacity    float64
	memberships []membership
	// relay buffers child values per tree between rounds; relaySupp and
	// relaySync buffer the matching suppression/sync markers (nil maps
	// until the first marker arrives — suppression off costs nothing).
	relay     map[string][]transport.Value
	relaySupp map[string][]transport.Supp
	relaySync map[string][]transport.Supp
	// budget is the round's remaining capacity, shared by the receive
	// and send phases.
	budget float64
	sent   int
	drops  int
	// outbox holds frames awaiting redelivery, oldest first (see
	// Config.LeafBuffer).
	outbox []pendingFrame
	// stale counts inbound frames rejected by epoch fencing; buffered,
	// shed and redelivered account the outbox (see Result).
	stale       int
	buffered    int
	shed        int
	redelivered int
	// pred holds this node's model replicas by attribute (an attribute
	// lives in exactly one tree, so the map is membership-agnostic);
	// observed/suppressed/markersLost feed the Result suppression
	// counters.
	pred        map[model.AttrID]*leafPred
	observed    int
	suppressed  int
	markersLost int
}

// leafModel returns (creating on first use) the node's replica for
// attribute a. A fresh replica starts needing a sync — unless a cold
// resume seeded this pair, in which case both ends restart from the
// same snapshot and are already in lockstep.
func (st *nodeState) leafModel(cfg Config, a model.AttrID) *leafPred {
	lp, ok := st.pred[a]
	if ok {
		return lp
	}
	if st.pred == nil {
		st.pred = make(map[model.AttrID]*leafPred)
	}
	if sn, seeded := cfg.SeedModels[model.Pair{Node: st.id, Attr: a}]; seeded {
		lp = &leafPred{m: predict.FromSnapshot(sn)}
	} else {
		lp = &leafPred{m: cfg.Predict.New(a), needSync: true}
	}
	st.pred[a] = lp
	return lp
}

// loseMarkers accounts a frame's suppression markers dying with it and
// forces a re-sync for this node's own affected attributes (relayed
// markers belong to descendants, whose own periodic sync re-locks
// them). Sync markers are not counted lost — their carried value died
// too, so the collector replica simply never re-seeded — but losing
// one still desynchronizes this node's replica, hence the needSync.
func (st *nodeState) loseMarkers(supps, syncs []transport.Supp) {
	st.markersLost += len(supps)
	for _, e := range supps {
		if e.Node == st.id {
			if lp, ok := st.pred[e.Attr]; ok {
				lp.needSync = true
			}
		}
	}
	for _, e := range syncs {
		if e.Node == st.id {
			if lp, ok := st.pred[e.Attr]; ok {
				lp.needSync = true
			}
		}
	}
}

// Run executes a fixed-length emulation and returns the collector's
// measurements. It is a convenience wrapper over Machine for experiments
// with a static topology.
func Run(cfg Config) (Result, error) {
	if cfg.Rounds <= 0 {
		return Result{}, ErrNoRounds
	}
	m, err := NewMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = m.Close() }()
	if err := m.StepN(cfg.Rounds); err != nil {
		return Result{}, err
	}
	return m.Result(), nil
}

// buildStates prepares per-node runtime state from the plan.
func buildStates(cfg Config) []*nodeState {
	byID := make(map[model.NodeID]*nodeState)
	state := func(n model.NodeID) *nodeState {
		st, ok := byID[n]
		if !ok {
			st = &nodeState{
				id:       n,
				capacity: cfg.Sys.Capacity(n),
				relay:    make(map[string][]transport.Value),
			}
			byID[n] = st
		}
		return st
	}
	for _, t := range cfg.Forest.Trees {
		key := t.Attrs.Key()
		for _, n := range t.Members() {
			parent, _ := t.Parent(n)
			local := cfg.Demand.LocalAttrs(n, t.Attrs)
			period := make(map[model.AttrID]int, len(local))
			for _, a := range local {
				period[a] = weightPeriod(cfg.Demand.Weight(n, a))
			}
			st := state(n)
			st.memberships = append(st.memberships, membership{
				key:    key,
				tree:   t,
				parent: parent,
				local:  local,
				period: period,
			})
		}
	}
	states := make([]*nodeState, 0, len(byID))
	for _, st := range byID {
		slices.SortFunc(st.memberships, func(a, b membership) int {
			return strings.Compare(a.key, b.key)
		})
		states = append(states, st)
	}
	slices.SortFunc(states, func(a, b *nodeState) int { return cmp.Compare(a.id, b.id) })
	return states
}

// weightPeriod converts a piggyback weight to a reporting period: weight
// 1 reports every round, weight 0.5 every second round, etc.
func weightPeriod(w float64) int {
	if w >= 1 || w <= 0 {
		return 1
	}
	p := int(1/w + 0.5)
	if p < 1 {
		p = 1
	}
	return p
}

// dead reports whether the node has failed by the given round per the
// chaos crash/recover schedule (the legacy FailAt map is folded into it
// by NewMachine).
func (st *nodeState) dead(cfg Config, round int) bool {
	return cfg.Chaos.Crashed(st.id, round)
}

// receivePhase drains the node's inbox (messages sent last round),
// charging receive costs against this round's budget; over-budget
// messages are dropped with their payload.
func (st *nodeState) receivePhase(cfg Config, tr transport.Transport, round int) {
	st.budget = st.capacity
	if st.dead(cfg, round) {
		// Dead nodes silently discard input and lose their buffered relay
		// state — a recovered node restarts cold. Their outgoing buffer is
		// lost with them, as are any relayed suppression markers; the
		// node's own replicas must re-sync when it comes back.
		for _, msg := range tr.Drain(st.id) {
			st.markersLost += len(msg.Suppressed)
		}
		for k := range st.relay {
			st.relay[k] = nil
		}
		for k := range st.relaySupp {
			st.markersLost += len(st.relaySupp[k])
			st.relaySupp[k] = nil
		}
		for k := range st.relaySync {
			st.relaySync[k] = nil
		}
		for _, lp := range st.pred {
			lp.needSync = true
		}
		if len(st.outbox) > 0 {
			st.shed += len(st.outbox)
			st.outbox = nil
		}
		if cfg.Trace != nil && cfg.Chaos.JustCrashed(st.id, round) {
			cfg.Trace.Record(trace.Event{Round: round, Kind: trace.NodeDead, Node: st.id})
		}
		return
	}
	for _, msg := range tr.Drain(st.id) {
		if cfg.FenceEpochs && msg.Epoch < cfg.epochFor(msg.TreeKey) {
			// Frame composed under an older plan epoch: reject it so values
			// routed for a pre-swap (or pre-crash) topology cannot leak into
			// the current one.
			st.stale++
			st.markersLost += len(msg.Suppressed)
			continue
		}
		c := cfg.Sys.Cost.Message(len(msg.Values))
		if cfg.EnforceCapacity && c > st.budget {
			st.drops++
			st.markersLost += len(msg.Suppressed)
			if cfg.Trace != nil {
				cfg.Trace.Record(trace.Event{
					Round: round, Kind: trace.RecvDrop, Node: st.id,
					Peer: msg.From, TreeKey: msg.TreeKey, Values: len(msg.Values),
				})
			}
			continue
		}
		st.budget -= c
		st.relay[msg.TreeKey] = append(st.relay[msg.TreeKey], msg.Values...)
		if len(msg.Suppressed) > 0 {
			if st.relaySupp == nil {
				st.relaySupp = make(map[string][]transport.Supp)
			}
			st.relaySupp[msg.TreeKey] = append(st.relaySupp[msg.TreeKey], msg.Suppressed...)
		}
		if len(msg.Syncs) > 0 {
			if st.relaySync == nil {
				st.relaySync = make(map[string][]transport.Supp)
			}
			st.relaySync[msg.TreeKey] = append(st.relaySync[msg.TreeKey], msg.Syncs...)
		}
	}
}

// sendPhase emits one message per tree membership carrying fresh local
// values plus last round's relayed values, within the remaining budget.
// Buffered frames from earlier rounds are redelivered first, so an
// outage's backlog drains in order ahead of fresh data.
func (st *nodeState) sendPhase(cfg Config, tr transport.Transport, round int) {
	if st.dead(cfg, round) {
		return
	}
	st.drainOutbox(cfg, tr)
	for i := range st.memberships {
		m := &st.memberships[i]
		values := st.composeMessage(cfg, m, round)
		supps, syncs := m.composeSupp, m.composeSync
		if buf, ok := st.relay[m.key]; ok {
			st.relay[m.key] = buf[:0]
		}
		if buf, ok := st.relaySupp[m.key]; ok {
			st.relaySupp[m.key] = buf[:0]
		}
		if buf, ok := st.relaySync[m.key]; ok {
			st.relaySync[m.key] = buf[:0]
		}
		if cfg.LeafBuffer > 0 && cfg.keyDown(m.key) && m.parent == model.Central {
			// This tree's collector (the central one, or its owning shard)
			// is down: park the frame instead of feeding the void. Empty
			// frames carry nothing worth preserving. Markers are stripped —
			// imputation state cannot survive an outage, so the slots count
			// lost and the node re-syncs after the backlog drains.
			st.loseMarkers(supps, syncs)
			if len(values) > 0 {
				st.bufferFrame(cfg, m.parent, m.key, round, values)
			}
			continue
		}
		c := cfg.Sys.Cost.Message(len(values))
		if cfg.EnforceCapacity && c > st.budget {
			st.drops++
			st.loseMarkers(supps, syncs)
			st.traceDrop(cfg, m, round, len(values))
			continue
		}
		st.budget -= c
		st.sent++
		if cfg.Chaos.Drop(st.id, m.parent, round, st.sent) {
			st.drops++
			st.loseMarkers(supps, syncs)
			st.traceDrop(cfg, m, round, len(values))
			continue
		}
		msg := transport.Message{
			TreeKey:    m.key,
			From:       st.id,
			To:         m.parent,
			Epoch:      cfg.epochFor(m.key),
			Values:     values,
			Suppressed: supps,
			Syncs:      syncs,
		}
		if d := cfg.Chaos.Delay(st.id, m.parent, round, st.sent); d > 0 && cfg.delaySink != nil {
			cfg.delaySink(round+d, msg)
			if cfg.Trace != nil {
				cfg.Trace.Record(trace.Event{
					Round: round, Kind: trace.Delayed, Node: st.id,
					Peer: m.parent, TreeKey: m.key, Values: len(values),
				})
			}
			continue
		}
		err := tr.Send(msg)
		if err != nil {
			if cfg.LeafBuffer > 0 && len(values) > 0 {
				// Transport failure: keep the frame for redelivery. The send
				// attempt already consumed capacity, but it was never on the
				// wire, so it does not count as sent. Markers are stripped
				// like any parked frame's.
				st.sent--
				st.loseMarkers(supps, syncs)
				st.bufferFrame(cfg, m.parent, m.key, round, values)
				continue
			}
			st.drops++
			st.loseMarkers(supps, syncs)
			st.traceDrop(cfg, m, round, len(values))
			continue
		}
		if cfg.Trace != nil {
			cfg.Trace.Record(trace.Event{
				Round: round, Kind: trace.Send, Node: st.id,
				Peer: m.parent, TreeKey: m.key, Values: len(values),
			})
		}
	}
}

// bufferFrame parks one composed frame in the node's outgoing buffer,
// shedding the oldest frame when full. Payloads are cloned off the
// membership's reused compose buffer because they outlive the round.
func (st *nodeState) bufferFrame(cfg Config, to model.NodeID, key string, round int, values []transport.Value) {
	st.buffered++
	if len(st.outbox) >= cfg.LeafBuffer {
		st.shed++
		if cfg.Trace != nil {
			old := &st.outbox[0]
			cfg.Trace.Record(trace.Event{
				Round: round, Kind: trace.Shed, Node: st.id,
				Peer: old.to, TreeKey: old.key, Values: len(old.values),
			})
		}
		copy(st.outbox, st.outbox[1:])
		st.outbox = st.outbox[:len(st.outbox)-1]
	}
	st.outbox = append(st.outbox, pendingFrame{
		to:     to,
		key:    key,
		round:  round,
		values: append([]transport.Value(nil), values...),
	})
}

// drainOutbox redelivers buffered frames oldest-first within this
// round's remaining budget. Frames are re-stamped with the current plan
// epoch: their values are genuine (if stale) observations, so they must
// pass the fence a restarted collector raises against pre-crash
// in-flight traffic. Delivery stops at the first frame that cannot go
// out (destination down, budget exhausted, or send failure); order is
// preserved.
func (st *nodeState) drainOutbox(cfg Config, tr transport.Transport) {
	if len(st.outbox) == 0 {
		return
	}
	n := 0
	for i := range st.outbox {
		f := &st.outbox[i]
		if f.to == model.Central && cfg.keyDown(f.key) {
			break
		}
		c := cfg.Sys.Cost.Message(len(f.values))
		if cfg.EnforceCapacity && c > st.budget {
			break
		}
		err := tr.Send(transport.Message{
			TreeKey: f.key,
			From:    st.id,
			To:      f.to,
			Epoch:   cfg.epochFor(f.key),
			Values:  f.values,
		})
		if err != nil {
			break
		}
		st.budget -= c
		st.sent++
		st.redelivered++
		n++
	}
	if n == 0 {
		return
	}
	rest := len(st.outbox) - n
	copy(st.outbox, st.outbox[n:])
	for i := rest; i < len(st.outbox); i++ {
		st.outbox[i] = pendingFrame{} // release payload references
	}
	st.outbox = st.outbox[:rest]
}

// traceDrop records a failed send when tracing is on.
func (st *nodeState) traceDrop(cfg Config, m *membership, round, values int) {
	if cfg.Trace == nil {
		return
	}
	cfg.Trace.Record(trace.Event{
		Round: round, Kind: trace.SendDrop, Node: st.id,
		Peer: m.parent, TreeKey: m.key, Values: values,
	})
}

// composeMessage assembles the values a node forwards for one tree this
// round, applying the suppression protocol and in-network aggregation
// funnels. The returned slice is the membership's reused compose buffer
// (see membership.compose); it stays valid until this node's next send
// phase. As a side effect m.composeSupp/m.composeSync are rebuilt with
// the relayed markers plus this node's own.
//
// The replica-lockstep rule (predict package doc): on a sync the model
// resets and re-seeds from the observation, which also rides the wire
// with a sync marker; on a suppression the model advances with its own
// prediction — exactly what the collector imputes — and only a marker
// rides; otherwise the model advances with the observation, which rides
// plainly. Aliased attributes (the leaf observes the original's series
// under a different id) and aggregated attributes (values collapse
// in-network) are exempt.
func (st *nodeState) composeMessage(cfg Config, m *membership, round int) []transport.Value {
	values := append(m.compose[:0], st.relay[m.key]...)
	m.composeSupp = append(m.composeSupp[:0], st.relaySupp[m.key]...)
	m.composeSync = append(m.composeSync[:0], st.relaySync[m.key]...)
	for _, a := range m.local {
		if round%m.period[a] != 0 {
			continue // piggybacked metric not due this round
		}
		v := cfg.Source.Value(st.id, cfg.Resolve(a), round)
		if cfg.Predict != nil && cfg.Resolve(a) == a && cfg.Spec.KindOf(a) == agg.Holistic {
			st.observed++
			lp := st.leafModel(cfg, a)
			switch {
			case lp.needSync || cfg.Predict.SyncDue(st.id, round):
				lp.m.Reset()
				lp.m.Observe(v)
				lp.needSync = false
				m.composeSync = append(m.composeSync,
					transport.Supp{Node: st.id, Attr: a, Round: round})
			case lp.m.Ready() && cfg.Predict.Within(a, lp.m.Predict(), v):
				lp.m.Observe(lp.m.Predict())
				st.suppressed++
				m.composeSupp = append(m.composeSupp,
					transport.Supp{Node: st.id, Attr: a, Round: round})
				continue // value withheld; only the marker rides
			case lp.m.Ready():
				// Out-of-band while locked: the series shifted (a new
				// plateau). Re-sync both replicas onto the observation
				// instead of smoothing back in — a reset Holt re-locks from
				// two points, where smoothed convergence burns ~1/alpha
				// plain rounds per shift.
				lp.m.Reset()
				lp.m.Observe(v)
				m.composeSync = append(m.composeSync,
					transport.Supp{Node: st.id, Attr: a, Round: round})
			default:
				lp.m.Observe(v) // warm-up: advance in lockstep, value rides plainly
			}
		}
		values = append(values, transport.Value{
			Node:  st.id,
			Attr:  a,
			Round: round,
			Value: v,
		})
	}
	m.compose = values
	if cfg.Spec == nil {
		return values
	}
	return aggregate(cfg, st.id, values, round)
}

// aggregate applies per-attribute runtime aggregation to a message's
// values. Aggregated attributes collapse to a single value attributed to
// the aggregating node.
func aggregate(cfg Config, at model.NodeID, values []transport.Value, round int) []transport.Value {
	byAttr := make(map[model.AttrID][]transport.Value)
	var order []model.AttrID
	for _, v := range values {
		if _, seen := byAttr[v.Attr]; !seen {
			order = append(order, v.Attr)
		}
		byAttr[v.Attr] = append(byAttr[v.Attr], v)
	}
	model.SortAttrs(order)
	out := make([]transport.Value, 0, len(values))
	for _, a := range order {
		vs := byAttr[a]
		kind := cfg.Spec.KindOf(a)
		if kind == agg.Holistic {
			out = append(out, vs...)
			continue
		}
		raw := make([]float64, len(vs))
		oldest := vs[0].Round
		for i, v := range vs {
			raw[i] = v.Value
			if v.Round < oldest {
				oldest = v.Round
			}
		}
		for _, c := range agg.Combine(kind, cfg.Spec.K(a), raw) {
			out = append(out, transport.Value{Node: at, Attr: a, Round: oldest, Value: c})
		}
	}
	return out
}
