package cluster

import (
	"testing"

	"remo/internal/chaos"
	"remo/internal/detect"
	"remo/internal/model"
)

func TestChaosMachineDetectsCrash(t *testing.T) {
	sys, d, forest := deployEnv(t, 12, 3, 1e5)
	m, err := NewMachine(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 20, EnforceCapacity: true,
		Chaos:  &chaos.Config{CrashAt: map[model.NodeID]int{2: 3}},
		Detect: &detect.Config{SuspicionRounds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	if err := m.StepN(10); err != nil {
		t.Fatal(err)
	}
	vs := m.TakeVerdicts()
	if len(vs) != 1 {
		t.Fatalf("verdicts = %+v, want exactly one", vs)
	}
	v := vs[0]
	if v.Node != 2 || v.Recovered {
		t.Fatalf("verdict = %+v, want death of node 2", v)
	}
	// Crash at round 3 → last beat round 2 → declared when round-2 >= 2.
	if v.LastHeard != 2 || v.DeclaredAt != 4 {
		t.Fatalf("verdict = %+v, want LastHeard 2, DeclaredAt 4", v)
	}
	// Queue drained: a second take is empty.
	if vs := m.TakeVerdicts(); len(vs) != 0 {
		t.Fatalf("second TakeVerdicts = %+v", vs)
	}
	if m.Detector().Alive(2) {
		t.Fatal("node 2 still alive in detector view")
	}
}

func TestChaosMachineSeesRecovery(t *testing.T) {
	sys, d, forest := deployEnv(t, 12, 3, 1e5)
	m, err := NewMachine(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 20, EnforceCapacity: true,
		Chaos: &chaos.Config{
			CrashAt:   map[model.NodeID]int{2: 3},
			RecoverAt: map[model.NodeID]int{2: 8},
		},
		Detect: &detect.Config{SuspicionRounds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	if err := m.StepN(12); err != nil {
		t.Fatal(err)
	}
	vs := m.TakeVerdicts()
	if len(vs) != 2 {
		t.Fatalf("verdicts = %+v, want death then recovery", vs)
	}
	if vs[0].Node != 2 || vs[0].Recovered {
		t.Fatalf("first verdict = %+v, want death", vs[0])
	}
	if vs[1].Node != 2 || !vs[1].Recovered {
		t.Fatalf("second verdict = %+v, want recovery", vs[1])
	}
	// Recovery evidence is the round-8 heartbeat, seen at round 8.
	if vs[1].DeclaredAt != 8 {
		t.Fatalf("recovery at round %d, want 8", vs[1].DeclaredAt)
	}
	if !m.Detector().Alive(2) {
		t.Fatal("node 2 still dead after recovery")
	}
}

func TestChaosDropProbReducesDeliveries(t *testing.T) {
	sys, d, forest := deployEnv(t, 12, 3, 1e5)
	run := func(c *chaos.Config) Result {
		res, err := Run(Config{
			Sys: sys, Forest: forest, Demand: d,
			Rounds: 30, EnforceCapacity: true, Chaos: c,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil)
	lossy := run(&chaos.Config{DropProb: 0.3, Seed: 7})
	if lossy.ValuesDelivered >= clean.ValuesDelivered {
		t.Fatalf("30%% loss delivered %d values, clean run %d",
			lossy.ValuesDelivered, clean.ValuesDelivered)
	}
	if lossy.MessagesDropped == 0 {
		t.Fatal("lossy run recorded no drops")
	}
	// Determinism: the same seed reproduces the same outcome.
	again := run(&chaos.Config{DropProb: 0.3, Seed: 7})
	if again.ValuesDelivered != lossy.ValuesDelivered ||
		again.MessagesDropped != lossy.MessagesDropped {
		t.Fatalf("chaos run not reproducible: %+v vs %+v", again, lossy)
	}
}

func TestChaosDelayIncreasesStaleness(t *testing.T) {
	sys, d, forest := deployEnv(t, 12, 3, 1e5)
	run := func(c *chaos.Config) Result {
		res, err := Run(Config{
			Sys: sys, Forest: forest, Demand: d,
			Rounds: 30, EnforceCapacity: true, Chaos: c,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil)
	slow := run(&chaos.Config{DelayProb: 0.8, MaxDelayRounds: 3, Seed: 11})
	if slow.AvgStaleness <= clean.AvgStaleness {
		t.Fatalf("delayed run staleness %.3f not above clean %.3f",
			slow.AvgStaleness, clean.AvgStaleness)
	}
	// Delayed messages are late, not lost: coverage stays complete.
	if slow.CoveredPairs != slow.DemandedPairs {
		t.Fatalf("delay lost coverage: %d of %d", slow.CoveredPairs, slow.DemandedPairs)
	}
}

func TestChaosHeartbeatsAreCostExempt(t *testing.T) {
	sys, d, forest := deployEnv(t, 12, 3, 1e5)
	base, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 20, EnforceCapacity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	detecting, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 20, EnforceCapacity: true,
		Detect: &detect.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Arming detection must not perturb the measured deployment at all:
	// beats bypass budgets, delivery counters and the collector's views.
	if base.ValuesDelivered != detecting.ValuesDelivered ||
		base.MessagesSent != detecting.MessagesSent ||
		base.MessagesDropped != detecting.MessagesDropped ||
		base.PercentCollected != detecting.PercentCollected ||
		base.AvgPercentError != detecting.AvgPercentError {
		t.Fatalf("detection changed results:\nbase     %+v\ndetecting %+v", base, detecting)
	}
}

func TestChaosLegacyFailAtFoldsIntoSchedule(t *testing.T) {
	sys, d, forest := deployEnv(t, 12, 3, 1e5)
	legacy, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 20, EnforceCapacity: true,
		FailAt: map[model.NodeID]int{2: 3}, DropEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	unified, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 20, EnforceCapacity: true,
		Chaos: &chaos.Config{
			CrashAt:   map[model.NodeID]int{2: 3},
			DropEvery: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.ValuesDelivered != unified.ValuesDelivered ||
		legacy.MessagesSent != unified.MessagesSent ||
		legacy.MessagesDropped != unified.MessagesDropped ||
		legacy.CoveredPairs != unified.CoveredPairs ||
		legacy.AvgPercentError != unified.AvgPercentError {
		t.Fatalf("legacy knobs diverge from chaos schedule:\nlegacy  %+v\nunified %+v",
			legacy, unified)
	}
}
