package cluster

import (
	"sync"
	"testing"

	"remo/internal/agg"
	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
)

// starEnv builds a 1-attribute star over n nodes with ample capacity.
func starEnv(t *testing.T, n int) (*model.System, *task.Demand, *plan.Forest) {
	t.Helper()
	nodes := make([]model.Node, n)
	d := task.NewDemand()
	for i := range nodes {
		id := model.NodeID(i + 1)
		nodes[i] = model.Node{ID: id, Capacity: 1e6, Attrs: []model.AttrID{1}}
		d.Set(id, 1, 1)
	}
	sys, err := model.NewSystem(1e6, cost.Default(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	tr := plan.NewTree(model.NewAttrSet(1))
	for i := range nodes {
		parent := model.NodeID(1)
		if i == 0 {
			parent = model.Central
		}
		if err := tr.AddNode(model.NodeID(i+1), parent); err != nil {
			t.Fatal(err)
		}
	}
	f := plan.NewForest()
	f.Add(tr)
	return sys, d, f
}

func TestObserverSeesEveryDeliveredValue(t *testing.T) {
	sys, d, f := starEnv(t, 6)
	var mu sync.Mutex
	seen := make(map[model.Pair]int)
	res, err := Run(Config{
		Sys: sys, Forest: f, Demand: d, Rounds: 10,
		Observer: func(p model.Pair, round int, v float64) {
			mu.Lock()
			seen[p]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, c := range seen {
		total += c
	}
	if total != res.ValuesDelivered {
		t.Fatalf("observer saw %d values, collector counted %d", total, res.ValuesDelivered)
	}
	if len(seen) != 6 {
		t.Fatalf("observer saw %d pairs, want 6", len(seen))
	}
}

func TestAggregateErrorMeasuresAggregate(t *testing.T) {
	sys, d, f := starEnv(t, 5)
	spec := agg.NewSpec()
	spec.SetKind(1, agg.Max)

	// A constant source: the MAX aggregate is exact once delivered, so
	// the error must vanish after warm-up.
	src := ValueFunc(func(n model.NodeID, a model.AttrID, r int) float64 {
		return float64(n) * 10
	})
	res, err := Run(Config{
		Sys: sys, Forest: f, Demand: d, Rounds: 30, Spec: spec, Source: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DemandedPairs != 1 {
		t.Fatalf("aggregated demanded = %d, want 1", res.DemandedPairs)
	}
	if res.CoveredPairs != 1 {
		t.Fatalf("covered = %d", res.CoveredPairs)
	}
	// Only the first rounds (before the first delivery) contribute
	// error: avg over 30 rounds stays small.
	if res.AvgPercentError > 15 {
		t.Fatalf("aggregate error = %.2f%%, want ~warm-up only", res.AvgPercentError)
	}
}

func TestCentralCapacityDropsAtCollector(t *testing.T) {
	sys, d, f := starEnv(t, 6)
	// The root's message carries 6 values: C + 6a = 16 > 10, so the
	// collector drops every round.
	tight := sys.Clone()
	tight.CentralCapacity = 10
	res, err := Run(Config{
		Sys: tight, Forest: f, Demand: d, Rounds: 5, EnforceCapacity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredPairs != 0 {
		t.Fatalf("covered %d pairs through a starved collector", res.CoveredPairs)
	}
	if res.MessagesDropped == 0 {
		t.Fatal("no drops recorded at the collector")
	}
	if res.AvgPercentError < 99 {
		t.Fatalf("error = %.2f%%, want ~100%%", res.AvgPercentError)
	}
}

func TestWeightPeriod(t *testing.T) {
	tests := []struct {
		w    float64
		want int
	}{
		{1, 1},
		{0.5, 2},
		{0.25, 4},
		{0.34, 3},
		{0, 1},   // zero weight defends against bad input
		{1.5, 1}, // overweight clamps to every round
	}
	for _, tt := range tests {
		if got := weightPeriod(tt.w); got != tt.want {
			t.Errorf("weightPeriod(%v) = %d, want %d", tt.w, got, tt.want)
		}
	}
}

func TestPiggybackSkipsOffRounds(t *testing.T) {
	sys, _, f := starEnv(t, 3)
	d := task.NewDemand()
	for _, id := range sys.NodeIDs() {
		d.Set(id, 1, 0.25) // report every 4th round
	}
	res, err := Run(Config{Sys: sys, Forest: f, Demand: d, Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	// 20 rounds at period 4 = 5 due observations per pair; values
	// delivered per pair can be at most that (minus tail latency).
	maxExpected := 3 * 5
	if res.ValuesDelivered > maxExpected {
		t.Fatalf("delivered %d values, want <= %d (piggyback period)", res.ValuesDelivered, maxExpected)
	}
	if res.ValuesDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestErrorSeriesConverges(t *testing.T) {
	sys, d, f := starEnv(t, 5)
	src := ValueFunc(func(n model.NodeID, a model.AttrID, r int) float64 {
		return 100
	})
	res, err := Run(Config{Sys: sys, Forest: f, Demand: d, Rounds: 12, Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ErrorSeries) != 12 {
		t.Fatalf("series length = %d", len(res.ErrorSeries))
	}
	// Round 0: only the root's own value has reached the collector (its
	// message is absorbed the same round), so 4 of 5 pairs are still
	// missing -> 80% error.
	if res.ErrorSeries[0] < 79 || res.ErrorSeries[0] > 81 {
		t.Fatalf("round-0 error = %v, want ~80", res.ErrorSeries[0])
	}
	// With a constant signal the error vanishes once everything arrives.
	last := res.ErrorSeries[len(res.ErrorSeries)-1]
	if last > 1 {
		t.Fatalf("final error = %v, want ~0", last)
	}
	// The series never increases for a constant source.
	for i := 1; i < len(res.ErrorSeries); i++ {
		if res.ErrorSeries[i] > res.ErrorSeries[i-1]+1e-9 {
			t.Fatalf("series not monotone: %v", res.ErrorSeries)
		}
	}
}
