package cluster

import (
	"errors"
	"reflect"
	"testing"

	"remo/internal/agg"
	"remo/internal/core"
	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
	"remo/internal/transport"
)

// deployEnv plans a topology for n nodes all reporting nAttrs attributes
// and returns everything needed to emulate it.
func deployEnv(t *testing.T, n, nAttrs int, capacity float64) (*model.System, *task.Demand, *plan.Forest) {
	t.Helper()
	attrs := make([]model.AttrID, nAttrs)
	for i := range attrs {
		attrs[i] = model.AttrID(i + 1)
	}
	nodes := make([]model.Node, n)
	d := task.NewDemand()
	for i := range nodes {
		id := model.NodeID(i + 1)
		nodes[i] = model.Node{ID: id, Capacity: capacity, Attrs: attrs}
		for _, a := range attrs {
			d.Set(id, a, 1)
		}
	}
	sys, err := model.NewSystem(1e6, cost.Model{PerMessage: 10, PerValue: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewPlanner().Plan(sys, d)
	if err := res.Forest.Validate(d, sys, nil); err != nil {
		t.Fatal(err)
	}
	return sys, d, res.Forest
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); !errors.Is(err, ErrNoRounds) {
		t.Fatalf("error = %v, want ErrNoRounds", err)
	}
	if _, err := Run(Config{Rounds: 5}); !errors.Is(err, ErrNoForest) {
		t.Fatalf("error = %v, want ErrNoForest", err)
	}
}

func TestFullCoverageWithValidPlan(t *testing.T) {
	sys, d, forest := deployEnv(t, 12, 3, 1e5)
	res, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 20, EnforceCapacity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredPairs != res.DemandedPairs {
		t.Fatalf("covered %d of %d pairs", res.CoveredPairs, res.DemandedPairs)
	}
	if res.DemandedPairs != d.PairCount() {
		t.Fatalf("demanded = %d, want %d", res.DemandedPairs, d.PairCount())
	}
	if res.MessagesDropped != 0 {
		t.Fatalf("dropped %d messages with a valid plan", res.MessagesDropped)
	}
	if res.AvgPercentError > 50 {
		t.Fatalf("error %.1f%% too high for a healthy deployment", res.AvgPercentError)
	}
	if res.PercentCollected < 80 {
		t.Fatalf("collected %.1f%%, want most observations", res.PercentCollected)
	}
}

func TestDeterministicRuns(t *testing.T) {
	sys, d, forest := deployEnv(t, 10, 2, 1e5)
	run := func() Result {
		res, err := Run(Config{
			Sys: sys, Forest: forest, Demand: d,
			Rounds: 15, EnforceCapacity: true,
			Source: BurstyWalk{Seed: 7},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic results:\n%+v\n%+v", a, b)
	}
}

func TestDeeperTreesAreStaler(t *testing.T) {
	sys, d, _ := deployEnv(t, 8, 1, 1e6)
	star := plan.NewTree(model.NewAttrSet(1))
	chain := plan.NewTree(model.NewAttrSet(1))
	prev := model.Central
	for _, id := range sys.NodeIDs() {
		parent := model.NodeID(1)
		if id == 1 {
			parent = model.Central
		}
		if err := star.AddNode(id, parent); err != nil {
			t.Fatal(err)
		}
		if err := chain.AddNode(id, prev); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	run := func(tr *plan.Tree) Result {
		f := plan.NewForest()
		f.Add(tr)
		res, err := Run(Config{Sys: sys, Forest: f, Demand: d, Rounds: 30})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	starRes, chainRes := run(star), run(chain)
	if starRes.AvgStaleness >= chainRes.AvgStaleness {
		t.Fatalf("star staleness %.2f >= chain %.2f",
			starRes.AvgStaleness, chainRes.AvgStaleness)
	}
	if starRes.AvgPercentError >= chainRes.AvgPercentError {
		t.Fatalf("star error %.2f%% >= chain %.2f%%",
			starRes.AvgPercentError, chainRes.AvgPercentError)
	}
}

func TestCapacityEnforcementDropsOverload(t *testing.T) {
	// Build a chain whose root cannot afford its relay load, then run
	// with enforcement: messages must drop and coverage must suffer.
	nodes := make([]model.Node, 6)
	d := task.NewDemand()
	for i := range nodes {
		id := model.NodeID(i + 1)
		nodes[i] = model.Node{ID: id, Capacity: 24, Attrs: []model.AttrID{1}}
		d.Set(id, 1, 1)
	}
	sys, err := model.NewSystem(1e6, cost.Model{PerMessage: 10, PerValue: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	chain := plan.NewTree(model.NewAttrSet(1))
	prev := model.Central
	for _, id := range sys.NodeIDs() {
		if err := chain.AddNode(id, prev); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	f := plan.NewForest()
	f.Add(chain)
	res, err := Run(Config{Sys: sys, Forest: f, Demand: d, Rounds: 10, EnforceCapacity: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesDropped == 0 {
		t.Fatal("overloaded chain dropped nothing")
	}
	if res.CoveredPairs == res.DemandedPairs {
		t.Fatal("overloaded chain still covered everything")
	}
}

func TestNodeFailureLosesSubtree(t *testing.T) {
	sys, d, _ := deployEnv(t, 5, 1, 1e6)
	chain := plan.NewTree(model.NewAttrSet(1))
	prev := model.Central
	for _, id := range sys.NodeIDs() {
		if err := chain.AddNode(id, prev); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	f := plan.NewForest()
	f.Add(chain)
	// Node 2 dies at round 3: nodes 2..5 stop reaching the collector.
	res, err := Run(Config{
		Sys: sys, Forest: f, Demand: d, Rounds: 20,
		FailAt: map[model.NodeID]int{2: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := Run(Config{Sys: sys, Forest: f, Demand: d, Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPercentError <= healthy.AvgPercentError {
		t.Fatalf("failure error %.2f%% <= healthy %.2f%%",
			res.AvgPercentError, healthy.AvgPercentError)
	}
	if res.ValuesDelivered >= healthy.ValuesDelivered {
		t.Fatal("failed run delivered as many values as healthy run")
	}
}

func TestLinkDropsDegradeFreshness(t *testing.T) {
	sys, d, forest := deployEnv(t, 10, 2, 1e5)
	lossy, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d, Rounds: 20, DropEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(Config{Sys: sys, Forest: forest, Demand: d, Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.MessagesDropped == 0 {
		t.Fatal("DropEvery dropped nothing")
	}
	if lossy.AvgPercentError <= clean.AvgPercentError {
		t.Fatalf("lossy error %.2f%% <= clean %.2f%%",
			lossy.AvgPercentError, clean.AvgPercentError)
	}
}

func TestInNetworkAggregationShrinksTraffic(t *testing.T) {
	sys, d, forest := deployEnv(t, 10, 2, 1e5)
	spec := agg.NewSpec()
	spec.SetKind(1, agg.Max)
	spec.SetKind(2, agg.Max)
	aggRes, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d, Rounds: 20, Spec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	holRes, err := Run(Config{Sys: sys, Forest: forest, Demand: d, Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if aggRes.ValuesDelivered >= holRes.ValuesDelivered {
		t.Fatalf("aggregated delivered %d values, holistic %d",
			aggRes.ValuesDelivered, holRes.ValuesDelivered)
	}
	if aggRes.CoveredPairs == 0 {
		t.Fatal("aggregation covered nothing")
	}
}

func TestPiggybackedFrequenciesReduceDeliveries(t *testing.T) {
	sys, _, _ := deployEnv(t, 6, 2, 1e5)
	full := task.NewDemand()
	half := task.NewDemand()
	for _, id := range sys.NodeIDs() {
		full.Set(id, 1, 1)
		full.Set(id, 2, 1)
		half.Set(id, 1, 1)
		half.Set(id, 2, 0.5) // attr 2 piggybacks every other round
	}
	res := core.NewPlanner().Plan(sys, full)
	fullRes, err := Run(Config{Sys: sys, Forest: res.Forest, Demand: full, Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	halfRes, err := Run(Config{Sys: sys, Forest: res.Forest, Demand: half, Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if halfRes.ValuesDelivered >= fullRes.ValuesDelivered {
		t.Fatalf("half-rate delivered %d, full %d",
			halfRes.ValuesDelivered, fullRes.ValuesDelivered)
	}
	if halfRes.CoveredPairs != halfRes.DemandedPairs {
		t.Fatal("piggybacked pairs not covered")
	}
}

func TestRunOverTCPTransport(t *testing.T) {
	sys, d, forest := deployEnv(t, 6, 2, 1e5)
	tr, err := transport.NewTCP(sys.NodeIDs())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	res, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 10, Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	// TCP delivery is asynchronous; values may lag rounds, but the
	// deployment must function and cover pairs.
	if res.CoveredPairs < res.DemandedPairs/2 {
		t.Fatalf("TCP covered %d of %d", res.CoveredPairs, res.DemandedPairs)
	}
	if res.MessagesSent == 0 {
		t.Fatal("no messages sent over TCP")
	}
}

func TestAliasResolution(t *testing.T) {
	// Two pairs deliver the same underlying metric: attr 5 is an alias
	// of attr 1. The collector folds them into one demanded pair.
	nodes := []model.Node{{ID: 1, Capacity: 1e5, Attrs: []model.AttrID{1, 5}}}
	sys, err := model.NewSystem(1e6, cost.Default(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	d := task.NewDemand()
	d.Set(1, 1, 1)
	d.Set(1, 5, 1)
	f := plan.NewForest()
	t1 := plan.NewTree(model.NewAttrSet(1))
	if err := t1.AddNode(1, model.Central); err != nil {
		t.Fatal(err)
	}
	t2 := plan.NewTree(model.NewAttrSet(5))
	if err := t2.AddNode(1, model.Central); err != nil {
		t.Fatal(err)
	}
	f.Add(t1)
	f.Add(t2)

	res, err := Run(Config{
		Sys: sys, Forest: f, Demand: d, Rounds: 10,
		Resolve: func(a model.AttrID) model.AttrID {
			if a == 5 {
				return 1
			}
			return a
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DemandedPairs != 1 {
		t.Fatalf("demanded = %d, want 1 (alias folded)", res.DemandedPairs)
	}
	if res.CoveredPairs != 1 {
		t.Fatalf("covered = %d, want 1", res.CoveredPairs)
	}
}

func TestBurstyWalkDeterministicAndPositive(t *testing.T) {
	w := BurstyWalk{Seed: 3}
	for r := 0; r < 50; r++ {
		v := w.Value(1, 1, r)
		if v <= 0 {
			t.Fatalf("value(r=%d) = %v, want > 0", r, v)
		}
		if v != w.Value(1, 1, r) {
			t.Fatal("BurstyWalk not deterministic")
		}
	}
	if w.Value(1, 1, 0) == w.Value(2, 1, 0) && w.Value(1, 1, 0) == w.Value(1, 2, 0) {
		t.Fatal("BurstyWalk values suspiciously uniform")
	}
}
