package cluster

import (
	"runtime"
	"sync"
)

// engine is the round engine's persistent worker pool. The previous
// engine spawned one goroutine per node per phase — at n nodes and two
// phases that is 2n goroutine creations per round, which dominates
// scheduler work at Fig. 6 scales. The pool keeps a fixed set of
// workers alive for the machine's lifetime and shards the state slice
// across them, preserving the phase-barrier semantics (forEach returns
// only when every shard finished).
type engine struct {
	workers int
	tasks   chan func()
}

// newEngine starts a pool with the given number of workers (at least 1).
func newEngine(workers int) *engine {
	if workers < 1 {
		workers = 1
	}
	e := &engine{workers: workers, tasks: make(chan func(), workers)}
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

func (e *engine) worker() {
	for fn := range e.tasks {
		fn()
	}
}

// forEach applies fn to every state, sharding contiguously across the
// pool, and returns once all calls completed — the phase barrier. With
// one worker (or one state) it runs inline, paying no synchronization.
func (e *engine) forEach(states []*nodeState, fn func(*nodeState)) {
	n := len(states)
	w := e.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for _, st := range states {
			fn(st)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		shard := states[i*n/w : (i+1)*n/w]
		e.tasks <- func() {
			defer wg.Done()
			for _, st := range shard {
				fn(st)
			}
		}
	}
	wg.Wait()
}

// close stops the workers. No forEach may be in flight or follow.
func (e *engine) close() {
	close(e.tasks)
}

// resolveWorkers maps the Config.Workers knob to a pool size: 0 means
// one worker per available CPU, positive values are used as given, and
// negative values select the legacy goroutine-per-node engine (no
// pool).
func resolveWorkers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}
