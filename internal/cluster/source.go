package cluster

import (
	"math"

	"remo/internal/model"
)

// ValueSource produces the ground-truth attribute values the emulated
// nodes observe. Implementations must be safe for concurrent use: node
// goroutines query values in parallel.
type ValueSource interface {
	// Value returns the value of attribute a observed at node n during
	// collection round round.
	Value(n model.NodeID, a model.AttrID, round int) float64
}

// ValueFunc adapts a function to the ValueSource interface.
type ValueFunc func(n model.NodeID, a model.AttrID, round int) float64

// Value implements ValueSource.
func (f ValueFunc) Value(n model.NodeID, a model.AttrID, round int) float64 {
	return f(n, a, round)
}

// BurstyWalk is a deterministic, stateless value generator modeling the
// bursty metric dynamics of stream-processing workloads (§1): each pair
// has a stable baseline, a smooth periodic drift, and occasional load
// spikes. Being a pure function of (node, attr, round), it is trivially
// concurrent-safe and lets the collector compute ground truth for any
// round without bookkeeping.
type BurstyWalk struct {
	// Seed decorrelates experiments.
	Seed uint64
	// Amplitude scales the periodic drift relative to the baseline
	// (default 0.3).
	Amplitude float64
	// SpikeFactor scales burst magnitude relative to the baseline
	// (default 0.5); bursts last spells of spikePeriod rounds.
	SpikeFactor float64
}

const spikePeriod = 8

// Value implements ValueSource.
func (w BurstyWalk) Value(n model.NodeID, a model.AttrID, round int) float64 {
	amp := w.Amplitude
	if amp == 0 {
		amp = 0.3
	}
	spike := w.SpikeFactor
	if spike == 0 {
		spike = 0.5
	}
	base := 50 + float64(mix(w.Seed, uint64(n), uint64(a), 0)%100)
	phase := float64(mix(w.Seed, uint64(n), uint64(a), 1) % 360)
	period := 20 + float64(mix(w.Seed, uint64(n), uint64(a), 2)%20)
	v := base * (1 + amp*math.Sin(2*math.Pi*(float64(round)+phase)/period))
	// Bursts: roughly one spell in four is spiking for this pair.
	if mix(w.Seed, uint64(n), uint64(a), uint64(round/spikePeriod))%4 == 0 {
		v *= 1 + spike
	}
	return v
}

// UtilWalk is a deterministic, stateless value generator modeling
// machine utilization series (CPU, memory, queue depth): long plateaus
// with a slight linear drift, punctuated by occasional level shifts
// when the hosted workload changes. Unlike BurstyWalk's fast sinusoids,
// plateau dynamics are what resource-utilization forecasting exploits
// (Tuor et al.): a linear-trend model tracks each segment almost
// exactly, so dead-band suppression elides most transmissions even at
// tight error bounds. Pure function of (node, attr, round) — trivially
// concurrent-safe, and the collector can compute ground truth for any
// round without bookkeeping.
type UtilWalk struct {
	// Seed decorrelates experiments.
	Seed uint64
	// Drift scales the within-plateau slope relative to the baseline per
	// round (default 0.001 — a 0.1% creep per round).
	Drift float64
}

// Value implements ValueSource. Each pair partitions time into
// segments of 30–79 rounds; a segment holds a level drawn from the
// pair's hash plus a small linear drift across the segment.
func (w UtilWalk) Value(n model.NodeID, a model.AttrID, round int) float64 {
	drift := w.Drift
	if drift == 0 {
		drift = 0.001
	}
	// Segment boundaries are laid on a per-pair grid so segment lookup
	// stays O(1): segment length is fixed per pair in [30, 80).
	segLen := 30 + int(mix(w.Seed, uint64(n), uint64(a), 0)%50)
	seg := round / segLen
	base := 20 + float64(mix(w.Seed, uint64(n), uint64(a), 1)%80)
	level := base * (0.6 + 0.8*float64(mix(w.Seed, uint64(n), uint64(a), 3+uint64(seg))%1000)/1000)
	slope := drift * base * (float64(mix(w.Seed, uint64(n), uint64(a), 2)%200)/100 - 1)
	return level + slope*float64(round-seg*segLen)
}

// mix is a splitmix64-style hash combining the inputs.
func mix(vals ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vals {
		h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
	}
	return h
}
