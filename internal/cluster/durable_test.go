package cluster

import (
	"testing"

	"remo/internal/chaos"
	"remo/internal/model"
	"remo/internal/store"
	"remo/internal/transport"
)

// TestEpochFenceDropsStaleFrames injects a frame stamped with a
// pre-swap epoch straight into the collector's mailbox and checks the
// fence rejects it without touching the views.
func TestEpochFenceDropsStaleFrames(t *testing.T) {
	sys, d, forest := deployEnv(t, 6, 1, 1e5)
	m, err := NewMachine(Config{
		Sys: sys, Forest: forest, Demand: d,
		FenceEpochs: true, Source: BurstyWalk{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	// Bump the epoch the way a plan install does, before any traffic is
	// in flight, so the stale count below is exactly the injected frame.
	m.Install(forest, d)
	if m.Epoch() != 2 {
		t.Fatalf("epoch = %d after install, want 2", m.Epoch())
	}

	// A pre-install frame arrives late. It must be fenced, not absorbed.
	delivered := m.Result().ValuesDelivered
	if err := m.tr.Send(transport.Message{
		From: 1, To: model.Central, Epoch: 1,
		Values: []transport.Value{{Node: 1, Attr: 1, Round: 2, Value: 1e9}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if res.StaleEpochFrames != 1 {
		t.Fatalf("StaleEpochFrames = %d, want 1", res.StaleEpochFrames)
	}
	if v, ok := findView(m, model.Pair{Node: 1, Attr: 1}); ok && v == 1e9 {
		t.Fatal("stale frame's value reached the collector view")
	}
	if res.ValuesDelivered <= delivered {
		t.Fatal("current-epoch traffic stopped flowing")
	}

	// Without fencing the same frame is absorbed (legacy behavior).
	m2, err := NewMachine(Config{
		Sys: sys, Forest: forest, Demand: d, Source: BurstyWalk{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m2.Close() }()
	m2.Install(forest, d)
	if err := m2.tr.Send(transport.Message{
		From: 1, To: model.Central, Epoch: 1,
		Values: []transport.Value{{Node: 1, Attr: 1, Round: 0, Value: 7}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m2.Step(); err != nil {
		t.Fatal(err)
	}
	if got := m2.Result().StaleEpochFrames; got != 0 {
		t.Fatalf("unfenced machine counted %d stale frames", got)
	}
}

// TestCollectorCrashBuffersAndResumes drives the full outage cycle at
// the machine level: crash latch, leaf-side buffering while the
// collector is down, resume with an epoch bump, and redelivery of the
// buffered frames.
func TestCollectorCrashBuffersAndResumes(t *testing.T) {
	sys, d, forest := deployEnv(t, 8, 1, 1e5)
	m, err := NewMachine(Config{
		Sys: sys, Forest: forest, Demand: d,
		FenceEpochs: true, LeafBuffer: 64,
		Chaos:  &chaos.Config{CollectorCrashAt: 4},
		Source: BurstyWalk{Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	if err := m.StepN(4); err != nil {
		t.Fatal(err)
	}
	if m.CollectorDown() {
		t.Fatal("collector down before its crash round")
	}
	deliveredBefore := m.Result().ValuesDelivered
	if err := m.StepN(3); err != nil { // rounds 4-6: outage
		t.Fatal(err)
	}
	if !m.CollectorDown() {
		t.Fatal("collector not down after crash round")
	}
	mid := m.Result()
	if mid.ValuesDelivered != deliveredBefore {
		t.Fatalf("dead collector absorbed values: %d -> %d", deliveredBefore, mid.ValuesDelivered)
	}
	if m.BufferedFrames() == 0 || mid.FramesBuffered == 0 {
		t.Fatal("no frames buffered during the outage")
	}
	if mid.FramesRedelivered != 0 {
		t.Fatalf("redelivered %d frames while the collector was down", mid.FramesRedelivered)
	}
	if len(mid.ErrorSeries) != 7 {
		t.Fatalf("error series has %d entries over 7 rounds", len(mid.ErrorSeries))
	}

	epochBefore := m.Epoch()
	m.ResumeCollector(ResumeState{Epoch: epochBefore, Repo: store.New(0)})
	if m.CollectorDown() {
		t.Fatal("collector still down after resume")
	}
	if m.Epoch() <= epochBefore {
		t.Fatalf("resume did not advance the epoch: %d -> %d", epochBefore, m.Epoch())
	}
	if err := m.StepN(5); err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if res.FramesRedelivered == 0 {
		t.Fatal("buffered frames never redelivered after resume")
	}
	if res.ValuesDelivered <= deliveredBefore {
		t.Fatal("no values delivered after resume")
	}
	if res.StaleEpochFrames < 0 {
		t.Fatalf("negative stale counter %d", res.StaleEpochFrames)
	}
	// Conservation: every buffered frame was redelivered, shed, or is
	// still parked.
	if res.FramesRedelivered+res.FramesShed+m.BufferedFrames() != res.FramesBuffered {
		t.Fatalf("frame conservation violated: %d redelivered + %d shed + %d parked != %d buffered",
			res.FramesRedelivered, res.FramesShed, m.BufferedFrames(), res.FramesBuffered)
	}
}

// TestLeafBufferShedsOldest bounds the outage buffers: with a tiny
// LeafBuffer and a long outage, old frames are shed rather than
// growing the buffer without bound.
func TestLeafBufferShedsOldest(t *testing.T) {
	sys, d, forest := deployEnv(t, 6, 1, 1e5)
	m, err := NewMachine(Config{
		Sys: sys, Forest: forest, Demand: d,
		FenceEpochs: true, LeafBuffer: 2,
		Chaos:  &chaos.Config{CollectorCrashAt: 2},
		Source: BurstyWalk{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if err := m.StepN(12); err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if res.FramesShed == 0 {
		t.Fatalf("no shedding with buffer 2 over a 10-round outage: %+v", res)
	}
	if m.BufferedFrames() > 2*len(sys.NodeIDs()) {
		t.Fatalf("%d frames parked, want <= %d (LeafBuffer per node)",
			m.BufferedFrames(), 2*len(sys.NodeIDs()))
	}
	if res.FramesRedelivered+res.FramesShed+m.BufferedFrames() != res.FramesBuffered {
		t.Fatalf("frame conservation violated: %+v with %d parked", res, m.BufferedFrames())
	}
}

// TestResumeCollectorAdoptsNewerEpoch covers the cold-restart handoff:
// the journal may carry a higher epoch than the freshly booted machine,
// and the resume must fence everything below the recovered epoch.
func TestResumeCollectorAdoptsNewerEpoch(t *testing.T) {
	sys, d, forest := deployEnv(t, 4, 1, 1e5)
	m, err := NewMachine(Config{
		Sys: sys, Forest: forest, Demand: d, FenceEpochs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	repo := store.New(0)
	repo.Observe(model.Pair{Node: 1, Attr: 1}, 7, 3.5)
	m.ResumeCollector(ResumeState{Epoch: 9, Repo: repo, Dead: map[model.NodeID]int{2: 5}})
	if m.Epoch() != 10 {
		t.Fatalf("epoch = %d, want recovered 9 + 1", m.Epoch())
	}
	// The recovered store seeds the views (clamped below the machine's
	// round clock, which is 0 here, so staleness stays representable).
	if _, ok := findView(m, model.Pair{Node: 1, Attr: 1}); !ok {
		t.Fatal("recovered sample did not seed the collector view")
	}
	if err := m.StepN(2); err != nil {
		t.Fatal(err)
	}
	if err := verifyResultSane(m.Result()); err != nil {
		t.Fatal(err)
	}
}

// verifyResultSane spot-checks the invariants verify.Result enforces,
// without importing it (the verify package depends on cluster).
func verifyResultSane(res Result) error {
	switch {
	case res.AvgStaleness < 0:
		return errNegative("staleness")
	case res.StaleEpochFrames < 0, res.FramesBuffered < 0, res.FramesShed < 0, res.FramesRedelivered < 0:
		return errNegative("durability counter")
	case res.FramesRedelivered+res.FramesShed > res.FramesBuffered:
		return errNegative("frame conservation")
	case len(res.ErrorSeries) != res.Rounds:
		return errNegative("error series length")
	}
	return nil
}

type errNegative string

func (e errNegative) Error() string { return "invariant violated: " + string(e) }
