package cluster

import (
	"reflect"
	"testing"

	"remo/internal/agg"
	"remo/internal/chaos"
	"remo/internal/core"
	"remo/internal/cost"
	"remo/internal/detect"
	"remo/internal/model"
	"remo/internal/transport"
	"remo/internal/workload"
)

// equivCase is one seeded workload for the engine-equivalence proof:
// the worker-pool round engine and the legacy goroutine-per-node engine
// must produce bit-identical results (delivered values, drops, coverage,
// error series) on every one of them.
type equivCase struct {
	name         string
	nodes, attrs int
	capLo, capHi float64
	seed         int64
	rounds       int
	chaos        *chaos.Config
	detect       bool
	spec         *agg.Spec
}

func equivCases() []equivCase {
	sumSpec := agg.NewSpec()
	sumSpec.SetKind(1, agg.Sum)
	return []equivCase{
		{name: "ample", nodes: 20, attrs: 10, capLo: 500, capHi: 900, seed: 1, rounds: 12},
		{name: "tight", nodes: 40, attrs: 20, capLo: 40, capHi: 90, seed: 2, rounds: 12},
		{name: "drop-every", nodes: 30, attrs: 15, capLo: 200, capHi: 400, seed: 3, rounds: 12,
			chaos: &chaos.Config{DropEvery: 7}},
		{name: "crash-recover", nodes: 25, attrs: 10, capLo: 200, capHi: 400, seed: 4, rounds: 16,
			chaos: &chaos.Config{
				CrashAt:   map[model.NodeID]int{3: 4, 7: 6},
				RecoverAt: map[model.NodeID]int{3: 10},
			},
			detect: true},
		{name: "drop-prob", nodes: 30, attrs: 12, capLo: 200, capHi: 400, seed: 5, rounds: 12,
			chaos: &chaos.Config{DropProb: 0.1, Seed: 11}},
		{name: "delay", nodes: 30, attrs: 12, capLo: 200, capHi: 400, seed: 6, rounds: 14,
			chaos: &chaos.Config{DelayProb: 0.25, MaxDelayRounds: 3, Seed: 12}},
		{name: "mixed-chaos", nodes: 50, attrs: 10, capLo: 150, capHi: 300, seed: 7, rounds: 16,
			chaos: &chaos.Config{
				CrashAt:  map[model.NodeID]int{5: 5},
				DropProb: 0.05, DelayProb: 0.1, MaxDelayRounds: 2, Seed: 13,
			},
			detect: true},
		{name: "very-tight", nodes: 35, attrs: 14, capLo: 25, capHi: 60, seed: 8, rounds: 12},
		{name: "aggregated", nodes: 24, attrs: 10, capLo: 200, capHi: 400, seed: 9, rounds: 12,
			spec: sumSpec},
		{name: "larger", nodes: 60, attrs: 20, capLo: 150, capHi: 400, seed: 10, rounds: 10},
		{name: "one-node-trees", nodes: 12, attrs: 4, capLo: 600, capHi: 900, seed: 14, rounds: 8},
		{name: "fig6a-small", nodes: 80, attrs: 30, capLo: 150, capHi: 400, seed: 15, rounds: 8},
	}
}

// equivConfig realizes a case as a cluster config (without a transport).
func (ec equivCase) config(tb testing.TB) Config {
	tb.Helper()
	sys, err := workload.System(workload.SystemConfig{
		Nodes: ec.nodes, Attrs: ec.attrs, CapacityLo: ec.capLo, CapacityHi: ec.capHi,
		CentralCapacity: float64(ec.nodes) * 12,
		Cost:            cost.Model{PerMessage: 10, PerValue: 1},
		Seed:            ec.seed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tasks := workload.Tasks(sys, workload.TaskConfig{
		Count: 3 * ec.attrs, AttrsPerTask: 3, NodesPerTask: ec.nodes / 4, Seed: ec.seed + 100,
	})
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		tb.Fatal(err)
	}
	res := core.NewPlanner(core.WithSpec(ec.spec)).Plan(sys, d)
	cfg := Config{
		Sys: sys, Forest: res.Forest, Demand: d, Spec: ec.spec,
		Rounds: ec.rounds, EnforceCapacity: true,
		Source: BurstyWalk{Seed: uint64(ec.seed)},
		Chaos:  ec.chaos,
	}
	if ec.detect {
		cfg.Detect = &detect.Config{}
	}
	return cfg
}

// TestEngineEquivalence proves the worker-pool engine bit-identical to
// the legacy goroutine-per-node engine over the memory transport on
// every seeded workload, chaos included.
func TestEngineEquivalence(t *testing.T) {
	for _, ec := range equivCases() {
		t.Run(ec.name, func(t *testing.T) {
			base := ec.config(t)

			legacy := base
			legacy.Workers = -1
			want, err := Run(legacy)
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{0, 1, 3} {
				fast := base
				fast.Workers = workers
				got, err := Run(fast)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d diverged from legacy engine:\ngot  %+v\nwant %+v",
						workers, got, want)
				}
			}
		})
	}
}

// TestEngineEquivalenceAcrossInstall proves the engines also agree when
// the topology and demand are swapped mid-run (the adaptation path:
// relay handoff, counter preservation, collector retargeting).
func TestEngineEquivalenceAcrossInstall(t *testing.T) {
	run := func(workers int) Result {
		ec := equivCase{nodes: 20, attrs: 8, capLo: 200, capHi: 400, seed: 21, rounds: 16}
		cfg := ec.config(t)
		cfg.Workers = workers
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = m.Close() }()
		if err := m.StepN(6); err != nil {
			t.Fatal(err)
		}
		// Grow the demand with a fresh attribute on every node, replan,
		// and install the new topology while values keep flowing.
		nd := cfg.Demand.Clone()
		for _, id := range cfg.Sys.NodeIDs() {
			nd.Set(id, model.AttrID(997), 1)
		}
		res := core.NewPlanner().Plan(cfg.Sys, nd)
		m.Install(res.Forest, nd)
		if err := m.StepN(10); err != nil {
			t.Fatal(err)
		}
		return m.Result()
	}
	want := run(-1)
	for _, workers := range []int{0, 2} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged across Install:\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestTransportEquivalence proves the batched TCP write path delivers
// bit-identical results to both the unbatched TCP path and the memory
// transport: coalescing changes syscall counts, never payloads or
// traffic accounting.
func TestTransportEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	cases := []equivCase{
		{name: "plain", nodes: 16, attrs: 8, capLo: 300, capHi: 600, seed: 31, rounds: 8},
		{name: "tight", nodes: 20, attrs: 10, capLo: 60, capHi: 120, seed: 32, rounds: 8},
		{name: "chaos", nodes: 16, attrs: 8, capLo: 300, capHi: 600, seed: 33, rounds: 10,
			chaos: &chaos.Config{
				CrashAt:  map[model.NodeID]int{2: 3},
				DropProb: 0.05, DelayProb: 0.1, Seed: 41,
			},
			detect: true},
	}
	for _, ec := range cases {
		t.Run(ec.name, func(t *testing.T) {
			base := ec.config(t)
			want, err := Run(base) // memory transport
			if err != nil {
				t.Fatal(err)
			}

			runTCP := func(batch int) Result {
				opts := transport.TCPOptions{BatchBytes: batch}
				tr, err := transport.NewTCPWithOptions(base.Sys.NodeIDs(), opts)
				if err != nil {
					t.Fatal(err)
				}
				defer func() { _ = tr.Close() }()
				cfg := base
				cfg.Transport = tr
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}

			batched := runTCP(0) // default watermark
			direct := runTCP(-1) // batching disabled
			tiny := runTCP(128)  // watermark forces mid-round flushes
			for _, got := range []struct {
				name string
				res  Result
			}{{"batched", batched}, {"direct", direct}, {"tiny-watermark", tiny}} {
				if !reflect.DeepEqual(got.res, want) {
					t.Fatalf("TCP %s diverged from memory transport:\ngot  %+v\nwant %+v",
						got.name, got.res, want)
				}
			}
		})
	}
}
