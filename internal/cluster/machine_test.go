package cluster

import (
	"testing"

	"remo/internal/core"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
)

func TestMachineStepMatchesRun(t *testing.T) {
	sys, d, forest := deployEnv(t, 10, 2, 1e5)
	cfg := Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 15, EnforceCapacity: true, Source: BurstyWalk{Seed: 4},
	}
	viaRun, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if err := m.StepN(15); err != nil {
		t.Fatal(err)
	}
	viaMachine := m.Result()
	if viaRun.ValuesDelivered != viaMachine.ValuesDelivered ||
		viaRun.CoveredPairs != viaMachine.CoveredPairs ||
		viaRun.AvgPercentError != viaMachine.AvgPercentError {
		t.Fatalf("Run %+v != Machine %+v", viaRun, viaMachine)
	}
}

func TestMachineValidation(t *testing.T) {
	if _, err := NewMachine(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	sys, d, forest := deployEnv(t, 4, 1, 1e5)
	m, err := NewMachine(Config{Sys: sys, Forest: forest, Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err == nil {
		t.Fatal("Step on closed machine succeeded")
	}
}

func TestMachineInstallRewiresAndPreservesCounters(t *testing.T) {
	sys, d, forest := deployEnv(t, 8, 1, 1e5)
	m, err := NewMachine(Config{Sys: sys, Forest: forest, Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if err := m.StepN(5); err != nil {
		t.Fatal(err)
	}
	sentBefore := m.Result().MessagesSent
	if sentBefore == 0 {
		t.Fatal("no traffic before install")
	}

	// Grow the demand with a second attribute and install the new plan.
	nd := d.Clone()
	for _, id := range sys.NodeIDs() {
		nd.Set(id, 2, 1)
	}
	res := core.NewPlanner().Plan(sys, nd)
	m.Install(res.Forest, nd)
	if err := m.StepN(5); err != nil {
		t.Fatal(err)
	}
	out := m.Result()
	if out.MessagesSent <= sentBefore {
		t.Fatalf("sent counter lost across install: %d <= %d", out.MessagesSent, sentBefore)
	}
	if out.DemandedPairs != nd.PairCount() {
		t.Fatalf("demanded = %d, want %d", out.DemandedPairs, nd.PairCount())
	}
	// New attribute's pairs were collected post-install.
	covered := 0
	for _, id := range sys.NodeIDs() {
		if _, ok := findView(m, model.Pair{Node: id, Attr: 2}); ok {
			covered++
		}
	}
	if covered == 0 {
		t.Fatal("no new-attribute pairs delivered after install")
	}
}

// findView peeks into the machine's collector views for tests.
func findView(m *Machine, p model.Pair) (float64, bool) {
	v, ok := m.coll.lookupView(p)
	return v.Value, ok
}

func TestMachineInstallShrinkingDemand(t *testing.T) {
	sys, d, forest := deployEnv(t, 6, 2, 1e5)
	m, err := NewMachine(Config{Sys: sys, Forest: forest, Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if err := m.StepN(4); err != nil {
		t.Fatal(err)
	}

	// Drop attr 2 entirely; rebuild a single-attribute plan.
	nd := task.NewDemand()
	for _, id := range sys.NodeIDs() {
		nd.Set(id, 1, 1)
	}
	res := core.NewPlanner().Plan(sys, nd)
	m.Install(res.Forest, nd)
	if err := m.StepN(4); err != nil {
		t.Fatal(err)
	}
	out := m.Result()
	if out.DemandedPairs != 6 {
		t.Fatalf("demanded = %d, want 6", out.DemandedPairs)
	}
	if out.CoveredPairs != 6 {
		t.Fatalf("covered = %d, want 6", out.CoveredPairs)
	}
}

func TestMachineInstallEmptyForest(t *testing.T) {
	sys, d, forest := deployEnv(t, 4, 1, 1e5)
	m, err := NewMachine(Config{Sys: sys, Forest: forest, Demand: d})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if err := m.StepN(2); err != nil {
		t.Fatal(err)
	}
	m.Install(plan.NewForest(), task.NewDemand())
	if err := m.StepN(2); err != nil {
		t.Fatal(err)
	}
	out := m.Result()
	if out.DemandedPairs != 0 {
		t.Fatalf("demanded = %d after emptying", out.DemandedPairs)
	}
}
