package cluster

import (
	"reflect"
	"testing"

	"remo/internal/chaos"
	"remo/internal/cost"
	"remo/internal/detect"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/store"
	"remo/internal/task"
	"remo/internal/trace"
	"remo/internal/transport"
)

// shardEnv builds a hand-made forest of nAttrs single-attribute star
// trees over n nodes, so sharding tests control the tree count exactly
// (the planner tends to merge everything into one tree).
func shardEnv(t *testing.T, n, nAttrs int) (*model.System, *task.Demand, *plan.Forest) {
	t.Helper()
	attrs := make([]model.AttrID, nAttrs)
	for i := range attrs {
		attrs[i] = model.AttrID(i + 1)
	}
	nodes := make([]model.Node, n)
	d := task.NewDemand()
	for i := range nodes {
		id := model.NodeID(i + 1)
		nodes[i] = model.Node{ID: id, Capacity: 1e5, Attrs: attrs}
		for _, a := range attrs {
			d.Set(id, a, 1)
		}
	}
	sys, err := model.NewSystem(1e6, cost.Model{PerMessage: 10, PerValue: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	forest := plan.NewForest()
	for i, a := range attrs {
		tr := plan.NewTree(model.NewAttrSet(a))
		root := model.NodeID(i%n + 1)
		if err := tr.AddNode(root, model.Central); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			id := model.NodeID(j + 1)
			if id == root {
				continue
			}
			if err := tr.AddNode(id, root); err != nil {
				t.Fatal(err)
			}
		}
		forest.Add(tr)
	}
	if err := forest.Validate(d, sys, nil); err != nil {
		t.Fatal(err)
	}
	return sys, d, forest
}

// shardConfig is the baseline sharded session config for these tests.
func shardConfig(sys *model.System, d *task.Demand, forest *plan.Forest, shards int) Config {
	return Config{
		Sys: sys, Forest: forest, Demand: d,
		Shards: shards, FenceEpochs: true,
		Detect: &detect.Config{},
		Source: BurstyWalk{Seed: 11},
	}
}

func TestShardedMatchesSingleCollectorChaosFree(t *testing.T) {
	sys, d, forest := shardEnv(t, 12, 6)
	rounds := 20

	single, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: rounds, Source: BurstyWalk{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := shardConfig(sys, d, forest, 4)
	cfg.Rounds = rounds
	sharded, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if sharded.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", sharded.Shards)
	}
	if sharded.DemandedPairs != single.DemandedPairs {
		t.Fatalf("demanded: sharded %d vs single %d", sharded.DemandedPairs, single.DemandedPairs)
	}
	if sharded.CoveredPairs != single.CoveredPairs {
		t.Fatalf("covered: sharded %d vs single %d", sharded.CoveredPairs, single.CoveredPairs)
	}
	if sharded.CoveredPairs != sharded.DemandedPairs {
		t.Fatalf("sharded session incomplete: %d of %d", sharded.CoveredPairs, sharded.DemandedPairs)
	}
	if len(sharded.ErrorSeries) != rounds {
		t.Fatalf("error series %d entries over %d rounds", len(sharded.ErrorSeries), rounds)
	}
	if sharded.OrphanedTrees != 0 || sharded.TreesRedispatched != 0 || sharded.ShardsDown != 0 {
		t.Fatalf("chaos-free session reports shard churn: %+v", sharded)
	}
	for s, w := range sharded.ShardWatermarks {
		if w != rounds-1 {
			t.Fatalf("shard %d watermark %d, want %d", s, w, rounds-1)
		}
	}
}

func TestShardCrashOrphansRedispatchExactlyOnce(t *testing.T) {
	sys, d, forest := shardEnv(t, 12, 8)
	rec := trace.NewRecorder(8192)
	cfg := shardConfig(sys, d, forest, 4)
	cfg.LeafBuffer = 32
	cfg.Chaos = &chaos.Config{ShardCrashAt: map[int]int{1: 6}}
	cfg.Trace = rec
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	victimTrees := 0
	for _, s := range m.ShardAssignment() {
		if s == 1 {
			victimTrees++
		}
	}
	if victimTrees == 0 {
		t.Fatal("shard 1 owns no trees; workload too small")
	}

	// Crash at 6, suspicion window 3 → declared at 8, re-dispatched the
	// same round (leader 0 is alive). Run past it.
	if err := m.StepN(14); err != nil {
		t.Fatal(err)
	}
	if !m.ShardDown(1) {
		t.Fatal("shard 1 not down after its crash round")
	}
	res := m.Result()
	if res.OrphanedTrees != victimTrees {
		t.Fatalf("orphaned %d trees, want %d", res.OrphanedTrees, victimTrees)
	}
	if res.TreesRedispatched != victimTrees {
		t.Fatalf("re-dispatched %d trees, want %d", res.TreesRedispatched, victimTrees)
	}
	if got := len(m.PendingOrphans()); got != 0 {
		t.Fatalf("%d orphans still pending", got)
	}
	// Exactly one re-dispatch trace event per orphaned tree.
	counts := rec.Counts()
	if counts[trace.Orphan] != victimTrees || counts[trace.Redispatch] != victimTrees {
		t.Fatalf("orphan events = %d, redispatch events = %d, want %d each",
			counts[trace.Orphan], counts[trace.Redispatch], victimTrees)
	}
	perTree := map[string]int{}
	for _, e := range rec.Events() {
		if e.Kind == trace.Redispatch {
			perTree[e.TreeKey]++
			if e.Node != 1 {
				t.Fatalf("re-dispatch sourced from shard %d, want dead shard 1", e.Node)
			}
		}
	}
	for k, c := range perTree {
		if c != 1 {
			t.Fatalf("tree %s re-dispatched %d times", k, c)
		}
	}
	// The moved trees must not be owned by the dead shard anymore.
	for k, s := range m.ShardAssignment() {
		if s == 1 {
			t.Fatalf("tree %s still owned by dead shard", k)
		}
	}

	// Resume the shard from an (empty) journal: it rejoins, heartbeats,
	// and the dispatcher rebalances trees back onto it.
	epochBefore := m.Epoch()
	if err := m.ResumeShard(1, ResumeState{Epoch: epochBefore, Repo: store.New(0)}); err != nil {
		t.Fatal(err)
	}
	if m.ShardDown(1) {
		t.Fatal("shard still down after resume")
	}
	if m.Epoch() <= epochBefore {
		t.Fatalf("resume did not advance the epoch: %d", m.Epoch())
	}
	if err := m.StepN(10); err != nil {
		t.Fatal(err)
	}
	back := 0
	for _, s := range m.ShardAssignment() {
		if s == 1 {
			back++
		}
	}
	if back == 0 {
		t.Fatal("no trees rebalanced back onto the resumed shard")
	}
	final := m.Result()
	if final.CoveredPairs != final.DemandedPairs {
		t.Fatalf("post-repair coverage %d of %d", final.CoveredPairs, final.DemandedPairs)
	}
	if final.ShardsDown != 0 {
		t.Fatalf("ShardsDown = %d after resume", final.ShardsDown)
	}
}

func TestShardCrashDegradesNotBlocks(t *testing.T) {
	sys, d, forest := shardEnv(t, 10, 6)
	cfg := shardConfig(sys, d, forest, 3)
	cfg.Chaos = &chaos.Config{ShardCrashAt: map[int]int{2: 5}}
	cfg.Rounds = 16
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if err := m.StepN(16); err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if len(res.ErrorSeries) != 16 {
		t.Fatalf("rounds blocked: %d series entries over 16 rounds", len(res.ErrorSeries))
	}
	// The dead shard's watermark froze before the crash; live shards
	// processed the last round.
	if res.ShardWatermarks[2] >= 5 {
		t.Fatalf("dead shard watermark %d advanced past its crash round", res.ShardWatermarks[2])
	}
	for s := 0; s < 2; s++ {
		if res.ShardWatermarks[s] != 15 {
			t.Fatalf("live shard %d watermark %d, want 15", s, res.ShardWatermarks[s])
		}
	}
	if res.ShardsDown != 1 {
		t.Fatalf("ShardsDown = %d, want 1", res.ShardsDown)
	}
}

func TestShardFlapReconvergesBalanced(t *testing.T) {
	sys, d, forest := shardEnv(t, 12, 8)
	cfg := shardConfig(sys, d, forest, 4)
	// Three crash/recover cycles on shard 3 — windows are long enough
	// for the suspicion window (3) to declare it each cycle.
	cfg.Chaos = &chaos.Config{ShardWindows: map[int][]chaos.Window{
		3: {{From: 4, To: 10}, {From: 14, To: 20}, {From: 24, To: 30}},
	}}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if err := m.StepN(40); err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if res.OrphanedTrees == 0 || res.TreesRedispatched != res.OrphanedTrees {
		t.Fatalf("flap cycle accounting off: orphaned %d, re-dispatched %d",
			res.OrphanedTrees, res.TreesRedispatched)
	}
	if len(m.PendingOrphans()) != 0 {
		t.Fatalf("orphans pending after reconvergence: %v", m.PendingOrphans())
	}
	// Reconverged: every shard owns at least one tree again.
	perShard := map[int]int{}
	for _, s := range m.ShardAssignment() {
		perShard[s]++
	}
	for s := 0; s < 4; s++ {
		if perShard[s] == 0 {
			t.Fatalf("shard %d owns nothing after flap reconvergence: %v", s, perShard)
		}
	}
	if res.ShardsDown != 0 {
		t.Fatalf("ShardsDown = %d at end, want 0", res.ShardsDown)
	}
	if final := m.Result(); final.CoveredPairs != final.DemandedPairs {
		t.Fatalf("coverage %d of %d after flaps", final.CoveredPairs, final.DemandedPairs)
	}
}

func TestShardSwapFencesStaleFrames(t *testing.T) {
	// A frame composed for a tree's pre-move owner must be fenced when it
	// arrives after the re-dispatch: no duplicate absorption across the
	// shard swap.
	sys, d, forest := shardEnv(t, 8, 4)
	cfg := shardConfig(sys, d, forest, 2)
	cfg.Chaos = &chaos.Config{ShardCrashAt: map[int]int{1: 4}}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	var victimKey string
	for k, s := range m.ShardAssignment() {
		if s == 1 {
			victimKey = k
			break
		}
	}
	if victimKey == "" {
		t.Fatal("shard 1 owns no trees")
	}
	// Run through crash (4) + suspicion (3): re-dispatch lands at 7.
	if err := m.StepN(10); err != nil {
		t.Fatal(err)
	}
	if s := m.ShardAssignment()[victimKey]; s != 0 {
		t.Fatalf("victim tree owned by %d, want re-dispatch to 0", s)
	}
	staleBefore := m.Result().StaleEpochFrames
	// Replay a frame stamped with the tree's pre-move epoch.
	if err := m.tr.Send(transport.Message{
		TreeKey: victimKey, From: 1, To: model.Central, Epoch: 1,
		Values: []transport.Value{{Node: 1, Attr: 1, Round: 3, Value: 1e9}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if res.StaleEpochFrames != staleBefore+1 {
		t.Fatalf("stale frames %d -> %d, want the pre-move frame fenced",
			staleBefore, res.StaleEpochFrames)
	}
}

func TestShardSeedAssignmentAdopted(t *testing.T) {
	sys, d, forest := shardEnv(t, 8, 4)
	seed := map[string]int{}
	for i, tr := range forest.Trees {
		seed[tr.Attrs.Key()] = (i + 1) % 3
	}
	cfg := shardConfig(sys, d, forest, 3)
	cfg.SeedAssignment = seed
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if got := m.ShardAssignment(); !reflect.DeepEqual(got, seed) {
		t.Fatalf("seed not adopted: got %v want %v", got, seed)
	}
	// Determinism: two machines without a seed place identically.
	cfg2 := shardConfig(sys, d, forest, 3)
	m1, err := NewMachine(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m1.Close() }()
	m2, err := NewMachine(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m2.Close() }()
	if !reflect.DeepEqual(m1.ShardAssignment(), m2.ShardAssignment()) {
		t.Fatal("balance placement not deterministic")
	}
}

func TestShardOfRoutesPairs(t *testing.T) {
	sys, d, forest := shardEnv(t, 8, 4)
	m, err := NewMachine(shardConfig(sys, d, forest, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	owner := m.ShardAssignment()
	for _, tr := range forest.Trees {
		want := owner[tr.Attrs.Key()]
		for _, a := range tr.Attrs.Attrs() {
			p := model.Pair{Node: 1, Attr: a}
			if got := m.ShardOf(p); got != want {
				t.Fatalf("pair %v routed to shard %d, tree owned by %d", p, got, want)
			}
		}
	}
	if got := m.ShardOf(model.Pair{Node: 99, Attr: 99}); got != -1 {
		t.Fatalf("unknown pair routed to shard %d, want -1", got)
	}
}
