package cluster

import (
	"testing"

	"remo/internal/agg"
	"remo/internal/chaos"
	"remo/internal/model"
	"remo/internal/predict"
	"remo/internal/transport"
)

const bandSlack = 1 + 1e-9

// predictSpec builds a validated suppression spec for tests.
func predictSpec(t *testing.T, eps float64) *predict.Spec {
	t.Helper()
	sp, err := predict.NewSpec(eps)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// checkSuppression asserts the conservation and band invariants every
// suppressing session must satisfy.
func checkSuppression(t *testing.T, res Result) {
	t.Helper()
	if res.ValuesSuppressed > res.ValuesObserved {
		t.Fatalf("suppressed %d > observed %d", res.ValuesSuppressed, res.ValuesObserved)
	}
	if res.ValuesImputed+res.MarkersLost > res.ValuesSuppressed {
		t.Fatalf("imputed %d + lost %d > suppressed %d",
			res.ValuesImputed, res.MarkersLost, res.ValuesSuppressed)
	}
	if res.ImputeBandMax > bandSlack {
		t.Fatalf("imputation broke the dead band: max ratio %.6f > 1", res.ImputeBandMax)
	}
}

func TestSuppressionLockstep(t *testing.T) {
	sys, d, forest := deployEnv(t, 12, 3, 1e5)
	res, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 120, EnforceCapacity: true,
		Source:  UtilWalk{Seed: 3},
		Predict: predictSpec(t, 0.01),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSuppression(t, res)
	if res.ValuesObserved == 0 || res.ValuesSuppressed == 0 || res.ValuesImputed == 0 {
		t.Fatalf("suppression never engaged: %+v", res)
	}
	// Plateau utilization under Holt at a 1% band should suppress the
	// overwhelming majority of observations.
	if ratio := float64(res.ValuesSuppressed) / float64(res.ValuesObserved); ratio < 0.5 {
		t.Fatalf("suppressed only %.0f%% of observations on a plateau workload", 100*ratio)
	}
	// A healthy run loses markers only to end-of-session in-flight tails.
	if res.MarkersLost > res.ValuesSuppressed/10 {
		t.Fatalf("lost %d of %d markers without chaos", res.MarkersLost, res.ValuesSuppressed)
	}
	// Imputed views are within band of truth, so accuracy must not
	// collapse relative to full transmission.
	if res.AvgPercentError > 10 {
		t.Fatalf("error %.2f%% too high with 1%% dead band", res.AvgPercentError)
	}
}

func TestSuppressionDisabledLeavesCountersZero(t *testing.T) {
	sys, d, forest := deployEnv(t, 10, 2, 1e5)
	res, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 30, EnforceCapacity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValuesObserved != 0 || res.ValuesSuppressed != 0 || res.ValuesImputed != 0 ||
		res.ModelSyncs != 0 || res.MarkersLost != 0 || res.ImputeBandMax != 0 {
		t.Fatalf("suppression counters nonzero with Predict off: %+v", res)
	}
}

func TestSuppressionDeterministic(t *testing.T) {
	sys, d, forest := deployEnv(t, 10, 2, 1e5)
	run := func() Result {
		res, err := Run(Config{
			Sys: sys, Forest: forest, Demand: d,
			Rounds: 60, EnforceCapacity: true,
			Source:  UtilWalk{Seed: 11},
			Predict: predictSpec(t, 0.02),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ValuesSuppressed != b.ValuesSuppressed || a.ValuesImputed != b.ValuesImputed ||
		a.ModelSyncs != b.ModelSyncs || a.MarkersLost != b.MarkersLost ||
		a.ImputeBandMax != b.ImputeBandMax {
		t.Fatalf("nondeterministic suppression:\n%+v\n%+v", a, b)
	}
}

// countingTransport sums the encoded wire size of every sent frame.
type countingTransport struct {
	transport.Transport
	bytes int
}

func (c *countingTransport) Send(msg transport.Message) error {
	c.bytes += transport.FrameSize(msg)
	return c.Transport.Send(msg)
}

func TestSuppressionReducesWireBytes(t *testing.T) {
	sys, d, forest := deployEnv(t, 24, 6, 1e5)
	run := func(sp *predict.Spec) (Result, int) {
		ct := &countingTransport{Transport: transport.NewMemory(sys.NodeIDs())}
		res, err := Run(Config{
			Sys: sys, Forest: forest, Demand: d,
			Rounds: 120, EnforceCapacity: true,
			Source:    UtilWalk{Seed: 5},
			Transport: ct,
			Predict:   sp,
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = ct.Transport.Close()
		return res, ct.bytes
	}
	_, baseline := run(nil)
	res, suppressed := run(predictSpec(t, 0.01))
	checkSuppression(t, res)
	if suppressed >= baseline {
		t.Fatalf("suppression did not reduce bytes: %d >= %d", suppressed, baseline)
	}
	if ratio := float64(baseline) / float64(suppressed); ratio < 2 {
		t.Fatalf("byte reduction %.2fx, want >= 2x on a plateau workload", ratio)
	}
}

func TestSuppressionSurvivesChaosDrops(t *testing.T) {
	sys, d, forest := deployEnv(t, 12, 3, 1e5)
	res, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 150, EnforceCapacity: true,
		Source:  UtilWalk{Seed: 9},
		Predict: predictSpec(t, 0.01),
		Chaos:   &chaos.Config{DropEvery: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSuppression(t, res)
	if res.MarkersLost == 0 {
		t.Fatal("link loss must cost some markers")
	}
	if res.ValuesImputed == 0 {
		t.Fatal("suppression must keep imputing between loss episodes")
	}
}

func TestSuppressionSurvivesInstall(t *testing.T) {
	sys, d, forest := deployEnv(t, 12, 3, 1e5)
	m, err := NewMachine(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 200, EnforceCapacity: true,
		Source:  UtilWalk{Seed: 4},
		Predict: predictSpec(t, 0.01),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if err := m.StepN(60); err != nil {
		t.Fatal(err)
	}
	mid := m.Result()
	// Re-install the same plan: epoch bumps, collector replicas wipe,
	// leaves force a sync — imputation must resume, in band.
	m.Install(forest, d)
	if err := m.StepN(60); err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	checkSuppression(t, res)
	if res.ValuesImputed <= mid.ValuesImputed {
		t.Fatalf("imputation did not resume after install: %d -> %d",
			mid.ValuesImputed, res.ValuesImputed)
	}
	if res.ModelSyncs <= mid.ModelSyncs {
		t.Fatalf("install must force re-syncs: %d -> %d", mid.ModelSyncs, res.ModelSyncs)
	}
}

func TestSuppressionColdResumeSeedsBothEnds(t *testing.T) {
	sys, d, forest := deployEnv(t, 10, 2, 1e5)
	sp := predictSpec(t, 0.01)
	// First session: warm the replicas, snapshot them.
	m, err := NewMachine(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 200, EnforceCapacity: true,
		Source: UtilWalk{Seed: 8}, Predict: sp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StepN(50); err != nil {
		t.Fatal(err)
	}
	models := m.PredictSnapshots()
	_ = m.Close()
	if len(models) == 0 {
		t.Fatal("no replicas materialized to snapshot")
	}

	// Cold resume: both ends seed from the same snapshots and must be in
	// lockstep immediately — imputations before the first periodic sync
	// window closes prove the seed took.
	m2, err := NewMachine(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 200, EnforceCapacity: true,
		Source: UtilWalk{Seed: 8}, Predict: sp,
		SeedModels: models,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m2.Close() }()
	if err := m2.StepN(predict.DefaultSyncEvery); err != nil {
		t.Fatal(err)
	}
	res := m2.Result()
	checkSuppression(t, res)
	if res.ValuesImputed == 0 {
		t.Fatal("seeded replicas must impute before the first sync cycle completes")
	}
}

func TestSuppressionCollectorCrashResume(t *testing.T) {
	sys, d, forest := deployEnv(t, 10, 2, 1e5)
	m, err := NewMachine(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 300, EnforceCapacity: true,
		Source: UtilWalk{Seed: 6}, Predict: predictSpec(t, 0.01),
		Chaos:       &chaos.Config{CollectorCrashAt: 40},
		FenceEpochs: true,
		LeafBuffer:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if err := m.StepN(60); err != nil {
		t.Fatal(err)
	}
	if !m.CollectorDown() {
		t.Fatal("collector should be down")
	}
	preResume := m.Result()
	m.ResumeCollector(ResumeState{Models: m.PredictSnapshots()})
	if err := m.StepN(2 * predict.DefaultSyncEvery); err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	checkSuppression(t, res)
	if res.ValuesImputed <= preResume.ValuesImputed {
		t.Fatalf("imputation did not resume after collector restart: %d -> %d",
			preResume.ValuesImputed, res.ValuesImputed)
	}
}

func TestSuppressionSharded(t *testing.T) {
	sys, d, forest := deployEnv(t, 16, 3, 1e5)
	res, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 120, EnforceCapacity: true,
		Source: UtilWalk{Seed: 2}, Predict: predictSpec(t, 0.01),
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSuppression(t, res)
	if res.Shards != 3 {
		t.Fatalf("Shards = %d, want 3", res.Shards)
	}
	if res.ValuesImputed == 0 {
		t.Fatal("sharded tier must impute too")
	}
}

func TestSuppressionExemptsAliasesAndAggregates(t *testing.T) {
	// Attribute 2 is an alias of 1; attribute 3 aggregates. Only the
	// holistic unaliased attributes may enter the suppression counters.
	sys, d, forest := deployEnv(t, 8, 3, 1e5)
	resolve := func(a model.AttrID) model.AttrID {
		if a == 2 {
			return 1
		}
		return a
	}
	spec := agg.NewSpec()
	spec.SetKind(3, agg.Sum)
	res, err := Run(Config{
		Sys: sys, Forest: forest, Demand: d,
		Rounds: 60, EnforceCapacity: true,
		Source: UtilWalk{Seed: 14}, Predict: predictSpec(t, 0.01),
		Resolve: resolve,
		Spec:    spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSuppression(t, res)
	// 8 nodes × 1 eligible attr × 60 rounds is the observation ceiling.
	if res.ValuesObserved > 8*60 {
		t.Fatalf("observed %d slots, aliased/aggregated attrs must be exempt", res.ValuesObserved)
	}
	if res.ValuesObserved == 0 {
		t.Fatal("the unaliased holistic attribute must still be eligible")
	}
}

func TestUtilWalkShape(t *testing.T) {
	w := UtilWalk{Seed: 1}
	// Deterministic.
	if w.Value(3, 2, 17) != w.Value(3, 2, 17) {
		t.Fatal("UtilWalk must be a pure function")
	}
	// Within a plateau the series moves slowly: successive deltas stay a
	// small fraction of the level.
	for r := 1; r < 25; r++ {
		prev, cur := w.Value(3, 2, r-1), w.Value(3, 2, r)
		if d := cur - prev; d > 0.01*prev || d < -0.01*prev {
			t.Fatalf("round %d: plateau moved %.3f from %.3f", r, d, prev)
		}
	}
	// Distinct pairs decorrelate.
	if w.Value(1, 1, 0) == w.Value(2, 1, 0) && w.Value(1, 1, 50) == w.Value(2, 1, 50) {
		t.Fatal("pairs should decorrelate")
	}
}
