// Package verify is the repository's verification harness: exact,
// mechanically checked invariants over monitoring plans and live
// collection results.
//
// The paper's claims are checkable propositions, not statistics: every
// monitoring tree must be a forest rooted at the central collector,
// every node's message cost must fit its capacity budget b_i under the
// cost model C + a·x, and the pair accounting the planner reports must
// match what the trees actually deliver. Plan asserts these on any
// forest; Claims additionally cross-checks a planner's reported Stats
// against an independent recount; Result checks the live collector's
// output for internal consistency. None of the checks reuse the
// planner's own accounting code (plan.ComputeStats et al.) — the
// recount walks the trees itself, so a bug in the production path
// cannot hide from its own mirror image.
//
// The package also hosts the differential oracles: Optimum enumerates
// every attribute-set partition of a small instance (Bell-number many)
// and evaluates each with the planner's own per-partition procedure,
// yielding the best achievable score the guided search is measured
// against.
package verify

import (
	"errors"
	"fmt"

	"remo/internal/agg"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
)

// Error taxonomy. Every failed check wraps exactly one of these, so
// callers (and the mutation smoke tests) can assert which invariant
// tripped with errors.Is.
var (
	// ErrStructure marks malformed topology: a tree that is not a
	// single-rooted, acyclic, connected arborescence of system nodes.
	ErrStructure = errors.New("verify: malformed tree structure")
	// ErrOwnership marks a node placed in a tree whose attributes it
	// neither observes nor demands.
	ErrOwnership = errors.New("verify: node carries attribute it does not own")
	// ErrCapacity marks a per-node (or central) budget b_i exceeded
	// under the cost model C + a·x.
	ErrCapacity = errors.New("verify: capacity budget exceeded")
	// ErrAccounting marks claimed statistics that disagree with the
	// independent recount.
	ErrAccounting = errors.New("verify: claimed stats disagree with recount")
	// ErrResult marks an internally inconsistent collection result.
	ErrResult = errors.New("verify: inconsistent collection result")
)

// Context carries the system the checks run against. Spec and Resolve
// are optional (nil means holistic collection and identity resolution,
// matching the runtime's defaults).
type Context struct {
	Sys    *model.System
	Demand *task.Demand
	Spec   *agg.Spec
	// Resolve maps alias attributes (reliability replicas) to their
	// originals; nil means identity.
	Resolve func(model.AttrID) model.AttrID
}

// resolve applies the alias resolver, defaulting to identity.
func (ctx Context) resolve(a model.AttrID) model.AttrID {
	if ctx.Resolve == nil {
		return a
	}
	return ctx.Resolve(a)
}

// capacityEps absorbs float summation noise in budget comparisons; it
// matches the tolerance plan.Forest.Validate applies.
const capacityEps = 1e-6

// Plan asserts every plan invariant on forest f:
//
//   - structure: each tree is a connected, acyclic arborescence with
//     exactly one root attached to the central collector, with
//     consistent parent and child links, members drawn from the system,
//     and pairwise-disjoint attribute sets across trees;
//   - ownership: every member demands at least one of its tree's
//     attributes, and every demanded attribute it carries is observable
//     at that node;
//   - capacity: under the cost model C + a·x (with aggregation funnels
//     and distance factors applied), no node's summed send and receive
//     cost exceeds its budget b_i, and the central collector's receive
//     cost fits its budget.
//
// All checks recount from the tree links; nothing is taken from
// planner-side statistics.
func Plan(ctx Context, f *plan.Forest) error {
	if ctx.Sys == nil || ctx.Demand == nil || f == nil {
		return fmt.Errorf("%w: nil system, demand or forest", ErrStructure)
	}
	for i, t := range f.Trees {
		if err := checkTreeStructure(ctx, t); err != nil {
			return fmt.Errorf("tree %d %v: %w", i, t.Attrs, err)
		}
		for j := i + 1; j < len(f.Trees); j++ {
			if t.Attrs.IntersectsAny(f.Trees[j].Attrs) {
				return fmt.Errorf("%w: trees %d and %d share attributes (%v ∩ %v)",
					ErrStructure, i, j, t.Attrs, f.Trees[j].Attrs)
			}
		}
		if err := checkOwnership(ctx, t); err != nil {
			return fmt.Errorf("tree %d %v: %w", i, t.Attrs, err)
		}
	}
	return checkCapacity(ctx, f)
}

// Claims runs Plan and additionally cross-checks the planner's claimed
// statistics st against the independent recount: collected pair count,
// per-node usage, central usage and total cost must all agree.
func Claims(ctx Context, f *plan.Forest, st plan.Stats) error {
	if err := Plan(ctx, f); err != nil {
		return err
	}
	rc := Recount(ctx, f)
	if st.Collected != rc.Collected {
		return fmt.Errorf("%w: claimed %d collected pairs, recounted %d",
			ErrAccounting, st.Collected, rc.Collected)
	}
	// The forest's own pair listing must agree with the recount too —
	// the two walk different code paths.
	if got := len(f.CollectedPairs(ctx.Demand)); got != rc.Collected {
		return fmt.Errorf("%w: CollectedPairs lists %d pairs, recounted %d",
			ErrAccounting, got, rc.Collected)
	}
	if missed := len(f.MissedPairs(ctx.Demand)); rc.Collected+missed != ctx.Demand.PairCount() {
		return fmt.Errorf("%w: collected %d + missed %d ≠ demanded %d",
			ErrAccounting, rc.Collected, missed, ctx.Demand.PairCount())
	}
	for n, u := range rc.Usage {
		if !closeEnough(st.Usage[n], u) {
			return fmt.Errorf("%w: node %v claimed usage %.6f, recounted %.6f",
				ErrAccounting, n, st.Usage[n], u)
		}
	}
	for n, u := range st.Usage {
		if _, ok := rc.Usage[n]; !ok && u > capacityEps {
			return fmt.Errorf("%w: node %v claims usage %.6f but is placed in no tree",
				ErrAccounting, n, u)
		}
	}
	if !closeEnough(st.CentralUsage, rc.CentralUsage) {
		return fmt.Errorf("%w: claimed central usage %.6f, recounted %.6f",
			ErrAccounting, st.CentralUsage, rc.CentralUsage)
	}
	if !closeEnough(st.TotalCost, rc.TotalCost) {
		return fmt.Errorf("%w: claimed total cost %.6f, recounted %.6f",
			ErrAccounting, st.TotalCost, rc.TotalCost)
	}
	return nil
}

// closeEnough compares float accumulations that may differ in summation
// order between the production path and the recount.
func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	return d <= capacityEps+1e-9*scale
}

// checkTreeStructure asserts that t is a well-formed arborescence using
// only the tree's link accessors: exactly one root whose parent is the
// central collector, every member's parent chain reaching the collector
// within member-count hops (acyclicity), parent and child links
// mutually consistent, and every member a system node.
func checkTreeStructure(ctx Context, t *plan.Tree) error {
	if t.Attrs.Empty() {
		return fmt.Errorf("%w: empty attribute set", ErrStructure)
	}
	if t.Size() == 0 {
		return fmt.Errorf("%w: tree has no members", ErrStructure)
	}
	members := t.Members()
	if len(members) != t.Size() {
		// BFS from the root missed members: the children links do not
		// span the parent map (disconnection or an orphaned edge).
		return fmt.Errorf("%w: reachable members %d of %d (disconnected)",
			ErrStructure, len(members), t.Size())
	}
	inTree := make(map[model.NodeID]struct{}, len(members))
	for _, n := range members {
		inTree[n] = struct{}{}
	}
	roots := 0
	for _, n := range members {
		if n.IsCentral() {
			return fmt.Errorf("%w: central collector is a tree member", ErrStructure)
		}
		if _, ok := ctx.Sys.Node(n); !ok {
			return fmt.Errorf("%w: member %v not in system", ErrStructure, n)
		}
		p, ok := t.Parent(n)
		if !ok {
			return fmt.Errorf("%w: member %v has no parent link", ErrStructure, n)
		}
		if p.IsCentral() {
			roots++
			if n != t.Root() {
				return fmt.Errorf("%w: %v attaches to central but root is %v",
					ErrStructure, n, t.Root())
			}
		} else if _, member := inTree[p]; !member {
			return fmt.Errorf("%w: member %v has non-member parent %v (orphaned edge)",
				ErrStructure, n, p)
		}
		// The parent must list n as a child — parent and child maps are
		// redundant representations and must agree.
		listed := false
		for _, c := range t.Children(p) {
			if c == n {
				listed = true
				break
			}
		}
		if !listed {
			return fmt.Errorf("%w: %v not listed among children of its parent %v",
				ErrStructure, n, p)
		}
		// Climb to the collector with a hop bound: a cycle would loop
		// forever, so exceeding the member count proves one.
		hops := 0
		for q := n; !q.IsCentral(); {
			q, ok = t.Parent(q)
			if !ok {
				return fmt.Errorf("%w: parent chain of %v leaves the tree", ErrStructure, n)
			}
			if hops++; hops > t.Size() {
				return fmt.Errorf("%w: parent chain of %v cycles", ErrStructure, n)
			}
		}
	}
	if roots != 1 {
		return fmt.Errorf("%w: %d roots attached to central, want 1", ErrStructure, roots)
	}
	return nil
}

// checkOwnership asserts every member contributes to its tree and only
// carries attributes observable at that node (after alias resolution).
func checkOwnership(ctx Context, t *plan.Tree) error {
	for _, n := range t.Members() {
		local := ctx.Demand.LocalAttrs(n, t.Attrs)
		if len(local) == 0 {
			return fmt.Errorf("%w: member %v demands none of the tree's attributes",
				ErrOwnership, n)
		}
		node, _ := ctx.Sys.Node(n)
		for _, a := range local {
			if !node.HasAttr(ctx.resolve(a)) {
				return fmt.Errorf("%w: %v carries %v which it does not observe",
					ErrOwnership, n, a)
			}
		}
	}
	return nil
}

// checkCapacity recounts every node's message cost across the forest
// and compares it against the capacity budgets.
func checkCapacity(ctx Context, f *plan.Forest) error {
	rc := Recount(ctx, f)
	for n, u := range rc.Usage {
		if b := ctx.Sys.Capacity(n); u > b+capacityEps {
			return fmt.Errorf("%w: node %v uses %.6f of budget %.6f",
				ErrCapacity, n, u, b)
		}
	}
	if rc.CentralUsage > ctx.Sys.CentralCapacity+capacityEps {
		return fmt.Errorf("%w: central collector uses %.6f of budget %.6f",
			ErrCapacity, rc.CentralUsage, ctx.Sys.CentralCapacity)
	}
	return nil
}
