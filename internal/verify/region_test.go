package verify_test

import (
	"errors"
	"strings"
	"testing"

	"remo/internal/core"
	"remo/internal/plan"
	"remo/internal/verify"
	"remo/internal/workload"
)

// regionPlanned builds and plans a 3-region topology-priced instance.
func regionPlanned(t *testing.T, seed int64) (verify.Context, *plan.Forest, plan.Stats) {
	t.Helper()
	sys, err := workload.System(workload.SystemConfig{
		Nodes: 18, Attrs: 6, CapacityLo: 400, CapacityHi: 600,
		CentralCapacity: 1e6, Regions: 3, InterRegionCost: 5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	tasks := workload.Tasks(sys, workload.TaskConfig{
		Count: 8, AttrsPerTask: 3, NodesPerTask: 9, Seed: seed,
	})
	d, err := workload.Demand(sys, tasks)
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewPlanner().Plan(sys, d)
	return verify.Context{Sys: sys, Demand: d}, res.Forest, res.Stats
}

func TestRegionCoverageMapPartitionsDemand(t *testing.T) {
	ctx, f, st := regionPlanned(t, 21)
	cov := verify.RegionCoverageMap(ctx, f)
	if len(cov) != 3 {
		t.Fatalf("coverage map has %d regions, want 3: %v", len(cov), cov)
	}
	for r, pct := range cov {
		if pct < 0 || pct > 100 {
			t.Fatalf("region %q coverage %v out of range", r, pct)
		}
	}
	// Regional collected counts must sum to the planner's global claim.
	demanded := make(map[string]int)
	for _, p := range ctx.Demand.Pairs() {
		demanded[ctx.Sys.RegionOf(p.Node)]++
	}
	var sum float64
	for r, pct := range cov {
		sum += pct / 100 * float64(demanded[r])
	}
	if got := int(sum + 0.5); got != st.Collected {
		t.Fatalf("regional coverage sums to %d pairs, planner claims %d", got, st.Collected)
	}
}

func TestRegionCoverageFloor(t *testing.T) {
	ctx, f, _ := regionPlanned(t, 22)
	if err := verify.RegionCoverage(ctx, f, nil, 0); err != nil {
		t.Fatalf("floor 0 failed: %v", err)
	}
	err := verify.RegionCoverage(ctx, f, nil, 101)
	if !errors.Is(err, verify.ErrRegion) {
		t.Fatalf("floor 101 passed: %v", err)
	}
	// An empty forest covers nothing: every region trips the floor —
	// unless it is written off as lost.
	empty := &plan.Forest{}
	err = verify.RegionCoverage(ctx, empty, nil, 50)
	if !errors.Is(err, verify.ErrRegion) {
		t.Fatalf("empty forest passed the floor: %v", err)
	}
	lost := map[string]bool{"r0": true, "r1": true, "r2": true}
	if err := verify.RegionCoverage(ctx, empty, lost, 50); err != nil {
		t.Fatalf("all-lost floor check should pass vacuously: %v", err)
	}
	// The violation message names the region and the lost set.
	err = verify.RegionCoverage(ctx, empty, map[string]bool{"r1": true}, 50)
	if err == nil || !strings.Contains(err.Error(), `"r0"`) || !strings.Contains(err.Error(), "r1") {
		t.Fatalf("unhelpful violation message: %v", err)
	}
}

func TestRegionCoverageNilContext(t *testing.T) {
	err := verify.RegionCoverage(verify.Context{}, &plan.Forest{}, nil, 50)
	if !errors.Is(err, verify.ErrRegion) {
		t.Fatalf("nil context passed: %v", err)
	}
	if verify.RegionCoverageMap(verify.Context{}, nil) != nil {
		t.Fatal("nil context should yield a nil map")
	}
}

func TestTopologyChargeAgreesWithPlanner(t *testing.T) {
	ctx, f, st := regionPlanned(t, 23)
	if err := verify.TopologyCharge(ctx, f, st); err != nil {
		t.Fatalf("topology-priced stats failed the charge check: %v", err)
	}
}

func TestTopologyChargeCatchesDriftedDistance(t *testing.T) {
	ctx, f, _ := regionPlanned(t, 24)
	// Stats priced with a tampered (uniform) Distance disagree with the
	// declared per-edge prices.
	uniform := ctx.Sys.Clone()
	uniform.ApplyTopology(nil)
	blind := f.ComputeStats(ctx.Demand, uniform, nil)
	err := verify.TopologyCharge(ctx, f, blind)
	if !errors.Is(err, verify.ErrTopology) {
		t.Fatalf("drifted charges passed: %v", err)
	}
}

func TestTopologyChargeVacuousWithoutTopology(t *testing.T) {
	ctx, f, st := planned(t, 7)
	if ctx.Sys.Topology != nil {
		t.Fatal("generated instance unexpectedly has a topology")
	}
	if err := verify.TopologyCharge(ctx, f, st); err != nil {
		t.Fatalf("topology-less system should pass vacuously: %v", err)
	}
	err := verify.TopologyCharge(verify.Context{}, nil, plan.Stats{})
	if !errors.Is(err, verify.ErrTopology) {
		t.Fatalf("nil inputs passed: %v", err)
	}
}
