package verify_test

import (
	"errors"
	"testing"

	"remo/internal/cluster"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/verify"
)

// twoTreeForest builds a forest of single-attribute trees for attrs 1
// and 2 (structure is irrelevant to the shard checks; only keys are).
func twoTreeForest(t *testing.T) *plan.Forest {
	t.Helper()
	f := plan.NewForest()
	for _, a := range []model.AttrID{1, 2} {
		tr := plan.NewTree(model.NewAttrSet(a))
		if err := tr.AddNode(1, model.Central); err != nil {
			t.Fatal(err)
		}
		f.Add(tr)
	}
	return f
}

func TestShardingHolds(t *testing.T) {
	f := twoTreeForest(t)
	k1 := model.NewAttrSet(1).Key()
	k2 := model.NewAttrSet(2).Key()
	st := verify.ShardState{
		Shards:     3,
		Assignment: map[string]int{k1: 0, k2: 2},
	}
	if err := verify.Sharding(st, f); err != nil {
		t.Fatalf("healthy sharding flagged: %v", err)
	}
	// An orphan booked to a down shard is conserved state, not an error.
	st.Down = []int{2}
	st.Pending = []string{k2}
	if err := verify.Sharding(st, f); err != nil {
		t.Fatalf("orphan window flagged: %v", err)
	}
}

func TestShardingViolations(t *testing.T) {
	f := twoTreeForest(t)
	k1 := model.NewAttrSet(1).Key()
	k2 := model.NewAttrSet(2).Key()
	cases := []struct {
		name string
		st   verify.ShardState
	}{
		{"unowned tree", verify.ShardState{
			Shards: 2, Assignment: map[string]int{k1: 0},
		}},
		{"out of range owner", verify.ShardState{
			Shards: 2, Assignment: map[string]int{k1: 0, k2: 5},
		}},
		{"dead owner without orphan entry", verify.ShardState{
			Shards: 2, Assignment: map[string]int{k1: 0, k2: 1}, Down: []int{1},
		}},
		{"orphan owned by live shard", verify.ShardState{
			Shards: 2, Assignment: map[string]int{k1: 0, k2: 1}, Pending: []string{k2},
		}},
		{"retired tree in assignment", verify.ShardState{
			Shards: 2, Assignment: map[string]int{k1: 0, k2: 1, "ghost": 0},
		}},
		{"no shards", verify.ShardState{
			Shards: 0, Assignment: map[string]int{k1: 0, k2: 0},
		}},
	}
	for _, tc := range cases {
		if err := verify.Sharding(tc.st, f); !errors.Is(err, verify.ErrSharding) {
			t.Errorf("%s: got %v, want ErrSharding", tc.name, err)
		}
	}
}

func TestShardUnion(t *testing.T) {
	merged := cluster.Result{DemandedPairs: 10, CoveredPairs: 8, ValuesDelivered: 120}
	partials := []cluster.Result{
		{DemandedPairs: 6, CoveredPairs: 5, ValuesDelivered: 70},
		{DemandedPairs: 4, CoveredPairs: 3, ValuesDelivered: 50},
	}
	if err := verify.ShardUnion(merged, partials); err != nil {
		t.Fatalf("exact union flagged: %v", err)
	}
	// A lost pair in any counter breaks the union.
	for _, mutate := range []func(*cluster.Result){
		func(r *cluster.Result) { r.DemandedPairs-- },
		func(r *cluster.Result) { r.CoveredPairs++ },
		func(r *cluster.Result) { r.ValuesDelivered -= 7 },
	} {
		bad := merged
		mutate(&bad)
		if err := verify.ShardUnion(bad, partials); !errors.Is(err, verify.ErrSharding) {
			t.Errorf("broken union not flagged: %v", err)
		}
	}
	if err := verify.ShardUnion(merged, nil); !errors.Is(err, verify.ErrSharding) {
		t.Error("empty partials accepted")
	}
}

func TestResultShardCounters(t *testing.T) {
	base := cluster.Result{
		Shards: 4, ShardsDown: 1, OrphanedTrees: 3, TreesRedispatched: 3,
		LeaderElections: 1, ShardWatermarks: []int{5, 9, 9, -1}, Rounds: 10,
	}
	if err := verify.ResultShardCounters(base); err != nil {
		t.Fatalf("consistent shard counters flagged: %v", err)
	}
	mutations := []func(*cluster.Result){
		func(r *cluster.Result) { r.ShardsDown = 5 },
		func(r *cluster.Result) { r.TreesRedispatched = 4 }, // > orphaned
		func(r *cluster.Result) { r.LeaderElections = -1 },
		func(r *cluster.Result) { r.ShardWatermarks = []int{5, 9, 9} },     // wrong length
		func(r *cluster.Result) { r.ShardWatermarks = []int{5, 9, 9, 10} }, // >= rounds
		func(r *cluster.Result) { r.ShardWatermarks = []int{5, 9, 9, -2} },
	}
	for i, mutate := range mutations {
		bad := base
		bad.ShardWatermarks = append([]int(nil), base.ShardWatermarks...)
		mutate(&bad)
		if err := verify.ResultShardCounters(bad); err == nil {
			t.Errorf("mutation %d not flagged", i)
		}
	}
	// A single-collector result must carry no shard counters at all.
	if err := verify.ResultShardCounters(cluster.Result{}); err != nil {
		t.Fatalf("zero result flagged: %v", err)
	}
	if err := verify.ResultShardCounters(cluster.Result{OrphanedTrees: 1}); err == nil {
		t.Error("shard counters on a single-collector result not flagged")
	}
}
