package verify_test

import (
	"errors"
	"math/rand"
	"testing"

	"remo/internal/chaos"
	"remo/internal/cluster"
	"remo/internal/core"
	"remo/internal/model"
	"remo/internal/repair"
	"remo/internal/verify"
	"remo/internal/workload"
)

// propertySeeds is how many generated instances each property runs
// over. Together with the chaos property below this keeps the package
// above the "≥ 50 generated workloads" bar on its own.
const propertySeeds = 60

// TestPropertyGeneratedPlansVerify is the core property: for any
// generated workload, the planner's output passes the full invariant
// checker (structure, ownership, capacity, accounting). Failures are
// shrunk to a minimal reproducing instance before reporting.
func TestPropertyGeneratedPlansVerify(t *testing.T) {
	fails := func(in workload.Instance) bool {
		d, err := in.Demand()
		if err != nil {
			return false
		}
		res := core.NewPlanner().Plan(in.Sys, d)
		return verify.Claims(verify.Context{Sys: in.Sys, Demand: d}, res.Forest, res.Stats) != nil
	}
	for seed := int64(0); seed < propertySeeds; seed++ {
		in, err := workload.Generate(workload.DefaultBounds(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d, err := in.Demand()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := core.NewPlanner().Plan(in.Sys, d)
		if err := verify.Claims(verify.Context{Sys: in.Sys, Demand: d}, res.Forest, res.Stats); err != nil {
			min := workload.Minimize(in, fails)
			t.Fatalf("%v fails verification: %v\nminimized reproduction: %v", in, err, min)
		}
	}
}

// TestPropertyRaisingCapacityNeverHurts is metamorphic: giving one node
// a strictly larger budget can only widen the feasible region, so the
// planner's collected pair count must not decrease.
func TestPropertyRaisingCapacityNeverHurts(t *testing.T) {
	for seed := int64(100); seed < 100+propertySeeds/2; seed++ {
		in, err := workload.Generate(workload.DefaultBounds(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d, err := in.Demand()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p := core.NewPlanner()
		before := p.Plan(in.Sys, d)

		rng := rand.New(rand.NewSource(seed))
		raised := in.Sys.Clone()
		i := rng.Intn(len(raised.Nodes))
		raised.Nodes[i].Capacity *= 4

		after := p.Plan(raised, d)
		if after.Stats.Collected < before.Stats.Collected {
			t.Fatalf("%v: raising node %d capacity ×4 dropped coverage %d → %d",
				in, raised.Nodes[i].ID, before.Stats.Collected, after.Stats.Collected)
		}
		if err := verify.Claims(verify.Context{Sys: raised, Demand: d}, after.Forest, after.Stats); err != nil {
			t.Fatalf("%v: raised-capacity plan fails verification: %v", in, err)
		}
	}
}

// TestPropertyAddingTaskKeepsPlanFeasible is metamorphic: growing the
// workload by one task must never produce a capacity-violating plan —
// the planner sheds coverage instead of overdrawing budgets.
func TestPropertyAddingTaskKeepsPlanFeasible(t *testing.T) {
	for seed := int64(200); seed < 200+propertySeeds/2; seed++ {
		in, err := workload.Generate(workload.DefaultBounds(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		extra := workload.Tasks(in.Sys, workload.TaskConfig{
			Count:        1,
			AttrsPerTask: 1 + int(seed)%3,
			NodesPerTask: 1 + int(seed)%5,
			Seed:         seed + 7919,
			Prefix:       "extra",
		})
		d, err := workload.Demand(in.Sys, append(in.Tasks, extra...))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := core.NewPlanner().Plan(in.Sys, d)
		if err := verify.Claims(verify.Context{Sys: in.Sys, Demand: d}, res.Forest, res.Stats); err != nil {
			t.Fatalf("%v + 1 task fails verification: %v", in, err)
		}
	}
}

// TestPropertyRepairYieldsValidPlan is metamorphic: repairing a plan
// after an arbitrary subset of placed nodes dies must yield a plan that
// passes the invariant checker against the pruned demand.
func TestPropertyRepairYieldsValidPlan(t *testing.T) {
	for seed := int64(300); seed < 300+propertySeeds/2; seed++ {
		in, err := workload.Generate(workload.DefaultBounds(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d, err := in.Demand()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := core.NewPlanner().Plan(in.Sys, d)

		// Kill ~20% of placed nodes, at least one.
		var placed []model.NodeID
		for n := range res.Stats.Usage {
			placed = append(placed, n)
		}
		if len(placed) == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(placed), func(i, j int) { placed[i], placed[j] = placed[j], placed[i] })
		kill := 1 + len(placed)/5
		failed := make(map[model.NodeID]struct{}, kill)
		for _, n := range placed[:kill] {
			failed[n] = struct{}{}
		}

		healed, _ := repair.Repair(repair.Config{Sys: in.Sys, Demand: d}, res.Forest, failed)
		pruned, _ := repair.Prune(d, failed)
		if err := verify.Plan(verify.Context{Sys: in.Sys, Demand: pruned}, healed); err != nil {
			t.Fatalf("%v: healed plan after killing %d nodes fails verification: %v",
				in, kill, err)
		}
		for _, tr := range healed.Trees {
			for _, n := range tr.Members() {
				if _, dead := failed[n]; dead {
					t.Fatalf("%v: healed plan still places dead node %d", in, n)
				}
			}
		}
	}
}

// TestPropertyChaosRunsVerifyResult drives generated workloads through
// the live emulation under randomized chaos (crashes, loss, delay) and
// cross-checks every reported Result.
func TestPropertyChaosRunsVerifyResult(t *testing.T) {
	for seed := int64(400); seed < 400+propertySeeds/4; seed++ {
		in, err := workload.Generate(workload.DefaultBounds(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d, err := in.Demand()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := core.NewPlanner().Plan(in.Sys, d)
		if len(res.Forest.Trees) == 0 {
			continue
		}

		rng := rand.New(rand.NewSource(seed))
		cfg := &chaos.Config{
			DropProb:       rng.Float64() * 0.3,
			DelayProb:      rng.Float64() * 0.2,
			MaxDelayRounds: 1 + rng.Intn(3),
			Seed:           uint64(seed) + 1,
			CrashAt:        map[model.NodeID]int{},
		}
		// Crash up to two placed nodes mid-run.
		var placed []model.NodeID
		for n := range res.Stats.Usage {
			placed = append(placed, n)
		}
		rng.Shuffle(len(placed), func(i, j int) { placed[i], placed[j] = placed[j], placed[i] })
		rounds := 8 + rng.Intn(8)
		for i := 0; i < len(placed) && i < 2; i++ {
			cfg.CrashAt[placed[i]] = 2 + rng.Intn(rounds-2)
		}

		out, err := cluster.Run(cluster.Config{
			Sys:             in.Sys,
			Forest:          res.Forest,
			Demand:          d,
			Rounds:          rounds,
			EnforceCapacity: true,
			Chaos:           cfg,
		})
		if err != nil {
			t.Fatalf("%v: cluster run: %v", in, err)
		}
		if err := verify.Result(verify.Context{Sys: in.Sys, Demand: d}, out); err != nil {
			t.Fatalf("%v: chaos result fails verification: %v", in, err)
		}
	}
}

// TestResultMutations proves the result checker is non-vacuous.
func TestResultMutations(t *testing.T) {
	in, err := workload.Generate(workload.DefaultBounds(), 42)
	if err != nil {
		t.Fatal(err)
	}
	d, err := in.Demand()
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewPlanner().Plan(in.Sys, d)
	out, err := cluster.Run(cluster.Config{
		Sys: in.Sys, Forest: res.Forest, Demand: d,
		Rounds: 6, EnforceCapacity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := verify.Context{Sys: in.Sys, Demand: d}
	if err := verify.Result(ctx, out); err != nil {
		t.Fatalf("clean result fails verification: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*cluster.Result)
	}{
		{"demanded pairs", func(r *cluster.Result) { r.DemandedPairs++ }},
		{"covered beyond demanded", func(r *cluster.Result) { r.CoveredPairs = r.DemandedPairs + 1 }},
		{"covered without values", func(r *cluster.Result) { r.ValuesDelivered = 0 }},
		{"percent out of range", func(r *cluster.Result) { r.PercentCollected = 101 }},
		{"negative staleness", func(r *cluster.Result) { r.AvgStaleness = -1 }},
		{"truncated error series", func(r *cluster.Result) { r.ErrorSeries = r.ErrorSeries[:len(r.ErrorSeries)-1] }},
		{"error series out of range", func(r *cluster.Result) { r.ErrorSeries[0] = 250 }},
		{"negative suppression counter", func(r *cluster.Result) { r.MarkersLost = -1 }},
		{"suppressed beyond observed", func(r *cluster.Result) {
			r.ValuesSuppressed = r.ValuesObserved + 1
		}},
		{"imputed beyond suppressed", func(r *cluster.Result) {
			r.ValuesSuppressed = 2
			r.ValuesObserved = 4
			r.ValuesImputed = 2
			r.MarkersLost = 1
		}},
		{"impute outside band", func(r *cluster.Result) {
			r.ValuesObserved = 4
			r.ValuesSuppressed = 2
			r.ValuesImputed = 2
			r.ImputeBandMax = 1.5
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tampered := out
			tampered.ErrorSeries = append([]float64(nil), out.ErrorSeries...)
			tc.mutate(&tampered)
			if err := verify.Result(ctx, tampered); !errors.Is(err, verify.ErrResult) {
				t.Fatalf("tampered result not flagged: got %v, want ErrResult", err)
			}
		})
	}
}

// TestVerifyRejectsStaleDemandAfterPrune pins the documented contract
// that Result must be checked against the currently installed demand:
// after pruning, the old demand recounts to a different pair total.
func TestVerifyRejectsStaleDemandAfterPrune(t *testing.T) {
	in, err := workload.Generate(workload.DefaultBounds(), 17)
	if err != nil {
		t.Fatal(err)
	}
	d, err := in.Demand()
	if err != nil {
		t.Fatal(err)
	}
	pruned := d.Clone()
	pairs := d.Pairs()
	if len(pairs) < 2 {
		t.Skip("demand too small to prune")
	}
	pruned.Remove(pairs[0].Node, pairs[0].Attr)

	if (verify.Context{Sys: in.Sys, Demand: d}).DemandedPairs() ==
		(verify.Context{Sys: in.Sys, Demand: pruned}).DemandedPairs() {
		t.Fatalf("pruning did not change the recounted demanded pairs")
	}
}
