package verify_test

import (
	"fmt"
	"math/rand"
	"testing"

	"remo/internal/core"
	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/verify"
	"remo/internal/workload"
)

// churnSeeds is how many generated churn sequences the parity property
// runs; the issue bar is ≥ 50.
const churnSeeds = 50

// churnSteps is how many task mutations each sequence applies.
const churnSteps = 6

// richEnv draws a capacity-generous instance: budgets comfortably above
// what full collection needs, so both the incremental and the
// from-scratch planner saturate coverage and the parity assertion is an
// equality, not a tolerance. Tight-capacity regimes are the property
// tests' territory; here the point is that scoping the search loses
// nothing.
func richEnv(t *testing.T, seed int64) (*model.System, []model.Task) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nodes := 10 + rng.Intn(20)
	attrs := 6 + rng.Intn(6)
	sys, err := workload.System(workload.SystemConfig{
		Nodes:           nodes,
		Attrs:           attrs,
		CapacityLo:      800,
		CapacityHi:      1200,
		CentralCapacity: float64(nodes) * 200,
		Cost:            cost.Default(),
		Seed:            seed,
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	tasks := workload.Tasks(sys, workload.TaskConfig{
		Count:        6 + rng.Intn(8),
		AttrsPerTask: 1 + rng.Intn(3),
		NodesPerTask: 2 + rng.Intn(nodes/2),
		Seed:         seed + 1,
	})
	return sys, tasks
}

// mutate applies one churn step to the task list: arrivals, removals
// and attribute rewrites cycle so every sequence exercises all three
// mutation kinds.
func mutate(sys *model.System, tasks []model.Task, seed int64, step int) []model.Task {
	switch step % 3 {
	case 0: // arrival
		extra := workload.Tasks(sys, workload.TaskConfig{
			Count:        1 + step%2,
			AttrsPerTask: 1 + int(seed+int64(step))%3,
			NodesPerTask: 2 + int(seed)%4,
			Seed:         seed*131 + int64(step),
			Prefix:       fmt.Sprintf("extra%d", step),
		})
		return append(append([]model.Task(nil), tasks...), extra...)
	case 1: // removal
		if len(tasks) <= 1 {
			return tasks
		}
		drop := int(seed+int64(step)) % len(tasks)
		out := append([]model.Task(nil), tasks[:drop]...)
		return append(out, tasks[drop+1:]...)
	default: // attribute rewrite
		return workload.Churn(sys, tasks, workload.ChurnConfig{
			TaskFraction: 0.2,
			AttrFraction: 0.5,
			Seed:         seed*977 + int64(step),
		})
	}
}

// TestPropertyIncrementalReplanParity is the incremental-replanning
// parity property: over generated churn sequences on capacity-rich
// systems, every incremental update must collect exactly as many pairs
// as a from-scratch replan of the same mutated demand, and every
// adopted forest must pass the full invariant checker.
func TestPropertyIncrementalReplanParity(t *testing.T) {
	for seed := int64(500); seed < 500+churnSeeds; seed++ {
		sys, tasks := richEnv(t, seed)
		d, err := workload.Demand(sys, tasks)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := core.NewReplanner(core.NewPlanner(), sys, d)
		fresh := core.NewPlanner()

		for step := 0; step < churnSteps; step++ {
			tasks = mutate(sys, tasks, seed, step)
			nd, err := workload.Demand(sys, tasks)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			inc, st := r.Update(nd)
			scratch := fresh.Plan(sys, nd)
			if inc.Stats.Collected != scratch.Stats.Collected {
				t.Fatalf("seed %d step %d: incremental collected %d pairs (incremental=%v fellback=%v dirty=%d/%d), from-scratch replan collects %d",
					seed, step, inc.Stats.Collected, st.Incremental, st.FellBack,
					st.DirtySets, st.TotalSets, scratch.Stats.Collected)
			}
			if err := verify.Claims(verify.Context{Sys: sys, Demand: nd}, inc.Forest, inc.Stats); err != nil {
				t.Fatalf("seed %d step %d: incremental plan fails verification: %v", seed, step, err)
			}
		}
	}
}

// TestIncrementalReplanMatchesOptimum differentially tests incremental
// updates against exhaustive partition enumeration: on tiny
// capacity-rich instances, the plan a Replanner maintains through a
// churn step must collect exactly what the best enumerable partition
// collects.
func TestIncrementalReplanMatchesOptimum(t *testing.T) {
	const instances = 30
	checked := 0
	for seed := int64(700); seed < 700+instances; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nodes := 3 + rng.Intn(4)
		sys, err := workload.System(workload.SystemConfig{
			Nodes:           nodes,
			Attrs:           3 + rng.Intn(3),
			CapacityLo:      600,
			CapacityHi:      900,
			CentralCapacity: float64(nodes) * 150,
			Cost:            cost.Default(),
			Seed:            seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tasks := workload.Tasks(sys, workload.TaskConfig{
			Count:        2 + rng.Intn(4),
			AttrsPerTask: 1 + rng.Intn(2),
			NodesPerTask: 1 + rng.Intn(nodes),
			Seed:         seed + 1,
		})
		d, err := workload.Demand(sys, tasks)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p := core.NewPlanner()
		r := core.NewReplanner(p, sys, d)

		for step := 0; step < 3; step++ {
			tasks = mutate(sys, tasks, seed, step)
			nd, err := workload.Demand(sys, tasks)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			inc, _ := r.Update(nd)
			best, parts, err := verify.Optimum(p, sys, nd)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			checked++
			if inc.Stats.Collected != best.Stats.Collected {
				t.Errorf("seed %d step %d: incremental collected %d pairs, optimum over %d partitions collects %d",
					seed, step, inc.Stats.Collected, parts, best.Stats.Collected)
			}
		}
	}
	if checked < instances {
		t.Fatalf("only %d instances were enumerable", checked)
	}
}
