package verify

import (
	"errors"
	"fmt"

	"remo/internal/core"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
)

// MaxBruteAttrs bounds the universe size Optimum will enumerate. Set
// partitions grow as Bell numbers (B(6)=203, B(8)=4140, B(10)=115975);
// past eight attributes exhaustive evaluation stops being a test and
// starts being a benchmark.
const MaxBruteAttrs = 8

// ErrTooLarge is returned by Optimum when the demanded attribute
// universe exceeds MaxBruteAttrs.
var ErrTooLarge = errors.New("verify: universe too large to enumerate")

// Optimum exhaustively evaluates every attribute-set partition of the
// demand's universe with the planner's own per-partition procedure
// (capacity allocation + tree construction + stats) and returns the
// best result under the planner's plan-comparison order (collected
// pairs first, total cost as tie-break), together with the number of
// partitions enumerated.
//
// Because the guided search explores a subset of the same partition
// space using the same evaluation, Optimum is a true upper bound for
// it: a guided plan collecting fewer pairs than Optimum's proves the
// search missed reachable coverage.
func Optimum(p *core.Planner, sys *model.System, d *task.Demand) (core.Result, int, error) {
	universe := d.Universe().Attrs()
	if len(universe) > MaxBruteAttrs {
		return core.Result{}, 0, fmt.Errorf("%w: %d attributes (max %d)",
			ErrTooLarge, len(universe), MaxBruteAttrs)
	}
	var (
		best  core.Result
		found bool
		count int
	)
	forEachPartition(universe, func(blocks [][]model.AttrID) {
		count++
		sets := make([]model.AttrSet, len(blocks))
		for i, b := range blocks {
			sets[i] = model.NewAttrSet(b...)
		}
		res := p.PlanPartition(sys, d, sets)
		if !found || res.Stats.Score().Better(best.Stats.Score()) {
			best = res
			found = true
		}
	})
	if !found {
		// Empty universe: the one (empty) partition yields the empty plan.
		best = p.PlanPartition(sys, d, nil)
		count = 1
	}
	return best, count, nil
}

// OptimumScore is Optimum reduced to its comparison key, for tests that
// only need the achievable pair count and cost.
func OptimumScore(p *core.Planner, sys *model.System, d *task.Demand) (plan.Score, int, error) {
	best, count, err := Optimum(p, sys, d)
	if err != nil {
		return plan.Score{}, 0, err
	}
	return best.Stats.Score(), count, nil
}

// forEachPartition enumerates every set partition of attrs by placing
// each attribute either into one of the existing blocks or into a new
// block of its own — the standard restricted-growth enumeration, one
// callback per complete partition.
func forEachPartition(attrs []model.AttrID, yield func(blocks [][]model.AttrID)) {
	if len(attrs) == 0 {
		return
	}
	blocks := make([][]model.AttrID, 0, len(attrs))
	var place func(i int)
	place = func(i int) {
		if i == len(attrs) {
			yield(blocks)
			return
		}
		a := attrs[i]
		for b := range blocks {
			blocks[b] = append(blocks[b], a)
			place(i + 1)
			blocks[b] = blocks[b][:len(blocks[b])-1]
		}
		blocks = append(blocks, []model.AttrID{a})
		place(i + 1)
		blocks = blocks[:len(blocks)-1]
	}
	place(0)
}
