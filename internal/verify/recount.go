package verify

import (
	"remo/internal/model"
	"remo/internal/plan"
)

// RecountStats is the independently recomputed resource profile of a
// forest. It mirrors the shape of plan.Stats but is derived by a
// separate traversal (top-down recursion over child links, per-tree)
// rather than the planner's iterative post-order accumulation, so the
// two act as cross-checking implementations of the same cost semantics.
type RecountStats struct {
	// Usage is each placed node's summed send + receive cost per round
	// across all trees.
	Usage map[model.NodeID]float64
	// CentralUsage is the collector's receive cost (root messages).
	CentralUsage float64
	// Collected is the number of demanded node-attribute pairs the
	// forest delivers.
	Collected int
	// TotalCost is Usage summed over all nodes plus CentralUsage.
	TotalCost float64
}

// Recount rederives the forest's resource profile from first
// principles: for every tree, each member's outgoing value count is its
// locally demanded weights plus everything its descendants forward
// (with aggregation funnels applied per hop), its send cost is
// (C + a·y) scaled by the distance factor to its parent, and the
// endpoint cost is charged to the parent (or the central collector for
// roots) as receive cost.
func Recount(ctx Context, f *plan.Forest) RecountStats {
	rc := RecountStats{Usage: make(map[model.NodeID]float64)}
	for _, t := range f.Trees {
		recountTree(ctx, t, &rc)
	}
	for _, u := range rc.Usage {
		rc.TotalCost += u
	}
	rc.TotalCost += rc.CentralUsage
	return rc
}

// recountTree accumulates one tree's costs into rc via recursion from
// the root: the recursion returns each subtree's per-attribute outgoing
// counts so the parent can fold them into its own message.
func recountTree(ctx Context, t *plan.Tree, rc *RecountStats) {
	if t.Size() == 0 {
		return
	}
	attrs := t.Attrs.Attrs()
	var descend func(n model.NodeID) []float64
	descend = func(n model.NodeID) []float64 {
		counts := make([]float64, len(attrs))
		for _, c := range t.Children(n) {
			childOut := descend(c)
			// Receiving the child's message costs the unscaled endpoint
			// cost; its payload joins this node's next message.
			var y float64
			for k, v := range childOut {
				counts[k] += v
				y += v
			}
			rc.Usage[n] += ctx.Sys.Cost.PerMessage + ctx.Sys.Cost.PerValue*y
		}
		for k, a := range attrs {
			if ctx.Demand.Has(n, a) {
				counts[k] += ctx.Demand.Weight(n, a)
				rc.Collected++
			}
		}
		out := make([]float64, len(attrs))
		var y float64
		for k, a := range attrs {
			out[k] = ctx.Spec.Out(a, counts[k])
			y += out[k]
		}
		endpoint := ctx.Sys.Cost.PerMessage + ctx.Sys.Cost.PerValue*y
		parent, _ := t.Parent(n)
		rc.Usage[n] += endpoint * ctx.Sys.Dist(n, parent)
		return out
	}

	root := t.Root()
	rootOut := descend(root)
	var y float64
	for _, v := range rootOut {
		y += v
	}
	// The root's message is received by the central collector at the
	// unscaled endpoint cost. The root's own send cost was already
	// charged inside descend (distance factor to central applies there).
	rc.CentralUsage += ctx.Sys.Cost.PerMessage + ctx.Sys.Cost.PerValue*y
}
