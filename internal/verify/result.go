package verify

import (
	"fmt"

	"remo/internal/agg"
	"remo/internal/cluster"
	"remo/internal/model"
)

// Result cross-checks a live collection result against the demand that
// produced it. The invariants hold for every run — chaos, failures,
// topology hot-swaps and all — because they restate what the collector
// is defined to measure rather than predicting any particular outcome:
//
//   - DemandedPairs matches an independent recount of the demand
//     (holistic pairs folded through the alias resolver, plus one
//     logical target per aggregated attribute);
//   - 0 ≤ CoveredPairs ≤ DemandedPairs, and covering anything requires
//     having received at least one value;
//   - rates and errors are percentages in [0, 100], staleness is
//     non-negative and below the round count (a view cannot predate
//     round 0);
//   - ErrorSeries carries exactly one entry per executed round, each in
//     [0, 100];
//   - traffic counters are non-negative;
//   - durability counters are non-negative, and buffered frames are
//     conserved (redelivered + shed never exceeds buffered);
//   - suppression counters are non-negative and conserved: no more
//     values suppressed than observed, every suppressed value either
//     imputed or accounted lost, and every imputed value inside the
//     dead band (ImputeBandMax, a fraction of the band, is ≤ 1).
//
// ctx.Demand must be the demand currently installed in the machine
// (after any repair pruning or adaptation), since the collector
// retargets its accounting on every Install.
func Result(ctx Context, res cluster.Result) error {
	if ctx.Sys == nil || ctx.Demand == nil {
		return fmt.Errorf("%w: nil system or demand", ErrResult)
	}
	if want := recountDemanded(ctx); res.DemandedPairs != want {
		return fmt.Errorf("%w: reports %d demanded pairs, demand recounts to %d",
			ErrResult, res.DemandedPairs, want)
	}
	if res.CoveredPairs < 0 || res.CoveredPairs > res.DemandedPairs {
		return fmt.Errorf("%w: covered %d of %d demanded pairs",
			ErrResult, res.CoveredPairs, res.DemandedPairs)
	}
	if res.CoveredPairs > 0 && res.ValuesDelivered <= 0 {
		return fmt.Errorf("%w: %d pairs covered with no values delivered",
			ErrResult, res.CoveredPairs)
	}
	if res.PercentCollected < 0 || res.PercentCollected > 100 {
		return fmt.Errorf("%w: PercentCollected %.3f outside [0, 100]",
			ErrResult, res.PercentCollected)
	}
	if res.AvgPercentError < 0 || res.AvgPercentError > 100 {
		return fmt.Errorf("%w: AvgPercentError %.3f outside [0, 100]",
			ErrResult, res.AvgPercentError)
	}
	if res.AvgStaleness < 0 || (res.Rounds > 0 && res.AvgStaleness >= float64(res.Rounds)) {
		return fmt.Errorf("%w: AvgStaleness %.3f outside [0, %d)",
			ErrResult, res.AvgStaleness, res.Rounds)
	}
	if res.MessagesSent < 0 || res.MessagesDropped < 0 || res.ValuesDelivered < 0 {
		return fmt.Errorf("%w: negative traffic counters (sent %d, dropped %d, values %d)",
			ErrResult, res.MessagesSent, res.MessagesDropped, res.ValuesDelivered)
	}
	if res.StaleEpochFrames < 0 || res.FramesBuffered < 0 || res.FramesShed < 0 ||
		res.FramesRedelivered < 0 {
		return fmt.Errorf("%w: negative durability counters (stale %d, buffered %d, shed %d, redelivered %d)",
			ErrResult, res.StaleEpochFrames, res.FramesBuffered, res.FramesShed, res.FramesRedelivered)
	}
	if res.FramesRedelivered+res.FramesShed > res.FramesBuffered {
		return fmt.Errorf("%w: %d redelivered + %d shed exceed %d buffered frames",
			ErrResult, res.FramesRedelivered, res.FramesShed, res.FramesBuffered)
	}
	if res.ValuesObserved < 0 || res.ValuesSuppressed < 0 || res.ValuesImputed < 0 ||
		res.ModelSyncs < 0 || res.MarkersLost < 0 {
		return fmt.Errorf("%w: negative suppression counters (observed %d, suppressed %d, imputed %d, syncs %d, lost %d)",
			ErrResult, res.ValuesObserved, res.ValuesSuppressed, res.ValuesImputed,
			res.ModelSyncs, res.MarkersLost)
	}
	if res.ValuesSuppressed > res.ValuesObserved {
		return fmt.Errorf("%w: %d values suppressed of %d observed",
			ErrResult, res.ValuesSuppressed, res.ValuesObserved)
	}
	if res.ValuesImputed+res.MarkersLost > res.ValuesSuppressed {
		return fmt.Errorf("%w: %d imputed + %d lost markers exceed %d suppressed values",
			ErrResult, res.ValuesImputed, res.MarkersLost, res.ValuesSuppressed)
	}
	if res.ImputeBandMax < 0 || res.ImputeBandMax > 1+1e-9 {
		return fmt.Errorf("%w: ImputeBandMax %.9f outside [0, 1]",
			ErrResult, res.ImputeBandMax)
	}
	if res.Rounds < 0 || len(res.ErrorSeries) != res.Rounds {
		return fmt.Errorf("%w: %d rounds but %d error-series entries",
			ErrResult, res.Rounds, len(res.ErrorSeries))
	}
	for i, e := range res.ErrorSeries {
		if e < 0 || e > 100 {
			return fmt.Errorf("%w: ErrorSeries[%d] = %.3f outside [0, 100]",
				ErrResult, i, e)
		}
	}
	return ResultShardCounters(res)
}

// ResultShardCounters checks the sharded-tier fields of a result (also
// run by Result): all zero on a single-collector result, internally
// consistent on a sharded one (shards down within bounds, no more
// re-dispatches than orphanings, exactly one watermark per shard, each
// a round the session ran or the never-live sentinel -1).
func ResultShardCounters(res cluster.Result) error {
	if res.Shards == 0 {
		if res.ShardsDown != 0 || res.OrphanedTrees != 0 || res.TreesRedispatched != 0 ||
			res.LeaderElections != 0 || len(res.ShardWatermarks) != 0 {
			return fmt.Errorf("%w: single-collector result carries shard counters (down %d, orphaned %d, redispatched %d, elections %d, %d watermarks)",
				ErrResult, res.ShardsDown, res.OrphanedTrees, res.TreesRedispatched,
				res.LeaderElections, len(res.ShardWatermarks))
		}
		return nil
	}
	if res.Shards < 0 {
		return fmt.Errorf("%w: %d shards", ErrResult, res.Shards)
	}
	if res.ShardsDown < 0 || res.ShardsDown > res.Shards {
		return fmt.Errorf("%w: %d of %d shards down", ErrResult, res.ShardsDown, res.Shards)
	}
	if res.OrphanedTrees < 0 || res.TreesRedispatched < 0 ||
		res.TreesRedispatched > res.OrphanedTrees {
		return fmt.Errorf("%w: %d trees redispatched of %d orphaned",
			ErrResult, res.TreesRedispatched, res.OrphanedTrees)
	}
	if res.LeaderElections < 0 {
		return fmt.Errorf("%w: %d leader elections", ErrResult, res.LeaderElections)
	}
	if len(res.ShardWatermarks) != res.Shards {
		return fmt.Errorf("%w: %d watermarks for %d shards",
			ErrResult, len(res.ShardWatermarks), res.Shards)
	}
	for s, w := range res.ShardWatermarks {
		if w < -1 || w >= res.Rounds {
			return fmt.Errorf("%w: shard %d watermark %d outside [-1, %d)",
				ErrResult, s, w, res.Rounds)
		}
	}
	return nil
}

// DemandedPairs is the context's independent recount of the logical
// pair targets the collector should report: alias-folded holistic pairs
// plus one target per aggregated attribute.
func (ctx Context) DemandedPairs() int {
	return recountDemanded(ctx)
}

// recountDemanded independently reproduces the collector's
// demanded-pair accounting: holistic pairs fold aliases onto originals
// and deduplicate, aggregated attributes count once each.
func recountDemanded(ctx Context) int {
	holistic := make(map[model.Pair]struct{})
	aggAttrs := make(map[model.AttrID]struct{})
	for _, p := range ctx.Demand.Pairs() {
		orig := ctx.resolve(p.Attr)
		if ctx.Spec.KindOf(orig) != agg.Holistic {
			aggAttrs[orig] = struct{}{}
			continue
		}
		holistic[model.Pair{Node: p.Node, Attr: orig}] = struct{}{}
	}
	return len(holistic) + len(aggAttrs)
}
