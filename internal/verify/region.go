package verify

import (
	"errors"
	"fmt"
	"sort"

	"remo/internal/plan"
)

// Region-aware additions to the error taxonomy (every failed check
// wraps exactly one of these, like the core set in verify.go).
var (
	// ErrRegion marks a surviving region whose coverage fell below the
	// configured floor during a region loss.
	ErrRegion = errors.New("verify: region coverage below floor")
	// ErrTopology marks ledger charges that disagree with an independent
	// recount priced from the system's region topology.
	ErrTopology = errors.New("verify: charges disagree with topology prices")
)

// RegionCoverageMap recounts, per region, the percentage of demanded
// node-attribute pairs the forest delivers (100 when a region demands
// nothing). Pairs are attributed to the region of the node observing
// them, so the map answers "how well is each region's telemetry
// covered" independent of where the trees route.
func RegionCoverageMap(ctx Context, f *plan.Forest) map[string]float64 {
	demanded := make(map[string]int)
	collected := make(map[string]int)
	if ctx.Sys == nil || ctx.Demand == nil {
		return nil
	}
	for _, p := range ctx.Demand.Pairs() {
		demanded[ctx.Sys.RegionOf(p.Node)]++
	}
	if f != nil {
		for _, p := range f.CollectedPairs(ctx.Demand) {
			collected[ctx.Sys.RegionOf(p.Node)]++
		}
	}
	out := make(map[string]float64, len(demanded))
	for r, d := range demanded {
		if d == 0 {
			out[r] = 100
			continue
		}
		out[r] = 100 * float64(collected[r]) / float64(d)
	}
	return out
}

// RegionCoverage asserts the region-loss survival invariant: with the
// regions in lost written off entirely, every surviving region's
// coverage (per RegionCoverageMap) must meet floorPct. A nil lost set
// checks all regions — the steady-state form of the same floor.
func RegionCoverage(ctx Context, f *plan.Forest, lost map[string]bool, floorPct float64) error {
	cov := RegionCoverageMap(ctx, f)
	if cov == nil {
		return fmt.Errorf("%w: nil system or demand", ErrRegion)
	}
	regions := make([]string, 0, len(cov))
	for r := range cov {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	for _, r := range regions {
		if lost[r] {
			continue
		}
		if cov[r] < floorPct-capacityEps {
			return fmt.Errorf("%w: region %q covers %.1f%% of its demand, floor %.1f%% (lost: %v)",
				ErrRegion, r, cov[r], floorPct, lostList(lost))
		}
	}
	return nil
}

// lostList renders the lost set deterministically for error messages.
func lostList(lost map[string]bool) []string {
	out := make([]string, 0, len(lost))
	for r, isLost := range lost {
		if isLost {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// TopologyCharge asserts that claimed statistics match a recount priced
// straight from the system's region topology, independent of the
// installed Distance closure: the shadow system rebinds Distance from
// Topology.EdgeCost (via Clone/ApplyTopology), so a tampered or stale
// closure — charges that drifted from the declared per-edge prices —
// surfaces as ErrTopology. Systems without a topology have nothing to
// cross-check and pass vacuously.
func TopologyCharge(ctx Context, f *plan.Forest, st plan.Stats) error {
	if ctx.Sys == nil || f == nil {
		return fmt.Errorf("%w: nil system or forest", ErrTopology)
	}
	if ctx.Sys.Topology == nil {
		return nil
	}
	shadow := ctx
	shadow.Sys = ctx.Sys.Clone()
	rc := Recount(shadow, f)
	for n, u := range rc.Usage {
		if !closeEnough(st.Usage[n], u) {
			return fmt.Errorf("%w: node %v charged %.6f, topology prices %.6f",
				ErrTopology, n, st.Usage[n], u)
		}
	}
	for n, u := range st.Usage {
		if _, ok := rc.Usage[n]; !ok && u > capacityEps {
			return fmt.Errorf("%w: node %v charged %.6f but is placed in no tree",
				ErrTopology, n, u)
		}
	}
	if !closeEnough(st.CentralUsage, rc.CentralUsage) {
		return fmt.Errorf("%w: central charged %.6f, topology prices %.6f",
			ErrTopology, st.CentralUsage, rc.CentralUsage)
	}
	if !closeEnough(st.TotalCost, rc.TotalCost) {
		return fmt.Errorf("%w: total charged %.6f, topology prices %.6f",
			ErrTopology, st.TotalCost, rc.TotalCost)
	}
	return nil
}
