package verify

import (
	"errors"
	"fmt"

	"remo/internal/cluster"
	"remo/internal/plan"
)

// ErrSharding marks a broken shard-conservation invariant: a tree
// without exactly one accountable owner, an orphan ledger that
// disagrees with the liveness state, or a merged result that is not the
// union of its per-shard partials.
var ErrSharding = errors.New("verify: shard conservation violated")

// ShardState is the dispatcher-side snapshot Sharding checks: the
// tree→shard accountability map (orphans included, booked to the dead
// shard they came from), the shards currently down, and the orphans
// awaiting re-dispatch.
type ShardState struct {
	Shards     int
	Assignment map[string]int
	Down       []int
	Pending    []string
}

// Sharding asserts the sharded tier's conservation invariants against
// the installed forest:
//
//   - every installed tree is owned by exactly one shard, in range;
//   - the accountability map carries no retired (un-installed) trees;
//   - a tree booked to a live shard is being collected, so it must not
//     sit in the orphan queue; a tree booked to a down shard must —
//     orphanhood and dead ownership are the same fact seen from the
//     queue and from the map.
func Sharding(st ShardState, forest *plan.Forest) error {
	if st.Shards < 1 {
		return fmt.Errorf("%w: %d shards", ErrSharding, st.Shards)
	}
	down := make(map[int]bool, len(st.Down))
	for _, s := range st.Down {
		down[s] = true
	}
	pending := make(map[string]bool, len(st.Pending))
	for _, k := range st.Pending {
		pending[k] = true
	}

	installed := make(map[string]bool)
	for _, t := range forest.Trees {
		k := t.Attrs.Key()
		installed[k] = true
		s, owned := st.Assignment[k]
		if !owned {
			return fmt.Errorf("%w: installed tree %q has no owning shard", ErrSharding, k)
		}
		if s < 0 || s >= st.Shards {
			return fmt.Errorf("%w: tree %q owned by out-of-range shard %d of %d",
				ErrSharding, k, s, st.Shards)
		}
		if down[s] && !pending[k] {
			return fmt.Errorf("%w: tree %q booked to down shard %d but not queued as an orphan",
				ErrSharding, k, s)
		}
		if !down[s] && pending[k] {
			return fmt.Errorf("%w: tree %q owned by live shard %d yet queued as an orphan",
				ErrSharding, k, s)
		}
	}
	for k := range st.Assignment {
		if !installed[k] {
			return fmt.Errorf("%w: assignment carries retired tree %q", ErrSharding, k)
		}
	}
	for _, k := range st.Pending {
		if !installed[k] {
			return fmt.Errorf("%w: orphan queue carries retired tree %q", ErrSharding, k)
		}
	}
	return nil
}

// ShardUnion asserts that the merged session result is the union of
// the per-shard partials (the residual collector's included): the
// demand partition across shards is exact — every demanded pair is
// accounted to exactly one partial — so coverage and delivery counters
// must sum to the merged ones.
func ShardUnion(merged cluster.Result, partials []cluster.Result) error {
	if len(partials) == 0 {
		return fmt.Errorf("%w: no per-shard partials", ErrSharding)
	}
	var demanded, covered, values int
	for _, p := range partials {
		demanded += p.DemandedPairs
		covered += p.CoveredPairs
		values += p.ValuesDelivered
	}
	if demanded != merged.DemandedPairs {
		return fmt.Errorf("%w: partials demand %d pairs, merged reports %d",
			ErrSharding, demanded, merged.DemandedPairs)
	}
	if covered != merged.CoveredPairs {
		return fmt.Errorf("%w: partials cover %d pairs, merged reports %d",
			ErrSharding, covered, merged.CoveredPairs)
	}
	if values != merged.ValuesDelivered {
		return fmt.Errorf("%w: partials delivered %d values, merged reports %d",
			ErrSharding, values, merged.ValuesDelivered)
	}
	return nil
}
