package verify_test

import (
	"errors"
	"testing"

	"remo/internal/core"
	"remo/internal/verify"
	"remo/internal/workload"
)

// TestOracleGuidedSearchMatchesBruteForce differentially tests the
// guided partition search against exhaustive enumeration on tiny
// instances: every set partition of the demanded universe is evaluated
// with the planner's own per-partition procedure, and the guided result
// must collect exactly as many pairs as the best enumerated partition.
// (Cost may differ within the same pair count: the search's
// plan-comparison epsilon deliberately ignores sub-nano cost noise.)
func TestOracleGuidedSearchMatchesBruteForce(t *testing.T) {
	const instances = 40
	checked := 0
	for seed := int64(1000); seed < 1000+instances; seed++ {
		in, err := workload.Generate(workload.TinyBounds(), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d, err := in.Demand()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p := core.NewPlanner()
		guided := p.Plan(in.Sys, d)
		best, parts, err := verify.Optimum(p, in.Sys, d)
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		checked++
		if guided.Stats.Collected != best.Stats.Collected {
			t.Errorf("%v: guided search collected %d pairs, optimum over %d partitions collects %d",
				in, guided.Stats.Collected, parts, best.Stats.Collected)
		}
	}
	if checked < instances {
		t.Fatalf("only %d/%d instances were enumerable", checked, instances)
	}
}

// TestOracleRefusesLargeUniverse pins the safety bound.
func TestOracleRefusesLargeUniverse(t *testing.T) {
	in, err := workload.Generate(workload.GenBounds{
		MinNodes: 12, MaxNodes: 12,
		MaxAttrs: 14, MaxTasks: 20,
		CapacityLo: 200, CapacityHi: 400,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := in.Demand()
	if err != nil {
		t.Fatal(err)
	}
	if d.Universe().Len() <= verify.MaxBruteAttrs {
		t.Skipf("instance universe %d too small to trigger the bound", d.Universe().Len())
	}
	_, _, err = verify.Optimum(core.NewPlanner(), in.Sys, d)
	if !errors.Is(err, verify.ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}
