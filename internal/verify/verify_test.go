package verify_test

import (
	"errors"
	"testing"

	"remo/internal/core"
	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
	"remo/internal/verify"
	"remo/internal/workload"
)

// planned builds a generated instance, plans it, and returns everything
// a check needs.
func planned(t *testing.T, seed int64) (verify.Context, *plan.Forest, plan.Stats) {
	t.Helper()
	in, err := workload.Generate(workload.DefaultBounds(), seed)
	if err != nil {
		t.Fatal(err)
	}
	d, err := in.Demand()
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewPlanner().Plan(in.Sys, d)
	return verify.Context{Sys: in.Sys, Demand: d}, res.Forest, res.Stats
}

func TestPlannerOutputPassesAllChecks(t *testing.T) {
	ctx, f, st := planned(t, 7)
	if err := verify.Claims(ctx, f, st); err != nil {
		t.Fatalf("planner output failed verification: %v", err)
	}
}

func TestRecountAgreesWithComputeStats(t *testing.T) {
	ctx, f, st := planned(t, 11)
	rc := verify.Recount(ctx, f)
	if rc.Collected != st.Collected {
		t.Fatalf("recount collected %d, ComputeStats %d", rc.Collected, st.Collected)
	}
	if diff := rc.TotalCost - st.TotalCost; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("recount total cost %.9f, ComputeStats %.9f", rc.TotalCost, st.TotalCost)
	}
}

// TestMutationOverfilledBudget proves the capacity check is non-vacuous:
// shrinking one placed node's budget below its recounted usage must trip
// ErrCapacity.
func TestMutationOverfilledBudget(t *testing.T) {
	ctx, f, _ := planned(t, 3)
	if err := verify.Plan(ctx, f); err != nil {
		t.Fatalf("pre-mutation plan invalid: %v", err)
	}
	rc := verify.Recount(ctx, f)
	var victim model.NodeID
	for n, u := range rc.Usage {
		if u > 1 {
			victim = n
			break
		}
	}
	if victim == 0 {
		t.Fatal("no placed node with usage to overfill")
	}
	mutated := ctx.Sys.Clone()
	for i := range mutated.Nodes {
		if mutated.Nodes[i].ID == victim {
			mutated.Nodes[i].Capacity = rc.Usage[victim] / 2
		}
	}
	err := verify.Plan(verify.Context{Sys: mutated, Demand: ctx.Demand}, f)
	if !errors.Is(err, verify.ErrCapacity) {
		t.Fatalf("overfilled budget not flagged: got %v, want ErrCapacity", err)
	}
}

// TestMutationOverlappingTrees proves the partition-disjointness check
// fires when two trees deliver the same attribute.
func TestMutationOverlappingTrees(t *testing.T) {
	ctx, f, _ := planned(t, 5)
	if len(f.Trees) < 2 {
		t.Skip("plan has a single tree; overlap needs two")
	}
	mutated := f.Clone()
	// Graft the second tree's attribute set to include one of the first's.
	a := mutated.Trees[0].Attrs.Attrs()[0]
	mutated.Trees[1].Attrs = mutated.Trees[1].Attrs.Union(model.NewAttrSet(a))
	err := verify.Plan(ctx, mutated)
	if !errors.Is(err, verify.ErrStructure) && !errors.Is(err, verify.ErrOwnership) {
		t.Fatalf("overlapping trees not flagged: got %v", err)
	}
}

// TestMutationNonParticipantMember proves the ownership check fires for
// a member that demands none of its tree's attributes.
func TestMutationNonParticipantMember(t *testing.T) {
	sys, err := model.NewSystem(1000, cost.Default(), []model.Node{
		{ID: 1, Capacity: 500, Attrs: []model.AttrID{1}},
		{ID: 2, Capacity: 500, Attrs: []model.AttrID{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := task.NewDemand()
	d.Set(1, 1, 1) // node 2 demands nothing
	tr := plan.NewTree(model.NewAttrSet(1))
	if err := tr.AddNode(1, model.Central); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddNode(2, 1); err != nil {
		t.Fatal(err)
	}
	f := plan.NewForest()
	f.Add(tr)
	err = verify.Plan(verify.Context{Sys: sys, Demand: d}, f)
	if !errors.Is(err, verify.ErrOwnership) {
		t.Fatalf("non-participant member not flagged: got %v, want ErrOwnership", err)
	}
}

// TestMutationForeignAttribute proves the ownership check fires when a
// member's demanded attribute is not observable at that node.
func TestMutationForeignAttribute(t *testing.T) {
	sys, err := model.NewSystem(1000, cost.Default(), []model.Node{
		{ID: 1, Capacity: 500, Attrs: []model.AttrID{1}}, // does NOT observe attr 2
	})
	if err != nil {
		t.Fatal(err)
	}
	d := task.NewDemand()
	d.Set(1, 2, 1) // demands an attribute the node cannot observe
	tr := plan.NewTree(model.NewAttrSet(2))
	if err := tr.AddNode(1, model.Central); err != nil {
		t.Fatal(err)
	}
	f := plan.NewForest()
	f.Add(tr)
	err = verify.Plan(verify.Context{Sys: sys, Demand: d}, f)
	if !errors.Is(err, verify.ErrOwnership) {
		t.Fatalf("foreign attribute not flagged: got %v, want ErrOwnership", err)
	}
}

// TestMutationTamperedClaims proves the accounting cross-check rejects
// doctored planner statistics.
func TestMutationTamperedClaims(t *testing.T) {
	ctx, f, st := planned(t, 9)
	cases := []struct {
		name   string
		mutate func(*plan.Stats)
	}{
		{"inflated collected", func(s *plan.Stats) { s.Collected++ }},
		{"deflated collected", func(s *plan.Stats) { s.Collected-- }},
		{"central usage", func(s *plan.Stats) { s.CentralUsage += 1 }},
		{"total cost", func(s *plan.Stats) { s.TotalCost -= 5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tampered := st
			tampered.Usage = make(map[model.NodeID]float64, len(st.Usage))
			for n, u := range st.Usage {
				tampered.Usage[n] = u
			}
			tc.mutate(&tampered)
			if err := verify.Claims(ctx, f, tampered); !errors.Is(err, verify.ErrAccounting) {
				t.Fatalf("tampered stats not flagged: got %v, want ErrAccounting", err)
			}
		})
	}
	t.Run("node usage", func(t *testing.T) {
		tampered := st
		tampered.Usage = make(map[model.NodeID]float64, len(st.Usage))
		for n, u := range st.Usage {
			tampered.Usage[n] = u
		}
		for n := range tampered.Usage {
			tampered.Usage[n] *= 1.5
			break
		}
		if err := verify.Claims(ctx, f, tampered); !errors.Is(err, verify.ErrAccounting) {
			t.Fatalf("tampered usage not flagged: got %v, want ErrAccounting", err)
		}
	})
}

// TestNilAndEmptyInputs pins the degenerate paths.
func TestNilAndEmptyInputs(t *testing.T) {
	if err := verify.Plan(verify.Context{}, nil); !errors.Is(err, verify.ErrStructure) {
		t.Fatalf("nil forest: got %v", err)
	}
	sys, err := model.NewSystem(100, cost.Default(), []model.Node{
		{ID: 1, Capacity: 100, Attrs: []model.AttrID{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := verify.Context{Sys: sys, Demand: task.NewDemand()}
	if err := verify.Plan(ctx, plan.NewForest()); err != nil {
		t.Fatalf("empty forest should verify: %v", err)
	}
	if err := verify.Claims(ctx, plan.NewForest(), plan.Stats{}); err != nil {
		t.Fatalf("empty claims should verify: %v", err)
	}
}
