// Package adapt implements REMO's runtime topology adaptation (§4):
// keeping the monitoring topology efficient as monitoring tasks are
// added, modified and removed, while balancing topology quality against
// the cost of reconfiguring the overlay.
//
// Four schemes are provided, matching the paper's Fig. 9 comparison:
//
//   - DIRECT-APPLY (D-A): apply task changes with minimal topology
//     change — rebuild only the trees whose attribute sets are affected,
//     never re-partition.
//   - REBUILD: rerun the full REMO planner from scratch on every change.
//   - NO-THROTTLE: D-A base topology plus a bounded local search over
//     merge/split operations involving the reconstructed trees.
//   - ADAPTIVE: NO-THROTTLE plus cost-benefit throttling — an operation
//     is applied only when its reconfiguration cost is justified by the
//     topology-efficiency gain and the trees' update history.
//
// A fifth scheme, INCREMENTAL, goes beyond the paper: it keeps the full
// guided search's plan quality by re-running the search on every
// change, but scoped to the dirty attribute neighborhood and seeded
// from the current partition (core.Replanner), falling back to the full
// search when the scoped result regresses.
package adapt

import (
	"time"

	"remo/internal/core"
	"remo/internal/model"
	"remo/internal/plan"
	"remo/internal/task"
)

// Scheme names an adaptation policy.
type Scheme string

// Available schemes.
const (
	DirectApply Scheme = "D-A"
	Rebuild     Scheme = "REBUILD"
	NoThrottle  Scheme = "NO-THROTTLE"
	Adaptive    Scheme = "ADAPTIVE"
	// Incremental replans with the guided search scoped to the change's
	// dirty neighborhood, seeded from the current partition.
	Incremental Scheme = "INCREMENTAL"
)

// Schemes lists the paper's policies in its presentation order
// (INCREMENTAL is an extension and deliberately not part of the Fig. 9
// comparison set).
func Schemes() []Scheme {
	return []Scheme{DirectApply, Rebuild, NoThrottle, Adaptive}
}

// Report summarizes one adaptation round.
type Report struct {
	// AdaptMessages is the number of overlay reconfiguration messages
	// (edges connected or disconnected) this round.
	AdaptMessages int
	// PlanTime is the wall-clock planning cost of the round.
	PlanTime time.Duration
	// Stats profiles the topology in force after the round.
	Stats plan.Stats
	// Operations counts merge/split operations applied by the searching
	// schemes.
	Operations int
	// Diff relates the round's forest to the previous one tree-by-tree
	// (kept trees survive the swap byte-for-byte).
	Diff plan.Diff
	// Replan carries the incremental replanner's telemetry; zero for
	// the other schemes.
	Replan core.ReplanStats
}

// Adaptor maintains a monitoring topology across task-set changes.
type Adaptor struct {
	scheme  Scheme
	planner *core.Planner
	sys     *model.System

	demand    *task.Demand
	forest    *plan.Forest
	partition []model.AttrSet

	// epoch is a logical clock advanced once per adaptation round; the
	// throttling threshold uses it to favor adapting rarely-touched
	// trees.
	epoch int
	// lastAdjusted maps a tree's attribute-set key to the epoch it was
	// last rebuilt or restructured.
	lastAdjusted map[string]int

	// maxOps bounds search operations per round for the searching
	// schemes.
	maxOps int

	// replan is the INCREMENTAL scheme's stateful replanner, created on
	// Init; replanOpts tune it.
	replan     *core.Replanner
	replanOpts []core.ReplanOption
}

// New returns an adaptor using the given policy. The planner supplies
// the tree builder, allocation policy and aggregation spec shared by all
// schemes.
func New(scheme Scheme, planner *core.Planner, sys *model.System) *Adaptor {
	return &Adaptor{
		scheme:       scheme,
		planner:      planner,
		sys:          sys,
		demand:       task.NewDemand(),
		forest:       plan.NewForest(),
		lastAdjusted: make(map[string]int),
		maxOps:       32,
	}
}

// Scheme returns the adaptor's policy.
func (a *Adaptor) Scheme() Scheme { return a.scheme }

// SetReplanOptions tunes the INCREMENTAL scheme's replanner; call
// before Init.
func (a *Adaptor) SetReplanOptions(opts ...core.ReplanOption) { a.replanOpts = opts }

// Forest returns the topology currently in force.
func (a *Adaptor) Forest() *plan.Forest { return a.forest }

// Partition returns the attribute partition currently in force.
func (a *Adaptor) Partition() []model.AttrSet {
	return append([]model.AttrSet(nil), a.partition...)
}

// Demand returns the demand currently planned for.
func (a *Adaptor) Demand() *task.Demand { return a.demand }

// Init plans the initial topology with the full REMO algorithm;
// subsequent changes go through Apply.
func (a *Adaptor) Init(d *task.Demand) Report {
	return a.initWith(d, func() core.Result {
		if a.scheme == Incremental {
			a.replan = core.NewReplanner(a.planner, a.sys, d, a.replanOpts...)
			return a.replan.Current()
		}
		return a.planner.Plan(a.sys, d)
	})
}

// InitPartition installs the deterministic evaluation of a known
// partition instead of searching — cold resume uses this to rebuild the
// journaled topology's exact forest (the evaluation is deterministic in
// system, demand and partition).
func (a *Adaptor) InitPartition(d *task.Demand, sets []model.AttrSet) Report {
	return a.initWith(d, func() core.Result {
		res := a.planner.PlanPartition(a.sys, d, sets)
		if a.scheme == Incremental {
			a.replan = core.NewReplannerFrom(a.planner, a.sys, d, res, a.replanOpts...)
		}
		return res
	})
}

// initWith commits the initial plan produced by build.
func (a *Adaptor) initWith(d *task.Demand, build func() core.Result) Report {
	start := time.Now()
	base := a.forest
	res := build()
	msgs := plan.DiffEdges(base, res.Forest)
	a.demand = d.Clone()
	a.forest = res.Forest
	a.partition = res.Partition
	a.epoch++
	for _, t := range a.forest.Trees {
		a.lastAdjusted[t.Attrs.Key()] = a.epoch
	}
	return Report{
		AdaptMessages: msgs,
		PlanTime:      time.Since(start),
		Stats:         res.Stats,
		Diff:          plan.DiffForests(base, res.Forest),
	}
}

// Apply adapts the topology to a new demand according to the policy.
func (a *Adaptor) Apply(newDemand *task.Demand) Report {
	start := time.Now()
	a.epoch++
	base := a.forest

	var rep Report
	switch a.scheme {
	case Incremental:
		if a.replan == nil {
			a.replan = core.NewReplannerFrom(a.planner, a.sys, a.demand, core.Result{
				Forest:    a.forest,
				Stats:     a.forest.ComputeStats(a.demand, a.sys, a.planner.Spec()),
				Partition: a.Partition(),
			}, a.replanOpts...)
		}
		res, rstats := a.replan.Update(newDemand)
		rep.AdaptMessages = plan.DiffEdges(a.forest, res.Forest)
		rep.Replan = rstats
		touched := make(map[string]struct{}, len(rstats.Diff.Rebuilt))
		for _, k := range rstats.Diff.Rebuilt {
			touched[k] = struct{}{}
		}
		a.install(newDemand, res.Forest, res.Partition, touched)
		rep.Stats = res.Stats
	case Rebuild:
		res := a.planner.Plan(a.sys, newDemand)
		rep.AdaptMessages = plan.DiffEdges(a.forest, res.Forest)
		a.install(newDemand, res.Forest, res.Partition, nil)
		rep.Stats = res.Stats
	case DirectApply:
		forest, sets, _ := a.directApply(newDemand)
		rep.AdaptMessages = plan.DiffEdges(a.forest, forest)
		a.install(newDemand, forest, sets, nil)
		rep.Stats = forest.ComputeStats(newDemand, a.sys, a.planner.Spec())
	case NoThrottle, Adaptive:
		forest, sets, rebuilt := a.directApply(newDemand)
		base := a.forest
		forest, sets, ops := a.optimize(newDemand, forest, sets, rebuilt, a.scheme == Adaptive)
		rep.Operations = ops
		rep.AdaptMessages = plan.DiffEdges(base, forest)
		touched := make(map[string]struct{}, len(rebuilt))
		for k := range rebuilt {
			touched[k] = struct{}{}
		}
		a.install(newDemand, forest, sets, touched)
		rep.Stats = forest.ComputeStats(newDemand, a.sys, a.planner.Spec())
	default:
		res := a.planner.Plan(a.sys, newDemand)
		rep.AdaptMessages = plan.DiffEdges(a.forest, res.Forest)
		a.install(newDemand, res.Forest, res.Partition, nil)
		rep.Stats = res.Stats
	}
	rep.Diff = plan.DiffForests(base, a.forest)
	rep.PlanTime = time.Since(start)
	return rep
}

// Rewire commits an externally built topology (e.g. a failure repair)
// as a new adaptation epoch. Unlike Apply it does not replan: the given
// forest is installed as-is, so the adaptor's incremental bookkeeping
// stays consistent with what the runtime actually deployed. The
// incremental replanner is reseeded from the installed forest — its
// memo describes trees the repair may have rewired.
func (a *Adaptor) Rewire(d *task.Demand, forest *plan.Forest) {
	a.epoch++
	a.install(d, forest, forest.Partition(), nil)
	if a.replan != nil {
		a.replan.Reset(a.demand, forest)
	}
}

// install commits a new topology. touched lists tree keys whose
// adjustment timestamps should advance; nil advances every tree (full
// replans).
func (a *Adaptor) install(d *task.Demand, forest *plan.Forest, sets []model.AttrSet, touched map[string]struct{}) {
	a.demand = d.Clone()
	a.forest = forest
	a.partition = sets

	present := make(map[string]struct{}, len(forest.Trees))
	for _, t := range forest.Trees {
		k := t.Attrs.Key()
		present[k] = struct{}{}
		if _, seen := a.lastAdjusted[k]; !seen {
			a.lastAdjusted[k] = a.epoch
			continue
		}
		if touched == nil {
			a.lastAdjusted[k] = a.epoch
		} else if _, hit := touched[k]; hit {
			a.lastAdjusted[k] = a.epoch
		}
	}
	for k := range a.lastAdjusted {
		if _, ok := present[k]; !ok {
			delete(a.lastAdjusted, k)
		}
	}
}
