package adapt

import (
	"sort"

	"remo/internal/model"
	"remo/internal/partition"
	"remo/internal/plan"
	"remo/internal/task"
	"remo/internal/tree"
)

// directApply computes the D-A base topology for a new demand: the
// partition keeps its shape (removed attributes drop out of their sets,
// brand-new attributes join as singleton sets) and only trees delivering
// affected attributes are reconstructed. It returns the base forest, the
// updated partition, and the keys of the reconstructed trees.
func (a *Adaptor) directApply(newDemand *task.Demand) (*plan.Forest, []model.AttrSet, map[string]struct{}) {
	change := task.Diff(a.demand, newDemand)
	universe := newDemand.Universe()

	// Re-shape the partition.
	var sets []model.AttrSet
	covered := model.AttrSet{}
	for _, s := range a.partition {
		kept := s.Intersect(universe)
		if !kept.Empty() {
			sets = append(sets, kept)
			covered = covered.Union(kept)
		}
	}
	for _, attr := range universe.Attrs() {
		if !covered.Contains(attr) {
			sets = append(sets, model.NewAttrSet(attr))
		}
	}

	// Decide which trees need reconstruction.
	rebuilt := make(map[string]struct{})
	var changedIdx []int
	existing := make(map[string]*plan.Tree, len(a.forest.Trees))
	for _, t := range a.forest.Trees {
		existing[t.Attrs.Key()] = t
	}
	for i, s := range sets {
		_, hasTree := existing[s.Key()]
		if !hasTree || s.IntersectsAny(change.AffectedAttrs) {
			changedIdx = append(changedIdx, i)
			rebuilt[s.Key()] = struct{}{}
		}
	}

	forest := a.rebuildSubset(newDemand, sets, existing, changedIdx)
	return forest, sets, rebuilt
}

// rebuildSubset constructs the trees of sets[changedIdx...] while keeping
// every other set's existing tree (looked up by key in existing) fixed,
// charging the fixed trees' usage before allocating capacity to the
// rebuilt ones. Rebuilt trees are constructed smallest-first (ORDERED
// allocation semantics).
func (a *Adaptor) rebuildSubset(d *task.Demand, sets []model.AttrSet, existing map[string]*plan.Tree, changedIdx []int) *plan.Forest {
	changed := make(map[int]struct{}, len(changedIdx))
	for _, i := range changedIdx {
		changed[i] = struct{}{}
	}

	// Fixed-tree usage is charged up front.
	used := make(map[model.NodeID]float64)
	var centralUsed float64
	fixedTrees := make(map[int]*plan.Tree, len(sets))
	for i, s := range sets {
		if _, isChanged := changed[i]; isChanged {
			continue
		}
		t := existing[s.Key()]
		if t == nil {
			t = plan.NewTree(s)
		}
		fixedTrees[i] = t
		st := plan.ComputeTreeStats(t, d, a.sys, a.planner.Spec())
		for n, u := range st.Usage {
			used[n] += u
		}
		centralUsed += st.RootSend
	}

	// Build changed trees smallest-first.
	order := append([]int(nil), changedIdx...)
	sort.SliceStable(order, func(x, y int) bool {
		return len(d.Participants(sets[order[x]])) < len(d.Participants(sets[order[y]]))
	})

	built := make(map[int]*plan.Tree, len(order))
	for _, i := range order {
		participants := d.Participants(sets[i])
		avail := make(map[model.NodeID]float64, len(participants))
		for _, n := range participants {
			rem := a.sys.Capacity(n) - used[n]
			if rem < 0 {
				rem = 0
			}
			avail[n] = rem
		}
		centralAvail := a.sys.CentralCapacity - centralUsed
		if centralAvail < 0 {
			centralAvail = 0
		}
		r := a.planner.Builder().Build(tree.Context{
			Sys:          a.sys,
			Demand:       d,
			Spec:         a.planner.Spec(),
			Attrs:        sets[i],
			Nodes:        participants,
			Avail:        avail,
			CentralAvail: centralAvail,
		})
		built[i] = r.Tree
		for n, u := range r.Used {
			used[n] += u
		}
		centralUsed += r.CentralUsed
	}

	forest := plan.NewForest()
	for i := range sets {
		var t *plan.Tree
		if ft, ok := fixedTrees[i]; ok {
			t = ft
		} else {
			t = built[i]
		}
		if t != nil && !t.Empty() {
			forest.Add(t)
		}
	}
	return forest
}

// searchOp is a ranked candidate operation for the adaptation search.
type searchOp struct {
	op partition.Op
	// effectiveness is estimated gain divided by estimated adaptation
	// cost; candidates are evaluated in decreasing order.
	effectiveness float64
}

// optimize runs the bounded merge/split search of §4.1 over the D-A base
// topology. Only operations involving at least one reconstructed tree
// (keys in rebuilt) are considered. With throttle set, each operation
// must additionally pass the cost-benefit threshold of §4.2.
func (a *Adaptor) optimize(
	d *task.Demand,
	forest *plan.Forest,
	sets []model.AttrSet,
	rebuilt map[string]struct{},
	throttle bool,
) (*plan.Forest, []model.AttrSet, int) {
	spec := a.planner.Spec()
	curStats := forest.ComputeStats(d, a.sys, spec)
	ops := 0

	for ops < a.maxOps {
		cands := a.rankOps(d, sets, forest, rebuilt)

		bestForest, bestSets := forest, sets
		bestStats := curStats
		var bestKeys []string
		found := false

		// Evaluate merges until the first valid one, then splits until
		// the first valid one, and keep the better of the two (§4.1).
		// Candidates are ranked by estimated cost effectiveness, so a
		// small per-kind evaluation budget keeps adaptation responsive.
		const evalBudgetPerKind = 8
		for _, kind := range []partition.OpKind{partition.MergeOp, partition.SplitOp} {
			evals := 0
			for _, c := range cands {
				if c.op.Kind != kind {
					continue
				}
				if evals >= evalBudgetPerKind {
					break
				}
				evals++
				newSets, newForest, newStats, keys := a.evaluateOp(d, sets, forest, c.op)
				if !newStats.Score().Better(bestStats.Score()) {
					continue
				}
				if throttle && !a.passThrottle(curStats, newStats, forest, newForest, opSourceKeys(sets, c.op)) {
					// Not cost effective: terminate the search for this
					// kind immediately (§4.2).
					break
				}
				bestForest, bestSets, bestStats, bestKeys = newForest, newSets, newStats, keys
				found = true
				break
			}
		}

		if !found {
			break
		}
		forest, sets, curStats = bestForest, bestSets, bestStats
		for _, k := range bestKeys {
			rebuilt[k] = struct{}{}
			a.lastAdjusted[k] = a.epoch
		}
		ops++
	}
	return forest, sets, ops
}

// rankOps lists candidate operations involving the rebuilt trees, ranked
// by estimated cost effectiveness.
func (a *Adaptor) rankOps(
	d *task.Demand,
	sets []model.AttrSet,
	forest *plan.Forest,
	rebuilt map[string]struct{},
) []searchOp {
	missed := make([]int, len(sets))
	for i, s := range sets {
		collected := 0
		for _, t := range forest.Trees {
			if t.Attrs.Equal(s) {
				for _, n := range t.Members() {
					collected += len(d.LocalAttrs(n, s))
				}
				break
			}
		}
		missed[i] = d.PairCountIn(s) - collected
	}
	gains := partition.Rank(sets, partition.GainContext{
		Demand:     d,
		PerMessage: a.sys.Cost.PerMessage,
		PerValue:   a.sys.Cost.PerValue,
		Missed:     missed,
	})

	inRebuilt := func(i int) bool {
		_, ok := rebuilt[sets[i].Key()]
		return ok
	}
	var cands []searchOp
	cons := a.planner.Constraints()
	for _, g := range gains {
		if !cons.AllowOp(sets, g.Op) {
			continue
		}
		switch g.Op.Kind {
		case partition.MergeOp:
			if !inRebuilt(g.Op.I) && !inRebuilt(g.Op.J) {
				continue
			}
		case partition.SplitOp:
			if !inRebuilt(g.Op.I) {
				continue
			}
		}
		cands = append(cands, searchOp{
			op:            g.Op,
			effectiveness: g.Gain / (1 + a.estimateAdaptCost(d, sets, g.Op)),
		})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].effectiveness > cands[j].effectiveness
	})
	return cands
}

// estimateAdaptCost lower-bounds the number of edges an operation
// rewires: a merge rewires at least the smaller tree, a split at least
// the nodes moved to the new singleton tree.
func (a *Adaptor) estimateAdaptCost(d *task.Demand, sets []model.AttrSet, op partition.Op) float64 {
	switch op.Kind {
	case partition.MergeOp:
		ni := len(d.Participants(sets[op.I]))
		nj := len(d.Participants(sets[op.J]))
		if ni < nj {
			return float64(ni)
		}
		return float64(nj)
	case partition.SplitOp:
		return float64(len(d.Participants(model.NewAttrSet(op.Attr))))
	}
	return 0
}

// evaluateOp applies op to the partition and rebuilds only the affected
// trees, keeping all others fixed. It returns the resulting partition,
// forest, stats and the keys of the trees it rebuilt.
func (a *Adaptor) evaluateOp(
	d *task.Demand,
	sets []model.AttrSet,
	forest *plan.Forest,
	op partition.Op,
) ([]model.AttrSet, *plan.Forest, plan.Stats, []string) {
	newSets := partition.Apply(sets, op)

	existing := make(map[string]*plan.Tree, len(forest.Trees))
	for _, t := range forest.Trees {
		existing[t.Attrs.Key()] = t
	}
	var changedIdx []int
	var keys []string
	for i, s := range newSets {
		if _, ok := existing[s.Key()]; !ok {
			changedIdx = append(changedIdx, i)
			keys = append(keys, s.Key())
		}
	}
	newForest := a.rebuildSubset(d, newSets, existing, changedIdx)
	return newSets, newForest, newForest.ComputeStats(d, a.sys, a.planner.Spec()), keys
}

// opSourceKeys returns the keys of the existing trees an operation
// touches (the merge's two inputs, or the split tree), whose adjustment
// history feeds the throttle.
func opSourceKeys(sets []model.AttrSet, op partition.Op) []string {
	switch op.Kind {
	case partition.MergeOp:
		return []string{sets[op.I].Key(), sets[op.J].Key()}
	case partition.SplitOp:
		return []string{sets[op.I].Key()}
	}
	return nil
}

// passThrottle implements the cost-benefit throttle: the adaptation's
// control-message cost M_adapt must stay below
//
//	Threshold(A_m) = (T_cur − min{T_adj,i}) · (C_cur − C_adj)
//
// where the first factor is how long the operation's trees have been
// stable (in adaptation epochs) and the second is the per-round benefit.
// The benefit combines the monitoring cost the operation saves with the
// value of any additional coverage (priced at the topology's average
// per-pair delivery cost), so coverage-improving operations are favored
// but still suppressed on trees that churn every epoch.
func (a *Adaptor) passThrottle(
	curStats, newStats plan.Stats,
	curForest, newForest *plan.Forest,
	keys []string,
) bool {
	adaptMsgs := float64(plan.DiffEdges(curForest, newForest))
	mAdapt := adaptMsgs * a.sys.Cost.PerMessage

	minAdj := a.epoch
	for _, k := range keys {
		if at, ok := a.lastAdjusted[k]; ok && at < minAdj {
			minAdj = at
		}
	}
	// Trees adjusted this very epoch (or brand new) have zero stability.
	stability := float64(a.epoch - minAdj)

	benefit := curStats.TotalCost - newStats.TotalCost
	if gained := newStats.Collected - curStats.Collected; gained > 0 && curStats.Collected > 0 {
		perPair := curStats.TotalCost / float64(curStats.Collected)
		benefit += float64(gained) * perPair
	}
	if benefit <= 0 {
		return false
	}
	return mAdapt < stability*benefit
}
