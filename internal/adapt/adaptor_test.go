package adapt

import (
	"math/rand"
	"testing"

	"remo/internal/core"
	"remo/internal/cost"
	"remo/internal/model"
	"remo/internal/partition"
	"remo/internal/task"
)

// churnEnv builds a system plus an initial demand and a mutated demand
// (5% of nodes replace half their attributes, as in §7's adaptation
// experiments).
func churnEnv(t *testing.T, rng *rand.Rand, n, nAttrs int) (*model.System, *task.Demand, *task.Demand) {
	t.Helper()
	attrs := make([]model.AttrID, nAttrs)
	for i := range attrs {
		attrs[i] = model.AttrID(i + 1)
	}
	nodes := make([]model.Node, n)
	d := task.NewDemand()
	for i := range nodes {
		id := model.NodeID(i + 1)
		nodes[i] = model.Node{ID: id, Capacity: 40 + rng.Float64()*60, Attrs: attrs}
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				d.Set(id, a, 1)
			}
		}
		if len(d.LocalAttrs(id, model.NewAttrSet(attrs...))) == 0 {
			d.Set(id, attrs[0], 1)
		}
	}
	sys, err := model.NewSystem(600, cost.Model{PerMessage: 10, PerValue: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}

	mutated := d.Clone()
	for i := 0; i < n/20+1; i++ {
		id := model.NodeID(rng.Intn(n) + 1)
		local := mutated.AttrsOf(id).Attrs()
		for j, a := range local {
			if j%2 == 0 {
				mutated.Remove(id, a)
				mutated.Set(id, attrs[(int(a)+j)%nAttrs], 1)
			}
		}
	}
	return sys, d, mutated
}

func newAdaptor(scheme Scheme, sys *model.System) *Adaptor {
	return New(scheme, core.NewPlanner(), sys)
}

func TestInitPlansValidTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sys, d, _ := churnEnv(t, rng, 20, 4)
	for _, scheme := range Schemes() {
		a := newAdaptor(scheme, sys)
		rep := a.Init(d)
		if rep.Stats.Collected == 0 {
			t.Errorf("%s: Init collected nothing", scheme)
		}
		if err := a.Forest().Validate(d, sys, nil); err != nil {
			t.Errorf("%s: invalid init topology: %v", scheme, err)
		}
	}
}

func TestApplyKeepsTopologyValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sys, d, mutated := churnEnv(t, rng, 25, 4)
	for _, scheme := range Schemes() {
		a := newAdaptor(scheme, sys)
		a.Init(d)
		rep := a.Apply(mutated)
		if err := a.Forest().Validate(mutated, sys, nil); err != nil {
			t.Errorf("%s: invalid adapted topology: %v", scheme, err)
		}
		if err := partition.Validate(a.Partition(), mutated.Universe()); err != nil {
			t.Errorf("%s: invalid partition: %v", scheme, err)
		}
		if rep.Stats.Collected == 0 {
			t.Errorf("%s: adapted topology collects nothing", scheme)
		}
	}
}

func TestDirectApplyMinimalChange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys, d, mutated := churnEnv(t, rng, 30, 4)

	da := newAdaptor(DirectApply, sys)
	da.Init(d)
	daRep := da.Apply(mutated)

	rb := newAdaptor(Rebuild, sys)
	rb.Init(d)
	rbRep := rb.Apply(mutated)

	if daRep.AdaptMessages > rbRep.AdaptMessages {
		t.Errorf("D-A adaptation cost %d exceeds REBUILD %d",
			daRep.AdaptMessages, rbRep.AdaptMessages)
	}
	if daRep.PlanTime > rbRep.PlanTime*4 {
		t.Errorf("D-A planning (%v) much slower than REBUILD (%v)",
			daRep.PlanTime, rbRep.PlanTime)
	}
}

func TestNoChangeIsCheap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sys, d, _ := churnEnv(t, rng, 20, 3)
	for _, scheme := range []Scheme{DirectApply, NoThrottle, Adaptive} {
		a := newAdaptor(scheme, sys)
		a.Init(d)
		rep := a.Apply(d.Clone())
		if rep.AdaptMessages != 0 {
			t.Errorf("%s: no-op change produced %d adapt messages", scheme, rep.AdaptMessages)
		}
	}
}

func TestAttributeAdditionAndRemoval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sys, d, _ := churnEnv(t, rng, 20, 3)

	// Add a brand-new attribute on half the nodes; remove attr 1
	// everywhere.
	mutated := d.Clone()
	const newAttr = model.AttrID(9)
	for i, id := range mutated.Nodes() {
		if i%2 == 0 {
			mutated.Set(id, newAttr, 1)
		}
		mutated.Remove(id, 1)
	}

	for _, scheme := range Schemes() {
		a := newAdaptor(scheme, sys)
		a.Init(d)
		a.Apply(mutated)
		if err := a.Forest().Validate(mutated, sys, nil); err != nil {
			t.Errorf("%s: %v", scheme, err)
		}
		if tr := a.Forest().TreeFor(1); tr != nil {
			t.Errorf("%s: removed attribute still has a tree", scheme)
		}
		collected := a.Forest().CollectedPairs(mutated)
		foundNew := false
		for _, p := range collected {
			if p.Attr == newAttr {
				foundNew = true
				break
			}
		}
		if !foundNew {
			t.Errorf("%s: new attribute not collected", scheme)
		}
	}
}

// throttleEnv builds the deterministic throttle scenario: 6 nodes with
// ample capacity all reporting attrs 1 and 2 (which Init merges into one
// tree), and a mutation adding attr 3 everywhere (which D-A plants as a
// separate singleton tree). Merging {1,2} with {3} saves 6 messages per
// round but rewires every edge, so the throttle must weigh the trees'
// stability.
func throttleEnv(t *testing.T) (*model.System, *task.Demand, *task.Demand) {
	t.Helper()
	nodes := make([]model.Node, 6)
	d := task.NewDemand()
	for i := range nodes {
		id := model.NodeID(i + 1)
		nodes[i] = model.Node{ID: id, Capacity: 1e6, Attrs: []model.AttrID{1, 2, 3}}
		d.Set(id, 1, 1)
		d.Set(id, 2, 1)
	}
	sys, err := model.NewSystem(1e6, cost.Model{PerMessage: 10, PerValue: 1}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	mutated := d.Clone()
	for _, id := range d.Nodes() {
		mutated.Set(id, 3, 1)
	}
	return sys, d, mutated
}

func TestThrottleRejectsFreshTrees(t *testing.T) {
	sys, d, mutated := throttleEnv(t)

	nt := newAdaptor(NoThrottle, sys)
	nt.Init(d)
	ntRep := nt.Apply(mutated)
	if ntRep.Operations == 0 {
		t.Fatal("NO-THROTTLE applied no operations; scenario broken")
	}
	if got := len(nt.Partition()); got != 1 {
		t.Fatalf("NO-THROTTLE partition = %v, want single merged set", nt.Partition())
	}

	// Immediately after Init the merged tree has stability 1 epoch:
	// threshold = 1 × (saving ≈ 6C) ≈ 60 < M_adapt (≈ 18 edges × C),
	// so ADAPTIVE must refuse the merge.
	ad := newAdaptor(Adaptive, sys)
	ad.Init(d)
	adRep := ad.Apply(mutated)
	if adRep.Operations != 0 {
		t.Fatalf("ADAPTIVE applied %d operations on fresh trees, want 0", adRep.Operations)
	}
	if got := len(ad.Partition()); got != 2 {
		t.Fatalf("ADAPTIVE partition = %v, want D-A's two sets", ad.Partition())
	}
}

func TestThrottleAllowsStableTrees(t *testing.T) {
	sys, d, mutated := throttleEnv(t)
	ad := newAdaptor(Adaptive, sys)
	ad.Init(d)
	// Many uneventful rounds: the {1,2} tree accumulates stability, so
	// the same merge's threshold grows past its reconfiguration cost.
	for i := 0; i < 25; i++ {
		ad.Apply(d.Clone())
	}
	rep := ad.Apply(mutated)
	if rep.Operations == 0 {
		t.Fatal("ADAPTIVE refused a merge on long-stable trees")
	}
	if got := len(ad.Partition()); got != 1 {
		t.Fatalf("partition = %v, want single merged set", ad.Partition())
	}
}

func TestSearchSchemesBeatDirectApplyOverTime(t *testing.T) {
	// Repeatedly grow the demand; D-A never re-partitions, so the
	// searching schemes should end up collecting at least as many pairs.
	rng := rand.New(rand.NewSource(7))
	sys, d, _ := churnEnv(t, rng, 25, 4)

	da := newAdaptor(DirectApply, sys)
	nt := newAdaptor(NoThrottle, sys)
	da.Init(d)
	nt.Init(d)

	cur := d
	for round := 0; round < 6; round++ {
		mutated := cur.Clone()
		// Shift demand: move a batch of pairs to new attributes.
		for i, id := range mutated.Nodes() {
			if (i+round)%5 == 0 {
				attr := model.AttrID(5 + (round % 3))
				mutated.Set(id, attr, 1)
			}
		}
		da.Apply(mutated)
		nt.Apply(mutated)
		cur = mutated
	}
	daStats := da.Forest().ComputeStats(cur, sys, nil)
	ntStats := nt.Forest().ComputeStats(cur, sys, nil)
	if ntStats.Collected < daStats.Collected {
		t.Errorf("NO-THROTTLE collected %d < D-A %d", ntStats.Collected, daStats.Collected)
	}
}

func TestReportFields(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sys, d, mutated := churnEnv(t, rng, 15, 3)
	a := newAdaptor(Adaptive, sys)
	initRep := a.Init(d)
	if initRep.AdaptMessages == 0 {
		t.Error("Init produced no adaptation messages")
	}
	rep := a.Apply(mutated)
	if rep.PlanTime <= 0 {
		t.Error("PlanTime not recorded")
	}
	if a.Scheme() != Adaptive {
		t.Error("Scheme() wrong")
	}
	if a.Demand().PairCount() != mutated.PairCount() {
		t.Error("Demand not installed")
	}
}
