package adapt

import (
	"math/rand"
	"testing"

	"remo/internal/core"
	"remo/internal/partition"
	"remo/internal/plan"
	"remo/internal/task"
	"remo/internal/workload"
)

// TestLongChurnInvariants runs every scheme through a long random churn
// sequence, checking after every round that the topology validates, the
// partition is a partition, and the reported adaptation cost matches an
// independently computed forest diff.
func TestLongChurnInvariants(t *testing.T) {
	sys, err := workload.System(workload.SystemConfig{
		Nodes: 25, Attrs: 12, CapacityLo: 60, CapacityHi: 150, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	initial := workload.Tasks(sys, workload.TaskConfig{
		Count: 20, AttrsPerTask: 4, NodesPerTask: 6, Seed: 22,
	})

	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			a := New(scheme, core.NewPlanner(), sys)
			tasks := initial
			d, err := workload.Demand(sys, tasks)
			if err != nil {
				t.Fatal(err)
			}
			a.Init(d)

			rng := rand.New(rand.NewSource(23))
			for round := 0; round < 12; round++ {
				tasks = workload.Churn(sys, tasks, workload.ChurnConfig{
					TaskFraction: 0.2,
					AttrFraction: 0.5,
					Seed:         rng.Int63(),
				})
				// Occasionally add or drop a task entirely.
				switch round % 4 {
				case 1:
					tasks = append(tasks, workload.Tasks(sys, workload.TaskConfig{
						Count: 1, AttrsPerTask: 3, NodesPerTask: 5,
						Seed: rng.Int63(), Prefix: taskName(round),
					})...)
				case 3:
					if len(tasks) > 5 {
						tasks = tasks[:len(tasks)-1]
					}
				}
				nd, err := workload.Demand(sys, tasks)
				if err != nil {
					t.Fatal(err)
				}

				before := a.Forest().Clone()
				rep := a.Apply(nd)

				if err := a.Forest().Validate(nd, sys, nil); err != nil {
					t.Fatalf("round %d: invalid topology: %v", round, err)
				}
				if err := partition.Validate(a.Partition(), nd.Universe()); err != nil {
					t.Fatalf("round %d: invalid partition: %v", round, err)
				}
				if got := plan.DiffEdges(before, a.Forest()); got != rep.AdaptMessages {
					t.Fatalf("round %d: reported %d adapt messages, diff is %d",
						round, rep.AdaptMessages, got)
				}
				if rep.Stats.Collected < 0 || rep.Stats.Collected > nd.PairCount() {
					t.Fatalf("round %d: collected %d of %d", round, rep.Stats.Collected, nd.PairCount())
				}
			}
		})
	}
}

func taskName(round int) string {
	return "extra" + string(rune('a'+round%26))
}

// TestApplyToEmptyAndBack exercises degenerate transitions: all tasks
// removed, then restored.
func TestApplyToEmptyAndBack(t *testing.T) {
	sys, err := workload.System(workload.SystemConfig{
		Nodes: 10, Attrs: 4, CapacityLo: 80, CapacityHi: 120, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	tasks := workload.Tasks(sys, workload.TaskConfig{
		Count: 5, AttrsPerTask: 2, NodesPerTask: 4, Seed: 32,
	})
	for _, scheme := range Schemes() {
		a := New(scheme, core.NewPlanner(), sys)
		d, err := workload.Demand(sys, tasks)
		if err != nil {
			t.Fatal(err)
		}
		a.Init(d)

		empty := task.NewDemand()
		rep := a.Apply(empty)
		if rep.Stats.Collected != 0 {
			t.Fatalf("%s: empty demand collected %d", scheme, rep.Stats.Collected)
		}
		if len(a.Forest().Trees) != 0 {
			t.Fatalf("%s: empty demand left %d trees", scheme, len(a.Forest().Trees))
		}

		rep = a.Apply(d)
		if rep.Stats.Collected == 0 {
			t.Fatalf("%s: restored demand collected nothing", scheme)
		}
		if err := a.Forest().Validate(d, sys, nil); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}
