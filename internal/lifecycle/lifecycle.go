// Package lifecycle centralizes process shutdown handling for the
// repo's binaries: a context cancelled on SIGINT/SIGTERM, a drain
// deadline that bounds how long graceful shutdown may take, and a
// double-signal escape hatch that force-exits immediately. Every
// binary (remo-serve, remo-load, remo-sim, remo-bench) shares this
// package instead of installing its own ad-hoc signal handling.
package lifecycle

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// DefaultDrainDeadline bounds graceful shutdown when Options leaves it
// unset: a drain that has not finished this long after the first
// signal force-exits.
const DefaultDrainDeadline = 15 * time.Second

// Options configures a lifecycle context.
type Options struct {
	// Signals are the signals that trigger shutdown (default SIGINT and
	// SIGTERM).
	Signals []os.Signal
	// DrainDeadline bounds graceful shutdown: once the first signal
	// lands, the process force-exits after this long even if the drain
	// is still running (default DefaultDrainDeadline; negative disables
	// the deadline, leaving only the double-signal escape).
	DrainDeadline time.Duration
	// Log, when set, receives one-line notices about received signals
	// and forced exits (default os.Stderr; io.Discard silences).
	Log io.Writer
	// ForceExit replaces os.Exit for the force paths (tests only).
	ForceExit func(code int)

	// sigs replaces the OS signal feed (tests only).
	sigs <-chan os.Signal
	// stop detaches the OS signal feed when the context is released.
	stop func()
}

// Context returns a context cancelled on the first shutdown signal.
// The caller drains gracefully once the context is done; a second
// signal, or the drain deadline expiring, force-exits with status 1.
// The returned release function detaches the signal handler (it does
// not cancel the context on its own — use it on clean exit so a later
// signal gets the default behavior again).
func Context(parent context.Context, o Options) (context.Context, context.CancelFunc) {
	if len(o.Signals) == 0 {
		o.Signals = []os.Signal{syscall.SIGINT, syscall.SIGTERM}
	}
	if o.DrainDeadline == 0 {
		o.DrainDeadline = DefaultDrainDeadline
	}
	if o.Log == nil {
		o.Log = os.Stderr
	}
	if o.ForceExit == nil {
		o.ForceExit = os.Exit
	}
	if o.sigs == nil {
		ch := make(chan os.Signal, 2)
		signal.Notify(ch, o.Signals...)
		o.sigs = ch
		o.stop = func() { signal.Stop(ch) }
	}

	ctx, cancel := context.WithCancel(parent)
	quit := make(chan struct{})
	go watch(ctx, cancel, quit, o)

	release := func() {
		if o.stop != nil {
			o.stop()
		}
		close(quit)
		cancel()
	}
	return ctx, release
}

// watch is the signal loop: first signal cancels the context and arms
// the drain deadline; a second signal or the deadline force-exits.
// Closing quit (the release function, on clean exit) stops the loop.
func watch(ctx context.Context, cancel context.CancelFunc, quit chan struct{}, o Options) {
	select {
	case <-quit:
		return
	case <-ctx.Done():
		return
	case sig := <-o.sigs:
		fmt.Fprintf(o.Log, "received %v, draining (repeat to force exit)\n", sig)
		cancel()
	}

	var deadline <-chan time.Time
	if o.DrainDeadline > 0 {
		t := time.NewTimer(o.DrainDeadline)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case <-quit:
		return
	case sig := <-o.sigs:
		fmt.Fprintf(o.Log, "received %v again, forcing exit\n", sig)
		o.ForceExit(1)
	case <-deadline:
		fmt.Fprintf(o.Log, "drain deadline %v expired, forcing exit\n", o.DrainDeadline)
		o.ForceExit(1)
	}
}
