package lifecycle

import (
	"context"
	"io"
	"os"
	"syscall"
	"testing"
	"time"
)

// wait blocks until ch is closed or the test deadline budget expires.
func wait(t *testing.T, what string, ch <-chan struct{}) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
}

// TestFirstSignalCancels pins the graceful path: one signal cancels the
// context and does not force-exit.
func TestFirstSignalCancels(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, release := Context(context.Background(), Options{
		Log:       io.Discard,
		ForceExit: func(code int) { exited <- code },
		sigs:      sigs,
	})
	defer release()

	sigs <- syscall.SIGTERM
	wait(t, "context cancellation", ctx.Done())
	select {
	case code := <-exited:
		t.Fatalf("single signal force-exited with code %d", code)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestDoubleSignalForcesExit pins the escape hatch: a second signal
// during the drain force-exits with status 1.
func TestDoubleSignalForcesExit(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, release := Context(context.Background(), Options{
		Log:           io.Discard,
		DrainDeadline: -1, // deadline off: only the double signal may fire
		ForceExit:     func(code int) { exited <- code },
		sigs:          sigs,
	})
	defer release()

	sigs <- syscall.SIGINT
	wait(t, "context cancellation", ctx.Done())
	sigs <- syscall.SIGINT
	select {
	case code := <-exited:
		if code != 1 {
			t.Fatalf("force exit code = %d, want 1", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not force exit")
	}
}

// TestDrainDeadlineForcesExit pins the deadline: a drain that outlives
// DrainDeadline force-exits without a second signal.
func TestDrainDeadlineForcesExit(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, release := Context(context.Background(), Options{
		Log:           io.Discard,
		DrainDeadline: 20 * time.Millisecond,
		ForceExit:     func(code int) { exited <- code },
		sigs:          sigs,
	})
	defer release()

	sigs <- syscall.SIGTERM
	wait(t, "context cancellation", ctx.Done())
	select {
	case code := <-exited:
		if code != 1 {
			t.Fatalf("force exit code = %d, want 1", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain deadline did not force exit")
	}
}

// TestReleaseStopsWatcher pins the clean-exit path: after release, a
// signal neither cancels anything new nor force-exits.
func TestReleaseStopsWatcher(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	ctx, release := Context(context.Background(), Options{
		Log:       io.Discard,
		ForceExit: func(code int) { exited <- code },
		sigs:      sigs,
	})
	release()
	wait(t, "context cancellation on release", ctx.Done())
	sigs <- syscall.SIGTERM
	select {
	case <-exited:
		t.Fatal("released lifecycle still force-exited")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestParentCancellationPropagates pins that a cancelled parent ends
// the lifecycle context without signals.
func TestParentCancellationPropagates(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, release := Context(parent, Options{Log: io.Discard, sigs: make(chan os.Signal)})
	defer release()
	cancel()
	wait(t, "parent cancellation", ctx.Done())
}
