// Package predict implements forecast-driven traffic suppression
// (ROADMAP item 4, after Tuor et al., "Online Collection and
// Forecasting of Resource Utilization in Large-Scale Distributed
// Systems"): a leaf and its collector keep bit-identical lightweight
// model replicas per (node, attribute) pair, and the leaf transmits
// only when the observed value deviates from the shared prediction
// beyond a task-specified relative error bound ε. The collector
// imputes the suppressed values from its replica, so accuracy stays
// within ε while most samples never touch the wire.
//
// The replica protocol (DESIGN.md §13) keeps the two models in
// lockstep without acknowledgements: when a leaf suppresses, it
// advances its own model with the *prediction* (exactly what the
// collector will impute), not the raw observation; when it transmits,
// both sides advance with the transmitted value. A periodic sync round
// (every Spec.SyncEvery rounds, staggered per node) and forced syncs
// on plan swaps re-transmit ground truth with a reset marker, so
// chaos-induced frame loss bounds — never silently extends —
// divergence: a collector that detects a gap stops imputing until the
// next sync re-locks it.
package predict

import (
	"errors"
	"fmt"
	"math"

	"remo/internal/model"
	"remo/internal/task"
)

// Model kinds selectable per attribute.
const (
	// EWMA is an exponentially weighted moving average: the forecast is
	// the smoothed level. Cheapest; best for noisy stationary series.
	EWMA Kind = iota
	// Holt is Holt's linear trend (double exponential smoothing): the
	// forecast is level + trend. Tracks ramps and slow drifts exactly.
	Holt
)

// Kind selects a forecasting model.
type Kind uint8

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case EWMA:
		return "ewma"
	case Holt:
		return "holt"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Smoothing constants. Fixed (not per-task knobs) so leaf and
// collector replicas are trivially identical; both ends construct
// models exclusively through Spec.New or FromSnapshot.
const (
	alpha = 0.5 // level smoothing (EWMA and Holt)
	beta  = 0.3 // trend smoothing (Holt)
)

// Model is one end of a replicated forecaster. Implementations must be
// deterministic pure float64 arithmetic: two replicas fed the same
// Observe sequence after the same Reset must produce bit-identical
// Predict results — that determinism is what makes imputation exact.
//
// Observe and Predict must not allocate (guarded by alloc tests).
type Model interface {
	// Predict returns the one-step-ahead forecast. Only meaningful
	// when Ready.
	Predict() float64
	// Observe advances the model with the realized value.
	Observe(v float64)
	// Ready reports whether the model has seen enough observations to
	// forecast.
	Ready() bool
	// Reset discards all state, as if freshly constructed.
	Reset()
	// Snapshot captures the model state for checkpointing.
	Snapshot() Snapshot
	// Restore overwrites the model state from a snapshot of the same
	// kind.
	Restore(Snapshot)
}

// Snapshot is a serializable model state, stored in journal
// checkpoints so a resumed collector replays a warm replica instead of
// a cold one against a warm peer.
type Snapshot struct {
	Kind  Kind
	Level float64
	Trend float64 // Holt only; zero for EWMA
	Seen  uint32
}

// New constructs a fresh model of the given kind.
func New(k Kind) Model {
	switch k {
	case Holt:
		return &holt{}
	default:
		return &ewma{}
	}
}

// FromSnapshot reconstructs a model from a checkpointed snapshot.
func FromSnapshot(sn Snapshot) Model {
	m := New(sn.Kind)
	m.Restore(sn)
	return m
}

// ewma is the EWMA model: level' = α·v + (1−α)·level.
type ewma struct {
	level float64
	seen  uint32
}

func (m *ewma) Predict() float64 { return m.level }

func (m *ewma) Observe(v float64) {
	if m.seen == 0 {
		m.level = v
	} else {
		m.level = alpha*v + (1-alpha)*m.level
	}
	if m.seen < math.MaxUint32 {
		m.seen++
	}
}

func (m *ewma) Ready() bool { return m.seen >= 1 }
func (m *ewma) Reset()      { *m = ewma{} }

func (m *ewma) Snapshot() Snapshot {
	return Snapshot{Kind: EWMA, Level: m.level, Seen: m.seen}
}

func (m *ewma) Restore(sn Snapshot) {
	m.level, m.seen = sn.Level, sn.Seen
}

// holt is Holt's linear trend model:
//
//	l' = α·v + (1−α)·(l + b)
//	b' = β·(l' − l) + (1−β)·b
//
// with the standard initialization l₀ = v₀, b₀ = v₁ − v₀.
type holt struct {
	level float64
	trend float64
	seen  uint32
}

func (m *holt) Predict() float64 { return m.level + m.trend }

func (m *holt) Observe(v float64) {
	switch m.seen {
	case 0:
		m.level = v
	case 1:
		m.trend = v - m.level
		m.level = v
	default:
		l := alpha*v + (1-alpha)*(m.level+m.trend)
		m.trend = beta*(l-m.level) + (1-beta)*m.trend
		m.level = l
	}
	if m.seen < math.MaxUint32 {
		m.seen++
	}
}

func (m *holt) Ready() bool { return m.seen >= 2 }
func (m *holt) Reset()      { *m = holt{} }

func (m *holt) Snapshot() Snapshot {
	return Snapshot{Kind: Holt, Level: m.level, Trend: m.trend, Seen: m.seen}
}

func (m *holt) Restore(sn Snapshot) {
	m.level, m.trend, m.seen = sn.Level, sn.Trend, sn.Seen
}

// ErrBadBound is returned for non-positive or non-finite error bounds.
var ErrBadBound = errors.New("predict: error bound must be positive and finite")

// DefaultSyncEvery is the periodic sync cadence when Spec.SyncEvery is
// unset: every node re-transmits each suppressible attribute's ground
// truth (with a reset marker) at least once per this many rounds.
const DefaultSyncEvery = 16

// DefaultTolerance is the safety margin added to realized transmit
// rates when estimating planner-side effective rates (Rate), so the
// cost ledger never undercounts bytes actually sent.
const DefaultTolerance = 0.05

// Spec assigns suppression error bounds and model kinds to attributes,
// mirroring freq.Spec. Bounds are *relative*: a value v may be imputed
// when |predicted − v| ≤ ε·max(|v|, epsFloor). Attributes without an
// entry use the defaults.
//
// The maps are fixed at configuration time; concurrent readers (the
// cluster round engine's workers) are safe as long as Set/SetModel/
// SetRate are not called while a session runs.
type Spec struct {
	// DefaultEps applies to attributes without an explicit bound.
	DefaultEps float64
	// DefaultModel applies to attributes without an explicit kind.
	DefaultModel Kind
	// SyncEvery is the periodic ground-truth re-sync cadence in rounds
	// (default DefaultSyncEvery). Sync rounds are staggered per node so
	// the collector never absorbs a synchronized burst.
	SyncEvery int
	// Tolerance is the safety margin on realized transmit rates used
	// by Rate (default DefaultTolerance).
	Tolerance float64

	eps   map[model.AttrID]float64
	kinds map[model.AttrID]Kind
	rates map[model.AttrID]float64
}

// epsFloor keeps relative bands meaningful near zero: the band of a
// value v is ε·max(|v|, epsFloor).
const epsFloor = 1e-9

// NewSpec returns a spec with the given default relative error bound,
// Holt as the default model, and the default sync cadence.
func NewSpec(eps float64) (*Spec, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("%w: %v", ErrBadBound, eps)
	}
	return &Spec{
		DefaultEps:   eps,
		DefaultModel: Holt,
		SyncEvery:    DefaultSyncEvery,
		Tolerance:    DefaultTolerance,
		eps:          make(map[model.AttrID]float64),
		kinds:        make(map[model.AttrID]Kind),
		rates:        make(map[model.AttrID]float64),
	}, nil
}

// Set assigns error bound eps to attribute a.
func (s *Spec) Set(a model.AttrID, eps float64) error {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return fmt.Errorf("%w: %v", ErrBadBound, eps)
	}
	s.eps[a] = eps
	return nil
}

// Of returns the error bound of attribute a.
func (s *Spec) Of(a model.AttrID) float64 {
	if e, ok := s.eps[a]; ok {
		return e
	}
	return s.DefaultEps
}

// SetModel assigns model kind k to attribute a.
func (s *Spec) SetModel(a model.AttrID, k Kind) {
	s.kinds[a] = k
}

// ModelOf returns the model kind of attribute a.
func (s *Spec) ModelOf(a model.AttrID) Kind {
	if k, ok := s.kinds[a]; ok {
		return k
	}
	return s.DefaultModel
}

// New constructs a fresh model replica for attribute a. Both ends of a
// link must construct through this so the replicas agree on kind.
func (s *Spec) New(a model.AttrID) Model {
	return New(s.ModelOf(a))
}

// Band returns the absolute dead band around observed value v for
// attribute a.
func (s *Spec) Band(a model.AttrID, v float64) float64 {
	return s.Of(a) * math.Max(math.Abs(v), epsFloor)
}

// Within reports whether predicted is within attribute a's dead band
// of the observed value: |predicted − observed| ≤ ε·max(|observed|,
// epsFloor). NaN or infinite predictions are never within band.
func (s *Spec) Within(a model.AttrID, predicted, observed float64) bool {
	d := predicted - observed
	if math.IsNaN(d) || math.IsInf(d, 0) {
		return false
	}
	return math.Abs(d) <= s.Band(a, observed)
}

// syncEvery is the effective sync cadence.
func (s *Spec) syncEvery() int {
	if s.SyncEvery >= 1 {
		return s.SyncEvery
	}
	return DefaultSyncEvery
}

// SyncDue reports whether round is a forced ground-truth sync round
// for node n. Syncs are staggered by node id so at most ~1/SyncEvery
// of the nodes sync in any one round.
func (s *Spec) SyncDue(n model.NodeID, round int) bool {
	k := s.syncEvery()
	return ((round+int(n))%k+k)%k == 0
}

// Validate checks the spec's bounds and cadence.
func (s *Spec) Validate() error {
	if s.DefaultEps <= 0 || math.IsNaN(s.DefaultEps) || math.IsInf(s.DefaultEps, 0) {
		return fmt.Errorf("%w: default %v", ErrBadBound, s.DefaultEps)
	}
	for a, e := range s.eps {
		if e <= 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			return fmt.Errorf("%w: attribute %v: %v", ErrBadBound, a, e)
		}
	}
	if s.SyncEvery < 0 {
		return fmt.Errorf("predict: sync interval must be >= 1, got %d", s.SyncEvery)
	}
	return nil
}

// SetRate records an expected transmit rate (fraction of due rounds
// actually transmitted, in (0, 1]) for attribute a, used by Apply and
// Rate for planner-side capacity estimates. Out-of-range rates are
// clamped.
func (s *Spec) SetRate(a model.AttrID, rate float64) {
	if math.IsNaN(rate) {
		return
	}
	s.rates[a] = math.Min(1, math.Max(0, rate))
}

// ObserveRate feeds a realized transmit rate back into the spec,
// padded by Tolerance so subsequent estimates stay conservative: the
// recorded rate is min(1, realized + Tolerance), and never below any
// previously realized level observed this call.
func (s *Spec) ObserveRate(a model.AttrID, realized float64) {
	if math.IsNaN(realized) {
		return
	}
	s.SetRate(a, realized+math.Max(0, s.Tolerance))
}

// Rate returns the conservative transmit-rate estimate for attribute
// a: 1 (no discount) unless a rate has been recorded.
func (s *Spec) Rate(a model.AttrID) float64 {
	if r, ok := s.rates[a]; ok {
		return r
	}
	return 1
}

// Apply returns a copy of the demand with each pair's weight scaled by
// its attribute's transmit-rate estimate. The result is for planner
// capacity packing and ledger estimates ONLY — it must never be
// installed as the runtime demand, whose weights drive piggyback
// periods (see freq.Spec.Apply); suppression happens inside a round,
// not by skipping rounds.
func (s *Spec) Apply(d *task.Demand) *task.Demand {
	out := task.NewDemand()
	for _, n := range d.Nodes() {
		for _, a := range d.AttrsOf(n).Attrs() {
			out.Set(n, a, d.Weight(n, a)*s.Rate(a))
		}
	}
	return out
}
