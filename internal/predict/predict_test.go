package predict

import (
	"math"
	"testing"

	"remo/internal/model"
	"remo/internal/task"
)

func TestEWMAObserve(t *testing.T) {
	m := New(EWMA)
	if m.Ready() {
		t.Fatal("fresh EWMA must not be ready")
	}
	m.Observe(10)
	if !m.Ready() {
		t.Fatal("EWMA must be ready after one observation")
	}
	if got := m.Predict(); got != 10 {
		t.Fatalf("Predict after first observe = %v, want 10", got)
	}
	m.Observe(20)
	if got, want := m.Predict(), alpha*20+(1-alpha)*10.0; got != want {
		t.Fatalf("Predict = %v, want %v", got, want)
	}
}

func TestHoltObserve(t *testing.T) {
	m := New(Holt)
	m.Observe(10)
	if m.Ready() {
		t.Fatal("Holt must not be ready after one observation")
	}
	m.Observe(12)
	if !m.Ready() {
		t.Fatal("Holt must be ready after two observations")
	}
	// l=12, b=2 → forecast 14.
	if got := m.Predict(); got != 14 {
		t.Fatalf("Predict = %v, want 14", got)
	}
	// Exact linear ramps are tracked exactly: one more on-trend point
	// keeps the forecast on the line.
	m.Observe(14)
	if got := m.Predict(); math.Abs(got-16) > 1e-12 {
		t.Fatalf("Predict on linear ramp = %v, want 16", got)
	}
}

func TestHoltTracksLinearRamp(t *testing.T) {
	m := New(Holt)
	for i := 0; i < 50; i++ {
		v := 100 + 3*float64(i)
		if m.Ready() {
			if err := math.Abs(m.Predict() - v); err > 1e-9 {
				t.Fatalf("round %d: |forecast−truth| = %v on exact ramp", i, err)
			}
		}
		m.Observe(v)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, k := range []Kind{EWMA, Holt} {
		m := New(k)
		for _, v := range []float64{5, 7, 6.5, 8, 9.25} {
			m.Observe(v)
		}
		r := FromSnapshot(m.Snapshot())
		if r.Predict() != m.Predict() {
			t.Fatalf("%v: restored Predict %v != %v", k, r.Predict(), m.Predict())
		}
		// Replicas must stay in lockstep after restore.
		m.Observe(11)
		r.Observe(11)
		if r.Predict() != m.Predict() {
			t.Fatalf("%v: replicas diverged after restore", k)
		}
		m.Reset()
		if m.Ready() {
			t.Fatalf("%v: Reset left model ready", k)
		}
	}
}

// TestReplicaLockstep is the core protocol property: two replicas fed
// the identical Observe sequence produce bit-identical forecasts at
// every step, including when the sequence mixes raw values and the
// replica's own predictions (the suppression path).
func TestReplicaLockstep(t *testing.T) {
	for _, k := range []Kind{EWMA, Holt} {
		leaf, coll := New(k), New(k)
		x := 42.0
		for i := 0; i < 200; i++ {
			x += math.Sin(float64(i) / 7)
			v := x
			if leaf.Ready() && i%3 != 0 {
				v = leaf.Predict() // suppressed: both advance with the forecast
			}
			leaf.Observe(v)
			coll.Observe(v)
			if leaf.Predict() != coll.Predict() {
				t.Fatalf("%v: replicas diverged at step %d", k, i)
			}
		}
	}
}

func TestNewSpecValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewSpec(bad); err == nil {
			t.Fatalf("NewSpec(%v) accepted", bad)
		}
	}
	s, err := NewSpec(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Set(3, -0.5); err == nil {
		t.Fatal("Set(-0.5) accepted")
	}
	if err := s.Set(3, 0.1); err != nil {
		t.Fatal(err)
	}
	if got := s.Of(3); got != 0.1 {
		t.Fatalf("Of(3) = %v", got)
	}
	if got := s.Of(4); got != 0.01 {
		t.Fatalf("Of(4) = %v, want default", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.SyncEvery = -2
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted negative SyncEvery")
	}
}

func TestSpecModels(t *testing.T) {
	s, _ := NewSpec(0.01)
	if s.ModelOf(1) != Holt {
		t.Fatal("default model should be Holt")
	}
	s.SetModel(1, EWMA)
	if s.ModelOf(1) != EWMA {
		t.Fatal("SetModel not honored")
	}
	if _, ok := s.New(1).(*ewma); !ok {
		t.Fatal("New(1) should build an EWMA")
	}
	if _, ok := s.New(2).(*holt); !ok {
		t.Fatal("New(2) should build a Holt")
	}
}

func TestWithinBand(t *testing.T) {
	s, _ := NewSpec(0.01)
	if !s.Within(1, 100.5, 100) {
		t.Fatal("0.5% deviation should be within a 1% band")
	}
	if s.Within(1, 102, 100) {
		t.Fatal("2% deviation should exceed a 1% band")
	}
	// Relative band is anchored on the observed value, floored near 0.
	if s.Within(1, 1, 0) {
		t.Fatal("prediction 1 vs observed 0 cannot be within band")
	}
	if !s.Within(1, 0, 0) {
		t.Fatal("exact zero match must be within band")
	}
	if s.Within(1, math.NaN(), 100) || s.Within(1, math.Inf(1), 100) {
		t.Fatal("non-finite predictions must never be within band")
	}
}

func TestSyncDueStagger(t *testing.T) {
	s, _ := NewSpec(0.01)
	s.SyncEvery = 8
	for n := model.NodeID(1); n <= 20; n++ {
		due := 0
		for round := 0; round < 64; round++ {
			if s.SyncDue(n, round) {
				due++
			}
		}
		if due != 8 {
			t.Fatalf("node %v: %d syncs in 64 rounds at cadence 8", n, due)
		}
	}
	// Stagger: nodes with different ids mod K sync on different rounds.
	if !s.SyncDue(1, 7) || s.SyncDue(2, 7) {
		t.Fatal("adjacent nodes should not sync in the same round")
	}
	// Unset cadence falls back to the default.
	s.SyncEvery = 0
	if !s.SyncDue(0, 0) || s.SyncDue(0, 1) || !s.SyncDue(0, DefaultSyncEvery) {
		t.Fatal("default cadence not honored")
	}
}

func TestRateConservative(t *testing.T) {
	s, _ := NewSpec(0.01)
	if got := s.Rate(1); got != 1 {
		t.Fatalf("unset rate = %v, want 1 (no discount)", got)
	}
	s.ObserveRate(1, 0.10)
	if got, want := s.Rate(1), 0.10+DefaultTolerance; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Rate = %v, want realized+tolerance %v", got, want)
	}
	// Estimates never exceed 1 and never go negative.
	s.ObserveRate(2, 1.5)
	if got := s.Rate(2); got != 1 {
		t.Fatalf("Rate clamped high = %v", got)
	}
	s.SetRate(3, -0.2)
	if got := s.Rate(3); got != 0 {
		t.Fatalf("Rate clamped low = %v", got)
	}
	s.SetRate(4, math.NaN())
	if got := s.Rate(4); got != 1 {
		t.Fatalf("NaN rate must be ignored, got %v", got)
	}
}

func TestApplyScalesWeights(t *testing.T) {
	s, _ := NewSpec(0.01)
	s.SetRate(2, 0.25)
	d := task.NewDemand()
	d.Set(1, 1, 1)
	d.Set(1, 2, 0.5)
	out := s.Apply(d)
	if got := out.Weight(1, 1); got != 1 {
		t.Fatalf("unrated weight scaled: %v", got)
	}
	if got := out.Weight(1, 2); got != 0.125 {
		t.Fatalf("rated weight = %v, want 0.5*0.25", got)
	}
	// The input demand is untouched (Apply returns a copy).
	if got := d.Weight(1, 2); got != 0.5 {
		t.Fatalf("Apply mutated its input: %v", got)
	}
}

// TestModelAllocs is the satellite-1 allocation budget: the hot-path
// Observe/Predict pair must not allocate.
func TestModelAllocs(t *testing.T) {
	for _, k := range []Kind{EWMA, Holt} {
		m := New(k)
		m.Observe(1)
		m.Observe(2)
		v := 3.0
		allocs := testing.AllocsPerRun(200, func() {
			m.Observe(v)
			v = m.Predict()
		})
		if allocs != 0 {
			t.Fatalf("%v: Observe/Predict allocated %v allocs/op", k, allocs)
		}
	}
}
