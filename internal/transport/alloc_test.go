//go:build !race

package transport

import (
	"bytes"
	"testing"

	"remo/internal/model"
)

// The codec's zero-alloc guarantees are the foundation of the runtime
// fast path; these regression tests pin them. The file is excluded from
// race builds because the race runtime instruments allocations.

func TestAllocsAppendEncodeZero(t *testing.T) {
	msg := sampleMessage()
	buf := make([]byte, 0, framePrefixSize+EncodedSize(msg))
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendEncode(buf[:0], msg)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendEncode into reused buffer allocates %.1f/op, want 0", allocs)
	}
}

func TestAllocsDecodeIntoZero(t *testing.T) {
	frame, err := Encode(sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(frame)
	dec := NewDecoder(r)
	var msg Message
	// Warm up: first decode sizes the payload buffer, interns the key and
	// allocates msg's slices.
	if err := dec.DecodeInto(&msg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		if err := dec.DecodeInto(&msg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeInto allocates %.1f/op, want 0", allocs)
	}
	if len(msg.Values) != 2 || msg.TreeKey != "1,2,3" {
		t.Fatalf("decoded message corrupted: %+v", msg)
	}
}

func TestAllocsSuppFrameEncodeDecodeZero(t *testing.T) {
	// Frames carrying suppression/sync sections must preserve the
	// zero-alloc discipline on both sides of the wire.
	msg := suppMessage()
	buf := make([]byte, 0, framePrefixSize+EncodedSize(msg))
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendEncode(buf[:0], msg)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendEncode with supp sections allocates %.1f/op, want 0", allocs)
	}
	r := bytes.NewReader(buf)
	dec := NewDecoder(r)
	var out Message
	if err := dec.DecodeInto(&out); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(200, func() {
		r.Reset(buf)
		if err := dec.DecodeInto(&out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeInto with supp sections allocates %.1f/op, want 0", allocs)
	}
	if len(out.Suppressed) != 3 || len(out.Syncs) != 1 {
		t.Fatalf("decoded supp frame corrupted: %+v", out)
	}
}

func TestAllocsMemorySendSteadyState(t *testing.T) {
	m := NewMemory([]model.NodeID{1})
	defer func() { _ = m.Close() }()
	msg := Message{TreeKey: "k", From: 2, To: 1}
	// Warm up both ping-pong mailbox buffers.
	for i := 0; i < 2; i++ {
		for j := 0; j < 8; j++ {
			if err := m.Send(msg); err != nil {
				t.Fatal(err)
			}
		}
		m.Drain(1)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for j := 0; j < 8; j++ {
			if err := m.Send(msg); err != nil {
				t.Fatal(err)
			}
		}
		m.Drain(1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Memory send/drain allocates %.1f/op, want 0", allocs)
	}
}
