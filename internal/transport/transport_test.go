package transport

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"remo/internal/model"
)

func sampleMessage() Message {
	return Message{
		TreeKey: "1,2,3",
		From:    model.NodeID(4),
		To:      model.Central,
		Values: []Value{
			{Node: 4, Attr: 1, Round: 7, Value: 3.25},
			{Node: 5, Attr: 2, Round: 6, Value: -17},
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	msg := sampleMessage()
	frame, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != 4+EncodedSize(msg) {
		t.Fatalf("frame size %d, want %d", len(frame), 4+EncodedSize(msg))
	}
	got, err := Decode(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("round trip: got %+v, want %+v", got, msg)
	}
}

func TestCodecEmptyValues(t *testing.T) {
	msg := Message{TreeKey: "", From: 1, To: 2}
	frame, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if got.TreeKey != "" || got.From != 1 || got.To != 2 || got.Values != nil {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestCodecRejectsTruncated(t *testing.T) {
	frame, err := Encode(sampleMessage())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{2, 5, len(frame) - 3} {
		if _, err := Decode(bytes.NewReader(frame[:cut])); err == nil {
			t.Errorf("Decode(frame[:%d]) succeeded", cut)
		}
	}
}

func TestCodecRejectsOversizedFrame(t *testing.T) {
	var hdr [4]byte
	hdr[0] = 0xFF
	hdr[1] = 0xFF
	hdr[2] = 0xFF
	hdr[3] = 0xFF
	if _, err := Decode(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame error = %v", err)
	}
}

func TestCodecQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		msg := Message{
			TreeKey: "k",
			From:    model.NodeID(rng.Intn(1000)),
			To:      model.NodeID(rng.Intn(1000)),
		}
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			msg.Values = append(msg.Values, Value{
				Node:  model.NodeID(rng.Intn(500)),
				Attr:  model.AttrID(rng.Intn(100)),
				Round: rng.Intn(1 << 20),
				Value: math.Round(rng.NormFloat64()*1e6) / 1e3,
			})
		}
		frame, err := Encode(msg)
		if err != nil {
			return false
		}
		got, err := Decode(bytes.NewReader(frame))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryTransport(t *testing.T) {
	m := NewMemory([]model.NodeID{1, 2})
	defer func() { _ = m.Close() }()

	if err := m.Send(Message{TreeKey: "a", From: 1, To: 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(Message{TreeKey: "a", From: 2, To: model.Central}); err != nil {
		t.Fatal(err)
	}
	if err := m.Send(Message{To: 99}); !errors.Is(err, ErrUnknownDestination) {
		t.Fatalf("unknown destination error = %v", err)
	}

	got := m.Drain(2)
	if len(got) != 1 || got[0].From != 1 {
		t.Fatalf("Drain(2) = %+v", got)
	}
	if again := m.Drain(2); len(again) != 0 {
		t.Fatalf("second Drain = %+v", again)
	}
	if central := m.Drain(model.Central); len(central) != 1 {
		t.Fatalf("Drain(central) = %+v", central)
	}
}

func TestMemoryDrainOrderCanonical(t *testing.T) {
	m := NewMemory([]model.NodeID{1})
	defer func() { _ = m.Close() }()
	_ = m.Send(Message{TreeKey: "b", From: 9, To: 1})
	_ = m.Send(Message{TreeKey: "a", From: 5, To: 1})
	_ = m.Send(Message{TreeKey: "a", From: 2, To: 1})
	got := m.Drain(1)
	if got[0].TreeKey != "a" || got[0].From != 2 || got[2].TreeKey != "b" {
		t.Fatalf("Drain order = %+v", got)
	}
}

func TestMemoryClosed(t *testing.T) {
	m := NewMemory(nil)
	_ = m.Close()
	if err := m.Send(Message{To: model.Central}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close error = %v", err)
	}
}

func TestMemoryConcurrentSends(t *testing.T) {
	m := NewMemory([]model.NodeID{1})
	defer func() { _ = m.Close() }()
	var wg sync.WaitGroup
	const senders, each = 8, 50
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				_ = m.Send(Message{TreeKey: "k", From: model.NodeID(s + 2), To: 1})
			}
		}(s)
	}
	wg.Wait()
	if got := len(m.Drain(1)); got != senders*each {
		t.Fatalf("drained %d, want %d", got, senders*each)
	}
}

func TestTCPTransportDelivers(t *testing.T) {
	tr, err := NewTCP([]model.NodeID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()

	msg := sampleMessage()
	msg.To = 2
	if err := tr.Send(msg); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	got := waitDrain(t, tr, 2, 1)
	if !reflect.DeepEqual(got[0], msg) {
		t.Fatalf("delivered %+v, want %+v", got[0], msg)
	}
}

func TestTCPMultipleMessagesOneConnection(t *testing.T) {
	tr, err := NewTCP([]model.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	const n = 20
	for i := 0; i < n; i++ {
		if err := tr.Send(Message{TreeKey: "k", From: model.NodeID(i + 10), To: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	got := waitDrain(t, tr, 1, n)
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
}

func TestTCPUnknownDestination(t *testing.T) {
	tr, err := NewTCP(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if err := tr.Send(Message{To: 42}); !errors.Is(err, ErrUnknownDestination) {
		t.Fatalf("error = %v", err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	tr, err := NewTCP([]model.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{To: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close error = %v", err)
	}
}

// waitDrain polls until n messages are available or the deadline passes.
func waitDrain(t *testing.T, tr *TCP, node model.NodeID, n int) []Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var got []Message
	for time.Now().Before(deadline) {
		got = append(got, tr.Drain(node)...)
		if len(got) >= n {
			sortMessages(got)
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out with %d of %d messages", len(got), n)
	return nil
}

func TestMemoryFlushNoOp(t *testing.T) {
	m := NewMemory(nil)
	defer func() { _ = m.Close() }()
	if err := m.Flush(); err != nil {
		t.Fatalf("Flush = %v", err)
	}
}

func TestTCPFlushWaitsForDelivery(t *testing.T) {
	tr, err := NewTCP([]model.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	for i := 0; i < 25; i++ {
		if err := tr.Send(Message{TreeKey: "k", From: model.NodeID(i + 2), To: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	// After Flush every frame is in the mailbox — no polling needed.
	if got := tr.Pending(1); got != 25 {
		t.Fatalf("Pending = %d, want 25", got)
	}
	if got := len(tr.Drain(1)); got != 25 {
		t.Fatalf("Drain = %d, want 25", got)
	}
}

func TestTCPFlushAfterCloseErrors(t *testing.T) {
	tr, err := NewTCP(nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = tr.Close()
	if err := tr.Flush(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after close = %v", err)
	}
}
