package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"remo/internal/model"
)

// Wire format (all integers big-endian):
//
//	frame   := length(uint32) payload
//	payload := keyLen(uint16) key from(int32) to(int32) epoch(uint32)
//	           count(uint32) beatCount(uint32) value* beat*
//	value   := node(int32) attr(int32) round(int32) bits(uint64)
//	beat    := node(int32) round(int32)
//
// A TCP/IP monitoring message carries at least ~78 bytes of protocol
// headers (§2.3); this compact application framing keeps the per-message
// overhead visible but small.
//
// The layout constants below are the single source of truth for the
// format: EncodedSize, AppendEncode and decodePayloadInto are all
// written against them, so a format change is a one-place edit.

// Wire-layout sizes in bytes.
const (
	framePrefixSize = 4                 // length prefix
	keyLenSize      = 2                 // keyLen field
	fixedHeaderSize = 4 + 4 + 4 + 4 + 4 // from, to, epoch, count, beatCount
	valueSize       = 4 + 4 + 4 + 8     // node, attr, round, bits
	beatSize        = 4 + 4             // node, round
)

// Codec limits, protecting against corrupt frames.
const (
	maxFrameSize = 16 << 20
	maxKeyLen    = 1 << 15
)

// ErrFrameTooLarge is returned for frames beyond maxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame too large")

// EncodedSize returns the payload size of msg in bytes.
func EncodedSize(msg Message) int {
	return keyLenSize + len(msg.TreeKey) + fixedHeaderSize +
		len(msg.Values)*valueSize + len(msg.Beats)*beatSize
}

// AppendEncode serializes msg into a self-delimiting frame appended to
// dst and returns the extended slice. It allocates only when dst lacks
// capacity, so callers reusing a buffer encode with zero steady-state
// allocations.
func AppendEncode(dst []byte, msg Message) ([]byte, error) {
	if len(msg.TreeKey) > maxKeyLen {
		return dst, fmt.Errorf("transport: tree key too long (%d)", len(msg.TreeKey))
	}
	size := EncodedSize(msg)
	if size > maxFrameSize {
		return dst, ErrFrameTooLarge
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(size))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg.TreeKey)))
	dst = append(dst, msg.TreeKey...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(msg.From)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(msg.To)))
	dst = binary.BigEndian.AppendUint32(dst, msg.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(msg.Values)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(msg.Beats)))
	for _, v := range msg.Values {
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(v.Node)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(v.Attr)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(v.Round)))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.Value))
	}
	for _, b := range msg.Beats {
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(b.Node)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(b.Round)))
	}
	return dst, nil
}

// Encode serializes msg into a freshly allocated self-delimiting frame.
// Hot paths should prefer AppendEncode into a reused buffer.
func Encode(msg Message) ([]byte, error) {
	buf, err := AppendEncode(make([]byte, 0, framePrefixSize+EncodedSize(msg)), msg)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// framePool recycles encode buffers for transports that need a frame
// only for the duration of one write.
var framePool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

func getFrameBuf() []byte  { return framePool.Get().([]byte)[:0] }
func putFrameBuf(b []byte) { framePool.Put(b) } //nolint:staticcheck // slice header boxing is amortized

// Decoder reads frames from one stream, reusing its payload buffer
// across messages and interning tree keys, so the per-message
// allocations are limited to the decoded Values/Beats slices — and
// DecodeInto eliminates those too by reusing the caller's Message.
type Decoder struct {
	r       io.Reader
	lenBuf  [framePrefixSize]byte
	payload []byte
	keys    map[string]string
}

// NewDecoder returns a Decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, keys: make(map[string]string, 8)}
}

// Decode reads the next frame and returns the message with
// freshly allocated Values/Beats slices, safe to retain indefinitely.
func (d *Decoder) Decode() (Message, error) {
	var msg Message
	if err := d.decode(&msg, false); err != nil {
		return Message{}, err
	}
	return msg, nil
}

// DecodeInto reads the next frame into msg, reusing msg's Values/Beats
// capacity. The decoded slices are owned by msg until the next
// DecodeInto call with the same message; retain a copy if needed
// longer.
func (d *Decoder) DecodeInto(msg *Message) error {
	return d.decode(msg, true)
}

func (d *Decoder) decode(msg *Message, reuse bool) error {
	if _, err := io.ReadFull(d.r, d.lenBuf[:]); err != nil {
		return err
	}
	size := int(binary.BigEndian.Uint32(d.lenBuf[:]))
	if size > maxFrameSize {
		return ErrFrameTooLarge
	}
	if cap(d.payload) < size {
		d.payload = make([]byte, size)
	}
	p := d.payload[:size]
	if _, err := io.ReadFull(d.r, p); err != nil {
		return fmt.Errorf("transport: short frame: %w", err)
	}
	return decodePayloadInto(p, msg, d, reuse)
}

// internKey returns a string for the key bytes, reusing a previously
// decoded instance when possible: tree keys repeat every round, so the
// steady state allocates no strings. The table is capped to stay
// bounded against adversarial streams.
func (d *Decoder) internKey(k []byte) string {
	if len(k) == 0 {
		return ""
	}
	if s, ok := d.keys[string(k)]; ok { // no alloc: map lookup by []byte
		return s
	}
	if len(d.keys) >= 1024 {
		d.keys = make(map[string]string, 8)
	}
	s := string(k)
	d.keys[s] = s
	return s
}

// Decode reads one frame from r and deserializes it, allocating fresh
// backing storage. Streaming readers should hold a Decoder instead.
func Decode(r io.Reader) (Message, error) {
	var lenBuf [framePrefixSize]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Message{}, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size > maxFrameSize {
		return Message{}, ErrFrameTooLarge
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, fmt.Errorf("transport: short frame: %w", err)
	}
	return decodePayload(payload)
}

// decodePayload deserializes one frame payload into a fresh Message.
func decodePayload(p []byte) (Message, error) {
	var msg Message
	if err := decodePayloadInto(p, &msg, nil, false); err != nil {
		return Message{}, err
	}
	return msg, nil
}

// decodePayloadInto deserializes one frame payload. When d is non-nil
// tree keys are interned through it; when reuse is set the message's
// existing Values/Beats capacity is reused instead of allocating.
func decodePayloadInto(p []byte, msg *Message, d *Decoder, reuse bool) error {
	if len(p) < keyLenSize {
		return errors.New("transport: truncated key length")
	}
	keyLen := int(binary.BigEndian.Uint16(p))
	p = p[keyLenSize:]
	if len(p) < keyLen+fixedHeaderSize {
		return errors.New("transport: truncated header")
	}
	if d != nil {
		msg.TreeKey = d.internKey(p[:keyLen])
	} else {
		msg.TreeKey = string(p[:keyLen])
	}
	p = p[keyLen:]
	msg.From = model.NodeID(int32(binary.BigEndian.Uint32(p)))
	msg.To = model.NodeID(int32(binary.BigEndian.Uint32(p[4:])))
	msg.Epoch = binary.BigEndian.Uint32(p[8:])
	count := int(binary.BigEndian.Uint32(p[12:]))
	beatCount := int(binary.BigEndian.Uint32(p[16:]))
	p = p[fixedHeaderSize:]
	if count < 0 || beatCount < 0 || len(p) != count*valueSize+beatCount*beatSize {
		return fmt.Errorf("transport: body is %d bytes, want %d values and %d beats",
			len(p), count, beatCount)
	}
	prevValues, prevBeats := msg.Values, msg.Beats
	msg.Values, msg.Beats = nil, nil
	if count > 0 {
		msg.Values = sliceFor(prevValues, count, reuse)
		for i := 0; i < count; i++ {
			off := i * valueSize
			msg.Values[i] = Value{
				Node:  model.NodeID(int32(binary.BigEndian.Uint32(p[off:]))),
				Attr:  model.AttrID(int32(binary.BigEndian.Uint32(p[off+4:]))),
				Round: int(int32(binary.BigEndian.Uint32(p[off+8:]))),
				Value: math.Float64frombits(binary.BigEndian.Uint64(p[off+12:])),
			}
		}
		p = p[count*valueSize:]
	}
	if beatCount > 0 {
		msg.Beats = sliceFor(prevBeats, beatCount, reuse)
		for i := 0; i < beatCount; i++ {
			off := i * beatSize
			msg.Beats[i] = Beat{
				Node:  model.NodeID(int32(binary.BigEndian.Uint32(p[off:]))),
				Round: int(int32(binary.BigEndian.Uint32(p[off+4:]))),
			}
		}
	}
	return nil
}

// sliceFor returns a slice of length n, reusing prev's capacity when
// reuse is set and it suffices.
func sliceFor[T any](prev []T, n int, reuse bool) []T {
	if reuse && cap(prev) >= n {
		return prev[:n]
	}
	return make([]T, n)
}
