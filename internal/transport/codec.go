package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"
	"sync"

	"remo/internal/model"
)

// Wire format (all fixed-width integers big-endian):
//
//	frame   := length(uint32) payload
//	payload := keyLen(uint16) key from(int32) to(int32) epoch(uint32)
//	           count(uint32) beatCount(uint32)
//	           suppCount(uint32) syncCount(uint32)
//	           value* beat* supp-section sync-section
//	value   := node(int32) attr(int32) round(int32) bits(uint64)
//	beat    := node(int32) round(int32)
//
// A supp-section (and identically a sync-section) is a run of
// suppCount delta-coded slot identities, sorted by (round, node, attr):
//
//	supp    := roundΔ(zigzag-uvarint) nodeΔ(zigzag-uvarint)
//	           attrΔ(zigzag-uvarint)
//
// where each Δ is against the previous entry ((0,0,0) for the first).
// Canonical ordering makes the deltas small — a suppressed slot
// typically costs 3 bytes, versus 20 for a full value — and lets the
// decoder reject out-of-order sections, so decode∘encode is exact.
//
// A TCP/IP monitoring message carries at least ~78 bytes of protocol
// headers (§2.3); this compact application framing keeps the per-message
// overhead visible but small.
//
// The layout constants below are the single source of truth for the
// format: EncodedSize, AppendEncode and decodePayloadInto are all
// written against them, so a format change is a one-place edit.

// Wire-layout sizes in bytes.
const (
	framePrefixSize = 4 // length prefix
	keyLenSize      = 2 // keyLen field
	// from, to, epoch, count, beatCount, suppCount, syncCount
	fixedHeaderSize = 4 + 4 + 4 + 4 + 4 + 4 + 4
	valueSize       = 4 + 4 + 4 + 8 // node, attr, round, bits
	beatSize        = 4 + 4         // node, round
	// minSuppSize is the smallest possible encoded supp entry (three
	// one-byte varints); used to bound counts before allocating.
	minSuppSize = 3
)

// Codec limits, protecting against corrupt frames.
const (
	maxFrameSize = 16 << 20
	maxKeyLen    = 1 << 15
)

// ErrFrameTooLarge is returned for frames beyond maxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame too large")

// EncodedSize returns the payload size of msg in bytes. The size of
// the delta-coded sections depends on their order, so msg.Suppressed
// and msg.Syncs are canonicalized (sorted in place) first, exactly as
// AppendEncode would.
func EncodedSize(msg Message) int {
	sortSupps(msg.Suppressed)
	sortSupps(msg.Syncs)
	return keyLenSize + len(msg.TreeKey) + fixedHeaderSize +
		len(msg.Values)*valueSize + len(msg.Beats)*beatSize +
		suppSectionSize(msg.Suppressed) + suppSectionSize(msg.Syncs)
}

// FrameSize returns the full on-wire size of msg — length prefix plus
// payload — without encoding it. Byte-accounting harnesses (the
// suppression benchmark's counting transport) use it to measure what a
// message would cost on a real link even over the in-memory transport.
func FrameSize(msg Message) int {
	return framePrefixSize + EncodedSize(msg)
}

// sortSupps puts a supp section into canonical wire order.
func sortSupps(s []Supp) {
	slices.SortFunc(s, func(a, b Supp) int {
		if a.Round != b.Round {
			return a.Round - b.Round
		}
		if a.Node != b.Node {
			return int(a.Node) - int(b.Node)
		}
		return int(a.Attr) - int(b.Attr)
	})
}

// suppSectionSize returns the encoded size of an already-canonical
// supp section.
func suppSectionSize(s []Supp) int {
	size := 0
	pr, pn, pa := 0, 0, 0
	for _, e := range s {
		size += uvarintSize(zigzagEnc(int64(e.Round - pr)))
		size += uvarintSize(zigzagEnc(int64(int(e.Node) - pn)))
		size += uvarintSize(zigzagEnc(int64(int(e.Attr) - pa)))
		pr, pn, pa = e.Round, int(e.Node), int(e.Attr)
	}
	return size
}

// uvarintSize is the encoded length of u as a uvarint.
func uvarintSize(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// zigzagEnc maps signed deltas onto uvarints with small magnitudes
// staying small in either direction.
func zigzagEnc(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// zigzagDec inverts zigzagEnc.
func zigzagDec(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendSuppSection serializes an already-canonical supp section.
func appendSuppSection(dst []byte, s []Supp) []byte {
	pr, pn, pa := 0, 0, 0
	for _, e := range s {
		dst = binary.AppendUvarint(dst, zigzagEnc(int64(e.Round-pr)))
		dst = binary.AppendUvarint(dst, zigzagEnc(int64(int(e.Node)-pn)))
		dst = binary.AppendUvarint(dst, zigzagEnc(int64(int(e.Attr)-pa)))
		pr, pn, pa = e.Round, int(e.Node), int(e.Attr)
	}
	return dst
}

// AppendEncode serializes msg into a self-delimiting frame appended to
// dst and returns the extended slice. It allocates only when dst lacks
// capacity, so callers reusing a buffer encode with zero steady-state
// allocations.
func AppendEncode(dst []byte, msg Message) ([]byte, error) {
	if len(msg.TreeKey) > maxKeyLen {
		return dst, fmt.Errorf("transport: tree key too long (%d)", len(msg.TreeKey))
	}
	size := EncodedSize(msg)
	if size > maxFrameSize {
		return dst, ErrFrameTooLarge
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(size))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg.TreeKey)))
	dst = append(dst, msg.TreeKey...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(msg.From)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(msg.To)))
	dst = binary.BigEndian.AppendUint32(dst, msg.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(msg.Values)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(msg.Beats)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(msg.Suppressed)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(msg.Syncs)))
	for _, v := range msg.Values {
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(v.Node)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(v.Attr)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(v.Round)))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.Value))
	}
	for _, b := range msg.Beats {
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(b.Node)))
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(b.Round)))
	}
	dst = appendSuppSection(dst, msg.Suppressed)
	dst = appendSuppSection(dst, msg.Syncs)
	return dst, nil
}

// Encode serializes msg into a freshly allocated self-delimiting frame.
// Hot paths should prefer AppendEncode into a reused buffer.
func Encode(msg Message) ([]byte, error) {
	buf, err := AppendEncode(make([]byte, 0, framePrefixSize+EncodedSize(msg)), msg)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// framePool recycles encode buffers for transports that need a frame
// only for the duration of one write.
var framePool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

func getFrameBuf() []byte  { return framePool.Get().([]byte)[:0] }
func putFrameBuf(b []byte) { framePool.Put(b) } //nolint:staticcheck // slice header boxing is amortized

// Decoder reads frames from one stream, reusing its payload buffer
// across messages and interning tree keys, so the per-message
// allocations are limited to the decoded Values/Beats slices — and
// DecodeInto eliminates those too by reusing the caller's Message.
type Decoder struct {
	r       io.Reader
	lenBuf  [framePrefixSize]byte
	payload []byte
	keys    map[string]string
}

// NewDecoder returns a Decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, keys: make(map[string]string, 8)}
}

// Decode reads the next frame and returns the message with
// freshly allocated Values/Beats slices, safe to retain indefinitely.
func (d *Decoder) Decode() (Message, error) {
	var msg Message
	if err := d.decode(&msg, false); err != nil {
		return Message{}, err
	}
	return msg, nil
}

// DecodeInto reads the next frame into msg, reusing msg's Values/Beats
// capacity. The decoded slices are owned by msg until the next
// DecodeInto call with the same message; retain a copy if needed
// longer.
func (d *Decoder) DecodeInto(msg *Message) error {
	return d.decode(msg, true)
}

func (d *Decoder) decode(msg *Message, reuse bool) error {
	if _, err := io.ReadFull(d.r, d.lenBuf[:]); err != nil {
		return err
	}
	size := int(binary.BigEndian.Uint32(d.lenBuf[:]))
	if size > maxFrameSize {
		return ErrFrameTooLarge
	}
	if cap(d.payload) < size {
		d.payload = make([]byte, size)
	}
	p := d.payload[:size]
	if _, err := io.ReadFull(d.r, p); err != nil {
		return fmt.Errorf("transport: short frame: %w", err)
	}
	return decodePayloadInto(p, msg, d, reuse)
}

// internKey returns a string for the key bytes, reusing a previously
// decoded instance when possible: tree keys repeat every round, so the
// steady state allocates no strings. The table is capped to stay
// bounded against adversarial streams.
func (d *Decoder) internKey(k []byte) string {
	if len(k) == 0 {
		return ""
	}
	if s, ok := d.keys[string(k)]; ok { // no alloc: map lookup by []byte
		return s
	}
	if len(d.keys) >= 1024 {
		d.keys = make(map[string]string, 8)
	}
	s := string(k)
	d.keys[s] = s
	return s
}

// Decode reads one frame from r and deserializes it, allocating fresh
// backing storage. Streaming readers should hold a Decoder instead.
func Decode(r io.Reader) (Message, error) {
	var lenBuf [framePrefixSize]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Message{}, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size > maxFrameSize {
		return Message{}, ErrFrameTooLarge
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, fmt.Errorf("transport: short frame: %w", err)
	}
	return decodePayload(payload)
}

// decodePayload deserializes one frame payload into a fresh Message.
func decodePayload(p []byte) (Message, error) {
	var msg Message
	if err := decodePayloadInto(p, &msg, nil, false); err != nil {
		return Message{}, err
	}
	return msg, nil
}

// decodePayloadInto deserializes one frame payload. When d is non-nil
// tree keys are interned through it; when reuse is set the message's
// existing Values/Beats capacity is reused instead of allocating.
func decodePayloadInto(p []byte, msg *Message, d *Decoder, reuse bool) error {
	if len(p) < keyLenSize {
		return errors.New("transport: truncated key length")
	}
	keyLen := int(binary.BigEndian.Uint16(p))
	p = p[keyLenSize:]
	if len(p) < keyLen+fixedHeaderSize {
		return errors.New("transport: truncated header")
	}
	if d != nil {
		msg.TreeKey = d.internKey(p[:keyLen])
	} else {
		msg.TreeKey = string(p[:keyLen])
	}
	p = p[keyLen:]
	msg.From = model.NodeID(int32(binary.BigEndian.Uint32(p)))
	msg.To = model.NodeID(int32(binary.BigEndian.Uint32(p[4:])))
	msg.Epoch = binary.BigEndian.Uint32(p[8:])
	count := int(binary.BigEndian.Uint32(p[12:]))
	beatCount := int(binary.BigEndian.Uint32(p[16:]))
	suppCount := int(binary.BigEndian.Uint32(p[20:]))
	syncCount := int(binary.BigEndian.Uint32(p[24:]))
	p = p[fixedHeaderSize:]
	if count < 0 || beatCount < 0 ||
		count > len(p)/valueSize || beatCount > (len(p)-count*valueSize)/beatSize {
		return fmt.Errorf("transport: body is %d bytes, want %d values and %d beats",
			len(p), count, beatCount)
	}
	// Bound the variable sections by their minimum entry size before
	// allocating, so a corrupt count cannot balloon memory.
	varBytes := len(p) - count*valueSize - beatCount*beatSize
	if suppCount < 0 || syncCount < 0 ||
		suppCount > varBytes/minSuppSize || syncCount > varBytes/minSuppSize {
		return fmt.Errorf("transport: %d bytes of sections cannot hold %d supps and %d syncs",
			varBytes, suppCount, syncCount)
	}
	prevValues, prevBeats := msg.Values, msg.Beats
	prevSupps, prevSyncs := msg.Suppressed, msg.Syncs
	msg.Values, msg.Beats = nil, nil
	msg.Suppressed, msg.Syncs = nil, nil
	if count > 0 {
		msg.Values = sliceFor(prevValues, count, reuse)
		for i := 0; i < count; i++ {
			off := i * valueSize
			msg.Values[i] = Value{
				Node:  model.NodeID(int32(binary.BigEndian.Uint32(p[off:]))),
				Attr:  model.AttrID(int32(binary.BigEndian.Uint32(p[off+4:]))),
				Round: int(int32(binary.BigEndian.Uint32(p[off+8:]))),
				Value: math.Float64frombits(binary.BigEndian.Uint64(p[off+12:])),
			}
		}
		p = p[count*valueSize:]
	}
	if beatCount > 0 {
		msg.Beats = sliceFor(prevBeats, beatCount, reuse)
		for i := 0; i < beatCount; i++ {
			off := i * beatSize
			msg.Beats[i] = Beat{
				Node:  model.NodeID(int32(binary.BigEndian.Uint32(p[off:]))),
				Round: int(int32(binary.BigEndian.Uint32(p[off+4:]))),
			}
		}
		p = p[beatCount*beatSize:]
	}
	var err error
	if msg.Suppressed, p, err = decodeSuppSection(p, suppCount, prevSupps, reuse); err != nil {
		return fmt.Errorf("transport: supp section: %w", err)
	}
	if msg.Syncs, p, err = decodeSuppSection(p, syncCount, prevSyncs, reuse); err != nil {
		return fmt.Errorf("transport: sync section: %w", err)
	}
	if len(p) != 0 {
		return fmt.Errorf("transport: %d trailing bytes after sections", len(p))
	}
	return nil
}

// decodeSuppSection parses n delta-coded supp entries off the front of
// p, returning the entries and the remaining bytes. Non-canonical
// (out-of-order) sections, malformed varints, and deltas accumulating
// outside int32 are rejected with an error — never a panic — so a
// corrupt or adversarial section cannot poison the replica protocol.
func decodeSuppSection(p []byte, n int, prev []Supp, reuse bool) ([]Supp, []byte, error) {
	if n == 0 {
		return nil, p, nil
	}
	out := sliceFor(prev, n, reuse)
	pr, pn, pa := 0, 0, 0
	for i := 0; i < n; i++ {
		var d [3]int
		for j := range d {
			u, k := binary.Uvarint(p)
			if k <= 0 {
				return nil, p, fmt.Errorf("malformed varint in entry %d", i)
			}
			p = p[k:]
			v := zigzagDec(u)
			if v < math.MinInt32 || v > math.MaxInt32 {
				return nil, p, fmt.Errorf("delta %d out of range in entry %d", v, i)
			}
			d[j] = int(v)
		}
		r, nd, a := pr+d[0], pn+d[1], pa+d[2]
		if r < math.MinInt32 || r > math.MaxInt32 ||
			nd < math.MinInt32 || nd > math.MaxInt32 ||
			a < math.MinInt32 || a > math.MaxInt32 {
			return nil, p, fmt.Errorf("entry %d accumulates outside int32", i)
		}
		if i > 0 && (r < pr || (r == pr && (nd < pn || (nd == pn && a < pa)))) {
			return nil, p, fmt.Errorf("entry %d out of canonical order", i)
		}
		out[i] = Supp{Node: model.NodeID(nd), Attr: model.AttrID(a), Round: r}
		pr, pn, pa = r, nd, a
	}
	return out, p, nil
}

// sliceFor returns a slice of length n, reusing prev's capacity when
// reuse is set and it suffices.
func sliceFor[T any](prev []T, n int, reuse bool) []T {
	if reuse && cap(prev) >= n {
		return prev[:n]
	}
	return make([]T, n)
}
