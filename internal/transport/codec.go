package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"remo/internal/model"
)

// Wire format (all integers big-endian):
//
//	frame   := length(uint32) payload
//	payload := keyLen(uint16) key from(int32) to(int32)
//	           count(uint32) beatCount(uint32) value* beat*
//	value   := node(int32) attr(int32) round(int32) bits(uint64)
//	beat    := node(int32) round(int32)
//
// A TCP/IP monitoring message carries at least ~78 bytes of protocol
// headers (§2.3); this compact application framing keeps the per-message
// overhead visible but small.

// Codec limits, protecting against corrupt frames.
const (
	maxFrameSize = 16 << 20
	maxKeyLen    = 1 << 15
)

// ErrFrameTooLarge is returned for frames beyond maxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame too large")

// EncodedSize returns the payload size of msg in bytes.
func EncodedSize(msg Message) int {
	return 2 + len(msg.TreeKey) + 4 + 4 + 4 + 4 + len(msg.Values)*20 + len(msg.Beats)*8
}

// Encode serializes msg into a self-delimiting frame.
func Encode(msg Message) ([]byte, error) {
	if len(msg.TreeKey) > maxKeyLen {
		return nil, fmt.Errorf("transport: tree key too long (%d)", len(msg.TreeKey))
	}
	size := EncodedSize(msg)
	if size > maxFrameSize {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, 4+size)
	binary.BigEndian.PutUint32(buf, uint32(size))
	off := 4
	binary.BigEndian.PutUint16(buf[off:], uint16(len(msg.TreeKey)))
	off += 2
	copy(buf[off:], msg.TreeKey)
	off += len(msg.TreeKey)
	binary.BigEndian.PutUint32(buf[off:], uint32(int32(msg.From)))
	off += 4
	binary.BigEndian.PutUint32(buf[off:], uint32(int32(msg.To)))
	off += 4
	binary.BigEndian.PutUint32(buf[off:], uint32(len(msg.Values)))
	off += 4
	binary.BigEndian.PutUint32(buf[off:], uint32(len(msg.Beats)))
	off += 4
	for _, v := range msg.Values {
		binary.BigEndian.PutUint32(buf[off:], uint32(int32(v.Node)))
		off += 4
		binary.BigEndian.PutUint32(buf[off:], uint32(int32(v.Attr)))
		off += 4
		binary.BigEndian.PutUint32(buf[off:], uint32(int32(v.Round)))
		off += 4
		binary.BigEndian.PutUint64(buf[off:], math.Float64bits(v.Value))
		off += 8
	}
	for _, b := range msg.Beats {
		binary.BigEndian.PutUint32(buf[off:], uint32(int32(b.Node)))
		off += 4
		binary.BigEndian.PutUint32(buf[off:], uint32(int32(b.Round)))
		off += 4
	}
	return buf, nil
}

// Decode reads one frame from r and deserializes it.
func Decode(r io.Reader) (Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Message{}, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size > maxFrameSize {
		return Message{}, ErrFrameTooLarge
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, fmt.Errorf("transport: short frame: %w", err)
	}
	return decodePayload(payload)
}

func decodePayload(p []byte) (Message, error) {
	var msg Message
	if len(p) < 2 {
		return msg, errors.New("transport: truncated key length")
	}
	keyLen := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < keyLen+16 {
		return msg, errors.New("transport: truncated header")
	}
	msg.TreeKey = string(p[:keyLen])
	p = p[keyLen:]
	msg.From = model.NodeID(int32(binary.BigEndian.Uint32(p)))
	msg.To = model.NodeID(int32(binary.BigEndian.Uint32(p[4:])))
	count := int(binary.BigEndian.Uint32(p[8:]))
	beatCount := int(binary.BigEndian.Uint32(p[12:]))
	p = p[16:]
	if len(p) != count*20+beatCount*8 {
		return msg, fmt.Errorf("transport: body is %d bytes, want %d",
			len(p), count*20+beatCount*8)
	}
	if count > 0 {
		msg.Values = make([]Value, count)
		for i := 0; i < count; i++ {
			off := i * 20
			msg.Values[i] = Value{
				Node:  model.NodeID(int32(binary.BigEndian.Uint32(p[off:]))),
				Attr:  model.AttrID(int32(binary.BigEndian.Uint32(p[off+4:]))),
				Round: int(int32(binary.BigEndian.Uint32(p[off+8:]))),
				Value: math.Float64frombits(binary.BigEndian.Uint64(p[off+12:])),
			}
		}
		p = p[count*20:]
	}
	if beatCount > 0 {
		msg.Beats = make([]Beat, beatCount)
		for i := 0; i < beatCount; i++ {
			off := i * 8
			msg.Beats[i] = Beat{
				Node:  model.NodeID(int32(binary.BigEndian.Uint32(p[off:]))),
				Round: int(int32(binary.BigEndian.Uint32(p[off+4:]))),
			}
		}
	}
	return msg, nil
}
