package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"remo/internal/model"
)

// fastOpts keeps retry loops snappy in tests (batching on, the
// default).
func fastOpts() TCPOptions {
	return TCPOptions{
		DialTimeout:  200 * time.Millisecond,
		WriteTimeout: 200 * time.Millisecond,
		MaxRetries:   2,
		BackoffBase:  time.Millisecond,
		BackoffMax:   4 * time.Millisecond,
	}
}

// fastOptsDirect is fastOpts with write batching disabled: every Send
// writes synchronously.
func fastOptsDirect() TCPOptions {
	o := fastOpts()
	o.BatchBytes = -1
	return o
}

// killListener closes a node's listener out from under the transport:
// the peer is now a never-answering address.
func killListener(t *testing.T, tr *TCP, n model.NodeID) {
	t.Helper()
	tr.mu.Lock()
	ln := tr.listeners[n]
	tr.mu.Unlock()
	_ = ln.Close()
	// Wait for the accept loop to notice so no connection sneaks in.
	time.Sleep(10 * time.Millisecond)
}

func TestChaosTCPUnreachableDestinationDirect(t *testing.T) {
	tr, err := NewTCPWithOptions([]model.NodeID{1, 2}, fastOptsDirect())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	killListener(t, tr, 2)

	msg := sampleMessage()
	msg.To = 2
	err = tr.Send(msg)
	if err == nil {
		t.Fatal("Send to dead listener succeeded")
	}
	if !IsUnreachable(err) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
	// Taxonomy: unreachable is not the closed or unknown-destination error.
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrUnknownDestination) {
		t.Fatalf("error taxonomy confused: %v", err)
	}
}

func TestChaosTCPUnreachableDestinationBatched(t *testing.T) {
	tr, err := NewTCPWithOptions([]model.NodeID{1, 2}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	killListener(t, tr, 2)

	msg := sampleMessage()
	msg.To = 2
	// Batched: the frame is accepted, the loss is discovered at the
	// round barrier, and the next Send reports the dead peer.
	if err := tr.Send(msg); err != nil {
		t.Fatalf("batched Send buffered frame: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush must degrade gracefully around a dead peer, got %v", err)
	}
	if lost := tr.LostFrames(); lost != 1 {
		t.Fatalf("LostFrames = %d, want 1", lost)
	}
	err = tr.Send(msg)
	if !IsUnreachable(err) {
		t.Fatalf("Send after lost batch: want ErrUnreachable, got %v", err)
	}
	if errors.Is(err, ErrClosed) || errors.Is(err, ErrUnknownDestination) {
		t.Fatalf("error taxonomy confused: %v", err)
	}
	// The latch clears on read: the following Send buffers again.
	if err := tr.Send(msg); err != nil {
		t.Fatalf("Send after latched error: %v", err)
	}
}

func TestChaosTCPEvictAndReconnect(t *testing.T) {
	tr, err := NewTCPWithOptions([]model.NodeID{1, 2}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()

	msg := sampleMessage()
	msg.To = 2
	if err := tr.Send(msg); err != nil {
		t.Fatalf("first send: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	waitDrain(t, tr, 2, 1)

	// Sever the cached connection from the sender side, simulating the
	// peer dropping it mid-stream. The cache still holds the dead conn.
	tr.mu.Lock()
	conn := tr.conns[2]
	tr.mu.Unlock()
	if conn == nil {
		t.Fatal("no cached connection after successful send")
	}
	_ = conn.Close()

	// The next flush hits the dead socket, evicts it, re-dials, and
	// succeeds — possibly needing a retry attempt.
	if err := tr.Send(msg); err != nil {
		t.Fatalf("send after severed connection: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush after severed connection: %v", err)
	}
	waitDrain(t, tr, 2, 1)

	tr.mu.Lock()
	fresh := tr.conns[2]
	tr.mu.Unlock()
	if fresh == conn {
		t.Fatal("broken connection was not evicted from the cache")
	}
}

func TestChaosTCPPeerClosesMidStream(t *testing.T) {
	tr, err := NewTCPWithOptions([]model.NodeID{1, 2}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()

	msg := sampleMessage()
	msg.To = 2
	if err := tr.Send(msg); err != nil {
		t.Fatalf("first send: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	waitDrain(t, tr, 2, 1)

	// Restart node 2's listener on the same address: in-flight conns die
	// but the address answers again, so retries must recover.
	tr.mu.Lock()
	ln := tr.listeners[2]
	addr := tr.addrs[2]
	conn := tr.conns[2]
	tr.mu.Unlock()
	_ = ln.Close()
	_ = conn.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	tr.mu.Lock()
	tr.listeners[2] = ln2
	tr.mu.Unlock()
	tr.wg.Add(1)
	go tr.accept(2, ln2)

	if err := tr.Send(msg); err != nil {
		t.Fatalf("send after listener restart: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("flush after listener restart: %v", err)
	}
	got := waitDrain(t, tr, 2, 1)
	if len(got) != 1 || got[0].From != msg.From {
		t.Fatalf("redelivered message = %+v", got)
	}
}

func TestChaosTCPBackoffCaps(t *testing.T) {
	tr := &TCP{opts: TCPOptions{
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		MaxRetries:  10,
	}.withDefaults()}
	prevBase := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d := tr.backoff(attempt)
		if d < tr.opts.BackoffBase {
			t.Fatalf("attempt %d: backoff %v below base", attempt, d)
		}
		// Cap plus maximum 50% jitter.
		if max := tr.opts.BackoffMax + tr.opts.BackoffMax/2; d > max {
			t.Fatalf("attempt %d: backoff %v exceeds cap %v", attempt, d, max)
		}
		// The deterministic base (jitter removed by lower-bounding over
		// trials) must be monotone non-decreasing until the cap.
		base := d - d%time.Millisecond
		if base < prevBase && prevBase < tr.opts.BackoffMax {
			t.Fatalf("attempt %d: base %v shrank from %v", attempt, base, prevBase)
		}
		prevBase = base
	}
}

func TestChaosTCPSendAfterClose(t *testing.T) {
	tr, err := NewTCPWithOptions([]model.NodeID{1}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	msg := sampleMessage()
	msg.To = 1
	err = tr.Send(msg)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if IsUnreachable(err) {
		t.Fatalf("closed transport misreported as unreachable: %v", err)
	}
}

func TestChaosTCPConcurrentSendsWithEviction(t *testing.T) {
	// A tiny watermark forces a batched write on nearly every Send, so
	// concurrent senders exercise the coalescing path's eviction and
	// retry logic mid-burst.
	opts := fastOpts()
	opts.BatchBytes = 64
	tr, err := NewTCPWithOptions([]model.NodeID{1, 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()

	const senders = 8
	const perSender = 10
	errCh := make(chan error, senders)
	for s := 0; s < senders; s++ {
		go func(s int) {
			msg := sampleMessage()
			msg.To = 2
			msg.From = model.NodeID(s + 10)
			for i := 0; i < perSender; i++ {
				if err := tr.Send(msg); err != nil {
					errCh <- err
					return
				}
				if i == perSender/2 && s == 0 {
					// One sender sabotages the shared cached conn
					// mid-burst; everyone must recover via eviction.
					tr.mu.Lock()
					conn := tr.conns[2]
					tr.mu.Unlock()
					if conn != nil {
						_ = conn.Close()
					}
				}
			}
			errCh <- nil
		}(s)
	}
	for s := 0; s < senders; s++ {
		if err := <-errCh; err != nil {
			t.Fatalf("concurrent sender failed: %v", err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	got := waitDrain(t, tr, 2, senders*perSender)
	if len(got) != senders*perSender {
		t.Fatalf("delivered %d of %d", len(got), senders*perSender)
	}
}

func TestChaosCodecBeatsRoundTrip(t *testing.T) {
	msg := Message{
		From: 7, To: model.Central,
		Beats: []Beat{{Node: 7, Round: 42}, {Node: 9, Round: 43}},
	}
	frame, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != 4+EncodedSize(msg) {
		t.Fatalf("frame len %d, want %d", len(frame), 4+EncodedSize(msg))
	}
	got, err := decodePayload(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Beats) != 2 || got.Beats[0] != msg.Beats[0] || got.Beats[1] != msg.Beats[1] {
		t.Fatalf("beats = %+v", got.Beats)
	}
	if len(got.Values) != 0 {
		t.Fatalf("values = %+v", got.Values)
	}
}
