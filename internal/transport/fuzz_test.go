package transport

import (
	"bytes"
	"testing"

	"remo/internal/model"
)

// FuzzDecode throws arbitrary byte streams at the frame decoder. The
// invariants: never panic, reject anything that is not a well-formed
// frame with an error, and for every accepted frame the decoded message
// re-encodes to exactly the bytes consumed (the wire format is
// canonical, so decode∘encode is the identity on valid frames — this
// catches offset-table drift between the encode and decode paths).
func FuzzDecode(f *testing.F) {
	seed := func(msg Message) {
		frame, err := Encode(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		// Truncations exercise every short-read branch.
		f.Add(frame[:len(frame)-3])
		f.Add(frame[:2])
	}
	seed(Message{TreeKey: "1,2,3", From: 4, To: model.Central,
		Values: []Value{{Node: 4, Attr: 1, Round: 7, Value: 3.25}}})
	seed(Message{TreeKey: "", From: 1, To: 2})
	seed(Message{From: 7, To: model.Central, Beats: []Beat{{Node: 7, Round: 42}}})
	seed(Message{TreeKey: "2,9", From: 3, To: 8,
		Values: []Value{
			{Node: 3, Attr: 2, Round: 5, Value: -1.5},
			{Node: 6, Attr: 9, Round: 4, Value: 1e300},
		},
		Beats: []Beat{{Node: 3, Round: 5}, {Node: 6, Round: 4}}})
	seed(Message{TreeKey: "1", From: 2, To: model.Central,
		Beats: []Beat{{Node: 2, Round: 0}, {Node: 5, Round: 1}, {Node: 9, Round: 2}}})
	// Suppression-section seeds: a frame whose values were all
	// suppressed (empty Values, full Suppressed), a forced-sync frame
	// (every value marked as a sync), and a mixed frame alternating
	// suppressed and transmitted slots across rounds and nodes.
	seed(Message{TreeKey: "1,2", From: 3, To: model.Central,
		Suppressed: []Supp{
			{Node: 3, Attr: 1, Round: 9}, {Node: 3, Attr: 2, Round: 9},
			{Node: 5, Attr: 1, Round: 9},
		}})
	seed(Message{TreeKey: "4", From: 6, To: model.Central,
		Values: []Value{{Node: 6, Attr: 4, Round: 3, Value: 88.5}},
		Syncs:  []Supp{{Node: 6, Attr: 4, Round: 3}}})
	seed(Message{TreeKey: "1,2,3", From: 2, To: 1,
		Values: []Value{
			{Node: 2, Attr: 1, Round: 10, Value: 1},
			{Node: 4, Attr: 3, Round: 11, Value: 2},
		},
		Suppressed: []Supp{
			{Node: 2, Attr: 2, Round: 10}, {Node: 4, Attr: 1, Round: 10},
			{Node: 2, Attr: 3, Round: 11},
		},
		Syncs: []Supp{{Node: 2, Attr: 1, Round: 10}}})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // oversized length prefix
	f.Add([]byte{0x00, 0x00, 0x00, 0x00}) // empty payload (short header)

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		frame, err := Encode(msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %+v: %v", msg, err)
		}
		if len(frame) > len(data) || !bytes.Equal(frame, data[:len(frame)]) {
			t.Fatalf("re-encode mismatch:\ndecoded %+v\nconsumed %x\nre-encoded %x",
				msg, data[:min(len(data), len(frame))], frame)
		}
		// The streaming decoder must agree with the one-shot path.
		msg2, err := NewDecoder(bytes.NewReader(data)).Decode()
		if err != nil {
			t.Fatalf("Decoder rejected a frame Decode accepted: %v", err)
		}
		frame2, err := Encode(msg2)
		if err != nil || !bytes.Equal(frame2, frame) {
			t.Fatalf("Decoder diverged from Decode: %+v vs %+v (err %v)", msg2, msg, err)
		}
	})
}
