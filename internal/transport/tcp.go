package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"remo/internal/model"
)

// TCPOptions tunes the TCP transport's failure handling and write
// batching. The zero value selects the defaults noted on each field.
type TCPOptions struct {
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write (default 2s).
	WriteTimeout time.Duration
	// MaxRetries is how many additional attempts a write makes after the
	// first failure — re-dialing evicted connections between attempts —
	// before declaring the destination unreachable (default 3).
	MaxRetries int
	// BackoffBase is the backoff before the first retry (default 2ms);
	// it doubles per attempt with jitter, capped at BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the per-attempt backoff (default 100ms).
	BackoffMax time.Duration
	// BatchBytes is the per-destination write-coalescing watermark:
	// frames accepted by Send accumulate in one buffer per destination
	// and are written in a single syscall when the buffer reaches
	// BatchBytes or when Flush runs, cutting syscalls and lock
	// acquisitions from one per message to one per destination per
	// round. 0 selects the default (32 KiB); negative disables batching,
	// restoring the synchronous write-per-Send path (and its synchronous
	// unreachable-destination errors).
	BatchBytes int
}

// withDefaults fills in the zero fields.
func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 2 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 100 * time.Millisecond
	}
	if o.BatchBytes == 0 {
		o.BatchBytes = 32 << 10
	}
	return o
}

// batching reports whether write coalescing is enabled.
func (o TCPOptions) batching() bool { return o.BatchBytes > 0 }

// destQueue is the per-destination write state: the coalescing buffer,
// and the write lock serializing senders to one peer without holding
// the transport lock (a stalled TCP write must never block Drain).
type destQueue struct {
	mu     sync.Mutex
	buf    []byte
	frames int
	// failed latches a flush failure so the next Send to this
	// destination reports the dead peer instead of silently buffering
	// forever. It clears on read, giving the link a fresh chance — a
	// recovered peer starts delivering again after one reported drop.
	failed bool
	// streak counts consecutive failed write attempts to this
	// destination across Sends and Flushes: it escalates the starting
	// backoff while the peer stays unreachable, and resets to zero the
	// moment a write succeeds, so a peer recovering from a long outage
	// pays base backoff — not max — on its next transient error.
	streak int
}

// maxStreak caps the backoff-escalation exponent contributed by a
// destination's failure streak.
const maxStreak = 16

// bumpStreak records one failed write attempt.
func (q *destQueue) bumpStreak() {
	if q.streak < maxStreak {
		q.streak++
	}
}

// TCP is a loopback transport: every node (including the central
// collector) owns a TCP listener, senders keep one connection per
// destination, and frames use the binary codec. It exists to validate
// the emulation against a real network stack; experiments default to the
// memory transport.
//
// Writes are batched per destination (see TCPOptions.BatchBytes):
// frames accepted by Send accumulate in one buffer per peer and go out
// in a single syscall at the size watermark or on Flush — the round
// barrier the emulation already runs. Failures are retried with capped
// jittered backoff; the backoff wait observes Close, so closing the
// transport unblocks in-flight retries promptly. When every attempt
// fails the frames are dropped (counted in LostFrames), the error wraps
// ErrUnreachable, and the destination's failed latch makes the next
// Send report the dead peer.
type TCP struct {
	mu        sync.Mutex
	addrs     map[model.NodeID]string
	listeners map[model.NodeID]net.Listener
	conns     map[model.NodeID]net.Conn
	queues    map[model.NodeID]*destQueue
	boxes     map[model.NodeID][]Message
	closed    bool
	closedCh  chan struct{}
	wg        sync.WaitGroup
	opts      TCPOptions

	sentCount      atomic.Int64
	deliveredCount atomic.Int64
	lostFrames     atomic.Int64
	// jitterState seeds the deterministic backoff jitter.
	jitterState atomic.Uint64
}

var _ Transport = (*TCP)(nil)

// NewTCP starts one loopback listener per node (plus the central
// collector) on ephemeral ports, with default failure-handling and
// batching options.
func NewTCP(nodes []model.NodeID) (*TCP, error) {
	return NewTCPWithOptions(nodes, TCPOptions{})
}

// NewTCPWithOptions is NewTCP with explicit options.
func NewTCPWithOptions(nodes []model.NodeID, opts TCPOptions) (*TCP, error) {
	t := &TCP{
		addrs:     make(map[model.NodeID]string, len(nodes)+1),
		listeners: make(map[model.NodeID]net.Listener, len(nodes)+1),
		conns:     make(map[model.NodeID]net.Conn, len(nodes)+1),
		queues:    make(map[model.NodeID]*destQueue, len(nodes)+1),
		boxes:     make(map[model.NodeID][]Message, len(nodes)+1),
		closedCh:  make(chan struct{}),
		opts:      opts.withDefaults(),
	}
	all := append([]model.NodeID{model.Central}, nodes...)
	for _, n := range all {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("listen for %v: %w", n, err)
		}
		t.listeners[n] = ln
		t.addrs[n] = ln.Addr().String()
		t.boxes[n] = nil
		t.queues[n] = &destQueue{}
		t.wg.Add(1)
		go t.accept(n, ln)
	}
	return t, nil
}

// accept owns one node's listener, spawning a reader per inbound
// connection.
func (t *TCP) accept(n model.NodeID, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.read(n, conn)
	}
}

// read decodes frames from one connection into the node's mailbox. The
// per-connection Decoder reuses its payload buffer and interns tree
// keys, so steady-state decoding allocates only the messages' value
// slices.
func (t *TCP) read(n model.NodeID, conn net.Conn) {
	defer t.wg.Done()
	defer func() { _ = conn.Close() }()
	dec := NewDecoder(conn)
	for {
		msg, err := dec.Decode()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Connection torn down mid-frame during shutdown:
				// nothing to surface to the experiment.
				_ = err
			}
			return
		}
		t.mu.Lock()
		if !t.closed {
			t.boxes[n] = append(t.boxes[n], msg)
		}
		t.mu.Unlock()
		t.deliveredCount.Add(1)
	}
}

// Send implements Transport. With batching enabled (the default) the
// frame is appended to the destination's coalescing buffer and written
// out at the size watermark or on Flush; a destination whose last batch
// was lost reports ErrUnreachable once before accepting new frames.
// With batching disabled every Send writes synchronously, retrying
// failures with backoff before declaring the peer unreachable.
func (t *TCP) Send(msg Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	addr, ok := t.addrs[msg.To]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrUnknownDestination, msg.To)
	}
	q := t.queues[msg.To]
	t.mu.Unlock()

	if t.opts.batching() {
		return t.sendBatched(msg, addr, q)
	}
	return t.sendDirect(msg, addr, q)
}

// sendBatched appends the frame to the destination's buffer, flushing
// at the watermark.
func (t *TCP) sendBatched(msg Message, addr string, q *destQueue) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.failed {
		q.failed = false
		return fmt.Errorf("send to %v: previous batch lost: %w", msg.To, ErrUnreachable)
	}
	buf, err := AppendEncode(q.buf, msg)
	if err != nil {
		return err
	}
	q.buf = buf
	q.frames++
	if len(q.buf) < t.opts.BatchBytes {
		return nil
	}
	if err := t.flushQueueLocked(msg.To, addr, q); err != nil {
		if IsUnreachable(err) {
			// The error is surfaced to this caller, who accounts for
			// this message; only the other coalesced frames count as
			// lost here.
			t.lostFrames.Add(-1)
		}
		return err
	}
	return nil
}

// sendDirect is the unbatched path: encode into a pooled frame buffer
// and write synchronously with retries.
func (t *TCP) sendDirect(msg Message, addr string, q *destQueue) error {
	frame, err := AppendEncode(getFrameBuf(), msg)
	defer putFrameBuf(frame)
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt <= t.opts.MaxRetries; attempt++ {
		if attempt > 0 && !t.waitBackoff(attempt+t.streakOf(q)) {
			return ErrClosed
		}
		if t.isClosed() {
			return ErrClosed
		}
		conn, err := t.connTo(msg.To, addr)
		if err != nil {
			lastErr = err
			q.mu.Lock()
			q.bumpStreak()
			q.mu.Unlock()
			continue
		}
		q.mu.Lock()
		err = t.writeConn(msg.To, conn, frame)
		if err != nil {
			q.bumpStreak()
		} else {
			q.streak = 0
		}
		q.mu.Unlock()
		if err != nil {
			lastErr = err
			t.evict(msg.To, conn)
			continue
		}
		t.sentCount.Add(1)
		return nil
	}
	return fmt.Errorf("send to %v failed after %d attempts: %w (last: %v)",
		msg.To, t.opts.MaxRetries+1, ErrUnreachable, lastErr)
}

// flushQueueLocked writes the destination's coalesced buffer in one
// syscall, retrying with backoff. Exhaustion drops the buffered frames
// (counted in LostFrames) and returns an error wrapping ErrUnreachable.
// The caller holds q.mu.
func (t *TCP) flushQueueLocked(to model.NodeID, addr string, q *destQueue) error {
	if q.frames == 0 {
		return nil
	}
	var lastErr error
	for attempt := 0; attempt <= t.opts.MaxRetries; attempt++ {
		if attempt > 0 && !t.waitBackoff(attempt+q.streak) {
			return ErrClosed
		}
		if t.isClosed() {
			return ErrClosed
		}
		conn, err := t.connTo(to, addr)
		if err != nil {
			lastErr = err
			q.bumpStreak()
			continue
		}
		if err := t.writeConn(to, conn, q.buf); err != nil {
			lastErr = err
			q.bumpStreak()
			t.evict(to, conn)
			continue
		}
		q.streak = 0
		t.sentCount.Add(int64(q.frames))
		q.buf, q.frames = q.buf[:0], 0
		return nil
	}
	t.lostFrames.Add(int64(q.frames))
	q.buf, q.frames = q.buf[:0], 0
	return fmt.Errorf("flush to %v failed after %d attempts: %w (last: %v)",
		to, t.opts.MaxRetries+1, ErrUnreachable, lastErr)
}

// connTo returns the cached connection to the destination, dialing one
// (with the configured timeout) when none is cached.
func (t *TCP) connTo(to model.NodeID, addr string) (net.Conn, error) {
	t.mu.Lock()
	conn := t.conns[to]
	t.mu.Unlock()
	if conn != nil {
		return conn, nil
	}
	c, err := net.DialTimeout("tcp", addr, t.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dial %v: %w", to, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		_ = c.Close()
		return nil, ErrClosed
	}
	if cached := t.conns[to]; cached != nil {
		// Another sender won the race; use theirs.
		_ = c.Close()
		return cached, nil
	}
	t.conns[to] = c
	return c, nil
}

// writeConn writes one buffer under the configured deadline. Callers
// serialize per destination via the destination queue's lock.
func (t *TCP) writeConn(to model.NodeID, conn net.Conn, buf []byte) error {
	if err := conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout)); err != nil {
		return fmt.Errorf("write deadline for %v: %w", to, err)
	}
	if _, err := conn.Write(buf); err != nil {
		return fmt.Errorf("write to %v: %w", to, err)
	}
	return nil
}

// evict drops a broken connection from the cache (only if it is still
// the cached one — a concurrent sender may have replaced it already) so
// the next attempt re-dials instead of failing forever against a closed
// socket.
func (t *TCP) evict(to model.NodeID, conn net.Conn) {
	t.mu.Lock()
	if t.conns[to] == conn {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	_ = conn.Close()
}

// streakOf reads a destination's failure streak under its lock (for the
// unbatched path, which computes backoff before taking the write lock).
func (t *TCP) streakOf(q *destQueue) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.streak
}

// isClosed reports whether Close has begun.
func (t *TCP) isClosed() bool {
	select {
	case <-t.closedCh:
		return true
	default:
		return false
	}
}

// waitBackoff sleeps the backoff before the given retry attempt,
// returning early (false) when the transport closes — Close must not
// wait out in-flight retry backoffs.
func (t *TCP) waitBackoff(attempt int) bool {
	timer := time.NewTimer(t.backoff(attempt))
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-t.closedCh:
		return false
	}
}

// backoff computes the sleep before the given retry attempt (1-based):
// exponential from BackoffBase, capped at BackoffMax, plus up to 50%
// deterministic jitter to de-synchronize concurrent senders.
func (t *TCP) backoff(attempt int) time.Duration {
	d := t.opts.BackoffBase
	for i := 1; i < attempt && d < t.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > t.opts.BackoffMax {
		d = t.opts.BackoffMax
	}
	// splitmix64 step over a shared counter: cheap, lock-free jitter.
	s := t.jitterState.Add(0x9E3779B97F4A7C15)
	s ^= s >> 30
	s *= 0xBF58476D1CE4E5B9
	s ^= s >> 27
	jitter := time.Duration(s % uint64(d/2+1))
	return d + jitter
}

// Flush implements Transport: it writes out every destination's
// coalesced buffer, then waits until every written frame has been
// decoded into a mailbox. A destination that stays unreachable loses
// its buffered frames (LostFrames) and latches an error for the next
// Send, but does not fail the barrier — the emulation degrades
// gracefully around dead peers instead of aborting the round.
func (t *TCP) Flush() error {
	if t.isClosed() {
		return ErrClosed
	}
	if t.opts.batching() {
		t.mu.Lock()
		dests := make([]model.NodeID, 0, len(t.queues))
		for n := range t.queues {
			dests = append(dests, n)
		}
		t.mu.Unlock()
		for _, n := range dests {
			t.mu.Lock()
			addr, q := t.addrs[n], t.queues[n]
			t.mu.Unlock()
			q.mu.Lock()
			err := t.flushQueueLocked(n, addr, q)
			if err != nil && IsUnreachable(err) {
				q.failed = true
				err = nil
			}
			q.mu.Unlock()
			if err != nil {
				return err
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for t.deliveredCount.Load() < t.sentCount.Load() {
		if t.isClosed() {
			return ErrClosed
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: flush timed out (%d of %d delivered)",
				t.deliveredCount.Load(), t.sentCount.Load())
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// Drain implements Transport.
func (t *TCP) Drain(n model.NodeID) []Message {
	t.mu.Lock()
	msgs := t.boxes[n]
	t.boxes[n] = nil
	t.mu.Unlock()
	sortMessages(msgs)
	return msgs
}

// Pending reports whether any mailbox still has undelivered frames —
// used by tests to wait for in-flight messages.
func (t *TCP) Pending(n model.NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.boxes[n])
}

// LostFrames counts frames accepted by Send but dropped because their
// destination stayed unreachable through a batched flush. The emulation
// folds them into its dropped-message accounting.
func (t *TCP) LostFrames() int {
	return int(t.lostFrames.Load())
}

// Close implements Transport: it stops listeners, closes connections,
// unblocks in-flight retry backoffs and waits for reader goroutines to
// exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.closedCh)
	for _, ln := range t.listeners {
		_ = ln.Close()
	}
	for _, c := range t.conns {
		_ = c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
