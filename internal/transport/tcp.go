package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"remo/internal/model"
)

// TCPOptions tunes the TCP transport's failure handling. The zero value
// selects the defaults noted on each field.
type TCPOptions struct {
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write (default 2s).
	WriteTimeout time.Duration
	// MaxRetries is how many additional attempts Send makes after the
	// first failure — re-dialing evicted connections between attempts —
	// before declaring the destination unreachable (default 3).
	MaxRetries int
	// BackoffBase is the backoff before the first retry (default 2ms);
	// it doubles per attempt with jitter, capped at BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the per-attempt backoff (default 100ms).
	BackoffMax time.Duration
}

// withDefaults fills in the zero fields.
func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 2 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 100 * time.Millisecond
	}
	return o
}

// TCP is a loopback transport: every node (including the central
// collector) owns a TCP listener, senders keep one connection per
// destination, and frames use the binary codec. It exists to validate
// the emulation against a real network stack; experiments default to the
// memory transport.
//
// Send is hardened against peer failures: dials and writes carry
// deadlines, a connection that fails a write is evicted and re-dialed
// (a broken conn never poisons later sends), and failures are retried
// with capped exponential backoff plus jitter. When every attempt fails
// the returned error wraps ErrUnreachable so callers can distinguish a
// dead peer from a transient hiccup.
type TCP struct {
	mu        sync.Mutex
	addrs     map[model.NodeID]string
	listeners map[model.NodeID]net.Listener
	conns     map[model.NodeID]net.Conn
	writeMu   map[model.NodeID]*sync.Mutex
	boxes     map[model.NodeID][]Message
	closed    bool
	wg        sync.WaitGroup
	opts      TCPOptions

	sentCount      atomic.Int64
	deliveredCount atomic.Int64
	// jitterState seeds the deterministic backoff jitter.
	jitterState atomic.Uint64
}

var _ Transport = (*TCP)(nil)

// NewTCP starts one loopback listener per node (plus the central
// collector) on ephemeral ports, with default failure-handling options.
func NewTCP(nodes []model.NodeID) (*TCP, error) {
	return NewTCPWithOptions(nodes, TCPOptions{})
}

// NewTCPWithOptions is NewTCP with explicit failure-handling options.
func NewTCPWithOptions(nodes []model.NodeID, opts TCPOptions) (*TCP, error) {
	t := &TCP{
		addrs:     make(map[model.NodeID]string, len(nodes)+1),
		listeners: make(map[model.NodeID]net.Listener, len(nodes)+1),
		conns:     make(map[model.NodeID]net.Conn, len(nodes)+1),
		writeMu:   make(map[model.NodeID]*sync.Mutex, len(nodes)+1),
		boxes:     make(map[model.NodeID][]Message, len(nodes)+1),
		opts:      opts.withDefaults(),
	}
	all := append([]model.NodeID{model.Central}, nodes...)
	for _, n := range all {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("listen for %v: %w", n, err)
		}
		t.listeners[n] = ln
		t.addrs[n] = ln.Addr().String()
		t.boxes[n] = nil
		t.writeMu[n] = &sync.Mutex{}
		t.wg.Add(1)
		go t.accept(n, ln)
	}
	return t, nil
}

// accept owns one node's listener, spawning a reader per inbound
// connection.
func (t *TCP) accept(n model.NodeID, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.read(n, conn)
	}
}

// read decodes frames from one connection into the node's mailbox.
func (t *TCP) read(n model.NodeID, conn net.Conn) {
	defer t.wg.Done()
	defer func() { _ = conn.Close() }()
	for {
		msg, err := Decode(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Connection torn down mid-frame during shutdown:
				// nothing to surface to the experiment.
				_ = err
			}
			return
		}
		t.mu.Lock()
		if !t.closed {
			t.boxes[n] = append(t.boxes[n], msg)
		}
		t.mu.Unlock()
		t.deliveredCount.Add(1)
	}
}

// Send implements Transport. Failures are retried MaxRetries times with
// backoff; the broken connection is evicted before each retry so every
// attempt re-dials a fresh socket. Exhaustion returns an error wrapping
// ErrUnreachable.
func (t *TCP) Send(msg Message) error {
	frame, err := Encode(msg)
	if err != nil {
		return err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	addr, ok := t.addrs[msg.To]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrUnknownDestination, msg.To)
	}
	t.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt <= t.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(t.backoff(attempt))
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrClosed
		}
		conn, err := t.connTo(msg.To, addr)
		if err != nil {
			lastErr = err
			continue
		}
		if err := t.writeFrame(msg.To, conn, frame); err != nil {
			lastErr = err
			t.evict(msg.To, conn)
			continue
		}
		t.sentCount.Add(1)
		return nil
	}
	return fmt.Errorf("send to %v failed after %d attempts: %w (last: %v)",
		msg.To, t.opts.MaxRetries+1, ErrUnreachable, lastErr)
}

// connTo returns the cached connection to the destination, dialing one
// (with the configured timeout) when none is cached.
func (t *TCP) connTo(to model.NodeID, addr string) (net.Conn, error) {
	t.mu.Lock()
	conn := t.conns[to]
	t.mu.Unlock()
	if conn != nil {
		return conn, nil
	}
	c, err := net.DialTimeout("tcp", addr, t.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dial %v: %w", to, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		_ = c.Close()
		return nil, ErrClosed
	}
	if cached := t.conns[to]; cached != nil {
		// Another sender won the race; use theirs.
		_ = c.Close()
		return cached, nil
	}
	t.conns[to] = c
	return c, nil
}

// writeFrame writes one frame under the destination's write lock and
// deadline. Writers are serialized per destination without holding the
// transport lock: a stalled TCP write must never block Drain.
func (t *TCP) writeFrame(to model.NodeID, conn net.Conn, frame []byte) error {
	wmu := t.writeMu[to]
	wmu.Lock()
	defer wmu.Unlock()
	if err := conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout)); err != nil {
		return fmt.Errorf("write deadline for %v: %w", to, err)
	}
	if _, err := conn.Write(frame); err != nil {
		return fmt.Errorf("write to %v: %w", to, err)
	}
	return nil
}

// evict drops a broken connection from the cache (only if it is still
// the cached one — a concurrent sender may have replaced it already) so
// the next attempt re-dials instead of failing forever against a closed
// socket.
func (t *TCP) evict(to model.NodeID, conn net.Conn) {
	t.mu.Lock()
	if t.conns[to] == conn {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	_ = conn.Close()
}

// backoff computes the sleep before the given retry attempt (1-based):
// exponential from BackoffBase, capped at BackoffMax, plus up to 50%
// deterministic jitter to de-synchronize concurrent senders.
func (t *TCP) backoff(attempt int) time.Duration {
	d := t.opts.BackoffBase
	for i := 1; i < attempt && d < t.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > t.opts.BackoffMax {
		d = t.opts.BackoffMax
	}
	// splitmix64 step over a shared counter: cheap, lock-free jitter.
	s := t.jitterState.Add(0x9E3779B97F4A7C15)
	s ^= s >> 30
	s *= 0xBF58476D1CE4E5B9
	s ^= s >> 27
	jitter := time.Duration(s % uint64(d/2+1))
	return d + jitter
}

// Flush implements Transport: it waits until every successfully written
// frame has been decoded into a mailbox. Loopback delivery is fast, so
// the poll interval is tight; a generous deadline guards shutdown races.
func (t *TCP) Flush() error {
	deadline := time.Now().Add(10 * time.Second)
	for t.deliveredCount.Load() < t.sentCount.Load() {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrClosed
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: flush timed out (%d of %d delivered)",
				t.deliveredCount.Load(), t.sentCount.Load())
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// Drain implements Transport.
func (t *TCP) Drain(n model.NodeID) []Message {
	t.mu.Lock()
	msgs := t.boxes[n]
	t.boxes[n] = nil
	t.mu.Unlock()
	sortMessages(msgs)
	return msgs
}

// Pending reports whether any mailbox still has undelivered frames —
// used by tests to wait for in-flight messages.
func (t *TCP) Pending(n model.NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.boxes[n])
}

// Close implements Transport: it stops listeners, closes connections and
// waits for reader goroutines to exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, ln := range t.listeners {
		_ = ln.Close()
	}
	for _, c := range t.conns {
		_ = c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
