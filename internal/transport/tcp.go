package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"remo/internal/model"
)

// TCP is a loopback transport: every node (including the central
// collector) owns a TCP listener, senders keep one connection per
// destination, and frames use the binary codec. It exists to validate
// the emulation against a real network stack; experiments default to the
// memory transport.
type TCP struct {
	mu        sync.Mutex
	addrs     map[model.NodeID]string
	listeners map[model.NodeID]net.Listener
	conns     map[model.NodeID]net.Conn
	writeMu   map[model.NodeID]*sync.Mutex
	boxes     map[model.NodeID][]Message
	closed    bool
	wg        sync.WaitGroup

	sentCount      atomic.Int64
	deliveredCount atomic.Int64
}

var _ Transport = (*TCP)(nil)

// NewTCP starts one loopback listener per node (plus the central
// collector) on ephemeral ports.
func NewTCP(nodes []model.NodeID) (*TCP, error) {
	t := &TCP{
		addrs:     make(map[model.NodeID]string, len(nodes)+1),
		listeners: make(map[model.NodeID]net.Listener, len(nodes)+1),
		conns:     make(map[model.NodeID]net.Conn, len(nodes)+1),
		writeMu:   make(map[model.NodeID]*sync.Mutex, len(nodes)+1),
		boxes:     make(map[model.NodeID][]Message, len(nodes)+1),
	}
	all := append([]model.NodeID{model.Central}, nodes...)
	for _, n := range all {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("listen for %v: %w", n, err)
		}
		t.listeners[n] = ln
		t.addrs[n] = ln.Addr().String()
		t.boxes[n] = nil
		t.writeMu[n] = &sync.Mutex{}
		t.wg.Add(1)
		go t.accept(n, ln)
	}
	return t, nil
}

// accept owns one node's listener, spawning a reader per inbound
// connection.
func (t *TCP) accept(n model.NodeID, ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.read(n, conn)
	}
}

// read decodes frames from one connection into the node's mailbox.
func (t *TCP) read(n model.NodeID, conn net.Conn) {
	defer t.wg.Done()
	defer func() { _ = conn.Close() }()
	for {
		msg, err := Decode(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Connection torn down mid-frame during shutdown:
				// nothing to surface to the experiment.
				_ = err
			}
			return
		}
		t.mu.Lock()
		if !t.closed {
			t.boxes[n] = append(t.boxes[n], msg)
		}
		t.mu.Unlock()
		t.deliveredCount.Add(1)
	}
}

// Send implements Transport.
func (t *TCP) Send(msg Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	addr, ok := t.addrs[msg.To]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrUnknownDestination, msg.To)
	}
	conn := t.conns[msg.To]
	t.mu.Unlock()

	if conn == nil {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("dial %v: %w", msg.To, err)
		}
		t.mu.Lock()
		if t.conns[msg.To] == nil {
			t.conns[msg.To] = c
			conn = c
		} else {
			// Another sender won the race; use theirs.
			conn = t.conns[msg.To]
			_ = c.Close()
		}
		t.mu.Unlock()
	}

	frame, err := Encode(msg)
	if err != nil {
		return err
	}
	// Serialize writers per destination without holding the transport
	// lock: a stalled TCP write must never block Drain.
	wmu := t.writeMu[msg.To]
	wmu.Lock()
	defer wmu.Unlock()
	if _, err := conn.Write(frame); err != nil {
		return fmt.Errorf("write to %v: %w", msg.To, err)
	}
	t.sentCount.Add(1)
	return nil
}

// Flush implements Transport: it waits until every successfully written
// frame has been decoded into a mailbox. Loopback delivery is fast, so
// the poll interval is tight; a generous deadline guards shutdown races.
func (t *TCP) Flush() error {
	deadline := time.Now().Add(10 * time.Second)
	for t.deliveredCount.Load() < t.sentCount.Load() {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrClosed
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: flush timed out (%d of %d delivered)",
				t.deliveredCount.Load(), t.sentCount.Load())
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// Drain implements Transport.
func (t *TCP) Drain(n model.NodeID) []Message {
	t.mu.Lock()
	msgs := t.boxes[n]
	t.boxes[n] = nil
	t.mu.Unlock()
	sortMessages(msgs)
	return msgs
}

// Pending reports whether any mailbox still has undelivered frames —
// used by tests to wait for in-flight messages.
func (t *TCP) Pending(n model.NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.boxes[n])
}

// Close implements Transport: it stops listeners, closes connections and
// waits for reader goroutines to exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, ln := range t.listeners {
		_ = ln.Close()
	}
	for _, c := range t.conns {
		_ = c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
