package transport

import (
	"testing"
	"time"

	"remo/internal/model"
)

func TestStreakCapsAtMax(t *testing.T) {
	q := &destQueue{}
	for i := 0; i < 3*maxStreak; i++ {
		q.bumpStreak()
	}
	if q.streak != maxStreak {
		t.Fatalf("streak = %d, want capped at %d", q.streak, maxStreak)
	}
}

// TestStreakResetsOnSuccessfulSend is the reconnect-hardening contract:
// once a write to a previously failing destination succeeds, the
// escalated backoff state resets, so the peer's next transient error
// pays base backoff instead of the outage-escalated one.
func TestStreakResetsOnSuccessfulSend(t *testing.T) {
	nodes := []model.NodeID{1, 2}
	// BatchBytes < 0 selects the synchronous write-per-Send path.
	tr, err := NewTCPWithOptions(nodes, TCPOptions{BatchBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()

	// Simulate a long outage's worth of accumulated failures.
	q := tr.queues[model.NodeID(2)]
	q.mu.Lock()
	q.streak = maxStreak
	q.mu.Unlock()

	if err := tr.Send(Message{From: 1, To: 2, TreeKey: "k",
		Values: []Value{{Node: 1, Attr: 1, Round: 0, Value: 1}}}); err != nil {
		t.Fatal(err)
	}
	if got := tr.streakOf(q); got != 0 {
		t.Fatalf("streak = %d after successful send, want 0", got)
	}
}

// TestStreakResetsOnSuccessfulFlush covers the batched path the round
// engine uses.
func TestStreakResetsOnSuccessfulFlush(t *testing.T) {
	nodes := []model.NodeID{1, 2}
	tr, err := NewTCPWithOptions(nodes, TCPOptions{
		BatchBytes:  1 << 16,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()

	q := tr.queues[model.NodeID(2)]
	q.mu.Lock()
	q.streak = 5
	q.mu.Unlock()

	if err := tr.Send(Message{From: 1, To: 2, TreeKey: "k",
		Values: []Value{{Node: 1, Attr: 1, Round: 0, Value: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := tr.streakOf(q); got != 0 {
		t.Fatalf("streak = %d after successful flush, want 0", got)
	}
}
