// Package transport moves monitoring update messages between emulated
// nodes. Two implementations are provided: an in-process memory transport
// for fast deterministic experiments, and a TCP loopback transport that
// exercises a real network stack with a length-prefixed binary codec.
package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"remo/internal/model"
)

// Value is one attribute observation in flight: attribute Attr observed
// at node Node during collection round Round.
type Value struct {
	Node  model.NodeID
	Attr  model.AttrID
	Round int
	Value float64
}

// Beat is a liveness heartbeat: node Node was provably alive at round
// Round. Heartbeats ride their own messages (no Values) straight to the
// collector and are exempt from the capacity cost model — they exist so
// the failure detector can tell "silent" from "dead".
type Beat struct {
	Node  model.NodeID
	Round int
}

// Message is one periodic update: node From forwards Values to its
// parent To within the tree identified by TreeKey (the tree's
// attribute-set key). Heartbeat messages carry Beats and no Values.
type Message struct {
	TreeKey string
	From    model.NodeID
	To      model.NodeID
	Values  []Value
	Beats   []Beat
}

// Transport delivers messages to per-node mailboxes.
//
// Implementations must allow concurrent Send calls and concurrent Drain
// calls for distinct nodes.
type Transport interface {
	// Send enqueues the message for its destination.
	Send(msg Message) error
	// Drain atomically removes and returns everything queued for node n,
	// in canonical order (tree key, then sender).
	Drain(n model.NodeID) []Message
	// Flush blocks until every accepted Send has reached its mailbox —
	// the round barrier for asynchronous transports. Synchronous
	// transports return immediately.
	Flush() error
	// Close releases transport resources. No Send or Drain may follow.
	Close() error
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownDestination is returned when sending to a node the transport
// was not configured with.
var ErrUnknownDestination = errors.New("transport: unknown destination")

// ErrUnreachable is the permanent branch of the Send error taxonomy: the
// destination stayed unreachable after the transport's bounded retries.
// Callers should treat the message as lost and degrade gracefully (drop
// and keep the round going) rather than abort. Any other Send error is
// transient — retrying next round may succeed.
var ErrUnreachable = errors.New("transport: destination unreachable")

// IsUnreachable reports whether err marks a permanently unreachable
// destination (after retries), as opposed to a transient failure.
func IsUnreachable(err error) bool { return errors.Is(err, ErrUnreachable) }

// sortMessages puts drained messages into canonical order so runs are
// deterministic regardless of goroutine scheduling.
func sortMessages(msgs []Message) {
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].TreeKey != msgs[j].TreeKey {
			return msgs[i].TreeKey < msgs[j].TreeKey
		}
		return msgs[i].From < msgs[j].From
	})
}

// Memory is an in-process transport backed by per-node mailboxes.
type Memory struct {
	mu     sync.Mutex
	boxes  map[model.NodeID][]Message
	closed bool
}

var _ Transport = (*Memory)(nil)

// NewMemory returns a memory transport with mailboxes for the given
// nodes (the central collector is always included).
func NewMemory(nodes []model.NodeID) *Memory {
	m := &Memory{boxes: make(map[model.NodeID][]Message, len(nodes)+1)}
	m.boxes[model.Central] = nil
	for _, n := range nodes {
		m.boxes[n] = nil
	}
	return m
}

// Send implements Transport.
func (m *Memory) Send(msg Message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, ok := m.boxes[msg.To]; !ok {
		return fmt.Errorf("%w: %v", ErrUnknownDestination, msg.To)
	}
	m.boxes[msg.To] = append(m.boxes[msg.To], msg)
	return nil
}

// Drain implements Transport.
func (m *Memory) Drain(n model.NodeID) []Message {
	m.mu.Lock()
	msgs := m.boxes[n]
	m.boxes[n] = nil
	m.mu.Unlock()
	sortMessages(msgs)
	return msgs
}

// Flush implements Transport; memory delivery is synchronous, so it is
// a no-op.
func (m *Memory) Flush() error { return nil }

// Close implements Transport.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
