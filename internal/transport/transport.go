// Package transport moves monitoring update messages between emulated
// nodes. Two implementations are provided: an in-process memory transport
// for fast deterministic experiments, and a TCP loopback transport that
// exercises a real network stack with a length-prefixed binary codec.
package transport

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"remo/internal/model"
)

// Value is one attribute observation in flight: attribute Attr observed
// at node Node during collection round Round.
type Value struct {
	Node  model.NodeID
	Attr  model.AttrID
	Round int
	Value float64
}

// Beat is a liveness heartbeat: node Node was provably alive at round
// Round. Heartbeats ride their own messages (no Values) straight to the
// collector and are exempt from the capacity cost model — they exist so
// the failure detector can tell "silent" from "dead".
type Beat struct {
	Node  model.NodeID
	Round int
}

// Supp identifies one suppressed or synced slot: attribute Attr
// observed at node Node during origin round Round, carried without its
// value. In Message.Suppressed it marks a value the sender withheld
// because the shared forecast was within the attribute's dead band (the
// collector imputes it from its model replica); in Message.Syncs it
// marks a value in Message.Values that is a forced ground-truth re-sync
// (both model replicas reset and re-seed from the carried value). On
// the wire each entry costs ~1–3 bytes (delta-varint coded), versus 20
// bytes for a full value.
type Supp struct {
	Node  model.NodeID
	Attr  model.AttrID
	Round int
}

// Message is one periodic update: node From forwards Values to its
// parent To within the tree identified by TreeKey (the tree's
// attribute-set key). Heartbeat messages carry Beats and no Values.
//
// Epoch is the plan epoch the sender composed the message under. Every
// topology install bumps the epoch, and receivers running with epoch
// fencing reject frames from superseded epochs — the mechanism that
// keeps pre-crash frames out of a restarted collector's accounting.
//
// Buffer ownership: Send borrows the message's Values/Beats/Suppressed/
// Syncs slices only for the duration of the call — the transport either
// retains the Message struct as-is (memory transport, where the receiver
// consumes it before the sender's next compose) or serializes it before
// returning (TCP), so senders may reuse their backing arrays for the
// next round once the message has been drained by its receiver.
// Messages returned by Drain, and their slices, are owned by the caller
// only until the next Drain call for the same node; callers that retain
// messages longer must copy them.
//
// Encoding canonicalizes Suppressed and Syncs: AppendEncode and
// EncodedSize sort both slices in place by (Round, Node, Attr) so the
// delta-varint wire sections are minimal and decode-order-checked.
type Message struct {
	TreeKey    string
	From       model.NodeID
	To         model.NodeID
	Epoch      uint32
	Values     []Value
	Beats      []Beat
	Suppressed []Supp
	Syncs      []Supp
}

// Transport delivers messages to per-node mailboxes.
//
// Implementations must allow concurrent Send calls and concurrent Drain
// calls for distinct nodes.
type Transport interface {
	// Send enqueues the message for its destination. See Message for the
	// buffer-ownership rules.
	Send(msg Message) error
	// Drain atomically removes and returns everything queued for node n,
	// in canonical order (tree key, then sender). The returned slice is
	// valid until the next Drain call for the same node.
	Drain(n model.NodeID) []Message
	// Flush blocks until every accepted Send has reached its mailbox —
	// the round barrier for asynchronous transports. Synchronous
	// transports return immediately.
	Flush() error
	// Close releases transport resources. No Send or Drain may follow.
	Close() error
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownDestination is returned when sending to a node the transport
// was not configured with.
var ErrUnknownDestination = errors.New("transport: unknown destination")

// ErrUnreachable is the permanent branch of the Send error taxonomy: the
// destination stayed unreachable after the transport's bounded retries.
// Callers should treat the message as lost and degrade gracefully (drop
// and keep the round going) rather than abort. Any other Send error is
// transient — retrying next round may succeed.
var ErrUnreachable = errors.New("transport: destination unreachable")

// IsUnreachable reports whether err marks a permanently unreachable
// destination (after retries), as opposed to a transient failure.
func IsUnreachable(err error) bool { return errors.Is(err, ErrUnreachable) }

// sortMessages puts drained messages into canonical order so runs are
// deterministic regardless of goroutine scheduling.
func sortMessages(msgs []Message) {
	slices.SortFunc(msgs, func(a, b Message) int {
		if c := strings.Compare(a.TreeKey, b.TreeKey); c != 0 {
			return c
		}
		return int(a.From) - int(b.From)
	})
}

// mailbox is one destination's queue. Each mailbox has its own lock, so
// concurrent senders to distinct destinations never contend, and the
// central fan-in serializes only senders targeting the collector.
// Two buffers alternate between rounds: Drain hands out one and arms
// the other, implementing the Drain ownership rule without per-round
// slice allocations.
type mailbox struct {
	mu    sync.Mutex
	msgs  []Message
	spare []Message
}

// Memory is an in-process transport backed by per-destination
// mailboxes. The destination map is immutable after construction, so
// Send and Drain touch only the destination's own lock.
type Memory struct {
	boxes  map[model.NodeID]*mailbox
	closed atomic.Bool
}

var _ Transport = (*Memory)(nil)

// NewMemory returns a memory transport with mailboxes for the given
// nodes (the central collector is always included).
func NewMemory(nodes []model.NodeID) *Memory {
	m := &Memory{boxes: make(map[model.NodeID]*mailbox, len(nodes)+1)}
	m.boxes[model.Central] = &mailbox{}
	for _, n := range nodes {
		if _, dup := m.boxes[n]; !dup {
			m.boxes[n] = &mailbox{}
		}
	}
	return m
}

// Send implements Transport.
func (m *Memory) Send(msg Message) error {
	if m.closed.Load() {
		return ErrClosed
	}
	box, ok := m.boxes[msg.To]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownDestination, msg.To)
	}
	box.mu.Lock()
	if m.closed.Load() {
		box.mu.Unlock()
		return ErrClosed
	}
	box.msgs = append(box.msgs, msg)
	box.mu.Unlock()
	return nil
}

// Drain implements Transport. The returned slice is reused by the
// next-but-one Drain of the same node; callers own it only until their
// next Drain call.
func (m *Memory) Drain(n model.NodeID) []Message {
	box, ok := m.boxes[n]
	if !ok {
		return nil
	}
	box.mu.Lock()
	msgs := box.msgs
	box.msgs = box.spare[:0]
	box.spare = msgs
	box.mu.Unlock()
	sortMessages(msgs)
	return msgs
}

// Flush implements Transport; memory delivery is synchronous, so it is
// a no-op.
func (m *Memory) Flush() error { return nil }

// Close implements Transport.
func (m *Memory) Close() error {
	m.closed.Store(true)
	return nil
}
