package transport

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"remo/internal/model"
)

// suppMessage is a frame mixing transmitted, suppressed and synced
// slots, with sections deliberately out of canonical order (encode
// must canonicalize them).
func suppMessage() Message {
	return Message{
		TreeKey: "1,2,3",
		From:    4,
		To:      model.Central,
		Epoch:   2,
		Values: []Value{
			{Node: 4, Attr: 1, Round: 7, Value: 3.25},
			{Node: 5, Attr: 2, Round: 6, Value: -17},
		},
		Suppressed: []Supp{
			{Node: 5, Attr: 3, Round: 7},
			{Node: 4, Attr: 2, Round: 7},
			{Node: 9, Attr: 1, Round: 6},
		},
		Syncs: []Supp{{Node: 4, Attr: 1, Round: 7}},
	}
}

func TestSuppRoundTrip(t *testing.T) {
	msg := suppMessage()
	frame, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	// Encode sorted the sections in place; the decoded message must
	// match the canonicalized original exactly.
	if len(got.Suppressed) != 3 || len(got.Syncs) != 1 {
		t.Fatalf("section lengths: %+v", got)
	}
	for i, e := range msg.Suppressed {
		if got.Suppressed[i] != e {
			t.Fatalf("supp[%d] = %+v, want %+v", i, got.Suppressed[i], e)
		}
	}
	if got.Syncs[0] != msg.Syncs[0] {
		t.Fatalf("sync[0] = %+v", got.Syncs[0])
	}
	// Canonical order: sorted by (round, node, attr).
	want := []Supp{
		{Node: 9, Attr: 1, Round: 6},
		{Node: 4, Attr: 2, Round: 7},
		{Node: 5, Attr: 3, Round: 7},
	}
	for i, e := range want {
		if got.Suppressed[i] != e {
			t.Fatalf("canonical order violated at %d: %+v", i, got.Suppressed[i])
		}
	}
}

func TestSuppCompactness(t *testing.T) {
	// A suppressed slot must cost a small fraction of a full value:
	// 200 consecutive same-node slots should delta-code to ~3 bytes
	// each versus 20 for a value.
	var supps []Supp
	for i := 0; i < 200; i++ {
		supps = append(supps, Supp{Node: 7, Attr: model.AttrID(i % 5), Round: 100 + i/5})
	}
	withSupps := EncodedSize(Message{TreeKey: "k", Suppressed: supps})
	empty := EncodedSize(Message{TreeKey: "k"})
	perSlot := float64(withSupps-empty) / 200
	if perSlot > 4 {
		t.Fatalf("suppressed slot costs %.1f bytes on the wire, want <= 4", perSlot)
	}
}

func TestSuppRejectsNonCanonicalOrder(t *testing.T) {
	frame, err := Encode(Message{TreeKey: "k", Suppressed: []Supp{
		{Node: 1, Attr: 1, Round: 5}, {Node: 2, Attr: 1, Round: 5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Swap the two entries by patching the deltas: entry 0 becomes
	// (5,2,1), entry 1's node delta becomes -1. Varints for these small
	// magnitudes are single bytes, so the section is at the fixed tail.
	sec := len(frame) - 6
	patched := append([]byte(nil), frame...)
	patched[sec+1] = byte(zigzagEnc(2))  // first node = 2
	patched[sec+4] = byte(zigzagEnc(-1)) // second node delta = -1
	if _, err := Decode(bytes.NewReader(patched)); err == nil ||
		!strings.Contains(err.Error(), "canonical") {
		t.Fatalf("out-of-order section accepted (err %v)", err)
	}
}

func TestSuppRejectsOversizedCounts(t *testing.T) {
	// A frame claiming more supp entries than its bytes can hold must
	// be rejected before allocation, with an error, not a panic.
	msg := Message{TreeKey: "k", From: 1, To: 0}
	frame, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	patched := append([]byte(nil), frame...)
	// suppCount lives at offset prefix+keyLen(2)+key(1)+from/to/epoch/
	// count/beatCount(20).
	off := framePrefixSize + keyLenSize + 1 + 20
	binary.BigEndian.PutUint32(patched[off:], 1<<30)
	if _, err := Decode(bytes.NewReader(patched)); err == nil {
		t.Fatal("oversized supp count accepted")
	}
	binary.BigEndian.PutUint32(patched[off:], 0)
	binary.BigEndian.PutUint32(patched[off+4:], 1<<30)
	if _, err := Decode(bytes.NewReader(patched)); err == nil {
		t.Fatal("oversized sync count accepted")
	}
}

func TestSuppRejectsMalformedVarint(t *testing.T) {
	frame, err := Encode(Message{TreeKey: "k", Suppressed: []Supp{
		{Node: 1, Attr: 1, Round: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the section mid-entry: the payload shrinks by 2 bytes,
	// so the length prefix must be rewritten to keep the frame
	// self-consistent and reach the varint parser.
	patched := append([]byte(nil), frame[:len(frame)-2]...)
	binary.BigEndian.PutUint32(patched, uint32(len(patched)-framePrefixSize))
	if _, err := Decode(bytes.NewReader(patched)); err == nil {
		t.Fatal("truncated supp section accepted")
	}
	// An unterminated varint (continuation bit on every byte).
	bad := append([]byte(nil), frame[:len(frame)-3]...)
	bad = append(bad, 0x80, 0x80, 0x80)
	binary.BigEndian.PutUint32(bad, uint32(len(bad)-framePrefixSize))
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatal("unterminated varint accepted")
	}
}

func TestSuppStreamingDecoderAgrees(t *testing.T) {
	msg := suppMessage()
	frame, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	one, err := Decode(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	var streamed Message
	dec := NewDecoder(bytes.NewReader(frame))
	if err := dec.DecodeInto(&streamed); err != nil {
		t.Fatal(err)
	}
	f1, _ := Encode(one)
	f2, _ := Encode(streamed)
	if !bytes.Equal(f1, f2) {
		t.Fatalf("streaming decode diverged:\n%x\n%x", f1, f2)
	}
}
