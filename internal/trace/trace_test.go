package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{Round: 1, Kind: Send, Node: 2, Peer: 1, TreeKey: "1", Values: 3})
	r.Record(Event{Round: 0, Kind: Deliver, Node: 0, Peer: 1, TreeKey: "1", Values: 5})
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	events := r.Events()
	if events[0].Round != 0 || events[1].Round != 1 {
		t.Fatalf("events unsorted: %+v", events)
	}
	counts := r.Counts()
	if counts[Send] != 1 || counts[Deliver] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
}

func TestRecorderBufferCap(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(Event{Round: i, Kind: Send})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", r.Dropped())
	}
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "7 further events dropped") {
		t.Fatalf("Dump = %q", b.String())
	}
}

func TestRecorderFilter(t *testing.T) {
	r := NewRecorder(16)
	r.Keep(SendDrop, RecvDrop)
	r.Record(Event{Kind: Send})
	r.Record(Event{Kind: SendDrop})
	r.Record(Event{Kind: RecvDrop})
	r.Record(Event{Kind: Deliver})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (drops only)", r.Len())
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(10000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Round: i, Kind: Send, Node: 1})
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("Len = %d, want 800", r.Len())
	}
}

func TestEventString(t *testing.T) {
	e := Event{Round: 3, Kind: SendDrop, Node: 4, Peer: 2, TreeKey: "1,2", Values: 7}
	s := e.String()
	for _, want := range []string{"r003", "send-drop", "n4", "n2", "tree=1,2", "values=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q lacks %q", s, want)
		}
	}
	for _, k := range []Kind{Send, RecvDrop, SendDrop, Deliver, NodeDead} {
		if k.String() == "" {
			t.Errorf("Kind(%d) string empty", int(k))
		}
	}
}
